(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) plus the ablations listed in DESIGN.md.

   Usage:
     main.exe                  run every experiment (standard scale)
     main.exe fig3a fig4e ...  run selected experiments
     main.exe --quick ...      scaled-down sizes (CI-friendly)
     main.exe --jobs N         run solver portfolios on N worker domains
     main.exe --json FILE      write per-experiment wall times, anytime
                               utility curves (from the solver's incumbent
                               event stream) and, with --jobs > 1, a
                               parallel speedup probe as JSON
     main.exe --bechamel       Bechamel micro-timings, one per experiment
     main.exe --trace FILE     write a Chrome trace_event JSON of the run
     main.exe --profile        print a per-stage wall-time summary

   Absolute numbers differ from the paper (different hardware, OCaml vs
   Python, generated stand-ins for the proprietary datasets); the shapes
   the paper reports are what EXPERIMENTS.md tracks. *)

module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Exact = Bcc_core.Exact
module Baselines = Bcc_core.Baselines
module Gmc3 = Bcc_core.Gmc3
module Ecc = Bcc_core.Ecc
module Cover = Bcc_core.Cover
module Propset = Bcc_core.Propset
module Prune = Bcc_core.Prune
module Qk = Bcc_qk.Qk
module Taylor = Bcc_qk.Taylor
module Hks = Bcc_dks.Hks
module Graph = Bcc_graph.Graph
module Synthetic = Bcc_data.Synthetic
module Bestbuy = Bcc_data.Bestbuy
module Private_like = Bcc_data.Private_like
module Timer = Bcc_util.Timer
module Texttable = Bcc_util.Texttable
module Rng = Bcc_util.Rng
module Engine = Bcc_engine.Engine

let quick = ref false

let scaled n = if !quick then max 1 (n / 4) else n

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let fmt_f x =
  if x = infinity then "inf"
  else if Float.is_integer x && abs_float x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

(* RAND is averaged over 5 seeded runs, as in the paper. *)
let rand_avg inst stop =
  let xs =
    List.map (fun s -> (Baselines.rand ~seed:s inst stop).Solution.utility) [ 1; 2; 3; 4; 5 ]
  in
  List.fold_left ( +. ) 0.0 xs /. 5.0

let rand_cost_avg inst stop =
  let xs =
    List.map (fun s -> (Baselines.rand ~seed:s inst stop).Solution.cost) [ 1; 2; 3; 4; 5 ]
  in
  List.fold_left ( +. ) 0.0 xs /. 5.0

(* ------------------------------------------------------------------ *)
(* Dataset builders (fixed seeds: the whole harness is reproducible).   *)
(* ------------------------------------------------------------------ *)

let bb_instance ~budget = Bestbuy.generate ~seed:11 ~budget ()
let p_instance ~budget = Private_like.generate ~seed:22 ~budget ()

let s_instance ?(num_queries = 20_000) ~budget ~seed () =
  let params = { Synthetic.default_params with num_queries = scaled num_queries } in
  Synthetic.generate ~params ~seed ~budget ()

(* ------------------------------------------------------------------ *)
(* Figures 3a-3c: utility per budget per algorithm.                     *)
(* ------------------------------------------------------------------ *)

let utility_vs_budget name make_instance budgets =
  header name;
  let table = Texttable.create [ "budget"; "RAND"; "IG1"; "IG2"; "A^BCC"; "total-U" ] in
  (* The budget sweep is an engine portfolio: one task per budget point,
     rows collected in task (= budget) order, so the printed table is
     identical at any job count. *)
  let tasks =
    List.map
      (fun budget ->
        Engine.Task.make ~label:"bench.budget" (fun _ ->
            let inst = make_instance ~budget in
            let rand = rand_avg inst Baselines.Budget in
            let ig1 = (Baselines.ig1 inst Baselines.Budget).Solution.utility in
            let ig2 = (Baselines.ig2 inst Baselines.Budget).Solution.utility in
            let ours = (Solver.solve inst).Solution.utility in
            [ fmt_f budget; fmt_f rand; fmt_f ig1; fmt_f ig2; fmt_f ours;
              fmt_f (Instance.total_utility inst) ]))
      budgets
  in
  List.iter (Texttable.add_row table)
    (Engine.Portfolio.collect (Engine.default_pool ()) tasks);
  Texttable.print table

let fig3a () =
  utility_vs_budget "fig3a: BestBuy-like (BB), utility vs budget"
    (fun ~budget -> bb_instance ~budget)
    [ 40.0; 80.0; 160.0; 320.0 ]

let fig3b () =
  utility_vs_budget "fig3b: Private-like (P), utility vs budget"
    (fun ~budget -> p_instance ~budget)
    [ 500.0; 1000.0; 2000.0; 4000.0 ]

let fig3c () =
  utility_vs_budget "fig3c: Synthetic (S), utility vs budget"
    (fun ~budget -> s_instance ~budget ~seed:33 ())
    [ 1250.0; 2500.0; 5000.0; 10000.0 ]

(* ------------------------------------------------------------------ *)
(* Figure 3d: A^BCC vs brute force on small sub-domains.                *)
(* ------------------------------------------------------------------ *)

let fig3d () =
  header "fig3d: A^BCC vs brute force on small P sub-domains (paper: loss < 20%)";
  let table =
    Texttable.create [ "subdomain"; "queries"; "budget"; "brute"; "A^BCC"; "ratio" ]
  in
  let p = p_instance ~budget:0.0 in
  let rng = Rng.create 4242 in
  let found = ref 0 in
  let attempts = ref 0 in
  while !found < 8 && !attempts < 400 do
    incr attempts;
    (* A sub-domain: the queries sharing one anchor property (the paper
       used e.g. the "iPhones" queries). *)
    let qi = Rng.int rng (Instance.num_queries p) in
    let anchor = List.hd (Propset.to_list (Instance.query p qi)) in
    let members = ref [] in
    for q = 0 to Instance.num_queries p - 1 do
      if Propset.mem anchor (Instance.query p q) then members := q :: !members
    done;
    let size = List.length !members in
    if size >= 3 && size <= 7 then begin
      let sub = Instance.restrict p !members in
      if Instance.num_classifiers sub <= 24 then begin
        incr found;
        let total_cost = ref 0.0 in
        for id = 0 to Instance.num_classifiers sub - 1 do
          total_cost := !total_cost +. Instance.cost sub id
        done;
        let budget = Float.round (0.4 *. !total_cost) in
        let sub = Instance.with_budget sub budget in
        let brute = (Exact.solve sub).Solution.utility in
        let ours = (Solver.solve sub).Solution.utility in
        let ratio = if brute <= 0.0 then 1.0 else ours /. brute in
        Texttable.add_row table
          [ Printf.sprintf "#%d" !found; string_of_int size; fmt_f budget; fmt_f brute;
            fmt_f ours; Printf.sprintf "%.2f" ratio ]
      end
    end
  done;
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* Figures 3e/3f: preprocessing ablation (runtime and utility).         *)
(* ------------------------------------------------------------------ *)

let fig3ef () =
  header "fig3e/3f: preprocessing (pruning) ablation on S, budget 5000";
  let table =
    Texttable.create
      [ "queries"; "prep"; "time(s)"; "utility" ]
  in
  let sizes = if !quick then [ 2000; 5000 ] else [ 5000; 10_000; 20_000; 50_000; 100_000 ] in
  List.iter
    (fun n ->
      let params = { Synthetic.default_params with num_queries = n } in
      let inst = Synthetic.generate ~params ~seed:44 ~budget:5000.0 () in
      let run name options =
        let sol, t = Timer.time (fun () -> Solver.solve ~options inst) in
        Texttable.add_row table
          [ string_of_int n; name; Printf.sprintf "%.2f" t; fmt_f sol.Solution.utility ]
      in
      run "paper-prune"
        { Solver.default_options with prune_mode = `Paper; max_qk_nodes = 20_000 };
      run "lossless" Solver.default_options;
      (* The paper's no-preprocessing variant did not terminate above 50K
         queries; we skip it at the largest size too. *)
      if n <= 20_000 then
        run "none" { Solver.default_options with prune = false; max_qk_nodes = max_int }
      else Texttable.add_row table [ string_of_int n; "none"; "skipped"; "-" ])
    sizes;
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* Figures 4a-4c: GMC3 — budget used per utility target.                *)
(* ------------------------------------------------------------------ *)

let budget_vs_target name make_instance fractions =
  header name;
  let inst = make_instance ~budget:0.0 in
  let total = Instance.total_utility inst in
  let table =
    Texttable.create [ "target"; "RAND(G)"; "IG1(G)"; "IG2(G)"; "A^GMC3"; "reached" ]
  in
  List.iter
    (fun frac ->
      let target = Float.round (frac *. total) in
      let stop = Baselines.Target target in
      let rand = rand_cost_avg inst stop in
      let ig1 = (Baselines.ig1 inst stop).Solution.cost in
      let ig2 = (Baselines.ig2 inst stop).Solution.cost in
      let r = Gmc3.solve inst ~target in
      Texttable.add_row table
        [ Printf.sprintf "%s (%.0f%%)" (fmt_f target) (100.0 *. frac); fmt_f rand;
          fmt_f ig1; fmt_f ig2; fmt_f r.Gmc3.solution.Solution.cost;
          string_of_bool r.Gmc3.reached ])
    fractions;
  Texttable.print table

let fig4a () =
  budget_vs_target "fig4a: GMC3 on BB — budget used vs utility target"
    (fun ~budget -> bb_instance ~budget)
    [ 0.25; 0.50; 0.75 ]

let fig4b () =
  budget_vs_target "fig4b: GMC3 on P — budget used vs utility target"
    (fun ~budget -> p_instance ~budget)
    [ 0.25; 0.50; 0.75 ]

let fig4c () =
  budget_vs_target "fig4c: GMC3 on S — budget used vs utility target"
    (fun ~budget -> s_instance ~num_queries:10_000 ~budget ~seed:55 ())
    [ 0.25; 0.50; 0.75 ]

(* ------------------------------------------------------------------ *)
(* Figure 4d: GMC3 runtime on S.                                        *)
(* ------------------------------------------------------------------ *)

let fig4d () =
  header "fig4d: GMC3 runtime on S (target = 30% of total utility)";
  let table = Texttable.create [ "queries"; "time(s)"; "budget used"; "reached" ] in
  let sizes = if !quick then [ 2000; 5000 ] else [ 5000; 10_000; 20_000 ] in
  List.iter
    (fun n ->
      let params = { Synthetic.default_params with num_queries = n } in
      let inst = Synthetic.generate ~params ~seed:66 ~budget:0.0 () in
      let target = Float.round (0.3 *. Instance.total_utility inst) in
      let r, t = Timer.time (fun () -> Gmc3.solve ~search_steps:6 inst ~target) in
      Texttable.add_row table
        [ string_of_int n; Printf.sprintf "%.2f" t; fmt_f r.Gmc3.solution.Solution.cost;
          string_of_bool r.Gmc3.reached ])
    sizes;
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* Figures 4e/4f: ECC best ratios.                                      *)
(* ------------------------------------------------------------------ *)

let ecc_table name inst =
  header name;
  let table = Texttable.create [ "algorithm"; "ratio"; "cost"; "utility" ] in
  let row name sol =
    Texttable.add_row table
      [ name; fmt_f (Ecc.ratio_of sol); fmt_f sol.Solution.cost; fmt_f sol.Solution.utility ]
  in
  row "RAND(E)" (Baselines.rand ~seed:1 inst Baselines.Best_ratio);
  row "IG1(E)" (Baselines.ig1 inst Baselines.Best_ratio);
  row "IG2(E)" (Baselines.ig2 inst Baselines.Best_ratio);
  let sol, t = Timer.time (fun () -> Ecc.solve inst) in
  row "A^ECC" sol;
  Printf.printf "A^ECC runtime: %.2fs\n" t;
  Texttable.print table

let fig4e () =
  (* Free (cost-0) classifiers make the best ratio trivially infinite;
     the ECC comparison clamps every cost to at least 1. *)
  let p0 =
    Private_like.generate
      ~params:{ Private_like.default_params with free_classifier_fraction = 0.0 }
      ~seed:22 ~budget:0.0 ()
  in
  let queries =
    Array.init (Instance.num_queries p0) (fun qi ->
        (Instance.query p0 qi, Instance.utility p0 qi))
  in
  let cost c =
    let x = Instance.cost_of p0 c in
    if x = infinity then infinity else max 1.0 x
  in
  let inst = Instance.create ~name:"p-ecc" ~budget:0.0 ~queries ~cost () in
  ecc_table "fig4e: ECC on P — best utility/cost ratio (costs >= 1)" inst

let fig4f () =
  (* As in fig4e, cost-0 classifiers are excluded so ratios stay
     informative. *)
  let params =
    { Synthetic.default_params with num_queries = scaled 10_000; cost_lo = 1.0 }
  in
  let inst = Synthetic.generate ~params ~seed:77 ~budget:0.0 () in
  ecc_table "fig4f: ECC on S — best utility/cost ratio (costs >= 1)" inst

(* ------------------------------------------------------------------ *)
(* Section 6.2 insights: diminishing returns, budget for 75% utility,   *)
(* length mix of the covered utility.                                   *)
(* ------------------------------------------------------------------ *)

let insights () =
  header "insights (6.2): diminishing returns and covered-utility length mix on P";
  let inst0 = p_instance ~budget:0.0 in
  let total = Instance.total_utility inst0 in
  (match Gmc3.full_cover_cost inst0 with
  | Some c -> Printf.printf "MC3 full-cover budget: %s (total utility %s)\n" (fmt_f c) (fmt_f total)
  | None -> Printf.printf "MC3: not all queries coverable\n");
  let table = Texttable.create [ "budget"; "utility"; "% of total" ] in
  let real_budget = 2000.0 in
  List.iter
    (fun budget ->
      let sol = Solver.solve (Instance.with_budget inst0 budget) in
      Texttable.add_row table
        [ fmt_f budget; fmt_f sol.Solution.utility;
          Printf.sprintf "%.0f%%" (100.0 *. sol.Solution.utility /. total) ])
    [ 500.0; 1000.0; real_budget; 4000.0; 8000.0 ];
  Texttable.print table;
  (* Length mix at the "real" quarterly budget (paper: ~51% from length-2
     queries, ~47% from singletons at budget 2000). *)
  let sol = Solver.solve (Instance.with_budget inst0 real_budget) in
  let state = Cover.create inst0 in
  List.iter (fun c -> ignore (Cover.select_set state c)) sol.Solution.classifiers;
  let by_len = Array.make 8 0.0 in
  List.iter
    (fun qi ->
      let len = Propset.length (Instance.query inst0 qi) in
      by_len.(min len 7) <- by_len.(min len 7) +. Instance.utility inst0 qi)
    (Cover.covered_queries state);
  let covered = sol.Solution.utility in
  Printf.printf "covered-utility mix at budget %s:" (fmt_f real_budget);
  for len = 1 to 7 do
    if by_len.(len) > 0.0 then
      Printf.printf " len%d=%.0f%%" len (100.0 *. by_len.(len) /. covered)
  done;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* End-to-end simulation (6.2's preliminary end-to-end results).        *)
(* ------------------------------------------------------------------ *)

let e2e () =
  header "e2e (6.2): construct selected classifiers, measure result-set growth";
  let params =
    {
      Bcc_catalog.Catalog.num_items = scaled 20_000;
      num_properties = 400;
      props_per_item_lo = 3;
      props_per_item_hi = 8;
      visibility = 0.45;
    }
  in
  let catalog = Bcc_catalog.Catalog.generate ~params ~seed:88 () in
  let report = Bcc_catalog.Pipeline.run catalog ~seed:99 in
  Format.printf "%a@." Bcc_catalog.Pipeline.pp_report report

(* ------------------------------------------------------------------ *)
(* Ablations.                                                           *)
(* ------------------------------------------------------------------ *)

let abl_hks () =
  header "abl-hks: HkS portfolio members and QK solvers";
  let table = Texttable.create [ "graph"; "peel"; "greedy"; "spectral"; "portfolio" ] in
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let n = 200 in
      let b = Graph.builder n in
      for v = 0 to n - 1 do
        Graph.set_node_cost b v 1.0
      done;
      for _ = 1 to 1200 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then Graph.add_edge b u v (float_of_int (1 + Rng.int rng 9))
      done;
      let g = Graph.build b in
      let inst = Hks.make g ~k:40 in
      let value sel = Hks.value inst sel in
      Texttable.add_row table
        [ Printf.sprintf "rand-%d" seed;
          fmt_f (value (Hks.peel inst));
          fmt_f (value (Hks.greedy_add inst));
          fmt_f (value (Hks.spectral inst));
          fmt_f (value (Hks.solve inst)) ])
    [ 1; 2; 3 ];
  Texttable.print table;
  (* QK: the full A^QK_H vs the Taylor-style procedures on the BCC(2)
     graph derived from the P dataset. *)
  let p = p_instance ~budget:2000.0 in
  let state = Cover.create p in
  let _, qkp = Bcc_core.Decompose.build state ~budget:2000.0 in
  let qinst = qkp.Bcc_core.Decompose.qk in
  let table2 = Texttable.create [ "solver"; "QK value"; "time(s)" ] in
  List.iter
    (fun (name, f) ->
      let sol, t = Timer.time (fun () -> f qinst) in
      Texttable.add_row table2 [ name; fmt_f sol.Qk.value; Printf.sprintf "%.2f" t ])
    [
      ("A^QK_H", fun i -> Qk.solve i);
      ("A^QK_T (full, Lemma 4.6)", Taylor.full);
      ("P1-degree-greedy", Taylor.degree_greedy);
      ("P3-best-star", fun i -> Taylor.best_star i);
      ("P1+P3", Taylor.combined);
    ];
  Texttable.print table2

let abl_mc3 () =
  header "abl-mc3: A^BCC with/without the MC3 local-search step (P dataset)";
  let table = Texttable.create [ "budget"; "with MC3"; "without MC3" ] in
  List.iter
    (fun budget ->
      let inst = p_instance ~budget in
      let w = (Solver.solve inst).Solution.utility in
      let wo =
        (Solver.solve ~options:{ Solver.default_options with mc3_improve = false } inst)
          .Solution.utility
      in
      Texttable.add_row table [ fmt_f budget; fmt_f w; fmt_f wo ])
    [ 500.0; 2000.0 ];
  Texttable.print table

let abl_resid () =
  header "abl-resid: residual rounds and final sweep ablation";
  let table =
    Texttable.create [ "dataset"; "budget"; "full"; "no-residual"; "no-sweep"; "single-round" ]
  in
  let run inst =
    let u options = (Solver.solve ~options inst).Solution.utility in
    let base = Solver.default_options in
    [
      u base;
      u { base with residual_rounds = false };
      u { base with final_sweep = false };
      u { base with residual_rounds = false; final_sweep = false };
    ]
  in
  List.iter
    (fun (name, inst) ->
      match run inst with
      | [ a; b; c; d ] ->
          Texttable.add_row table
            [ name; fmt_f (Instance.budget inst); fmt_f a; fmt_f b; fmt_f c; fmt_f d ]
      | _ -> ())
    [
      ("P", p_instance ~budget:2000.0);
      ("S", s_instance ~num_queries:10_000 ~budget:2500.0 ~seed:12 ());
    ];
  Texttable.print table

let robust () =
  header "robust: S regenerated per run (5 seeds), budget 2500 — mean / std per algorithm";
  let table = Texttable.create [ "algorithm"; "mean utility"; "std"; "wins" ] in
  let seeds = [ 201; 202; 203; 204; 205 ] in
  let results =
    List.map
      (fun seed ->
        let params = { Synthetic.default_params with num_queries = scaled 8000 } in
        let inst = Synthetic.generate ~params ~seed ~budget:2500.0 () in
        [
          ("RAND", rand_avg inst Baselines.Budget);
          ("IG1", (Baselines.ig1 inst Baselines.Budget).Solution.utility);
          ("IG2", (Baselines.ig2 inst Baselines.Budget).Solution.utility);
          ("A^BCC", (Solver.solve inst).Solution.utility);
        ])
      seeds
  in
  let algos = [ "RAND"; "IG1"; "IG2"; "A^BCC" ] in
  let wins = Hashtbl.create 4 in
  List.iter
    (fun per_seed ->
      let best = List.fold_left (fun acc (_, u) -> max acc u) 0.0 per_seed in
      List.iter
        (fun (name, u) ->
          if u >= best -. 1e-9 then
            Hashtbl.replace wins name (1 + Option.value ~default:0 (Hashtbl.find_opt wins name)))
        per_seed)
    results;
  List.iter
    (fun name ->
      let xs =
        Array.of_list (List.map (fun per_seed -> List.assoc name per_seed) results)
      in
      Texttable.add_row table
        [ name; fmt_f (Bcc_util.Stats.mean xs);
          Printf.sprintf "%.0f" (Bcc_util.Stats.stddev xs);
          Printf.sprintf "%d/%d" (Option.value ~default:0 (Hashtbl.find_opt wins name))
            (List.length seeds) ])
    algos;
  Texttable.print table

let e2e_costs () =
  header "e2e-costs (6.2): effect of cost under-estimation (paper: ~6% average)";
  (* Analysts' estimates run ~6% below the actual labelling costs; the
     paper argues this is equivalent to shrinking the budget by the same
     factor.  We solve under estimated costs, re-price the selection at
     the true costs, and drop classifiers (cheapest utility first) until
     the true spend fits the budget. *)
  let inst = p_instance ~budget:2000.0 in
  let rng = Rng.create 777 in
  let noise = Hashtbl.create 256 in
  let true_cost id =
    match Hashtbl.find_opt noise id with
    | Some f -> f
    | None ->
        let f = Instance.cost inst id *. (1.0 +. 0.06 +. Rng.float rng 0.06 -. 0.03) in
        Hashtbl.add noise id f;
        f
  in
  let sol = Solver.solve inst in
  let ids =
    List.filter_map (fun c -> Instance.classifier_id inst c) sol.Solution.classifiers
  in
  let est = sol.Solution.cost in
  let actual = List.fold_left (fun acc id -> acc +. true_cost id) 0.0 ids in
  (* Enforce the budget at true prices: drop the worst utility-per-true-cost
     classifiers until feasible. *)
  let keep = ref ids and spend = ref actual in
  while !spend > Instance.budget inst +. 1e-9 do
    match !keep with
    | [] -> spend := 0.0
    | _ ->
        let worst =
          List.fold_left
            (fun acc id -> match acc with
               | None -> Some id
               | Some b ->
                   let score i = true_cost i in
                   if score id > score b then Some id else acc)
            None !keep
        in
        (match worst with
        | Some id ->
            keep := List.filter (fun x -> x <> id) !keep;
            spend := !spend -. true_cost id
        | None -> ())
  done;
  let realized = Solution.of_ids inst !keep in
  Printf.printf
    "estimated spend %s -> actual %s (%.1f%% over); after enforcing the budget at true prices: utility %s vs planned %s (%.1f%% loss)\n"
    (fmt_f est) (fmt_f actual)
    (100.0 *. (actual -. est) /. est)
    (fmt_f realized.Solution.utility) (fmt_f sol.Solution.utility)
    (100.0 *. (sol.Solution.utility -. realized.Solution.utility) /. sol.Solution.utility)

let ext_partial () =
  header "ext-partial: partial-cover utilities (Section 8 future work)";
  let table =
    Texttable.create [ "credit"; "budget"; "strict A^BCC (credited)"; "partial-aware"; "lift" ]
  in
  let inst =
    Private_like.generate
      ~params:{ Private_like.default_params with num_queries = scaled 1200; num_anchors = 180 }
      ~seed:101 ~budget:0.0 ()
  in
  List.iter
    (fun (name, credit) ->
      List.iter
        (fun budget ->
          let inst = Instance.with_budget inst budget in
          let strict = Solver.solve inst in
          let strict_credited =
            Bcc_core.Partial.credited_of credit inst strict.Solution.classifiers
          in
          let r = Bcc_core.Partial.solve ~credit inst in
          Texttable.add_row table
            [ name; fmt_f budget; fmt_f strict_credited; fmt_f r.Bcc_core.Partial.credited;
              Printf.sprintf "%.1f%%"
                (100.0 *. (r.Bcc_core.Partial.credited -. strict_credited)
                /. max strict_credited 1.0) ])
        [ 200.0; 800.0 ])
    [ ("linear-0.5", Bcc_core.Partial.Linear 0.5); ("threshold-0.5", Bcc_core.Partial.Threshold 0.5) ];
  Texttable.print table

let ext_overlap () =
  header "ext-overlap: overlapping construction costs (Section 8 future work)";
  let table =
    Texttable.create
      [ "beta"; "budget"; "independent A^BCC"; "overlap-aware"; "overlap cost" ]
  in
  let inst =
    Private_like.generate
      ~params:{ Private_like.default_params with num_queries = scaled 1200; num_anchors = 180 }
      ~seed:102 ~budget:0.0 ()
  in
  List.iter
    (fun beta ->
      List.iter
        (fun budget ->
          let inst = Instance.with_budget inst budget in
          let strict = Solver.solve inst in
          let r = Bcc_core.Overlap.solve ~beta inst in
          Texttable.add_row table
            [ Printf.sprintf "%.1f" beta; fmt_f budget; fmt_f strict.Solution.utility;
              fmt_f r.Bcc_core.Overlap.solution.Solution.utility;
              fmt_f r.Bcc_core.Overlap.overlap_cost ])
        [ 200.0; 800.0 ])
    [ 0.2; 0.5 ];
  Texttable.print table

(* ------------------------------------------------------------------ *)
(* incr: incremental pipeline vs warm vs cold over a delta stream.      *)
(* ------------------------------------------------------------------ *)

(* A workload whose overlap graph has many components: each cluster gets
   its own property namespace, so a delta confined to one cluster leaves
   every other cluster's fingerprint (and cached curve) intact. *)
let incr_workload_text ~clusters ~queries_per ~props_per =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "budget %d\n" (clusters * 10));
  let rng = Rng.create 4242 in
  let prop c i = Printf.sprintf "c%dp%d" c i in
  for c = 0 to clusters - 1 do
    for _ = 1 to queries_per do
      let k = 2 + Rng.int rng 2 in
      let props =
        List.init k (fun _ -> prop c (Rng.int rng props_per))
        |> List.sort_uniq compare
      in
      Buffer.add_string buf
        (Printf.sprintf "query %s %d\n" (String.concat ";" props) (1 + Rng.int rng 20))
    done
  done;
  for c = 0 to clusters - 1 do
    for i = 0 to props_per - 1 do
      Buffer.add_string buf (Printf.sprintf "classifier %s %d\n" (prop c i) (1 + (i mod 4)));
      if i + 1 < props_per then
        Buffer.add_string buf
          (Printf.sprintf "classifier %s;%s %d\n" (prop c i) (prop c (i + 1))
             (2 + (i mod 3)))
    done
  done;
  Buffer.contents buf

(* Summary fragment for the --json snapshot, filled in by [incr]. *)
let incr_json = ref ""

let incr () =
  header
    "incr: incremental pipeline vs warm vs cold re-solves over a \
     single-cluster delta stream";
  let module Store = Bcc_store.Store in
  let module Delta = Bcc_store.Delta in
  let ok = function
    | Ok v -> v
    | Error (`Bad msg) -> failwith ("incr: " ^ msg)
    | Error `Not_found -> failwith "incr: workload vanished"
  in
  let clusters = scaled 144 in
  let text =
    incr_workload_text ~clusters ~queries_per:(scaled 40) ~props_per:8
  in
  let mk () =
    let s = Store.create () in
    ignore (ok (Store.put s ~name:"w" (Store.Text text)));
    s
  in
  let incr_store = mk () and warm_store = mk () and cold_store = mk () in
  (* Prime the incremental store's artifact cache and the warm store's
     seed; the first solve is cold everywhere and not scored. *)
  ignore (ok (Store.solve incr_store ~name:"w" ~incremental:true ()));
  ignore (ok (Store.solve warm_store ~name:"w" ()));
  (* Keep at least a few steps even under --quick: the ratio of two
     2-step totals is mostly warm-up noise, and the solvers' occasional
     expensive steps (deterministic, content-driven) only show up past
     the first couple of deltas. *)
  let steps = max 4 (scaled 8) in
  let rng = Rng.create 99 in
  let table =
    Texttable.create
      [ "step"; "cluster"; "incr (ms)"; "warm (ms)"; "cold (ms)"; "reused"; "utility" ]
  in
  let t_incr = ref 0.0 and t_warm = ref 0.0 and t_cold = ref 0.0 in
  let reused = ref 0 and total = ref 0 in
  for step = 1 to steps do
    (* A burst of drift confined to one cluster: several query-utility
       upserts plus a classifier re-price — the single-component delta
       the pipeline is built for. *)
    let c = (step - 1) mod clusters in
    let pick () = Printf.sprintf "c%dp%d" c (Rng.int rng 8) in
    let props () =
      let p1 = pick () and p2 = pick () in
      if p1 = p2 then [ p1 ] else [ p1; p2 ]
    in
    let ops =
      List.init 8 (fun _ -> Delta.Upsert (props (), float_of_int (5 + Rng.int rng 15)))
      @ [ Delta.Set_cost ([ pick () ], float_of_int (1 + Rng.int rng 5)) ]
    in
    List.iter
      (fun s -> ignore (ok (Store.delta s ~name:"w" ops)))
      [ incr_store; warm_store; cold_store ];
    let si, ti =
      Timer.time (fun () -> ok (Store.solve incr_store ~name:"w" ~incremental:true ()))
    in
    let _, tw = Timer.time (fun () -> ok (Store.solve warm_store ~name:"w" ())) in
    let _, tc =
      Timer.time (fun () -> ok (Store.solve cold_store ~name:"w" ~cold:true ()))
    in
    t_incr := !t_incr +. ti;
    t_warm := !t_warm +. tw;
    t_cold := !t_cold +. tc;
    reused := !reused + si.Store.components_reused;
    total := !total + si.Store.components_total;
    Texttable.add_row table
      [
        string_of_int step;
        string_of_int c;
        Printf.sprintf "%.1f" (1000.0 *. ti);
        Printf.sprintf "%.1f" (1000.0 *. tw);
        Printf.sprintf "%.1f" (1000.0 *. tc);
        Printf.sprintf "%d/%d" si.Store.components_reused si.Store.components_total;
        fmt_f si.Store.solution.Solution.utility;
      ]
  done;
  Texttable.print table;
  let frac = if !total = 0 then 0.0 else float_of_int !reused /. float_of_int !total in
  let speedup t = if !t_incr > 0.0 then t /. !t_incr else 0.0 in
  Printf.printf
    "totals: incr %.3fs, warm %.3fs, cold %.3fs -> %.2fx vs warm, %.2fx vs cold; \
     %.0f%% of component curves reused\n"
    !t_incr !t_warm !t_cold (speedup !t_warm) (speedup !t_cold) (100.0 *. frac);
  incr_json :=
    Printf.sprintf
      "{\"incr_s\": %.3f, \"warm_s\": %.3f, \"cold_s\": %.3f, \
       \"speedup_vs_warm\": %.2f, \"speedup_vs_cold\": %.2f, \
       \"reuse_fraction\": %.3f}"
      !t_incr !t_warm !t_cold (speedup !t_warm) (speedup !t_cold) frac

(* ------------------------------------------------------------------ *)
(* contended: multi-tenant batch scheduler — coalesced vs uncoalesced.  *)
(* ------------------------------------------------------------------ *)

(* Summary fragment for the --json snapshot, filled in by [contended]. *)
let contended_json = ref ""

(* Three tenants fire eight concurrent cold solves each at one shared
   workload.  With coalescing on, the scheduler folds the pile-up into a
   handful of batches whose one solve fans out to every waiter; with
   coalescing off, the same 24 requests run serially through the single
   slot.  Both modes must return the identical solution to every
   caller — coalescing buys throughput, never answers. *)
let contended () =
  header
    "contended: 3 tenants x 8 concurrent cold solves of one shared workload \
     — coalescing on vs off";
  let module Store = Bcc_store.Store in
  let module Sched = Bcc_sched.Sched in
  let ok = function
    | Ok v -> v
    | Error (`Bad msg) -> failwith ("contended: " ^ msg)
    | Error `Not_found -> failwith "contended: workload vanished"
  in
  let text =
    incr_workload_text ~clusters:(scaled 144) ~queries_per:(scaled 40) ~props_per:8
  in
  let store = Store.create () in
  ignore (ok (Store.put store ~name:"w" (Store.Text text)));
  let tenants = [| "alpha"; "beta"; "gamma" |] in
  let per_tenant = 8 in
  let n = Array.length tenants * per_tenant in
  let run_mode ~coalesce =
    let sched = Sched.create ~concurrency:1 ~coalesce () in
    let results = Array.make n None in
    let timer = Timer.start () in
    let spawn i =
      Thread.create
        (fun () ->
          let tenant = tenants.(i mod Array.length tenants) in
          match
            Sched.submit sched ~tenant ~key:"w@0" ~subkey:"w@0/cold" (fun () ->
                (ok (Store.solve store ~name:"w" ~cold:true ())).Store.solution)
          with
          | Ok sol -> results.(i) <- Some sol
          | Error _ -> ())
        ()
    in
    (* the first request claims the slot; the stragglers pile up behind
       it and (with coalescing on) share batches *)
    let first = spawn 0 in
    Thread.delay 0.02;
    let rest = List.init (n - 1) (fun i -> spawn (i + 1)) in
    List.iter Thread.join (first :: rest);
    (Timer.elapsed_s timer, results, Sched.stats sched)
  in
  let wall_c, res_c, stats_c = run_mode ~coalesce:true in
  let wall_u, res_u, stats_u = run_mode ~coalesce:false in
  let shape sol =
    ( sol.Solution.utility,
      sol.Solution.cost,
      List.map Propset.to_list sol.Solution.classifiers )
  in
  let identical =
    match res_u.(0) with
    | None -> false
    | Some reference ->
        let r = shape reference in
        Array.for_all
          (function Some s -> shape s = r | None -> false)
          (Array.append res_c res_u)
  in
  let table =
    Texttable.create
      [ "mode"; "wall(s)"; "batches"; "coalesced"; "per-tenant done" ]
  in
  let row name wall (stats : Bcc_sched.Sched.stats) (results : _ option array) =
    let done_of t =
      let c = ref 0 in
      Array.iteri
        (fun i r ->
          if tenants.(i mod Array.length tenants) = t && r <> None then c := !c + 1)
        results;
      !c
    in
    Texttable.add_row table
      [
        name;
        Printf.sprintf "%.3f" wall;
        string_of_int stats.Sched.batches_total;
        string_of_int stats.Sched.coalesced_total;
        String.concat " "
          (Array.to_list
             (Array.map (fun t -> Printf.sprintf "%s=%d/%d" t (done_of t) per_tenant) tenants));
      ]
  in
  row "coalesced" wall_c stats_c res_c;
  row "uncoalesced" wall_u stats_u res_u;
  Texttable.print table;
  let speedup = if wall_c > 0.0 then wall_u /. wall_c else 0.0 in
  Printf.printf
    "aggregate throughput: %.2fx from coalescing (%d waiters folded into %d \
     batches); identical solutions: %b\n"
    speedup stats_c.Sched.coalesced_total stats_c.Sched.batches_total identical;
  contended_json :=
    Printf.sprintf
      "{\"tenants\": %d, \"requests_per_tenant\": %d, \
       \"coalesced_wall_s\": %.3f, \"uncoalesced_wall_s\": %.3f, \
       \"speedup\": %.2f, \"batches\": %d, \"coalesced_waiters\": %d, \
       \"identical\": %b}"
      (Array.length tenants) per_tenant wall_c wall_u speedup
      stats_c.Sched.batches_total stats_c.Sched.coalesced_total identical

(* ------------------------------------------------------------------ *)
(* Bechamel micro-timings: one Test.make per experiment's kernel.       *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let bb = bb_instance ~budget:160.0 in
  let p_small =
    Private_like.generate
      ~params:{ Private_like.default_params with num_queries = 800; num_anchors = 100 }
      ~seed:1 ~budget:400.0 ()
  in
  let s_small =
    Synthetic.generate
      ~params:{ Synthetic.default_params with num_queries = 1500; num_properties = 800 }
      ~seed:1 ~budget:800.0 ()
  in
  let qk_inst =
    let state = Cover.create p_small in
    let _, qkp = Bcc_core.Decompose.build state ~budget:400.0 in
    qkp.Bcc_core.Decompose.qk
  in
  let hks_inst =
    let g = qk_inst.Qk.graph in
    Hks.make g ~k:(max 2 (Graph.n g / 4))
  in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      mk "fig3a:solve-bb" (fun () -> ignore (Solver.solve bb));
      mk "fig3b:solve-p" (fun () -> ignore (Solver.solve p_small));
      mk "fig3c:solve-s" (fun () -> ignore (Solver.solve s_small));
      mk "fig3d:brute-vs-abcc" (fun () ->
          ignore (Solver.solve (Instance.restrict p_small [ 0; 1; 2; 3 ])));
      mk "fig3e:prune" (fun () -> ignore (Prune.rule1 ~mode:`Paper s_small));
      mk "fig3f:solve-nopune" (fun () ->
          ignore
            (Solver.solve ~options:{ Solver.default_options with prune = false } s_small));
      mk "fig4a-c:gmc3" (fun () ->
          ignore
            (Gmc3.solve ~search_steps:3 bb
               ~target:(0.25 *. Instance.total_utility bb)));
      mk "fig4d:gmc3-s" (fun () ->
          ignore
            (Gmc3.solve ~search_steps:3 s_small
               ~target:(0.2 *. Instance.total_utility s_small)));
      mk "fig4e-f:ecc" (fun () -> ignore (Ecc.solve p_small));
      mk "insights:mc3-cover" (fun () -> ignore (Gmc3.full_cover_cost bb));
      mk "abl-hks:portfolio" (fun () -> ignore (Hks.solve hks_inst));
      mk "abl-hks:qk" (fun () -> ignore (Qk.solve qk_inst));
      mk "e2e:pipeline-kernel" (fun () ->
          let catalog =
            Bcc_catalog.Catalog.generate
              ~params:
                {
                  Bcc_catalog.Catalog.num_items = 1000;
                  num_properties = 80;
                  props_per_item_lo = 3;
                  props_per_item_hi = 6;
                  visibility = 0.4;
                }
              ~seed:1 ()
          in
          ignore (Bcc_catalog.Pipeline.instance_of_catalog catalog ~seed:2));
    ]
  in
  let test = Test.make_grouped ~name:"bcc" ~fmt:"%s %s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let clock = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg [ clock ] test in
  let results = Analyze.all ols clock raw in
  header "bechamel micro-timings (monotonic clock, ns per run)";
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "%-32s %14.0f ns\n" name est
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Driver.                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig3a", fig3a);
    ("fig3b", fig3b);
    ("fig3c", fig3c);
    ("fig3d", fig3d);
    ("fig3e", fig3ef);
    ("fig3f", fig3ef);
    ("fig4a", fig4a);
    ("fig4b", fig4b);
    ("fig4c", fig4c);
    ("fig4d", fig4d);
    ("fig4e", fig4e);
    ("fig4f", fig4f);
    ("insights", insights);
    ("e2e", e2e);
    ("e2e-costs", e2e_costs);
    ("robust", robust);
    ("abl-hks", abl_hks);
    ("abl-mc3", abl_mc3);
    ("abl-resid", abl_resid);
    ("ext-partial", ext_partial);
    ("ext-overlap", ext_overlap);
    ("incr", incr);
    ("contended", contended);
  ]

(* Anytime curves (with --json): incumbent updates are recorded under
   the experiment running at the time, timestamps rebased to the
   experiment start.  The raw events are kept — an experiment runs many
   solves (drift-step loops, warm baselines, parallel sub-solves), and
   extracting one curve from the merged stream produced the BENCH_9
   corruption (utility sawtoothing back to 0.0 whenever another solve
   started), so curve extraction is deferred to
   [Progress.solve_curves], which keys strictly by correlation id; the
   experiment's representative curve is its richest single-solve curve.
   Events arrive from any engine worker domain, so the table is
   mutex-protected; collection is observation-only and leaves every
   experiment's output byte-identical (the solver's determinism
   contract with events on). *)
let anytime_lock = Mutex.create ()

let anytime : (string, Bcc_obs.Event.t list ref) Hashtbl.t = Hashtbl.create 16

let anytime_current = ref ""
let anytime_t0 = ref 0.0
let anytime_cap = 2048

let install_anytime_sink () =
  Bcc_obs.Event.set_enabled true;
  Bcc_obs.Event.add_sink ~name:"bench-anytime" (fun e ->
      if e.Bcc_obs.Event.name = Bcc_obs.Progress.incumbent_event then begin
        Mutex.lock anytime_lock;
        (let name = !anytime_current in
         if name <> "" then begin
           let cell =
             match Hashtbl.find_opt anytime name with
             | Some c -> c
             | None ->
                 let c = ref [] in
                 Hashtbl.add anytime name c;
                 c
           in
           if List.length !cell < anytime_cap then
             cell :=
               { e with Bcc_obs.Event.ts_s = e.Bcc_obs.Event.ts_s -. !anytime_t0 }
               :: !cell
         end);
        Mutex.unlock anytime_lock
      end)

let anytime_begin name =
  Mutex.lock anytime_lock;
  anytime_current := name;
  anytime_t0 := Timer.now_s ();
  Mutex.unlock anytime_lock

let anytime_end () =
  Mutex.lock anytime_lock;
  anytime_current := "";
  Mutex.unlock anytime_lock

let anytime_json name =
  let events =
    Mutex.lock anytime_lock;
    let evs =
      match Hashtbl.find_opt anytime name with Some c -> List.rev !c | None -> []
    in
    Mutex.unlock anytime_lock;
    evs
  in
  (* The experiment's representative curve: of the per-correlation-id
     solve curves, the one with the most samples (ties: the earlier
     solve) — the experiment's dominant solve. *)
  let pts =
    List.fold_left
      (fun best (_, pts) ->
        if List.length pts > List.length best then pts else best)
      []
      (Bcc_obs.Progress.solve_curves events)
  in
  (* Dedupe identical adjacent samples at emission: t and u are
     quantized by the format below, so samples distinct in memory can
     still render identically and bloat the snapshot. *)
  let rendered =
    List.map (fun (t, u) -> Printf.sprintf "{\"t\": %.3f, \"u\": %.1f}" t u) pts
  in
  let rec dedup = function
    | a :: (b :: _ as rest) -> if a = b then dedup rest else a :: dedup rest
    | tail -> tail
  in
  "[" ^ String.concat ", " (dedup rendered) ^ "]"

(* A solver-portfolio-heavy kernel for the --json speedup probe: the
   same instance solved at 1 job and at the requested job count, timed,
   and checked for identical output (the engine's determinism
   contract). *)
let parallel_probe ~jobs =
  let inst = s_instance ~num_queries:4000 ~budget:2500.0 ~seed:3003 () in
  let timed n =
    Engine.set_default_jobs n;
    Timer.time (fun () -> Solver.solve inst)
  in
  let sol1, t1 = timed 1 in
  let soln, tn = timed jobs in
  let identical =
    sol1.Solution.utility = soln.Solution.utility
    && sol1.Solution.cost = soln.Solution.cost
    && sol1.Solution.classifiers = soln.Solution.classifiers
  in
  (t1, tn, identical)

let () =
  let trace_file = ref None in
  let json_file = ref None in
  let profile = ref false in
  let jobs = ref 1 in
  (* A loop rather than List.filter: --trace/--json/--jobs consume a value. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--profile" :: rest ->
        profile := true;
        parse acc rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        parse acc rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse acc rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n ->
            jobs := max 1 n;
            parse acc rest
        | None ->
            prerr_endline ("--jobs needs an integer, got " ^ n);
            exit 2)
    | [ ("--trace" | "--json" | "--jobs") ] ->
        prerr_endline "--trace/--json/--jobs need an argument";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  Engine.set_default_jobs !jobs;
  if !json_file <> None then install_anytime_sink ();
  if !trace_file <> None then Bcc_obs.Trace.set_tracing ~capacity:65_536 true;
  if !profile then Bcc_obs.Trace.set_profiling true;
  let timings = ref [] in
  let finish ~total_s () =
    (match !trace_file with
    | Some file ->
        let oc = open_out file in
        output_string oc (Bcc_obs.Trace.chrome_json (Bcc_obs.Trace.spans ()));
        close_out oc;
        Printf.printf "wrote trace to %s\n%!" file
    | None -> ());
    if !profile then print_string (Bcc_obs.Stage.summary ());
    match !json_file with
    | None -> ()
    | Some file ->
        let parallel =
          if !jobs <= 1 then ""
          else begin
            let t1, tn, identical = parallel_probe ~jobs:!jobs in
            Printf.sprintf
              ",\n  \"parallel\": {\"jobs_1_s\": %.3f, \"jobs_%d_s\": %.3f, \
               \"speedup\": %.2f, \"identical\": %b}"
              t1 !jobs tn
              (if tn > 0.0 then t1 /. tn else 0.0)
              identical
          end
        in
        let incremental =
          if !incr_json = "" then ""
          else Printf.sprintf ",\n  \"incremental\": %s" !incr_json
        in
        let contended_frag =
          if !contended_json = "" then ""
          else Printf.sprintf ",\n  \"contended\": %s" !contended_json
        in
        let rows =
          List.rev_map
            (fun (name, t) ->
              Printf.sprintf "    {\"name\": %S, \"seconds\": %.3f, \"anytime\": %s}"
                name t (anytime_json name))
            !timings
        in
        let oc = open_out file in
        Printf.fprintf oc
          "{\n  \"jobs\": %d,\n  \"total_s\": %.3f,\n  \"experiments\": [\n%s\n  ]%s%s%s\n}\n"
          !jobs total_s
          (String.concat ",\n" rows)
          parallel incremental contended_frag;
        close_out oc;
        Printf.printf "wrote timings to %s\n%!" file
  in
  if List.mem "--bechamel" args then bechamel_suite ()
  else begin
    let selected = if args = [] then List.map fst experiments else args in
    (* fig3e and fig3f share one experiment; avoid running it twice. *)
    let canonical name = if name = "fig3f" then "fig3e" else name in
    let seen = Hashtbl.create 8 in
    let total_timer = Timer.start () in
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f ->
            let key = canonical name in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              anytime_begin name;
              let (), t = Timer.time f in
              anytime_end ();
              timings := (name, t) :: !timings;
              Printf.printf "[%s: %.1fs]\n%!" name t
            end
        | None -> Printf.printf "unknown experiment: %s\n%!" name)
      selected;
    let total_s = Timer.elapsed_s total_timer in
    Printf.printf "\ntotal: %.1fs\n" total_s;
    finish ~total_s ()
  end
