module Graph = Bcc_graph.Graph
module Trace = Bcc_obs.Trace

type knapsack_part = {
  values : float array;  (* cheapest-credit values *)
  values_all : float array;  (* every-1-cover-credited values *)
  weights : float array;
  item_classifier : int array;
}

type qk_part = { qk : Bcc_qk.Qk.instance; node_classifier : int array }

type component = {
  queries : int list;  (* query ids, ascending *)
  props : Propset.t;  (* union of the queries' property sets *)
  min_prop : int;
  utility : float;
}

(* Connected components of the overlap graph: queries are connected
   (transitively) when their property sets intersect.  Classifiers never
   bridge components — a useful classifier is a subset of some query, so
   its properties live inside that query's component — which is what
   makes per-component solving exact.

   Determinism contract: the result depends only on the {e content} of
   the instance, never on hashtable iteration order — components are
   built by scanning queries in index order, query lists are ascending,
   and the component list is sorted by [min_prop] (components have
   disjoint property sets, so minimum property ids are distinct and the
   order is total). *)
let components ?(keep_query = fun _ -> true) inst =
  let nq = Instance.num_queries inst in
  (* Union properties within each kept query; a property-indexed
     union-find sized lazily to the largest property id seen. *)
  let max_prop = ref (-1) in
  for qi = 0 to nq - 1 do
    if keep_query qi then
      Propset.iter (fun p -> if p > !max_prop then max_prop := p) (Instance.query inst qi)
  done;
  if !max_prop < 0 then []
  else begin
    let uf = Bcc_util.Union_find.create (!max_prop + 1) in
    for qi = 0 to nq - 1 do
      if keep_query qi then begin
        let q = Instance.query inst qi in
        match Propset.to_list q with
        | [] -> ()
        | anchor :: rest ->
            List.iter (fun p -> ignore (Bcc_util.Union_find.union uf anchor p)) rest
      end
    done;
    (* Group queries by their root, scanning in index order so each
       component's query list comes out ascending. *)
    let by_root : (int, component ref) Hashtbl.t = Hashtbl.create 16 in
    let roots_in_order = ref [] in
    for qi = nq - 1 downto 0 do
      if keep_query qi then begin
        let q = Instance.query inst qi in
        match Propset.to_list q with
        | [] -> ()
        | anchor :: _ ->
            let root = Bcc_util.Union_find.find uf anchor in
            let u = Instance.utility inst qi in
            (match Hashtbl.find_opt by_root root with
            | Some cell ->
                cell :=
                  {
                    !cell with
                    queries = qi :: !cell.queries;
                    props = Propset.union !cell.props q;
                    utility = !cell.utility +. u;
                  }
            | None ->
                let cell =
                  ref { queries = [ qi ]; props = q; min_prop = 0; utility = u }
                in
                Hashtbl.add by_root root cell;
                roots_in_order := root :: !roots_in_order)
      end
    done;
    !roots_in_order
    |> List.map (fun root ->
           let c = !(Hashtbl.find by_root root) in
           let min_prop =
             match Propset.to_list c.props with p :: _ -> p | [] -> assert false
           in
           { c with min_prop })
    |> List.sort (fun a b -> compare a.min_prop b.min_prop)
  end

let leverage_scores g =
  let n = Graph.n g in
  let x = Array.make n (1.0 /. float_of_int (max n 1)) in
  let y = Array.make n 0.0 in
  for _ = 1 to 40 do
    Array.fill y 0 n 0.0;
    Graph.iter_edges g (fun u v w ->
        y.(v) <- y.(v) +. (w *. x.(u));
        y.(u) <- y.(u) +. (w *. x.(v)));
    let norm = sqrt (Array.fold_left (fun acc z -> acc +. (z *. z)) 0.0 y) in
    if norm > 0.0 then Array.iteri (fun i z -> x.(i) <- z /. norm) y
  done;
  Array.init n (fun v -> (x.(v) *. x.(v)) +. (1e-9 *. Graph.weighted_degree g v))

let build ?(allowed = fun _ -> true) ?(max_qk_nodes = 50_000) state ~budget =
  Trace.with_span ~name:"decompose" @@ fun sp ->
  let inst = Cover.instance state in
  let item_value : (int, float ref) Hashtbl.t = Hashtbl.create 256 in
  let item_value_all : (int, float ref) Hashtbl.t = Hashtbl.create 256 in
  let edges : (int * int, float ref) Hashtbl.t = Hashtbl.create 256 in
  let bump tbl key u =
    match Hashtbl.find_opt tbl key with
    | Some cell -> cell := !cell +. u
    | None -> Hashtbl.add tbl key (ref u)
  in
  (* Each query's utility is credited to its cheapest affordable 1-cover
     and cheapest affordable 2-cover.  Crediting every cover (as a
     literal reading of the paper would) makes the knapsack/QK
     objectives overcount queries with several equivalent covers, which
     poisons their internal comparisons; the realized-utility arbiter in
     the solver remains the ground truth either way. *)
  List.iter
    (fun qi ->
      let cands, target = Covers.candidates state ~allowed qi in
      if target <> 0 then begin
        let u = Instance.utility inst qi in
        let cost_of (c : Covers.candidate) = Instance.cost inst c.id in
        let best_one = ref None in
        List.iter
          (fun (c : Covers.candidate) ->
            if cost_of c <= budget then begin
              bump item_value_all c.id u;
              match !best_one with
              | Some c' when cost_of c' <= cost_of c -> ()
              | _ -> best_one := Some c
            end)
          (Covers.one_covers cands ~target);
        (match !best_one with Some c -> bump item_value c.id u | None -> ());
        let best_two = ref None in
        List.iter
          (fun ((a : Covers.candidate), (b : Covers.candidate)) ->
            let cost = cost_of a +. cost_of b in
            if cost <= budget then
              match !best_two with
              | Some (_, _, c') when c' <= cost -> ()
              | _ -> best_two := Some (a, b, cost))
          (Covers.two_covers cands ~target);
        match !best_two with
        | Some (a, b, _) ->
            let key = (min a.id b.id, max a.id b.id) in
            bump edges key u
        | None -> ()
      end)
    (Cover.uncovered_queries state);
  (* Knapsack part: only affordable items are worth carrying. *)
  let items =
    Hashtbl.fold
      (fun id cell acc ->
        if Instance.cost inst id <= budget then (id, !cell) :: acc else acc)
      item_value_all []
  in
  let items = List.sort (fun (a, _) (b, _) -> compare a b) items in
  let item_classifier = Array.of_list (List.map fst items) in
  let values_all = Array.of_list (List.map snd items) in
  let values =
    Array.map
      (fun id -> match Hashtbl.find_opt item_value id with Some c -> !c | None -> 0.0)
      item_classifier
  in
  let weights = Array.map (fun id -> Instance.cost inst id) item_classifier in
  (* QK part: nodes are the classifiers participating in some 2-cover,
     plus the knapsack items, plus a zero-cost virtual node whose edges
     carry each item's 1-cover value.  The virtual node costs nothing,
     so the QK objective sees the combined utility of selecting a node
     both as a 2-cover endpoint and as a 1-cover — cross-subproblem
     synergy the strict Knapsack/QK split would miss. *)
  let node_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rev_nodes = ref [] in
  let next = ref 0 in
  let intern id =
    match Hashtbl.find_opt node_of id with
    | Some v -> v
    | None ->
        let v = !next in
        incr next;
        Hashtbl.add node_of id v;
        rev_nodes := id :: !rev_nodes;
        v
  in
  let edge_list =
    Hashtbl.fold
      (fun (a, b) cell acc ->
        if Instance.cost inst a <= budget && Instance.cost inst b <= budget then
          (a, b, !cell) :: acc
        else acc)
      edges []
  in
  let edge_list = List.sort compare edge_list in
  List.iter
    (fun (a, b, _) ->
      ignore (intern a);
      ignore (intern b))
    edge_list;
  Array.iter (fun id -> ignore (intern id)) item_classifier;
  let node_classifier = Array.of_list (List.rev !rev_nodes) in
  let n = Array.length node_classifier in
  let has_items = Array.length item_classifier > 0 in
  let total_nodes = if has_items then n + 1 else n in
  let builder = Graph.builder total_nodes in
  Array.iteri
    (fun v id -> Graph.set_node_cost builder v (Instance.cost inst id))
    node_classifier;
  List.iter
    (fun (a, b, w) ->
      Graph.add_edge builder (Hashtbl.find node_of a) (Hashtbl.find node_of b) w)
    edge_list;
  if has_items then begin
    let vz = n in
    Graph.set_node_cost builder vz 0.0;
    Array.iteri
      (fun i id ->
        if values.(i) > 0.0 then
          Graph.add_edge builder vz (Hashtbl.find node_of id) values.(i))
      item_classifier
  end;
  let g = Graph.build builder in
  let node_classifier =
    if has_items then Array.append node_classifier [| -1 |] else node_classifier
  in
  (* Second pruning procedure: cap the QK graph by leverage scores. *)
  let g, node_classifier =
    if Graph.n g <= max_qk_nodes then (g, node_classifier)
    else begin
      let n = Graph.n g in
      let scores = leverage_scores g in
      let order = Array.init n (fun v -> v) in
      Array.sort (fun a b -> compare scores.(b) scores.(a)) order;
      let keep = Array.make n false in
      Array.iteri (fun rank v -> if rank < max_qk_nodes then keep.(v) <- true) order;
      (* Never prune the virtual 1-cover node. *)
      Array.iteri (fun v id -> if id = -1 then keep.(v) <- true) node_classifier;
      let g', back = Graph.subgraph g keep in
      (g', Array.map (fun v -> node_classifier.(v)) back)
    end
  in
  if Trace.recording sp then begin
    Trace.add_attr sp "knap_items" (Trace.Int (Array.length item_classifier));
    Trace.add_attr sp "qk_nodes" (Trace.Int (Graph.n g));
    Trace.add_attr sp "qk_edges" (Trace.Int (Graph.m g));
    Trace.add_attr sp "budget" (Trace.Float budget)
  end;
  ( { values; values_all; weights; item_classifier },
    { qk = { Bcc_qk.Qk.graph = g; budget }; node_classifier } )
