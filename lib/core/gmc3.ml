module Mc3 = Bcc_setcover.Mc3
module Trace = Bcc_obs.Trace

let log_src = Logs.Src.create "bcc.gmc3" ~doc:"A^GMC3 binary-search progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = { solution : Solution.t; reached : bool; budget_used : float }

let full_cover_cost inst =
  let queries =
    Array.init (Instance.num_queries inst) (fun qi ->
        Propset.to_array (Instance.query inst qi))
  in
  let classifiers =
    Array.init (Instance.num_classifiers inst) (fun id ->
        (Propset.to_array (Instance.classifier inst id), Instance.cost inst id))
  in
  match Mc3.solve { Mc3.queries; classifiers } with
  | Some { Mc3.cost; _ } -> Some cost
  | None -> None

let sum_costs inst =
  let acc = ref 0.0 in
  for id = 0 to Instance.num_classifiers inst - 1 do
    acc := !acc +. Instance.cost inst id
  done;
  !acc

(* Theorem 5.3's loop: accumulate A^BCC solutions over residual
   instances until the target utility is reached. *)
let iterative_cover ?options inst ~target ~budget =
  let selections = ref [] in
  let utility sets = Cover.utility_of_selection inst sets in
  let rec loop iter =
    let current = utility !selections in
    if current >= target || iter > 12 then ()
    else begin
      let state = Cover.create inst in
      List.iter (fun c -> ignore (Cover.select_set state c)) !selections;
      let residual_qids = Cover.uncovered_queries state in
      if residual_qids = [] then ()
      else begin
        let residual = Instance.with_budget (Instance.restrict inst residual_qids) budget in
        let sol = Solver.solve ?options residual in
        if sol.Solution.classifiers = [] then ()
        else begin
          let before = utility !selections in
          selections :=
            List.sort_uniq Propset.compare (sol.Solution.classifiers @ !selections);
          if utility !selections > before +. 1e-9 then loop (iter + 1)
        end
      end
    end
  in
  loop 1;
  Solution.of_sets inst !selections

let solve ?options ?(search_steps = 10) inst ~target =
  Trace.with_span ~name:"gmc3" @@ fun sp ->
  if Trace.recording sp then Trace.add_attr sp "target" (Trace.Float target);
  let hi0 =
    match full_cover_cost inst with Some c -> c | None -> sum_costs inst
  in
  let hi0 = max hi0 1e-9 in
  let attempts = ref 0 in
  let attempt budget =
    Trace.with_span ~name:"gmc3.attempt" @@ fun asp ->
    incr attempts;
    let sol = Solver.solve ?options (Instance.with_budget inst budget) in
    Log.debug (fun m ->
        m "budget %.1f -> utility %.1f (target %.1f)" budget sol.Solution.utility target);
    let ok = sol.Solution.utility >= target -. 1e-9 in
    if Trace.recording asp then begin
      Trace.add_attr asp "budget" (Trace.Float budget);
      Trace.add_attr asp "utility" (Trace.Float sol.Solution.utility);
      Trace.add_attr asp "reached" (Trace.Bool ok)
    end;
    (sol, ok)
  in
  let best = ref None in
  let lo = ref 0.0 and hi = ref hi0 in
  let sol_hi, ok_hi = attempt hi0 in
  if ok_hi then best := Some (sol_hi, hi0);
  if !best <> None then
    for _ = 1 to search_steps do
      let mid = ( !lo +. !hi ) /. 2.0 in
      let sol, ok = attempt mid in
      if ok then begin
        hi := mid;
        (match !best with
        | Some (prev, _) when prev.Solution.cost <= sol.Solution.cost -. 1e-12 -> ()
        | _ -> best := Some (sol, mid))
      end
      else lo := mid
    done;
  let result =
    match !best with
    | Some (sol, b) -> { solution = sol; reached = true; budget_used = b }
    | None ->
        (* Heuristic shortfall at the full-cover budget: fall back to the
           accumulation loop of Theorem 5.3. *)
        let sol = iterative_cover ?options inst ~target ~budget:hi0 in
        {
          solution = sol;
          reached = sol.Solution.utility >= target -. 1e-9;
          budget_used = hi0;
        }
  in
  if Trace.recording sp then begin
    Trace.add_attr sp "attempts" (Trace.Int !attempts);
    Trace.add_attr sp "reached" (Trace.Bool result.reached);
    Trace.add_attr sp "budget_used" (Trace.Float result.budget_used)
  end;
  result
