(** The explicit solve context threaded through the solver pipeline.

    Before the pipeline refactor the solver's cross-cutting state was
    ambient and scattered: the deadline lived in a per-domain binding,
    the engine pool was fetched from a process-global default at each
    race site, the telemetry correlation id rode a domain-local, the
    warm seed was a stray optional argument and randomness was
    re-created from per-module seed constants.  [Solve_ctx.t] gathers
    all of it into one record that {!Solver.solve_with_ctx},
    {!Pipeline.solve} and the stage helpers ({!Prune.rule1},
    {!Decompose}, [Bcc_qk.Qk.solve ?pool ?rng],
    [Bcc_knapsack.Knapsack.solve ?deadline]) receive explicitly.

    Every field has a neutral default, and with all defaults a solve is
    bit-identical to the pre-context build: [deadline] = {!none},
    [pool] resolves to the engine's process default, [rng = None] lets
    each randomized stage fall back to its own seed constant, and
    [cache = None] disables artifact reuse. *)

type decoded = ..
(** Opaque decoded-artifact values.  [Pipeline] extends this with its
    decoded curve so a cache provider can memoize the {e parsed} form
    next to the serialized payload: deserialization was the dominant
    per-component cost of an all-clean incremental re-solve, and a
    fingerprint-keyed decoded value is exactly as self-validating as the
    payload it was parsed from. *)

type artifact_cache = {
  find : string -> string option;
      (** fingerprint -> serialized artifact, [None] on a miss; any
          exception is treated as a miss (see [Pipeline]) *)
  store : string -> string -> unit;
      (** [store fingerprint payload] — best-effort, never consulted for
          correctness (lookups are keyed by content fingerprint, so a
          lost write only costs recomputation) *)
  find_decoded : string -> decoded option;
      (** fingerprint -> memoized decoded artifact; purely an
          acceleration of [find] + parse, with the same keying *)
  store_decoded : string -> decoded -> unit;
      (** best-effort, like {!artifact_cache.store} *)
}

val cache :
  ?find_decoded:(string -> decoded option) ->
  ?store_decoded:(string -> decoded -> unit) ->
  find:(string -> string option) ->
  store:(string -> string -> unit) ->
  unit ->
  artifact_cache
(** Build an {!artifact_cache}; the decoded-memo hooks default to a
    no-op (every hit parses the payload). *)

type fp_hints = {
  hint_find : string -> string option;
      (** hint key -> previously computed component fingerprint.  A hint
          key is the fingerprint header (format version, budget, grid,
          solver options) plus the component's canonical property
          footprint, so a hit is only possible when those all match; the
          {e provider} guarantees the component's content (queries,
          utilities, classifier costs) is unchanged since the hint was
          recorded — the workload store does this by evicting hints
          whose footprint intersects any applied delta (and all of them
          on a budget change).  Never hand the pipeline hints without
          that eviction discipline: a stale hint skips the content hash
          and would alias two different subproblems. *)
  hint_record : string -> string list -> string -> unit;
      (** [hint_record key footprint fingerprint] — called after a
          fingerprint was computed from scratch; [footprint] is the
          component's sorted property names, what the provider's
          eviction scan intersects with delta footprints.  Best-effort,
          like {!artifact_cache.store}. *)
}
(** Fingerprint-bypass hints: re-fingerprinting every component on
    every incremental solve is the dominant fixed cost of an all-clean
    re-solve, and for components a delta provably did not touch it
    recomputes a hash that cannot have changed.  *)

type t = {
  deadline : Bcc_robust.Deadline.t;  (** cancellation context for the whole solve *)
  corr : string option;  (** telemetry correlation id to emit events under *)
  warm : Solution.t option;  (** previous solution banked as an incumbent *)
  pool : Bcc_engine.Engine.Pool.t option;
      (** engine pool for portfolio races; [None] = process default *)
  rng : Bcc_util.Rng.t option;
      (** base randomness stream; [None] = each stage's own seed
          constant (the historical behavior).  {!Pipeline} derives a
          per-component stream from this via
          {!Bcc_util.Rng.derive_fingerprint}. *)
  cache : artifact_cache option;  (** pipeline artifact cache, if any *)
  hints : fp_hints option;
      (** fingerprint-bypass hints, if the caller can guarantee their
          eviction discipline (see {!fp_hints}); [None] = always hash *)
}

val make :
  ?deadline:Bcc_robust.Deadline.t ->
  ?corr:string ->
  ?warm:Solution.t ->
  ?pool:Bcc_engine.Engine.Pool.t ->
  ?rng:Bcc_util.Rng.t ->
  ?cache:artifact_cache ->
  ?hints:fp_hints ->
  unit ->
  t

val pool : t -> Bcc_engine.Engine.Pool.t
(** The context's pool, resolving [None] to the process default. *)

val with_corr : t -> (unit -> 'a) -> 'a
(** Run with the context's correlation id installed as ambient (no-op
    when the context carries none — but see {!Bcc_core.Solver.solve_with_ctx},
    which mints a fresh ambient id for a fully unscoped solve so its
    progress stream stays separable by correlation id). *)
