module Trace = Bcc_obs.Trace

type mode = [ `Lossless | `Paper ]

let kept_count mask = Array.fold_left (fun acc k -> if k then acc + 1 else acc) 0 mask

let rule1 ?budget ?(mode = `Lossless) ?(deadline = Bcc_robust.Deadline.none) inst =
  Trace.with_span ~name:"prune" @@ fun sp ->
  let budget = match budget with Some b -> b | None -> Instance.budget inst in
  let n = Instance.num_classifiers inst in
  let keep = Array.make n true in
  let singleton_sum c =
    Propset.fold
      (fun acc p -> acc +. Instance.cost_of inst (Propset.singleton p))
      0.0 c
  in
  for id = 0 to n - 1 do
    let c = Instance.classifier inst id in
    let len = Propset.length c in
    if len > 1 then begin
      let replacement = singleton_sum c in
      let threshold =
        match mode with
        | `Lossless -> Instance.cost inst id
        | `Paper -> float_of_int len *. Instance.cost inst id
      in
      if replacement <= threshold then keep.(id) <- false
    end
  done;
  (* Budget guard: re-admit long classifiers for queries that pruning
     would make unaffordable.  The fast path — the all-singleton cover
     fits the budget — skips the exact DP. *)
  let state = Cover.create inst in
  for qi = 0 to Instance.num_queries inst - 1 do
    (* The budget guard's cheapest-cover scans dominate on big
       instances; the explicit context deadline bounds them per query. *)
    Bcc_robust.Deadline.check deadline;
    let q = Instance.query inst qi in
    let singles = singleton_sum q in
    if singles > budget then begin
      let affordable_with_kept =
        match Covers.cheapest_cover state ~allowed:(fun id -> keep.(id)) qi with
        | Some (c, _) -> c <= budget
        | None -> false
      in
      if not affordable_with_kept then begin
        let affordable_at_all =
          match Covers.cheapest_cover state qi with
          | Some (c, _) -> c <= budget
          | None -> false
        in
        if affordable_at_all then
          List.iter
            (fun c ->
              match Instance.classifier_id inst c with
              | Some id -> keep.(id) <- true
              | None -> ())
            (Propset.subsets q)
      end
    end
  done;
  if Trace.recording sp then begin
    Trace.add_attr sp "total" (Trace.Int n);
    Trace.add_attr sp "kept" (Trace.Int (kept_count keep));
    Trace.add_attr sp "mode"
      (Trace.Str (match mode with `Lossless -> "lossless" | `Paper -> "paper"))
  end;
  keep
