module Hypergraph = Bcc_graph.Hypergraph
module Densest = Bcc_dks.Densest
module Trace = Bcc_obs.Trace

let ratio_of (sol : Solution.t) =
  if sol.Solution.cost > 1e-12 then sol.Solution.utility /. sol.Solution.cost
  else if sol.Solution.utility > 1e-12 then infinity
  else 0.0

(* Minimal covers of query [q] by classifiers of length <= [vertex_len],
   of cardinality <= [max_size], plus the all-singleton cover. *)
let minimal_covers inst q ~vertex_len ~max_size =
  let candidates =
    List.filter
      (fun c ->
        Propset.length c <= vertex_len && Instance.classifier_id inst c <> None)
      (Propset.subsets q)
  in
  let cands = Array.of_list candidates in
  let bits = Array.map (fun c -> Propset.positions_in c q) cands in
  let full = (1 lsl Propset.length q) - 1 in
  let n = Array.length cands in
  let out = ref [] in
  for i = 0 to n - 1 do
    if bits.(i) = full then out := [ cands.(i) ] :: !out
  done;
  if max_size >= 2 then
    for i = 0 to n - 1 do
      if bits.(i) <> full then
        for j = i + 1 to n - 1 do
          if bits.(j) <> full && bits.(i) lor bits.(j) = full then
            out := [ cands.(i); cands.(j) ] :: !out
        done
    done;
  if max_size >= 3 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if bits.(i) lor bits.(j) <> full then
          for k = j + 1 to n - 1 do
            if
              bits.(i) lor bits.(j) lor bits.(k) = full
              && bits.(i) lor bits.(k) <> full
              && bits.(j) lor bits.(k) <> full
            then out := [ cands.(i); cands.(j); cands.(k) ] :: !out
          done
      done
    done;
  (* The all-singleton cover (always minimal when it exists). *)
  if Propset.length q > max_size then begin
    let singles = List.map Propset.singleton (Propset.to_list q) in
    if List.for_all (fun c -> Instance.classifier_id inst c <> None) singles then
      out := singles :: !out
  end;
  !out

let solve inst =
  Trace.with_span ~name:"ecc" @@ fun sp ->
  let l = max (Instance.max_length inst) 2 in
  let vertex_len = l - 1 in
  (* Vertex table: participating classifiers + the auxiliary v*. *)
  let vertex_of = Propset.Tbl.create 256 in
  let rev = ref [] in
  let next = ref 0 in
  let intern c =
    match Propset.Tbl.find_opt vertex_of c with
    | Some v -> v
    | None ->
        let v = !next in
        incr next;
        Propset.Tbl.add vertex_of c v;
        rev := c :: !rev;
        v
  in
  let edges = ref [] in
  let best_single = ref Solution.empty in
  for qi = 0 to Instance.num_queries inst - 1 do
    let q = Instance.query inst qi in
    let u = Instance.utility inst qi in
    let max_size = if Propset.length q <= 4 then 3 else 2 in
    List.iter
      (fun cover ->
        let nodes = List.map intern cover in
        (* Singleton covers attach to v* (added below) to avoid
           single-node hyperedges degenerating. *)
        edges := (nodes, u) :: !edges)
      (minimal_covers inst q ~vertex_len ~max_size);
    (* The exact-match classifier candidate (length-l arm of the
       proof). *)
    if Instance.classifier_id inst q <> None then begin
      let sol = Solution.of_sets inst [ q ] in
      if ratio_of sol > ratio_of !best_single then best_single := sol
    end
  done;
  let vstar = !next in
  incr next;
  let n = !next in
  let node_costs = Array.make n 0.0 in
  List.iteri
    (fun i c ->
      let v = n - 2 - i in
      node_costs.(v) <- Instance.cost_of inst c)
    !rev;
  node_costs.(vstar) <- 0.0;
  let edge_array =
    Array.of_list
      (List.map
         (fun (nodes, u) ->
           let nodes = match nodes with [ single ] -> [ single; vstar ] | _ -> nodes in
           (Array.of_list nodes, u))
         !edges)
  in
  let densest_sol =
    if n <= 1 || Array.length edge_array = 0 then Solution.empty
    else begin
      let sel =
        if Array.for_all (fun (nodes, _) -> Array.length nodes <= 2) edge_array then begin
          (* All covers are pairs (the l <= 2 regime): the hypergraph is a
             graph and the densest subgraph is solvable exactly
             (Theorem 5.4's PTIME claim), via Dinkelbach + min-cut. *)
          let b = Bcc_graph.Graph.builder n in
          Array.iteri (fun v c -> Bcc_graph.Graph.set_node_cost b v c) node_costs;
          Array.iter
            (fun (nodes, w) ->
              match nodes with
              | [| u; v |] -> Bcc_graph.Graph.add_edge b u v w
              | _ -> assert false)
            edge_array;
          fst (Densest.exact_graph (Bcc_graph.Graph.build b))
        end
        else begin
          let h = Hypergraph.create ~node_costs ~edges:edge_array in
          fst (Densest.peel h)
        end
      in
      let classifiers = ref [] in
      List.iteri
        (fun i c ->
          let v = n - 2 - i in
          if sel.(v) then classifiers := c :: !classifiers)
        !rev;
      Solution.of_sets inst !classifiers
    end
  in
  let win_densest = ratio_of densest_sol >= ratio_of !best_single in
  if Trace.recording sp then begin
    Trace.add_attr sp "vertices" (Trace.Int n);
    Trace.add_attr sp "hyperedges" (Trace.Int (Array.length edge_array));
    Trace.add_attr sp "arm" (Trace.Str (if win_densest then "densest" else "single"))
  end;
  if win_densest then densest_sol else !best_single
