module Knapsack = Bcc_knapsack.Knapsack
module Qk = Bcc_qk.Qk
module Mc3 = Bcc_setcover.Mc3
module Trace = Bcc_obs.Trace
module Event = Bcc_obs.Event
module Progress = Bcc_obs.Progress
module Engine = Bcc_engine.Engine
module Deadline = Bcc_robust.Deadline
module Timer = Bcc_util.Timer

let log_src = Logs.Src.create "bcc.solver" ~doc:"A^BCC round-by-round progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  prune : bool;
  prune_mode : Prune.mode;
  mc3_improve : bool;
  residual_rounds : bool;
  final_sweep : bool;
  max_rounds : int;
  max_qk_nodes : int;
  knapsack_grid : int;
  qk : Qk.options;
  mc3_max_queries : int;
}

let default_options =
  {
    prune = true;
    prune_mode = `Lossless;
    mc3_improve = true;
    residual_rounds = true;
    final_sweep = true;
    max_rounds = 8;
    max_qk_nodes = 50_000;
    knapsack_grid = 10_000;
    (* Fewer bipartition restarts and expensive-node branches than the
       standalone QK defaults: the solver calls QK many times per run
       (per round, per allocation) and the realized-gain arbiter plus the
       residual rounds already provide diversification. *)
    qk = { Qk.default_options with bipartitions = 2; max_expensive_branches = 4 };
    mc3_max_queries = 30_000;
  }

(* Cost of selecting [ids] on top of [state] (ignoring already-selected
   ones). *)
let marginal_cost inst state ids =
  List.fold_left
    (fun acc id -> if Cover.is_selected state id then acc else acc +. Instance.cost inst id)
    0.0 ids

(* Try the MC3 local-search improvement (Algorithm 1 line 3): a cheaper
   cover of the already-covered queries.  Returns a replacement state
   when it strictly improves the spent cost without losing utility. *)
let mc3_improvement inst state options =
  Trace.with_span ~name:"mc3" @@ fun sp ->
  let covered = Cover.covered_queries state in
  let n_covered = List.length covered in
  if Trace.recording sp then Trace.add_attr sp "covered" (Trace.Int n_covered);
  let result =
  if n_covered = 0 then None
  else if Instance.max_length inst > 2 && n_covered > options.mc3_max_queries then None
  else begin
    let queries =
      Array.of_list (List.map (fun qi -> Propset.to_array (Instance.query inst qi)) covered)
    in
    (* Candidate classifiers: every finite-cost subset of a covered
       query. *)
    let seen = Hashtbl.create 256 in
    let rev = ref [] in
    List.iter
      (fun qi ->
        List.iter
          (fun c ->
            match Instance.classifier_id inst c with
            | Some id when not (Hashtbl.mem seen id) ->
                Hashtbl.add seen id ();
                rev := id :: !rev
            | _ -> ())
          (Propset.subsets (Instance.query inst qi)))
      covered;
    let candidate_ids = Array.of_list (List.rev !rev) in
    let classifiers =
      Array.map
        (fun id -> (Propset.to_array (Instance.classifier inst id), Instance.cost inst id))
        candidate_ids
    in
    let mc3 = { Mc3.queries; classifiers } in
    match Mc3.solve mc3 with
    | Some { Mc3.cost; chosen } when cost < Cover.spent state -. 1e-9 ->
        let state' = Cover.create inst in
        List.iter (fun i -> Cover.select state' candidate_ids.(i)) chosen;
        (* Safety: the replacement must preserve the covered utility
           (it covers a superset of the previously covered queries). *)
        if Cover.covered_utility state' >= Cover.covered_utility state -. 1e-9 then Some state'
        else None
    | _ -> None
  end
  in
  if Trace.recording sp then begin
    Trace.add_attr sp "improved" (Trace.Bool (Option.is_some result));
    match result with
    | Some s' ->
        Trace.add_attr sp "reclaimed"
          (Trace.Float (Cover.spent state -. Cover.spent s'))
    | None -> ()
  end;
  result

(* Ratio-greedy sweep: repeatedly buy the whole cheapest cover with the
   best utility/cost ratio until [limit] is exhausted.  Mutates [state];
   used both as a portfolio candidate (from a clone) and as the final
   leftover-budget sweep. *)
let greedy_sweep ?allowed state ~limit =
  Trace.with_span ~name:"sweep" @@ fun sp ->
  let inst = Cover.instance state in
  let spent0 = Cover.spent state in
  let heap = Bcc_util.Heap.create ~max:true (Instance.num_queries inst) in
  let ratio_of qi =
    match Covers.cheapest_cover ?allowed state qi with
    | None -> None
    | Some (cost, ids) ->
        let u = Instance.utility inst qi in
        Some ((if cost <= 1e-12 then infinity else u /. cost), cost, ids)
  in
  List.iter
    (fun qi ->
      match ratio_of qi with
      | Some (r, _, _) -> Bcc_util.Heap.insert heap qi r
      | None -> ())
    (Cover.uncovered_queries state);
  let parked = ref [] in
  let continue_ = ref true in
  while !continue_ do
    Deadline.poll ();
    match Bcc_util.Heap.pop heap with
    | None -> continue_ := false
    | Some (qi, _) ->
        if not (Cover.is_covered state qi) then begin
          match ratio_of qi with
          | None -> ()
          | Some (r, cost, ids) ->
              if cost <= limit -. (Cover.spent state -. spent0) +. 1e-9 then begin
                List.iter (fun id -> Cover.select state id) ids;
                (* Eagerly refresh the queries whose covers the new
                   selections may have cheapened. *)
                List.iter
                  (fun id ->
                    Array.iter
                      (fun q ->
                        if not (Cover.is_covered state q) then begin
                          match ratio_of q with
                          | Some (r', _, _) -> Bcc_util.Heap.update heap q r'
                          | None -> ignore (Bcc_util.Heap.remove heap q)
                        end)
                      (Instance.queries_containing inst id))
                  ids;
                (* And give the parked queries another chance. *)
                List.iter
                  (fun (q, pr) ->
                    if not (Bcc_util.Heap.mem heap q) then Bcc_util.Heap.insert heap q pr)
                  !parked;
                parked := []
              end
              else parked := (qi, r) :: !parked
        end
  done;
  if Trace.recording sp then begin
    Trace.add_attr sp "limit" (Trace.Float limit);
    Trace.add_attr sp "spent" (Trace.Float (Cover.spent state -. spent0))
  end

type outcome = { solution : Solution.t; degraded : bool }

let solve_with_ctx ?(options = default_options) (ctx : Solve_ctx.t) inst =
  (* A solve with no explicit correlation id and no enclosing scope
     mints a fresh one, so every solver run's progress stream is
     separable by correlation id (the Progress.solve_curves contract —
     merging successive solves' streams is exactly the BENCH_9 anytime
     corruption).  Inside an existing scope (a server request, a
     pipeline driving component sub-solves) the ambient id is kept, so
     the whole request stays one recorder stream. *)
  (match ctx.Solve_ctx.corr with
   | None when Event.enabled () && Event.current_corr () = "" ->
       Event.with_corr (Event.new_corr ())
   | _ -> Solve_ctx.with_corr ctx)
  @@ fun () ->
  Trace.with_span ~name:"solve" @@ fun sp ->
  let deadline = ctx.Solve_ctx.deadline in
  let warm = ctx.Solve_ctx.warm in
  let pool = Solve_ctx.pool ctx in
  let budget = Instance.budget inst in
  if Trace.recording sp then begin
    Trace.add_attr sp "classifiers" (Trace.Int (Instance.num_classifiers inst));
    Trace.add_attr sp "queries" (Trace.Int (Instance.num_queries inst));
    Trace.add_attr sp "budget" (Trace.Float budget);
    if not (Deadline.is_none deadline) then
      Trace.add_attr sp "deadline_s" (Trace.Float (Deadline.remaining_s deadline))
  end;
  Deadline.with_current deadline @@ fun () ->
  (* Anytime progress stream (tentpole of the telemetry layer).  The
     whole block is observation-only — no solver state is read back out
     of it — so solutions are bit-identical with events on or off, and
     with events off every site below costs one [ev] branch.  [ev] is
     snapshotted once so a mid-solve toggle cannot produce a report
     without its solve_start. *)
  let ev = Event.enabled () in
  let t0 = if ev then Timer.now_s () else 0.0 in
  if ev then
    Event.emit "solve_start"
      ~attrs:
        [
          ("classifiers", Event.Int (Instance.num_classifiers inst));
          ("queries", Event.Int (Instance.num_queries inst));
          ("budget", Event.Float budget);
          ("deadline_s", Event.Float (Deadline.remaining_s deadline));
        ];
  let improvements = ref 0 in
  let last_emitted_u = ref neg_infinity in
  (* Sizes of the most recently built decomposition (the round's
     full-budget one — round 0 builds the half-budget one first and the
     full-budget build overwrites).  Attached to incumbent updates so
     the curve shows how much structure each round raced over. *)
  let last_knap = ref 0 in
  let last_qk = ref 0 in
  let note_degraded reason =
    if ev then Event.emit "degraded" ~attrs:[ ("reason", Event.Str reason) ]
  in
  let emit_incumbent ~round ~arm ~utility ~cost =
    if ev then begin
      if utility > !last_emitted_u +. 1e-12 then incr improvements;
      last_emitted_u := utility;
      Progress.emit_incumbent
        {
          Progress.round;
          arm;
          utility;
          cost;
          budget_slack = budget -. cost;
          deadline_margin_s = Deadline.remaining_s (Deadline.current ());
          knap_items = !last_knap;
          qk_nodes = !last_qk;
        }
    end
  in
  let degraded = ref false in
  let state = ref (Cover.create inst) in
  (* Zero-cost classifiers are free wins (paper preprocessing). *)
  for id = 0 to Instance.num_classifiers inst - 1 do
    if Instance.cost inst id <= 0.0 then Cover.select !state id
  done;
  (* Warm start: re-validate a previous solution against this instance
     (classifiers that left the universe vanish, costs are re-read) and
     adopt every pick that still fits the budget as the starting state.
     The seeded state is also banked as an incumbent raced at the end,
     so the result never trails its own re-validated seed.  Picks are
     ordered by (cost, set) so re-seeding is deterministic regardless of
     the order the previous solution listed them. *)
  let warm_banked =
    match warm with
    | None -> None
    | Some prev ->
        Trace.with_span ~name:"warm_seed" @@ fun wsp ->
        let picks =
          List.filter_map (Instance.classifier_id inst) prev.Solution.classifiers
          |> List.sort_uniq compare
          |> List.map (fun id -> (Instance.cost inst id, Instance.classifier inst id, id))
          |> List.sort (fun (c1, s1, _) (c2, s2, _) ->
                 match Float.compare c1 c2 with 0 -> Propset.compare s1 s2 | n -> n)
        in
        List.iter
          (fun (cost, _, id) ->
            if (not (Cover.is_selected !state id)) && Cover.spent !state +. cost <= budget +. 1e-9
            then Cover.select !state id)
          picks;
        let banked = Solution.of_ids inst (Cover.selected !state) in
        if Trace.recording wsp then begin
          Trace.add_attr wsp "given" (Trace.Int (List.length prev.Solution.classifiers));
          Trace.add_attr wsp "seeded" (Trace.Int (List.length banked.Solution.classifiers));
          Trace.add_attr wsp "utility" (Trace.Float banked.Solution.utility)
        end;
        Some banked
  in
  (* Anytime fallback: with a real deadline in play, bank a cheap greedy
     incumbent up front so an expiry in round 0 still returns a useful
     feasible solution rather than just the zero-cost classifiers.  Off
     the deadline path this costs one [is_none] check. *)
  let fallback =
    if Deadline.is_none (Deadline.current ()) then None
    else
      try
        let s = Cover.clone !state in
        greedy_sweep s ~limit:(budget -. Cover.spent s);
        Some (Solution.of_ids inst (Cover.selected s))
      with Deadline.Expired _ ->
        degraded := true;
        note_degraded "fallback_seed";
        None
  in
  let keep =
    if options.prune then
      try Prune.rule1 ~mode:options.prune_mode ~deadline inst
      with Deadline.Expired _ ->
        (* Pruning is an optimization, never a prerequisite: an expiry
           here degrades to the unpruned universe and lets the rounds
           salvage what time remains. *)
        degraded := true;
        note_degraded "prune";
        Array.make (Instance.num_classifiers inst) true
    else [||]
  in
  if ev && options.prune then begin
    let kept = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 keep in
    Event.emit "prune"
      ~attrs:[ ("kept", Event.Int kept); ("total", Event.Int (Array.length keep)) ]
  end;
  let allowed id = if options.prune then keep.(id) else true in
  let max_rounds = if options.residual_rounds then max 1 options.max_rounds else 1 in
  let continue_ = ref true in
  let round = ref 0 in
  (* The MC3 step rarely starts succeeding after failing twice in a row;
     back off to keep large instances fast. *)
  let mc3_failures = ref 0 in
  (* The recovery point: [!state] only ever changes after the realized-
     gain arbiter commits a winner, so unwinding out of a round with
     [Expired] (from the round-boundary poll or re-raised out of an arm
     portfolio) leaves it a budget-feasible incumbent. *)
  (try
  while !continue_ && !round < max_rounds do
    Deadline.poll ();
    let remaining = budget -. Cover.spent !state in
    if remaining <= 1e-9 then continue_ := false
    else begin
      Trace.with_span ~name:"round" @@ fun rsp ->
      if Trace.recording rsp then begin
        Trace.add_attr rsp "round" (Trace.Int !round);
        Trace.add_attr rsp "remaining" (Trace.Float remaining)
      end;
      let base_utility = Cover.covered_utility !state in
      let evaluate ids =
        let s = Cover.clone !state in
        List.iter (fun id -> Cover.select s id) ids;
        (Cover.covered_utility s -. base_utility, s)
      in
      (* Per Algorithm 1 the first round reserves half the budget for
         the residual rounds; we evaluate the full-budget decomposition
         as well and keep whichever realizes more utility — a strict
         improvement that never violates the budget. *)
      let allocs = if !round = 0 then [ remaining /. 2.0; remaining ] else [ remaining ] in
      (* The per-round arm portfolio (Knapsack-vs-QK and friends), raced
         through the engine.  The decompositions and [!state] are read
         shared between arms — the cover state is not mutated until the
         realized-gain arbiter below picks a winner. *)
      let arm_tasks =
        List.concat_map
          (fun alloc ->
            let knap, qkp =
              Decompose.build ~allowed ~max_qk_nodes:options.max_qk_nodes !state ~budget:alloc
            in
            if ev then begin
              last_knap := Array.length knap.Decompose.weights;
              last_qk := Array.length qkp.Decompose.node_classifier
            end;
            (* BCC(1): knapsack over residual 1-covers, under both credit
               schemes; the realized-gain arbiter picks the better. *)
            let knap_candidate values () =
              let ksol =
                Knapsack.solve ~grid:options.knapsack_grid ~deadline ~values
                  ~weights:knap.Decompose.weights alloc
              in
              List.map (fun i -> knap.Decompose.item_classifier.(i)) ksol.Knapsack.items
            in
            (* Whole-cover knapsack: one composite item per uncovered
               query, weighing its cheapest complete cover.  This makes
               i-covers with i >= 3 (invisible to the BCC(1)/BCC(2)
               decomposition until residual progress) competitive in the
               same round.  Shared classifiers across covers are charged
               repeatedly — a conservative overestimate; the realized
               evaluation and later rounds recover the sharing. *)
            let cover_ids () =
              let entries =
                List.filter_map
                  (fun qi ->
                    match Covers.cheapest_cover ~allowed !state qi with
                    | Some (cost, ids) when cost <= alloc ->
                        Some (Instance.utility inst qi, cost, ids)
                    | _ -> None)
                  (Cover.uncovered_queries !state)
              in
              let values = Array.of_list (List.map (fun (u, _, _) -> u) entries) in
              let weights = Array.of_list (List.map (fun (_, c, _) -> c) entries) in
              let covers = Array.of_list (List.map (fun (_, _, ids) -> ids) entries) in
              let ksol =
                Knapsack.solve ~grid:options.knapsack_grid ~deadline ~values ~weights alloc
              in
              List.sort_uniq compare
                (List.concat_map (fun i -> covers.(i)) ksol.Knapsack.items)
            in
            (* BCC(2): QK over residual 2-covers (itself an engine
               portfolio — batches nest). *)
            let qk_ids () =
              let qsol =
                Qk.solve ~options:options.qk ~pool ?rng:ctx.Solve_ctx.rng qkp.Decompose.qk
              in
              List.filter_map
                (fun v ->
                  let id = qkp.Decompose.node_classifier.(v) in
                  if id >= 0 then Some id else None)
                qsol.Qk.nodes
            in
            (* Label each arm for the round span; a ":half" suffix marks
               the round-0 half-budget allocation. *)
            let tag base = if alloc < remaining -. 1e-12 then base ^ ":half" else base in
            List.map
              (fun (name, gen) ->
                let arm = tag name in
                Engine.Task.make ~label:("solver.arm:" ^ arm) (fun _ -> (arm, gen ())))
              [
                ("knap", knap_candidate knap.Decompose.values);
                ("knap-all", knap_candidate knap.Decompose.values_all);
                ("cover", cover_ids);
                ("qk", qk_ids);
              ])
          allocs
      in
      let candidates = Engine.Portfolio.collect pool arm_tasks in
      (* Realized gains, each on its own clone of the cover state. *)
      let evaluated =
        Engine.Portfolio.collect pool
          (List.map
             (fun (arm, ids) ->
               Engine.Task.make ~label:("solver.eval:" ^ arm) (fun _ ->
                   let g, s = evaluate ids in
                   (arm, ids, g, s)))
             candidates)
      in
      (* Reduce in fixed task order (never completion order): best gain,
         near-ties broken toward the cheaper selection, exactly as the
         old sequential scan did. *)
      let gain, chosen_state, chosen_ids, chosen_arm =
        List.fold_left
          (fun (bg, bs, bi, ba) (arm, ids, g, s) ->
            if
              g > bg +. 1e-12
              || (g > bg -. 1e-12 && marginal_cost inst !state ids < marginal_cost inst !state bi)
            then (g, s, ids, arm)
            else (bg, bs, bi, ba))
          (neg_infinity, !state, [], "none") evaluated
      in
      (* Feasibility guard: both subproblems were budgeted at [alloc]. *)
      let cost_added = marginal_cost inst !state chosen_ids in
      if Trace.recording rsp then begin
        Trace.add_attr rsp "arm" (Trace.Str chosen_arm);
        Trace.add_attr rsp "gain" (Trace.Float gain);
        Trace.add_attr rsp "cost" (Trace.Float cost_added)
      end;
      Log.debug (fun m ->
          m "round %d: remaining=%.1f best arm=%s gain=%.1f (cost %.1f, %d classifiers)" !round
            remaining chosen_arm gain cost_added (List.length chosen_ids));
      if gain > 1e-9 && cost_added <= remaining +. 1e-6 then begin
        state := chosen_state;
        emit_incumbent ~round:!round ~arm:chosen_arm
          ~utility:(Cover.covered_utility !state)
          ~cost:(Cover.spent !state);
        if options.mc3_improve && !mc3_failures < 2 then begin
          match mc3_improvement inst !state options with
          | Some better ->
              Log.debug (fun m ->
                  m "round %d: MC3 local search reclaimed %.1f of budget" !round
                    (Cover.spent !state -. Cover.spent better));
              state := better;
              emit_incumbent ~round:!round ~arm:"mc3"
                ~utility:(Cover.covered_utility !state)
                ~cost:(Cover.spent !state);
              mc3_failures := 0
          | None -> incr mc3_failures
        end
      end
      else if !round > 0 then
        (* A fruitless full-allocation round ends the loop; a fruitless
           half-budget first round still deserves a full-budget try. *)
        continue_ := false;
      incr round
    end
  done
  with Deadline.Expired _ ->
    degraded := true;
    note_degraded "rounds");
  (* Final sweep: spend any leftover budget on whole cheapest covers.
     Skipped once degraded — its polls would raise immediately. *)
  if options.final_sweep && not !degraded then begin
    (try greedy_sweep !state ~limit:(budget -. Cover.spent !state)
     with Deadline.Expired _ ->
       degraded := true;
       note_degraded "sweep");
    emit_incumbent ~round:!round ~arm:"sweep"
      ~utility:(Cover.covered_utility !state)
      ~cost:(Cover.spent !state)
  end;
  let structured = Solution.of_ids inst (Cover.selected !state) in
  (* Top-level portfolio: a pure ratio-greedy run occasionally beats the
     decomposition on workloads dominated by long queries (it exploits
     classifier sharing sequentially); keep whichever realizes more. *)
  let result =
    if (not options.final_sweep) || !degraded then structured
    else begin
      let race =
        [
          Engine.Task.make ~label:"solver.race:greedy" (fun _ ->
              let greedy_state = Cover.create inst in
              for id = 0 to Instance.num_classifiers inst - 1 do
                if Instance.cost inst id <= 0.0 then Cover.select greedy_state id
              done;
              greedy_sweep greedy_state ~limit:(budget -. Cover.spent greedy_state);
              Solution.of_ids inst (Cover.selected greedy_state));
          (* And a per-classifier greedy arm (the IG2 rule), which
             sometimes wins on workloads where one classifier contributes
             to many queries without completing any single cover
             cheaply. *)
          Engine.Task.make ~label:"solver.race:ig2" (fun _ ->
              Baselines.ig2 inst Baselines.Budget);
        ]
      in
      try
        match Engine.Portfolio.collect pool race with
        | [ by_query; by_classifier ] ->
            Solution.better structured (Solution.better by_query by_classifier)
        | _ -> structured
      with Deadline.Expired _ ->
        degraded := true;
        note_degraded "race";
        structured
    end
  in
  if ev && result.Solution.utility > Cover.covered_utility !state +. 1e-12 then
    emit_incumbent ~round:!round ~arm:"race" ~utility:result.Solution.utility
      ~cost:result.Solution.cost;
  (* On the degraded path the banked greedy incumbent competes with
     whatever the interrupted rounds left behind. *)
  let result =
    match fallback with Some f when !degraded -> Solution.better result f | _ -> result
  in
  (* The warm incumbent competes unconditionally: rounds that drifted
     away from the seed must still beat it to win. *)
  let result =
    match warm_banked with Some w -> Solution.better result w | None -> result
  in
  if Trace.recording sp then begin
    Trace.add_attr sp "rounds" (Trace.Int !round);
    Trace.add_attr sp "degraded" (Trace.Bool !degraded);
    Trace.add_attr sp "utility" (Trace.Float result.Solution.utility);
    Trace.add_attr sp "cost" (Trace.Float result.Solution.cost)
  end;
  (* Close the anytime curve on the returned solution (arm ["final"], so
     the curve's last utility always equals the answer), then summarize
     the whole solve in one wide [solve_report] event — the flight
     recorder keys its completion (and slow/degraded dumps) off it. *)
  if ev then begin
    emit_incumbent ~round:!round ~arm:"final" ~utility:result.Solution.utility
      ~cost:result.Solution.cost;
    let total = Instance.total_utility inst in
    Progress.emit_report
      {
        Progress.rounds = !round;
        improvements = !improvements;
        utility = result.Solution.utility;
        cost = result.Solution.cost;
        utility_ratio = (if total <= 0.0 then 1.0 else result.Solution.utility /. total);
        degraded = !degraded;
        wall_s = Timer.now_s () -. t0;
      }
  end;
  { solution = result; degraded = !degraded }

let solve_within ?options ?warm ~deadline inst =
  solve_with_ctx ?options (Solve_ctx.make ~deadline ?warm ()) inst

(* The ambient deadline (if any — e.g. installed by the daemon around a
   request, and re-installed by engine tasks) flows into [solve_within],
   so the GMC3/ECC reductions and every other caller inherit graceful
   degradation without signature changes. *)
let solve ?options ?warm inst =
  (solve_within ?options ?warm ~deadline:(Deadline.current ()) inst).solution
