(** [A^BCC] — the paper's algorithm for the general BCC problem
    (Algorithm 1, Section 4).

    + {b Preprocessing} (line 1): pruning rule 1 (replaceable long
      classifiers, {!Prune.rule1}) and the spectral QK-node cap
      ([max_qk_nodes], applied inside {!Decompose.build}); zero-cost
      classifiers are selected upfront.
    + {b Half-budget BCC(1)/BCC(2)} (line 2): decompose the residual
      problem into a Knapsack instance (residual 1-covers) and a QK
      instance (residual 2-covers), solve both
      ({!Bcc_knapsack.Knapsack.solve} / {!Bcc_qk.Qk.solve}) and apply
      the solution of higher realized utility.  The first round uses
      half of the remaining budget, later rounds all of it.
    + {b MC3 local search} (line 3): ask {!Bcc_setcover.Mc3} for a
      cheaper classifier set covering the same covered queries; adopt it
      only when it actually is cheaper (and still covers), freeing
      budget for the residual rounds.
    + {b Residual iteration} (lines 4–6): recompute the residual
      problem — selected classifiers shrink what is left of each query,
      opening covering options that were 3-covers before (Example
      4.8) — and repeat until no round gains utility.
    + {b Final portfolio}: the structured result competes with two
      greedy passes (whole-cheapest-cover by utility ratio, and the
      per-classifier IG2 rule); the best realized solution wins.  This
      guarantees [A^BCC] never trails the greedy baselines, matching
      the dominance the paper reports; the decomposition arms supply
      the margins beyond them.

    {2 Telemetry}

    With {!Bcc_obs.Event} enabled, a run emits an {e anytime progress
    stream} under the ambient correlation id: one [solve_start], a
    [prune] summary, an {!Bcc_obs.Progress.incumbent} update at every
    incumbent commit (arm win, MC3 adoption, final sweep, race upset —
    and a closing one with arm ["final"] whose utility equals the
    returned solution's), a [degraded] marker at each deadline-expiry
    transition, and one closing {!Bcc_obs.Progress.report}.  The stream
    is observation-only: solutions are bit-identical with events on or
    off, and with them off the whole layer costs one atomic load. *)

type options = {
  prune : bool;  (** apply pruning rule 1 (Algorithm 1 line 1) *)
  prune_mode : Prune.mode;  (** lossless (default) or the paper's aggressive rule *)
  mc3_improve : bool;  (** apply the MC3 local-search step (line 3) *)
  residual_rounds : bool;  (** iterate lines 4–6 (off = single round) *)
  final_sweep : bool;
      (** spend leftover budget on whole cheapest covers (catches
          i-covers with i >= 3 that the BCC(1)/BCC(2) decomposition
          cannot express before partial progress) *)
  max_rounds : int;  (** safety cap on residual rounds (default 8) *)
  max_qk_nodes : int;  (** spectral cap on the QK graph (default 50_000) *)
  knapsack_grid : int;  (** budget grid for the knapsack DP *)
  qk : Bcc_qk.Qk.options;
  mc3_max_queries : int;
      (** skip the MC3 step above this many covered queries when [l > 2]
          (the exact min-cut handles any size at [l <= 2]) *)
}

val default_options : options

type outcome = { solution : Solution.t; degraded : bool }
(** [degraded] marks a solution returned because the deadline expired
    (or was cancelled) before the algorithm ran to completion.  The
    solution is still budget-feasible — it is the best incumbent the
    finished rounds committed, raced against a banked greedy pass. *)

val greedy_sweep : ?allowed:(int -> bool) -> Cover.t -> limit:float -> unit
(** Ratio-greedy sweep: repeatedly buy the whole cheapest cover with the
    best utility/cost ratio until [limit] extra budget is spent.
    Mutates the state in place; polls the ambient deadline.  Exposed so
    {!Pipeline} can spend assembly leftovers and race the same greedy
    baseline the monolithic solve races.
    @raise Bcc_robust.Deadline.Expired past the ambient deadline. *)

val solve_with_ctx : ?options:options -> Solve_ctx.t -> Instance.t -> outcome
(** The context-explicit entry point all others reduce to: deadline,
    warm seed, engine pool, correlation id and randomness arrive in one
    {!Solve_ctx.t} instead of ambient state.  With a default context
    this is bit-identical to {!solve}.  A context [rng] is threaded to
    the QK arm (replacing its seed constant) — {!Pipeline} uses this to
    give every component a fingerprint-derived stream.  The context
    [cache] is ignored here (artifact reuse is {!Pipeline}'s job).
    @raise Bcc_robust.Deadline.Expired never. *)

val solve_within :
  ?options:options ->
  ?warm:Solution.t ->
  deadline:Bcc_robust.Deadline.t ->
  Instance.t ->
  outcome
(** [solve] under a {!Bcc_robust.Deadline}.

    [warm] seeds the run with a previous solution (typically the last
    epoch's, via the workload store): it is re-validated against this
    instance — classifiers no longer in the universe are dropped, costs
    re-read, coverage recomputed — and every still-feasible pick becomes
    part of the starting cover state, which is additionally banked as an
    incumbent and raced against the final result.  The returned solution
    therefore never trails the re-validated seed.  Omitting [warm]
    (the default) leaves the run bit-identical to before this parameter
    existed.  The deadline is installed
    as the ambient cancellation context for the whole run, so every
    nested portfolio arm (QK restarts, HkS iterations, sweep loops)
    polls it cooperatively.  On expiry the algorithm does {e not} raise:
    it unwinds to the nearest round boundary and returns the best
    feasible incumbent with [degraded = true].  Passing
    {!Bcc_robust.Deadline.none} (and having no ambient deadline) makes
    the run bit-identical to {!solve} before this layer existed.
    @raise Bcc_robust.Deadline.Expired never. *)

val solve : ?options:options -> ?warm:Solution.t -> Instance.t -> Solution.t
(** Always returns a feasible solution (verified by construction:
    selections never exceed the remaining budget).  Equivalent to
    [solve_within ~deadline:(Deadline.current ())] with the [degraded]
    flag dropped, so a caller-installed ambient deadline still degrades
    gracefully. *)
