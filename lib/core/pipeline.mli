(** Incremental solve pipeline: the monolithic [A^BCC] solve, re-staged
    as four explicit artifacts so a delta-driven re-solve can reuse the
    stages a delta did not touch.

    + {b Pruned} — the keep-mask from {!Prune.rule1} plus the
      {e kept-query map}: queries whose cheapest complete cover fits the
      global budget.  Unaffordable queries can never be covered (any
      cover costs at least the cheapest one), so dropping them before
      decomposition loses nothing.
    + {b Components} — connected components of the overlap graph over
      the kept queries ({!Decompose.components}), each stamped with a
      {e content fingerprint}: an md5 over a canonical serialization of
      everything a per-component solve can observe (queries with
      utilities, finite-cost classifier subsets with costs, the global
      budget, the curve grid, the solver options and a format version —
      property sets keyed by sorted {e names} when the instance carries
      a symbol table, so fingerprints survive the store's replay
      re-interning).
      Classifiers cannot bridge components, so the instance decomposes
      exactly.
    + {b Component curves} — for each component, a budget → (utility,
      selection) curve: [grid + 1] points at evenly spaced budgets up
      to the component's spend cap (the sum of its queries' cheapest
      covers, clamped to the global budget).  The full-cap point is
      solved first; lower-budget points whose budget still fits the cap
      selection reuse it verbatim (a deterministic saturation shortcut
      — caps are loose, so most points need no sub-solve), the rest are
      solved on the restricted instance.  Each sub-solve draws its randomness from
      {!Bcc_util.Rng.derive_fingerprint} of a fixed pipeline constant
      and the component fingerprint, so a curve is a {e pure function
      of component content} — bit-stable regardless of which other
      components exist, the solve order, or the process run.  Curves of
      unchanged components are served from the context's artifact
      cache; the fingerprint key makes the cache self-validating (a hit
      can only return what a cold solve would recompute), and every
      loaded payload is checksum-verified and re-priced against the
      live instance, so a torn or corrupted artifact degrades to a
      recompute, never to a wrong answer.  The ["pipeline.artifact"]
      fault point ({!Bcc_robust.Fault}) covers the lookup.
    + {b Assembly} — a multiple-choice knapsack over the curves (one
      point per component, costs rounded {e up} onto a tick grid so the
      result is always feasible), a leftover-budget greedy sweep, and
      the same final race the monolithic solve runs (whole-cover
      greedy, IG2, and the re-validated warm bank when the context
      carries one) — so the pipeline never trails the baselines.

    Because reused curves are byte-identical to recomputed ones and
    everything downstream of the curves is deterministic, an
    incremental solve that reuses any subset of clean cached curves is
    {e bit-identical} to a cold pipeline solve of the same instance —
    the property the store's qcheck suite exercises end to end.

    With {!Bcc_obs.Event} enabled, a solve emits one [pipeline_reuse]
    event carrying the component totals, reuse count and wall time (on
    top of the per-sub-solve anytime streams). *)

type pruned = {
  keep : bool array;  (** {!Prune.rule1} keep-mask (all-true when pruning is off or expired) *)
  kept_queries : int list;  (** query ids whose cheapest cover fits the budget, ascending *)
  cheapest : float array;
      (** per-query cheapest complete-cover cost ([infinity] = uncoverable) *)
}

type staged_component = {
  comp : Decompose.component;
  fingerprint : string;  (** md5 hex over the canonical component content *)
  sub : Instance.t Lazy.t;
      (** the restricted instance the curve solves; forced only when the
          curve actually recomputes, so reused components never pay for
          the restriction *)
  cap : float;  (** spend cap: no budget beyond this helps the component *)
  comp_grid : int;
      (** the component's effective curve grid: small components use a
          coarser grid (their caps admit few meaningfully distinct
          budget splits), so a dirty small component costs fewer
          sub-solves.  A function of component content, and an input to
          [fingerprint]. *)
}

type point = {
  point_budget : float;
  point_utility : float;
  point_cost : float;  (** realized cost, [<= point_budget] *)
  sets : Propset.t list;  (** the selected classifiers, in parent property ids *)
}

type curve = { curve_fingerprint : string; points : point array }

type component_report = {
  fingerprint : string;
  num_queries : int;
  min_prop : int;
  props : Propset.t;
      (** the component's property footprint — what the store intersects
          delta footprints against to decide invalidation *)
  cap : float;
  reused : bool;  (** curve served from the artifact cache *)
  best_utility : float;  (** utility at the full-cap curve point *)
  comp_wall_s : float;  (** curve compute time; [0.0] when reused *)
}

type report = {
  outcome : Solver.outcome;
  components_total : int;
  components_reused : int;
  components : component_report list;
  wall_s : float;
}

val default_grid : int
(** Curve points per component minus one (default 8, i.e. 9 budgets
    including zero). *)

val fault_point : string
(** ["pipeline.artifact"] — the {!Bcc_robust.Fault} injection point on
    artifact-cache lookups. *)

val fingerprint :
  options:Solver.options -> grid:int -> Instance.t -> Decompose.component -> string
(** The content fingerprint described above.  Independent of query ids
    and insertion order; changes whenever any observable input to the
    component's sub-solve changes. *)

val options_fingerprint : Solver.options -> string
(** md5 hex over the canonical rendering of every solver option a
    component fingerprint embeds.  Two solves with equal
    [options_fingerprint] on the same instance compute identical
    artifacts — the scheduler uses it in coalescing keys so only
    same-options requests share a batch. *)

val curve_to_string : ?names:Symtab.t -> curve -> string
(** Self-checking artifact payload: versioned header, fingerprint and
    body md5, then the points.  With [names], selection sets are
    rendered as property {e names} (the store's symbol table re-interns
    ids in a different order after a replay; names survive). *)

val curve_of_string : ?names:Symtab.t -> fingerprint:string -> string -> curve option
(** Strict, total parse: [None] on a version, fingerprint or checksum
    mismatch, an unknown property name, or any malformed byte — callers
    treat [None] as a cache miss.  Pass the same [names] the payload was
    written with. *)

val prune_stage :
  options:Solver.options ->
  deadline:Bcc_robust.Deadline.t ->
  pool:Bcc_engine.Engine.Pool.t ->
  note_degraded:(string -> unit) ->
  Instance.t ->
  pruned
(** Stage 1 (exposed for tests and explain tooling).  The cheapest-cover
    scan fans out over [pool] in fixed query chunks on large instances;
    per-element results are identical at any job count.
    @raise Bcc_robust.Deadline.Expired past [deadline] (from the
    cheapest-cover scan; the prune itself degrades to keep-all). *)

val component_stage :
  ?hints:Solve_ctx.fp_hints ->
  options:Solver.options ->
  grid:int ->
  Instance.t ->
  pruned ->
  staged_component list
(** Stage 2 (exposed for tests and explain tooling): deterministic
    component order (by [min_prop]), fingerprints and spend caps.
    [hints] lets a caller that can prove a component's content unchanged
    since the last solve (the workload store, via delta-footprint
    eviction) serve its fingerprint without rehashing — the dominant
    fixed cost of an all-clean incremental re-solve.  The hint key
    embeds the fingerprint header (budget, grid, options), so only
    content changes rely on the provider's eviction guarantee, and a
    hinted fingerprint is always the one a cold hash would produce —
    the incremental == cold contract is unchanged. *)

val solve :
  ?options:Solver.options -> ?grid:int -> Solve_ctx.t -> Instance.t -> report
(** Run the full pipeline.  The context supplies the deadline, engine
    pool, warm bank and artifact cache; with no cache every component
    recomputes (a {e cold} pipeline solve).  Never raises
    {!Bcc_robust.Deadline.Expired}: expiry before the curves exist
    falls back to the monolithic {!Solver.solve_with_ctx} (degraded),
    later expiries degrade stage by stage exactly like the monolithic
    solve.  Degraded curves are never written to the cache. *)
