(** Decomposition of (residual) BCC into the BCC(1) and BCC(2)
    subproblems (Section 4, Observations 4.2–4.4, extended to residual
    problems per Section 4.2 / Example 4.8).

    Given the current cover state, every uncovered query [q] has a
    residual property set [r]; a classifier contained in [q] whose bits
    cover all of [r] is a residual {e 1-cover} (a Knapsack item), and a
    pair of classifiers jointly covering [r] with neither sufficient
    alone is a residual {e 2-cover} (a QK edge).  With an empty
    selection and [l = 2] this specializes exactly to the paper's
    Knapsack and QK instances of Example 4.5.

    The same query may appear both as an item and as edges, and a
    length->2 query may have several overlapping 2-covers — the paper
    accepts this bounded overcounting and repairs redundancy with the
    MC3 local-search step. *)

type knapsack_part = {
  values : float array;
      (** cheapest-credit: each query's utility credited only to its
          cheapest affordable 1-cover (avoids overcounting when several
          equivalent covers are all selected) *)
  values_all : float array;
      (** all-credit: every 1-cover receives the query's utility (the
          paper's literal reading; captures one classifier 1-covering
          several queries at the price of bounded overcounting) *)
  weights : float array;
  item_classifier : int array;  (** item index -> classifier id *)
}

type qk_part = {
  qk : Bcc_qk.Qk.instance;
  node_classifier : int array;
      (** QK node -> classifier id; [-1] marks the zero-cost virtual
          node whose edges carry the 1-cover (knapsack item) values,
          letting QK optimize the combined BCC(1)+BCC(2) objective *)
}

type component = {
  queries : int list;  (** query ids, ascending *)
  props : Propset.t;  (** union of the member queries' property sets *)
  min_prop : int;  (** the ordering key: minimum property id *)
  utility : float;  (** total utility of the member queries *)
}

val components : ?keep_query:(int -> bool) -> Instance.t -> component list
(** Connected components of the {e overlap graph}: queries connected
    (transitively) by shared properties, restricted to queries passing
    [keep_query] (default all).  Classifiers cannot bridge components —
    a relevant classifier is a subset of some query — so the BCC optimum
    over the whole instance decomposes into per-component optima under a
    budget split.

    Deterministic and hashtable-iteration independent: components are
    sorted by [min_prop] (property sets are disjoint across components,
    making that a total order), query lists are ascending, and the
    result depends only on instance content — permuting the query order
    of an otherwise identical instance yields the same component list up
    to the query-id relabeling. *)

val build :
  ?allowed:(int -> bool) ->
  ?max_qk_nodes:int ->
  Cover.t ->
  budget:float ->
  knapsack_part * qk_part
(** [allowed] filters the candidate classifiers (pruning, Section 4.2);
    [max_qk_nodes] caps the QK graph size by spectral leverage scores
    (the paper's second pruning procedure, default 50_000). *)

val leverage_scores : Bcc_graph.Graph.t -> float array
(** Power-iteration leverage proxy: squared leading-eigenvector entries
    blended with weighted degree; used to rank QK nodes for pruning. *)
