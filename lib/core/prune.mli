(** Classifier pruning — the first preprocessing procedure of
    Algorithm 1 (Section 4.2).

    A classifier of length [r > 1] is dropped when its singleton pieces
    are all available and together cost at most a threshold:

    - [`Lossless] (the default): threshold = the classifier's own cost.
      Replacing the classifier by its singletons then never costs more
      and never covers less, so the optimum is preserved exactly.
    - [`Paper]: threshold = [r] times the cost — the paper's rule, which
      prunes far more (with uniform costs only singletons survive) at a
      provably bounded loss.  Used by the scalability experiments
      (Figures 3e/3f).

    The paper's budget guard is honoured in both modes: if pruning
    would leave some query with no affordable cover, the longer
    classifiers relevant to that query are kept. *)

type mode = [ `Lossless | `Paper ]

val rule1 :
  ?budget:float ->
  ?mode:mode ->
  ?deadline:Bcc_robust.Deadline.t ->
  Instance.t ->
  bool array
(** [rule1 inst] returns the keep-mask over classifier ids.  [budget]
    defaults to the instance budget.  [deadline] (explicit solve-context
    threading; default {!Bcc_robust.Deadline.none}) is checked once per
    query of the budget guard.
    @raise Bcc_robust.Deadline.Expired past [deadline] — callers treat
    pruning as skippable and degrade to the unpruned universe. *)

val kept_count : bool array -> int
