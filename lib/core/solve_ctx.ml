module Engine = Bcc_engine.Engine
module Deadline = Bcc_robust.Deadline
module Rng = Bcc_util.Rng

type decoded = ..

type artifact_cache = {
  find : string -> string option;
  store : string -> string -> unit;
  find_decoded : string -> decoded option;
  store_decoded : string -> decoded -> unit;
}

let cache ?(find_decoded = fun _ -> None) ?(store_decoded = fun _ _ -> ()) ~find ~store () =
  { find; store; find_decoded; store_decoded }

type fp_hints = {
  hint_find : string -> string option;
  hint_record : string -> string list -> string -> unit;
}

type t = {
  deadline : Deadline.t;
  corr : string option;
  warm : Solution.t option;
  pool : Engine.Pool.t option;
  rng : Rng.t option;
  cache : artifact_cache option;
  hints : fp_hints option;
}

let make ?(deadline = Deadline.none) ?corr ?warm ?pool ?rng ?cache ?hints () =
  { deadline; corr; warm; pool; rng; cache; hints }

let pool t = match t.pool with Some p -> p | None -> Engine.default_pool ()

let with_corr t f =
  match t.corr with
  | None -> f ()
  | Some corr -> Bcc_obs.Event.with_corr corr f
