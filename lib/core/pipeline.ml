module Engine = Bcc_engine.Engine
module Deadline = Bcc_robust.Deadline
module Fault = Bcc_robust.Fault
module Rng = Bcc_util.Rng
module Timer = Bcc_util.Timer
module Trace = Bcc_obs.Trace
module Event = Bcc_obs.Event

let log_src = Logs.Src.create "bcc.pipeline" ~doc:"incremental solve pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

let default_grid = 8
let fault_point = "pipeline.artifact"

(* All per-component randomness descends from this constant through
   [Rng.derive_fingerprint], so a component's curve is a pure function
   of its content — independent of the workload seed, the other
   components, and the solve order.  Changing it invalidates every
   cached curve, which the format version below makes explicit. *)
let pipeline_seed = 0xBCC

(* Serialization format version: bump whenever the curve payload, the
   fingerprint canonicalization or [pipeline_seed] changes, so stale
   artifacts from older builds miss instead of parsing wrong.
   v2: component sub-solves cap the QK tick resolution by component
   content and serve the zero-budget point without a solve. *)
let format_version = 2

(* --- staged artifacts --- *)

type pruned = {
  keep : bool array;
  kept_queries : int list;
  cheapest : float array;
}

type staged_component = {
  comp : Decompose.component;
  fingerprint : string;
  sub : Instance.t Lazy.t;
  cap : float;
  comp_grid : int;
}

type point = {
  point_budget : float;
  point_utility : float;
  point_cost : float;
  sets : Propset.t list;
}

type curve = { curve_fingerprint : string; points : point array }

(* The decoded-memo bridge: a cache provider that can hold decoded
   values (the store's curve cache) hands parsed curves back without
   re-running [curve_of_string] — the dominant per-component cost of an
   all-clean incremental re-solve.  Fingerprint-keyed, so exactly as
   self-validating as the payload. *)
type Solve_ctx.decoded += Decoded_curve of curve

type component_report = {
  fingerprint : string;
  num_queries : int;
  min_prop : int;
  props : Propset.t;
  cap : float;
  reused : bool;
  best_utility : float;
  comp_wall_s : float;
}

type report = {
  outcome : Solver.outcome;
  components_total : int;
  components_reused : int;
  components : component_report list;
  wall_s : float;
}

(* --- fingerprints --- *)

(* Everything a per-component solve can observe, in a canonical order:
   the format version, the solver options, the global budget and grid,
   the component's queries (sorted by property set, so the fingerprint
   is independent of query ids and insertion order) and its classifier
   universe (every distinct finite-cost subset of a component query,
   with its cost).  Two components with equal fingerprints are the same
   subproblem, so a fingerprint-keyed cache is self-validating: a hit
   can only ever return the curve a cold solve would recompute. *)
let options_sig (o : Solver.options) =
  Printf.sprintf "p%b,pm%s,mc%b,rr%b,fs%b,mr%d,qn%d,kg%d,qk[%d,%d,%d,%d],mq%d" o.prune
    (match o.prune_mode with `Lossless -> "l" | `Paper -> "p")
    o.mc3_improve o.residual_rounds o.final_sweep o.max_rounds o.max_qk_nodes
    o.knapsack_grid o.qk.Bcc_qk.Qk.bipartitions o.qk.Bcc_qk.Qk.resolution
    o.qk.Bcc_qk.Qk.max_expensive_branches o.qk.Bcc_qk.Qk.seed o.mc3_max_queries

let options_fingerprint o = Digest.to_hex (Digest.string (options_sig o))

(* Canonical key for a property set: sorted names when the instance
   carries a symbol table, raw ids otherwise.  Name-based keys survive
   the store's replay re-interning (ids are assigned in first-sight
   order and renumber across restarts; names do not), so fingerprints —
   and therefore persisted artifacts — stay valid across process
   lifetimes. *)
let set_key names s =
  match names with
  | Some tab ->
      String.concat ";" (List.sort compare (List.map (Symtab.name tab) (Propset.to_list s)))
  | None -> String.concat "," (List.map string_of_int (Propset.to_list s))

(* Shared memo tables for a batch of fingerprints over one instance.
   Canonical keys, [%.17g] renderings and per-query-set classifier
   candidates all repeat heavily across components (clustered queries
   share property sets, costs repeat), so one stage-wide context turns
   most of the canonicalization into hash lookups.  Pure memoization:
   the emitted bytes are identical with or without it. *)
type fp_ctx = {
  fp_header : int -> string;  (* grid -> header line *)
  fp_key : Propset.t -> string;
  fp_flt : float -> string;
  fp_cands : Propset.t -> (Propset.t * string * float) list;
      (* finite-cost subsets of a query set, with canonical keys *)
}

let fp_ctx ~options inst =
  let names = Instance.names inst in
  let pre = Printf.sprintf "bcc-fp %d|B=%.17g|G=" format_version (Instance.budget inst) in
  let post = Printf.sprintf "|opts=%s\n" (options_sig options) in
  let keys = Hashtbl.create 512 in
  let flts = Hashtbl.create 512 in
  let cands = Hashtbl.create 512 in
  let fp_key s =
    match Hashtbl.find_opt keys s with
    | Some k -> k
    | None ->
        let k = set_key names s in
        Hashtbl.add keys s k;
        k
  in
  let fp_flt v =
    match Hashtbl.find_opt flts v with
    | Some s -> s
    | None ->
        let s = Printf.sprintf "%.17g" v in
        Hashtbl.add flts v s;
        s
  in
  let fp_cands q =
    match Hashtbl.find_opt cands q with
    | Some l -> l
    | None ->
        let l =
          List.filter_map
            (fun c ->
              let w = Instance.cost_of inst c in
              if w < infinity then Some (c, fp_key c, w) else None)
            (Propset.subsets q)
        in
        Hashtbl.add cands q l;
        l
  in
  { fp_header = (fun g -> pre ^ string_of_int g ^ post); fp_key; fp_flt; fp_cands }

let fingerprint_with ctx ~grid inst (comp : Decompose.component) =
  let b = Buffer.create 512 in
  Buffer.add_string b (ctx.fp_header grid);
  let queries =
    List.map
      (fun qi ->
        let q = Instance.query inst qi in
        (ctx.fp_key q, q, Instance.utility inst qi))
      comp.Decompose.queries
    |> List.sort (fun (k1, _, _) (k2, _, _) -> compare k1 k2)
  in
  List.iter
    (fun (k, _, u) ->
      Buffer.add_string b "q:";
      Buffer.add_string b k;
      Buffer.add_string b "|u=";
      Buffer.add_string b (ctx.fp_flt u);
      Buffer.add_char b '\n')
    queries;
  let classifiers =
    List.concat_map (fun (_, s, _) -> ctx.fp_cands s) queries
    |> List.sort_uniq (fun (c1, _, _) (c2, _, _) -> Propset.compare c1 c2)
    |> List.map (fun (_, k, w) -> (k, w))
    |> List.sort compare
  in
  List.iter
    (fun (k, w) ->
      Buffer.add_string b "c:";
      Buffer.add_string b k;
      Buffer.add_string b "|w=";
      Buffer.add_string b (ctx.fp_flt w);
      Buffer.add_char b '\n')
    classifiers;
  Digest.to_hex (Digest.string (Buffer.contents b))

let fingerprint ~options ~grid inst comp =
  fingerprint_with (fp_ctx ~options inst) ~grid inst comp

(* --- curve serialization --- *)

(* Self-checking payload: a one-line header with the format version,
   the fingerprint and an md5 of the body, then one [p] line per curve
   point followed by its selection sets.  Parsing is strict and total —
   any torn, truncated or bit-flipped artifact yields [None], which the
   solve treats as a miss (recompute = the cold answer). *)
let curve_to_string ?names c =
  let b = Buffer.create 1024 in
  Array.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "p %.17g %.17g %.17g %d\n" p.point_budget p.point_utility p.point_cost
           (List.length p.sets));
      List.iter (fun s -> Buffer.add_string b (Printf.sprintf "s %s\n" (set_key names s))) p.sets)
    c.points;
  let body = Buffer.contents b in
  Printf.sprintf "bcc-curve %d %s %d %s\n%s" format_version c.curve_fingerprint
    (Array.length c.points)
    (Digest.to_hex (Digest.string body))
    body

let curve_of_string ?names ~fingerprint:fp payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some nl -> (
      let header = String.sub payload 0 nl in
      let body = String.sub payload (nl + 1) (String.length payload - nl - 1) in
      match String.split_on_char ' ' header with
      | [ "bcc-curve"; version; fp'; npoints; checksum ]
        when int_of_string_opt version = Some format_version
             && fp' = fp
             && Digest.to_hex (Digest.string body) = checksum -> (
          try
            let npoints =
              match int_of_string_opt npoints with
              | Some n when n >= 0 -> n
              | _ -> failwith "npoints"
            in
            let lines = String.split_on_char '\n' body in
            let rest = ref lines in
            let next () =
              match !rest with
              | [] -> failwith "truncated"
              | l :: tl ->
                  rest := tl;
                  l
            in
            let float_of s =
              match float_of_string_opt s with Some f -> f | None -> failwith "float"
            in
            let parse_set l =
              match String.split_on_char ' ' l with
              | [ "s"; key ] -> (
                  match names with
                  | Some tab ->
                      Propset.of_list
                        (List.map
                           (fun tok ->
                             match Symtab.find tab tok with
                             | Some i -> i
                             | None -> failwith "unknown property name")
                           (String.split_on_char ';' key))
                  | None ->
                      Propset.of_list
                        (List.map
                           (fun tok ->
                             match int_of_string_opt tok with
                             | Some i when i >= 0 -> i
                             | _ -> failwith "prop id")
                           (String.split_on_char ',' key)))
              | _ -> failwith "set line"
            in
            let points =
              Array.init npoints (fun _ ->
                  match String.split_on_char ' ' (next ()) with
                  | [ "p"; bud; util; cost; nsets ] ->
                      let nsets =
                        match int_of_string_opt nsets with
                        | Some n when n >= 0 -> n
                        | _ -> failwith "nsets"
                      in
                      let sets = List.init nsets (fun _ -> parse_set (next ())) in
                      {
                        point_budget = float_of bud;
                        point_utility = float_of util;
                        point_cost = float_of cost;
                        sets;
                      }
                  | _ -> failwith "point line")
            in
            (match !rest with [] | [ "" ] -> () | _ -> failwith "trailing");
            Some { curve_fingerprint = fp; points }
          with _ -> None)
      | _ -> None)

(* Structural sanity behind the checksum: the right number of points,
   budgets on the expected grid for this component's cap, and claimed
   costs that respect their budgets.  Content equivalence is already
   carried by the fingerprint key (the payload's fingerprint and
   checksum were just verified), and the assembled selection is
   re-priced on the live cover state downstream, so a deeper per-point
   re-solve here would buy nothing but latency on the reuse path. *)
let validate_curve (staged : staged_component) (c : curve) =
  let grid = staged.comp_grid in
  Array.length c.points = grid + 1
  && Array.for_all
       (fun p ->
         Float.is_finite p.point_utility
         && Float.is_finite p.point_cost
         && p.point_cost >= 0.0
         && p.point_cost <= p.point_budget +. 1e-6)
       c.points
  &&
  let ok = ref true in
  Array.iteri
    (fun j p ->
      let b = staged.cap *. float_of_int j /. float_of_int staged.comp_grid in
      if abs_float (p.point_budget -. b) > 1e-9 *. (1.0 +. abs_float b) then ok := false)
    c.points;
  !ok

(* Cache lookup with the fault point armed-in: a [throw] arm and a
   [corrupt] arm (which scrambles the payload so the checksum fails)
   both surface as a miss — the caller recomputes, so injected faults
   degrade availability of the speedup, never correctness. *)
let lookup_cached ?names (cache : Solve_ctx.artifact_cache) (staged : staged_component) =
  match
    Fault.hit fault_point;
    (* A corrupt arm scrambles payload bytes; skip the decoded memo so
       the injected corruption still reaches the checksum. *)
    if Fault.corrupting fault_point then None
    else cache.Solve_ctx.find_decoded staged.fingerprint
  with
  | exception _ -> None
  | Some (Decoded_curve c)
    when c.curve_fingerprint = staged.fingerprint && validate_curve staged c ->
      Some c
  | _ -> (
      match cache.Solve_ctx.find staged.fingerprint with
      | exception _ -> None
      | None -> None
      | Some payload -> (
          let payload =
            if Fault.corrupting fault_point then
              String.map (fun ch -> Char.chr (Char.code ch lxor 0x5A)) payload
            else payload
          in
          match curve_of_string ?names ~fingerprint:staged.fingerprint payload with
          | Some c when validate_curve staged c ->
              (try cache.Solve_ctx.store_decoded staged.fingerprint (Decoded_curve c)
               with _ -> ());
              Some c
          | _ -> None))

let store_cached ?names (cache : Solve_ctx.artifact_cache) curve =
  try
    cache.Solve_ctx.store curve.curve_fingerprint (curve_to_string ?names curve);
    cache.Solve_ctx.store_decoded curve.curve_fingerprint (Decoded_curve curve)
  with _ -> ()

(* --- stages --- *)

let prune_stage ~options ~deadline ~pool ~note_degraded inst =
  let n = Instance.num_classifiers inst in
  let keep =
    if options.Solver.prune then
      try Prune.rule1 ~mode:options.Solver.prune_mode ~deadline inst
      with Deadline.Expired _ ->
        note_degraded "prune";
        Array.make n true
    else Array.make n true
  in
  let state = Cover.create inst in
  let budget = Instance.budget inst in
  let cheapest =
    (* Per-query cheapest covers are independent pure reads of the fresh
       cover state, so large instances fan the scan out over the engine
       pool in fixed chunks; each task writes its own index range.
       Results are identical at any job count, per-element. *)
    let nq = Instance.num_queries inst in
    let at qi =
      match Covers.cheapest_cover state qi with Some (c, _) -> c | None -> infinity
    in
    let chunk = 128 in
    if nq <= chunk then
      Array.init nq (fun qi ->
          Deadline.check deadline;
          at qi)
    else begin
      let out = Array.make nq infinity in
      let tasks =
        List.init ((nq + chunk - 1) / chunk) (fun k ->
            let lo = k * chunk in
            let hi = min (lo + chunk) nq - 1 in
            Engine.Task.make ~label:(Printf.sprintf "pipeline.cheapest:%d" k) (fun _ ->
                for qi = lo to hi do
                  Deadline.check deadline;
                  out.(qi) <- at qi
                done))
      in
      ignore (Engine.Portfolio.collect pool tasks);
      out
    end
  in
  let kept_queries =
    List.filter
      (fun qi -> cheapest.(qi) <= budget +. 1e-9)
      (List.init (Instance.num_queries inst) Fun.id)
  in
  { keep; kept_queries; cheapest }

(* Small components get a coarser curve: their caps are small, so few
   budget splits are meaningfully distinct, and halving the grid halves
   the sub-solves a dirty component costs.  The effective grid is a
   function of component content (its query count), so it feeds the
   fingerprint and the incremental == cold contract is untouched. *)
let effective_grid ~grid (comp : Decompose.component) =
  if List.length comp.Decompose.queries <= 64 then min grid 4 else grid

let component_stage ?hints ~options ~grid inst pruned =
  let affordable = Array.make (Instance.num_queries inst) false in
  List.iter (fun qi -> affordable.(qi) <- true) pruned.kept_queries;
  let budget = Instance.budget inst in
  let fpc = fp_ctx ~options inst in
  (* Hinted fingerprints: the hint key is the full fingerprint header
     (budget, grid, options, format version) plus the component's
     canonical property footprint, so a header change can never match a
     stale hint — only the query/classifier content relies on the
     provider's footprint-eviction guarantee (see {!Solve_ctx.fp_hints}).
     Name-based footprints require a symbol table; without one hints are
     ignored and every component hashes. *)
  let hinted =
    match (hints, Instance.names inst) with
    | Some h, Some tab ->
        Some
          (fun comp comp_grid ->
            (* The lookup key footprint is id-based: property ids are
               stable for the life of a hint table (the workload's
               symbol table only grows, and a re-put starts a fresh
               table), and skipping the name-map + sort on every
               component is most of an all-clean re-solve's fixed cost.
               The {e name} footprint — what delta eviction intersects —
               is only built on the miss path, once per recorded hint. *)
            let key =
              fpc.fp_header comp_grid ^ "F="
              ^ String.concat ","
                  (List.map string_of_int (Propset.to_list comp.Decompose.props))
            in
            match h.Solve_ctx.hint_find key with
            | Some fp -> fp
            | None ->
                let foot =
                  List.sort compare
                    (List.map (Symtab.name tab) (Propset.to_list comp.Decompose.props))
                in
                let fp = fingerprint_with fpc ~grid:comp_grid inst comp in
                h.Solve_ctx.hint_record key foot fp;
                fp)
    | _ -> None
  in
  List.map
    (fun comp ->
      let cap =
        min budget
          (List.fold_left (fun acc qi -> acc +. pruned.cheapest.(qi)) 0.0 comp.Decompose.queries)
      in
      let comp_grid = effective_grid ~grid comp in
      {
        comp;
        fingerprint =
          (match hinted with
          | Some f -> f comp comp_grid
          | None -> fingerprint_with fpc ~grid:comp_grid inst comp);
        sub = lazy (Instance.restrict inst comp.Decompose.queries);
        cap;
        comp_grid;
      })
    (Decompose.components ~keep_query:(fun qi -> affordable.(qi)) inst)

(* QK's tick resolution and the knapsack DP grid are sized for whole
   instances; against a small component they round costs to a
   granularity far below the cheapest classifier, blowing each pass up
   into thousands of nodes / DP rows that add no precision —
   milliseconds per curve point, which is what made a one-dirty-cluster
   incremental re-solve slower than a plain warm solve.  Cap both so a
   tick is at least a quarter of the component's cheapest positive
   classifier cost.  The caps are pure functions of component content
   (its cap budget and classifier costs) and the caller's options, so
   curves remain pure functions of component content; the
   [format_version] bump to 2 retired artifacts computed without
   them. *)
let sub_options ~options (staged : staged_component) =
  let sub = Lazy.force staged.sub in
  let min_cost = ref infinity in
  for id = 0 to Instance.num_classifiers sub - 1 do
    let c = Instance.cost sub id in
    if c > 0.0 && c < !min_cost then min_cost := c
  done;
  if staged.cap <= 0.0 || not (Float.is_finite !min_cost) then options
  else
    let bound = int_of_float (ceil (4.0 *. staged.cap /. !min_cost)) in
    let cap_to ~floor current = max floor (min current bound) in
    let res = options.Solver.qk.Bcc_qk.Qk.resolution in
    let res' = cap_to ~floor:16 res in
    let kg = options.Solver.knapsack_grid in
    let kg' = cap_to ~floor:64 kg in
    let bip = options.Solver.qk.Bcc_qk.Qk.bipartitions in
    let bip' =
      if Instance.num_queries sub <= 32 then min bip 1 else bip
    in
    if res' >= res && kg' >= kg && bip' >= bip then options
    else
      {
        options with
        Solver.knapsack_grid = min kg kg';
        Solver.qk =
          {
            options.Solver.qk with
            Bcc_qk.Qk.resolution = min res res';
            bipartitions = min bip bip';
          };
      }

let compute_curve ~options ~deadline ~pool (staged : staged_component) =
  let grid = staged.comp_grid in
  let options = sub_options ~options staged in
  let comp_rng = Rng.derive_fingerprint (Rng.create pipeline_seed) staged.fingerprint in
  let clean = ref true in
  let solve_at ?warm j b =
    let pctx = Solve_ctx.make ~deadline ?pool ?warm ~rng:(Rng.derive comp_rng j) () in
    let o =
      Solver.solve_with_ctx ~options pctx (Instance.with_budget (Lazy.force staged.sub) b)
    in
    if o.Solver.degraded then clean := false;
    ( {
        point_budget = b;
        point_utility = o.Solver.solution.Solution.utility;
        point_cost = o.Solver.solution.Solution.cost;
        sets = o.Solver.solution.Solution.classifiers;
      },
      o.Solver.solution )
  in
  (* Saturation shortcut: the full-cap point first; any lower budget the
     cap selection already fits inside reuses it verbatim.  The curve
     stays a pure function of component content (the shortcut depends
     only on the cap solve, itself deterministic), which is all the
     incremental == cold contract needs — and it skips most sub-solves,
     since caps are a loose upper bound on what a component can usefully
     spend. *)
  let top, top_sol = solve_at grid staged.cap in
  (* Budget 0 affords exactly the zero-cost classifiers, which every
     solve selects upfront — serve that point directly instead of
     running a full sub-solve to conclude it. *)
  let zero_point () =
    let sub = Lazy.force staged.sub in
    let state = Cover.create sub in
    for id = 0 to Instance.num_classifiers sub - 1 do
      if Instance.cost sub id <= 0.0 then Cover.select state id
    done;
    let sol = Solution.of_ids sub (Cover.selected state) in
    {
      point_budget = 0.0;
      point_utility = sol.Solution.utility;
      point_cost = sol.Solution.cost;
      sets = sol.Solution.classifiers;
    }
  in
  let points =
    Array.init (grid + 1) (fun j ->
        if j = grid then top
        else
          let b = staged.cap *. float_of_int j /. float_of_int grid in
          if top.point_cost <= b +. 1e-9 then { top with point_budget = b }
          else if j = 0 then zero_point ()
          else
            (* Seed the lower-budget solve from the cap solution: the
               picks that fit [b] start as the incumbent, so the rounds
               work a small residual instead of the whole component.
               The seed is itself a pure function of component content
               (the cap solve is deterministic), so points stay pure
               functions of content and the incremental == cold contract
               holds. *)
            fst (solve_at ~warm:top_sol j b))
  in
  ({ curve_fingerprint = staged.fingerprint; points }, !clean)

(* --- assembly --- *)

(* Multiple-choice knapsack over the curves: pick exactly one point per
   component (the zero-budget point doubles as "skip") maximizing total
   utility, on a tick grid with costs rounded {e up} so the assembled
   selection is always budget-feasible.  Components are disjoint, so
   utilities and costs add exactly. *)
let assembly_ticks = 1024

let assemble inst (curves : (staged_component * curve) list) =
  let budget = Instance.budget inst in
  (* An integral budget below the generic grid gets an exact DP: one
     tick per cost unit, so integer-valued point costs (the paper's
     workloads) are not rounded at all — fewer DP rows than the generic
     grid and never a worse selection (rounding up can only discard
     feasible combinations). *)
  let ticks =
    let b = int_of_float budget in
    if Float.is_integer budget && b > 0 && b < assembly_ticks then b else assembly_ticks
  in
  let tick = budget /. float_of_int ticks in
  let weight_of cost =
    if cost <= 1e-12 then 0
    else if tick <= 0.0 then ticks + 1 (* infeasible: positive cost, zero budget *)
    else int_of_float (ceil ((cost -. 1e-12) /. tick))
  in
  (* Saturated shortcut: when every curve's cap point is its strict
     utility maximum and all cap points fit the budget together, the DP
     can only pick exactly those points (any other choice loses utility
     somewhere and components are disjoint), so skip it.  Deterministic
     on instance content — incremental and cold assemble identically. *)
  let all_tops =
    tick > 0.0
    && List.for_all
         (fun (_, curve) ->
           let n = Array.length curve.points in
           n > 0
           &&
           let top = curve.points.(n - 1) in
           Array.for_all
             (fun p ->
               p == top
               || p.point_utility < top.point_utility -. 1e-12
               || (p.point_utility = top.point_utility && p.point_cost >= top.point_cost))
             curve.points)
         curves
    && List.fold_left
         (fun acc (_, curve) ->
           acc + weight_of curve.points.(Array.length curve.points - 1).point_cost)
         0 curves
       <= ticks
  in
  if all_tops then
    List.fold_left
      (fun acc (_, curve) ->
        List.rev_append curve.points.(Array.length curve.points - 1).sets acc)
      [] (List.rev curves)
  else
  let dp = ref (Array.make (ticks + 1) 0.0) in
  let choices =
    List.map
      (fun (_, curve) ->
        (* The saturation shortcut makes most low-budget points exact
           copies of the cap point, so the inner loop would rescan the
           same (weight, utility) pair many times.  Keep the first point
           of each pair — a later exact duplicate can never strictly
           beat its predecessor under the DP's [> +. 1e-12] rule, so the
           chosen points (and tie-breaks) are unchanged. *)
        let kept =
          let seen = Hashtbl.create 16 in
          let acc = ref [] in
          Array.iter
            (fun p ->
              let w = weight_of p.point_cost in
              if w <= ticks && not (Hashtbl.mem seen (w, p.point_utility)) then begin
                Hashtbl.add seen (w, p.point_utility) ();
                acc := p :: !acc
              end)
            curve.points;
          Array.of_list (List.rev !acc)
        in
        let prev = !dp in
        let next = Array.make (ticks + 1) neg_infinity in
        let choice = Array.make (ticks + 1) 0 in
        (* Unsafe accesses: [t] ranges over [w .. ticks] with
           [0 <= w <= ticks] guaranteed by the dedup filter above, and
           all three arrays have [ticks + 1] slots. *)
        Array.iteri
          (fun pi p ->
            let w = weight_of p.point_cost in
            let u = p.point_utility in
            for t = w to ticks do
              let v = Array.unsafe_get prev (t - w) +. u in
              if v > Array.unsafe_get next t +. 1e-12 then begin
                Array.unsafe_set next t v;
                Array.unsafe_set choice t pi
              end
            done)
          kept;
        (* Every curve has the zero-budget point (weight 0), so [next]
           is finite everywhere. *)
        dp := next;
        (kept, choice))
      curves
  in
  (* Walk the choices back in reverse stage order to recover the picked
     point per component. *)
  let t = ref ticks in
  let sets = ref [] in
  List.iter
    (fun (kept, choice) ->
      let p = kept.(choice.(!t)) in
      sets := List.rev_append p.sets !sets;
      t := !t - weight_of p.point_cost)
    (List.rev choices);
  !sets

(* Warm bank, mirroring the monolithic solver's re-validation: picks
   sorted by (cost, set) adopted while they fit the budget. *)
let warm_bank inst prev =
  let budget = Instance.budget inst in
  let state = Cover.create inst in
  List.filter_map (Instance.classifier_id inst) prev.Solution.classifiers
  |> List.sort_uniq compare
  |> List.map (fun id -> (Instance.cost inst id, Instance.classifier inst id, id))
  |> List.sort (fun (c1, s1, _) (c2, s2, _) ->
         match Float.compare c1 c2 with 0 -> Propset.compare s1 s2 | n -> n)
  |> List.iter (fun (cost, _, id) ->
         if (not (Cover.is_selected state id)) && Cover.spent state +. cost <= budget +. 1e-9
         then Cover.select state id);
  Solution.of_ids inst (Cover.selected state)

(* --- the pipeline --- *)

let solve ?(options = Solver.default_options) ?(grid = default_grid) (ctx : Solve_ctx.t) inst =
  Solve_ctx.with_corr ctx @@ fun () ->
  Trace.with_span ~name:"pipeline" @@ fun sp ->
  let t0 = Timer.now_s () in
  let deadline = ctx.Solve_ctx.deadline in
  let pool = Solve_ctx.pool ctx in
  let budget = Instance.budget inst in
  let ev = Event.enabled () in
  let degraded = ref false in
  let note_degraded reason =
    degraded := true;
    if ev then Event.emit "degraded" ~attrs:[ ("reason", Event.Str reason) ]
  in
  if Trace.recording sp then begin
    Trace.add_attr sp "classifiers" (Trace.Int (Instance.num_classifiers inst));
    Trace.add_attr sp "queries" (Trace.Int (Instance.num_queries inst));
    Trace.add_attr sp "budget" (Trace.Float budget)
  end;
  Deadline.with_current deadline @@ fun () ->
  match
    (* Stage 1 + 2: prune and component artifacts.  An expiry this early
       falls back to the monolithic solve, which owns graceful
       degradation — the pipeline never raises and never returns a
       worse-than-classic degraded answer. *)
    try
      let pruned =
        Trace.with_span ~name:"pipeline.prune" @@ fun _ ->
        prune_stage ~options ~deadline ~pool ~note_degraded inst
      in
      let staged =
        Trace.with_span ~name:"pipeline.components" @@ fun _ ->
        component_stage ?hints:ctx.Solve_ctx.hints ~options ~grid inst pruned
      in
      Some (pruned, staged)
    with Deadline.Expired _ ->
      note_degraded "pipeline_stages";
      None
  with
  | None ->
      let outcome = Solver.solve_with_ctx ~options ctx inst in
      {
        outcome = { outcome with Solver.degraded = true };
        components_total = 0;
        components_reused = 0;
        components = [];
        wall_s = Timer.now_s () -. t0;
      }
  | Some (pruned, staged) ->
      (* Stage 3: per-component curves — cached ones load and re-validate,
         dirty ones recompute as engine tasks in deterministic task
         order. *)
      let cached =
        Trace.with_span ~name:"pipeline.lookup" @@ fun _ ->
        match ctx.Solve_ctx.cache with
        | None -> List.map (fun _ -> None) staged
        | Some cache ->
            List.map (lookup_cached ?names:(Instance.names inst) cache) staged
      in
      let tasks =
        List.concat
          (List.map2
             (fun (s : staged_component) cached ->
               match cached with
               | Some _ -> []
               | None ->
                   [
                     Engine.Task.make
                       ~label:("pipeline.curve:" ^ String.sub s.fingerprint 0 8)
                       (fun _ ->
                         let t = Timer.now_s () in
                         let curve, clean = compute_curve ~options ~deadline ~pool:ctx.Solve_ctx.pool s in
                         (curve, clean, Timer.now_s () -. t));
                   ])
             staged cached)
      in
      let computed =
        ref
          (Trace.with_span ~name:"pipeline.curves" @@ fun _ ->
           Engine.Portfolio.collect pool tasks)
      in
      let curves =
        List.map2
          (fun (s : staged_component) cached ->
            match cached with
            | Some curve -> (s, curve, true, 0.0)
            | None -> (
                match !computed with
                | (curve, clean, wall) :: rest ->
                    computed := rest;
                    if not clean then note_degraded "component_curve";
                    (match (ctx.Solve_ctx.cache, clean) with
                    | Some cache, true -> store_cached ?names:(Instance.names inst) cache curve
                    | _ -> ());
                    (s, curve, false, wall)
                | [] -> assert false))
          staged cached
      in
      (* Stage 4: assembly — outer knapsack over the curves, leftover
         sweep, and the final race against the greedy baselines (and the
         warm bank, when the context carries one). *)
      let assembled_sets =
        Trace.with_span ~name:"pipeline.assemble" @@ fun _ ->
        assemble inst (List.map (fun ((s : staged_component), c, _, _) -> (s, c)) curves)
      in
      let structured =
        let state = Cover.create inst in
        for id = 0 to Instance.num_classifiers inst - 1 do
          if Instance.cost inst id <= 0.0 then Cover.select state id
        done;
        List.iter (fun s -> ignore (Cover.select_set state s)) assembled_sets;
        (try Solver.greedy_sweep state ~limit:(budget -. Cover.spent state)
         with Deadline.Expired _ -> note_degraded "assembly_sweep");
        Solution.of_ids inst (Cover.selected state)
      in
      let result =
        Trace.with_span ~name:"pipeline.race" @@ fun _ ->
        (* IG2 is cheap and always races.  The from-scratch greedy is an
           order of magnitude more expensive and almost never beats the
           assembled solution (which already ends in a greedy sweep of
           the leftover budget), so it only runs when the assembly
           failed to beat IG2 — a deterministic condition on instance
           content, so incremental and cold solves race identically. *)
        try
          let by_classifier =
            match
              Engine.Portfolio.collect pool
                [
                  Engine.Task.make ~label:"pipeline.race:ig2" (fun _ ->
                      Baselines.ig2 inst Baselines.Budget);
                ]
            with
            | [ s ] -> s
            | _ -> structured
          in
          if structured.Solution.utility >= by_classifier.Solution.utility then structured
          else
            let best = Solution.better structured by_classifier in
            match
              Engine.Portfolio.collect pool
                [
                  Engine.Task.make ~label:"pipeline.race:greedy" (fun _ ->
                      let greedy_state = Cover.create inst in
                      for id = 0 to Instance.num_classifiers inst - 1 do
                        if Instance.cost inst id <= 0.0 then Cover.select greedy_state id
                      done;
                      Solver.greedy_sweep greedy_state
                        ~limit:(budget -. Cover.spent greedy_state);
                      Solution.of_ids inst (Cover.selected greedy_state));
                ]
            with
            | [ by_query ] -> Solution.better best by_query
            | _ -> best
        with Deadline.Expired _ ->
          note_degraded "race";
          structured
      in
      let result =
        match ctx.Solve_ctx.warm with
        | Some prev -> Solution.better result (warm_bank inst prev)
        | None -> result
      in
      let components =
        List.map
          (fun ((s : staged_component), curve, reused, wall) ->
            {
              fingerprint = s.fingerprint;
              num_queries = List.length s.comp.Decompose.queries;
              min_prop = s.comp.Decompose.min_prop;
              props = s.comp.Decompose.props;
              cap = s.cap;
              reused;
              best_utility =
                (if Array.length curve.points = 0 then 0.0
                 else curve.points.(Array.length curve.points - 1).point_utility);
              comp_wall_s = wall;
            })
          curves
      in
      let total = List.length components in
      let reused = List.length (List.filter (fun c -> c.reused) components) in
      let wall_s = Timer.now_s () -. t0 in
      Log.debug (fun m ->
          m "pipeline: %d components, %d reused, %d kept queries, utility %.1f (%.3fs)" total
            reused
            (List.length pruned.kept_queries)
            result.Solution.utility wall_s);
      if Trace.recording sp then begin
        Trace.add_attr sp "components" (Trace.Int total);
        Trace.add_attr sp "reused" (Trace.Int reused);
        Trace.add_attr sp "utility" (Trace.Float result.Solution.utility);
        Trace.add_attr sp "degraded" (Trace.Bool !degraded)
      end;
      if ev then
        Event.emit "pipeline_reuse"
          ~attrs:
            [
              ("components", Event.Int total);
              ("reused", Event.Int reused);
              ("utility", Event.Float result.Solution.utility);
              ("wall_s", Event.Float wall_s);
            ];
      {
        outcome = { Solver.solution = result; degraded = !degraded };
        components_total = total;
        components_reused = reused;
        components;
        wall_s;
      }
