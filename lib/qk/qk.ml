module Graph = Bcc_graph.Graph
module Hks = Bcc_dks.Hks
module Heap = Bcc_util.Heap
module Rng = Bcc_util.Rng
module Trace = Bcc_obs.Trace
module Engine = Bcc_engine.Engine

type instance = { graph : Bcc_graph.Graph.t; budget : float }
type solution = { nodes : int list; cost : float; value : float }

type options = {
  bipartitions : int;
  resolution : int;
  max_expensive_branches : int;
  seed : int;
}

let default_options =
  { bipartitions = 0; resolution = 2000; max_expensive_branches = 24; seed = 0x5EED }

let evaluate inst nodes =
  let nodes = List.sort_uniq compare nodes in
  let sel = Array.make (Graph.n inst.graph) false in
  List.iter (fun v -> sel.(v) <- true) nodes;
  {
    nodes;
    cost = Graph.induced_cost inst.graph sel;
    value = Graph.induced_weight inst.graph sel;
  }

let verify inst sol =
  let fresh = evaluate inst sol.nodes in
  fresh.cost <= inst.budget +. 1e-6
  && abs_float (fresh.cost -. sol.cost) < 1e-6
  && abs_float (fresh.value -. sol.value) < 1e-6

(* ------------------------------------------------------------------ *)
(* Greedy fill: spend leftover budget on the original graph.           *)
(* ------------------------------------------------------------------ *)

let greedy_fill inst selected =
  let g = inst.graph in
  let n = Graph.n g in
  let remaining = ref (inst.budget -. Graph.induced_cost g selected) in
  (* Bootstrap: an empty selection has no marginal gains, so seed it with
     the best affordable edge (weight per endpoint cost). *)
  if Array.for_all (fun s -> not s) selected then begin
    let best = ref None in
    Graph.iter_edges g (fun u v w ->
        let c = Graph.node_cost g u +. Graph.node_cost g v in
        if c <= !remaining +. 1e-12 then begin
          let score = if c <= 1e-12 then infinity else w /. c in
          match !best with
          | Some (_, _, s) when s >= score -> ()
          | _ -> best := Some (u, v, score)
        end);
    match !best with
    | Some (u, v, _) ->
        selected.(u) <- true;
        selected.(v) <- true;
        remaining := !remaining -. Graph.node_cost g u -. Graph.node_cost g v
    | None -> ()
  end;
  let gain = Array.make n 0.0 in
  Graph.iter_edges g (fun u v w ->
      if selected.(u) && not selected.(v) then gain.(v) <- gain.(v) +. w;
      if selected.(v) && not selected.(u) then gain.(u) <- gain.(u) +. w);
  let prio v =
    let c = Graph.node_cost g v in
    if c <= 1e-12 then (if gain.(v) > 0.0 then infinity else 0.0) else gain.(v) /. c
  in
  let heap = Heap.create ~max:true n in
  for v = 0 to n - 1 do
    if (not selected.(v)) && Graph.node_cost g v <= !remaining +. 1e-12 then
      Heap.insert heap v (prio v)
  done;
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop heap with
    | None -> continue_ := false
    | Some (v, p) ->
        if p <= 0.0 then continue_ := false
        else begin
          let c = Graph.node_cost g v in
          if c <= !remaining +. 1e-12 then begin
            selected.(v) <- true;
            remaining := !remaining -. c;
            Graph.iter_neighbors g v (fun u w ->
                if not selected.(u) then begin
                  gain.(u) <- gain.(u) +. w;
                  if Heap.mem heap u then Heap.update heap u (prio u)
                end)
          end
        end
  done

(* Node-level 1-for-1 swap local search on the final candidate: replace
   a selected node by an unselected one when that increases the induced
   weight within budget.  Skipped on very large graphs. *)
let local_improve inst selected =
  Trace.with_span ~name:"qk.repair" @@ fun sp ->
  let swaps = ref 0 in
  let g = inst.graph in
  let n = Graph.n g in
  if n > 1500 then ()
  else begin
    let contrib = Array.make n 0.0 in
    Graph.iter_edges g (fun u v w ->
        if selected.(u) then contrib.(v) <- contrib.(v) +. w;
        if selected.(v) then contrib.(u) <- contrib.(u) +. w);
    let cost = ref (Graph.induced_cost g selected) in
    let apply v delta_sel =
      selected.(v) <- delta_sel;
      let sign = if delta_sel then 1.0 else -1.0 in
      cost := !cost +. (sign *. Graph.node_cost g v);
      Graph.iter_neighbors g v (fun u w -> contrib.(u) <- contrib.(u) +. (sign *. w))
    in
    let rounds = ref 0 in
    let improved = ref true in
    while !improved && !rounds < 30 do
      improved := false;
      incr rounds;
      let best = ref None in
      for v = 0 to n - 1 do
        if selected.(v) then
          for u = 0 to n - 1 do
            if not selected.(u) then begin
              let mutual =
                match Graph.edge_weight g u v with Some w -> w | None -> 0.0
              in
              let delta = contrib.(u) -. mutual -. contrib.(v) in
              let fits =
                !cost -. Graph.node_cost g v +. Graph.node_cost g u
                <= inst.budget +. 1e-9
              in
              if fits && delta > 1e-9 then begin
                match !best with
                | Some (_, _, d) when d >= delta -> ()
                | _ -> best := Some (v, u, delta)
              end
            end
          done
      done;
      match !best with
      | Some (v, u, _) ->
          apply v false;
          apply u true;
          incr swaps;
          improved := true
      | None -> ()
    done
  end;
  if Trace.recording sp then Trace.add_attr sp "swaps" (Trace.Int !swaps)

(* ------------------------------------------------------------------ *)
(* The bipartite blow-up pipeline on a "cheap" subgraph.                *)
(* ------------------------------------------------------------------ *)

(* Reassign the copies of one side greedily by per-copy weighted degree
   into the other side.  Equivalent to the paper's two swap phases:
   afterwards at most one node of the side is partially selected and the
   crossing weight has not decreased. *)
let reassign_side cross mult sel ~side_mask ~side =
  let n = Graph.n cross in
  let deg = Array.make n 0.0 in
  Graph.iter_edges cross (fun u v w ->
      let pcw = w /. (float_of_int mult.(u) *. float_of_int mult.(v)) in
      if side_mask.(u) = side && side_mask.(v) <> side then
        deg.(u) <- deg.(u) +. (pcw *. float_of_int sel.(v));
      if side_mask.(v) = side && side_mask.(u) <> side then
        deg.(v) <- deg.(v) +. (pcw *. float_of_int sel.(u)));
  let members = ref [] in
  let budget_copies = ref 0 in
  for v = 0 to n - 1 do
    if side_mask.(v) = side then begin
      budget_copies := !budget_copies + sel.(v);
      sel.(v) <- 0;
      members := v :: !members
    end
  done;
  let members = Array.of_list !members in
  Array.sort (fun a b -> compare deg.(b) deg.(a)) members;
  Array.iter
    (fun v ->
      if !budget_copies > 0 then begin
        let take = min mult.(v) !budget_copies in
        sel.(v) <- take;
        budget_copies := !budget_copies - take
      end)
    members

(* Resolve the at-most-two partially selected nodes per the paper's
   final-selection cases; returns the set of completely selected
   nodes. *)
let finalize_partials cross mult sel ~budget_ticks =
  let n = Graph.n cross in
  let used = ref 0 in
  for v = 0 to n - 1 do
    used := !used + sel.(v)
  done;
  let partials = ref [] in
  for v = 0 to n - 1 do
    if sel.(v) > 0 && sel.(v) < mult.(v) then partials := v :: !partials
  done;
  let complete v =
    used := !used + (mult.(v) - sel.(v));
    sel.(v) <- mult.(v)
  in
  let missing v = mult.(v) - sel.(v) in
  (match !partials with
  | [] -> ()
  | [ v ] ->
      (* Preprocessing guarantees mult(v) <= budget/2 and the HkS phase
         used at most budget/2 ticks, so completion always fits. *)
      if !used + missing v <= budget_ticks then complete v else sel.(v) <- 0
  | [ a; b ] ->
      if !used + missing a + missing b <= budget_ticks then begin
        complete a;
        complete b
      end
      else begin
        let mutual = match Graph.edge_weight cross a b with Some w -> w | None -> 0.0 in
        let pcw_ab = mutual /. (float_of_int mult.(a) *. float_of_int mult.(b)) in
        let w_sel = pcw_ab *. float_of_int sel.(a) *. float_of_int sel.(b) in
        let total = Hks.value (Hks.make ~mult cross ~k:!used) sel in
        if w_sel > total /. 5.0 && mult.(a) + mult.(b) <= budget_ticks then begin
          (* Case II: keep only the two heavy endpoints, fully. *)
          Array.fill sel 0 n 0;
          sel.(a) <- mult.(a);
          sel.(b) <- mult.(b)
        end
        else begin
          (* Case I: drop the mutual edge, consolidate into the endpoint
             with the higher per-copy degree, then complete it. *)
          let deg_excl v other =
            Graph.fold_neighbors cross v
              (fun acc u w ->
                if u = other then acc
                else
                  acc
                  +. w /. (float_of_int mult.(v) *. float_of_int mult.(u))
                     *. float_of_int sel.(u))
              0.0
          in
          let hi, lo = if deg_excl a b >= deg_excl b a then (a, b) else (b, a) in
          let moved = min sel.(lo) (mult.(hi) - sel.(hi)) in
          sel.(hi) <- sel.(hi) + moved;
          used := !used + moved - sel.(lo);
          sel.(lo) <- 0;
          if sel.(hi) < mult.(hi) then begin
            if !used + missing hi <= budget_ticks then complete hi else sel.(hi) <- 0
          end
        end
      end
  | _ -> assert false (* reassign_side leaves at most one partial per side *));
  Array.init n (fun v -> sel.(v) > 0 && sel.(v) = mult.(v))

(* One full bipartition iteration over the cheap subgraph; returns a
   node set (over the cheap subgraph's ids). *)
let pipeline_once cheap mult ~budget_ticks rng =
  let n = Graph.n cheap in
  let side_mask = Array.init n (fun _ -> Rng.bool rng) in
  let b = Graph.builder n in
  for v = 0 to n - 1 do
    Graph.set_node_cost b v (Graph.node_cost cheap v)
  done;
  Graph.iter_edges cheap (fun u v w ->
      if side_mask.(u) <> side_mask.(v) then Graph.add_edge b u v w);
  let cross = Graph.build b in
  let k = max 1 (budget_ticks / 2) in
  let hks = Hks.make ~mult cross ~k in
  let sel = Hks.solve hks in
  reassign_side cross mult sel ~side_mask ~side:true;
  reassign_side cross mult sel ~side_mask ~side:false;
  finalize_partials cross mult sel ~budget_ticks

(* Per-copy weighted degree of [v] into the current selection. *)
let degree_into_sel g mult sel v =
  Graph.fold_neighbors g v
    (fun acc u w ->
      acc
      +. w /. (float_of_int mult.(v) *. float_of_int mult.(u)) *. float_of_int sel.(u))
    0.0

(* Non-bipartite pass: run HkS on the full cheap graph at copy budget
   [k], then round to whole nodes — mostly-selected, highest per-copy
   degree first — within the tick budget.  On practical (non-worst-case)
   graphs keeping all edges beats the bipartition, so both are tried. *)
let full_pass cheap mult ~budget_ticks ~k =
  let n = Graph.n cheap in
  let hks = Hks.make ~mult cheap ~k:(max 1 k) in
  let sel = Hks.solve hks in
  let score v =
    let frac = float_of_int sel.(v) /. float_of_int mult.(v) in
    (frac, degree_into_sel cheap mult sel v)
  in
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare (score b) (score a)) order;
  let chosen = Array.make n false in
  let used = ref 0 in
  Array.iter
    (fun v ->
      if sel.(v) > 0 && !used + mult.(v) <= budget_ticks then begin
        chosen.(v) <- true;
        used := !used + mult.(v)
      end)
    order;
  chosen

(* Solve over a subset of nodes (cheap nodes) with a given budget; the
   result is a candidate node set over the ORIGINAL instance ids. *)
let solve_cheap inst opts pool rng ~allowed ~budget =
  Trace.with_span ~name:"qk.pipeline" @@ fun sp ->
  let g = inst.graph in
  if budget <= 0.0 then []
  else begin
    let cheap, back = Graph.subgraph g allowed in
    let n = Graph.n cheap in
    if n = 0 then []
    else begin
      let resolution = max 8 opts.resolution in
      (* Tick size: budget/resolution, but never so fine that the total
         number of blow-up copies explodes (cheap nodes cost far more
         than the tick when the budget is small relative to the costs). *)
      let total_cost =
        let acc = ref 0.0 in
        for v = 0 to n - 1 do
          acc := !acc +. Graph.node_cost cheap v
        done;
        !acc
      in
      let tick =
        max (budget /. float_of_int resolution) (total_cost /. 300_000.0)
      in
      let resolution = max 8 (int_of_float (budget /. tick)) in
      let mult =
        Array.init n (fun v -> max 1 (int_of_float (ceil (Graph.node_cost cheap v /. tick))))
      in
      let iterations =
        if opts.bipartitions > 0 then opts.bipartitions
        else begin
          let log2n = int_of_float (ceil (log (float_of_int (max n 2)) /. log 2.0)) in
          min 8 (max 2 log2n)
        end
      in
      if Trace.recording sp then begin
        Trace.add_attr sp "nodes" (Trace.Int n);
        Trace.add_attr sp "copies" (Trace.Int (Array.fold_left ( + ) 0 mult));
        Trace.add_attr sp "ticks" (Trace.Int resolution);
        Trace.add_attr sp "passes" (Trace.Int (iterations + 2))
      end;
      (* Map back, fill greedily with the true float costs, evaluate on
         the original graph.  Runs inside each pass task; everything it
         touches besides the shared read-only graphs is task-local. *)
      let finish_pass set =
        let full = Array.make (Graph.n g) false in
        Array.iteri (fun v chosen -> if chosen then full.(back.(v)) <- true) set;
        (* Guard: integer rounding can overshoot the true budget only by
           accident; drop greedily if so. *)
        let cost = ref (Graph.induced_cost g full) in
        if !cost > budget then begin
          let order = Array.init (Graph.n g) (fun i -> i) in
          Array.sort
            (fun a b -> compare (Graph.node_cost g b) (Graph.node_cost g a))
            order;
          Array.iter
            (fun v ->
              if !cost > budget && full.(v) then begin
                full.(v) <- false;
                cost := !cost -. Graph.node_cost g v
              end)
            order
        end;
        greedy_fill { inst with budget } full;
        let value = Graph.induced_weight g full in
        let nodes =
          Array.to_list
            (Array.of_seq
               (Seq.filter_map
                  (fun v -> if full.(v) then Some v else None)
                  (Seq.init (Graph.n g) (fun i -> i))))
        in
        (value, nodes)
      in
      (* The restart portfolio: each bipartition gets its own RNG stream
         derived from (this call's stream, pass index), so results are
         bit-identical at any job count. *)
      let score = fst in
      let tasks =
        List.init iterations (fun i ->
            Engine.Task.make ~label:"qk.bipartition" ~rng:(Rng.derive rng i) ~score
              (fun trng ->
                Bcc_robust.Deadline.poll ();
                Bcc_robust.Fault.hit "qk.restart";
                finish_pass (pipeline_once cheap mult ~budget_ticks:resolution trng)))
        @ [
            (* Non-bipartite passes: at the paper's half-budget k and at
               the full tick budget (the rounding keeps both feasible). *)
            Engine.Task.make ~label:"qk.full-half" ~score (fun _ ->
                finish_pass (full_pass cheap mult ~budget_ticks:resolution ~k:(resolution / 2)));
            Engine.Task.make ~label:"qk.full" ~score (fun _ ->
                finish_pass (full_pass cheap mult ~budget_ticks:resolution ~k:resolution));
          ]
      in
      match Engine.Portfolio.best pool tasks with
      | Some r -> snd r.Engine.Portfolio.value
      | None -> []
    end
  end

let solve ?(options = default_options) ?pool ?rng inst =
  Trace.with_span ~name:"qk" @@ fun sp ->
  let g = inst.graph in
  let n = Graph.n g in
  if Trace.recording sp then begin
    Trace.add_attr sp "nodes" (Trace.Int n);
    Trace.add_attr sp "budget" (Trace.Float inst.budget)
  end;
  (* Explicit solve-context threading: callers (the solver pipeline)
     hand us their pool and randomness stream; the defaults reproduce
     the historical ambient-pool + seed-constant behavior bit for
     bit. *)
  let pool = match pool with Some p -> p | None -> Engine.default_pool () in
  let root = match rng with Some r -> r | None -> Rng.create options.seed in
  let budget = inst.budget in
  let affordable = Array.init n (fun v -> Graph.node_cost g v <= budget +. 1e-12) in
  let expensive =
    Array.init n (fun v -> affordable.(v) && Graph.node_cost g v > budget /. 2.0)
  in
  let cheap = Array.init n (fun v -> affordable.(v) && not expensive.(v)) in
  let expensive_ids =
    let ids = ref [] in
    for v = n - 1 downto 0 do
      if expensive.(v) then ids := v :: !ids
    done;
    let ids = Array.of_list !ids in
    Array.sort (fun a b -> compare (Graph.weighted_degree g b) (Graph.weighted_degree g a)) ids;
    ids
  in
  (* Candidate-generating branches, one engine task each; every branch
     returns a list of candidate node sets and derives its RNG stream
     from (seed, branch index) so any schedule yields the same draws.
     Branch order fixes candidate order: cheap-only first, then the
     expensive-node branches by descending weighted degree, then the
     expensive pair. *)
  let branch i label f = Engine.Task.make ~label ~rng:(Rng.derive root i) f in
  let cheap_branch =
    (* Branch: no expensive node. *)
    branch 0 "qk.branch.cheap" (fun rng ->
        [ solve_cheap inst options pool rng ~allowed:cheap ~budget ])
  in
  let expensive_branches =
    List.filteri (fun i _ -> i < options.max_expensive_branches)
      (Array.to_list (Array.mapi (fun i v -> (i, v)) expensive_ids))
    |> List.map (fun (i, v) ->
           branch (1 + i) "qk.branch.expensive" (fun rng ->
               (* One expensive node + residual, and the bare hub: the
                  final greedy fill grows the hub using its own edges,
                  which the residual solve cannot see. *)
               let residual_budget = budget -. Graph.node_cost g v in
               [ v :: solve_cheap inst options pool rng ~allowed:cheap ~budget:residual_budget; [ v ] ]))
  in
  let pair_branch =
    (* Branch: a pair of expensive nodes (at most two fit in the budget). *)
    branch (1 + Array.length expensive_ids) "qk.branch.pair" (fun _ ->
        let ne = Array.length expensive_ids in
        let pair_cap = min ne 200 in
        let best_pair = ref None in
        for i = 0 to pair_cap - 1 do
          for j = i + 1 to pair_cap - 1 do
            let a = expensive_ids.(i) and b = expensive_ids.(j) in
            if Graph.node_cost g a +. Graph.node_cost g b <= budget +. 1e-12 then begin
              let w = match Graph.edge_weight g a b with Some w -> w | None -> 0.0 in
              match !best_pair with
              | Some (_, _, w') when w' >= w -> ()
              | _ -> best_pair := Some (a, b, w)
            end
          done
        done;
        match !best_pair with Some (a, b, _) -> [ [ a; b ] ] | None -> [])
  in
  let candidates =
    List.concat
      (Engine.Portfolio.collect pool
         ((cheap_branch :: expensive_branches) @ [ pair_branch ]))
  in
  (* Evaluate all candidates after a final greedy fill, in parallel;
     rank by realized value with ties to the earlier candidate. *)
  let eval_tasks =
    List.map
      (fun nodes ->
        Engine.Task.make ~label:"qk.candidate"
          ~score:(function Some sol -> sol.value | None -> neg_infinity)
          (fun _ ->
            let sel = Array.make n false in
            List.iter (fun v -> sel.(v) <- true) nodes;
            if Graph.induced_cost g sel <= budget +. 1e-9 then begin
              greedy_fill inst sel;
              local_improve inst sel;
              greedy_fill inst sel;
              let nodes = ref [] in
              for v = n - 1 downto 0 do
                if sel.(v) then nodes := v :: !nodes
              done;
              Some (evaluate inst !nodes)
            end
            else None))
      candidates
  in
  let best =
    match Engine.Portfolio.best pool eval_tasks with
    | Some { Engine.Portfolio.value = Some sol; _ } when sol.value > 0.0 -> sol
    | _ -> { nodes = []; cost = 0.0; value = 0.0 }
  in
  if Trace.recording sp then begin
    Trace.add_attr sp "candidates" (Trace.Int (List.length candidates));
    Trace.add_attr sp "picked" (Trace.Int (List.length best.nodes));
    Trace.add_attr sp "value" (Trace.Float best.value);
    Trace.add_attr sp "cost" (Trace.Float best.cost)
  end;
  best
