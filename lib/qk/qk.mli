(** Quadratic Knapsack (Definition 2.6): select a node set whose total
    cost is within the budget, maximizing the induced edge weight.

    [BCC_{l=2}(2)] is exactly this problem (Observation 4.4): nodes are
    singleton classifiers with their costs, edges are length-2 queries
    weighted by utility.

    {!solve} implements the paper's heuristic [A^QK_H] (Section 4.1):

    + {b Preprocessing} — prune nodes costing more than the budget;
      branch on "expensive" nodes (cost in [B/2, B]): no expensive node,
      one expensive node with a reduced-budget residual, or a pair of
      expensive nodes (at most two fit).
    + {b Integer scaling} — round costs up onto a budget grid (the
      epsilon-rounding of the paper) so each node has an integer
      multiplicity for the blow-up.
    + {b Random bipartition} — repeat [O(log n)] times: split the nodes
      uniformly into L and R and keep only the crossing edges (the
      spectral-DkS trick of [53] the paper adopts); each iteration runs
      the full pipeline and the best outcome wins.
    + {b Implicit blow-up + HkS} — replace node [v] by [cost(v)] copies
      and ask the {!Bcc_dks.Hks} portfolio for the heaviest
      [k = B/2]-copy subgraph (half the budget is held in reserve, as in
      the paper).
    + {b Copy swapping} — reassign selected copies side-by-side so that
      at most one node per side is partially selected (the paper's
      two-phase swap is equivalent to a greedy refill in decreasing
      per-copy weighted degree).
    + {b Final selection} — complete partial nodes from the reserve
      budget when possible; otherwise apply the paper's case I (drop
      the mutual edge and consolidate into the better endpoint) or
      case II (keep just the two partial nodes) rule.
    + {b Greedy fill} — spend any remaining budget on nodes with the
      best marginal-weight-to-cost ratio, evaluated on the original
      (non-bipartite) graph. *)

type instance = { graph : Bcc_graph.Graph.t; budget : float }
(** Node costs and edge weights live on the graph; both non-negative. *)

type solution = { nodes : int list; cost : float; value : float }

type options = {
  bipartitions : int;  (** random bipartition restarts (default: [log2 n], clamped to [2, 8]) *)
  resolution : int;  (** budget grid ticks for integer cost scaling (default 2000) *)
  max_expensive_branches : int;
      (** cap on single-expensive-node branches explored (default 24) *)
  seed : int;  (** PRNG seed (default 0x5EED) *)
}

val default_options : options

(** [solve]'s [pool] and [rng] are the explicit solve-context
    threading: the solver passes its context's engine pool and (for
    pipeline per-component solves) a fingerprint-derived randomness
    stream.  Omitted, they fall back to the process-default pool and a
    stream seeded by [options.seed] — bit-identical to the historical
    behavior.  [rng] is consumed only via {!Bcc_util.Rng.derive}, so a
    shared stream is safe across concurrent branches. *)
val solve :
  ?options:options ->
  ?pool:Bcc_engine.Engine.Pool.t ->
  ?rng:Bcc_util.Rng.t ->
  instance ->
  solution
val verify : instance -> solution -> bool
(** Recompute cost and value from scratch and check budget
    feasibility. *)

val evaluate : instance -> int list -> solution
(** Build a {!solution} record (recomputed cost/value) for a node
    list. *)
