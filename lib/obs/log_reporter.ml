let pp_level ppf level =
  Format.pp_print_string ppf
    (match level with
    | Logs.App -> "APP"
    | Logs.Error -> "ERROR"
    | Logs.Warning -> "WARN"
    | Logs.Info -> "INFO"
    | Logs.Debug -> "DEBUG")

let reporter () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags:_ fmt ->
    let t = Unix.gettimeofday () in
    let tm = Unix.localtime t in
    let ms = int_of_float (Float.rem t 1.0 *. 1000.0) in
    Format.kfprintf k Format.err_formatter
      ("%02d:%02d:%02d.%03d [%a] %s: %s@[" ^^ fmt ^^ "@]@.")
      tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec ms pp_level level
      (Logs.Src.name src)
      (match header with Some h -> h ^ " " | None -> "")
  in
  { Logs.report }

let install ?(level = Logs.Warning) () =
  Logs.set_reporter (reporter ());
  Logs.set_level (Some level)
