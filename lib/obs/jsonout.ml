(* Shared self-contained JSON emission for the observability layer.
   bcc_obs sits below bcc_server in the dependency order, so it cannot
   use the server's codec — but everything emitted here must stay
   parseable by it ([Bcc_server.Json.of_string]). *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no non-finite literals; mirror Bcc_server.Json and emit them
   as strings so the round-trip stays lossless.  Integer-valued floats
   keep a trailing ".0" so a decoder can tell them from ints. *)
let number x =
  if Float.is_nan x then "\"nan\""
  else if x = infinity then "\"inf\""
  else if x = neg_infinity then "\"-inf\""
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

(* Chrome trace_event consumers reject "3.0"-style numbers nowhere, but
   the historical trace output printed bare integers; keep that form for
   [Trace.chrome_json]. *)
let number_compact x =
  if Float.is_nan x then "\"nan\""
  else if x = infinity then "\"inf\""
  else if x = neg_infinity then "\"-inf\""
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x
