(** A timestamped stderr {!Logs} reporter.

    The library code already logs through named sources ([bcc.solver],
    [bcc.gmc3]); without a reporter installed those lines vanish.  Both
    binaries install this one (via their [--log-level] flag), rendering

    {v 14:02:07.513 [DEBUG] bcc.solver: round 2: remaining=160.0 ... v}

    on stderr: wall-clock [HH:MM:SS.mmm], the level, the source name,
    then the message. *)

val reporter : unit -> Logs.reporter

val install : ?level:Logs.level -> unit -> unit
(** [install ~level ()] sets this reporter and the global level
    (default [Warning]). *)
