type incumbent = {
  round : int;
  arm : string;
  utility : float;
  cost : float;
  budget_slack : float;
  deadline_margin_s : float;
  knap_items : int;
  qk_nodes : int;
}

type report = {
  rounds : int;
  improvements : int;
  utility : float;
  cost : float;
  utility_ratio : float;
  degraded : bool;
  wall_s : float;
}

let incumbent_event = "incumbent_update"
let report_event = "solve_report"

let emit_incumbent (i : incumbent) =
  Event.emit incumbent_event
    ~attrs:
      [
        ("round", Event.Int i.round);
        ("arm", Event.Str i.arm);
        ("utility", Event.Float i.utility);
        ("cost", Event.Float i.cost);
        ("budget_slack", Event.Float i.budget_slack);
        ("deadline_margin_s", Event.Float i.deadline_margin_s);
        ("knap_items", Event.Int i.knap_items);
        ("qk_nodes", Event.Int i.qk_nodes);
      ]

let emit_report (r : report) =
  Event.emit report_event
    ~attrs:
      [
        ("rounds", Event.Int r.rounds);
        ("improvements", Event.Int r.improvements);
        ("utility", Event.Float r.utility);
        ("cost", Event.Float r.cost);
        ("utility_ratio", Event.Float r.utility_ratio);
        ("degraded", Event.Bool r.degraded);
        ("wall_s", Event.Float r.wall_s);
      ]

(* Decoders tolerate missing attributes (sampled, hand-written or
   future-versioned events) by substituting neutral values; only the
   event name gates them. *)

let attr ev k = List.assoc_opt k ev.Event.attrs

let num ev k ~default =
  match attr ev k with
  | Some (Event.Float f) -> f
  | Some (Event.Int i) -> float_of_int i
  | _ -> default

let int_ ev k ~default =
  match attr ev k with
  | Some (Event.Int i) -> i
  | Some (Event.Float f) -> int_of_float f
  | _ -> default

let str ev k ~default = match attr ev k with Some (Event.Str s) -> s | _ -> default

let bool_ ev k ~default =
  match attr ev k with Some (Event.Bool b) -> b | _ -> default

let incumbent_of_event ev =
  if ev.Event.name <> incumbent_event then None
  else
    Some
      {
        round = int_ ev "round" ~default:0;
        arm = str ev "arm" ~default:"";
        utility = num ev "utility" ~default:0.0;
        cost = num ev "cost" ~default:0.0;
        budget_slack = num ev "budget_slack" ~default:0.0;
        deadline_margin_s = num ev "deadline_margin_s" ~default:infinity;
        knap_items = int_ ev "knap_items" ~default:0;
        qk_nodes = int_ ev "qk_nodes" ~default:0;
      }

let report_of_event ev =
  if ev.Event.name <> report_event then None
  else
    Some
      {
        rounds = int_ ev "rounds" ~default:0;
        improvements = int_ ev "improvements" ~default:0;
        utility = num ev "utility" ~default:0.0;
        cost = num ev "cost" ~default:0.0;
        utility_ratio = num ev "utility_ratio" ~default:0.0;
        degraded = bool_ ev "degraded" ~default:false;
        wall_s = num ev "wall_s" ~default:0.0;
      }

(* The anytime curve of one solve: (timestamp, incumbent utility) per
   incumbent update, in event order.  Utility is monotone within a
   solve (incumbents only ever improve; MC3 reclaims cost at equal
   utility), so the curve plots directly. *)
let curve events =
  List.filter_map
    (fun ev ->
      match incumbent_of_event ev with
      | Some i -> Some (ev.Event.ts_s, i.utility)
      | None -> None)
    events

(* Curve extraction over a mixed stream.  Grouping is strictly by
   correlation id: a recorded stream interleaves events from every solve
   that ran while recording was on (concurrent solves on pool domains,
   successive solves in a loop), and folding them into one curve
   produces the characteristic corruption — utility sawtooths back to
   0.0 whenever another solve starts.  Within one group the stream is a
   single solve's, where utility is monotone by construction, so the
   only post-processing needed is defensive: adjacent identical samples
   collapse (high-frequency arms re-report the same incumbent), and the
   closing [arm = "final"] point is monotone-checked — the solver
   returns its best incumbent, so a final below the running maximum can
   only come from a corrupted or truncated stream and is lifted to the
   maximum rather than poisoning the curve's tail. *)
let solve_curves events =
  let order = ref [] in
  let by_corr : (string, (float * float * string) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun ev ->
      match incumbent_of_event ev with
      | None -> ()
      | Some i ->
          let corr = ev.Event.corr in
          let cell =
            match Hashtbl.find_opt by_corr corr with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add by_corr corr c;
                order := corr :: !order;
                c
          in
          cell := (ev.Event.ts_s, i.utility, i.arm) :: !cell)
    events;
  let finish samples =
    (* newest-first; rebuild oldest-first with adjacent dedup. *)
    let rec dedup acc = function
      | [] -> acc
      | (t, u, _) :: rest ->
          let acc =
            match acc with
            | (t', u') :: _ when t' = t && u' = u -> acc
            | _ -> (t, u) :: acc
          in
          dedup acc rest
    in
    let pts = dedup [] samples in
    let best = List.fold_left (fun m (_, u) -> Float.max m u) neg_infinity pts in
    match (samples, List.rev pts) with
    | (_, u_final, "final") :: _, (t_last, _) :: tail when u_final < best ->
        List.rev ((t_last, best) :: tail)
    | _ -> pts
  in
  List.rev_map (fun corr -> (corr, finish !(Hashtbl.find by_corr corr))) !order
