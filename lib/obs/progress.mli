(** The solver's anytime progress stream, as typed {!Event}s.

    Every committed incumbent improvement inside
    [Bcc_core.Solver.solve_within] emits one ["incumbent_update"] event
    (round, winning arm, realized utility and cost, remaining budget
    slack, deadline margin, decomposition sizes), and every solve ends
    with one ["solve_report"] summary — so any solve with events enabled
    yields a utility-over-time curve for free, the object the paper's
    Section 6 evaluation (and the budgeted-learning literature) plots.

    This module owns the schema: emitters for the solver side, decoders
    for consumers (the flight recorder's [GET /debug/solves] curves, the
    CLI's [--progress] ticker, the bench harness's per-experiment
    curves).  Decoders are total — missing attributes fall back to
    neutral values — so sampled or older streams still parse. *)

type incumbent = {
  round : int;  (** residual round; post-round stages keep the last round *)
  arm : string;
      (** what produced the improvement: a round arm ([knap], [knap-all],
          [cover], [qk], with [:half] suffixes), [mc3], [sweep], [race]
          or [final] (the last update of every solve, carrying the
          returned solution's utility) *)
  utility : float;  (** covered utility of the incumbent *)
  cost : float;  (** budget spent by the incumbent *)
  budget_slack : float;  (** budget remaining after this incumbent *)
  deadline_margin_s : float;  (** seconds left on the ambient deadline; [infinity] without one *)
  knap_items : int;  (** knapsack items in this round's full-budget decomposition *)
  qk_nodes : int;  (** QK graph nodes in this round's full-budget decomposition *)
}

type report = {
  rounds : int;
  improvements : int;  (** committed incumbent updates (round arms + mc3) *)
  utility : float;
  cost : float;
  utility_ratio : float;  (** utility / total instance utility; 1 when total is 0 *)
  degraded : bool;
  wall_s : float;
}

val incumbent_event : string
(** ["incumbent_update"] *)

val report_event : string
(** ["solve_report"] *)

val emit_incumbent : incumbent -> unit
val emit_report : report -> unit

val incumbent_of_event : Event.t -> incumbent option
(** [Some] exactly on ["incumbent_update"] events. *)

val report_of_event : Event.t -> report option
(** [Some] exactly on ["solve_report"] events. *)

val curve : Event.t list -> (float * float) list
(** [(timestamp, utility)] per incumbent update, in event order — the
    anytime utility curve of the solve the events belong to.  The caller
    must pass a single solve's events; for a mixed stream use
    {!solve_curves}. *)

val solve_curves : Event.t list -> (string * (float * float) list) list
(** Per-solve anytime curves of a mixed recorded stream, keyed {e
    strictly} by correlation id, in order of each solve's first
    incumbent.  A recorded stream interleaves every solve that ran while
    recording was on; merging them into one curve produces sawtooth
    drops to 0.0 whenever another solve starts (the BENCH_9 [incr]
    corruption).  Each curve is cleaned defensively: adjacent identical
    [(t, u)] samples collapse, and the closing [arm = "final"] point is
    monotone-checked — lifted to the curve's running maximum when a
    corrupted or truncated stream reports less (the solver returns its
    best incumbent, so a clean final is always the maximum). *)
