type stat = { stage : string; count : int; total_s : float; min_s : float; max_s : float }

type entry = {
  mutable count : int;
  mutable total_s : float;
  mutable min_s : float;
  mutable max_s : float;
}

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 32
let observer : (string -> float -> unit) option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record stage dur =
  let obs =
    locked (fun () ->
        (match Hashtbl.find_opt table stage with
        | Some e ->
            e.count <- e.count + 1;
            e.total_s <- e.total_s +. dur;
            if dur < e.min_s then e.min_s <- dur;
            if dur > e.max_s then e.max_s <- dur
        | None ->
            Hashtbl.add table stage { count = 1; total_s = dur; min_s = dur; max_s = dur });
        !observer)
  in
  (* The observer runs outside the lock: it typically takes its own
     (the metrics registry's), and lock nesting invites deadlocks. *)
  match obs with Some f -> f stage dur | None -> ()

let stats () =
  locked (fun () ->
      Hashtbl.fold
        (fun stage (e : entry) acc ->
          { stage; count = e.count; total_s = e.total_s; min_s = e.min_s; max_s = e.max_s }
          :: acc)
        table [])
  |> List.sort (fun (a : stat) b -> compare b.total_s a.total_s)

let summary () =
  let stats = stats () in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%-18s %10s %12s %12s %12s %12s\n" "stage" "calls" "total" "mean"
    "min" "max";
  let pp_s s =
    if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
    else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
    else Printf.sprintf "%.3fs" s
  in
  List.iter
    (fun { stage; count; total_s; min_s; max_s } ->
      Printf.bprintf buf "%-18s %10d %12s %12s %12s %12s\n" stage count (pp_s total_s)
        (pp_s (total_s /. float_of_int (max count 1)))
        (pp_s min_s) (pp_s max_s))
    stats;
  Buffer.contents buf

let reset () = locked (fun () -> Hashtbl.reset table)
let set_observer f = locked (fun () -> observer := Some f)
let clear_observer () = locked (fun () -> observer := None)
