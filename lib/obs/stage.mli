(** Per-stage wall-time aggregation.

    The solver pipeline is instrumented with {!Trace.with_span}; when
    stage profiling is on ({!Trace.set_profiling}) every completed span
    is also folded into this process-global accumulator keyed by the
    span (= stage) name: call count, total, minimum and maximum wall
    time.
    Reading is cheap and lock-protected; the aggregate survives any
    number of solves until {!reset}.

    An optional {e observer} receives every (stage, duration) sample as
    it is recorded — [bccd] uses it to feed per-stage latency histograms
    into its Prometheus registry without this library depending on the
    server.

    Safe under concurrent OCaml 5 domains: the stage table is guarded by
    a mutex and the observer is invoked {e outside} the lock (it takes
    its own — typically the metrics registry's), so engine worker
    domains may record simultaneously without deadlock or corruption.
    The observer itself must therefore be domain-safe. *)

type stat = {
  stage : string;
  count : int;  (** completed spans with this name *)
  total_s : float;  (** summed wall time, seconds *)
  min_s : float;  (** best single span, seconds *)
  max_s : float;  (** worst single span, seconds *)
}

val record : string -> float -> unit
(** [record stage seconds] folds one sample into the accumulator and
    forwards it to the observer, if any.  Normally called by
    {!Trace.with_span}; exposed for out-of-band samples. *)

val stats : unit -> stat list
(** Snapshot, sorted by [total_s] descending. *)

val summary : unit -> string
(** Human-readable table of {!stats} (one line per stage), e.g. printed
    by [bcc_cli --profile] and [bench/main.exe --profile]. *)

val reset : unit -> unit
(** Drop all accumulated samples (the observer stays installed). *)

val set_observer : (string -> float -> unit) -> unit
(** Install the sample observer (replaces any previous one). *)

val clear_observer : unit -> unit
