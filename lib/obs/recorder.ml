type solve = {
  corr : string;
  start_s : float;
  mutable end_s : float;
  mutable rev_events : Event.t list;
  mutable n_events : int;
  mutable spans : Trace.span list;
  mutable complete : bool;
  mutable degraded : bool;
}

(* Per-solve event cap: a runaway emitter cannot pin unbounded memory on
   one correlation id; the newest events win (the final report matters
   most for post-hoc debugging). *)
let max_events_per_solve = 8192
let max_spans_per_solve = 4096

let lock = Mutex.create ()
let table : (string, solve) Hashtbl.t = Hashtbl.create 64
let order : string Queue.t = Queue.create ()
let capacity = ref 64
let debug_dir : string option ref = ref None
let slow_s = ref 1.0
let dumps = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      Queue.clear order)

let set_debug_dir ?slow dir =
  locked (fun () ->
      debug_dir := dir;
      match slow with Some s -> slow_s := s | None -> ())

let events s = List.rev s.rev_events

(* One solve as JSONL: its events, then its spans as ["span"]
   pseudo-events (attrs in addition order) — every line decodes with
   [Event.of_json_line]. *)
let dump_string s =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (Event.to_json_line ev);
      Buffer.add_char buf '\n')
    (events s);
  List.iter
    (fun (sp : Trace.span) ->
      let ev =
        {
          Event.ts_s = sp.Trace.start_s;
          corr = s.corr;
          name = "span";
          attrs =
            ("span", Event.Str sp.Trace.name)
            :: ("duration_s", Event.Float (sp.Trace.end_s -. sp.Trace.start_s))
            :: ("span_id", Event.Int sp.Trace.id)
            :: ("parent_id", Event.Int sp.Trace.parent)
            :: Trace.ordered_attrs sp;
        }
      in
      Buffer.add_string buf (Event.to_json_line ev);
      Buffer.add_char buf '\n')
    s.spans;
  Buffer.contents buf

let write_dump dir s =
  try
    (try Unix.mkdir dir 0o755 with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
    let path = Filename.concat dir (s.corr ^ ".jsonl") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (dump_string s));
    incr dumps
  with Unix.Unix_error _ | Sys_error _ -> ()

let take_last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let on_event (ev : Event.t) =
  if ev.Event.corr <> "" then begin
    let to_dump =
      locked (fun () ->
          let s =
            match Hashtbl.find_opt table ev.Event.corr with
            | Some s -> s
            | None ->
                while Queue.length order >= !capacity do
                  Hashtbl.remove table (Queue.pop order)
                done;
                let s =
                  {
                    corr = ev.Event.corr;
                    start_s = ev.Event.ts_s;
                    end_s = ev.Event.ts_s;
                    rev_events = [];
                    n_events = 0;
                    spans = [];
                    complete = false;
                    degraded = false;
                  }
                in
                Hashtbl.replace table ev.Event.corr s;
                Queue.push ev.Event.corr order;
                s
          in
          if s.n_events < max_events_per_solve then begin
            s.rev_events <- ev :: s.rev_events;
            s.n_events <- s.n_events + 1
          end
          else
            (* Keep the stream's tail: drop the oldest retained event. *)
            s.rev_events <- ev :: take_last (max_events_per_solve - 1) s.rev_events;
          s.end_s <- ev.Event.ts_s;
          if ev.Event.name = Progress.report_event then begin
            s.complete <- true;
            (match Progress.report_of_event ev with
            | Some r -> s.degraded <- r.Progress.degraded
            | None -> ());
            (* Best-effort span capture: whatever the trace ring still
               holds that overlaps this solve's window.  Under concurrent
               solves a span of a neighbor can slip in — the dump is a
               debugging artifact, not an accounting ledger. *)
            s.spans <-
              take_last max_spans_per_solve
                (List.filter
                   (fun (sp : Trace.span) ->
                     sp.Trace.end_s >= s.start_s -. 1e-9
                     && sp.Trace.start_s <= s.end_s +. 1e-9)
                   (Trace.spans ()));
            match !debug_dir with
            | Some dir when s.degraded || s.end_s -. s.start_s > !slow_s ->
                Some (dir, s)
            | _ -> None
          end
          else None)
    in
    match to_dump with Some (dir, s) -> write_dump dir s | None -> ()
  end

let enable ?capacity:(cap = 64) () =
  locked (fun () ->
      capacity := max 1 cap;
      Hashtbl.reset table;
      Queue.clear order);
  Event.add_sink ~name:"recorder" on_event

let disable () = Event.remove_sink "recorder"

let find corr = locked (fun () -> Hashtbl.find_opt table corr)

let solves () =
  locked (fun () ->
      Queue.fold
        (fun acc corr ->
          match Hashtbl.find_opt table corr with Some s -> s :: acc | None -> acc)
        [] order)
  |> List.rev

let dump_count () = locked (fun () -> !dumps)
