(** Wide, structured telemetry events.

    Where {!Trace} answers "where did the time go", events answer "what
    did this solve achieve, and for whom": each event is a timestamped,
    named bag of key/value attributes stamped with the {e correlation
    id} of the request or solve that produced it.  The solver emits an
    anytime progress stream through {!Progress}; [bccd] stamps every
    request with a fresh correlation id (returned in the
    [X-Bcc-Trace-Id] response header) so the events of one solve can be
    pulled out of the firehose afterwards ({!Recorder},
    [GET /debug/solves]).

    Cost when disabled: a single load of one atomic flag per {!emit}
    call.  Instrumentation sites that must compute attribute values
    guard the computation behind {!enabled}.

    Enabled, an event is appended to a process-global bounded ring
    (oldest overwritten first) and fanned out to the pluggable sinks —
    a JSONL file ({!log_to_file}), stderr ({!log_to_stderr}), the flight
    recorder, a metrics bridge.  Sinks run outside the ring lock and a
    raising sink only loses its own delivery.  Per-event-type sampling
    ({!set_sampling}) keeps 1 in [n] of a noisy type, counted
    deterministically (no RNG), before the ring and the sinks.

    Emitting events never changes solver behavior: the event layer is
    observation-only, and solutions are bit-identical with events on or
    off. *)

type value = Trace.value = Bool of bool | Int of int | Float of float | Str of string

type t = {
  ts_s : float;  (** {!Bcc_util.Timer.now_s} at emission *)
  corr : string;  (** correlation id; [""] when emitted outside any scope *)
  name : string;  (** the event type, e.g. ["incumbent_update"] *)
  attrs : (string * value) list;  (** in addition order *)
}

(** {2 Attribute access}

    Typed attribute lookup for tests and sinks that pick one field out
    of an event ([None] when the key is absent {e or} holds another
    type; [attr_float] also accepts [Int], since emitters freely choose
    between the two numeric shapes). *)

val attr_bool : t -> string -> bool option
val attr_int : t -> string -> int option
val attr_float : t -> string -> float option
val attr_str : t -> string -> string option

val set_enabled : ?capacity:int -> bool -> unit
(** Turn the event layer on or off.  Enabling clears the ring and, when
    [capacity] (default 4096) is given, resizes it. *)

val enabled : unit -> bool
(** One atomic load — guard attribute computation at emission sites. *)

val emit : ?attrs:(string * value) list -> string -> unit
(** [emit ~attrs name] records one event (timestamp and correlation id
    are filled in here).  No-op when disabled; dropped silently when the
    type is sampled out. *)

(** {2 Correlation ids} *)

val new_corr : unit -> string
(** A fresh process-unique correlation id (12 hex chars). *)

val current_corr : unit -> string
(** The ambient correlation id of the calling domain ([""] outside any
    {!with_corr} scope).  Engine tasks capture it at creation and
    re-install it around the task body on whichever domain runs it. *)

val with_corr : string -> (unit -> 'a) -> 'a
(** Bind the ambient correlation id for the duration of the callback. *)

(** {2 Ring buffer} *)

val events : ?last:int -> unit -> t list
(** Events still in the ring, oldest first ([last] keeps only the most
    recent [last]). *)

val dropped : unit -> int
(** Events overwritten by ring wraparound since the last {!clear}. *)

val clear : unit -> unit

(** {2 Sinks and sampling} *)

val add_sink : name:string -> (t -> unit) -> unit
(** Install (or replace) a named sink.  Sinks are called after the ring
    append, outside its lock, on the emitting thread; they must be
    domain-safe.  A sink that raises loses that delivery only. *)

val remove_sink : string -> unit

val set_sampling : string -> int -> unit
(** [set_sampling name n] keeps 1 in [n] events of type [name] (the
    first of every [n], deterministically).  [n <= 1] removes the
    rule. *)

val clear_sampling : unit -> unit

val log_to_file : string -> unit
(** Install the ["file"] sink: one {!to_json_line} per event, flushed
    per line, truncating [path] first.  Replaces any previous file. *)

val close_log : unit -> unit
(** Flush, close and remove the ["file"] sink. *)

val log_to_stderr : bool -> unit
(** Install or remove the ["stderr"] sink (one JSONL line per event). *)

(** {2 JSONL codec} *)

val to_json_line : t -> string
(** One event as a single-line JSON object
    [{"ts":…,"corr":"…","name":"…","attrs":{…}}].  Attributes are
    emitted in addition order; non-finite floats become the strings
    ["nan"]/["inf"]/["-inf"] (the same convention as
    {!Trace.chrome_json}), and the output round-trips through
    [Bcc_server.Json]. *)

val of_json_line : string -> t option
(** Decode one line of {!to_json_line} output.  Total: returns [None]
    on malformed input (truncated, mutated, garbage) and {e never}
    raises.  [decode (encode e) = Some e] except that a [Str] attribute
    whose value is exactly ["nan"], ["inf"] or ["-inf"] comes back as
    the corresponding [Float] (the encoding of non-finite floats is
    lossless; the sentinel strings themselves are not). *)
