module Timer = Bcc_util.Timer

type value = Trace.value = Bool of bool | Int of int | Float of float | Str of string

type t = {
  ts_s : float;
  corr : string;
  name : string;
  attrs : (string * value) list;  (* addition order *)
}

(* Typed attribute projections: [None] on a missing key or a type
   mismatch, except that [attr_float] accepts [Int] — numeric attrs are
   emitted in whichever of the two shapes was at hand. *)
let attr ev key = List.assoc_opt key ev.attrs
let attr_bool ev key = match attr ev key with Some (Bool b) -> Some b | _ -> None
let attr_int ev key = match attr ev key with Some (Int n) -> Some n | _ -> None

let attr_float ev key =
  match attr ev key with
  | Some (Float x) -> Some x
  | Some (Int n) -> Some (float_of_int n)
  | _ -> None

let attr_str ev key = match attr ev key with Some (Str s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Enable gate.  The disabled fast path in [emit] is a single load of   *)
(* one atomic flag — same contract as Trace.with_span.                  *)
(* ------------------------------------------------------------------ *)

let on = Atomic.make false
let enabled () = Atomic.get on

(* ------------------------------------------------------------------ *)
(* Correlation ids: one ambient slot per domain (engine tasks capture   *)
(* the submitter's id at creation and re-install it around the body,    *)
(* mirroring the Deadline ambient context).                             *)
(* ------------------------------------------------------------------ *)

let corr_slot : string ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref "")

let current_corr () = !(Domain.DLS.get corr_slot)

let with_corr corr f =
  let r = Domain.DLS.get corr_slot in
  let prev = !r in
  r := corr;
  Fun.protect ~finally:(fun () -> r := prev) f

let corr_counter = Atomic.make 0

let corr_base =
  lazy (Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()) land 0xffffff)

let new_corr () =
  Printf.sprintf "%06x%06x"
    (Lazy.force corr_base)
    (Atomic.fetch_and_add corr_counter 1 land 0xffffff)

(* ------------------------------------------------------------------ *)
(* Ring buffer + pluggable sinks + per-type sampling.                   *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()
let ring = ref (Array.make 4096 None)
let head = ref 0
let filled = ref 0
let dropped_count = ref 0
let sinks : (string * (t -> unit)) list ref = ref []

type sample = { every : int; mutable seen : int }

let sampling : (string, sample) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      filled := 0;
      dropped_count := 0)

let set_enabled ?capacity v =
  if v then begin
    locked (fun () ->
        match capacity with
        | Some c when c <> Array.length !ring -> ring := Array.make (max 1 c) None
        | _ -> ());
    clear ()
  end;
  Atomic.set on v

let set_sampling name every =
  locked (fun () ->
      if every <= 1 then Hashtbl.remove sampling name
      else Hashtbl.replace sampling name { every; seen = 0 })

let clear_sampling () = locked (fun () -> Hashtbl.reset sampling)

let add_sink ~name f =
  locked (fun () -> sinks := (name, f) :: List.remove_assoc name !sinks)

let remove_sink name = locked (fun () -> sinks := List.remove_assoc name !sinks)

let emit ?(attrs = []) name =
  if Atomic.get on then begin
    let ev = { ts_s = Timer.now_s (); corr = current_corr (); name; attrs } in
    let deliver =
      locked (fun () ->
          let keep =
            match Hashtbl.find_opt sampling name with
            | None -> true
            | Some s ->
                let k = s.seen mod s.every = 0 in
                s.seen <- s.seen + 1;
                k
          in
          if keep then begin
            let cap = Array.length !ring in
            if !ring.(!head) <> None then incr dropped_count;
            !ring.(!head) <- Some ev;
            head := (!head + 1) mod cap;
            if !filled < cap then incr filled;
            Some !sinks
          end
          else None)
    in
    (* Sinks run outside the lock (they typically take their own — the
       metrics registry's, the recorder's) and may not veto each other:
       a sink that raises is dropped for the one event, not uninstalled. *)
    match deliver with
    | Some sinks -> List.iter (fun (_, f) -> try f ev with _ -> ()) sinks
    | None -> ()
  end

let events ?last () =
  let all =
    locked (fun () ->
        let cap = Array.length !ring in
        let start = (!head - !filled + cap) mod cap in
        List.filter_map
          (fun i -> !ring.((start + i) mod cap))
          (List.init !filled (fun i -> i)))
  in
  match last with
  | Some n when n >= 0 && List.length all > n ->
      List.filteri (fun i _ -> i >= List.length all - n) all
  | _ -> all

let dropped () = locked (fun () -> !dropped_count)

(* ------------------------------------------------------------------ *)
(* JSONL codec.  One event per line:                                    *)
(*   {"ts":..., "corr":"...", "name":"...", "attrs":{...}}              *)
(* Encoding is self-contained (Jsonout); decoding is a small recursive- *)
(* descent parser that returns [None] on anything malformed — it never  *)
(* raises, whatever the input (truncated, mutated, garbage).            *)
(* ------------------------------------------------------------------ *)

let add_value buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (Jsonout.number x)
  | Str s -> Jsonout.escape buf s

let to_json_line ev =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"ts\":";
  Buffer.add_string buf (Jsonout.number ev.ts_s);
  Buffer.add_string buf ",\"corr\":";
  Jsonout.escape buf ev.corr;
  Buffer.add_string buf ",\"name\":";
  Jsonout.escape buf ev.name;
  Buffer.add_string buf ",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Jsonout.escape buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    ev.attrs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* The decoder's value universe: only what [to_json_line] can produce
   (scalars; nested lists/objects in attrs are rejected, not parsed). *)
exception Bad

let of_json_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise Bad in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c = if peek () <> c then raise Bad else advance () in
  let literal s =
    let l = String.length s in
    if !pos + l <= n && String.sub line !pos l = s then pos := !pos + l else raise Bad
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then raise Bad;
              let code =
                try int_of_string ("0x" ^ String.sub line !pos 4)
                with _ -> raise Bad
              in
              pos := !pos + 4;
              (* Our encoder only escapes control bytes; decode the
                 low range directly and anything else as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
              end
          | _ -> raise Bad);
          go ()
      | c when Char.code c < 0x20 -> raise Bad
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    let is_num = ref false in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      is_num := true;
      incr pos
    done;
    if not !is_num then raise Bad;
    let s = String.sub line start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      match float_of_string_opt s with Some f -> Float f | None -> raise Bad
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt s with Some f -> Float f | None -> raise Bad)
  in
  (* A scalar value; non-finite floats come back from their string
     sentinels (the encoder's lossless detour through JSON). *)
  let parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> (
        match parse_string () with
        | "nan" -> Float Float.nan
        | "inf" -> Float infinity
        | "-inf" -> Float neg_infinity
        | s -> Str s)
    | 't' -> literal "true"; Bool true
    | 'f' -> literal "false"; Bool false
    | _ -> parse_number ()
  in
  let parse_attrs () =
    skip_ws ();
    expect '{';
    skip_ws ();
    if peek () = '}' then begin advance (); [] end
    else begin
      let rec fields acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | ',' -> advance (); fields ((k, v) :: acc)
        | '}' -> advance (); List.rev ((k, v) :: acc)
        | _ -> raise Bad
      in
      fields []
    end
  in
  let num_of = function Int i -> float_of_int i | Float f -> f | _ -> raise Bad in
  try
    skip_ws ();
    expect '{';
    let ts = ref None and corr = ref None and name = ref None and attrs = ref None in
    let rec fields () =
      skip_ws ();
      let k = parse_string () in
      skip_ws ();
      expect ':';
      (match k with
      | "ts" -> ts := Some (num_of (parse_value ()))
      | "corr" -> (
          skip_ws ();
          match parse_value () with Str s -> corr := Some s | _ -> raise Bad)
      | "name" -> (
          skip_ws ();
          match parse_value () with Str s -> name := Some s | _ -> raise Bad)
      | "attrs" -> attrs := Some (parse_attrs ())
      | _ -> raise Bad);
      skip_ws ();
      match peek () with
      | ',' -> advance (); fields ()
      | '}' -> advance ()
      | _ -> raise Bad
    in
    fields ();
    skip_ws ();
    if !pos <> n then raise Bad;
    match (!ts, !corr, !name) with
    | Some ts_s, Some corr, Some name ->
        Some { ts_s; corr; name; attrs = Option.value ~default:[] !attrs }
    | _ -> None
  with _ -> None

(* ------------------------------------------------------------------ *)
(* Built-in sinks: a JSONL file and stderr.                             *)
(* ------------------------------------------------------------------ *)

let file_lock = Mutex.create ()
let file_oc : out_channel option ref = ref None

let close_log () =
  Mutex.lock file_lock;
  (match !file_oc with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  file_oc := None;
  Mutex.unlock file_lock;
  remove_sink "file"

let log_to_file path =
  close_log ();
  let oc = open_out path in
  Mutex.lock file_lock;
  file_oc := Some oc;
  Mutex.unlock file_lock;
  add_sink ~name:"file" (fun ev ->
      let line = to_json_line ev in
      Mutex.lock file_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock file_lock)
        (fun () ->
          match !file_oc with
          | Some oc ->
              output_string oc line;
              output_char oc '\n';
              flush oc
          | None -> ()))

let log_to_stderr v =
  if v then
    add_sink ~name:"stderr" (fun ev -> Printf.eprintf "%s\n%!" (to_json_line ev))
  else remove_sink "stderr"
