module Timer = Bcc_util.Timer

type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;
  parent : int;
  tid : int;
  name : string;
  start_s : float;
  mutable end_s : float;
  mutable attrs : (string * value) list;
}

let null_span =
  { id = -1; parent = -1; tid = 0; name = ""; start_s = 0.0; end_s = 0.0; attrs = [] }

(* One atomic word gates the instrumented path: bit 0 = record spans,
   bit 1 = feed Stage.  The disabled fast path in [with_span] is a
   single [Atomic.get]. *)
let bit_trace = 1
let bit_profile = 2
let state = Atomic.make 0

let tracing () = Atomic.get state land bit_trace <> 0
let profiling () = Atomic.get state land bit_profile <> 0

let lock = Mutex.create ()
let ring = ref (Array.make 4096 None)
let head = ref 0  (* next write slot *)
let filled = ref 0
let dropped_count = ref 0
let next_id = ref 0

(* Innermost open span per execution context; spans nest within one
   context (an engine worker domain, a bccd connection, a test thread),
   never across contexts.  The context id folds the domain id in with
   the thread id: OCaml 5 thread ids are only guaranteed unique within
   a domain, and colliding ids would interleave two domains' stacks and
   corrupt parent linkage. *)
let context_id () =
  ((Domain.self () :> int) * 65536) + Thread.id (Thread.self ())

let stacks : (int, span list ref) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set_flag bit on =
  let rec go () =
    let s = Atomic.get state in
    let s' = if on then s lor bit else s land lnot bit in
    if not (Atomic.compare_and_set state s s') then go ()
  in
  go ()

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      filled := 0;
      dropped_count := 0;
      Hashtbl.reset stacks)

let set_tracing ?capacity on =
  if on then begin
    locked (fun () ->
        match capacity with
        | Some c when c <> Array.length !ring -> ring := Array.make (max 1 c) None
        | _ -> ());
    clear ()
  end;
  set_flag bit_trace on

let set_profiling on = set_flag bit_profile on

let recording sp = sp.id >= 0
let add_attr sp k v = if sp.id >= 0 then sp.attrs <- (k, v) :: sp.attrs

(* Lock held. *)
let push_completed sp =
  let cap = Array.length !ring in
  if !ring.(!head) <> None then incr dropped_count;
  !ring.(!head) <- Some sp;
  head := (!head + 1) mod cap;
  if !filled < cap then incr filled

let open_span ~attrs ~name t0 =
  let tid = context_id () in
  locked (fun () ->
      let id = !next_id in
      incr next_id;
      let stack =
        match Hashtbl.find_opt stacks tid with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks tid s;
            s
      in
      let parent = match !stack with sp :: _ -> sp.id | [] -> -1 in
      let sp =
        {
          id;
          parent;
          tid;
          name;
          start_s = t0;
          end_s = t0;
          attrs = (match attrs with Some a -> List.rev a | None -> []);
        }
      in
      stack := sp :: !stack;
      sp)

let close_span sp t1 =
  sp.end_s <- t1;
  locked (fun () ->
      (match Hashtbl.find_opt stacks sp.tid with
      | Some stack ->
          (* Defensive: pop down to (and including) [sp]; an exception
             escaping a nested [f] already unwound via Fun.protect, so
             normally [sp] is exactly the top. *)
          let rec pop = function
            | top :: rest -> if top.id = sp.id then stack := rest else pop rest
            | [] -> ()
          in
          pop !stack
      | None -> ());
      push_completed sp)

let with_span ?attrs ~name f =
  let s = Atomic.get state in
  if s = 0 then f null_span
  else begin
    let t0 = Timer.now_s () in
    let sp = if s land bit_trace <> 0 then open_span ~attrs ~name t0 else null_span in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Timer.now_s () in
        if s land bit_profile <> 0 then Stage.record name (t1 -. t0);
        if sp.id >= 0 then close_span sp t1)
      (fun () -> f sp)
  end

let spans ?last () =
  let all =
    locked (fun () ->
        let cap = Array.length !ring in
        let start = (!head - !filled + cap) mod cap in
        List.filter_map
          (fun i -> !ring.((start + i) mod cap))
          (List.init !filled (fun i -> i)))
  in
  match last with
  | Some n when n >= 0 && List.length all > n ->
      List.filteri (fun i _ -> i >= List.length all - n) all
  | _ -> all

let dropped () = locked (fun () -> !dropped_count)

(* Attributes are accumulated by prepending, so the stored list is in
   reverse addition order; every export goes through this accessor so
   consumers (chrome_json, the server's span forest, the flight
   recorder's dumps) all present them in the order they were added. *)
let ordered_attrs sp = List.rev sp.attrs

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export.  JSON emission via Jsonout (shared with  *)
(* the event layer): bcc_obs sits below bcc_server in the dependency   *)
(* order, so it cannot use the server's codec — but the output must    *)
(* stay parseable by it.                                               *)
(* ------------------------------------------------------------------ *)

let escape = Jsonout.escape

let add_value buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (Jsonout.number_compact x)
  | Str s -> escape buf s

let chrome_json ?(pid = 1) spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      escape buf sp.name;
      Buffer.add_string buf ",\"cat\":\"bcc\",\"ph\":\"X\",\"pid\":";
      Buffer.add_string buf (string_of_int pid);
      Buffer.add_string buf ",\"tid\":";
      Buffer.add_string buf (string_of_int sp.tid);
      Printf.bprintf buf ",\"ts\":%.3f,\"dur\":%.3f" (sp.start_s *. 1e6)
        ((sp.end_s -. sp.start_s) *. 1e6);
      Buffer.add_string buf ",\"args\":{\"span_id\":";
      Buffer.add_string buf (string_of_int sp.id);
      Buffer.add_string buf ",\"parent_id\":";
      Buffer.add_string buf (string_of_int sp.parent);
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add_value buf v)
        (ordered_attrs sp);
      Buffer.add_string buf "}}")
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf
