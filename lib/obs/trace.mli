(** Hierarchical span tracing for the A^BCC pipeline.

    Every stage of the solver (prune, decompose, knapsack, qk, mc3,
    sweep, each residual round, ...) is wrapped in {!with_span}; when
    tracing is enabled the completed spans land in a process-global,
    lock-protected ring buffer, each carrying a monotonic start/end
    timestamp (from {!Bcc_util.Timer}), the id of its enclosing span
    (per-thread nesting) and arbitrary key/value attributes (round
    number, QK node count, winning candidate arm, gain, cost, ...).

    Cost when disabled: a single load of one atomic flag per
    {!with_span} call — no timestamps, no allocation, no locking — so
    the instrumentation can stay in the hot paths unconditionally.

    The recorder is safe under concurrent OCaml 5 domains (the engine's
    worker pool records spans from every domain): the ring buffer and
    the per-context span stacks are guarded by one mutex, and span
    nesting is tracked per (domain, thread) pair so two domains can
    never interleave into one stack.  A span opened inside an engine
    task is a root of its worker's context — parent links do not cross
    the submission boundary.

    The buffer can be exported as a span forest ({!spans}) or as Chrome
    [trace_event] JSON ({!chrome_json}) loadable in [chrome://tracing]
    and {{:https://ui.perfetto.dev}Perfetto}.  Profiling
    ({!set_profiling}) independently folds span durations into {!Stage}
    without recording individual spans. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;  (** unique, increasing; [-1] on {!null_span} *)
  parent : int;  (** id of the enclosing span, [-1] for roots *)
  tid : int;  (** recording context: [domain_id * 65536 + Thread.id] *)
  name : string;  (** the stage name *)
  start_s : float;  (** {!Bcc_util.Timer.now_s} at entry *)
  mutable end_s : float;
  mutable attrs : (string * value) list;  (** reverse addition order *)
}

val null_span : span
(** The span handle passed to the callback when tracing is off;
    {!add_attr} on it is a no-op. *)

val set_tracing : ?capacity:int -> bool -> unit
(** Turn span recording on or off.  Enabling clears the buffer and, when
    [capacity] (default 4096, the initial size) is given, resizes it. *)

val set_profiling : bool -> unit
(** Turn {!Stage} aggregation of span durations on or off (independent
    of tracing; either alone activates the instrumented path). *)

val tracing : unit -> bool
val profiling : unit -> bool

val with_span : ?attrs:(string * value) list -> name:string -> (span -> 'a) -> 'a
(** [with_span ~name f] runs [f] inside a fresh span nested under the
    calling thread's innermost open span.  The span is recorded when [f]
    returns {e or raises}.  With tracing and profiling both off this is
    [f null_span].  [attrs] is evaluated by the caller; attributes that
    are expensive to compute should instead be attached inside [f] via
    {!add_attr}, guarded by {!recording}. *)

val add_attr : span -> string -> value -> unit
(** Attach an attribute to a live span; no-op on {!null_span}. *)

val recording : span -> bool
(** [false] exactly on {!null_span} — guards expensive attribute
    computation at instrumentation sites. *)

val spans : ?last:int -> unit -> span list
(** Completed spans still in the ring, oldest first ([last] keeps only
    the most recent [last]).  The raw [attrs] field is in reverse
    addition order; use {!ordered_attrs} to export. *)

val ordered_attrs : span -> (string * value) list
(** The span's attributes in the order they were added — the canonical
    export order, used by {!chrome_json}, the server's span forest and
    the flight recorder alike. *)

val dropped : unit -> int
(** Completed spans overwritten by ring wraparound since the buffer was
    last cleared. *)

val clear : unit -> unit
(** Empty the ring buffer and reset the dropped count (enabled flags and
    open spans are unaffected). *)

val chrome_json : ?pid:int -> span list -> string
(** Chrome [trace_event] JSON (an object with a ["traceEvents"] array of
    complete — ["ph":"X"] — events; timestamps in microseconds): load
    the file in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}.  The output is plain JSON and round-trips through
    [Bcc_server.Json]. *)
