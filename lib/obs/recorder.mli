(** Flight recorder: the last N solves' events and spans, keyed by
    correlation id.

    Installed as an {!Event} sink (named ["recorder"]), it groups the
    event stream by correlation id into per-solve records and keeps the
    most recent [capacity] of them in arrival order — [bccd] serves them
    at [GET /debug/solves[?id=…]] so "what did request X actually do"
    stays answerable after the fact.  When a solve's
    ["solve_report"] arrives, the record is marked complete and a
    best-effort snapshot of the {!Trace} spans overlapping the solve's
    time window is attached (under concurrent solves a neighbor's span
    can slip in — the recorder is a debugging artifact, not an
    accounting ledger).

    With a debug directory configured ({!set_debug_dir}), a completing
    solve that was degraded or slower than the threshold is dumped
    automatically to [<dir>/<corr>.jsonl] — its events followed by its
    spans as ["span"] pseudo-events, every line decodable with
    {!Event.of_json_line}. *)

type solve = {
  corr : string;
  start_s : float;  (** timestamp of the first event seen for this id *)
  mutable end_s : float;  (** timestamp of the last event seen *)
  mutable rev_events : Event.t list;  (** newest first; see {!events} *)
  mutable n_events : int;
  mutable spans : Trace.span list;  (** attached on completion *)
  mutable complete : bool;  (** a ["solve_report"] arrived *)
  mutable degraded : bool;
}

val enable : ?capacity:int -> unit -> unit
(** Install the recorder sink, dropping previous records; keeps the last
    [capacity] (default 64) correlation ids.  Events without a
    correlation id are ignored.  Per-solve retention is bounded (newest
    8192 events, 4096 spans). *)

val disable : unit -> unit

val clear : unit -> unit

val set_debug_dir : ?slow:float -> string option -> unit
(** Where to dump slow/degraded solves ([None] disables dumps); [slow]
    (default 1.0, sticky across calls) is the wall-clock threshold in
    seconds. *)

val events : solve -> Event.t list
(** The solve's events, oldest first. *)

val dump_string : solve -> string
(** The JSONL dump (events, then spans as ["span"] pseudo-events with
    attrs in addition order). *)

val find : string -> solve option
(** Look up one correlation id.  The returned record may still be
    receiving events; its mutable fields are single-word reads of
    immutable structures, safe to snapshot from any thread. *)

val solves : unit -> solve list
(** All retained records, oldest first. *)

val dump_count : unit -> int
(** Debug dumps written since startup. *)
