(** Per-tenant in-flight admission — the router-side half of fair
    share.

    The cluster router forwards to shards that each run a full batch
    {!Sched} of their own, so the router does not schedule; it bounds
    how many forwards any one tenant may have outstanding, with the
    same weight vocabulary the scheduler's deficit round-robin uses.  A
    tenant at its limit is refused (the router answers 429 +
    retry-after) {e before} the forward would consume a shard
    connection and queue slot — the budget-feasibility framing: spend
    admission budget where it cannot be wasted. *)

type t

val create : ?weights:(string * int) list -> ?default_weight:int -> depth:int -> unit -> t
(** [depth] is the per-weight-unit bound (clamped to >= 1); a tenant of
    weight [w] may hold [depth * w] slots.  [weights] uses the same
    [(name, weight)] pairs as {!Sched}; absent tenants weigh
    [default_weight] (default 1). *)

val limit : t -> tenant:string -> int
(** [depth * weight tenant] — the tenant's concurrent-forward cap. *)

val inflight : t -> tenant:string -> int
(** Currently held slots. *)

val try_acquire : t -> tenant:string -> bool
(** Take a slot; [false] when the tenant is at its limit. *)

val release : t -> tenant:string -> unit
(** Return a slot (no-op when none is held — releases never go
    negative). *)

val with_slot : t -> tenant:string -> (unit -> 'a) -> 'a option
(** Acquire around [f], releasing on any exit; [None] when the tenant
    is at its limit. *)
