(** Multi-tenant batch solve scheduler: request coalescing + weighted
    fair-share admission between the daemon's accept loop and the
    engine.

    Two layers:

    - {!Core} is the deterministic scheduling state machine — per-tenant
      deadline-ordered queues, deficit round-robin across tenants,
      key-based coalescing of concurrent identical work — with explicit
      [~now] parameters and no threads, locks or clocks, so a fake-clock
      reference model can be driven against it op for op.
    - The threaded wrapper ({!submit}) owns a mutex/condvar around one
      [Core.t] and is {e work-conserving}: there is no dispatcher
      thread; any blocked submitter may claim and execute any
      dispatchable batch, so every pending batch always has at least one
      thread able to run it and the wrapper cannot deadlock (nested
      solver portfolios drain through the engine's caller
      participation).

    {2 Coalescing}

    Requests share a {e key} — for solves, (workload, epoch,
    options-fingerprint) — and carry a finer {e subkey} (key plus
    budget/target/timeout).  Concurrent requests with the same key join
    one pending {e batch}; within a batch, requests with the same subkey
    form one {e group} whose work runs {b once} and whose single result
    fans out to every waiter, byte-identical.  Distinct subkeys in a
    batch (same instance, different budgets) run as separate group jobs
    of the same batch — priced off the same epoch's component curves via
    the shared {!Curve_cache}.  A batch is joinable only while queued;
    arrivals after dispatch start a fresh batch, which preserves the
    pipeline's bit-identical-to-cold guarantee (a running solve is never
    mutated by late joiners).

    {2 Fair share}

    Each request names a tenant.  Tenants get weighted service via
    deficit round-robin: a tenant at the head of the rotation spends one
    deficit unit per dispatched batch and earns [quantum * weight] when
    its turn comes up empty-handed, so any tenant's deficit never
    exceeds [quantum * weight] (the fairness bound the model test
    asserts).  Per-tenant queue depth is bounded; overflow is rejected
    with a retry-after hint ({!retry_after_s} clamps sub-second
    estimates up to 1 s — a 0 s retry-after is a thundering herd).
    Queues are deadline-ordered so a near-expiry request is not parked
    behind batches it cannot survive, and waiters already past their
    deadline are pruned (not run) at dispatch time. *)

val fault_point : string
(** ["sched.enqueue"] — {!Bcc_robust.Fault.hit} runs at the top of every
    {!submit}; an armed throw fails only that submission. *)

val retry_after_s : float -> int
(** Seconds to advertise in a 429 [retry-after] for an estimated wait.
    Clamped to [\[1, 3600\]]: sub-second estimates previously truncated
    to 0, telling clients to hammer immediately. *)

(** Deterministic scheduling core (no threads, no clock). *)
module Core : sig
  type config = {
    quantum : int;  (** deficit earned per empty-handed turn, per weight unit *)
    default_weight : int;  (** weight for tenants absent from [weights] *)
    weights : (string * int) list;  (** tenant name -> weight *)
    tenant_depth : int;  (** max queued waiters per tenant *)
    concurrency : int;  (** max concurrently running batches *)
    coalesce : bool;  (** [false]: every request is its own batch *)
  }

  val default_config : config

  type t

  val create : config -> t

  type enqueue_result =
    | Queued of int
        (** waiter id; started a new batch or a new subkey group *)
    | Coalesced of int
        (** waiter id; joined an existing group — its solve is shared *)
    | Rejected of { retry_after_s : int }  (** tenant queue full *)

  val enqueue :
    t ->
    now:float ->
    tenant:string ->
    key:string ->
    subkey:string ->
    deadline:float ->
    est_batch_s:float ->
    enqueue_result
  (** [deadline] is an absolute time ([infinity] = none); [est_batch_s]
      feeds the retry-after estimate on rejection. *)

  val cancel : t -> int -> bool
  (** Remove a still-queued waiter; [false] once dispatched (or
      unknown). *)

  type dispatch = {
    d_bid : int;
    d_key : string;
    d_tenant : string;  (** the batch creator, charged for fair share *)
    d_groups : (string * int list) list;
        (** subkey -> live waiter ids, arrival order; run each group
            once, fan its result to all its waiters *)
  }

  val next : t -> now:float -> int list * dispatch option
  (** DRR pick.  Returns waiters found expired during the scan (pruned,
      never run — deliver them a timeout) and, when a concurrency slot
      is free and a batch with live waiters exists, that batch. *)

  val complete : t -> int -> unit
  (** Release the concurrency slot of a dispatched batch. *)

  type tenant_info = {
    ti_tenant : string;
    ti_weight : int;
    ti_deficit : int;
    ti_queued_batches : int;
    ti_queued_waiters : int;
    ti_dispatched : int;
  }

  type counters = {
    batches_total : int;  (** batches dispatched *)
    coalesced_total : int;  (** waiters that joined an existing group *)
    rejected_total : int;
    expired_total : int;  (** waiters pruned past their deadline *)
  }

  val tenants : t -> tenant_info list
  (** Sorted by tenant name. *)

  val counters : t -> counters
  val queued_batches : t -> int
  val running : t -> int
end

(** {2 Threaded wrapper} *)

type error =
  | Busy of { retry_after_s : int }  (** tenant queue full — 429 *)
  | Expired  (** deadline passed before the work ran — 503 *)
  | Faulted of exn  (** the batch job (or an armed fault) raised — 500 *)

type 'r t

val create :
  ?quantum:int ->
  ?default_weight:int ->
  ?weights:(string * int) list ->
  ?tenant_depth:int ->
  ?concurrency:int ->
  ?coalesce:bool ->
  unit ->
  'r t
(** Defaults: quantum 1, weights 1, tenant_depth 32, concurrency 1,
    coalesce on. *)

val submit :
  'r t ->
  tenant:string ->
  ?deadline_s:float ->
  ?corr:string ->
  key:string ->
  subkey:string ->
  (unit -> 'r) ->
  ('r, error) result
(** Enqueue and block until this request's group result is available —
    possibly executing other batches while waiting (work conserving).
    The callback of the {e first} waiter of each group runs once; every
    group waiter gets the same result.  [deadline_s] is absolute
    ({!Bcc_util.Timer.now_s} scale).  [corr] (the submitter's
    correlation id) is carried into the [sched_batch] wide event; the
    callback itself is responsible for re-installing any ambient scopes
    it needs, since it may run on another submitter's thread.
    Exceptions from the callback fail only its group's waiters. *)

type stats = {
  batches_total : int;
  coalesced_total : int;
  rejected_total : int;
  expired_total : int;
  queued_batches : int;
  queued_waiters : int;
  running : int;
  est_batch_s : float;  (** EWMA of observed batch wall times *)
  tenants : Core.tenant_info list;
}

val stats : 'r t -> stats
