module Timer = Bcc_util.Timer
module Fault = Bcc_robust.Fault
module Event = Bcc_obs.Event

let fault_point = "sched.enqueue"

let retry_after_s est_wait_s =
  if Float.is_nan est_wait_s then 1
  else if est_wait_s = infinity then 3600
  else min 3600 (max 1 (int_of_float (Float.ceil est_wait_s)))

module Core = struct
  type config = {
    quantum : int;
    default_weight : int;
    weights : (string * int) list;
    tenant_depth : int;
    concurrency : int;
    coalesce : bool;
  }

  let default_config =
    {
      quantum = 1;
      default_weight = 1;
      weights = [];
      tenant_depth = 32;
      concurrency = 1;
      coalesce = true;
    }

  type waiter = { wid : int; w_tenant : string; w_deadline : float }
  type group = { g_subkey : string; mutable g_waiters : waiter list (* arrival order *) }

  type batch = {
    bid : int;
    b_key : string;
    b_tenant : string;  (* creator: the batch sits in this tenant's queue *)
    mutable b_groups : group list;  (* arrival order *)
  }

  type tenant = {
    t_name : string;
    t_weight : int;
    mutable t_deficit : int;
    mutable t_queue : batch list;  (* earliest deadline first *)
    mutable t_queued_waiters : int;
    mutable t_dispatched : int;
  }

  type t = {
    cfg : config;
    tenants : (string, tenant) Hashtbl.t;
    mutable active : string list;  (* DRR rotation; head is next served *)
    pending : (string, batch) Hashtbl.t;  (* joinable (still-queued) batches *)
    wtab : (int, batch * string) Hashtbl.t;  (* queued waiter -> (batch, its tenant) *)
    mutable running_n : int;
    mutable next_wid : int;
    mutable next_bid : int;
    mutable n_batches : int;
    mutable n_coalesced : int;
    mutable n_rejected : int;
    mutable n_expired : int;
  }

  let create cfg =
    let cfg =
      {
        cfg with
        quantum = max 1 cfg.quantum;
        default_weight = max 1 cfg.default_weight;
        tenant_depth = max 1 cfg.tenant_depth;
        concurrency = max 1 cfg.concurrency;
      }
    in
    {
      cfg;
      tenants = Hashtbl.create 16;
      active = [];
      pending = Hashtbl.create 64;
      wtab = Hashtbl.create 64;
      running_n = 0;
      next_wid = 1;
      next_bid = 1;
      n_batches = 0;
      n_coalesced = 0;
      n_rejected = 0;
      n_expired = 0;
    }

  let tenant_weight cfg name =
    match List.assoc_opt name cfg.weights with
    | Some w when w > 0 -> w
    | _ -> cfg.default_weight

  let get_tenant t name =
    match Hashtbl.find_opt t.tenants name with
    | Some tn -> tn
    | None ->
        let tn =
          {
            t_name = name;
            t_weight = tenant_weight t.cfg name;
            t_deficit = 0;
            t_queue = [];
            t_queued_waiters = 0;
            t_dispatched = 0;
          }
        in
        Hashtbl.replace t.tenants name tn;
        tn

  let batch_earliest b =
    List.fold_left
      (fun acc g -> List.fold_left (fun acc w -> Float.min acc w.w_deadline) acc g.g_waiters)
      infinity b.b_groups

  (* Stable deadline-ordered insert: among equal deadlines (notably the
     common "no deadline" = infinity), arrival order is preserved. *)
  let queue_insert queue b =
    let eb = batch_earliest b in
    let rec go = function
      | [] -> [ b ]
      | x :: rest -> if batch_earliest x <= eb then x :: go rest else b :: x :: rest
    in
    go queue

  let requeue owner b =
    owner.t_queue <- queue_insert (List.filter (fun x -> x.bid <> b.bid) owner.t_queue) b

  let activate t tn = if not (List.mem tn.t_name t.active) then t.active <- t.active @ [ tn.t_name ]

  let queued_batches t =
    Hashtbl.fold (fun _ tn acc -> acc + List.length tn.t_queue) t.tenants 0

  let running t = t.running_n

  type enqueue_result =
    | Queued of int
    | Coalesced of int
    | Rejected of { retry_after_s : int }

  let est_wait t ~est_batch_s =
    float_of_int (queued_batches t + t.running_n)
    *. Float.max 0.001 est_batch_s
    /. float_of_int t.cfg.concurrency

  let enqueue t ~now:_ ~tenant ~key ~subkey ~deadline ~est_batch_s =
    let tn = get_tenant t tenant in
    if tn.t_queued_waiters >= t.cfg.tenant_depth then begin
      t.n_rejected <- t.n_rejected + 1;
      Rejected { retry_after_s = retry_after_s (est_wait t ~est_batch_s) }
    end
    else begin
      let wid = t.next_wid in
      t.next_wid <- wid + 1;
      let w = { wid; w_tenant = tenant; w_deadline = deadline } in
      match (if t.cfg.coalesce then Hashtbl.find_opt t.pending key else None) with
      | Some b ->
          let joined_group =
            match List.find_opt (fun g -> g.g_subkey = subkey) b.b_groups with
            | Some g ->
                g.g_waiters <- g.g_waiters @ [ w ];
                true
            | None ->
                b.b_groups <- b.b_groups @ [ { g_subkey = subkey; g_waiters = [ w ] } ];
                false
          in
          if joined_group then t.n_coalesced <- t.n_coalesced + 1;
          tn.t_queued_waiters <- tn.t_queued_waiters + 1;
          Hashtbl.replace t.wtab wid (b, tenant);
          (* the joiner may carry a tighter deadline *)
          requeue (get_tenant t b.b_tenant) b;
          if joined_group then Coalesced wid else Queued wid
      | None ->
          let b =
            { bid = t.next_bid; b_key = key; b_tenant = tenant;
              b_groups = [ { g_subkey = subkey; g_waiters = [ w ] } ] }
          in
          t.next_bid <- t.next_bid + 1;
          tn.t_queue <- queue_insert tn.t_queue b;
          tn.t_queued_waiters <- tn.t_queued_waiters + 1;
          Hashtbl.replace t.pending key b;
          Hashtbl.replace t.wtab wid (b, tenant);
          activate t tn;
          Queued wid
    end

  let cancel t wid =
    match Hashtbl.find_opt t.wtab wid with
    | None -> false
    | Some (b, wtenant) ->
        Hashtbl.remove t.wtab wid;
        b.b_groups <-
          List.filter_map
            (fun g ->
              match List.filter (fun w -> w.wid <> wid) g.g_waiters with
              | [] -> None
              | ws ->
                  g.g_waiters <- ws;
                  Some g)
            b.b_groups;
        (get_tenant t wtenant).t_queued_waiters <-
          (get_tenant t wtenant).t_queued_waiters - 1;
        let owner = get_tenant t b.b_tenant in
        if b.b_groups = [] then begin
          owner.t_queue <- List.filter (fun x -> x.bid <> b.bid) owner.t_queue;
          Hashtbl.remove t.pending b.b_key
        end
        else requeue owner b;
        true

  type dispatch = {
    d_bid : int;
    d_key : string;
    d_tenant : string;
    d_groups : (string * int list) list;
  }

  (* Pop the head batch of [tn], prune expired waiters into
     [expired_acc], and return the dispatch if anyone survived. *)
  let take_batch t tn ~now expired_acc =
    match tn.t_queue with
    | [] -> None
    | b :: rest ->
        tn.t_queue <- rest;
        Hashtbl.remove t.pending b.b_key;
        let groups =
          List.filter_map
            (fun g ->
              let alive =
                List.filter
                  (fun w ->
                    Hashtbl.remove t.wtab w.wid;
                    (get_tenant t w.w_tenant).t_queued_waiters <-
                      (get_tenant t w.w_tenant).t_queued_waiters - 1;
                    if w.w_deadline <= now then begin
                      expired_acc := w.wid :: !expired_acc;
                      t.n_expired <- t.n_expired + 1;
                      false
                    end
                    else true)
                  g.g_waiters
              in
              match alive with
              | [] -> None
              | ws -> Some (g.g_subkey, List.map (fun w -> w.wid) ws))
            b.b_groups
        in
        if groups = [] then None
        else
          Some { d_bid = b.bid; d_key = b.b_key; d_tenant = b.b_tenant; d_groups = groups }

  let next t ~now =
    let expired_acc = ref [] in
    let dispatch =
      if t.running_n >= t.cfg.concurrency then None
      else begin
        (* Each iteration pops a batch, drops an idle tenant, or earns
           deficit (at most once per tenant before its next pop), so the
           loop terminates; the fuel bound is a belt-and-braces guard. *)
        let rec loop fuel =
          if fuel <= 0 then None
          else
            match t.active with
            | [] -> None
            | name :: rest -> (
                let tn = get_tenant t name in
                match tn.t_queue with
                | [] ->
                    tn.t_deficit <- 0;
                    t.active <- rest;
                    loop (fuel - 1)
                | _ when tn.t_deficit >= 1 -> (
                    tn.t_deficit <- tn.t_deficit - 1;
                    match take_batch t tn ~now expired_acc with
                    | Some d ->
                        t.n_batches <- t.n_batches + 1;
                        tn.t_dispatched <- tn.t_dispatched + 1;
                        t.running_n <- t.running_n + 1;
                        Some d
                    | None ->
                        (* every waiter had expired: the tenant did not
                           get service, so the deficit goes back *)
                        tn.t_deficit <- tn.t_deficit + 1;
                        loop (fuel - 1))
                | _ ->
                    tn.t_deficit <- tn.t_deficit + (t.cfg.quantum * tn.t_weight);
                    t.active <- rest @ [ name ];
                    loop (fuel - 1))
        in
        loop ((4 * (Hashtbl.length t.tenants + queued_batches t)) + 8)
      end
    in
    (List.rev !expired_acc, dispatch)

  let complete t _bid = t.running_n <- max 0 (t.running_n - 1)

  type tenant_info = {
    ti_tenant : string;
    ti_weight : int;
    ti_deficit : int;
    ti_queued_batches : int;
    ti_queued_waiters : int;
    ti_dispatched : int;
  }

  type counters = {
    batches_total : int;
    coalesced_total : int;
    rejected_total : int;
    expired_total : int;
  }

  let tenants t =
    Hashtbl.fold
      (fun _ tn acc ->
        {
          ti_tenant = tn.t_name;
          ti_weight = tn.t_weight;
          ti_deficit = tn.t_deficit;
          ti_queued_batches = List.length tn.t_queue;
          ti_queued_waiters = tn.t_queued_waiters;
          ti_dispatched = tn.t_dispatched;
        }
        :: acc)
      t.tenants []
    |> List.sort (fun a b -> compare a.ti_tenant b.ti_tenant)

  let counters t =
    {
      batches_total = t.n_batches;
      coalesced_total = t.n_coalesced;
      rejected_total = t.n_rejected;
      expired_total = t.n_expired;
    }
end

type error = Busy of { retry_after_s : int } | Expired | Faulted of exn

type 'r outcome = Done of 'r | Failed of exn | Timed_out

type 'r cell = { c_run : unit -> 'r; c_corr : string; mutable c_out : 'r outcome option }

type 'r t = {
  core : Core.t;
  cells : (int, 'r cell) Hashtbl.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable est_batch_s : float;
}

let create ?(quantum = 1) ?(default_weight = 1) ?(weights = []) ?(tenant_depth = 32)
    ?(concurrency = 1) ?(coalesce = true) () =
  {
    core =
      Core.create
        { quantum; default_weight; weights; tenant_depth; concurrency; coalesce };
    cells = Hashtbl.create 64;
    m = Mutex.create ();
    cv = Condition.create ();
    est_batch_s = 0.05;
  }

let deliver_expired t wids =
  List.iter
    (fun wid ->
      match Hashtbl.find_opt t.cells wid with
      | Some c -> c.c_out <- Some Timed_out
      | None -> ())
    wids

(* Run a dispatched batch.  Called (and returns) with the lock held; the
   group callbacks run unlocked.  Each group's first waiter's callback
   runs once and its result — or its exception — fans out to the whole
   group. *)
let execute t (d : Core.dispatch) =
  let jobs =
    List.filter_map
      (fun (subkey, wids) ->
        match List.filter_map (Hashtbl.find_opt t.cells) wids with
        | [] -> None
        | cs -> Some (subkey, cs))
      d.Core.d_groups
  in
  Mutex.unlock t.m;
  let timer = Timer.start () in
  let outs =
    List.map
      (fun (_, cs) ->
        let rep = List.hd cs in
        let out = try Done (rep.c_run ()) with e -> Failed e in
        (cs, out))
      jobs
  in
  let wall = Timer.elapsed_s timer in
  if Event.enabled () then begin
    let waiters = List.fold_left (fun a (_, cs) -> a + List.length cs) 0 jobs in
    let corrs =
      List.concat_map
        (fun (_, cs) -> List.filter_map (fun c -> if c.c_corr = "" then None else Some c.c_corr) cs)
        jobs
    in
    Event.emit "sched_batch"
      ~attrs:
        [
          ("key", Event.Str d.Core.d_key);
          ("tenant", Event.Str d.Core.d_tenant);
          ("groups", Event.Int (List.length jobs));
          ("waiters", Event.Int waiters);
          ("coalesced", Event.Int (waiters - List.length jobs));
          ("wall_s", Event.Float wall);
          ("corrs", Event.Str (String.concat "," corrs));
        ]
  end;
  Mutex.lock t.m;
  Core.complete t.core d.Core.d_bid;
  t.est_batch_s <- (0.7 *. t.est_batch_s) +. (0.3 *. wall);
  List.iter (fun (cs, out) -> List.iter (fun c -> c.c_out <- Some out) cs) outs;
  Condition.broadcast t.cv

let submit t ~tenant ?deadline_s ?(corr = "") ~key ~subkey run =
  match Fault.hit fault_point with
  | exception e -> Error (Faulted e)
  | () -> (
      let now = Timer.now_s () in
      let deadline = match deadline_s with Some d -> d | None -> infinity in
      if deadline <= now then Error Expired
      else begin
        Mutex.lock t.m;
        match
          Core.enqueue t.core ~now ~tenant ~key ~subkey ~deadline
            ~est_batch_s:t.est_batch_s
        with
        | Core.Rejected { retry_after_s } ->
            Mutex.unlock t.m;
            Error (Busy { retry_after_s })
        | Core.Queued wid | Core.Coalesced wid ->
            let cell = { c_run = run; c_corr = corr; c_out = None } in
            Hashtbl.replace t.cells wid cell;
            (* Work-conserving wait: until our result lands, try to
               claim and execute whatever batch the core will release
               (often, but not necessarily, our own). *)
            let rec wait_loop () =
              match cell.c_out with
              | Some out -> out
              | None -> (
                  let expired, d = Core.next t.core ~now:(Timer.now_s ()) in
                  deliver_expired t expired;
                  if expired <> [] then Condition.broadcast t.cv;
                  match d with
                  | Some d ->
                      execute t d;
                      wait_loop ()
                  | None -> (
                      match cell.c_out with
                      | Some out -> out
                      | None ->
                          Condition.wait t.cv t.m;
                          wait_loop ()))
            in
            let out = wait_loop () in
            Hashtbl.remove t.cells wid;
            Mutex.unlock t.m;
            (match out with
            | Done r -> Ok r
            | Failed e -> Error (Faulted e)
            | Timed_out -> Error Expired)
      end)

type stats = {
  batches_total : int;
  coalesced_total : int;
  rejected_total : int;
  expired_total : int;
  queued_batches : int;
  queued_waiters : int;
  running : int;
  est_batch_s : float;
  tenants : Core.tenant_info list;
}

let stats t =
  Mutex.lock t.m;
  let c = Core.counters t.core in
  let tenants = Core.tenants t.core in
  let s =
    {
      batches_total = c.Core.batches_total;
      coalesced_total = c.Core.coalesced_total;
      rejected_total = c.Core.rejected_total;
      expired_total = c.Core.expired_total;
      queued_batches = Core.queued_batches t.core;
      queued_waiters =
        List.fold_left (fun a ti -> a + ti.Core.ti_queued_waiters) 0 tenants;
      running = Core.running t.core;
      est_batch_s = t.est_batch_s;
      tenants;
    }
  in
  Mutex.unlock t.m;
  s
