(* Per-tenant in-flight admission for the cluster router: a counting
   semaphore per tenant, weighted like the batch scheduler's fair
   share.  The router sits in front of N shards that each run a full
   Sched behind their own accept loop, so the router's job is not
   scheduling — it is refusing a tenant that already has its share of
   forwards outstanding before those forwards consume shard queue
   slots. *)

type t = {
  lock : Mutex.t;
  depth : int;
  default_weight : int;
  weights : (string * int) list;
  inflight : (string, int) Hashtbl.t;
}

let create ?(weights = []) ?(default_weight = 1) ~depth () =
  {
    lock = Mutex.create ();
    depth = max 1 depth;
    default_weight = max 1 default_weight;
    weights;
    inflight = Hashtbl.create 8;
  }

let weight t tenant =
  match List.assoc_opt tenant t.weights with
  | Some w when w > 0 -> w
  | _ -> t.default_weight

let limit t ~tenant = t.depth * weight t tenant

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let inflight t ~tenant =
  locked t (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.inflight tenant))

let try_acquire t ~tenant =
  locked t (fun () ->
      let n = Option.value ~default:0 (Hashtbl.find_opt t.inflight tenant) in
      if n >= limit t ~tenant then false
      else begin
        Hashtbl.replace t.inflight tenant (n + 1);
        true
      end)

let release t ~tenant =
  locked t (fun () ->
      match Hashtbl.find_opt t.inflight tenant with
      | Some n when n > 1 -> Hashtbl.replace t.inflight tenant (n - 1)
      | Some _ -> Hashtbl.remove t.inflight tenant
      | None -> ())

let with_slot t ~tenant f =
  if not (try_acquire t ~tenant) then None
  else
    Some
      (Fun.protect ~finally:(fun () -> release t ~tenant) f)
