(* Hashtbl + intrusive doubly-linked LRU list (the Bcc_server.Cache
   idiom), accounted in bytes rather than entry count, with per-entry
   multi-owner footprint claims so delta-driven eviction composes with
   cross-workload sharing. *)

type decoded = ..

type entry = {
  fp : string;
  mutable payload : string;
  mutable decoded : decoded option;  (* parsed form, dies with the entry *)
  mutable cost : int;  (* accounted bytes for this entry *)
  owners : (string, string list) Hashtbl.t;  (* owner -> footprint *)
  mutable prev : entry option;  (* towards head (MRU) *)
  mutable next : entry option;  (* towards tail (LRU victim) *)
}

type stats = {
  entries : int;
  bytes : int;
  max_bytes : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

type t = {
  max_bytes : int;
  tbl : (string, entry) Hashtbl.t;
  by_owner : (string, (string, unit) Hashtbl.t) Hashtbl.t;  (* owner -> fp set *)
  mutable head : entry option;
  mutable tail : entry option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let default_max_bytes = 64 * 1024 * 1024

let create ?(max_bytes = default_max_bytes) () =
  if max_bytes < 1 then invalid_arg "Curve_cache.create: max_bytes must be positive";
  {
    max_bytes;
    tbl = Hashtbl.create 256;
    by_owner = Hashtbl.create 16;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Per-entry overhead charged on top of the strings: list nodes, hash
   slots, owner table.  An estimate — the bound is a budget, not an
   audit. *)
let entry_cost fp payload = String.length fp + String.length payload + 96

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let owner_set t owner =
  match Hashtbl.find_opt t.by_owner owner with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.by_owner owner s;
      s

let forget_claim t owner fp =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> ()
  | Some s ->
      Hashtbl.remove s fp;
      if Hashtbl.length s = 0 then Hashtbl.remove t.by_owner owner

(* Remove an entry entirely: list, table, byte account, every owner's
   index.  Caller decides whether it counts as an eviction. *)
let remove_entry t e =
  unlink t e;
  Hashtbl.remove t.tbl e.fp;
  t.bytes <- t.bytes - e.cost;
  Hashtbl.iter (fun owner _ -> forget_claim t owner e.fp) e.owners

let evict_to_bound t =
  while t.bytes > t.max_bytes && t.tail <> None do
    match t.tail with
    | Some victim ->
        remove_entry t victim;
        t.evictions <- t.evictions + 1
    | None -> ()
  done

let find t fp =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl fp with
      | Some e ->
          t.hits <- t.hits + 1;
          unlink t e;
          push_front t e;
          Some e.payload
      | None ->
          t.misses <- t.misses + 1;
          None)

let store t ~owner ?(footprint = []) fp payload =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl fp with
      | Some e ->
          let cost = entry_cost fp payload in
          t.bytes <- t.bytes - e.cost + cost;
          if e.payload <> payload then e.decoded <- None;
          e.payload <- payload;
          e.cost <- cost;
          Hashtbl.replace e.owners owner footprint;
          unlink t e;
          push_front t e
      | None ->
          let e =
            {
              fp;
              payload;
              decoded = None;
              cost = entry_cost fp payload;
              owners = Hashtbl.create 2;
              prev = None;
              next = None;
            }
          in
          Hashtbl.replace e.owners owner footprint;
          Hashtbl.replace t.tbl fp e;
          t.bytes <- t.bytes + e.cost;
          t.insertions <- t.insertions + 1;
          push_front t e);
      Hashtbl.replace (owner_set t owner) fp ();
      evict_to_bound t)

(* The decoded memo rides the payload entry: same fingerprint key (so
   exactly as self-validating), same LRU position, dies on eviction or
   payload replacement.  Only the payload bytes are accounted — the
   decoded form roughly doubles an entry's resident size, which the
   byte budget absorbs as estimate slack (the bound is a budget, not an
   audit). *)
let find_decoded t fp =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl fp with
      | Some ({ decoded = Some _; _ } as e) ->
          t.hits <- t.hits + 1;
          unlink t e;
          push_front t e;
          e.decoded
      | _ -> None)

let store_decoded t fp d =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl fp with
      | Some e -> e.decoded <- Some d
      | None -> ())

let set_footprint t ~owner fp footprint =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl fp with
      | None -> ()
      | Some e ->
          Hashtbl.replace e.owners owner footprint;
          Hashtbl.replace (owner_set t owner) fp ())

let release_claim t ~count_eviction owner fp =
  match Hashtbl.find_opt t.tbl fp with
  | None -> ()
  | Some e ->
      Hashtbl.remove e.owners owner;
      forget_claim t owner fp;
      if Hashtbl.length e.owners = 0 then begin
        remove_entry t e;
        if count_eviction then t.evictions <- t.evictions + 1
      end

let owner_fps t owner =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> []
  | Some s -> Hashtbl.fold (fun fp () acc -> fp :: acc) s []

let evict_owner t ~owner ~touched =
  locked t (fun () ->
      List.iter
        (fun fp ->
          match Hashtbl.find_opt t.tbl fp with
          | None -> forget_claim t owner fp
          | Some e -> (
              match Hashtbl.find_opt e.owners owner with
              | Some footprint when List.exists touched footprint ->
                  release_claim t ~count_eviction:true owner fp
              | _ -> ()))
        (owner_fps t owner))

let drop_owner t ~owner =
  locked t (fun () ->
      List.iter (release_claim t ~count_eviction:true owner) (owner_fps t owner);
      Hashtbl.remove t.by_owner owner)

let owned t ~owner =
  locked t (fun () ->
      owner_fps t owner
      |> List.filter_map (fun fp ->
             match Hashtbl.find_opt t.tbl fp with
             | None -> None
             | Some e ->
                 Option.map
                   (fun footprint -> (fp, (footprint, e.payload)))
                   (Hashtbl.find_opt e.owners owner))
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let stats t =
  locked t (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        bytes = t.bytes;
        max_bytes = t.max_bytes;
        hits = t.hits;
        misses = t.misses;
        insertions = t.insertions;
        evictions = t.evictions;
      })
