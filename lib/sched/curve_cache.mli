(** Process-wide, byte-bounded LRU cache for pipeline curve artifacts,
    shared across workloads.

    Entries are keyed by component {e content fingerprint}
    ({!Bcc_core.Pipeline} md5 digests over name-keyed canonical
    serialization including budget, effective grid, options and format
    version), so two workloads that contain the same component — same
    query/classifier content under the same budget — share one cached
    curve.  Lookup is therefore global: {!find} returns a payload no
    matter which owner stored it.

    Eviction has two triggers:

    - {b bytes}: the cache holds at most [max_bytes] of payload;
      inserting past the bound evicts from the LRU tail.
    - {b deltas}: each {e owner} (a workload generation,
      ["name@generation"]) attaches a {e footprint} — the property names
      a curve depends on — to the entries it relies on.
      {!evict_owner} drops the owner's claims whose footprint intersects
      a delta's touched set; an entry with no claims left is removed.
      This preserves the store's invariant that a surviving artifact is
      still valid for its owner (stale curves would be caught by the
      pipeline's checksum + re-price, but eviction keeps the cache
      honest and bounded).

    All operations are thread-safe (one internal mutex); payload solves
    must run outside the cache, this only stores results. *)

type t

type decoded = ..
(** Opaque decoded-payload values (the store layer bridges this to
    {!Bcc_core.Solve_ctx.decoded}; this library does not depend on
    [bcc_core]).  A decoded value rides its payload's entry — same
    fingerprint key, same LRU position — and dies when the entry is
    evicted or its payload replaced. *)

type stats = {
  entries : int;
  bytes : int;  (** accounted payload + key bytes currently held *)
  max_bytes : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;  (** LRU + footprint + drop_owner removals *)
}

val create : ?max_bytes:int -> unit -> t
(** Default [max_bytes] is 64 MiB.  A bound below one entry's cost still
    admits the entry transiently but evicts it on the next insertion. *)

val find : t -> string -> string option
(** [find t fp] — global fingerprint lookup, counts a hit or miss and
    refreshes LRU position.  Does {e not} create an owner claim: a
    cross-workload hit is claimed by the borrowing owner afterwards via
    {!set_footprint}. *)

val store : t -> owner:string -> ?footprint:string list -> string -> string -> unit
(** [store t ~owner ~footprint fp payload] inserts (or refreshes) the
    entry and records [owner]'s claim with [footprint] (default [[]],
    meaning "not yet stamped" — an empty footprint never intersects a
    delta, so such claims survive until {!set_footprint} or
    {!drop_owner}).  May evict LRU-tail entries to respect the byte
    bound. *)

val find_decoded : t -> string -> decoded option
(** Memoized parsed form of the payload under the same fingerprint key;
    counts a hit and refreshes LRU position when present.  Purely an
    acceleration of {!find} + parse — a [None] just means the caller
    parses the payload. *)

val store_decoded : t -> string -> decoded -> unit
(** Attach the parsed form to an existing entry; no-op when the
    fingerprint is not cached (the payload is the source of truth).
    Only payload bytes are accounted against [max_bytes]; the decoded
    form is estimate slack on top. *)

val set_footprint : t -> owner:string -> string -> string list -> unit
(** [set_footprint t ~owner fp footprint] adds or updates [owner]'s
    claim on an existing entry; no-op when [fp] is not cached.  This is
    how a cross-workload {!find} hit becomes owned by the borrower. *)

val evict_owner : t -> owner:string -> touched:(string -> bool) -> unit
(** Drop [owner]'s claims whose footprint contains a property for which
    [touched] is [true]; entries left with zero claims are removed. *)

val drop_owner : t -> owner:string -> unit
(** Remove every claim of [owner]; entries left unclaimed are removed.
    Used when a workload is replaced (re-put) or its budget changes. *)

val owned : t -> owner:string -> (string * (string list * string)) list
(** [(fp, (footprint, payload))] for every entry [owner] claims, sorted
    by fingerprint — the store persists exactly this set per workload. *)

val stats : t -> stats
