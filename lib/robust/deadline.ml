module Timer = Bcc_util.Timer

type t = { kill_at : float; cancelled : bool Atomic.t; name : string }

exception Expired of string

let none = { kill_at = infinity; cancelled = Atomic.make false; name = "none" }
let is_none t = t == none

let after ?(label = "deadline") s =
  { kill_at = Timer.now_s () +. s; cancelled = Atomic.make false; name = label }

let of_timeout_ms ?label ms = after ?label (ms /. 1000.0)
let cancel t = if not (is_none t) then Atomic.set t.cancelled true
let expired t = (not (is_none t)) && (Atomic.get t.cancelled || Timer.now_s () >= t.kill_at)

let remaining_s t =
  if is_none t then infinity
  else if Atomic.get t.cancelled then 0.0
  else Float.max 0.0 (t.kill_at -. Timer.now_s ())

let label t = t.name
let check t = if expired t then raise (Expired t.name)

(* ------------------------------------------------------------------ *)
(* Ambient binding: one slot per domain, plus a process-wide count of   *)
(* installed real deadlines so [poll] costs a single atomic load when   *)
(* nothing anywhere has a deadline (the common case).                   *)
(* ------------------------------------------------------------------ *)

let slot : t ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref none)
let installed = Atomic.make 0

let current () = !(Domain.DLS.get slot)

let with_current d f =
  let r = Domain.DLS.get slot in
  let prev = !r in
  (* The tighter clock wins; an inner scope can shorten, never extend.
     (A cancel on the shadowed outer deadline is observed again when
     this scope exits — cooperative polling tolerates the delay.) *)
  let eff =
    if is_none d then prev
    else if is_none prev then d
    else if d.kill_at <= prev.kill_at then d
    else prev
  in
  if eff == prev then f ()
  else begin
    r := eff;
    Atomic.incr installed;
    Fun.protect
      ~finally:(fun () ->
        r := prev;
        Atomic.decr installed)
      f
  end

let active () = Atomic.get installed > 0
let poll () = if active () then check (current ())
