(** Deadline / cancellation contexts for anytime solving.

    A deadline is a point on the {!Bcc_util.Timer} monotonic clock plus
    a cancellation flag.  Solvers poll it {e cooperatively} at natural
    iteration boundaries (solver rounds, QK bipartition restarts, HkS
    local-search iterations) via {!check} or {!poll}; on expiry they
    unwind with {!Expired} to the nearest recovery point, which returns
    the best {e feasible incumbent} found so far instead of raising to
    the caller (see [Bcc_core.Solver.solve_within]).

    {2 Ambient propagation}

    The current deadline is an ambient, per-domain binding
    ({!with_current} / {!current}); the execution engine captures it
    when a task is created and re-installs it around the task body on
    whichever worker domain runs it, so a request deadline set in a
    connection handler reaches every nested portfolio arm without any
    signature changes along the way.

    With no deadline installed (the default, {!none}) every operation
    here is a cheap no-op — {!poll} is one atomic load — and solver
    behavior is bit-identical to a build without this module. *)

type t

exception Expired of string
(** Raised by {!check}/{!poll} once the deadline has passed or was
    cancelled; the payload is the deadline's label. *)

val none : t
(** The infinite deadline: never expires, cannot be cancelled. *)

val after : ?label:string -> float -> t
(** [after s] expires [s] seconds from now on the monotonic clock.
    [s <= 0] is already expired. *)

val of_timeout_ms : ?label:string -> float -> t
(** [of_timeout_ms ms] is [after (ms /. 1000.)]. *)

val is_none : t -> bool

val cancel : t -> unit
(** Flip the cancellation flag; {!expired} is then [true] regardless of
    the clock.  No-op on {!none}. *)

val expired : t -> bool
(** Cancelled, or the monotonic clock has passed the deadline. *)

val remaining_s : t -> float
(** Seconds until expiry ([infinity] for {!none}, [0.] once expired). *)

val label : t -> string

val check : t -> unit
(** @raise Expired when [expired t]. *)

(** {2 The ambient (per-domain) deadline} *)

val current : unit -> t
(** The innermost deadline installed on this domain ({!none} when
    outside any {!with_current}). *)

val with_current : t -> (unit -> 'a) -> 'a
(** [with_current d f] runs [f] with [d] as the ambient deadline,
    restoring the previous binding afterwards (also on raise).  The
    tighter of [d] and the previous binding wins: an inner scope can
    shorten the deadline but never extend it. *)

val poll : unit -> unit
(** {!check} on the ambient deadline — the one-liner solvers drop at
    iteration boundaries.  Costs one atomic load when no deadline is
    installed anywhere in the process. *)

val active : unit -> bool
(** [true] when any domain currently has a real (non-{!none}) ambient
    deadline installed — the fast-path guard behind {!poll}. *)
