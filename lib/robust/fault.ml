module Rng = Bcc_util.Rng

exception Injected of string

type action = Throw | Delay of float | Corrupt

type arm_state = {
  action : action;
  mutable remaining : int; (* fires left; -1 = unlimited *)
  prob : float;
  rng : Rng.t;
  mutable fired : int;
}

let known_points =
  [
    "engine.task";
    "server.read";
    "cache.get";
    "qk.restart";
    "hks.iter";
    "io.load";
    "store.append";
    "pipeline.artifact";
    "sched.enqueue";
    "cluster.forward";
  ]

(* [any] is the fast path read by every [hit]; the table and the fired
   counters live behind [lock]. *)
let any = Atomic.make false
let lock = Mutex.create ()
let arms : (string, arm_state) Hashtbl.t = Hashtbl.create 8
let fire_log : (string, int) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ?(count = -1) ?(prob = 1.0) ?seed point action =
  if not (List.mem point known_points) then
    invalid_arg ("Fault.arm: unknown injection point " ^ point);
  let seed = match seed with Some s -> s | None -> Hashtbl.hash point in
  locked (fun () ->
      Hashtbl.replace arms point
        { action; remaining = count; prob; rng = Rng.create seed; fired = 0 };
      Atomic.set any true)

let disarm point =
  locked (fun () ->
      Hashtbl.remove arms point;
      if Hashtbl.length arms = 0 then Atomic.set any false)

let reset () =
  locked (fun () ->
      Hashtbl.reset arms;
      Hashtbl.reset fire_log;
      Atomic.set any false)

let enabled () = Atomic.get any

let fired point =
  locked (fun () -> Option.value ~default:0 (Hashtbl.find_opt fire_log point))

(* Decide (under the lock) whether the point fires now, consuming one
   count and one RNG draw; returns the action when it does. *)
let claim point =
  locked (fun () ->
      match Hashtbl.find_opt arms point with
      | None -> None
      | Some a ->
          if a.remaining = 0 then None
          else if a.prob < 1.0 && Rng.float a.rng 1.0 >= a.prob then None
          else begin
            if a.remaining > 0 then a.remaining <- a.remaining - 1;
            a.fired <- a.fired + 1;
            Hashtbl.replace fire_log point
              (1 + Option.value ~default:0 (Hashtbl.find_opt fire_log point));
            Some a.action
          end)

let hit point =
  if Atomic.get any then
    match claim point with
    | None | Some Corrupt -> ()
    | Some Throw -> raise (Injected point)
    | Some (Delay s) -> Unix.sleepf s

let corrupting point =
  Atomic.get any
  &&
  match claim point with
  | Some Corrupt -> true
  | Some Throw -> raise (Injected point)
  | Some (Delay s) ->
      Unix.sleepf s;
      false
  | None -> false

(* --- BCC_FAULTS --- *)

let parse_entry entry =
  match String.split_on_char ':' (String.trim entry) with
  | point :: kind :: rest ->
      let count = ref (-1) and prob = ref 1.0 and seed = ref None in
      let delay_s = ref None in
      List.iter
        (fun tok ->
          let tok = String.trim tok in
          let prefixed p =
            if
              String.length tok > String.length p
              && String.sub tok 0 (String.length p) = p
            then Some (String.sub tok (String.length p) (String.length tok - String.length p))
            else None
          in
          match (prefixed "p=", prefixed "seed=") with
          | Some p, _ -> (
              match float_of_string_opt p with
              | Some f when f >= 0.0 && f <= 1.0 -> prob := f
              | _ -> failwith ("BCC_FAULTS: bad probability in " ^ entry))
          | _, Some s -> (
              match int_of_string_opt s with
              | Some n -> seed := Some n
              | None -> failwith ("BCC_FAULTS: bad seed in " ^ entry))
          | None, None -> (
              (* bare number: delay seconds for delay arms (first), else
                 a fire count *)
              if kind = "delay" && !delay_s = None then
                match float_of_string_opt tok with
                | Some s when s >= 0.0 -> delay_s := Some s
                | _ -> failwith ("BCC_FAULTS: bad delay in " ^ entry)
              else
                match int_of_string_opt tok with
                | Some n when n >= 0 -> count := n
                | _ -> failwith ("BCC_FAULTS: bad parameter " ^ tok ^ " in " ^ entry)))
        rest;
      let action =
        match kind with
        | "throw" -> Throw
        | "corrupt" -> Corrupt
        | "delay" -> (
            match !delay_s with
            | Some s -> Delay s
            | None -> failwith ("BCC_FAULTS: delay needs seconds in " ^ entry))
        | k -> failwith ("BCC_FAULTS: unknown action " ^ k ^ " in " ^ entry)
      in
      if not (List.mem point known_points) then
        failwith
          ("BCC_FAULTS: unknown injection point " ^ point ^ " (known: "
          ^ String.concat ", " known_points ^ ")");
      arm ~count:!count ~prob:!prob ?seed:!seed point action
  | _ -> failwith ("BCC_FAULTS: malformed entry " ^ entry)

let load_env ?(var = "BCC_FAULTS") () =
  match Sys.getenv_opt var with
  | None -> ()
  | Some s when String.trim s = "" -> ()
  | Some s ->
      List.iter
        (fun entry -> if String.trim entry <> "" then parse_entry entry)
        (String.split_on_char ',' s)

let summary () =
  locked (fun () ->
      Hashtbl.fold
        (fun point a acc ->
          let action =
            match a.action with
            | Throw -> "throw"
            | Corrupt -> "corrupt"
            | Delay s -> Printf.sprintf "delay %gs" s
          in
          let count = if a.remaining < 0 then "" else Printf.sprintf " x%d" a.remaining in
          let prob = if a.prob >= 1.0 then "" else Printf.sprintf " p=%g" a.prob in
          Printf.sprintf "%s:%s%s%s" point action count prob :: acc)
        arms []
      |> List.sort compare |> String.concat ", ")
