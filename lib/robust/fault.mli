(** Fault-injection registry: named injection points armed from tests or
    the [BCC_FAULTS] environment variable.

    Production code drops {!hit} at the points worth breaking —
    ["engine.task"] (a portfolio task body, i.e. a dying worker),
    ["server.read"] (the daemon's request read), ["cache.get"] (a cache
    lookup), ["qk.restart"] (each QK bipartition restart),
    ["store.append"] (a workload-store journal commit, before any bytes
    reach the file), ["pipeline.artifact"] (an incremental-pipeline
    artifact-cache lookup — a throw or corruption there must degrade to
    recomputing the component, never to a wrong answer), and
    ["sched.enqueue"] (admission into the batch scheduler — a throw
    there must fail only that submission, never wedge the queue), and
    ["cluster.forward"] (each forwarding attempt the cluster router
    makes — a throw stands in for a dead or unreachable shard, so the
    failover path is exercised without killing a process) — and
    the test harness arms them to {e throw}, {e delay}, or {e corrupt}.  Firing
    can be probabilistic, driven by a seeded {!Bcc_util.Rng} stream so a
    failing fuzz run reproduces from its seed.

    When nothing is armed (the production default) {!hit} is one atomic
    load; arming is process-global and lock-protected.

    {2 [BCC_FAULTS] syntax}

    Comma-separated arms, each [point:kind] with optional [:]-separated
    parameters:

    {[BCC_FAULTS="engine.task:throw:1,cache.get:throw,qk.restart:delay:0.05"]}

    - [point:throw] — raise {!Injected} at the point, every time
    - [point:throw:N] — only the first [N] hits throw
    - [point:delay:S] — sleep [S] seconds at the point ([:N] optional)
    - [point:corrupt] — mark the point corrupting ([{!corrupting}]
      returns [true]; the call site decides what corruption means)
    - any arm may append [p=P] (fire with probability [P]) and [seed=S]
      (the RNG stream behind [p]) *)

exception Injected of string
(** Raised by {!hit} at a point armed to throw; the payload is the
    point name. *)

type action =
  | Throw
  | Delay of float  (** seconds *)
  | Corrupt

val known_points : string list
(** Every injection point compiled into the library — [arm]/[load_env]
    reject names outside this list to catch typos. *)

val arm : ?count:int -> ?prob:float -> ?seed:int -> string -> action -> unit
(** Arm [point] with [action].  [count] bounds how many times it fires
    (default unlimited); [prob] fires each hit with that probability
    (default 1.0) using a stream seeded by [seed] (default the point
    name's hash, so runs are reproducible).
    @raise Invalid_argument on an unknown point. *)

val disarm : string -> unit
val reset : unit -> unit
(** Disarm everything and zero the fired counters. *)

val enabled : unit -> bool
(** Any point currently armed. *)

val hit : string -> unit
(** The injection point: no-op unless [point] is armed, else throw or
    delay per its action.  A [Corrupt] arm counts the hit but does not
    throw — pair it with {!corrupting} at the call site. *)

val corrupting : string -> bool
(** [true] when the point is armed with {!Corrupt} and fires on this
    hit (consumes a fire, honoring [count] and [prob]). *)

val fired : string -> int
(** How many times the point has actually fired since the last
    {!reset}. *)

val load_env : ?var:string -> unit -> unit
(** Parse [var] (default ["BCC_FAULTS"]) and arm accordingly; silently a
    no-op when unset or empty.  Only entry points opt in (the daemon,
    the CLI, the bench harness) — libraries never read the environment
    on their own.
    @raise Failure on malformed syntax or an unknown point. *)

val summary : unit -> string
(** One line per armed point, for startup logs; [""] when nothing is
    armed. *)
