(** Crash-safe on-disk encoding for the workload store.

    {2 Journal records}

    The journal is an append-only sequence of length-prefixed,
    checksummed records:
    {v
    @rec <kind> <generation> <epoch> <length> <md5-of-payload>
    <length bytes of payload>
    v}
    (one [\n] after the header, one after the payload).  The framing
    makes the commit point unambiguous: a record is committed iff its
    full header, payload and checksum survive.  {!decode} returns every
    committed record from the head of the bytes and the length of the
    undecodable tail — a torn final append (partial header, short
    payload, checksum mismatch) simply ends the decode; it is the
    caller's job to truncate the file to the committed prefix.  Decoding
    never raises.

    The [generation] tag (an opaque token stamped into the snapshot it
    belongs with) fences records from a workload's previous life: a
    re-[PUT] workload writes a fresh-generation snapshot first, so a
    crash between that snapshot and the journal truncation cannot replay
    old-generation deltas onto the new base.

    {2 Solutions}

    {!solution_to_string} / {!solution_of_string} carry a solver
    solution as [select p1;p2 <cost>] lines (the same shape as
    {!Bcc_data.Io.save_solution}, so CLI-saved files interchange); the
    lenient default drops selections that no longer exist in the
    instance's universe — exactly what a warm start wants after the
    workload has drifted. *)

type record = { kind : string; generation : string; epoch : int; payload : string }

val encode : record -> string
(** @raise Invalid_argument when [kind]/[generation] contain blanks or
    newlines, or [epoch < 0]. *)

val decode : string -> record list * int
(** [(records, tail)] — every committed record from the head, and how
    many trailing bytes could not be decoded ([0] = clean).  Never
    raises. *)

val solution_to_string : Bcc_core.Instance.t -> Bcc_core.Solution.t -> string

val solution_of_string :
  ?strict:bool -> Bcc_core.Instance.t -> string -> Bcc_core.Solution.t
(** Re-validates against [inst]: classifier sets are re-priced and the
    utility recomputed from scratch.  By default, selections naming
    unknown properties or classifiers outside the universe are dropped;
    [~strict:true] turns those into [Failure].
    @raise Failure on a structurally malformed line (always). *)
