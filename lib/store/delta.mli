(** Workload delta operations — the unit of change between epochs.

    A workload evolves as a sequence of delta batches; each batch is a
    list of ops over property {e names} (interning happens when the op
    is applied to a workload, so a delta file is self-contained and can
    introduce properties the workload has never seen).

    Text format, one op per line (blank lines and [#] comments ignored,
    fields separated by runs of blanks, CRLF tolerated — the same line
    discipline as {!Bcc_data.Io}):
    {v
    budget 12.5
    upsert wooden;table 35       # set the query's utility
    add wooden;table 5           # increment it (0 when absent)
    remove leather;sofa          # drop the query
    cost wooden 4                # set a classifier's construction cost
    cost wooden;table inf        # ... or price it out of the universe
    v}

    Raw search-log lines ("wooden table<TAB>35") are the other arrival
    path: {!of_log} turns them into [add] ops via
    {!Bcc_data.Log_parser}, so utilities accumulate exactly as repeated
    log ingestion would. *)

type op =
  | Set_budget of float
  | Upsert of string list * float  (** property names, new utility *)
  | Add of string list * float  (** property names, utility increment *)
  | Remove of string list
  | Set_cost of string list * float  (** [infinity] removes the classifier *)

val parse : string -> op list
(** @raise Failure on a malformed line, a NaN/negative number, an empty
    or duplicate property name — never accepts silently. *)

val to_string : op list -> string
(** Inverse of {!parse} (up to comments/whitespace). *)

val of_log : ?max_length:int -> string -> op list * Bcc_data.Log_parser.stats
(** Each distinct query in the log becomes one [add] op carrying its
    accumulated count ([max_length] as in {!Bcc_data.Log_parser}).
    @raise Failure on a malformed count. *)
