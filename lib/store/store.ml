module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Solve_ctx = Bcc_core.Solve_ctx
module Pipeline = Bcc_core.Pipeline
module Io = Bcc_data.Io
module Log_parser = Bcc_data.Log_parser
module Timer = Bcc_util.Timer
module Trace = Bcc_obs.Trace
module Event = Bcc_obs.Event
module Deadline = Bcc_robust.Deadline
module Fault = Bcc_robust.Fault
module Curve_cache = Bcc_sched.Curve_cache

let log_src = Logs.Src.create "bcc.store" ~doc:"workload store commits and replay"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Bridge between the two open decoded types: [bcc_sched] cannot depend
   on [bcc_core], so the curve cache stores opaque [Curve_cache.decoded]
   values and this layer — which sees both — wraps the pipeline's
   decoded curves ([Solve_ctx.decoded]) into them. *)
type Curve_cache.decoded += Decoded of Solve_ctx.decoded

type source = Text of string | Log of string

type info = {
  name : string;
  epoch : int;
  budget : float;
  num_queries : int;
  journal_bytes : int;
  solved_epoch : int option;
  warm_ratio : float option;
}

type solved = {
  info : info;
  instance : Instance.t;
  solution : Solution.t;
  solved_at : int;
  degraded : bool;
  warm : bool;
  seed_utility : float;
  wall_s : float;
  components_total : int;
  components_reused : int;
}

type error = [ `Not_found | `Bad of string ]

type kind = Ktext | Klog

type workload = {
  wname : string;
  kind : kind;
  generation : string;
  names : Symtab.t;
  queries : float Propset.Tbl.t;  (* query -> utility *)
  costs : float Propset.Tbl.t;  (* classifier -> explicit finite cost *)
  oracle : (Propset.t -> float) option;  (* prices classifiers outside [costs] *)
  mutable budget : float;
  mutable epoch : int;
  mutable cached : Instance.t option;
  mutable cached_epoch : int;
  mutable last : solved option;  (* info field is stale; refreshed on access *)
  mutable warm_ratio : float option;
  mutable jfd : Unix.file_descr option;
  mutable journal_bytes : int;
  (* Incremental-pipeline curve artifacts live in the store-wide
     [Curve_cache] (shared across workloads, byte-bounded), claimed
     under this workload's owner id ([wname ^ "@" ^ generation] — a
     re-put starts a fresh generation, so stale claims are fenced).  The
     per-owner footprints drive delta invalidation; the fingerprint key
     makes hits self-validating, so eviction is garbage collection and
     reuse accounting, never a correctness requirement. *)
  (* Fingerprint hints: pipeline hint key -> (property-name footprint,
     component fingerprint).  Lets an incremental solve skip rehashing
     components no delta touched (Solve_ctx.fp_hints).  Hints stay
     per-workload (unlike curve payloads) because their validity rests
     on this table seeing every delta to this workload; they are a pure
     in-process memo — never persisted, rebuilt by the first solve after
     a restart. *)
  fp_hints : (string, string list * string) Hashtbl.t;
  lock : Mutex.t;
}

type t = {
  dir : string option;
  compact_bytes : int;
  cache : Curve_cache.t;  (* curve artifacts, shared across workloads *)
  tbl : (string, workload) Hashtbl.t;
  reg_lock : Mutex.t;  (* lock order: [reg_lock] before any workload lock *)
  epochs : int Atomic.t;
  mutable replay_s : float;
}

(* The curve cache's owner id for a workload: generation-qualified, so a
   re-put (fresh generation) naturally orphans the old claims. *)
let owner_of w = w.wname ^ "@" ^ w.generation

(* --- names, generations, small file helpers --- *)

let valid_name s =
  let n = String.length s in
  n > 0 && n <= 128
  && s.[0] <> '.'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-')
       s

(* Generations fence journal records against a workload's previous life
   (see Codec); pid + wall-clock millis + a process counter is unique
   across both restarts and rapid re-puts. *)
let gen_counter = Atomic.make 0

let fresh_gen () =
  Printf.sprintf "g%x.%x.%x" (Unix.getpid ())
    (Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1000.)) land 0xffff_ffff)
    (Atomic.fetch_and_add gen_counter 1)

let snap_path dir name = Filename.concat dir (name ^ ".snap")
let journal_path dir name = Filename.concat dir (name ^ ".journal")
let artifacts_path dir name = Filename.concat dir (name ^ ".artifacts")

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write fd b !pos (n - !pos)
  done

(* Make a rename/create durable: fsync the containing directory. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --- state construction and materialization --- *)

let prop_name w p = Symtab.name w.names p

let props_string w set =
  String.concat ";" (List.map (prop_name w) (Propset.to_list set))

let materialize w =
  match w.cached with
  | Some inst when w.cached_epoch = w.epoch -> inst
  | _ ->
      Trace.with_span ~name:"store.materialize" @@ fun sp ->
      let qs =
        Propset.Tbl.fold (fun q u acc -> (q, u) :: acc) w.queries []
        |> List.sort (fun (a, _) (b, _) -> Propset.compare a b)
      in
      let cost c =
        match Propset.Tbl.find_opt w.costs c with
        | Some x -> x
        | None -> ( match w.oracle with Some f -> f c | None -> infinity)
      in
      let inst =
        Instance.create
          ~name:(Printf.sprintf "%s@%d" w.wname w.epoch)
          ~names:w.names ~budget:w.budget
          ~queries:(Array.of_list qs)
          ~cost ()
      in
      w.cached <- Some inst;
      w.cached_epoch <- w.epoch;
      if Trace.recording sp then begin
        Trace.add_attr sp "workload" (Trace.Str w.wname);
        Trace.add_attr sp "epoch" (Trace.Int w.epoch);
        Trace.add_attr sp "queries" (Trace.Int (Instance.num_queries inst))
      end;
      inst

(* Ops are validated in full before anything mutates, so a rejected
   batch leaves the workload untouched. *)
let validate_ops ops =
  let check_props what ps =
    if ps = [] then failwith ("Store.delta: empty property list in " ^ what);
    List.iter
      (fun p ->
        if p = "" then failwith ("Store.delta: empty property name in " ^ what))
      ps;
    if List.length (List.sort_uniq compare ps) > 16 then
      failwith ("Store.delta: more than 16 properties in " ^ what)
  in
  let check_num what x =
    if Float.is_nan x then failwith ("Store.delta: " ^ what ^ " is NaN");
    if x < 0.0 then failwith ("Store.delta: negative " ^ what)
  in
  let check_finite what x =
    check_num what x;
    if not (Float.is_finite x) then failwith ("Store.delta: " ^ what ^ " must be finite")
  in
  List.iter
    (fun (op : Delta.op) ->
      match op with
      | Delta.Set_budget b -> check_finite "budget" b
      | Delta.Upsert (ps, u) | Delta.Add (ps, u) ->
          check_props "upsert/add" ps;
          check_finite "utility" u
      | Delta.Remove ps -> check_props "remove" ps
      | Delta.Set_cost (ps, c) ->
          check_props "cost" ps;
          check_num "cost" c)
    ops

let apply_ops w ops =
  let intern ps = Propset.of_list (List.map (Symtab.intern w.names) ps) in
  List.iter
    (fun (op : Delta.op) ->
      Deadline.poll ();
      match op with
      | Delta.Set_budget b -> w.budget <- b
      | Delta.Upsert (ps, u) -> Propset.Tbl.replace w.queries (intern ps) u
      | Delta.Add (ps, u) ->
          let q = intern ps in
          let prev = Option.value ~default:0.0 (Propset.Tbl.find_opt w.queries q) in
          Propset.Tbl.replace w.queries q (prev +. u)
      | Delta.Remove ps -> Propset.Tbl.remove w.queries (intern ps)
      | Delta.Set_cost (ps, c) ->
          let s = intern ps in
          if Float.is_finite c then Propset.Tbl.replace w.costs s c
          else Propset.Tbl.remove w.costs s)
    ops

let build_state ~name ?budget source =
  (match budget with
  | Some b when not (Float.is_finite b && b >= 0.0) ->
      failwith "Store.put: budget must be finite and non-negative"
  | _ -> ());
  let fresh kind oracle =
    {
      wname = name;
      kind;
      generation = fresh_gen ();
      names = Symtab.create ();
      queries = Propset.Tbl.create 256;
      costs = Propset.Tbl.create 256;
      oracle;
      budget = 0.0;
      epoch = 0;
      cached = None;
      cached_epoch = -1;
      last = None;
      warm_ratio = None;
      jfd = None;
      journal_bytes = 0;
      fp_hints = Hashtbl.create 8;
      lock = Mutex.create ();
    }
  in
  match source with
  | Text text ->
      let inst = Io.load_string ~name text in
      let inst =
        match budget with Some b -> Instance.with_budget inst b | None -> inst
      in
      (* [Io.load_string] always interns through a symbol table. *)
      let names = Option.get (Instance.names inst) in
      let w = { (fresh Ktext None) with names; budget = Instance.budget inst } in
      for qi = 0 to Instance.num_queries inst - 1 do
        Propset.Tbl.replace w.queries (Instance.query inst qi) (Instance.utility inst qi)
      done;
      for id = 0 to Instance.num_classifiers inst - 1 do
        Propset.Tbl.replace w.costs (Instance.classifier inst id) (Instance.cost inst id)
      done;
      w.cached <- Some inst;
      w.cached_epoch <- 0;
      w
  | Log text ->
      let names, queries, _stats = Log_parser.parse_string text in
      let oracle = Log_parser.default_cost ~seed:(Hashtbl.hash name) in
      let w = { (fresh Klog (Some oracle)) with names } in
      w.budget <- Option.value ~default:1000.0 budget;
      Array.iter (fun (q, u) -> Propset.Tbl.replace w.queries q u) queries;
      w

(* --- snapshots --- *)

let render_snapshot w =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# bcc workload snapshot\n";
  Printf.bprintf buf "workload %s\n" w.wname;
  Printf.bprintf buf "generation %s\n" w.generation;
  Printf.bprintf buf "kind %s\n" (match w.kind with Ktext -> "text" | Klog -> "log");
  Printf.bprintf buf "epoch %d\n" w.epoch;
  (* %.17g: utilities accumulate float increments; the snapshot must
     round-trip them exactly or a replayed workload would drift. *)
  Printf.bprintf buf "budget %.17g\n" w.budget;
  let sorted tbl =
    Propset.Tbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Propset.compare a b)
  in
  List.iter
    (fun (q, u) -> Printf.bprintf buf "query %s %.17g\n" (props_string w q) u)
    (sorted w.queries);
  List.iter
    (fun (c, x) -> Printf.bprintf buf "cost %s %.17g\n" (props_string w c) x)
    (sorted w.costs);
  (match w.last with
  | Some s ->
      Printf.bprintf buf "solved %d %.17g %.17g\n" s.solved_at s.solution.Solution.cost
        s.solution.Solution.utility;
      List.iter
        (fun c -> Printf.bprintf buf "select %s\n" (props_string w c))
        s.solution.Solution.classifiers
  | None -> ());
  Buffer.contents buf

let tokens line =
  let line = String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line in
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

(* Snapshot parsing: snapshots are written atomically (temp + rename),
   so unlike the journal there is no torn-tail tolerance — anything
   malformed is a hard [Failure]. *)
let parse_snapshot ~file text =
  let fail msg = failwith (Printf.sprintf "Store.replay %s: %s" file msg) in
  let parse_num what s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f && f >= 0.0 -> f
    | _ -> fail ("bad " ^ what ^ ": " ^ s)
  in
  let wname = ref None
  and generation = ref None
  and kind = ref None
  and epoch = ref None
  and budget = ref None in
  let names = Symtab.create () in
  let queries = Propset.Tbl.create 256 in
  let costs = Propset.Tbl.create 256 in
  let solved = ref None in
  let selects = ref [] in
  let parse_props s =
    let parts = String.split_on_char ';' s in
    List.iter (fun p -> if p = "" then fail ("empty property name in: " ^ s)) parts;
    Propset.of_list (List.map (Symtab.intern names) parts)
  in
  List.iter
    (fun line ->
      Deadline.poll ();
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match tokens line with
        | [ "workload"; n ] when valid_name n -> wname := Some n
        | [ "generation"; g ] -> generation := Some g
        | [ "kind"; ("text" | "log") as k ] -> kind := Some k
        | [ "epoch"; e ] -> (
            match int_of_string_opt e with
            | Some e when e >= 0 -> epoch := Some e
            | _ -> fail ("bad epoch: " ^ e))
        | [ "budget"; b ] -> budget := Some (parse_num "budget" b)
        | [ "query"; props; u ] ->
            Propset.Tbl.replace queries (parse_props props) (parse_num "utility" u)
        | [ "cost"; props; c ] ->
            Propset.Tbl.replace costs (parse_props props) (parse_num "cost" c)
        | [ "solved"; e; c; u ] -> (
            match int_of_string_opt e with
            | Some e when e >= 0 -> solved := Some (e, parse_num "cost" c, parse_num "utility" u)
            | _ -> fail ("bad solved epoch: " ^ e))
        | [ "select"; props ] ->
            if !solved = None then fail "select before solved";
            selects := parse_props props :: !selects
        | _ -> fail ("malformed line: " ^ line))
    (String.split_on_char '\n' text);
  match (!wname, !generation, !kind, !epoch, !budget) with
  | Some wname, Some generation, Some kind, Some epoch, Some budget ->
      let kind = if kind = "log" then Klog else Ktext in
      let oracle =
        match kind with
        | Klog -> Some (Log_parser.default_cost ~seed:(Hashtbl.hash wname))
        | Ktext -> None
      in
      let w =
        {
          wname;
          kind;
          generation;
          names;
          queries;
          costs;
          oracle;
          budget;
          epoch;
          cached = None;
          cached_epoch = -1;
          last = None;
          warm_ratio = None;
          jfd = None;
          journal_bytes = 0;
          fp_hints = Hashtbl.create 8;
          lock = Mutex.create ();
        }
      in
      (match !solved with
      | Some (at, cost, utility) ->
          (* The committed numbers are preserved verbatim: if deltas have
             advanced the workload past [at], re-pricing would silently
             change what the store "remembers" serving. *)
          let solution =
            { Solution.classifiers = List.rev !selects; cost; utility }
          in
          w.last <-
            Some
              {
                info =
                  {
                    name = wname;
                    epoch;
                    budget;
                    num_queries = Propset.Tbl.length queries;
                    journal_bytes = 0;
                    solved_epoch = Some at;
                    warm_ratio = None;
                  };
                instance = materialize w;
                solution;
                solved_at = at;
                degraded = false;
                warm = false;
                seed_utility = 0.0;
                wall_s = 0.0;
                components_total = 0;
                components_reused = 0;
              }
      | None -> ());
      w
  | _ -> fail "missing workload/generation/kind/epoch/budget header"

(* --- persistence primitives --- *)

let write_snapshot t w =
  match t.dir with
  | None -> ()
  | Some dir ->
      let path = snap_path dir w.wname in
      let tmp = path ^ ".tmp" in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          write_all fd (render_snapshot w);
          Unix.fsync fd);
      Unix.rename tmp path;
      fsync_dir dir

(* Artifacts are a pure cache: they are rewritten wholesale after each
   incremental solve (atomic temp + rename) and any record that fails to
   decode — torn tail, wrong generation, malformed payload — is silently
   skipped.  The pipeline re-validates every payload against the live
   instance anyway, so the worst a bad artifact file can cause is a cold
   component recompute. *)
let write_artifacts t w =
  match t.dir with
  | None -> ()
  | Some dir ->
      let path = artifacts_path dir w.wname in
      let owned = Curve_cache.owned t.cache ~owner:(owner_of w) in
      if owned = [] then begin
        if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ()
      end
      else begin
        let buf = Buffer.create 4096 in
        owned
        |> List.map (fun (fp, (fpr, payload)) -> (fp, fpr, payload))
        |> List.iter (fun (fp, fpr, payload) ->
               Buffer.add_string buf
                 (Codec.encode
                    {
                      Codec.kind = "artifact";
                      generation = w.generation;
                      epoch = w.epoch;
                      payload = fp ^ "\n" ^ String.concat ";" fpr ^ "\n" ^ payload;
                    }));
        let tmp = path ^ ".tmp" in
        let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            write_all fd (Buffer.contents buf);
            Unix.fsync fd);
        Unix.rename tmp path;
        fsync_dir dir
      end

let load_artifacts t dir w =
  let path = artifacts_path dir w.wname in
  if Sys.file_exists path then begin
    let records, _torn = Codec.decode (read_file path) in
    List.iter
      (fun (r : Codec.record) ->
        if r.Codec.kind = "artifact" && r.Codec.generation = w.generation then
          match String.index_opt r.Codec.payload '\n' with
          | None -> ()
          | Some i -> (
              let fp = String.sub r.Codec.payload 0 i in
              let rest =
                String.sub r.Codec.payload (i + 1) (String.length r.Codec.payload - i - 1)
              in
              match String.index_opt rest '\n' with
              | None -> ()
              | Some j ->
                  let footprint =
                    match String.sub rest 0 j with
                    | "" -> []
                    | s -> String.split_on_char ';' s
                  in
                  let payload = String.sub rest (j + 1) (String.length rest - j - 1) in
                  if fp <> "" then
                    Curve_cache.store t.cache ~owner:(owner_of w) ~footprint fp payload))
      records
  end

let close_journal w =
  (match w.jfd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  w.jfd <- None

let truncate_journal t w =
  match t.dir with
  | None -> ()
  | Some dir ->
      close_journal w;
      let fd =
        Unix.openfile (journal_path dir w.wname)
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ]
          0o644
      in
      w.jfd <- Some fd;
      w.journal_bytes <- 0

(* Append one record and fsync it — the commit point for deltas and
   solves.  Raises (and leaves memory untouched — callers append before
   mutating) on injected faults or I/O errors. *)
let append t w record =
  match t.dir with
  | None -> ()
  | Some dir ->
      Trace.with_span ~name:"store.commit" @@ fun sp ->
      Fault.hit "store.append";
      let fd =
        match w.jfd with
        | Some fd -> fd
        | None ->
            let fd =
              Unix.openfile (journal_path dir w.wname)
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
                0o644
            in
            w.jfd <- Some fd;
            fd
      in
      let s = Codec.encode record in
      write_all fd s;
      Unix.fsync fd;
      w.journal_bytes <- w.journal_bytes + String.length s;
      if Trace.recording sp then begin
        Trace.add_attr sp "kind" (Trace.Str record.Codec.kind);
        Trace.add_attr sp "epoch" (Trace.Int record.Codec.epoch);
        Trace.add_attr sp "bytes" (Trace.Int (String.length s))
      end;
      (* The same commit as a wide event, stamped with the ambient
         correlation id, so a request's durable side effects line up
         with its solve stream in the flight recorder. *)
      if Event.enabled () then
        Event.emit "store_commit"
          ~attrs:
            [
              ("workload", Event.Str w.wname);
              ("kind", Event.Str record.Codec.kind);
              ("epoch", Event.Int record.Codec.epoch);
              ("bytes", Event.Int (String.length s));
            ]

let maybe_compact t w =
  if w.journal_bytes > t.compact_bytes then begin
    Trace.with_span ~name:"store.compact" @@ fun sp ->
    if Trace.recording sp then begin
      Trace.add_attr sp "workload" (Trace.Str w.wname);
      Trace.add_attr sp "folded_bytes" (Trace.Int w.journal_bytes)
    end;
    (* Same generation: the snapshot advances to the current epoch, so
       any journal records a crash leaves behind are skipped by their
       (now stale) epochs on replay. *)
    write_snapshot t w;
    truncate_journal t w;
    Log.debug (fun m -> m "%s: compacted journal into snapshot at epoch %d" w.wname w.epoch)
  end

(* --- startup replay --- *)

let replay_workload t dir base =
  Deadline.poll ();
  let sfile = snap_path dir base in
  let w = parse_snapshot ~file:sfile (read_file sfile) in
  if w.wname <> base then
    failwith (Printf.sprintf "Store.replay %s: snapshot is for workload %s" sfile w.wname);
  let jpath = journal_path dir base in
  let jbytes = if Sys.file_exists jpath then read_file jpath else "" in
  let records, tail = Codec.decode jbytes in
  (* Records are applied in order; the first out-of-sequence epoch stops
     the replay (nothing after it can be trusted), while records from an
     older generation or at-or-below the snapshot epoch are simply
     stale.  Only the torn tail is truncated from the file — stale
     records are rewritten away by the next compaction. *)
  let stop = ref false in
  List.iter
    (fun (r : Codec.record) ->
      Deadline.poll ();
      if (not !stop) && r.generation = w.generation then
        match r.kind with
        | "delta" when r.epoch = w.epoch + 1 ->
            let ops = Delta.parse r.payload in
            validate_ops ops;
            apply_ops w ops;
            w.epoch <- r.epoch;
            w.cached <- None
        | "delta" when r.epoch <= w.epoch -> ()
        | "delta" ->
            Log.warn (fun m ->
                m "%s: journal gap at epoch %d (workload at %d); stopping replay" base
                  r.epoch w.epoch);
            stop := true
        | "solve" when r.epoch = w.epoch ->
            let inst = materialize w in
            let solution = Codec.solution_of_string inst r.payload in
            w.last <-
              Some
                {
                  info =
                    {
                      name = w.wname;
                      epoch = w.epoch;
                      budget = w.budget;
                      num_queries = Propset.Tbl.length w.queries;
                      journal_bytes = 0;
                      solved_epoch = Some w.epoch;
                      warm_ratio = None;
                    };
                  instance = inst;
                  solution;
                  solved_at = w.epoch;
                  degraded = false;
                  warm = false;
                  seed_utility = 0.0;
                  wall_s = 0.0;
                  components_total = 0;
                  components_reused = 0;
                }
        | "solve" when r.epoch < w.epoch -> ()
        | _ ->
            Log.warn (fun m -> m "%s: unknown journal record kind %s; stopping replay" base r.kind);
            stop := true)
    records;
  if tail > 0 then begin
    Log.warn (fun m -> m "%s: truncating %d torn bytes from journal tail" base tail);
    Unix.truncate jpath (String.length jbytes - tail)
  end;
  w.journal_bytes <- String.length jbytes - tail;
  load_artifacts t dir w;
  Hashtbl.replace t.tbl base w

let create ?dir ?(compact_bytes = 262_144) ?curve_cache () =
  let t =
    {
      dir;
      compact_bytes = max 1 compact_bytes;
      (* Default: a private cache, so each store's artifact lifetime is
         self-contained (tests rely on a fresh store solving cold).  The
         daemon passes one shared cache so curves cross workloads. *)
      cache =
        (match curve_cache with Some c -> c | None -> Curve_cache.create ());
      tbl = Hashtbl.create 8;
      reg_lock = Mutex.create ();
      epochs = Atomic.make 0;
      replay_s = 0.0;
    }
  in
  (match dir with
  | None -> ()
  | Some d ->
      (try Unix.mkdir d 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      | Unix.Unix_error (e, _, _) ->
          failwith
            (Printf.sprintf "Store.create: cannot create %s: %s" d (Unix.error_message e)));
      let timer = Timer.start () in
      Trace.with_span ~name:"store.replay" @@ fun sp ->
      let bases =
        Sys.readdir d |> Array.to_list
        |> List.filter_map (fun f -> Filename.chop_suffix_opt f ~suffix:".snap")
        |> List.filter valid_name |> List.sort compare
      in
      List.iter (replay_workload t d) bases;
      t.replay_s <- Timer.elapsed_s timer;
      if Trace.recording sp then
        Trace.add_attr sp "workloads" (Trace.Int (List.length bases));
      Log.info (fun m ->
          m "replayed %d workloads from %s in %.3fs" (List.length bases) d t.replay_s));
  t

let close t =
  Mutex.lock t.reg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.reg_lock)
    (fun () -> Hashtbl.iter (fun _ w -> close_journal w) t.tbl)

(* --- the public operations --- *)

let info_of w =
  {
    name = w.wname;
    epoch = w.epoch;
    budget = w.budget;
    num_queries = Propset.Tbl.length w.queries;
    journal_bytes = w.journal_bytes;
    solved_epoch = Option.map (fun s -> s.solved_at) w.last;
    warm_ratio = w.warm_ratio;
  }

(* Lock order is always registry -> workload; the workload lock is taken
   while the registry lock is still held, so [w] cannot be replaced
   between lookup and lock. *)
let with_workload t name f =
  Mutex.lock t.reg_lock;
  match Hashtbl.find_opt t.tbl name with
  | None ->
      Mutex.unlock t.reg_lock;
      Error `Not_found
  | Some w ->
      Mutex.lock w.lock;
      Mutex.unlock t.reg_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) (fun () -> f w)

let put t ~name ?budget source =
  if not (valid_name name) then
    Error (`Bad ("invalid workload name (use [A-Za-z0-9._-], no leading dot): " ^ name))
  else
    Trace.with_span ~name:"store.put" @@ fun sp ->
    if Trace.recording sp then Trace.add_attr sp "workload" (Trace.Str name);
    match build_state ~name ?budget source with
    | exception Failure msg -> Error (`Bad msg)
    | w ->
        Mutex.lock t.reg_lock;
        let old = Hashtbl.find_opt t.tbl name in
        (* Hold the outgoing workload's lock across the file swap so an
           in-flight solve cannot append to the journal mid-replace. *)
        (match old with Some o -> Mutex.lock o.lock | None -> ());
        Fun.protect
          ~finally:(fun () ->
            (match old with Some o -> Mutex.unlock o.lock | None -> ());
            Mutex.unlock t.reg_lock)
          (fun () ->
            (match old with Some o -> close_journal o | None -> ());
            (* New-generation snapshot first (atomic rename = the commit
               point), then truncate the journal: a crash in between
               leaves old-generation records that replay skips. *)
            write_snapshot t w;
            truncate_journal t w;
            (* The fresh generation orphans any artifact file on disk
               and the old generation's curve-cache claims; remove both
               so a re-put name cannot serve a stale cache. *)
            (match old with
            | Some o -> Curve_cache.drop_owner t.cache ~owner:(owner_of o)
            | None -> ());
            write_artifacts t w;
            Hashtbl.replace t.tbl name w;
            Atomic.incr t.epochs;
            Ok (info_of w))

(* Delta-footprint invalidation: drop every artifact whose property
   footprint intersects the properties the batch touches (a budget
   change re-fingerprints everything, so it clears the lot).  Untouched
   components keep their curves and are reused by the next incremental
   solve.  Purely an accounting/GC step — a stale artifact that survived
   would still miss on its fingerprint. *)
let evict_artifacts t w ops =
  if List.exists (function Delta.Set_budget _ -> true | _ -> false) ops then begin
    Curve_cache.drop_owner t.cache ~owner:(owner_of w);
    Hashtbl.reset w.fp_hints
  end
  else begin
    let touched = Hashtbl.create 16 in
    List.iter
      (fun (op : Delta.op) ->
        match op with
        | Delta.Set_budget _ -> ()
        | Delta.Upsert (ps, _) | Delta.Add (ps, _) | Delta.Remove ps | Delta.Set_cost (ps, _)
          ->
            List.iter (fun p -> Hashtbl.replace touched p ()) ps)
      ops;
    Curve_cache.evict_owner t.cache ~owner:(owner_of w) ~touched:(Hashtbl.mem touched);
    (* The hint sweep is the correctness half of the hint contract: a
       fingerprint hint may only survive a delta its footprint provably
       does not intersect (Solve_ctx.fp_hints). *)
    let dead =
      Hashtbl.fold
        (fun key (footprint, _) acc ->
          if List.exists (Hashtbl.mem touched) footprint then key :: acc else acc)
        w.fp_hints []
    in
    List.iter (Hashtbl.remove w.fp_hints) dead
  end

let delta t ~name ops =
  with_workload t name @@ fun w ->
  Trace.with_span ~name:"store.delta" @@ fun sp ->
  if Trace.recording sp then begin
    Trace.add_attr sp "workload" (Trace.Str name);
    Trace.add_attr sp "ops" (Trace.Int (List.length ops))
  end;
  match validate_ops ops with
  | exception Failure msg -> Error (`Bad msg)
  | () ->
      if ops = [] then Error (`Bad "empty delta: no ops")
      else begin
        append t w
          {
            Codec.kind = "delta";
            generation = w.generation;
            epoch = w.epoch + 1;
            payload = Delta.to_string ops;
          };
        apply_ops w ops;
        w.epoch <- w.epoch + 1;
        w.cached <- None;
        evict_artifacts t w ops;
        Atomic.incr t.epochs;
        maybe_compact t w;
        Ok (info_of w)
      end

let solve t ~name ?options ?(cold = false) ?(incremental = false) ?(deadline = Deadline.none)
    () =
  with_workload t name @@ fun w ->
  Trace.with_span ~name:"store.solve" @@ fun sp ->
  let inst = materialize w in
  let warm =
    if cold || incremental then None else Option.map (fun s -> s.solution) w.last
  in
  (* Seed utility under the *current* epoch: what the previous solution
     still covers after the delta (vanished classifiers dropped). *)
  let seed_utility =
    match warm with
    | Some s -> (Solution.of_sets inst s.Solution.classifiers).Solution.utility
    | None -> 0.0
  in
  let timer = Timer.start () in
  let outcome, components_total, components_reused =
    if not incremental then
      (Solver.solve_within ?options ?warm ~deadline inst, 0, 0)
    else begin
      (* Incremental pipeline: per-component curves served from the
         store-wide curve cache when the delta footprint left them
         untouched.  Lookup is fingerprint-global — another workload (or
         another epoch's surviving claim) with the same component
         content serves the hit; self-validating either way.
         Deliberately not warm-seeded — the per-component solves must be
         pure functions of component content so an incremental re-solve
         is bit-identical to a cold pipeline solve at the same epoch. *)
      let ownr = owner_of w in
      let cache =
        Solve_ctx.cache
          ~find_decoded:(fun fp ->
            match Curve_cache.find_decoded t.cache fp with
            | Some (Decoded d) -> Some d
            | _ -> None)
          ~store_decoded:(fun fp d -> Curve_cache.store_decoded t.cache fp (Decoded d))
          ~find:(fun fp -> Curve_cache.find t.cache fp)
          ~store:(fun fp payload -> Curve_cache.store t.cache ~owner:ownr fp payload)
          ()
      in
      let hints =
        {
          Solve_ctx.hint_find =
            (fun key -> Option.map snd (Hashtbl.find_opt w.fp_hints key));
          hint_record =
            (fun key footprint fp -> Hashtbl.replace w.fp_hints key (footprint, fp));
        }
      in
      let ctx = Solve_ctx.make ~deadline ~cache ~hints () in
      let report = Pipeline.solve ?options ctx inst in
      (* Stamp the footprints the eviction scan intersects with delta
         footprints; newly stored artifacts were parked with an empty
         footprint above, and a cross-workload hit becomes claimed by
         this owner here. *)
      List.iter
        (fun (c : Pipeline.component_report) ->
          let footprint =
            List.sort compare
              (List.map (prop_name w) (Propset.to_list c.Pipeline.props))
          in
          Curve_cache.set_footprint t.cache ~owner:ownr c.Pipeline.fingerprint footprint)
        report.Pipeline.components;
      write_artifacts t w;
      (report.Pipeline.outcome, report.Pipeline.components_total,
       report.Pipeline.components_reused)
    end
  in
  let wall_s = Timer.elapsed_s timer in
  let solution = outcome.Solver.solution in
  append t w
    {
      Codec.kind = "solve";
      generation = w.generation;
      epoch = w.epoch;
      payload = Codec.solution_to_string inst solution;
    };
  maybe_compact t w;
  w.warm_ratio <-
    (match warm with
    | Some _ ->
        Some (if solution.Solution.utility > 0.0 then seed_utility /. solution.Solution.utility else 1.0)
    | None -> w.warm_ratio);
  let s =
    {
      info = info_of w;
      instance = inst;
      solution;
      solved_at = w.epoch;
      degraded = outcome.Solver.degraded;
      warm = Option.is_some warm;
      seed_utility;
      wall_s;
      components_total;
      components_reused;
    }
  in
  w.last <- Some s;
  if Trace.recording sp then begin
    Trace.add_attr sp "workload" (Trace.Str name);
    Trace.add_attr sp "epoch" (Trace.Int w.epoch);
    Trace.add_attr sp "warm" (Trace.Bool s.warm);
    Trace.add_attr sp "seed_utility" (Trace.Float seed_utility);
    Trace.add_attr sp "utility" (Trace.Float solution.Solution.utility);
    Trace.add_attr sp "degraded" (Trace.Bool s.degraded);
    if incremental then begin
      Trace.add_attr sp "components" (Trace.Int components_total);
      Trace.add_attr sp "reused" (Trace.Int components_reused)
    end
  end;
  Ok s

let solution t name =
  with_workload t name @@ fun w ->
  match w.last with
  | None -> Error `Not_found
  | Some s -> Ok { s with info = info_of w }

let info t name =
  match with_workload t name (fun w -> Ok (info_of w)) with
  | Ok i -> Some i
  | Error _ -> None

let list t =
  Mutex.lock t.reg_lock;
  let ws = Hashtbl.fold (fun _ w acc -> w :: acc) t.tbl [] in
  Mutex.unlock t.reg_lock;
  ws
  |> List.map (fun w ->
         Mutex.lock w.lock;
         Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) (fun () -> info_of w))
  |> List.sort (fun a b -> compare a.name b.name)

let epochs_committed t = Atomic.get t.epochs
let replay_seconds t = t.replay_s
