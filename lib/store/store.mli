(** The workload store: named, versioned, durably persisted workloads
    with warm-started incremental re-solves.

    A {e workload} is the living object behind a BCC instance: a budget,
    a query→utility map and a classifier→cost map, advanced one {e
    epoch} at a time by delta batches ({!Bcc_store.Delta}) — the paper's
    search logs drift continuously (utilities are search counts,
    Section 6.1), so the instance a solve sees is always "the workload
    as of epoch [e]".  The materialized {!Bcc_core.Instance.t} is cached
    per epoch; queries are ordered by {!Bcc_core.Propset.compare} so a
    replayed workload materializes bit-identically.

    {2 Persistence}

    With a [dir], every workload keeps a snapshot file ([<name>.snap],
    written atomically: temp + fsync + rename + directory fsync) and an
    append-only journal ([<name>.journal]) of {!Bcc_store.Codec}
    records, fsynced on every commit.  Startup replays snapshot +
    journal; a torn final append is truncated, not fatal.  When the
    journal outgrows [compact_bytes] it is folded into a fresh snapshot
    and truncated.  Without a [dir] the store is purely in-memory (same
    API, nothing survives the process).

    {2 Warm starts}

    [solve] seeds {!Bcc_core.Solver.solve_within} with the workload's
    last committed solution ({!Bcc_core.Solver.solve_within}'s [?warm]):
    the seed is re-validated against the current epoch's instance
    (vanished classifiers dropped, coverage recomputed) and banked as
    the initial incumbent, so a re-solve after a small delta races from
    a strong start instead of cold.  Solved solutions are committed to
    the journal, so a restarted store serves the same epoch/solution it
    had before the crash.

    {2 Incremental pipeline solves}

    [solve ~incremental:true] uses the staged {!Bcc_core.Pipeline}
    instead of the monolithic solver and keeps its per-component
    artifacts — fingerprint-keyed budget→utility curves with a
    property-name footprint — in a {!Bcc_sched.Curve_cache} (byte
    -bounded, shareable across workloads and across stores), persisted
    per workload next to the snapshot and invalidated by the deltas
    that touch them.  See {!create} and {!solve} for the contract.

    All mutating operations run under a per-workload lock (solves of
    distinct workloads proceed in parallel), carry {!Bcc_obs.Trace}
    spans, and poll the ambient {!Bcc_robust.Deadline}. *)

type t

type source =
  | Text of string
      (** the plain-text instance format of {!Bcc_data.Io}; classifiers
          absent from the text stay priced [infinity] across deltas *)
  | Log of string
      (** a raw search log ({!Bcc_data.Log_parser} line format); the
          classifier universe is priced by the deterministic skewed
          oracle {!Bcc_data.Log_parser.default_cost}, seeded by the
          workload name, so new queries introduced by later deltas get
          consistent costs *)

type info = {
  name : string;
  epoch : int;
  budget : float;
  num_queries : int;
  journal_bytes : int;
  solved_epoch : int option;  (** epoch of the last committed solution *)
  warm_ratio : float option;
      (** share of the last solve's utility already covered by its
          re-validated warm seed; [None] until a warm solve happens *)
}

type solved = {
  info : info;
  instance : Bcc_core.Instance.t;  (** the epoch the solve ran against *)
  solution : Bcc_core.Solution.t;
  solved_at : int;  (** epoch of [solution] *)
  degraded : bool;
  warm : bool;  (** a previous solution seeded this solve *)
  seed_utility : float;  (** utility of the re-validated seed; 0 when cold *)
  wall_s : float;
  components_total : int;
      (** pipeline components this solve staged; 0 on the classic path *)
  components_reused : int;
      (** components whose budget→utility curve was served from the
          artifact cache instead of recomputed *)
}

type error = [ `Not_found | `Bad of string ]

val create :
  ?dir:string -> ?compact_bytes:int -> ?curve_cache:Bcc_sched.Curve_cache.t -> unit -> t
(** Opens (and replays) the state directory, creating it if missing;
    [compact_bytes] (default 262144) caps the journal before compaction.
    [curve_cache] holds the incremental pipeline's curve artifacts;
    passing one shared cache lets equal-content components cross
    workloads (and stores).  Default: a fresh private cache, so an
    isolated store still solves cold the first time.
    @raise Failure on an unreadable/corrupt snapshot. *)

val close : t -> unit
(** Close journal descriptors; the store must not be used afterwards. *)

val valid_name : string -> bool
(** Workload names are file-system-safe: [A-Za-z0-9._-], non-empty, at
    most 128 chars, not starting with a dot. *)

val put : t -> name:string -> ?budget:float -> source -> (info, error) result
(** Create or replace the workload at epoch 0.  [budget] overrides the
    text's budget and is required wisdom for [Log] sources (default
    1000, as [bcc ingest]).  Replacing starts a fresh generation: a
    crash can serve the old workload or the new one, never a blend. *)

val delta : t -> name:string -> Delta.op list -> (info, error) result
(** Apply one batch atomically: the new epoch exists after the journal
    record is fsynced, or not at all. *)

val solve :
  t ->
  name:string ->
  ?options:Bcc_core.Solver.options ->
  ?cold:bool ->
  ?incremental:bool ->
  ?deadline:Bcc_robust.Deadline.t ->
  unit ->
  (solved, error) result
(** Solve the current epoch, warm-seeded by the last committed solution
    unless [cold] (or there is none); commits the result.  A degraded
    (deadline-cut) solution is still committed — it is feasible, and a
    later solve will warm-start from it.

    [incremental] routes the solve through {!Bcc_core.Pipeline}: the
    instance is staged into fingerprinted overlap-graph components whose
    budget→utility curves are cached in the store's curve cache, claimed
    per workload generation ([<name>.artifacts] on disk, atomically
    rewritten after each incremental solve and reloaded on replay;
    lookups are fingerprint-global, so an equal-content component of
    another workload serves the hit).  A {!delta} evicts only
    this workload's claims whose property footprint the batch touches, so the
    next incremental solve recomputes the dirty components and reuses
    the clean curves — and, because each curve is a pure function of
    component content (fingerprint-derived randomness, no warm
    seeding), the result is bit-identical to a cold pipeline solve at
    the same epoch.  Torn or corrupted artifacts (including the
    ["pipeline.artifact"] fault point) degrade to recomputation, never
    to a wrong answer.  Incremental solves ignore the warm seed and
    leave [warm_ratio] unchanged. *)

val solution : t -> string -> (solved, error) result
(** The last committed solution exactly as solved ([instance] and
    [solved_at] are the epoch it ran against, even if deltas have
    advanced the workload since); [info] reflects the workload now.
    [`Not_found] when the workload does not exist {e or} has never been
    solved. *)

val info : t -> string -> info option
val list : t -> info list
(** Sorted by name. *)

val epochs_committed : t -> int
(** Epoch-advancing commits (puts and deltas) since this store opened —
    the [bcc_store_epochs_total] counter. *)

val replay_seconds : t -> float
(** Wall time startup replay took (0 for a fresh/in-memory store). *)
