module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab
module Solution = Bcc_core.Solution

type record = { kind : string; generation : string; epoch : int; payload : string }

let token_ok s =
  s <> "" && String.for_all (fun c -> c > ' ' && c < '\x7f') s

let encode r =
  if not (token_ok r.kind) then invalid_arg "Codec.encode: bad kind";
  if not (token_ok r.generation) then invalid_arg "Codec.encode: bad generation";
  if r.epoch < 0 then invalid_arg "Codec.encode: negative epoch";
  Printf.sprintf "@rec %s %s %d %d %s\n%s\n" r.kind r.generation r.epoch
    (String.length r.payload)
    (Digest.to_hex (Digest.string r.payload))
    r.payload

(* Decode from the head until the first record that is not provably
   committed; whatever follows is the torn tail. *)
let decode bytes =
  let n = String.length bytes in
  let records = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos < n do
    match String.index_from_opt bytes !pos '\n' with
    | None -> ok := false (* partial header *)
    | Some eol -> (
        let header = String.sub bytes !pos (eol - !pos) in
        match String.split_on_char ' ' header with
        | [ "@rec"; kind; generation; epoch; len; md5 ]
          when token_ok kind && token_ok generation -> (
            match (int_of_string_opt epoch, int_of_string_opt len) with
            | Some epoch, Some len
              when epoch >= 0 && len >= 0
                   (* header + payload + trailing newline all present *)
                   && eol + 1 + len < n
                   && bytes.[eol + 1 + len] = '\n' ->
                let payload = String.sub bytes (eol + 1) len in
                if Digest.to_hex (Digest.string payload) = md5 then begin
                  records := { kind; generation; epoch; payload } :: !records;
                  pos := eol + 1 + len + 1
                end
                else ok := false (* checksum mismatch: torn or corrupt *)
            | _ -> ok := false)
        | _ -> ok := false)
  done;
  (List.rev !records, n - !pos)

(* --- solutions --- *)

let prop_name inst p =
  match Instance.names inst with
  | Some tbl -> Symtab.name tbl p
  | None -> string_of_int p

let solution_to_string inst (sol : Solution.t) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "# bcc solution for instance %s\n" (Instance.name inst);
  Printf.bprintf buf "# cost %.9g utility %.9g\n" sol.Solution.cost sol.Solution.utility;
  List.iter
    (fun c ->
      let names = List.map (prop_name inst) (Propset.to_list c) in
      Printf.bprintf buf "select %s %.9g\n" (String.concat ";" names)
        (Instance.cost_of inst c))
    sol.Solution.classifiers;
  Buffer.contents buf

let tokens line =
  let line = String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line in
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let solution_of_string ?(strict = false) inst text =
  let name_to_id =
    match Instance.names inst with
    | Some tbl -> fun s -> Symtab.find tbl s
    | None -> fun s -> int_of_string_opt s
  in
  let sets = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match tokens line with
        | [ "select"; props; _cost ] -> (
            let ids = List.map name_to_id (String.split_on_char ';' props) in
            match
              if List.exists Option.is_none ids then None
              else
                let set = Propset.of_list (List.filter_map Fun.id ids) in
                if Instance.classifier_id inst set = None then None else Some set
            with
            | Some set -> sets := set :: !sets
            | None ->
                (* Unknown property or a classifier outside the universe:
                   after workload drift this is the expected fate of part
                   of a warm seed — drop it unless asked to be strict. *)
                if strict then
                  failwith
                    ("Codec.solution_of_string: classifier not in the instance \
                      universe: " ^ props))
        | _ -> failwith ("Codec.solution_of_string: malformed line: " ^ line))
    (String.split_on_char '\n' text);
  Solution.of_sets inst !sets
