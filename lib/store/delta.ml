module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab
module Log_parser = Bcc_data.Log_parser

type op =
  | Set_budget of float
  | Upsert of string list * float
  | Add of string list * float
  | Remove of string list
  | Set_cost of string list * float

let tokens line =
  let line = String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line in
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let parse_props s =
  let parts = String.split_on_char ';' s in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if p = "" then failwith ("Delta.parse: empty property name in: " ^ s);
      if Hashtbl.mem seen p then
        failwith ("Delta.parse: duplicate property " ^ p ^ " in: " ^ s);
      Hashtbl.add seen p ())
    parts;
  parts

(* [float_of_string_opt "inf"] is [Some infinity], so the [inf_ok]
   distinction lives in the finiteness guard, not the parse. *)
let parse_float ?(inf_ok = false) what s =
  match float_of_string_opt s with
  | Some f when Float.is_nan f -> failwith ("Delta.parse: " ^ what ^ " is NaN: " ^ s)
  | Some f when f < 0.0 -> failwith ("Delta.parse: negative " ^ what ^ ": " ^ s)
  | Some f when Float.is_finite f || inf_ok -> f
  | Some _ -> failwith ("Delta.parse: " ^ what ^ " must be finite: " ^ s)
  | None -> failwith ("Delta.parse: bad " ^ what ^ ": " ^ s)

let parse text =
  let ops = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        let op =
          match tokens line with
          | [ "budget"; b ] -> Set_budget (parse_float "budget" b)
          | [ "upsert"; props; u ] -> Upsert (parse_props props, parse_float "utility" u)
          | [ "add"; props; u ] -> Add (parse_props props, parse_float "utility" u)
          | [ "remove"; props ] -> Remove (parse_props props)
          | [ "cost"; props; c ] -> Set_cost (parse_props props, parse_float ~inf_ok:true "cost" c)
          | _ -> failwith ("Delta.parse: malformed line: " ^ line)
        in
        ops := op :: !ops)
    (String.split_on_char '\n' text);
  List.rev !ops

let to_string ops =
  let buf = Buffer.create 256 in
  let props ps = String.concat ";" ps in
  List.iter
    (fun op ->
      (match op with
      | Set_budget b -> Printf.bprintf buf "budget %.9g" b
      | Upsert (ps, u) -> Printf.bprintf buf "upsert %s %.9g" (props ps) u
      | Add (ps, u) -> Printf.bprintf buf "add %s %.9g" (props ps) u
      | Remove ps -> Printf.bprintf buf "remove %s" (props ps)
      | Set_cost (ps, c) ->
          if Float.is_finite c then Printf.bprintf buf "cost %s %.9g" (props ps) c
          else Printf.bprintf buf "cost %s inf" (props ps));
      Buffer.add_char buf '\n')
    ops;
  Buffer.contents buf

let of_log ?max_length text =
  let names, queries, stats = Log_parser.parse_string ?max_length text in
  let ops =
    Array.to_list queries
    |> List.map (fun (q, count) ->
           Add (List.map (Symtab.name names) (Propset.to_list q), count))
  in
  (ops, stats)
