(** Keep-alive HTTP/1.1 connection pool over the server's own codec
    ({!Bcc_server.Http}), with the retry and hedging policy the cluster
    {!Router} builds on.

    - {b Pooling}: idle sockets are kept per backend (bounded) and
      reused; a reused socket the shard already closed (its keep-alive
      idle timeout) is detected and redialed without consuming retry
      budget.
    - {b Retries}: connect failures always retry (nothing reached the
      shard); post-write failures and 5xx responses retry only for
      [idempotent] requests — replaying a mutation could double-apply
      it.  Retries back off exponentially with jitter so a recovering
      shard is not met by a synchronized herd.
    - {b Hedging}: {!hedged} fires the request at the backup node when
      the primary has not answered within the hedge delay; the first
      non-5xx response wins.
    - {b Context propagation}: every outbound request carries the
      ambient {!Bcc_obs.Event} correlation id as [X-Bcc-Trace-Id] and
      the caller's remaining time budget as [X-Bcc-Deadline-Ms]. *)

type t

val create :
  ?max_idle_per_backend:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  unit ->
  t
(** Defaults: 2 idle sockets per backend, 30 s socket timeout, 2
    retries, 50 ms base backoff. *)

val request :
  ?deadline_ms:float ->
  ?idempotent:bool ->
  t ->
  Ring.node ->
  Bcc_server.Http.request ->
  (Bcc_server.Http.response, Bcc_server.Http.error) result
(** One request to one backend, through the pool.  [deadline_ms] is
    forwarded as [X-Bcc-Deadline-Ms].  [idempotent] (default true)
    gates retries of anything after bytes were written; pass [false]
    for mutations.  Errors carry gateway status hints (502/504). *)

val hedged :
  ?deadline_ms:float ->
  ?hedge_delay_s:float ->
  t ->
  Ring.node list ->
  Bcc_server.Http.request ->
  (Bcc_server.Http.response, Bcc_server.Http.error) result * int
(** Hedged idempotent read over [nodes] (primary, backup, ...): the
    backup is dialed when the primary has not answered within
    [hedge_delay_s] (default 50 ms) or answered unacceptably; first
    non-5xx response wins.  The second component is the number of
    hedge requests actually launched (0 or 1), for metrics. *)

val idle_count : t -> Ring.node -> int
(** Idle pooled sockets for [node] (tests). *)

val close_idle : t -> unit
(** Close every pooled socket (shutdown). *)
