(* Keep-alive HTTP/1.1 connection pool over the server's own codec
   (Bcc_server.Http), plus the retry/hedging policy the router builds
   on.  One pool serves every backend: idle sockets are kept per shard
   (the shard closes them after its own idle timeout, so a reused
   socket may be found dead — that failure is retried on a fresh
   connection without consuming a retry budget), fresh failures retry
   with jittered exponential backoff, and idempotent reads may be
   hedged onto the next ring node when the first is slow. *)

module Http = Bcc_server.Http
module Event = Bcc_obs.Event
module Deadline = Bcc_robust.Deadline
module Rng = Bcc_util.Rng
module Timer = Bcc_util.Timer

type t = {
  lock : Mutex.t;
  idle : (string, Unix.file_descr list ref) Hashtbl.t;
  max_idle : int;
  timeout_s : float;
  retries : int;
  backoff_s : float;
  rng : Rng.t;  (* jitter stream; guarded by [lock] *)
}

let create ?(max_idle_per_backend = 2) ?(timeout_s = 30.0) ?(retries = 2)
    ?(backoff_s = 0.05) () =
  {
    lock = Mutex.create ();
    idle = Hashtbl.create 8;
    max_idle = max 0 max_idle_per_backend;
    timeout_s = Float.max 0.01 timeout_s;
    retries = max 0 retries;
    backoff_s = Float.max 0.001 backoff_s;
    rng = Rng.create 0x636c7573;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let take_idle t node =
  locked t (fun () ->
      match Hashtbl.find_opt t.idle (Ring.node_id node) with
      | Some ({ contents = fd :: rest } as cell) ->
          cell := rest;
          Some fd
      | _ -> None)

let put_idle t node fd =
  let keep =
    locked t (fun () ->
        let cell =
          match Hashtbl.find_opt t.idle (Ring.node_id node) with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.add t.idle (Ring.node_id node) c;
              c
        in
        if List.length !cell < t.max_idle then begin
          cell := fd :: !cell;
          true
        end
        else false)
  in
  if not keep then try Unix.close fd with Unix.Unix_error _ -> ()

let close_idle t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ cell ->
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            !cell;
          cell := [])
        t.idle)

let idle_count t node =
  locked t (fun () ->
      match Hashtbl.find_opt t.idle (Ring.node_id node) with
      | Some cell -> List.length !cell
      | None -> 0)

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Some addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> None
      | { Unix.h_addr_list = addrs; _ } -> Some addrs.(0)
      | exception Not_found -> None)

let connect t (node : Ring.node) =
  match resolve node.Ring.host with
  | None -> Error (Printf.sprintf "cannot resolve %s" node.Ring.host)
  | Some addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.timeout_s;
        Unix.connect fd (Unix.ADDR_INET (addr, node.Ring.port));
        Ok fd
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Unix.error_message e))

(* Cross-hop context: the ambient correlation id rides X-Bcc-Trace-Id
   (so one trace follows the request through the router onto the owning
   shard's flight recorder), and the remaining time budget rides
   X-Bcc-Deadline-Ms (so a shard never works past what the caller will
   wait for). *)
let outbound_headers ?deadline_ms (req : Http.request) node =
  let drop k = List.remove_assoc k req.Http.headers in
  let headers = drop "host" in
  let headers = ("host", Ring.node_id node) :: headers in
  let headers =
    match deadline_ms with
    | Some ms when ms > 0.0 ->
        ("x-bcc-deadline-ms", Printf.sprintf "%.0f" ms)
        :: List.remove_assoc "x-bcc-deadline-ms" headers
    | _ -> headers
  in
  match Event.current_corr () with
  | "" -> headers
  | corr ->
      if List.mem_assoc "x-bcc-trace-id" headers then headers
      else ("x-bcc-trace-id", corr) :: headers

(* One request over one (possibly reused) connection.  [`Stale] means
   the failure is consistent with the server having closed an idle
   pooled socket — the caller retries on a fresh connection for free. *)
let once t node fd ~reused (req : Http.request) =
  let stale e = if reused then `Stale e else `Fresh e in
  match Http.write_request fd req with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (stale (Unix.error_message e))
  | () -> (
      match Http.read_response fd with
      | Error { Http.status_hint; message } ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (* EOF before any response bytes on a reused socket is the
             classic keep-alive race; a timeout is not. *)
          if reused && status_hint = 502 then Error (`Stale message)
          else Error (`Fresh message)
      | Ok resp ->
          let keep =
            match List.assoc_opt "connection" resp.Http.headers with
            | Some v -> String.lowercase_ascii (String.trim v) = "keep-alive"
            | None -> false
          in
          if keep then put_idle t node fd
          else (try Unix.close fd with Unix.Unix_error _ -> ());
          Ok resp)

let jitter_sleep t ~attempt =
  let factor = float_of_int (1 lsl min attempt 6) in
  let j = locked t (fun () -> Rng.float t.rng 1.0) in
  Thread.delay (t.backoff_s *. factor *. (0.5 +. j))

(* [idempotent] gates which failures may retry: connect failures are
   always safe (nothing reached the shard), but anything after bytes
   were written — including a 5xx response — can only be retried when
   replaying the request cannot double-apply it. *)
let request ?deadline_ms ?(idempotent = true) t node (req : Http.request) =
  let req = { req with Http.headers = outbound_headers ?deadline_ms req node } in
  let gateway status message = Error { Http.status_hint = status; message } in
  let rec attempt k ~stale_budget =
    let fresh_conn () =
      match connect t node with
      | Error msg ->
          if k < t.retries then begin
            jitter_sleep t ~attempt:k;
            attempt (k + 1) ~stale_budget
          end
          else gateway 502 (Printf.sprintf "%s: %s" (Ring.node_id node) msg)
      | Ok fd -> (
          match once t node fd ~reused:false req with
          | Ok resp when resp.Http.status >= 500 && idempotent && k < t.retries
            ->
              jitter_sleep t ~attempt:k;
              attempt (k + 1) ~stale_budget
          | Ok resp -> Ok resp
          | Error (`Fresh msg | `Stale msg) ->
              if idempotent && k < t.retries then begin
                jitter_sleep t ~attempt:k;
                attempt (k + 1) ~stale_budget
              end
              else gateway 502 (Printf.sprintf "%s: %s" (Ring.node_id node) msg))
    in
    match take_idle t node with
    | None -> fresh_conn ()
    | Some fd -> (
        match once t node fd ~reused:true req with
        | Ok resp when resp.Http.status >= 500 && idempotent && k < t.retries ->
            jitter_sleep t ~attempt:k;
            attempt (k + 1) ~stale_budget
        | Ok resp -> Ok resp
        | Error (`Stale _) when stale_budget > 0 ->
            (* The shard closed this idle socket under us; not a real
               failure.  Drain the possibly-stale pool entries, then
               dial fresh. *)
            attempt k ~stale_budget:(stale_budget - 1)
        | Error (`Stale msg | `Fresh msg) ->
            if idempotent && k < t.retries then begin
              jitter_sleep t ~attempt:k;
              attempt (k + 1) ~stale_budget
            end
            else gateway 502 (Printf.sprintf "%s: %s" (Ring.node_id node) msg))
  in
  attempt 0 ~stale_budget:(t.max_idle + 1)

(* Hedged reads: fire at the primary, and if no response lands within
   [hedge_delay_s], fire the same request at the backup concurrently —
   first acceptable (non-5xx) response wins, the loser finishes in the
   background and only refreshes the pool.  Returns how many hedges
   were actually launched so the router can count them. *)
let hedged ?deadline_ms ?(hedge_delay_s = 0.05) t nodes (req : Http.request) =
  match nodes with
  | [] -> (Error { Http.status_hint = 503; message = "no backends" }, 0)
  | [ node ] -> (request ?deadline_ms ~idempotent:true t node req, 0)
  | primary :: backup :: _ ->
      let lock = Mutex.create () in
      let results = ref [] in
      let launched = ref 0 in
      let spawn node =
        incr launched;
        ignore
          (Thread.create
             (fun () ->
               let r = request ?deadline_ms ~idempotent:true t node req in
               Mutex.lock lock;
               results := r :: !results;
               Mutex.unlock lock)
             ())
      in
      let acceptable = function
        | Ok resp -> resp.Http.status < 500
        | Error _ -> false
      in
      spawn primary;
      let started = Timer.now_s () in
      let hedged_already = ref false in
      let rec await () =
        let snapshot, n_launched =
          Mutex.lock lock;
          let s = !results and n = !launched in
          Mutex.unlock lock;
          (s, n)
        in
        match List.find_opt acceptable snapshot with
        | Some r -> (r, n_launched - 1)
        | None ->
            if List.length snapshot >= n_launched && !hedged_already then
              (* Everyone answered, none acceptably: surface the first
                 (primary-most) outcome. *)
              ((match List.rev snapshot with r :: _ -> r | [] -> assert false),
               n_launched - 1)
            else begin
              if
                (not !hedged_already)
                && (Timer.now_s () -. started >= hedge_delay_s
                    || List.length snapshot >= n_launched)
              then begin
                hedged_already := true;
                spawn backup
              end;
              Thread.delay 0.002;
              await ()
            end
      in
      await ()
