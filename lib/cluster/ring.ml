(* Rendezvous (highest-random-weight) hashing of workload names onto
   backends.  Every router computes the same owner from the same
   backend list with no coordination, and removing a node only moves
   the keys that node owned — the property that keeps a workload's
   store, curve artifacts and coalescing on one shard across router
   restarts and config reloads. *)

type node = { host : string; port : int }

let node_id n = Printf.sprintf "%s:%d" n.host n.port

type t = { nodes : node array }

let compare_nodes a b = compare (node_id a) (node_id b)

let make nodes =
  let sorted = List.sort_uniq compare_nodes nodes in
  if sorted = [] then invalid_arg "Ring.make: empty backend list";
  { nodes = Array.of_list sorted }

let nodes t = Array.to_list t.nodes

let size t = Array.length t.nodes

(* The rendezvous score of (node, key): the first 8 bytes of
   md5(node_id NUL key) as an unsigned 64-bit integer.  md5 (the
   stdlib's Digest) keeps the scores stable across processes and OCaml
   versions — Hashtbl.hash makes no such promise. *)
let score node key =
  let d = Digest.string (node_id node ^ "\x00" ^ key) in
  let b i = Int64.of_int (Char.code d.[i]) in
  let rec fold acc i =
    if i = 8 then acc else fold Int64.(logor (shift_left acc 8) (b i)) (i + 1)
  in
  fold 0L 0

let order t key =
  let scored =
    Array.map (fun n -> (score n key, n)) t.nodes |> Array.to_list
  in
  List.sort
    (fun (sa, na) (sb, nb) ->
      match Int64.unsigned_compare sb sa with
      | 0 -> compare_nodes na nb
      | c -> c)
    scored
  |> List.map snd

let owner t key = List.hd (order t key)

let host_ok h =
  h <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> true
         | _ -> false)
       h

let parse_node s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host_ok host -> Some { host; port = p }
      | _ -> None)

let parse_nodes s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let nodes = List.filter_map parse_node parts in
  if List.length nodes = List.length parts && nodes <> [] then Some (make nodes)
  else None
