(** Rendezvous (highest-random-weight) hashing of routing keys onto
    backend shards.

    Every router instance computes the same owner for a key from the
    same backend list with no coordination, and removing a backend
    moves only the keys it owned — so a workload's journal, curve
    artifacts and request coalescing stay on one shard across router
    restarts, and a shard loss degrades only that shard's keys.
    Scores come from md5 (stable across processes), not
    [Hashtbl.hash]. *)

type node = { host : string; port : int }

val node_id : node -> string
(** ["host:port"] — the label used in metrics and the ring order. *)

type t

val make : node list -> t
(** Deduplicates and canonically orders the backends.
    @raise Invalid_argument on an empty list. *)

val nodes : t -> node list
(** The backends, in canonical (id-sorted) order. *)

val size : t -> int

val owner : t -> string -> node
(** The key's owning shard — the head of {!order}. *)

val order : t -> string -> node list
(** All backends by descending rendezvous score for [key]: the owner
    first, then the failover sequence.  Deterministic for a given
    (backends, key) pair. *)

val parse_node : string -> node option
(** ["host:port"] — [None] on malformed input. *)

val parse_nodes : string -> t option
(** Comma-separated ["host:port"] list (the [--route-to] flag).
    [None] if any element is malformed or the list is empty. *)
