(* The routing tier that turns N bccd shards into one service.

   Workload names are rendezvous-hashed onto shards (Ring), so a
   workload's journal, curve artifacts and request coalescing always
   land on the same shard.  The stateless solve family is routed to
   the key's owner for cache locality but can be served by any shard
   (the solver is deterministic), so those requests fail over along
   the ring order and may be hedged.  Store state is single-homed:
   reads of a down owner's workloads and all mutations answer 503 +
   retry-after rather than forking state onto a backup.

   Health is a per-shard up/down state machine driven by a background
   /healthz probe loop and by forward-time failures (a connect failure
   marks the shard suspect immediately; the next probe settles it).

   Every forwarding attempt passes the ["cluster.forward"] fault point,
   so the failover path is testable without killing processes. *)

module Http = Bcc_server.Http
module Json = Bcc_server.Json
module Metrics = Bcc_server.Metrics
module Fault = Bcc_robust.Fault
module Admission = Bcc_sched.Admission
module Timer = Bcc_util.Timer

let fault_point = "cluster.forward"

type shard_state = {
  mutable up : bool;
  mutable consecutive_fails : int;
}

type t = {
  ring : Ring.t;
  client : Client.t;
  metrics : Metrics.t;
  admission : Admission.t;
  hedge_delay_s : float;
  down_after : int;  (* consecutive failures before Up -> Down *)
  probe_interval_s : float;
  health_lock : Mutex.t;
  health : (string, shard_state) Hashtbl.t;
  stop : bool Atomic.t;
  mutable probe_thread : Thread.t option;
}

(* --- health state machine --- *)

let shard_state t node =
  let id = Ring.node_id node in
  match Hashtbl.find_opt t.health id with
  | Some s -> s
  | None ->
      let s = { up = true; consecutive_fails = 0 } in
      Hashtbl.replace t.health id s;
      s

let set_up_gauge t node up =
  Metrics.set t.metrics "bcc_cluster_shard_up"
    ~labels:[ ("shard", Ring.node_id node) ]
    ~help:"1 when the shard passes health probes, 0 when it is down."
    (if up then 1.0 else 0.0)

let note_result t node ~ok =
  Mutex.lock t.health_lock;
  let s = shard_state t node in
  let changed =
    if ok then begin
      let was = s.up in
      s.consecutive_fails <- 0;
      s.up <- true;
      not was
    end
    else begin
      s.consecutive_fails <- s.consecutive_fails + 1;
      if s.up && s.consecutive_fails >= t.down_after then begin
        s.up <- false;
        true
      end
      else false
    end
  in
  let up_now = s.up in
  Mutex.unlock t.health_lock;
  if changed then set_up_gauge t node up_now

let is_up t node =
  Mutex.lock t.health_lock;
  let up = (shard_state t node).up in
  Mutex.unlock t.health_lock;
  up

let probe t node =
  let req =
    {
      Http.meth = "GET";
      path = "/healthz";
      query = [];
      headers = [];
      body = "";
    }
  in
  match Client.request ~idempotent:true t.client node req with
  | Ok resp -> note_result t node ~ok:(resp.Http.status = 200)
  | Error _ -> note_result t node ~ok:false

let probe_loop t =
  while not (Atomic.get t.stop) do
    List.iter (fun node -> probe t node) (Ring.nodes t.ring);
    (* Small sleep slices keep shutdown prompt. *)
    let slept = ref 0.0 in
    while (not (Atomic.get t.stop)) && !slept < t.probe_interval_s do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done

let create ?(hedge_delay_s = 0.05) ?(down_after = 2) ?(probe_interval_s = 0.5)
    ?(tenant_depth = 64) ?(tenant_weights = []) ?client ~metrics ring =
  let client =
    match client with Some c -> c | None -> Client.create ~timeout_s:30.0 ()
  in
  let t =
    {
      ring;
      client;
      metrics;
      admission = Admission.create ~weights:tenant_weights ~depth:tenant_depth ();
      hedge_delay_s;
      down_after = max 1 down_after;
      probe_interval_s = Float.max 0.05 probe_interval_s;
      health_lock = Mutex.create ();
      health = Hashtbl.create 8;
      stop = Atomic.make false;
      probe_thread = None;
    }
  in
  List.iter (fun n -> set_up_gauge t n true) (Ring.nodes ring);
  t

let start_probes t =
  if t.probe_thread = None then
    t.probe_thread <- Some (Thread.create probe_loop t)

let stop t =
  Atomic.set t.stop true;
  (match t.probe_thread with Some th -> Thread.join th | None -> ());
  t.probe_thread <- None;
  Client.close_idle t.client

let ring t = t.ring
let client t = t.client
let admission t = t.admission

(* --- request classification --- *)

type route =
  | Local  (* health, metrics, debug: every node answers for itself *)
  | Stateless of string  (* deterministic compute: any shard can serve *)
  | Sticky_read of string  (* store read: only the owner has the state *)
  | Mutation of string  (* store write: owner only, never failed over *)
  | Scatter  (* GET /workloads: union over every up shard *)

let routing_key_of_body body =
  let b = String.trim body in
  if b <> "" && b.[0] = '{' then
    match Json.of_string b with
    | Ok j -> (
        match Option.bind (Json.member "instance" j) Json.get_string with
        | Some name -> "n:" ^ name
        | None -> "i:" ^ Digest.to_hex (Digest.string body))
    | Error _ -> "i:" ^ Digest.to_hex (Digest.string body)
  else "i:" ^ Digest.to_hex (Digest.string body)

let classify (req : Http.request) =
  match (req.Http.meth, String.split_on_char '/' req.Http.path) with
  | "POST", [ ""; ("solve" | "gmc3" | "ecc") ] ->
      Stateless (routing_key_of_body req.Http.body)
  | "GET", [ ""; "instances" ] -> Stateless "n:/instances"
  | "GET", [ ""; "workloads" ] -> Scatter
  | "GET", [ ""; "workloads"; name ] when name <> "" -> Sticky_read name
  | "GET", [ ""; "workloads"; name; "solution" ] when name <> "" ->
      Sticky_read name
  | "PUT", [ ""; "workloads"; name ] when name <> "" -> Mutation name
  | "POST", [ ""; "workloads"; name; ("delta" | "solve") ] when name <> "" ->
      Mutation name
  | _ -> Local

(* --- forwarding --- *)

let count_forward t node ~outcome =
  Metrics.inc t.metrics "bcc_cluster_forwards_total"
    ~labels:[ ("shard", Ring.node_id node); ("outcome", outcome) ]
    ~help:"Forwarding attempts by target shard and outcome."

let count_rejected t reason =
  Metrics.inc t.metrics "bcc_cluster_rejected_total"
    ~labels:[ ("reason", reason) ]
    ~help:"Requests the router refused without forwarding."

let retry_after_headers t =
  [ ("retry-after", string_of_int (max 1 (int_of_float (ceil t.probe_interval_s)))) ]

let deadline_ms_of (req : Http.request) =
  match Http.query_param req "timeout_ms" with
  | Some s -> (
      match float_of_string_opt s with
      | Some ms when Float.is_finite ms && ms > 0.0 -> Some ms
      | _ -> None)
  | None -> None

let shard_header node = ("x-bcc-shard", Ring.node_id node)

(* Hop-by-hop headers and the shard's copy of the trace id must not
   leak into the router's own response (write_response re-frames the
   body and the router stamps its own trace header). *)
let sanitize (resp : Http.response) =
  let hop = [ "connection"; "content-length"; "x-bcc-trace-id" ] in
  {
    resp with
    Http.headers =
      List.filter
        (fun (k, _) -> not (List.mem (String.lowercase_ascii k) hop))
        resp.Http.headers;
  }

(* One attempt at one shard.  The fault point stands in for a dead or
   unreachable shard; an injected throw is an attempt failure, so an
   armed ["cluster.forward"] exercises exactly the failover path a
   SIGKILL would. *)
let attempt t node ~idempotent ~deadline_ms (req : Http.request) =
  match
    Fault.hit fault_point;
    Client.request ?deadline_ms ~idempotent t.client node req
  with
  | exception Fault.Injected _ ->
      count_forward t node ~outcome:"injected";
      note_result t node ~ok:false;
      Error { Http.status_hint = 502; message = "injected fault: " ^ fault_point }
  | Ok resp ->
      count_forward t node ~outcome:"ok";
      note_result t node ~ok:true;
      let resp = sanitize resp in
      Ok { resp with Http.headers = shard_header node :: resp.Http.headers }
  | Error e ->
      count_forward t node ~outcome:"error";
      note_result t node ~ok:false;
      Error e

(* Stateless compute: owner first for curve-cache locality, every other
   shard is a valid fallback (deterministic solver — identical bytes
   from any of them).  GETs additionally hedge onto the first backup
   when the primary is slow. *)
let forward_stateless t key (req : Http.request) =
  let deadline_ms = deadline_ms_of req in
  let nodes = Ring.order t.ring key in
  let up_nodes = List.filter (is_up t) nodes in
  let candidates = if up_nodes = [] then nodes else up_nodes in
  if req.Http.meth = "GET" && List.length candidates > 1 then begin
    match
      Fault.hit fault_point;
      Client.hedged ?deadline_ms ~hedge_delay_s:t.hedge_delay_s t.client
        candidates req
    with
    | exception Fault.Injected _ ->
        count_forward t (List.hd candidates) ~outcome:"injected";
        Http.error_response ~headers:(retry_after_headers t) 503
          ("injected fault: " ^ fault_point)
    | Ok resp, hedges ->
        if hedges > 0 then
          Metrics.inc t.metrics "bcc_cluster_hedges_total"
            ~help:"Hedge requests launched for slow idempotent reads.";
        count_forward t (List.hd candidates) ~outcome:"ok";
        sanitize resp
    | Error { Http.status_hint; message }, _ ->
        count_forward t (List.hd candidates) ~outcome:"error";
        Http.error_response status_hint message
  end
  else
    let rec try_nodes = function
      | [] ->
          Http.error_response ~headers:(retry_after_headers t) 503
            "no shard available"
      | node :: rest -> (
          match attempt t node ~idempotent:true ~deadline_ms req with
          | Ok resp -> resp
          | Error { Http.status_hint; message } ->
              if rest = [] then Http.error_response status_hint message
              else try_nodes rest)
    in
    try_nodes candidates

(* Store state is single-homed: only the owner can answer.  A down
   owner gets 503 + retry-after (the client retries once the shard
   recovers) — never a silent failover that would read stale state or
   fork the journal. *)
let forward_sticky t key ~mutation (req : Http.request) =
  let deadline_ms = deadline_ms_of req in
  let owner = Ring.owner t.ring key in
  if not (is_up t owner) then begin
    count_forward t owner ~outcome:"down";
    count_rejected t (if mutation then "owner_down_mutation" else "owner_down_read");
    Http.error_response ~headers:(retry_after_headers t) 503
      (Printf.sprintf "shard %s owning %S is down, retry shortly"
         (Ring.node_id owner) key)
  end
  else
    match attempt t owner ~idempotent:(not mutation) ~deadline_ms req with
    | Ok resp -> resp
    | Error { Http.status_hint = _; message } ->
        Http.error_response ~headers:(retry_after_headers t) 503
          (Printf.sprintf "shard %s owning %S is unreachable (%s), retry shortly"
             (Ring.node_id owner) key message)

(* GET /workloads is the union of every shard's listing. *)
let forward_scatter t (req : Http.request) =
  let deadline_ms = deadline_ms_of req in
  let rows =
    List.concat_map
      (fun node ->
        if not (is_up t node) then []
        else
          match attempt t node ~idempotent:true ~deadline_ms req with
          | Ok resp when resp.Http.status = 200 -> (
              match Json.of_string resp.Http.body with
              | Ok j -> (
                  match Option.bind (Json.member "workloads" j) Json.get_list with
                  | Some l -> l
                  | None -> [])
              | Error _ -> [])
          | Ok _ | Error _ -> [])
      (Ring.nodes t.ring)
  in
  Http.json_response 200 (Json.Obj [ ("workloads", Json.List rows) ])

let tenant_of (req : Http.request) =
  let nonempty = function Some "" | None -> None | Some s -> Some s in
  let from_body () =
    let b = String.trim req.Http.body in
    if b = "" || b.[0] <> '{' then None
    else
      match Json.of_string b with
      | Ok j -> nonempty (Option.bind (Json.member "tenant" j) Json.get_string)
      | Error _ -> None
  in
  match nonempty (Http.query_param req "tenant") with
  | Some t -> t
  | None -> (
      match nonempty (Http.header req "x-bcc-tenant") with
      | Some t -> t
      | None -> ( match from_body () with Some t -> t | None -> "default"))

let forward t (req : Http.request) =
  match classify req with
  | Local -> None
  | route ->
      let tenant = tenant_of req in
      let run () =
        match route with
        | Local -> assert false
        | Stateless key -> forward_stateless t key req
        | Sticky_read key -> forward_sticky t key ~mutation:false req
        | Mutation key -> forward_sticky t key ~mutation:true req
        | Scatter -> forward_scatter t req
      in
      Some
        (match Admission.with_slot t.admission ~tenant run with
        | Some resp -> resp
        | None ->
            count_rejected t "tenant_inflight_full";
            Http.error_response
              ~headers:[ ("retry-after", "1") ]
              429
              (Printf.sprintf "tenant %S has too many forwards in flight" tenant))
