(** The routing tier that turns N bccd shards into one service.

    Rendezvous hashing ({!Ring}) pins each workload to an owning shard,
    so its journal, curve artifacts and request coalescing never split.
    Request classes get different policies:

    - {b Stateless compute} ([POST /solve], [/gmc3], [/ecc], and
      [GET /instances]): the solver is deterministic, so any shard
      returns identical bytes.  Routed to the key's owner for curve
      cache locality, failed over along the ring order when shards are
      down, and (for GETs) hedged onto the first backup when the
      primary is slow.
    - {b Store reads} ([GET /workloads/:name], [.../solution]): state is
      single-homed on the owner; a down owner answers 503 +
      [retry-after] rather than a misleading 404 from a backup.
    - {b Mutations} ([PUT /workloads/:name], [POST .../delta],
      [.../solve]): owner only, never retried past the first write and
      never failed over — replaying or re-homing a mutation could
      double-apply a delta or fork the journal.
    - {b Scatter} ([GET /workloads]): the union of every up shard's
      listing.
    - Everything else ([/healthz], [/metrics], [/debug/*], ...) is
      served locally by the node that received it.

    Shard health is a per-shard up/down state machine fed by a
    background [/healthz] probe loop and by forward-time failures.
    Every forwarding attempt passes the {!fault_point} fault point so
    failover is testable without killing processes.  Forwards are
    admission-controlled per tenant ({!Bcc_sched.Admission}); a tenant
    over its in-flight budget gets 429 + [retry-after].

    Metrics (into the server registry): [bcc_cluster_forwards_total]
    {[shard],[outcome]}, [bcc_cluster_hedges_total],
    [bcc_cluster_rejected_total]{[reason]}, and the
    [bcc_cluster_shard_up]{[shard]} gauge. *)

type t

val fault_point : string
(** ["cluster.forward"] — armed via [BCC_FAULTS], a throw stands in for
    a dead or unreachable shard on each forwarding attempt. *)

val create :
  ?hedge_delay_s:float ->
  ?down_after:int ->
  ?probe_interval_s:float ->
  ?tenant_depth:int ->
  ?tenant_weights:(string * int) list ->
  ?client:Client.t ->
  metrics:Bcc_server.Metrics.t ->
  Ring.t ->
  t
(** Defaults: 50 ms hedge delay, down after 2 consecutive probe
    failures, 0.5 s probe interval, 64 in-flight forwards per tenant
    weight unit.  Probing does not start until {!start_probes}. *)

val start_probes : t -> unit
(** Start the background health-probe thread (idempotent). *)

val stop : t -> unit
(** Stop probing and close pooled connections. *)

val ring : t -> Ring.t
val client : t -> Client.t

val admission : t -> Bcc_sched.Admission.t
(** The per-tenant in-flight limiter behind {!forward} (tests). *)

val forward : t -> Bcc_server.Http.request -> Bcc_server.Http.response option
(** The {!Bcc_server.Server} [forward] hook: [None] for requests the
    receiving node should handle locally, [Some resp] for requests
    routed to (an)other shard(s).  Routed responses carry an
    [x-bcc-shard] header naming the shard that answered. *)

val is_up : t -> Ring.node -> bool
(** Current health verdict for [node] (tests and /debug). *)

val probe : t -> Ring.node -> unit
(** One synchronous health probe of [node] (tests; the background loop
    calls this). *)
