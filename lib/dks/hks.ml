module Graph = Bcc_graph.Graph
module Heap = Bcc_util.Heap
module Engine = Bcc_engine.Engine

type instance = { g : Graph.t; mult : int array; k : int; total : int }

let make ?mult g ~k =
  let n = Graph.n g in
  let mult = match mult with Some m -> Array.copy m | None -> Array.make n 1 in
  if Array.length mult <> n then invalid_arg "Hks.make: multiplicity length mismatch";
  Array.iter (fun m -> if m <= 0 then invalid_arg "Hks.make: non-positive multiplicity") mult;
  let total = Array.fold_left ( + ) 0 mult in
  { g; mult; k = max k 0; total }

let graph t = t.g
let multiplicities t = Array.copy t.mult
let k t = t.k
let total_copies t = t.total

type selection = int array

let copies sel = Array.fold_left ( + ) 0 sel

let value t sel =
  let acc = ref 0.0 in
  Graph.iter_edges t.g (fun u v w ->
      if sel.(u) > 0 && sel.(v) > 0 then
        acc :=
          !acc
          +. w
             *. (float_of_int sel.(u) /. float_of_int t.mult.(u))
             *. (float_of_int sel.(v) /. float_of_int t.mult.(v)));
  !acc

let feasible t sel =
  Array.length sel = Graph.n t.g
  && copies sel <= t.k
  && Array.for_all (fun ok -> ok) (Array.mapi (fun v s -> s >= 0 && s <= t.mult.(v)) sel)

(* Per-copy weight of the edge (u, v). *)
let pcw t u v w = w /. (float_of_int t.mult.(u) *. float_of_int t.mult.(v))

(* Per-copy weighted degree of [v] w.r.t. the selection [sel]. *)
let degree_into t sel v =
  Graph.fold_neighbors t.g v (fun acc u w -> acc +. (pcw t u v w *. float_of_int sel.(u))) 0.0

let peel t =
  let n = Graph.n t.g in
  let sel = Array.copy t.mult in
  let total = ref t.total in
  if !total <= t.k then sel
  else begin
    let heap = Heap.create n in
    for v = 0 to n - 1 do
      Heap.insert heap v (degree_into t sel v)
    done;
    while !total > t.k do
      match Heap.pop heap with
      | None -> total := t.k (* unreachable: heap tracks all nodes with copies *)
      | Some (v, d) ->
          sel.(v) <- sel.(v) - 1;
          decr total;
          Graph.iter_neighbors t.g v (fun u w ->
              if Heap.mem heap u then Heap.add_to heap u (-.pcw t u v w));
          (* [v]'s own per-copy degree is unaffected by dropping its copy
             (no self loops), so reinsert it at the same priority. *)
          if sel.(v) > 0 then Heap.insert heap v d
    done;
    sel
  end

let greedy_add t =
  let n = Graph.n t.g in
  let sel = Array.make n 0 in
  if t.k = 0 || n = 0 then sel
  else if t.k >= t.total then Array.copy t.mult
  else begin
    let remaining = ref t.k in
    let heap = Heap.create ~max:true n in
    let add_copy v =
      sel.(v) <- sel.(v) + 1;
      decr remaining;
      Graph.iter_neighbors t.g v (fun u w ->
          if Heap.mem heap u then Heap.add_to heap u (pcw t u v w))
    in
    for v = 0 to n - 1 do
      Heap.insert heap v 0.0
    done;
    (* Seed with the endpoints of the edge that is densest per copy. *)
    let best_edge = ref None in
    Graph.iter_edges t.g (fun u v w ->
        let d = pcw t u v w in
        match !best_edge with
        | Some (_, _, d') when d' >= d -> ()
        | _ -> best_edge := Some (u, v, d));
    (match !best_edge with
    | Some (u, v, _) when t.k >= 2 ->
        add_copy u;
        add_copy v
    | _ -> ());
    while !remaining > 0 do
      match Heap.pop heap with
      | None -> remaining := 0
      | Some (v, gain) ->
          if sel.(v) < t.mult.(v) then begin
            add_copy v;
            (* Adding a copy of [v] leaves [v]'s own marginal gain
               unchanged, so it can go straight back. *)
            if sel.(v) < t.mult.(v) then Heap.insert heap v gain
          end
    done;
    sel
  end

let spectral ?(iters = 60) t =
  let n = Graph.n t.g in
  let sel = Array.make n 0 in
  if t.k = 0 || n = 0 then sel
  else begin
    (* Power iteration on M x = (sum_u w(u,v)/mult(v) x_u) — the blown-up
       adjacency collapsed over interchangeable copies. *)
    let x = Array.make n (1.0 /. float_of_int n) in
    let y = Array.make n 0.0 in
    for _ = 1 to iters do
      Array.fill y 0 n 0.0;
      Graph.iter_edges t.g (fun u v w ->
          y.(v) <- y.(v) +. (w /. float_of_int t.mult.(v) *. x.(u));
          y.(u) <- y.(u) +. (w /. float_of_int t.mult.(u) *. x.(v)));
      let norm = sqrt (Array.fold_left (fun acc z -> acc +. (z *. z)) 0.0 y) in
      if norm > 0.0 then Array.iteri (fun i z -> x.(i) <- z /. norm) y
    done;
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare x.(b) x.(a)) order;
    let remaining = ref t.k in
    Array.iter
      (fun v ->
        if !remaining > 0 then begin
          let take = min t.mult.(v) !remaining in
          sel.(v) <- take;
          remaining := !remaining - take
        end)
      order;
    sel
  end

let local_search ?(max_rounds = 200) t sel0 =
  let n = Graph.n t.g in
  let sel = Array.copy sel0 in
  if n = 0 then sel
  else begin
    let deg = Array.init n (fun v -> degree_into t sel v) in
    let apply_delta v delta =
      sel.(v) <- sel.(v) + delta;
      Graph.iter_neighbors t.g v (fun u w ->
          deg.(u) <- deg.(u) +. (float_of_int delta *. pcw t u v w))
    in
    let improved = ref true in
    let rounds = ref 0 in
    while !improved && !rounds < max_rounds do
      Bcc_robust.Deadline.poll ();
      Bcc_robust.Fault.hit "hks.iter";
      improved := false;
      incr rounds;
      (* Cheapest selected copy to give up. *)
      let v_min = ref (-1) in
      for v = 0 to n - 1 do
        if sel.(v) > 0 && (!v_min < 0 || deg.(v) < deg.(!v_min)) then v_min := v
      done;
      if !v_min >= 0 then begin
        let v = !v_min in
        (* Best copy to take instead (correcting for the edge to [v]). *)
        let best_u = ref (-1) in
        let best_gain = ref neg_infinity in
        for u = 0 to n - 1 do
          if u <> v && sel.(u) < t.mult.(u) then begin
            let correction =
              match Graph.edge_weight t.g u v with Some w -> pcw t u v w | None -> 0.0
            in
            let gain = deg.(u) -. correction in
            if gain > !best_gain then begin
              best_gain := gain;
              best_u := u
            end
          end
        done;
        if !best_u >= 0 && !best_gain > deg.(v) +. 1e-12 then begin
          apply_delta v (-1);
          apply_delta !best_u 1;
          improved := true
        end
      end
    done;
    sel
  end

(* The heuristic arm portfolio, raced through the execution engine.
   Arms share [t] read-only and build their own selections, so they are
   safe on the [Domains] backend; ranking is by value with ties going to
   the earlier arm, exactly what the old sequential fold kept. *)
let solve t =
  let arm label f =
    Engine.Task.make ~label ~score:(value t) (fun _rng -> local_search t (f t))
  in
  let tasks =
    [ arm "hks.peel" peel; arm "hks.greedy" greedy_add; arm "hks.spectral" spectral ]
  in
  match Engine.Portfolio.best (Engine.default_pool ()) tasks with
  | Some r -> r.Engine.Portfolio.value
  | None -> Array.make (Graph.n t.g) 0
