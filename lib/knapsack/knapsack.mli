(** 0/1 knapsack solvers.

    The paper shows [BCC(l=1)] is exactly the Knapsack problem
    (Theorem 3.1) and the [BCC(1)] subproblem of the general algorithm is
    solved through it (Observation 4.3).  Knapsack admits an FPTAS
    (Theorem 2.3), so this subproblem never limits the quality of
    [A^BCC].

    All solvers take non-negative float values and weights.  Items of
    weight 0 and positive value are always selected; items of weight
    above the budget are never selected. *)

type solution = { value : float; weight : float; items : int list }
(** [items] are indices into the input arrays, ascending. *)

val greedy : values:float array -> weights:float array -> budget:float -> solution
(** Density-ordered greedy, returning the better of the greedy fill and
    the single best item — the classic 1/2-approximation. *)

val exact_int :
  ?deadline:Bcc_robust.Deadline.t ->
  values:float array ->
  weights:int array ->
  budget:int ->
  unit ->
  solution
(** Exact dynamic program over integer weights, O(n * budget) time and
    O(n * budget / 8) bytes for choice reconstruction.  [deadline]
    (default {!Bcc_robust.Deadline.none}) is checked once per item row.
    @raise Invalid_argument on a negative weight or budget.
    @raise Bcc_robust.Deadline.Expired past [deadline]. *)

val fptas :
  epsilon:float -> values:float array -> weights:float array -> budget:float -> solution
(** The classic value-scaling FPTAS (Theorem 2.3's [(1+epsilon)]
    guarantee): values are floored onto a grid of [epsilon * vmax / n],
    then an exact minimum-weight-per-value DP runs on the scaled
    instance.  Returned value is at least [(1 - epsilon)] times the
    optimum; always budget-feasible.
    @raise Invalid_argument if [epsilon <= 0]. *)

val branch_and_bound : values:float array -> weights:float array -> budget:float -> solution
(** Exact best-first search with the fractional (Dantzig) upper bound.
    Exponential in the worst case — intended for small instances and as
    a test oracle. *)

val solve :
  ?grid:int ->
  ?deadline:Bcc_robust.Deadline.t ->
  values:float array ->
  weights:float array ->
  float ->
  solution
(** [solve ~values ~weights budget] — near-optimal dispatcher used by [A^BCC]: rounds weights up onto a
    grid of [grid] (default 10_000) budget ticks, runs the exact DP on
    the rounded instance (shrinking the grid first if [n * grid] would
    be too large), and returns the better of that and {!greedy}.
    Rounding weights {e up} keeps every returned solution feasible for
    the original instance; the loss is bounded by one grid tick per
    item, mirroring the epsilon-rounding step of Section 4.1. *)
