module Trace = Bcc_obs.Trace

type solution = { value : float; weight : float; items : int list }

let check_inputs values weights =
  if Array.length values <> Array.length weights then
    invalid_arg "Knapsack: values and weights must have equal length"

let total_of values weights items =
  List.fold_left
    (fun (v, w) i -> (v +. values.(i), w +. weights.(i)))
    (0.0, 0.0) items

let make_solution values weights items =
  let items = List.sort_uniq compare items in
  let value, weight = total_of values weights items in
  { value; weight; items }

let greedy ~values ~weights ~budget =
  check_inputs values weights;
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  let density i =
    if weights.(i) <= 0.0 then infinity else values.(i) /. weights.(i)
  in
  Array.sort (fun a b -> compare (density b) (density a)) order;
  let remaining = ref budget in
  let chosen = ref [] in
  Array.iter
    (fun i ->
      if values.(i) > 0.0 && weights.(i) <= !remaining then begin
        remaining := !remaining -. weights.(i);
        chosen := i :: !chosen
      end)
    order;
  let greedy_sol = make_solution values weights !chosen in
  (* Best single item fallback completes the 1/2-approximation bound. *)
  let best_single = ref None in
  for i = 0 to n - 1 do
    if weights.(i) <= budget then
      match !best_single with
      | Some j when values.(j) >= values.(i) -> ()
      | _ -> best_single := Some i
  done;
  match !best_single with
  | Some i when values.(i) > greedy_sol.value -> make_solution values weights [ i ]
  | _ -> greedy_sol

let exact_int ?(deadline = Bcc_robust.Deadline.none) ~values ~weights ~budget () =
  check_inputs values (Array.map float_of_int weights);
  if budget < 0 then invalid_arg "Knapsack.exact_int: negative budget";
  Array.iter (fun w -> if w < 0 then invalid_arg "Knapsack.exact_int: negative weight") weights;
  let n = Array.length values in
  let width = budget + 1 in
  let dp = Array.make width 0.0 in
  (* One bit per (item, residual budget) pair records whether the item is
     taken at that budget during the backward reconstruction. *)
  let bits = Bytes.make (((n * width) + 7) / 8) '\000' in
  let set_bit i b =
    let k = (i * width) + b in
    let byte = Bytes.get_uint8 bits (k lsr 3) in
    Bytes.set_uint8 bits (k lsr 3) (byte lor (1 lsl (k land 7)))
  in
  let get_bit i b =
    let k = (i * width) + b in
    Bytes.get_uint8 bits (k lsr 3) land (1 lsl (k land 7)) <> 0
  in
  for i = 0 to n - 1 do
    (* The DP rows are the only super-linear work in this module; one
       explicit check per item keeps cancellation latency bounded
       without touching the inner loop. *)
    Bcc_robust.Deadline.check deadline;
    let w = weights.(i) and v = values.(i) in
    if v > 0.0 && w <= budget then
      for b = budget downto w do
        let candidate = dp.(b - w) +. v in
        if candidate > dp.(b) then begin
          dp.(b) <- candidate;
          set_bit i b
        end
      done
  done;
  let items = ref [] in
  let b = ref budget in
  for i = n - 1 downto 0 do
    if get_bit i !b then begin
      items := i :: !items;
      b := !b - weights.(i)
    end
  done;
  let values_f = values and weights_f = Array.map float_of_int weights in
  make_solution values_f weights_f !items

let fptas ~epsilon ~values ~weights ~budget =
  check_inputs values weights;
  if epsilon <= 0.0 then invalid_arg "Knapsack.fptas: epsilon must be positive";
  let n = Array.length values in
  let eligible = Array.init n (fun i -> weights.(i) <= budget && values.(i) > 0.0) in
  let vmax = Array.fold_left max 0.0 (Array.mapi (fun i v -> if eligible.(i) then v else 0.0) values) in
  if vmax <= 0.0 then make_solution values weights []
  else begin
    let k = epsilon *. vmax /. float_of_int (max n 1) in
    let scaled = Array.mapi (fun i v -> if eligible.(i) then int_of_float (v /. k) else 0) values in
    let total = Array.fold_left ( + ) 0 scaled in
    (* dp.(j) = minimum weight achieving scaled value exactly j. *)
    let dp = Array.make (total + 1) infinity in
    dp.(0) <- 0.0;
    let width = total + 1 in
    let bits = Bytes.make (((n * width) + 7) / 8) '\000' in
    let set_bit i j =
      let kbit = (i * width) + j in
      Bytes.set_uint8 bits (kbit lsr 3)
        (Bytes.get_uint8 bits (kbit lsr 3) lor (1 lsl (kbit land 7)))
    in
    let get_bit i j =
      let kbit = (i * width) + j in
      Bytes.get_uint8 bits (kbit lsr 3) land (1 lsl (kbit land 7)) <> 0
    in
    for i = 0 to n - 1 do
      if scaled.(i) > 0 then
        for j = total downto scaled.(i) do
          let cand = dp.(j - scaled.(i)) +. weights.(i) in
          if cand < dp.(j) then begin
            dp.(j) <- cand;
            set_bit i j
          end
        done
    done;
    let best = ref 0 in
    for j = 0 to total do
      if dp.(j) <= budget +. 1e-9 then best := j
    done;
    let items = ref [] in
    let j = ref !best in
    for i = n - 1 downto 0 do
      if !j > 0 && get_bit i !j then begin
        items := i :: !items;
        j := !j - scaled.(i)
      end
    done;
    make_solution values weights !items
  end

let branch_and_bound ~values ~weights ~budget =
  check_inputs values weights;
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  let density i = if weights.(i) <= 0.0 then infinity else values.(i) /. weights.(i) in
  Array.sort (fun a b -> compare (density b) (density a)) order;
  let v = Array.map (fun i -> values.(i)) order in
  let w = Array.map (fun i -> weights.(i)) order in
  (* Dantzig bound: fill greedily in density order, last item fractional. *)
  let fractional_bound start cap =
    let rec go i cap acc =
      if i >= n || cap <= 0.0 then acc
      else if w.(i) <= cap then go (i + 1) (cap -. w.(i)) (acc +. v.(i))
      else if w.(i) > 0.0 then acc +. (v.(i) *. cap /. w.(i))
      else go (i + 1) cap (acc +. v.(i))
    in
    go start cap 0.0
  in
  let best_value = ref 0.0 in
  let best_items = ref [] in
  let rec dfs i cap acc taken =
    if acc > !best_value then begin
      best_value := acc;
      best_items := taken
    end;
    if i < n && acc +. fractional_bound i cap > !best_value +. 1e-12 then begin
      if w.(i) <= cap then dfs (i + 1) (cap -. w.(i)) (acc +. v.(i)) (order.(i) :: taken);
      dfs (i + 1) cap acc taken
    end
  in
  dfs 0 budget 0.0 [];
  make_solution values weights !best_items

let solve ?(grid = 10_000) ?(deadline = Bcc_robust.Deadline.none) ~values ~weights budget =
  Trace.with_span ~name:"knapsack" @@ fun sp ->
  check_inputs values weights;
  (* Explicit deadline threading from the solve context: the DP rows
     are the only super-linear work here, so one check per item keeps
     cancellation latency bounded without touching the inner loop. *)
  Bcc_robust.Deadline.check deadline;
  let n = Array.length values in
  if Trace.recording sp then Trace.add_attr sp "items" (Trace.Int n);
  let sol =
    if budget <= 0.0 || n = 0 then
      make_solution values weights
        (List.filter (fun i -> weights.(i) <= 0.0 && values.(i) > 0.0)
           (List.init n (fun i -> i)))
    else begin
      let greedy_sol = greedy ~values ~weights ~budget in
      (* Keep the DP table below ~2e8 cells. *)
      let grid = max 1 (min grid (200_000_000 / max n 1)) in
      let integral x = Float.is_integer x && x >= 0.0 && x <= 1e9 in
      let dp_sol =
        if integral budget && budget <= float_of_int grid && Array.for_all integral weights
        then begin
          (* Exact: integer weights fit the table directly, no rounding
             loss (all the paper's datasets use integer costs). *)
          if Trace.recording sp then Trace.add_attr sp "dp" (Trace.Str "exact");
          exact_int ~deadline ~values
            ~weights:(Array.map int_of_float weights)
            ~budget:(int_of_float budget) ()
        end
        else begin
          let tick = budget /. float_of_int grid in
          if Trace.recording sp then begin
            Trace.add_attr sp "dp" (Trace.Str "gridded");
            Trace.add_attr sp "grid" (Trace.Int grid)
          end;
          let rounded = Array.map (fun w -> int_of_float (ceil (max w 0.0 /. tick))) weights in
          exact_int ~deadline ~values ~weights:rounded ~budget:grid ()
        end
      in
      (* Recompute the true weight; rounding up guarantees feasibility. *)
      let sol = make_solution values weights dp_sol.items in
      if sol.value >= greedy_sol.value then sol else greedy_sol
    end
  in
  if Trace.recording sp then begin
    Trace.add_attr sp "picked" (Trace.Int (List.length sol.items));
    Trace.add_attr sp "value" (Trace.Float sol.value)
  end;
  sol
