type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  headers : (string * string) list;
  body : string;
}

let status_reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | c -> if c < 400 then "OK" else "Error"

let response ?(content_type = "text/plain; charset=utf-8") ?(headers = []) status
    body =
  { status; reason = status_reason status; headers = ("content-type", content_type) :: headers; body }

let json_response ?headers status json =
  response ~content_type:"application/json" ?headers status (Json.to_string json ^ "\n")

let error_response ?headers status msg =
  json_response ?headers status (Json.Obj [ ("error", Json.Str msg) ])

let header (req : request) name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let query_param (req : request) name = List.assoc_opt name req.query

(* %XX and '+' decoding for query strings. *)
let url_decode s =
  let buf = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char buf ' '
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | Some h, Some l ->
            Buffer.add_char buf (Char.chr ((h lsl 4) lor l));
            i := !i + 2
        | _ -> Buffer.add_char buf '%')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (url_decode kv, "")
             | Some i ->
                 Some
                   ( url_decode (String.sub kv 0 i),
                     url_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let parse_target target =
  match String.index_opt target '?' with
  | None -> (url_decode target, [])
  | Some i ->
      ( url_decode (String.sub target 0 i),
        parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

(* Errors carry the HTTP status the caller should answer with. *)
type error = { status_hint : int; message : string }

let err status_hint message = Error { status_hint; message }

let read_request ?(max_header = 16 * 1024) ?(max_body = 16 * 1024 * 1024) fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  (* Returns the offset just past "\r\n\r\n" (or "\n\n"), or None. *)
  let find_header_end () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec go i =
      if i + 1 >= n then None
      else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i + 2)
      else if
        i + 3 < n && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
        && s.[i + 3] = '\n'
      then Some (i + 4)
      else go (i + 1)
    in
    go 0
  in
  let read_more () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n -> Buffer.add_subbytes buf chunk 0 n; `Ok
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Timeout
    | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)
  in
  let rec fill_headers () =
    match find_header_end () with
    | Some stop -> Ok stop
    | None ->
        if Buffer.length buf > max_header then err 400 "header section too large"
        else (
          match read_more () with
          | `Ok -> fill_headers ()
          | `Eof ->
              if Buffer.length buf = 0 then err 400 "empty request"
              else err 400 "connection closed mid-header"
          | `Timeout -> err 408 "timed out reading request"
          | `Error m -> err 400 ("read error: " ^ m))
  in
  match fill_headers () with
  | Error _ as e -> e
  | Ok header_end -> (
      let raw = Buffer.contents buf in
      let head = String.sub raw 0 header_end in
      let lines =
        String.split_on_char '\n' head
        |> List.map (fun l ->
               let n = String.length l in
               if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
        |> List.filter (fun l -> l <> "")
      in
      match lines with
      | [] -> err 400 "missing request line"
      | request_line :: header_lines -> (
          let parts =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' request_line)
          in
          match parts with
          | [ meth; target; version ]
            when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
              let headers =
                List.filter_map
                  (fun l ->
                    match String.index_opt l ':' with
                    | None -> None
                    | Some i ->
                        Some
                          ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                            String.trim
                              (String.sub l (i + 1) (String.length l - i - 1)) ))
                  header_lines
              in
              let content_length =
                match List.assoc_opt "content-length" headers with
                | None -> Ok 0
                | Some s -> (
                    match int_of_string_opt (String.trim s) with
                    | Some n when n >= 0 -> Ok n
                    | _ -> err 400 "bad content-length")
              in
              match content_length with
              | Error _ as e -> e
              | Ok len ->
                  if len > max_body then err 413 "body too large"
                  else begin
                    let rec fill_body () =
                      if Buffer.length buf - header_end >= len then Ok ()
                      else
                        match read_more () with
                        | `Ok -> fill_body ()
                        | `Eof -> err 400 "connection closed mid-body"
                        | `Timeout -> err 408 "timed out reading body"
                        | `Error m -> err 400 ("read error: " ^ m)
                    in
                    match fill_body () with
                    | Error _ as e -> e
                    | Ok () ->
                        let raw = Buffer.contents buf in
                        let body = String.sub raw header_end len in
                        let path, query = parse_target target in
                        Ok
                          {
                            meth = String.uppercase_ascii meth;
                            path;
                            query;
                            headers;
                            body;
                          }
                  end)
          | _ -> err 400 ("malformed request line: " ^ request_line)))

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let write_response ?(keep_alive = false) fd resp =
  let buf = Buffer.create (String.length resp.body + 256) in
  Printf.bprintf buf "HTTP/1.1 %d %s\r\n" resp.status resp.reason;
  List.iter (fun (k, v) -> Printf.bprintf buf "%s: %s\r\n" k v) resp.headers;
  Printf.bprintf buf "content-length: %d\r\n" (String.length resp.body);
  Buffer.add_string buf
    (if keep_alive then "connection: keep-alive\r\n\r\n" else "connection: close\r\n\r\n");
  Buffer.add_string buf resp.body;
  try write_all fd (Buffer.to_bytes buf)
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    (* Client went away; nothing useful to do. *)
    ()

let wants_keep_alive (req : request) =
  match List.assoc_opt "connection" req.headers with
  | Some v -> String.lowercase_ascii (String.trim v) = "keep-alive"
  | None -> false

(* --- client side: the same codec, pointed the other way.  The cluster
   router's connection pool reuses the exact request/response framing
   the server speaks, so a forwarded request is byte-equivalent to a
   direct one. --- *)

let url_encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' | '/' ->
          Buffer.add_char buf c
      | c -> Printf.bprintf buf "%%%02X" (Char.code c))
    s;
  Buffer.contents buf

let write_request ?(keep_alive = true) fd (req : request) =
  let target =
    match req.query with
    | [] -> url_encode req.path
    | q ->
        url_encode req.path ^ "?"
        ^ String.concat "&"
            (List.map (fun (k, v) -> url_encode k ^ "=" ^ url_encode v) q)
  in
  let buf = Buffer.create (String.length req.body + 256) in
  Printf.bprintf buf "%s %s HTTP/1.1\r\n" (String.uppercase_ascii req.meth) target;
  List.iter
    (fun (k, v) ->
      if k <> "content-length" && k <> "connection" then
        Printf.bprintf buf "%s: %s\r\n" k v)
    req.headers;
  Printf.bprintf buf "content-length: %d\r\n" (String.length req.body);
  Buffer.add_string buf
    (if keep_alive then "connection: keep-alive\r\n\r\n" else "connection: close\r\n\r\n");
  Buffer.add_string buf req.body;
  write_all fd (Buffer.to_bytes buf)

let read_response ?(max_header = 16 * 1024) ?(max_body = 64 * 1024 * 1024) fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let find_header_end () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec go i =
      if i + 1 >= n then None
      else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i + 2)
      else if
        i + 3 < n && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
        && s.[i + 3] = '\n'
      then Some (i + 4)
      else go (i + 1)
    in
    go 0
  in
  let read_more () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n -> Buffer.add_subbytes buf chunk 0 n; `Ok
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Timeout
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Ok
    | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)
  in
  let rec fill_headers () =
    match find_header_end () with
    | Some stop -> Ok stop
    | None ->
        if Buffer.length buf > max_header then err 502 "response headers too large"
        else (
          match read_more () with
          | `Ok -> fill_headers ()
          | `Eof ->
              if Buffer.length buf = 0 then err 502 "connection closed before response"
              else err 502 "connection closed mid-header"
          | `Timeout -> err 504 "timed out reading response"
          | `Error m -> err 502 ("read error: " ^ m))
  in
  match fill_headers () with
  | Error _ as e -> e
  | Ok header_end -> (
      let raw = Buffer.contents buf in
      let head = String.sub raw 0 header_end in
      let lines =
        String.split_on_char '\n' head
        |> List.map (fun l ->
               let n = String.length l in
               if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
        |> List.filter (fun l -> l <> "")
      in
      match lines with
      | [] -> err 502 "missing status line"
      | status_line :: header_lines -> (
          match
            (try Scanf.sscanf status_line "HTTP/1.%_d %d" (fun s -> Some s)
             with Scanf.Scan_failure _ | End_of_file | Failure _ -> None)
          with
          | None -> err 502 ("malformed status line: " ^ status_line)
          | Some status -> (
              let headers =
                List.filter_map
                  (fun l ->
                    match String.index_opt l ':' with
                    | None -> None
                    | Some i ->
                        Some
                          ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                            String.trim
                              (String.sub l (i + 1) (String.length l - i - 1)) ))
                  header_lines
              in
              let content_length =
                match List.assoc_opt "content-length" headers with
                | None -> Ok 0
                | Some s -> (
                    match int_of_string_opt (String.trim s) with
                    | Some n when n >= 0 -> Ok n
                    | _ -> err 502 "bad content-length")
              in
              match content_length with
              | Error _ as e -> e
              | Ok len ->
                  if len > max_body then err 502 "response body too large"
                  else begin
                    let rec fill_body () =
                      if Buffer.length buf - header_end >= len then Ok ()
                      else
                        match read_more () with
                        | `Ok -> fill_body ()
                        | `Eof -> err 502 "connection closed mid-body"
                        | `Timeout -> err 504 "timed out reading response body"
                        | `Error m -> err 502 ("read error: " ^ m)
                    in
                    match fill_body () with
                    | Error _ as e -> e
                    | Ok () ->
                        let raw = Buffer.contents buf in
                        Ok
                          {
                            status;
                            reason = status_reason status;
                            headers;
                            body = String.sub raw header_end len;
                          }
                  end)))
