(* A tiny Prometheus-style registry: families keyed by metric name, each
   holding one series per label set.  Everything is mutex-protected; the
   hot-path cost is one lock + Hashtbl probe per update. *)

type histogram = {
  buckets : float array;  (* upper bounds, ascending; +Inf implicit *)
  counts : int array;  (* per-bucket (non-cumulative) counts *)
  mutable sum : float;
  mutable count : int;
}

type value = Counter of float ref | Gauge of float ref | Histogram of histogram

type family = {
  kind : string;  (* "counter" | "gauge" | "histogram" *)
  help : string;
  series : (string (* rendered label set *), value) Hashtbl.t;
}

type t = { families : (string, family) Hashtbl.t; lock : Mutex.t }

let create () = { families = Hashtbl.create 32; lock = Mutex.create () }

let default_buckets =
  [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 |]

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      (* Sort by key so [("a",x);("b",y)] and [("b",y);("a",x)] name the
         same series — label order must not split a series in two. *)
      let labels =
        List.sort (fun (a, _) (b, _) -> String.compare a b) labels
      in
      let pairs =
        List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
      in
      "{" ^ String.concat "," pairs ^ "}"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let family t ~kind ~help name =
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s registered as %s, used as %s" name f.kind kind);
      f
  | None ->
      let f = { kind; help; series = Hashtbl.create 4 } in
      Hashtbl.replace t.families name f;
      f

let series fam labels make =
  let key = render_labels labels in
  match Hashtbl.find_opt fam.series key with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace fam.series key v;
      v

let inc ?(labels = []) ?(by = 1.0) ?(help = "") t name =
  locked t (fun () ->
      let fam = family t ~kind:"counter" ~help name in
      match series fam labels (fun () -> Counter (ref 0.0)) with
      | Counter r -> r := !r +. by
      | _ -> assert false)

let set ?(labels = []) ?(help = "") t name x =
  locked t (fun () ->
      let fam = family t ~kind:"gauge" ~help name in
      match series fam labels (fun () -> Gauge (ref 0.0)) with
      | Gauge r -> r := x
      | _ -> assert false)

let observe ?(labels = []) ?(buckets = default_buckets) ?(help = "") t name x =
  locked t (fun () ->
      let fam = family t ~kind:"histogram" ~help name in
      let h =
        match
          series fam labels (fun () ->
              Histogram
                {
                  buckets;
                  counts = Array.make (Array.length buckets) 0;
                  sum = 0.0;
                  count = 0;
                })
        with
        | Histogram h -> h
        | _ -> assert false
      in
      (match
         Array.find_index (fun ub -> x <= ub) h.buckets
       with
      | Some i -> h.counts.(i) <- h.counts.(i) + 1
      | None -> () (* lands only in the implicit +Inf bucket *));
      h.sum <- h.sum +. x;
      h.count <- h.count + 1)

(* Shared scalar lookup: absent family or series reads as 0, but a
   family of the wrong kind is a caller bug — same error as [family]. *)
let scalar_value ~kind ~extract labels t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.families name with
      | None -> 0.0
      | Some fam ->
          if fam.kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %s registered as %s, used as %s" name fam.kind
                 kind);
          (match Hashtbl.find_opt fam.series (render_labels labels) with
          | Some v -> extract v
          | None -> 0.0))

let counter_value ?(labels = []) t name =
  scalar_value ~kind:"counter"
    ~extract:(function Counter r -> !r | _ -> assert false)
    labels t name

let gauge_value ?(labels = []) t name =
  scalar_value ~kind:"gauge"
    ~extract:(function Gauge r -> !r | _ -> assert false)
    labels t name

let format_value x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

(* Labels rendered as "{a=\"b\"}" or ""; splice an extra le="..." pair
   into an existing rendered label set for histogram bucket lines. *)
let with_le rendered le =
  let le = Printf.sprintf "le=\"%s\"" le in
  if rendered = "" then "{" ^ le ^ "}"
  else
    String.sub rendered 0 (String.length rendered - 1) ^ "," ^ le ^ "}"

let render t =
  locked t (fun () ->
      let buf = Buffer.create 1024 in
      let names =
        Hashtbl.fold (fun name _ acc -> name :: acc) t.families []
        |> List.sort String.compare
      in
      List.iter
        (fun name ->
          let fam = Hashtbl.find t.families name in
          if fam.help <> "" then Printf.bprintf buf "# HELP %s %s\n" name fam.help;
          Printf.bprintf buf "# TYPE %s %s\n" name fam.kind;
          let keys =
            Hashtbl.fold (fun k _ acc -> k :: acc) fam.series []
            |> List.sort String.compare
          in
          List.iter
            (fun key ->
              match Hashtbl.find fam.series key with
              | Counter r | Gauge r ->
                  Printf.bprintf buf "%s%s %s\n" name key (format_value !r)
              | Histogram h ->
                  let cumulative = ref 0 in
                  Array.iteri
                    (fun i ub ->
                      cumulative := !cumulative + h.counts.(i);
                      Printf.bprintf buf "%s_bucket%s %d\n" name
                        (with_le key (format_value ub))
                        !cumulative)
                    h.buckets;
                  Printf.bprintf buf "%s_bucket%s %d\n" name (with_le key "+Inf")
                    h.count;
                  Printf.bprintf buf "%s_sum%s %s\n" name key (format_value h.sum);
                  Printf.bprintf buf "%s_count%s %d\n" name key h.count)
            keys)
        names;
      Buffer.contents buf)
