module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Gmc3 = Bcc_core.Gmc3
module Ecc = Bcc_core.Ecc
module Io = Bcc_data.Io
module Timer = Bcc_util.Timer
module Trace = Bcc_obs.Trace
module Stage = Bcc_obs.Stage
module Event = Bcc_obs.Event
module Progress = Bcc_obs.Progress
module Recorder = Bcc_obs.Recorder
module Engine = Bcc_engine.Engine
module Deadline = Bcc_robust.Deadline
module Fault = Bcc_robust.Fault
module Store = Bcc_store.Store
module Delta = Bcc_store.Delta
module Pipeline = Bcc_core.Pipeline
module Sched = Bcc_sched.Sched
module Curve_cache = Bcc_sched.Curve_cache

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  cache_entries : int;
  timeout_s : float;
  preload : (string * string) list;
  trace_spans : int;
  state_dir : string option;
  event_log : string option;  (* JSONL wide-event log, one line per event *)
  debug_dir : string option;  (* flight-recorder dumps of slow/degraded solves *)
  sched_concurrency : int;  (* concurrent solve batches; 0 = workers - 1 *)
  tenant_depth : int;  (* max queued solve requests per tenant *)
  tenant_weights : (string * int) list;  (* fair-share weights; default 1 *)
  curve_cache_mb : int;  (* byte budget of the shared curve cache *)
  forward : Http.request -> Http.response option;
      (* cluster hook, consulted before local handling: [Some resp]
         means another shard owns the request and [resp] is its (or the
         failover path's) answer.  The daemon wires Bcc_cluster.Router
         in here; [fun _ -> None] (the default) serves everything
         locally.  A function field rather than a Router value keeps
         lib/server free of a dependency cycle with lib/cluster. *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    workers = 0;
    queue_depth = 64;
    cache_entries = 256;
    timeout_s = 30.0;
    preload = [];
    trace_spans = 4096;
    state_dir = None;
    event_log = None;
    debug_dir = None;
    sched_concurrency = 0;
    tenant_depth = 32;
    tenant_weights = [];
    curve_cache_mb = 64;
    forward = (fun _ -> None);
  }

type loaded = { digest : string; inst : Instance.t }

type t = {
  cfg : config;
  sock : Unix.file_descr;
  actual_port : int;
  num_workers : int;
  pool : Engine.Pool.t;  (* connection handlers AND solver-internal portfolios *)
  pending : int Atomic.t;  (* accepted connections not yet picked up by a worker *)
  stop : bool Atomic.t;
  named : (string, loaded) Hashtbl.t;
  inst_cache : loaded Cache.t;  (* raw body digest -> parsed instance *)
  sol_cache : Json.t Cache.t;  (* canonical digest + endpoint + params -> result *)
  store : Store.t;  (* versioned workloads, durable under [state_dir] *)
  curve_cache : Curve_cache.t;  (* curve artifacts shared across workloads *)
  sched : Http.response Sched.t;  (* batch scheduler for solve traffic *)
  metrics : Metrics.t;
}

(* Content-addressed identity: the serialized instance minus its header
   comment, so the digest depends on budget/queries/costs but not on the
   (arbitrary) instance name — an inline body and a preloaded file with
   the same content share cache entries. *)
let canonical_digest inst =
  let s = Io.to_string inst in
  let body =
    match String.index_opt s '\n' with
    | Some i when String.length s > 0 && s.[0] = '#' ->
        String.sub s (i + 1) (String.length s - i - 1)
    | _ -> s
  in
  Digest.to_hex (Digest.string body)

let create cfg =
  let named = Hashtbl.create 8 in
  List.iter
    (fun (name, file) ->
      let inst = Io.load file in
      Hashtbl.replace named name { digest = canonical_digest inst; inst })
    cfg.preload;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port))
   with e -> (try Unix.close sock with _ -> ()); raise e);
  Unix.listen sock 128;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let num_workers =
    if cfg.workers > 0 then cfg.workers else Domain.recommended_domain_count ()
  in
  (* Always the [Domains] backend, even at one worker, so the accept loop
     stays responsive while a solve is in flight.  Installing it as the
     engine default makes solver-internal portfolios (QK/HkS/solver arms)
     run on the same domains as the connection handlers — a worker that
     opens a sub-portfolio drains it itself, so this cannot deadlock. *)
  let pool = Engine.Pool.domains ~jobs:num_workers in
  Engine.install_default pool;
  let curve_cache =
    Curve_cache.create ~max_bytes:(max 1 cfg.curve_cache_mb * 1024 * 1024) ()
  in
  (* Batch concurrency below the worker count keeps a worker available
     to feed (and coalesce into) the next batch while one runs; the
     wrapper is work-conserving, so blocked submitters execute the
     batches themselves. *)
  let sched =
    Sched.create
      ~weights:cfg.tenant_weights ~tenant_depth:cfg.tenant_depth
      ~concurrency:
        (if cfg.sched_concurrency > 0 then cfg.sched_concurrency
         else max 1 (num_workers - 1))
      ()
  in
  let t =
    {
      cfg;
      sock;
      actual_port;
      num_workers;
      pool;
      pending = Atomic.make 0;
      stop = Atomic.make false;
      named;
      inst_cache = Cache.create ~capacity:(max 1 cfg.cache_entries);
      sol_cache = Cache.create ~capacity:(max 1 cfg.cache_entries);
      store = Store.create ?dir:cfg.state_dir ~curve_cache ();
      curve_cache;
      sched;
      metrics = Metrics.create ();
    }
  in
  if cfg.trace_spans > 0 then begin
    Trace.set_tracing ~capacity:cfg.trace_spans true;
    Trace.set_profiling true;
    (* Solver stages run well below the default request-latency buckets;
       start at 10 µs. *)
    let stage_buckets = [| 1e-5; 1e-4; 1e-3; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 30.0 |] in
    Stage.set_observer (fun stage dt ->
        Metrics.observe t.metrics "bcc_stage_duration_seconds"
          ~labels:[ ("stage", stage) ] ~buckets:stage_buckets
          ~help:"Wall time per solver pipeline stage." dt)
  end;
  (* Wide-event telemetry rides the same switch as tracing: every
     request gets a correlation id, the solver's anytime progress stream
     lands in the event ring, and the flight recorder groups it per
     solve for [GET /debug/solves]. *)
  if cfg.trace_spans > 0 then begin
    Event.set_enabled ~capacity:(max 1024 cfg.trace_spans) true;
    Recorder.enable ();
    Recorder.set_debug_dir cfg.debug_dir;
    (match cfg.event_log with Some path -> Event.log_to_file path | None -> ());
    (* Metrics bridge: fold the progress stream into the Prometheus
       registry as it happens (counters here are event-driven, not the
       scrape-time delta-inc pattern — each event is seen exactly
       once). *)
    Event.add_sink ~name:"metrics" (fun e ->
        match e.Event.name with
        | "incumbent_update" ->
            Metrics.inc t.metrics "bcc_incumbent_improvements_total"
              ~help:"Incumbent updates emitted by the solver's anytime stream."
        | "solve_report" -> (
            match Progress.report_of_event e with
            | Some r ->
                Metrics.inc t.metrics "bcc_solve_rounds_total"
                  ~help:"Residual rounds run, summed over solves."
                  ~by:(float_of_int r.Progress.rounds);
                Metrics.set t.metrics "bcc_solve_utility_ratio"
                  ~help:
                    "Last solve's utility as a share of the instance's total \
                     utility."
                  r.Progress.utility_ratio
            | None -> ())
        | _ -> ())
  end;
  t

let port t = t.actual_port
let num_workers t = t.num_workers
let metrics t = t.metrics
let store t = t.store
let request_stop t = Atomic.set t.stop true

(* --- request handling --- *)

let prop_name inst p =
  match Instance.names inst with
  | Some tbl -> Symtab.name tbl p
  | None -> string_of_int p

let classifiers_json inst (sol : Solution.t) =
  Json.List
    (List.map
       (fun c ->
         Json.List
           (List.map (fun p -> Json.Str (prop_name inst p)) (Propset.to_list c)))
       sol.Solution.classifiers)

let solution_fields inst (sol : Solution.t) =
  [
    ("cost", Json.Num sol.Solution.cost);
    ("utility", Json.Num sol.Solution.utility);
    ("classifiers", classifiers_json inst sol);
    ("verified", Json.Bool (Solution.verify inst sol));
  ]

type endpoint = E_solve | E_gmc3 | E_ecc

let endpoint_name = function
  | E_solve -> "solve"
  | E_gmc3 -> "gmc3"
  | E_ecc -> "ecc"

(* Instance source + optional budget/target/timeout_ms from the body
   (raw instance text, or a JSON object) merged with
   ?budget=/?target=/?timeout_ms= query params (query wins, so a
   raw-text body can still be swept over budgets). *)
let parse_params (req : Http.request) =
  let body = req.Http.body in
  let trimmed = String.trim body in
  let from_body =
    if trimmed = "" then Error "empty body: send instance text or a JSON object"
    else if trimmed.[0] = '{' then
      match Json.of_string trimmed with
      | Error msg -> Error ("bad JSON body: " ^ msg)
      | Ok j -> (
          let field name get = Option.bind (Json.member name j) get in
          let name = field "instance" Json.get_string in
          let text = field "text" Json.get_string in
          let budget = field "budget" Json.get_num in
          let target = field "target" Json.get_num in
          let timeout_ms = field "timeout_ms" Json.get_num in
          match (name, text) with
          | Some n, None -> Ok (`Named n, budget, target, timeout_ms)
          | None, Some s -> Ok (`Inline s, budget, target, timeout_ms)
          | Some _, Some _ -> Error {|provide either "instance" or "text", not both|}
          | None, None -> Error {|JSON body needs an "instance" name or inline "text"|})
    else Ok (`Inline body, None, None, None)
  in
  match from_body with
  | Error _ as e -> e
  | Ok (src, budget, target, timeout_ms) -> (
      let num_param name fallback =
        match Http.query_param req name with
        | None -> Ok fallback
        | Some s -> (
            match float_of_string_opt s with
            | Some f when Float.is_finite f -> Ok (Some f)
            | _ -> Error (Printf.sprintf "bad ?%s=%s" name s))
      in
      match
        ( num_param "budget" budget,
          num_param "target" target,
          num_param "timeout_ms" timeout_ms )
      with
      | Ok budget, Ok target, Ok timeout_ms -> (
          match timeout_ms with
          | Some ms when not (Float.is_finite ms && ms > 0.0) ->
              Error "timeout_ms must be a positive number of milliseconds"
          | _ -> Ok (src, budget, target, timeout_ms))
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)

(* Cache lookups pass through the ["cache.get"] injection point; a
   lookup that faults is downgraded to a miss (plus an error counter) so
   a broken cache degrades throughput, never availability. *)
let cache_find t ~name cache key =
  match
    Fault.hit "cache.get";
    Cache.find cache key
  with
  | v -> v
  | exception Fault.Injected _ ->
      Metrics.inc t.metrics "bccd_cache_errors_total"
        ~labels:[ ("cache", name) ]
        ~help:"Cache lookups that failed (treated as misses).";
      None

let resolve_instance t src =
  match src with
  | `Named name -> (
      match Hashtbl.find_opt t.named name with
      | Some l -> Ok l
      | None -> Error (404, "unknown instance: " ^ name))
  | `Inline text -> (
      let raw_digest = Digest.to_hex (Digest.string text) in
      match cache_find t ~name:"instance" t.inst_cache raw_digest with
      | Some l ->
          Metrics.inc t.metrics "bccd_cache_hits_total"
            ~labels:[ ("cache", "instance") ];
          Ok l
      | None -> (
          Metrics.inc t.metrics "bccd_cache_misses_total"
            ~labels:[ ("cache", "instance") ];
          match Io.load_string ~name:("inline-" ^ String.sub raw_digest 0 8) text with
          | inst ->
              let l = { digest = canonical_digest inst; inst } in
              Cache.put t.inst_cache raw_digest l;
              Ok l
          | exception Failure msg -> Error (400, msg)))

(* Deadline propagation across cluster hops: the router forwards its
   remaining time budget as [X-Bcc-Deadline-Ms], so a shard never spends
   longer on a solve than the hop that asked for it is willing to wait.
   An explicit [timeout_ms] in the request still wins — the header is
   the cross-hop fallback. *)
let header_deadline_ms (req : Http.request) =
  match Http.header req "x-bcc-deadline-ms" with
  | None -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some ms when Float.is_finite ms && ms > 0.0 -> Some ms
      | _ -> None)

let handle_solve t ep req =
  match parse_params req with
  | Error msg -> Http.error_response 400 msg
  | Ok (src, budget, target, timeout_ms) -> (
      match resolve_instance t src with
      | Error (status, msg) -> Http.error_response status msg
      | Ok { digest; inst } -> (
          match (ep, target) with
          | E_gmc3, None -> Http.error_response 400 "gmc3 needs a \"target\" utility"
          | _ -> (
              let inst =
                match budget with
                | Some b when b >= 0.0 -> Instance.with_budget inst b
                | _ -> inst
              in
              let fmt_opt = function
                | None -> "-"
                | Some x -> Printf.sprintf "%.17g" x
              in
              let key =
                Printf.sprintf "%s|%s|b=%s|t=%s" digest (endpoint_name ep)
                  (fmt_opt budget) (fmt_opt target)
              in
              let deadline =
                match
                  (match timeout_ms with
                   | Some _ as ms -> ms
                   | None -> header_deadline_ms req)
                with
                | None -> Deadline.none
                | Some ms -> Deadline.of_timeout_ms ~label:"request" ms
              in
              let degraded = ref false in
              let compute () =
                let timer = Timer.start () in
                let fields =
                  match ep with
                  | E_solve ->
                      let r = Solver.solve_within ~deadline inst in
                      if r.Solver.degraded then degraded := true;
                      solution_fields inst r.Solver.solution
                  | E_gmc3 ->
                      (* GMC3/ECC inherit the deadline ambiently (their
                         inner solves degrade rather than raise); the
                         expired clock afterwards is what marks the
                         composite result degraded. *)
                      let r =
                        Deadline.with_current deadline @@ fun () ->
                        Gmc3.solve inst ~target:(Option.get target)
                      in
                      if Deadline.expired deadline then degraded := true;
                      solution_fields inst r.Gmc3.solution
                      @ [
                          ("reached", Json.Bool r.Gmc3.reached);
                          ("budget_used", Json.Num r.Gmc3.budget_used);
                        ]
                  | E_ecc ->
                      let sol =
                        Deadline.with_current deadline @@ fun () -> Ecc.solve inst
                      in
                      if Deadline.expired deadline then degraded := true;
                      solution_fields inst sol
                      @ [ ("ratio", Json.Num (Ecc.ratio_of sol)) ]
                in
                Metrics.observe t.metrics "bccd_solve_duration_seconds"
                  ~labels:[ ("endpoint", endpoint_name ep) ]
                  ~help:"Time spent computing uncached solves."
                  (Timer.elapsed_s timer);
                Json.Obj
                  (( "instance",
                     Json.Str
                       (match src with
                       | `Named n -> n
                       | `Inline _ -> Instance.name inst) )
                  :: ("digest", Json.Str digest)
                  :: ("budget", Json.Num (Instance.budget inst))
                  :: fields)
              in
              match
                match cache_find t ~name:"solution" t.sol_cache key with
                | Some json -> (json, true)
                | None ->
                    let json = compute () in
                    (* A degraded result is what the deadline allowed,
                       not the instance's answer — never memoize it. *)
                    if not !degraded then Cache.put t.sol_cache key json;
                    (json, false)
              with
              | json, was_hit ->
                  Metrics.inc t.metrics
                    (if was_hit then "bccd_cache_hits_total"
                     else "bccd_cache_misses_total")
                    ~labels:[ ("cache", "solution") ];
                  if !degraded then begin
                    Metrics.inc t.metrics "bcc_requests_degraded_total"
                      ~labels:[ ("endpoint", endpoint_name ep) ]
                      ~help:"Requests answered with a degraded (deadline-cut) solution."
                  end;
                  if (not (Deadline.is_none deadline)) && Deadline.expired deadline
                  then
                    Metrics.inc t.metrics "bcc_deadline_exceeded_total"
                      ~labels:[ ("endpoint", endpoint_name ep) ]
                      ~help:"Requests whose deadline expired during handling.";
                  let extra =
                    (if Deadline.is_none deadline then []
                     else [ ("degraded", Json.Bool !degraded) ])
                    @ [ ("cached", Json.Bool was_hit) ]
                  in
                  let json =
                    match json with
                    | Json.Obj fields -> Json.Obj (fields @ extra)
                    | j -> j
                  in
                  Http.json_response 200 json
              | exception Failure msg -> Http.error_response 400 msg)))

(* --- workload store endpoints --- *)

let info_json (i : Store.info) =
  Json.Obj
    ([
       ("name", Json.Str i.Store.name);
       ("epoch", Json.Num (float_of_int i.Store.epoch));
       ("budget", Json.Num i.Store.budget);
       ("queries", Json.Num (float_of_int i.Store.num_queries));
       ("journal_bytes", Json.Num (float_of_int i.Store.journal_bytes));
     ]
    @ (match i.Store.solved_epoch with
      | Some e -> [ ("solved_epoch", Json.Num (float_of_int e)) ]
      | None -> [])
    @
    match i.Store.warm_ratio with
    | Some r -> [ ("warm_ratio", Json.Num r) ]
    | None -> [])

let solved_json (s : Store.solved) =
  Json.Obj
    (("workload", Json.Str s.Store.info.Store.name)
    :: ("epoch", Json.Num (float_of_int s.Store.solved_at))
    :: ("budget", Json.Num (Instance.budget s.Store.instance))
    :: solution_fields s.Store.instance s.Store.solution
    @ [
        ("degraded", Json.Bool s.Store.degraded);
        ("warm", Json.Bool s.Store.warm);
        ("seed_utility", Json.Num s.Store.seed_utility);
        ("wall_s", Json.Num s.Store.wall_s);
      ]
    @
    if s.Store.components_total = 0 then []
    else
      [
        ("components_total", Json.Num (float_of_int s.Store.components_total));
        ("components_reused", Json.Num (float_of_int s.Store.components_reused));
      ])

let store_error = function
  | `Not_found -> Http.error_response 404 "no such workload (or it was never solved)"
  | `Bad msg -> Http.error_response 400 msg

let handle_workload_put t name req =
  let budget =
    match Http.query_param req "budget" with
    | None -> Ok None
    | Some s -> (
        match float_of_string_opt s with
        | Some b when Float.is_finite b && b >= 0.0 -> Ok (Some b)
        | _ -> Error ("bad ?budget=" ^ s))
  in
  let source =
    match Http.query_param req "format" with
    | None | Some "text" -> Ok (Store.Text req.Http.body)
    | Some "log" -> Ok (Store.Log req.Http.body)
    | Some f -> Error ("unknown ?format=" ^ f ^ " (use text or log)")
  in
  match (budget, source) with
  | Error msg, _ | _, Error msg -> Http.error_response 400 msg
  | Ok budget, Ok source -> (
      match Store.put t.store ~name ?budget source with
      | Ok info -> Http.json_response 200 (info_json info)
      | Error e -> store_error e)

let handle_workload_delta t name req =
  let ops =
    match Http.query_param req "format" with
    | None | Some "delta" -> (
        match Delta.parse req.Http.body with
        | ops -> Ok ops
        | exception Failure msg -> Error msg)
    | Some "log" -> (
        (* A raw log tail as a delta: each line becomes an [add] of its
           search count, the paper's drifting-utility feed. *)
        match Delta.of_log req.Http.body with
        | ops, _stats -> Ok ops
        | exception Failure msg -> Error msg)
    | Some f -> Error ("unknown ?format=" ^ f ^ " (use delta or log)")
  in
  match ops with
  | Error msg -> Http.error_response 400 msg
  | Ok ops -> (
      match Store.delta t.store ~name ops with
      | Ok info -> Http.json_response 200 (info_json info)
      | Error e -> store_error e)

let handle_workload_solve t name req =
  let flag param =
    match Http.query_param req param with
    | None | Some ("0" | "false" | "no") -> Ok false
    | Some ("1" | "true" | "yes") -> Ok true
    | Some s -> Error (Printf.sprintf "bad ?%s=%s" param s)
  in
  let cold = flag "cold" in
  let incremental = flag "incremental" in
  let deadline =
    match Http.query_param req "timeout_ms" with
    | None -> (
        match header_deadline_ms req with
        | Some ms -> Ok (Deadline.of_timeout_ms ~label:"request" ms)
        | None -> Ok Deadline.none)
    | Some s -> (
        match float_of_string_opt s with
        | Some ms when Float.is_finite ms && ms > 0.0 ->
            Ok (Deadline.of_timeout_ms ~label:"request" ms)
        | _ -> Error "timeout_ms must be a positive number of milliseconds")
  in
  match (cold, incremental, deadline) with
  | Error msg, _, _ | _, Error msg, _ | _, _, Error msg -> Http.error_response 400 msg
  | Ok cold, Ok incremental, Ok deadline -> (
      match Store.solve t.store ~name ~cold ~incremental ~deadline () with
      | Ok s ->
          Metrics.observe t.metrics "bccd_solve_duration_seconds"
            ~labels:[ ("endpoint", "workload") ]
            ~help:"Time spent computing uncached solves." s.Store.wall_s;
          if incremental then begin
            Metrics.inc t.metrics "bcc_resolve_components_total"
              ~by:(float_of_int s.Store.components_total)
              ~help:"Pipeline components staged by incremental re-solves.";
            Metrics.inc t.metrics "bcc_resolve_components_reused_total"
              ~by:(float_of_int s.Store.components_reused)
              ~help:"Pipeline component curves served from the artifact cache.";
            Metrics.observe t.metrics "bcc_resolve_wall_seconds"
              ~help:"Wall time of incremental (pipeline) re-solves." s.Store.wall_s
          end;
          if s.Store.degraded then
            Metrics.inc t.metrics "bcc_requests_degraded_total"
              ~labels:[ ("endpoint", "workload") ]
              ~help:"Requests answered with a degraded (deadline-cut) solution.";
          Http.json_response 200 (solved_json s)
      | Error e -> store_error e)

let handle_workload_solution t name =
  match Store.solution t.store name with
  | Ok s -> Http.json_response 200 (solved_json s)
  | Error e -> store_error e

let handle_workload_info t name =
  match Store.info t.store name with
  | Some i -> Http.json_response 200 (info_json i)
  | None -> store_error `Not_found

let handle_workloads_list t =
  Http.json_response 200
    (Json.Obj [ ("workloads", Json.List (List.map info_json (Store.list t.store))) ])

let handle_instances t =
  let entries =
    Hashtbl.fold
      (fun name { digest; inst } acc ->
        Json.Obj
          [
            ("name", Json.Str name);
            ("digest", Json.Str digest);
            ("budget", Json.Num (Instance.budget inst));
            ("queries", Json.Num (float_of_int (Instance.num_queries inst)));
            ("classifiers", Json.Num (float_of_int (Instance.num_classifiers inst)));
            ("properties", Json.Num (float_of_int (Instance.num_properties inst)));
          ]
        :: acc)
      t.named []
  in
  Http.json_response 200 (Json.Obj [ ("instances", Json.List entries) ])

let attr_json (v : Trace.value) =
  match v with
  | Trace.Bool b -> Json.Bool b
  | Trace.Int n -> Json.Num (float_of_int n)
  | Trace.Float x -> Json.Num x
  | Trace.Str s -> Json.Str s

let span_json (sp : Trace.span) children =
  Json.Obj
    ([
       ("name", Json.Str sp.Trace.name);
       ("id", Json.Num (float_of_int sp.Trace.id));
       ("tid", Json.Num (float_of_int sp.Trace.tid));
       ("start_s", Json.Num sp.Trace.start_s);
       ("duration_s", Json.Num (sp.Trace.end_s -. sp.Trace.start_s));
       ("attrs", Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) (Trace.ordered_attrs sp)));
     ]
    @ if children = [] then [] else [ ("children", Json.List children) ])

(* Last-N completed spans as a forest.  Children complete before their
   parents, so one chronological pass has every child's JSON built by
   the time its parent is reached. *)
let handle_trace req =
  let last =
    match Http.query_param req "last" with
    | None -> 512
    | Some s -> (
        match int_of_string_opt s with Some n when n > 0 -> n | _ -> 512)
  in
  let spans = Trace.spans ~last () in
  let present = Hashtbl.create 64 in
  List.iter (fun (sp : Trace.span) -> Hashtbl.replace present sp.Trace.id ()) spans;
  let children : (int, Json.t list) Hashtbl.t = Hashtbl.create 64 in
  let take id =
    match Hashtbl.find_opt children id with Some l -> List.rev l | None -> []
  in
  let roots = ref [] in
  List.iter
    (fun (sp : Trace.span) ->
      let j = span_json sp (take sp.Trace.id) in
      if Hashtbl.mem present sp.Trace.parent then
        Hashtbl.replace children sp.Trace.parent
          (j :: Option.value ~default:[] (Hashtbl.find_opt children sp.Trace.parent))
      else roots := j :: !roots)
    spans;
  Http.json_response 200
    (Json.Obj
       [
         ("enabled", Json.Bool (Trace.tracing ()));
         ("dropped", Json.Num (float_of_int (Trace.dropped ())));
         ("spans", Json.List (List.rev !roots));
       ])

let event_json (e : Event.t) =
  Json.Obj
    [
      ("ts_s", Json.Num e.Event.ts_s);
      ("name", Json.Str e.Event.name);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) e.Event.attrs));
    ]

(* One flight-recorder record.  The summary row carries enough to spot
   the interesting solve (wall time, degradation, final utility); the
   [?id=] detail adds the anytime curve, the raw events and the spans
   that overlapped the solve's window. *)
let solve_json ~detail (s : Recorder.solve) =
  let events = Recorder.events s in
  let report = List.find_map Progress.report_of_event events in
  let curve = Progress.curve events in
  let final_utility =
    match report with
    | Some r -> Some r.Progress.utility
    | None -> ( match List.rev curve with (_, u) :: _ -> Some u | [] -> None)
  in
  (* Incremental solves drop one [pipeline_reuse] event; surface its
     reuse accounting on the summary row. *)
  let reuse =
    List.find_map
      (fun (e : Event.t) ->
        if e.Event.name <> "pipeline_reuse" then None
        else
          match
            ( List.assoc_opt "components" e.Event.attrs,
              List.assoc_opt "reused" e.Event.attrs )
          with
          | Some (Event.Int total), Some (Event.Int reused) -> Some (total, reused)
          | _ -> None)
      events
  in
  Json.Obj
    ([
       ("id", Json.Str s.Recorder.corr);
       ("start_s", Json.Num s.Recorder.start_s);
       ("wall_s", Json.Num (s.Recorder.end_s -. s.Recorder.start_s));
       ("events", Json.Num (float_of_int s.Recorder.n_events));
       ("complete", Json.Bool s.Recorder.complete);
       ("degraded", Json.Bool s.Recorder.degraded);
     ]
    @ (match final_utility with
      | Some u -> [ ("final_utility", Json.Num u) ]
      | None -> [])
    @ (match reuse with
      | Some (total, reused) ->
          [
            ("components_total", Json.Num (float_of_int total));
            ("components_reused", Json.Num (float_of_int reused));
          ]
      | None -> [])
    @
    if not detail then []
    else
      [
        ( "curve",
          Json.List
            (List.map
               (fun (t, u) -> Json.Obj [ ("t", Json.Num t); ("u", Json.Num u) ])
               curve) );
        ("event_log", Json.List (List.map event_json events));
        ( "spans",
          Json.List
            (List.map (fun sp -> span_json sp []) s.Recorder.spans) );
      ])

let handle_solves req =
  match Http.query_param req "id" with
  | Some id -> (
      match Recorder.find id with
      | Some s -> Http.json_response 200 (solve_json ~detail:true s)
      | None -> Http.error_response 404 ("no recorded solve with id " ^ id))
  | None ->
      Http.json_response 200
        (Json.Obj
           [
             ("enabled", Json.Bool (Event.enabled ()));
             ("dumps", Json.Num (float_of_int (Recorder.dump_count ())));
             ( "solves",
               Json.List (List.map (solve_json ~detail:false) (Recorder.solves ())) );
           ])

let handle_sched_debug t =
  let ss = Sched.stats t.sched in
  let cs = Curve_cache.stats t.curve_cache in
  let tenant_json (ti : Sched.Core.tenant_info) =
    Json.Obj
      [
        ("tenant", Json.Str ti.Sched.Core.ti_tenant);
        ("weight", Json.Num (float_of_int ti.Sched.Core.ti_weight));
        ("deficit", Json.Num (float_of_int ti.Sched.Core.ti_deficit));
        ("queued_batches", Json.Num (float_of_int ti.Sched.Core.ti_queued_batches));
        ("queued_waiters", Json.Num (float_of_int ti.Sched.Core.ti_queued_waiters));
        ("dispatched", Json.Num (float_of_int ti.Sched.Core.ti_dispatched));
      ]
  in
  Http.json_response 200
    (Json.Obj
       [
         ("batches_total", Json.Num (float_of_int ss.Sched.batches_total));
         ("coalesced_total", Json.Num (float_of_int ss.Sched.coalesced_total));
         ("rejected_total", Json.Num (float_of_int ss.Sched.rejected_total));
         ("expired_total", Json.Num (float_of_int ss.Sched.expired_total));
         ("queued_batches", Json.Num (float_of_int ss.Sched.queued_batches));
         ("queued_waiters", Json.Num (float_of_int ss.Sched.queued_waiters));
         ("running", Json.Num (float_of_int ss.Sched.running));
         ("est_batch_s", Json.Num ss.Sched.est_batch_s);
         ("tenants", Json.List (List.map tenant_json ss.Sched.tenants));
         ( "curve_cache",
           Json.Obj
             [
               ("entries", Json.Num (float_of_int cs.Curve_cache.entries));
               ("bytes", Json.Num (float_of_int cs.Curve_cache.bytes));
               ("max_bytes", Json.Num (float_of_int cs.Curve_cache.max_bytes));
               ("hits", Json.Num (float_of_int cs.Curve_cache.hits));
               ("misses", Json.Num (float_of_int cs.Curve_cache.misses));
               ("insertions", Json.Num (float_of_int cs.Curve_cache.insertions));
               ("evictions", Json.Num (float_of_int cs.Curve_cache.evictions));
             ] );
       ])

let handle_metrics t =
  let cache_gauges name cache =
    Metrics.set t.metrics "bccd_cache_entries" ~labels:[ ("cache", name) ]
      ~help:"Live entries per cache."
      (float_of_int (Cache.length cache));
    Metrics.inc t.metrics "bccd_cache_evictions_total" ~labels:[ ("cache", name) ]
      ~by:(float_of_int (Cache.evictions cache)
          -. Metrics.counter_value t.metrics "bccd_cache_evictions_total"
               ~labels:[ ("cache", name) ])
  in
  cache_gauges "solution" t.sol_cache;
  cache_gauges "instance" t.inst_cache;
  Metrics.set t.metrics "bccd_workers" ~help:"Worker pool size."
    (float_of_int t.num_workers);
  Metrics.set t.metrics "bccd_uptime_seconds" ~help:"Process uptime."
    (Timer.now_s ());
  (* Execution-engine counters: process-wide atomics polled on scrape
     (the same delta-inc pattern as the cache eviction counter). *)
  let backend_name = function Engine.Seq -> "seq" | Engine.Domains -> "domains" in
  let outcome_name = function
    | `Ok -> "ok"
    | `Error -> "error"
    | `Cancelled -> "cancelled"
  in
  List.iter
    (fun ((b, o), n) ->
      let labels = [ ("backend", backend_name b); ("outcome", outcome_name o) ] in
      Metrics.inc t.metrics "bcc_engine_tasks_total" ~labels
        ~help:"Engine tasks completed, by backend and outcome."
        ~by:
          (float_of_int n
          -. Metrics.counter_value t.metrics "bcc_engine_tasks_total" ~labels))
    (Engine.task_counts ());
  Metrics.set t.metrics "bcc_engine_queue_depth"
    ~help:"Jobs and batch tickets waiting in the engine work queue."
    (float_of_int (Engine.Pool.queue_depth t.pool));
  (* Workload-store series: the commit counter is a store-wide total
     polled with the same delta-inc pattern; journal size and warm-start
     quality are per-workload gauges. *)
  Metrics.inc t.metrics "bcc_store_epochs_total"
    ~help:"Epoch-advancing workload commits (puts and deltas)."
    ~by:
      (float_of_int (Store.epochs_committed t.store)
      -. Metrics.counter_value t.metrics "bcc_store_epochs_total");
  Metrics.set t.metrics "bcc_store_replay_seconds"
    ~help:"Wall time the startup state-directory replay took."
    (Store.replay_seconds t.store);
  List.iter
    (fun (i : Store.info) ->
      Metrics.set t.metrics "bcc_store_journal_bytes"
        ~labels:[ ("workload", i.Store.name) ]
        ~help:"Journal bytes accumulated since the last compaction."
        (float_of_int i.Store.journal_bytes);
      match i.Store.warm_ratio with
      | Some r ->
          Metrics.set t.metrics "bcc_warm_start_utility_ratio"
            ~labels:[ ("workload", i.Store.name) ]
            ~help:
              "Share of the last warm solve's utility already covered by its \
               re-validated seed."
            r
      | None -> ())
    (Store.list t.store);
  (* Scheduler and shared-curve-cache series, polled with the same
     delta-inc pattern as the engine counters. *)
  let delta_inc name ?(labels = []) ?help live =
    Metrics.inc t.metrics name ~labels ?help
      ~by:(live -. Metrics.counter_value t.metrics name ~labels)
  in
  let ss = Sched.stats t.sched in
  delta_inc "bcc_sched_batches_total"
    ~help:"Solve batches dispatched by the batch scheduler."
    (float_of_int ss.Sched.batches_total);
  delta_inc "bcc_sched_coalesced_total"
    ~help:"Solve requests that joined an already-queued batch group."
    (float_of_int ss.Sched.coalesced_total);
  delta_inc "bcc_sched_rejected_total"
    ~help:"Solve requests refused by per-tenant admission."
    (float_of_int ss.Sched.rejected_total);
  delta_inc "bcc_sched_expired_total"
    ~help:"Queued solve requests whose deadline lapsed before dispatch."
    (float_of_int ss.Sched.expired_total);
  Metrics.set t.metrics "bcc_sched_queue_depth"
    ~help:"Solve batches waiting for dispatch."
    (float_of_int ss.Sched.queued_batches);
  Metrics.set t.metrics "bcc_sched_running"
    ~help:"Solve batches currently executing."
    (float_of_int ss.Sched.running);
  Metrics.set t.metrics "bcc_sched_batch_seconds_est"
    ~help:"EWMA of recent batch wall times (drives 429 retry-after)."
    ss.Sched.est_batch_s;
  List.iter
    (fun (ti : Sched.Core.tenant_info) ->
      let labels = [ ("tenant", ti.Sched.Core.ti_tenant) ] in
      delta_inc "bcc_sched_dispatched_total" ~labels
        ~help:"Batches dispatched, by tenant."
        (float_of_int ti.Sched.Core.ti_dispatched);
      Metrics.set t.metrics "bcc_sched_tenant_queued_waiters" ~labels
        ~help:"Waiters queued, by tenant."
        (float_of_int ti.Sched.Core.ti_queued_waiters))
    ss.Sched.tenants;
  let cs = Curve_cache.stats t.curve_cache in
  Metrics.set t.metrics "bcc_curve_cache_entries"
    ~help:"Curve artifacts resident in the shared cache."
    (float_of_int cs.Curve_cache.entries);
  Metrics.set t.metrics "bcc_curve_cache_bytes"
    ~help:"Bytes held by the shared curve cache."
    (float_of_int cs.Curve_cache.bytes);
  delta_inc "bcc_curve_cache_hits_total"
    ~help:"Curve-cache lookups served from a resident artifact."
    (float_of_int cs.Curve_cache.hits);
  delta_inc "bcc_curve_cache_misses_total"
    ~help:"Curve-cache lookups that missed."
    (float_of_int cs.Curve_cache.misses);
  delta_inc "bcc_curve_cache_insertions_total"
    ~help:"Curve artifacts inserted into the shared cache."
    (float_of_int cs.Curve_cache.insertions);
  delta_inc "bcc_curve_cache_evictions_total"
    ~help:"Curve artifacts evicted to stay within the byte budget."
    (float_of_int cs.Curve_cache.evictions);
  Http.response ~content_type:"text/plain; version=0.0.4; charset=utf-8" 200
    (Metrics.render t.metrics)

(* The workload routes are the one segment-parameterized family; the
   flat endpoints stay exact-match. *)
let handle_workloads t meth segs req =
  match (meth, segs) with
  | "GET", [] -> handle_workloads_list t
  | "PUT", [ name ] -> handle_workload_put t name req
  | "GET", [ name ] -> handle_workload_info t name
  | "POST", [ name; "delta" ] -> handle_workload_delta t name req
  | "POST", [ name; "solve" ] -> handle_workload_solve t name req
  | "GET", [ name; "solution" ] -> handle_workload_solution t name
  | _, [] -> Http.error_response 405 "use GET for /workloads"
  | _, [ _ ] -> Http.error_response 405 ("use PUT or GET for " ^ req.Http.path)
  | _, [ _; ("delta" | "solve") ] -> Http.error_response 405 ("use POST for " ^ req.Http.path)
  | _, [ _; "solution" ] -> Http.error_response 405 ("use GET for " ^ req.Http.path)
  | _ -> Http.error_response 404 ("no such endpoint: " ^ req.Http.path)

let handle_direct t (req : Http.request) =
  match (req.meth, req.path) with
  | "GET", "/healthz" -> Http.response 200 "ok\n"
  | "GET", "/metrics" -> handle_metrics t
  | "GET", "/instances" -> handle_instances t
  | "GET", "/debug/trace" -> handle_trace req
  | "GET", "/debug/solves" -> handle_solves req
  | "GET", "/debug/sched" -> handle_sched_debug t
  | "POST", "/solve" -> handle_solve t E_solve req
  | "POST", "/gmc3" -> handle_solve t E_gmc3 req
  | "POST", "/ecc" -> handle_solve t E_ecc req
  | meth, path
    when path = "/workloads"
         || String.length path > 11
            && String.sub path 0 11 = "/workloads/" ->
      let segs =
        match String.split_on_char '/' path with
        | "" :: "workloads" :: rest -> List.filter (fun s -> s <> "") rest
        | _ -> []
      in
      handle_workloads t meth segs req
  | _, ("/solve" | "/gmc3" | "/ecc") ->
      Http.error_response 405 ("use POST for " ^ req.path)
  | _, ("/healthz" | "/metrics" | "/instances" | "/debug/trace" | "/debug/solves"
       | "/debug/sched") ->
      Http.error_response 405 ("use GET for " ^ req.path)
  | _ -> Http.error_response 404 ("no such endpoint: " ^ req.path)

(* --- scheduled solve admission --- *)

(* Admission rejections (429/503), under both the legacy reason-labeled
   counter and the robustness-layer total asserted by the fault-matrix
   tests. *)
let count_rejected t reason =
  Metrics.inc t.metrics "bccd_rejected_total"
    ~labels:[ ("reason", reason) ]
    ~help:"Connections refused or abandoned.";
  Metrics.inc t.metrics "bcc_requests_rejected_total"
    ~labels:[ ("reason", reason) ]
    ~help:"Requests rejected before solving (backpressure, shutdown)."

(* Tenant identity for fair-share admission: ?tenant= query param, then
   the [x-bcc-tenant] header, then a "tenant" field of a JSON body;
   anonymous traffic shares the "default" tenant. *)
let tenant_of (req : Http.request) =
  let nonempty = function Some "" | None -> None | Some s -> Some s in
  let from_body () =
    let b = String.trim req.Http.body in
    if b = "" || b.[0] <> '{' then None
    else
      match Json.of_string b with
      | Ok j -> nonempty (Option.bind (Json.member "tenant" j) Json.get_string)
      | Error _ -> None
  in
  match nonempty (Http.query_param req "tenant") with
  | Some t -> t
  | None -> (
      match nonempty (Http.header req "x-bcc-tenant") with
      | Some t -> t
      | None -> ( match from_body () with Some t -> t | None -> "default"))

(* The request's timeout, as an absolute queue deadline: a request that
   cannot finish in time should be pruned from the queue, not solved. *)
let request_deadline_s (req : Http.request) =
  let from_query =
    Option.bind (Http.query_param req "timeout_ms") float_of_string_opt
  in
  let from_body () =
    let b = String.trim req.Http.body in
    if b = "" || b.[0] <> '{' then None
    else
      match Json.of_string b with
      | Ok j -> Option.bind (Json.member "timeout_ms" j) Json.get_num
      | Error _ -> None
  in
  let explicit =
    match from_query with Some ms -> Some ms | None -> from_body ()
  in
  match
    (match explicit with Some _ -> explicit | None -> header_deadline_ms req)
  with
  | Some ms when Float.is_finite ms && ms > 0.0 ->
      Some (Timer.now_s () +. (ms /. 1000.))
  | _ -> None

let default_options_fp = lazy (Pipeline.options_fingerprint Solver.default_options)

(* Coalescing identity.  [key] is the artifact-sharing identity — same
   instance content (or same workload at the same epoch) under the same
   solver options; distinct budgets on one key belong in one batch,
   priced off the same component curves.  [subkey] adds everything that
   changes the response bytes, so only bit-identical requests share a
   computed result.  [None] routes around the scheduler (the direct
   path produces the 400/404). *)
let sched_keys t (req : Http.request) =
  if req.Http.meth <> "POST" then None
  else
    let optfp = Lazy.force default_options_fp in
    let fmt_opt = function None -> "-" | Some x -> Printf.sprintf "%.17g" x in
    match req.Http.path with
    | "/solve" | "/gmc3" | "/ecc" -> (
        match parse_params req with
        | Error _ -> None
        | Ok (src, budget, target, timeout_ms) ->
            let src_id =
              match src with
              | `Named n -> "n:" ^ n
              | `Inline text -> "i:" ^ Digest.to_hex (Digest.string text)
            in
            let key = Printf.sprintf "s|%s|%s|%s" req.Http.path src_id optfp in
            let subkey =
              Printf.sprintf "%s|b=%s|t=%s|to=%s" key (fmt_opt budget)
                (fmt_opt target) (fmt_opt timeout_ms)
            in
            Some (key, subkey))
    | path -> (
        match String.split_on_char '/' path with
        | [ ""; "workloads"; name; "solve" ] -> (
            match Store.info t.store name with
            | None -> None
            | Some i ->
                let q name = Option.value ~default:"" (Http.query_param req name) in
                let key =
                  Printf.sprintf "w|%s|e=%d|%s|c=%s|i=%s" name i.Store.epoch
                    optfp (q "cold") (q "incremental")
                in
                Some (key, Printf.sprintf "%s|to=%s" key (q "timeout_ms")))
        | _ -> None)

(* Solve traffic goes through the batch scheduler: concurrent identical
   requests coalesce into one computation, tenants get weighted fair
   share, and a full tenant queue answers 429 with a clamped
   retry-after.  Everything else (health, metrics, workload CRUD) stays
   on the direct path. *)
let handle t (req : Http.request) =
  match t.cfg.forward req with
  | Some resp -> resp
  | None -> (
  match sched_keys t req with
  | None -> handle_direct t req
  | Some (key, subkey) -> (
      let tenant = tenant_of req in
      let deadline_s = request_deadline_s req in
      let corr = Event.current_corr () in
      let run () =
        (* May run on another submitter's thread: re-install the
           originating request's correlation scope. *)
        let direct () =
          try handle_direct t req with
          | Failure msg -> Http.error_response 400 msg
          | e -> Http.error_response 500 (Printexc.to_string e)
        in
        if corr = "" then direct () else Event.with_corr corr direct
      in
      match
        Sched.submit t.sched ~tenant ?deadline_s
          ?corr:(if corr = "" then None else Some corr)
          ~key ~subkey run
      with
      | Ok resp -> resp
      | Error (Sched.Busy { retry_after_s }) ->
          count_rejected t "tenant_queue_full";
          Http.error_response 429
            ~headers:[ ("retry-after", string_of_int retry_after_s) ]
            (Printf.sprintf "tenant %S queue full, retry in %ds" tenant
               retry_after_s)
      | Error Sched.Expired ->
          count_rejected t "sched_deadline";
          Http.error_response 503 "deadline expired before the solve was dispatched"
      | Error (Sched.Faulted (Fault.Injected point)) ->
          Http.error_response 500 ("injected fault: " ^ point)
      | Error (Sched.Faulted e) ->
          Http.error_response 500 (Printexc.to_string e)))

(* --- connection plumbing --- *)

let count_request t ~endpoint ~status =
  Metrics.inc t.metrics "bccd_requests_total"
    ~labels:[ ("endpoint", endpoint); ("status", string_of_int status) ]
    ~help:"Requests by endpoint and response status."

let respond_error t fd ?headers ~endpoint ~status msg =
  count_request t ~endpoint ~status;
  Http.write_response fd (Http.error_response ?headers status msg)

(* Half-close and drain the client's unread bytes before [close].
   Responses written without reading the request (rejections, read
   errors) would otherwise race a TCP RST — closing a socket with
   unread receive data discards the just-written response on most
   stacks, and the client sees ECONNRESET instead of its 429/503.
   The drain is clamped to 1s so a client that never closes cannot pin
   the accept loop (rejections linger inline there). *)
let linger fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0 with Unix.Unix_error _ -> ());
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  let buf = Bytes.create 4096 in
  try
    while Unix.read fd buf 0 (Bytes.length buf) > 0 do
      ()
    done
  with Unix.Unix_error _ -> ()

let serve_conn t fd enqueued_at =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      if Atomic.get t.stop then begin
        count_rejected t "shutdown";
        respond_error t fd ~endpoint:"-" ~status:503 "shutting down";
        linger fd
      end
      else if Timer.now_s () -. enqueued_at > t.cfg.timeout_s then begin
        (* The request waited out its deadline in the queue; solving it
           now would only add to the pile-up. *)
        count_rejected t "queue_timeout";
        respond_error t fd ~endpoint:"-" ~status:503 "timed out in queue";
        linger fd
      end
      else begin
        (* Keep-alive: a client that asked for it (the cluster router's
           pooled connections) may send further requests on the same
           socket.  The idle wait between requests is capped well below
           [timeout_s] so an idle pooled connection cannot pin this
           worker, and the request count is bounded as a backstop.
           Errors on a reused connection close it silently — the
           typical case is the client racing our idle timeout. *)
        let keep_alive_idle_s = Float.min 5.0 t.cfg.timeout_s in
        let max_keep_alive = 256 in
        let rec request_loop ~first n =
          if n <= 0 || Atomic.get t.stop then ()
          else
            match
              Fault.hit "server.read";
              Http.read_request fd
            with
            | exception Fault.Injected point ->
                respond_error t fd ~endpoint:"-" ~status:500
                  ("injected fault: " ^ point);
                linger fd
            | Error { status_hint; message } ->
                if first then begin
                  respond_error t fd ~endpoint:"-" ~status:status_hint message;
                  linger fd
                end
            | Ok req ->
                let timer = Timer.start () in
                (* Every request gets a correlation id — adopted from an
                   [X-Bcc-Trace-Id] request header when a routing hop
                   upstream already minted one (so one trace id follows
                   the request across the cluster), fresh otherwise —
                   installed as the ambient id for the whole handling
                   (engine tasks carry it onto worker domains), stamped
                   on every event the request emits, and returned in
                   [X-Bcc-Trace-Id] so the client can pull the solve's
                   record from [/debug/solves?id=…]. *)
                let corr =
                  if not (Event.enabled ()) then ""
                  else
                    match Http.header req "x-bcc-trace-id" with
                    | Some c when c <> "" && String.length c <= 64 -> c
                    | _ -> Event.new_corr ()
                in
                let run () =
                  try handle t req with
                  | Failure msg -> Http.error_response 400 msg
                  | e -> Http.error_response 500 (Printexc.to_string e)
                in
                let resp =
                  if corr = "" then run ()
                  else
                    Event.with_corr corr (fun () ->
                        let resp = run () in
                        Event.emit "http_request"
                          ~attrs:
                            [
                              ("method", Event.Str req.meth);
                              ("path", Event.Str req.path);
                              ("status", Event.Int resp.Http.status);
                              ("duration_s", Event.Float (Timer.elapsed_s timer));
                            ];
                        resp)
                in
                let resp =
                  if corr = "" then resp
                  else
                    { resp with
                      Http.headers = ("X-Bcc-Trace-Id", corr) :: resp.Http.headers
                    }
                in
                Metrics.observe t.metrics "bccd_request_duration_seconds"
                  ~labels:[ ("endpoint", req.path) ]
                  ~help:"End-to-end request handling time."
                  (Timer.elapsed_s timer);
                count_request t ~endpoint:req.path ~status:resp.Http.status;
                let keep_alive = Http.wants_keep_alive req && n > 1 in
                Http.write_response ~keep_alive fd resp;
                if keep_alive then begin
                  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO keep_alive_idle_s
                   with Unix.Unix_error _ -> ());
                  request_loop ~first:false (n - 1)
                end
        in
        request_loop ~first:true max_keep_alive
      end)

let enqueue_conn t fd =
  (* Socket-level timeouts bound slow readers/writers per request. *)
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.timeout_s
   with Unix.Unix_error _ -> ());
  let reject ?headers reason ~status msg =
    count_rejected t reason;
    respond_error t fd ?headers ~endpoint:"-" ~status msg;
    linger fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (* Backpressure on {e connections} waiting for a worker, not on the raw
     engine queue — solver-internal batch tickets transit the same queue
     and must not trip the admission limit.  A full queue is the
     retryable condition (429 + retry-after); shutdown is the
     non-retryable 503. *)
  if Atomic.get t.pending >= t.cfg.queue_depth then
    reject "queue_full" ~status:429
      ~headers:[ ("retry-after", "1") ]
      "server busy, queue full"
  else begin
    Atomic.incr t.pending;
    Metrics.set t.metrics "bccd_queue_depth"
      ~help:"Connections waiting for a worker."
      (float_of_int (Atomic.get t.pending));
    let enqueued_at = Timer.now_s () in
    let job () =
      Atomic.decr t.pending;
      Metrics.set t.metrics "bccd_queue_depth" (float_of_int (Atomic.get t.pending));
      try serve_conn t fd enqueued_at with _ -> ()
    in
    if not (Engine.Pool.submit t.pool job) then begin
      Atomic.decr t.pending;
      reject "shutdown" ~status:503 "shutting down"
    end
  end

let run t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.sock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.sock with
          | fd, _ -> enqueue_conn t fd
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Shutdown: the engine pool drains queued connections (late arrivals
     get 503 from [serve_conn]'s stop check) and joins its domains; any
     in-flight solve finishes first. *)
  Engine.Pool.shutdown t.pool;
  Store.close t.store;
  Event.close_log ();
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (* The daemon is done with the shared pool; leave later library calls
     (tests run several daemons per process) a working default. *)
  Engine.set_default_jobs 1
