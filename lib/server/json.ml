type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  (* JSON has no literal for non-finite numbers; we emit them as strings
     (the instance format spells infinity "inf" too). *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
      if Float.is_nan x then escape_string buf "nan"
      else if x = infinity then escape_string buf "inf"
      else if x = neg_infinity then escape_string buf "-inf"
      else Buffer.add_string buf (number_to_string x)
  | Str s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* --- decoding: recursive descent --- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail_at st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st; go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail_at st (Printf.sprintf "expected '%c'" c)

let expect_word st w value =
  if
    st.pos + String.length w <= String.length st.src
    && String.sub st.src st.pos (String.length w) = w
  then (st.pos <- st.pos + String.length w; value)
  else fail_at st ("expected " ^ w)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail_at st "bad hex digit in \\u escape"

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail_at st "truncated \\u escape";
  let v =
    (hex_digit st st.src.[st.pos] lsl 12)
    lor (hex_digit st st.src.[st.pos + 1] lsl 8)
    lor (hex_digit st st.src.[st.pos + 2] lsl 4)
    lor hex_digit st st.src.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail_at st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail_at st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let cp = parse_hex4 st in
                let cp =
                  if cp >= 0xD800 && cp <= 0xDBFF then begin
                    (* high surrogate: expect \uDC00-\uDFFF next *)
                    if
                      st.pos + 2 <= String.length st.src
                      && st.src.[st.pos] = '\\'
                      && st.src.[st.pos + 1] = 'u'
                    then begin
                      st.pos <- st.pos + 2;
                      let lo = parse_hex4 st in
                      if lo < 0xDC00 || lo > 0xDFFF then
                        fail_at st "invalid low surrogate"
                      else
                        0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                    end
                    else fail_at st "lone high surrogate"
                  end
                  else if cp >= 0xDC00 && cp <= 0xDFFF then
                    fail_at st "lone low surrogate"
                  else cp
                in
                add_utf8 buf cp
            | _ -> fail_at st "bad escape character");
            go ())
    | Some c when Char.code c < 0x20 -> fail_at st "raw control character in string"
    | Some c -> advance st; Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail_at st ("bad number: " ^ s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail_at st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then (advance st; Obj [])
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; fields ((k, v) :: acc)
          | Some '}' -> advance st; Obj (List.rev ((k, v) :: acc))
          | _ -> fail_at st "expected ',' or '}'"
        in
        fields []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then (advance st; List [])
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; elems (v :: acc)
          | Some ']' -> advance st; List (List.rev (v :: acc))
          | _ -> fail_at st "expected ',' or ']'"
        in
        elems []
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> expect_word st "true" (Bool true)
  | Some 'f' -> expect_word st "false" (Bool false)
  | Some 'n' -> expect_word st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail_at st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> raise (Parse_error msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string = function Str s -> Some s | _ -> None

let get_num = function
  | Num x -> Some x
  | Str "inf" -> Some infinity
  | Str "-inf" -> Some neg_infinity
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List xs -> Some xs | _ -> None
