(** Thread-safe LRU cache with string keys.

    Backs the server's two memoization layers: parsed+pruned instances
    keyed by content digest, and solve results keyed by
    (digest, endpoint, budget/target) — so a budget sweep over a fixed
    workload re-pays neither the instance parse nor the solve.

    All operations are O(1) (Hashtbl + intrusive doubly-linked recency
    list) and lock-protected. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Bumps recency on hit; counts a hit or a miss. *)

val put : 'a t -> string -> 'a -> unit
(** Inserts or refreshes; evicts the least recently used entry when at
    capacity. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** Cached value plus [was_hit].  The compute function runs {e outside}
    the lock (solves are slow); concurrent misses on one key may compute
    twice — last write wins, harmless for pure values. *)

val mem : 'a t -> string -> bool
val length : 'a t -> int
val capacity : 'a t -> int

(** {1 Statistics} — fed into {!Metrics} by the server *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val keys_mru : 'a t -> string list
(** Keys most-recently-used first (test/debug aid). *)
