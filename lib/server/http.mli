(** Hand-rolled HTTP/1.1 request/response handling over [Unix] file
    descriptors — just enough protocol for the {!Server} endpoints, no
    opam dependencies.

    By default one request per connection: a response carries
    [connection: close] and the server closes the socket after writing
    it.  A client that sends [connection: keep-alive] (the cluster
    router's pooled connections do) gets the response with
    [connection: keep-alive] and may reuse the socket.  Read timeouts
    are the socket's [SO_RCVTIMEO] (set by the caller); a timed-out read
    surfaces as a 408 {!error}.

    The same codec also speaks the client side ({!write_request} /
    {!read_response}), so the cluster tier forwards requests
    byte-equivalently without a second HTTP implementation. *)

type request = {
  meth : string;  (** uppercased *)
  path : string;  (** percent-decoded, query string stripped *)
  query : (string * string) list;  (** decoded key/value pairs *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  headers : (string * string) list;
  body : string;
}

type error = { status_hint : int; message : string }
(** Parse/IO failure plus the status code to answer with. *)

val status_reason : int -> string

val response :
  ?content_type:string -> ?headers:(string * string) list -> int -> string -> response

val json_response : ?headers:(string * string) list -> int -> Json.t -> response

val error_response : ?headers:(string * string) list -> int -> string -> response
(** [{"error": msg}] as JSON.  [headers] lets rejection paths attach
    e.g. [retry-after]. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val url_decode : string -> string

val read_request :
  ?max_header:int -> ?max_body:int -> Unix.file_descr -> (request, error) result
(** Blocking read of one full request (headers + [content-length] body).
    Defaults: 16 KiB of headers, 16 MiB of body. *)

val write_response : ?keep_alive:bool -> Unix.file_descr -> response -> unit
(** Adds [content-length] and [connection: close] (or [keep-alive] when
    [keep_alive], default false); swallows [EPIPE]/[ECONNRESET] (client
    already gone). *)

val wants_keep_alive : request -> bool
(** The request carried an explicit [connection: keep-alive].  Only
    explicit opt-in counts — HTTP/1.1's implicit default stays one
    request per connection here, so plain curl traffic keeps today's
    close-after-response behavior. *)

val write_request : ?keep_alive:bool -> Unix.file_descr -> request -> unit
(** Client side: serialize [request] (method, percent-encoded
    path+query, headers minus [content-length]/[connection], body) and
    write it.  [keep_alive] (default true) asks the server to hold the
    connection open for reuse.
    @raise Unix.Unix_error on write failure — callers treat the
    connection as dead. *)

val read_response :
  ?max_header:int -> ?max_body:int -> Unix.file_descr -> (response, error) result
(** Client side: blocking read of one full response.  Errors carry
    gateway-flavored status hints (502 on framing/EOF, 504 on a socket
    timeout) so a router can answer with them directly.  Defaults:
    16 KiB of headers, 64 MiB of body. *)
