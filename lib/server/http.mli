(** Hand-rolled HTTP/1.1 request/response handling over [Unix] file
    descriptors — just enough protocol for the {!Server} endpoints, no
    opam dependencies.

    One request per connection: every response carries
    [connection: close] and the server closes the socket after writing
    it.  Read timeouts are the socket's [SO_RCVTIMEO] (set by the
    caller); a timed-out read surfaces as a 408 {!error}. *)

type request = {
  meth : string;  (** uppercased *)
  path : string;  (** percent-decoded, query string stripped *)
  query : (string * string) list;  (** decoded key/value pairs *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  headers : (string * string) list;
  body : string;
}

type error = { status_hint : int; message : string }
(** Parse/IO failure plus the status code to answer with. *)

val status_reason : int -> string

val response :
  ?content_type:string -> ?headers:(string * string) list -> int -> string -> response

val json_response : ?headers:(string * string) list -> int -> Json.t -> response

val error_response : ?headers:(string * string) list -> int -> string -> response
(** [{"error": msg}] as JSON.  [headers] lets rejection paths attach
    e.g. [retry-after]. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val url_decode : string -> string

val read_request :
  ?max_header:int -> ?max_body:int -> Unix.file_descr -> (request, error) result
(** Blocking read of one full request (headers + [content-length] body).
    Defaults: 16 KiB of headers, 16 MiB of body. *)

val write_response : Unix.file_descr -> response -> unit
(** Adds [content-length] and [connection: close]; swallows
    [EPIPE]/[ECONNRESET] (client already gone). *)
