(* Classic Hashtbl + doubly-linked-list LRU.  The list is intrusive with
   option pointers; [head] is most recently used, [tail] next to evict.
   All operations take the lock, so a cache can be shared by the whole
   worker pool. *)

type 'a entry = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a entry option;  (* towards head *)
  mutable next : 'a entry option;  (* towards tail *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable head : 'a entry option;
  mutable tail : 'a entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.hits <- t.hits + 1;
          unlink t e;
          push_front t e;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let put t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          e.value <- value;
          unlink t e;
          push_front t e
      | None ->
          if Hashtbl.length t.tbl >= t.capacity then begin
            match t.tail with
            | Some victim ->
                unlink t victim;
                Hashtbl.remove t.tbl victim.key;
                t.evictions <- t.evictions + 1
            | None -> ()
          end;
          let e = { key; value; prev = None; next = None } in
          Hashtbl.replace t.tbl key e;
          push_front t e)

let find_or_add t key compute =
  match find t key with
  | Some v -> (v, true)
  | None ->
      (* Computed outside the lock: solves can take seconds and must not
         serialize the pool.  Concurrent misses on the same key may both
         compute; last write wins, which is harmless for pure values. *)
      let v = compute () in
      put t key v;
      (v, false)

let mem t key = locked t (fun () -> Hashtbl.mem t.tbl key)
let length t = locked t (fun () -> Hashtbl.length t.tbl)
let capacity t = t.capacity
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)

let keys_mru t =
  locked t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some e -> go (e.key :: acc) e.next
      in
      go [] t.head)
