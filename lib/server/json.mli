(** Minimal JSON encoder/decoder for the server wire format.

    Hand-rolled so the daemon adds no opam dependencies.  Covers full
    RFC 8259 parsing (escapes incl. [\uXXXX] surrogate pairs decoded to
    UTF-8, nested values, strict trailing-garbage rejection) and compact
    single-line encoding.

    One deliberate deviation: JSON has no literal for non-finite
    numbers, so [Num infinity] encodes as the string ["inf"] (resp.
    ["-inf"], ["nan"]) and {!get_num} maps those strings back — mirroring
    the ["inf"] spelling of the plain-text instance format. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (no whitespace) rendering. *)

val of_string : string -> (t, string) result
(** Rejects trailing garbage after the top-level value. *)

val of_string_exn : string -> t
(** @raise Parse_error on malformed input. *)

(** {1 Accessors} — shallow, [None] on shape mismatch *)

val member : string -> t -> t option
(** Field of an [Obj]. *)

val get_string : t -> string option
val get_num : t -> float option
(** Also maps the strings ["inf"]/["-inf"]/["nan"] back to floats. *)

val get_bool : t -> bool option
val get_list : t -> t list option
