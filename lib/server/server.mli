(** [bccd] — a resident BCC solver service.

    Architecture: one acceptor thread submits connections to a
    {!Bcc_engine.Engine.Pool} of worker domains (installed as the engine
    default, so solver-internal portfolios share the same domains); when
    too many connections are waiting, new ones are refused with [503] at
    the door (backpressure) instead of buffering unbounded work, and
    requests that outwait the timeout in the queue are answered [503]
    without being solved.  Results are
    memoized in a content-addressed LRU ({!Cache}) keyed by
    (instance digest, endpoint, budget, target), so a budget sweep over
    a fixed workload — the paper's Section 6 evaluation pattern — pays
    the instance parse and the [A^BCC] run once per distinct budget and
    the parse once overall.

    Endpoints:
    - [POST /solve], [POST /gmc3], [POST /ecc] — body is either the
      plain-text instance format of {!Bcc_data.Io} or a JSON object
      [{"instance": <preloaded name>}] / [{"text": <instance text>}]
      with optional ["budget"]/["target"] fields ([?budget=]/[?target=]
      query parameters override);
    - [GET /instances] — the instances preloaded at startup;
    - the workload-store family (backed by {!Bcc_store.Store}, durable
      under [state_dir] and recovered on restart):
      [PUT /workloads/:name[?format=text|log&budget=B]] (create/replace
      from instance text or a raw search log),
      [POST /workloads/:name/delta[?format=delta|log]] (apply one atomic
      epoch-advancing batch),
      [POST /workloads/:name/solve[?cold=true&incremental=true&timeout_ms=MS]]
      (warm-started re-solve, committed to the journal;
      [?incremental=true] routes through {!Bcc_core.Pipeline} and
      reports [components_total]/[components_reused] in the response),
      [GET /workloads/:name/solution], [GET /workloads/:name] and
      [GET /workloads];
    - [GET /healthz], [GET /metrics] (Prometheus text format, including
      [bcc_stage_duration_seconds] histograms labeled by pipeline stage,
      [bcc_engine_tasks_total] counters labeled by engine backend and
      outcome, the [bcc_engine_queue_depth] gauge, and the store series
      [bcc_store_epochs_total], [bcc_store_journal_bytes],
      [bcc_store_replay_seconds] and [bcc_warm_start_utility_ratio],
      plus the incremental-pipeline series
      [bcc_resolve_components_total],
      [bcc_resolve_components_reused_total] and the
      [bcc_resolve_wall_seconds] histogram);
    - [GET /debug/trace?last=N] — the most recent completed
      {!Bcc_obs.Trace} spans as a JSON forest (children nested under
      their parents), for inspecting where a solve spent its time;
    - [GET /debug/solves[?id=…]] — the {!Bcc_obs.Recorder} flight
      recorder: the last N solves keyed by correlation id, and per id
      the anytime utility curve, the raw wide events and the spans that
      overlapped the solve; incremental solves additionally carry
      [components_total]/[components_reused] on their summary rows;
    - [GET /debug/sched] — the live {!Bcc_sched.Sched} state: batch /
      coalescing counters, per-tenant deficit-round-robin standings and
      the shared curve cache's occupancy.

    {2 Batch scheduling and multi-tenancy}

    Solve traffic ([POST /solve]/[/gmc3]/[/ecc] and
    [POST /workloads/:name/solve]) is admitted through a
    {!Bcc_sched.Sched} between the accept loop and the engine:
    concurrent requests for the same instance content (or the same
    workload epoch) under the same solver options coalesce into one
    batch — bit-identical requests share one computed response; distinct
    budgets on the same key run as sibling groups priced off the same
    curves.  Requests name a tenant ([?tenant=] query parameter,
    [x-bcc-tenant] header, or a JSON ["tenant"] field; default
    ["default"]) and tenants receive weighted fair share via deficit
    round-robin ([tenant_weights]); a tenant whose queue exceeds
    [tenant_depth] is answered [429] with a [retry-after] of at least
    1 s.  [/metrics] exports the [bcc_sched_*] and [bcc_curve_cache_*]
    series.

    {2 Request correlation}

    With telemetry on ([trace_spans > 0]) every request is handled under
    a fresh {!Bcc_obs.Event} correlation id, returned to the client in
    the [X-Bcc-Trace-Id] response header; the solver's anytime progress
    stream, store commits and a closing [http_request] event all carry
    it, so [GET /debug/solves?id=<header value>] replays exactly what
    that request did.  The progress stream also feeds the metrics
    registry ([bcc_incumbent_improvements_total],
    [bcc_solve_rounds_total], [bcc_solve_utility_ratio]).

    Shutdown ({!request_stop}, wired to SIGINT/SIGTERM by the daemon):
    stop accepting, answer queued-but-unstarted connections [503], let
    workers finish in-flight solves, shut down the engine pool (joining
    every worker domain), close the socket. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  workers : int;  (** <= 0 means [Domain.recommended_domain_count ()] *)
  queue_depth : int;
  cache_entries : int;  (** capacity of each of the two LRU caches *)
  timeout_s : float;  (** socket read/write timeout and max queue wait *)
  preload : (string * string) list;  (** (name, instance file) pairs *)
  trace_spans : int;
      (** span ring-buffer capacity; [> 0] turns on {!Bcc_obs} tracing and
          stage profiling at startup, [0] leaves both off *)
  state_dir : string option;
      (** workload-store state directory; [None] keeps the store
          in-memory only (workloads do not survive a restart) *)
  event_log : string option;
      (** append every wide event as one JSONL line to this file
          (truncated at startup); [None] disables the file sink *)
  debug_dir : string option;
      (** flight-recorder dump directory: slow or degraded solves are
          written to [<dir>/<corr>.jsonl] on completion; [None] disables
          automatic dumps *)
  sched_concurrency : int;
      (** concurrently executing solve batches; [<= 0] auto-sizes to
          [workers - 1] (min 1), leaving a worker free to feed — and
          coalesce into — the next batch *)
  tenant_depth : int;  (** max queued solve requests per tenant (429 beyond) *)
  tenant_weights : (string * int) list;
      (** fair-share weights by tenant name; absent tenants weigh 1 *)
  curve_cache_mb : int;
      (** byte budget (MiB) of the process-wide curve cache shared
          across workloads by the incremental pipeline *)
  forward : Http.request -> Http.response option;
      (** cluster routing hook, consulted before local handling:
          [Some resp] short-circuits with the forwarded answer, [None]
          (the default's behavior) serves locally.  The daemon wires
          {!Bcc_cluster.Router.forward} in here; a function field keeps
          lib/server free of a dependency cycle with lib/cluster. *)
}

val default_config : config
(** 127.0.0.1:8080, auto-sized workers, queue 64, 256 cache entries,
    30 s timeout, nothing preloaded, 4096-span trace buffer, in-memory
    store, auto batch concurrency, tenant depth 32, 64 MiB curve
    cache. *)

type t

val create : config -> t
(** Loads the [preload] instances, binds and listens.
    @raise Unix.Unix_error when the address is unavailable
    @raise Failure on an unparseable preload file. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val num_workers : t -> int
val metrics : t -> Metrics.t

val store : t -> Bcc_store.Store.t
(** The workload store (already replayed by {!create}) — the daemon uses
    it to report recovery at startup. *)

val run : t -> unit
(** Blocks serving requests until {!request_stop}; returns only after
    workers are drained and joined and the socket is closed. *)

val request_stop : t -> unit
(** Async-signal-safe (just an atomic store): safe to call from a
    [Sys.Signal_handle] or any thread.  [run] notices within ~250 ms. *)
