(** Counters, gauges and latency histograms rendered in the Prometheus
    text exposition format (the daemon's [GET /metrics]).

    Families are created implicitly on first use; each family holds one
    series per label set.  All updates are lock-protected and O(1).
    Durations fed to {!observe} come from {!Bcc_util.Timer}. *)

type t

val create : unit -> t

val default_buckets : float array
(** Latency buckets in seconds: 1ms .. 10s, then the implicit +Inf. *)

val inc :
  ?labels:(string * string) list -> ?by:float -> ?help:string -> t -> string -> unit
(** Increment a counter (created at 0 on first sight).
    @raise Invalid_argument if [name] already exists with another kind. *)

val set : ?labels:(string * string) list -> ?help:string -> t -> string -> float -> unit
(** Set a gauge. *)

val observe :
  ?labels:(string * string) list ->
  ?buckets:float array ->
  ?help:string ->
  t ->
  string ->
  float ->
  unit
(** Record an observation (seconds) into a histogram. *)

val counter_value : ?labels:(string * string) list -> t -> string -> float
(** Current value of a counter series; [0.] when absent (also used by
    tests to assert on cache-hit counts).
    @raise Invalid_argument if [name] exists with another kind. *)

val gauge_value : ?labels:(string * string) list -> t -> string -> float
(** Current value of a gauge series; [0.] when absent.
    @raise Invalid_argument if [name] exists with another kind. *)

val render : t -> string
(** Prometheus text format: [# HELP]/[# TYPE] per family, series sorted
    by name then label set; histograms emit cumulative [_bucket] lines
    plus [_sum] and [_count]. *)
