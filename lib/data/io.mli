(** Plain-text serialization of BCC instances.

    Line-oriented format, one record per line:
    {v
    # comments and blank lines ignored
    budget 4.0
    query wooden;table 8
    classifier wooden 5
    classifier wooden;table 3
    v}
    Classifiers absent from the file are priced [infinity] (not
    constructible); a [classifier ... inf] line makes that explicit.

    Fields are separated by runs of blanks (spaces or tabs) and lines
    may end in CRLF — instance bodies also arrive verbatim over HTTP
    (see {!Bcc_server.Server}), where CRLF line endings are the norm. *)

val save : string -> Bcc_core.Instance.t -> unit
(** Writes the queries and the whole (finite-cost) classifier universe,
    so a load reconstructs the same instance.  Property names come from
    the instance's symbol table when present, else the numeric ids. *)

val to_string : Bcc_core.Instance.t -> string
(** The exact bytes {!save} would write. *)

val load : string -> Bcc_core.Instance.t
(** @raise Failure on a malformed file. *)

val load_string : ?name:string -> string -> Bcc_core.Instance.t
(** Parses the same format from an in-memory string ([name] defaults to
    ["<string>"]).  @raise Failure on malformed input. *)

val save_solution : string -> Bcc_core.Instance.t -> Bcc_core.Solution.t -> unit
(** Writes the selected classifiers (one [select p1;p2;... cost] line
    each) plus summary comments; human-diffable and reloadable. *)

val load_solution : Bcc_core.Instance.t -> string -> Bcc_core.Solution.t
(** Reconstructs a solution against the given instance (classifier sets
    are re-priced and re-verified from the instance).
    @raise Failure on a malformed file or a classifier not in the
    instance's universe. *)
