(** Search-log ingestion: turn a raw query log into a BCC instance.

    This is the front door a platform would actually use: the paper's
    workloads are search-engine logs where each line is a query string
    and its frequency (BestBuy's "number of times each query was
    searched" becomes the utility, Section 6.1).

    Accepted line formats (blank lines and [#] comments ignored):
    {v
    wooden table<TAB>35        # tab-separated count
    running shoes              # no count: frequency 1
    v}
    Query strings are lowercased and tokenized on whitespace; duplicate
    tokens within a query collapse; repeated queries accumulate their
    counts.  Queries longer than [max_length] (default 6, the paper's
    cap) are dropped, mirroring "companies do not allocate resources for
    such rare queries". *)

type stats = {
  lines : int;
  queries : int;  (** distinct after merging *)
  dropped_too_long : int;
}

val parse_string :
  ?max_length:int -> string -> Bcc_core.Symtab.t * (Bcc_core.Propset.t * float) array * stats
(** Parse log text into (symbol table, merged (query, frequency) pairs,
    stats).  @raise Failure on a malformed count. *)

val default_cost : seed:int -> Bcc_core.Propset.t -> float
(** The oracle {!load} prices classifiers with when none is supplied:
    skewed analyst-style singletons ({!Costs.hashed_skewed}, mean 8,
    cap 50) composed sub-additively (discount 0.6), fully determined by
    [seed] — the workload store relies on this to price queries that
    arrive in later deltas consistently across restarts. *)

val load :
  ?max_length:int ->
  ?cost:(Bcc_core.Propset.t -> float) ->
  budget:float ->
  string ->
  Bcc_core.Instance.t * stats
(** Read a log file and build an instance.  [cost] defaults to the
    skewed analyst-style oracle of {!Costs.hashed_skewed} (mean 8,
    cap 50) with sub-additive conjunctions, seeded by the file name. *)
