module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab

let prop_name inst p =
  match Instance.names inst with
  | Some tbl -> Symtab.name tbl p
  | None -> string_of_int p

(* Fields are separated by runs of blanks (spaces or tabs), and lines may
   end in "\r\n" — instance bodies arrive over HTTP where CRLF is the
   norm, and hand-edited files often carry doubled spaces. *)
let tokens line =
  let line = String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line in
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let write_instance buf inst =
  Printf.bprintf buf "# bcc instance %s\n" (Instance.name inst);
  Printf.bprintf buf "budget %.9g\n" (Instance.budget inst);
  for qi = 0 to Instance.num_queries inst - 1 do
    let q = Instance.query inst qi in
    let names = List.map (prop_name inst) (Propset.to_list q) in
    Printf.bprintf buf "query %s %.9g\n" (String.concat ";" names)
      (Instance.utility inst qi)
  done;
  for id = 0 to Instance.num_classifiers inst - 1 do
    let c = Instance.classifier inst id in
    let names = List.map (prop_name inst) (Propset.to_list c) in
    Printf.bprintf buf "classifier %s %.9g\n" (String.concat ";" names)
      (Instance.cost inst id)
  done

let to_string inst =
  let buf = Buffer.create 4096 in
  write_instance buf inst;
  Buffer.contents buf

let save path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

(* Core parser over a line producer ([next_line ()] = [None] at EOF). *)
let load_lines ~name next_line =
  let names = Symtab.create () in
  let budget = ref 0.0 in
  let queries = ref [] in
  let costs = Propset.Tbl.create 256 in
  (* Malformed input must surface as [Failure] (the servers map it to a
     400), never as a silent mis-parse: empty or repeated property names
     and NaN/negative numbers are all rejected here. *)
  let parse_props s =
    let parts = String.split_on_char ';' s in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun p ->
        if p = "" then failwith ("Io.load: empty property name in: " ^ s);
        if Hashtbl.mem seen p then failwith ("Io.load: duplicate property " ^ p ^ " in: " ^ s);
        Hashtbl.add seen p ())
      parts;
    Propset.of_list (List.map (Symtab.intern names) parts)
  in
  let parse_float what s =
    match float_of_string_opt s with
    | Some f when Float.is_nan f -> failwith ("Io.load: " ^ what ^ " is NaN: " ^ s)
    | Some f when f < 0.0 -> failwith ("Io.load: negative " ^ what ^ ": " ^ s)
    | Some f -> f
    | None -> if s = "inf" then infinity else failwith ("Io.load: bad " ^ what ^ ": " ^ s)
  in
  let rec loop () =
    match next_line () with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        if line <> "" && line.[0] <> '#' then begin
          match tokens line with
          | [ "budget"; b ] -> budget := parse_float "budget" b
          | [ "query"; props; u ] ->
              queries := (parse_props props, parse_float "utility" u) :: !queries
          | [ "classifier"; props; c ] ->
              Propset.Tbl.replace costs (parse_props props) (parse_float "cost" c)
          | _ -> failwith ("Io.load: malformed line: " ^ line)
        end;
        loop ()
  in
  loop ();
  let cost c =
    match Propset.Tbl.find_opt costs c with Some x -> x | None -> infinity
  in
  Instance.create ~name ~names ~budget:!budget
    ~queries:(Array.of_list (List.rev !queries))
    ~cost ()

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      load_lines
        ~name:(Filename.remove_extension (Filename.basename path))
        (fun () -> In_channel.input_line ic))

let load_string ?(name = "<string>") s =
  let pos = ref 0 in
  let next_line () =
    if !pos >= String.length s then None
    else
      let stop =
        match String.index_from_opt s !pos '\n' with
        | Some i -> i
        | None -> String.length s
      in
      let line = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      Some line
  in
  load_lines ~name next_line

module Solution = Bcc_core.Solution

let save_solution path inst (sol : Solution.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# bcc solution for instance %s\n" (Instance.name inst);
      Printf.fprintf oc "# cost %.9g utility %.9g\n" sol.Solution.cost sol.Solution.utility;
      List.iter
        (fun c ->
          let names = List.map (prop_name inst) (Propset.to_list c) in
          Printf.fprintf oc "select %s %.9g\n" (String.concat ";" names)
            (Instance.cost_of inst c))
        sol.Solution.classifiers)

let load_solution inst path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let name_to_id =
        match Instance.names inst with
        | Some tbl -> fun s -> (
            match Symtab.find tbl s with
            | Some id -> id
            | None -> failwith ("Io.load_solution: unknown property " ^ s))
        | None -> fun s -> (
            match int_of_string_opt s with
            | Some id -> id
            | None -> failwith ("Io.load_solution: unknown property " ^ s))
      in
      let sets = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then begin
             match tokens line with
             | [ "select"; props; _cost ] ->
                 let set =
                   Propset.of_list
                     (List.map name_to_id (String.split_on_char ';' props))
                 in
                 if Instance.classifier_id inst set = None then
                   failwith "Io.load_solution: classifier not in the instance universe";
                 sets := set :: !sets
             | _ -> failwith ("Io.load_solution: malformed line: " ^ line)
           end
         done
       with End_of_file -> ());
      Solution.of_sets inst !sets)
