module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab

type stats = { lines : int; queries : int; dropped_too_long : int }

let tokenize s =
  String.split_on_char ' ' (String.lowercase_ascii s)
  |> List.filter_map (fun w ->
         let w = String.trim w in
         if w = "" then None else Some w)

let parse_string ?(max_length = 6) text =
  let names = Symtab.create () in
  let merged = Propset.Tbl.create 256 in
  let lines = ref 0 and dropped = ref 0 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        incr lines;
        let query_text, count =
          match String.index_opt line '\t' with
          | Some i ->
              let count_str = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
              (match float_of_string_opt count_str with
              | Some c when c >= 0.0 -> (String.sub line 0 i, c)
              | _ -> failwith ("Log_parser: malformed count: " ^ count_str))
          | None -> (line, 1.0)
        in
        let words = tokenize query_text in
        if words = [] then ()
        else if List.length (List.sort_uniq compare words) > max_length then incr dropped
        else begin
          let q = Propset.of_list (List.map (Symtab.intern names) words) in
          let prev = try Propset.Tbl.find merged q with Not_found -> 0.0 in
          Propset.Tbl.replace merged q (prev +. count)
        end
      end)
    (String.split_on_char '\n' text);
  let queries = Propset.Tbl.fold (fun q c acc -> (q, c) :: acc) merged [] in
  let queries = List.sort (fun (a, _) (b, _) -> Propset.compare a b) queries in
  ( names,
    Array.of_list queries,
    { lines = !lines; queries = List.length queries; dropped_too_long = !dropped } )

let default_cost ~seed =
  let singleton = Costs.hashed_skewed ~seed ~mean:8.0 ~cap:50.0 in
  Costs.subadditive ~seed:(seed lxor 0xC0) ~singleton ~discount:0.6

let load ?max_length ?cost ~budget path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let names, queries, stats = parse_string ?max_length text in
  let cost =
    match cost with
    | Some f -> f
    | None -> default_cost ~seed:(Hashtbl.hash path)
  in
  ( Instance.create
      ~name:(Filename.remove_extension (Filename.basename path))
      ~names ~budget ~queries ~cost (),
    stats )
