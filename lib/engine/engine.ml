module Rng = Bcc_util.Rng
module Trace = Bcc_obs.Trace
module Deadline = Bcc_robust.Deadline
module Fault = Bcc_robust.Fault

type backend = Seq | Domains

(* ------------------------------------------------------------------ *)
(* Process-wide completed-task counters (exported on /metrics).        *)
(* ------------------------------------------------------------------ *)

let n_seq_ok = Atomic.make 0
let n_seq_err = Atomic.make 0
let n_seq_cancel = Atomic.make 0
let n_dom_ok = Atomic.make 0
let n_dom_err = Atomic.make 0
let n_dom_cancel = Atomic.make 0

type outcome_kind = [ `Ok | `Error | `Cancelled ]

let count backend (o : outcome_kind) =
  let c =
    match (backend, o) with
    | Seq, `Ok -> n_seq_ok
    | Seq, `Error -> n_seq_err
    | Seq, `Cancelled -> n_seq_cancel
    | Domains, `Ok -> n_dom_ok
    | Domains, `Error -> n_dom_err
    | Domains, `Cancelled -> n_dom_cancel
  in
  Atomic.incr c

let task_counts () =
  [
    ((Seq, `Ok), Atomic.get n_seq_ok);
    ((Seq, `Error), Atomic.get n_seq_err);
    ((Seq, `Cancelled), Atomic.get n_seq_cancel);
    ((Domains, `Ok), Atomic.get n_dom_ok);
    ((Domains, `Error), Atomic.get n_dom_err);
    ((Domains, `Cancelled), Atomic.get n_dom_cancel);
  ]

(* ------------------------------------------------------------------ *)
(* Tasks.                                                              *)
(* ------------------------------------------------------------------ *)

module Task = struct
  type 'a t = {
    label : string;
    rng : Rng.t;
    run : Rng.t -> 'a;
    score : 'a -> float;
    deadline : Deadline.t;  (* ambient at creation; re-installed around the body *)
    corr : string;  (* ambient correlation id, propagated the same way *)
    timeout_s : float option;
  }

  let make ?(label = "task") ?rng ?(score = fun _ -> 0.0) ?timeout_s run =
    let rng = match rng with Some r -> r | None -> Rng.create 0 in
    {
      label;
      rng;
      run;
      score;
      deadline = Deadline.current ();
      corr = Bcc_obs.Event.current_corr ();
      timeout_s;
    }

  let label t = t.label
  let deadline t = t.deadline
end

(* A task's body, wrapped in a span so portfolios show up in traces and
   the per-stage profiler, and bracketed by the task's deadline (the
   submitter's ambient context, possibly tightened by a per-task
   timeout) so cooperative polls inside the body see it on whichever
   domain runs the task. *)
let exec (task : 'a Task.t) =
  let body () =
    Trace.with_span ~name:"engine.task" @@ fun sp ->
    if Trace.recording sp then Trace.add_attr sp "label" (Trace.Str task.Task.label);
    Fault.hit "engine.task";
    task.Task.run task.Task.rng
  in
  (* The submitter's correlation id travels with the task so events
     emitted inside the body (on whichever domain runs it) stay
     attributable to the originating request/solve. *)
  let body =
    if task.Task.corr = "" then body
    else fun () -> Bcc_obs.Event.with_corr task.Task.corr body
  in
  let dl =
    match task.Task.timeout_s with
    | None -> task.Task.deadline
    | Some s -> Deadline.after ~label:(task.Task.label ^ ".timeout") s
    (* with_current keeps the tighter of this and the captured one *)
  in
  if Deadline.is_none task.Task.deadline && task.Task.timeout_s = None then body ()
  else
    Deadline.with_current task.Task.deadline @@ fun () ->
    Deadline.with_current dl body

(* ------------------------------------------------------------------ *)
(* The domain pool.                                                    *)
(* ------------------------------------------------------------------ *)

(* A batch is one [Portfolio] call: workers and the submitting caller
   claim task indices from [next]; claiming is the only way a task ever
   runs, so each runs exactly once no matter how many tickets get
   popped.  Results are stored and [unfinished] decremented under [bm],
   which also gives the caller the happens-before edge it needs to read
   the results after the final [Condition.broadcast]. *)
type batch = {
  mutable next : int;
  mutable runs : (unit -> unit) array;
  mutable unfinished : int;
  bm : Mutex.t;
  bc : Condition.t;
}

let claim b =
  Mutex.lock b.bm;
  let i = if b.next < Array.length b.runs then Some b.next else None in
  (match i with Some _ -> b.next <- b.next + 1 | None -> ());
  Mutex.unlock b.bm;
  i

type item = Job of (unit -> unit) | Ticket of batch

type dpool = {
  njobs : int;
  q : item Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
  stop : bool Atomic.t;
  mutable workers : unit Domain.t list;
  mutable joined : bool;
}

let run_item = function
  | Job f -> ( try f () with _ -> ())
  | Ticket b -> ( match claim b with Some i -> b.runs.(i) () | None -> ())

let worker_loop p =
  let rec loop () =
    Mutex.lock p.qm;
    while Queue.is_empty p.q && not (Atomic.get p.stop) do
      Condition.wait p.qc p.qm
    done;
    if Queue.is_empty p.q then Mutex.unlock p.qm (* stop and drained: exit *)
    else begin
      let item = Queue.pop p.q in
      Mutex.unlock p.qm;
      run_item item;
      loop ()
    end
  in
  loop ()

module Pool = struct
  type t = P_seq | P_domains of dpool

  (* Every domain pool ever created, so [at_exit] can join lingering
     workers — the runtime does not appreciate the main domain exiting
     while spawned domains still run. *)
  let registry : dpool list ref = ref []
  let registry_lock = Mutex.create ()

  let shutdown_dpool p =
    Atomic.set p.stop true;
    Mutex.lock p.qm;
    Condition.broadcast p.qc;
    Mutex.unlock p.qm;
    let to_join =
      Mutex.lock registry_lock;
      let j = if p.joined then [] else p.workers in
      p.joined <- true;
      p.workers <- [];
      Mutex.unlock registry_lock;
      j
    in
    List.iter Domain.join to_join

  let () = at_exit (fun () -> List.iter shutdown_dpool !registry)

  let seq () = P_seq

  let domains ~jobs =
    let p =
      {
        njobs = max 1 jobs;
        q = Queue.create ();
        qm = Mutex.create ();
        qc = Condition.create ();
        stop = Atomic.make false;
        workers = [];
        joined = false;
      }
    in
    p.workers <- List.init p.njobs (fun _ -> Domain.spawn (fun () -> worker_loop p));
    Mutex.lock registry_lock;
    registry := p :: !registry;
    Mutex.unlock registry_lock;
    p

  let domains ~jobs = P_domains (domains ~jobs)
  let create ~jobs = if jobs <= 1 then seq () else domains ~jobs
  let backend = function P_seq -> Seq | P_domains _ -> Domains
  let jobs = function P_seq -> 1 | P_domains p -> p.njobs

  let push pool item =
    match pool with
    | P_seq -> false
    | P_domains p ->
        if Atomic.get p.stop then false
        else begin
          Mutex.lock p.qm;
          let accepted = not (Atomic.get p.stop) in
          if accepted then begin
            Queue.push item p.q;
            Condition.signal p.qc
          end;
          Mutex.unlock p.qm;
          accepted
        end

  let submit pool f =
    let counted () =
      match try Ok (f ()) with e -> Error e with
      | Ok () -> count (backend pool) `Ok
      | Error (Deadline.Expired _ as e) ->
          count (backend pool) `Cancelled;
          raise e
      | Error e ->
          count (backend pool) `Error;
          raise e
    in
    match pool with
    | P_seq ->
        counted ();
        true
    | P_domains _ -> push pool (Job counted)

  let queue_depth = function
    | P_seq -> 0
    | P_domains p ->
        Mutex.lock p.qm;
        let n = Queue.length p.q in
        Mutex.unlock p.qm;
        n

  let shutdown = function P_seq -> () | P_domains p -> shutdown_dpool p
end

(* ------------------------------------------------------------------ *)
(* Portfolios.                                                         *)
(* ------------------------------------------------------------------ *)

module Portfolio = struct
  type 'a ranked = { label : string; index : int; value : 'a; score : float }

  type 'a outcome = Done of 'a | Failed of exn * Printexc.raw_backtrace

  (* In task order; re-raises the lowest-indexed failure. *)
  let collect_outcomes tasks results =
    List.mapi
      (fun i _ ->
        match results.(i) with
        | Some (Done v) -> v
        | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      tasks

  (* A task whose deadline already passed is not worth starting: raise
     [Expired] in its place so the rest of the batch is skipped (seq) or
     recorded as cancelled without running (domains) — "cancelled batches
     drain without running remaining tasks". *)
  let pre_cancelled (task : 'a Task.t) =
    let d = Task.deadline task in
    if Deadline.expired d then Some (Deadline.Expired (Deadline.label d)) else None

  let outcome_kind = function
    | Done _ -> `Ok
    | Failed (Deadline.Expired _, _) -> `Cancelled
    | Failed _ -> `Error

  let collect_seq ~backend tasks =
    List.map
      (fun t ->
        (match pre_cancelled t with
        | Some e ->
            count backend `Cancelled;
            raise e
        | None -> ());
        match exec t with
        | v ->
            count backend `Ok;
            v
        | exception (Deadline.Expired _ as e) ->
            count backend `Cancelled;
            raise e
        | exception e ->
            count backend `Error;
            raise e)
      tasks

  let collect pool tasks =
    match pool with
    | Pool.P_seq -> collect_seq ~backend:Seq tasks
    | Pool.P_domains p ->
        let tasks_a = Array.of_list tasks in
        let n = Array.length tasks_a in
        if n = 0 then []
        else begin
          let results = Array.make n None in
          let b =
            {
              next = 0;
              runs = [||];
              unfinished = n;
              bm = Mutex.create ();
              bc = Condition.create ();
            }
          in
          b.runs <-
            Array.mapi
              (fun i task () ->
                let out =
                  try
                    match pre_cancelled task with
                    | Some e -> raise e
                    | None -> Done (exec task)
                  with e -> Failed (e, Printexc.get_raw_backtrace ())
                in
                count Domains (outcome_kind out);
                Mutex.lock b.bm;
                results.(i) <- Some out;
                b.unfinished <- b.unfinished - 1;
                if b.unfinished = 0 then Condition.broadcast b.bc;
                Mutex.unlock b.bm)
              tasks_a;
          (* One ticket per task; workers that pop a ticket after the
             batch is fully claimed simply drop it. *)
          let offered =
            (not (Atomic.get p.stop))
            &&
            begin
              Mutex.lock p.qm;
              let ok = not (Atomic.get p.stop) in
              if ok then begin
                for _ = 1 to n do
                  Queue.push (Ticket b) p.q
                done;
                Condition.broadcast p.qc
              end;
              Mutex.unlock p.qm;
              ok
            end
          in
          ignore offered;
          (* The caller participates: it claims and runs its own tasks
             until none are left unclaimed, then waits for in-flight
             ones.  This is what makes nested portfolios deadlock-free
             (a worker can always drain the batch it submitted) and is
             also the fallback when the pool is draining for shutdown. *)
          let rec help () =
            match claim b with
            | Some i ->
                b.runs.(i) ();
                help ()
            | None -> ()
          in
          help ();
          Mutex.lock b.bm;
          while b.unfinished > 0 do
            Condition.wait b.bc b.bm
          done;
          Mutex.unlock b.bm;
          collect_outcomes tasks results
        end

  let run pool tasks =
    let values = collect pool tasks in
    let ranked =
      List.mapi
        (fun index (task, value) ->
          { label = Task.label task; index; value; score = task.Task.score value })
        (List.combine tasks values)
    in
    (* Stable: equal scores keep task order, so the head is the same
       winner a sequential first-strict-improvement scan would keep. *)
    List.stable_sort (fun a b -> compare b.score a.score) ranked

  let best pool tasks = match run pool tasks with [] -> None | r :: _ -> Some r
end

(* ------------------------------------------------------------------ *)
(* Default pool.                                                       *)
(* ------------------------------------------------------------------ *)

let default_lock = Mutex.create ()
let default_ref : (Pool.t * bool) option ref = ref None (* pool, owned *)

let jobs_from_env () =
  match Sys.getenv_opt "BCC_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> 1)

let locked_default f =
  Mutex.lock default_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock default_lock) f

let default_pool () =
  locked_default (fun () ->
      match !default_ref with
      | Some (p, _) -> p
      | None ->
          let p = Pool.create ~jobs:(jobs_from_env ()) in
          default_ref := Some (p, true);
          p)

let replace_default pool ~owned =
  locked_default (fun () ->
      (match !default_ref with
      | Some (old, true) -> Pool.shutdown old
      | _ -> ());
      default_ref := Some (pool, owned))

let set_default_jobs jobs = replace_default (Pool.create ~jobs) ~owned:true
let install_default pool = replace_default pool ~owned:false
