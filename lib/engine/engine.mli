(** Explicit execution engine: deterministic task portfolios over an
    interchangeable sequential or domain-pool backend.

    Every "try several things, keep the best" competition in the solver
    pipeline (QK bipartition restarts and expensive-node branches, the
    HkS heuristic arms, the solver's per-round arm race, bench budget
    sweeps) submits through this module instead of hand-rolled [for]
    loops, which makes the portfolios schedulable across OCaml 5
    domains.

    {2 Determinism contract}

    Results are {e bit-identical at any job count}:

    - every task carries its own {!Bcc_util.Rng.t}, derived by the caller
      from (parent stream, task index) via {!Bcc_util.Rng.derive} before
      submission, so no task ever observes another task's draws;
    - {!Portfolio.collect} returns results in task order and
      {!Portfolio.run} ranks by (score desc, task index asc) with a
      stable sort — completion order is never observable;
    - a task that raises aborts the batch deterministically: the
      exception of the {e lowest-indexed} failing task is re-raised in
      the caller once the batch has drained.

    {2 Shared vs cloned state}

    Tasks run concurrently on the [Domains] backend, so closures must
    only share immutable data.  In this codebase: [Instance.t],
    [Graph.t], [Hks.instance] and [Decompose] outputs are frozen after
    construction and safe to share; [Cover.t] is mutable and must be
    cloned per task ([Cover.clone]); scratch arrays must be allocated
    inside the task.  [Bcc_obs.Trace]/[Stage] and the server metrics
    registry are lock-protected and safe to call from any task.

    {2 Nesting}

    Portfolios nest freely (the solver races arms whose QK arm itself
    runs a bipartition portfolio over HkS portfolios).  A caller waiting
    on a batch participates in executing its {e own} tasks, so a worker
    that submits a sub-portfolio can always drain it itself — nested
    [Portfolio] calls cannot deadlock even when every worker is busy,
    and never execute unrelated queued work (e.g. a daemon connection)
    while waiting.

    {2 Cancellation}

    Every task captures the submitter's ambient
    {!Bcc_robust.Deadline.current} when it is created and re-installs it
    around its body on whichever domain runs it, so cooperative
    {!Bcc_robust.Deadline.poll} calls inside solver code observe the
    request deadline without signature changes.  A task whose deadline
    has already expired when a worker claims it is {e not executed}: it
    completes as failed-with-[Expired] immediately, so a cancelled batch
    drains at queue speed instead of running every remaining arm.  The
    lowest-indexed failure rule then re-raises [Expired] in the caller,
    where the solver's recovery point turns it into a degraded result.
    With no deadline installed and no faults armed all of this costs one
    atomic load per task, and results stay bit-identical to a build
    without the robustness layer. *)

type backend = Seq | Domains
(** [Seq] runs tasks inline in submission order (the default, exactly
    today's sequential behavior).  [Domains] executes on a fixed pool of
    OCaml 5 domains fed by a shared work queue. *)

module Task : sig
  type 'a t
  (** A unit of portfolio work: a label (for spans and metrics), a
      thunk taking the task's private RNG stream, and a score used by
      {!Portfolio.run} to rank results. *)

  val make :
    ?label:string ->
    ?rng:Bcc_util.Rng.t ->
    ?score:('a -> float) ->
    ?timeout_s:float ->
    (Bcc_util.Rng.t -> 'a) ->
    'a t
  (** [make f] builds a task.  [rng] defaults to a fixed all-zero
      stream (fine for deterministic thunks that ignore it); [score]
      defaults to [fun _ -> 0.]; [label] defaults to ["task"].
      [timeout_s] installs a per-task deadline measured from when the
      task {e starts executing}; it can only tighten the captured
      ambient deadline, never extend it.  The ambient
      {!Bcc_robust.Deadline.current} at [make] time is captured into the
      task (see {e Cancellation} above). *)

  val label : _ t -> string

  val deadline : _ t -> Bcc_robust.Deadline.t
  (** The ambient deadline captured at {!make}. *)
end

module Pool : sig
  type t

  val seq : unit -> t
  (** The inline backend; no domains are spawned. *)

  val domains : jobs:int -> t
  (** A fixed pool of [max 1 jobs] worker domains with a shared work
      queue.  Call {!shutdown} when done; lingering pools are drained
      and joined by an [at_exit] hook. *)

  val create : jobs:int -> t
  (** [create ~jobs] is {!seq} when [jobs <= 1], else
      [domains ~jobs]. *)

  val backend : t -> backend
  val jobs : t -> int

  val submit : t -> (unit -> unit) -> bool
  (** Fire-and-forget job (the daemon's connection handler).  Runs
      inline on [Seq].  Returns [false] without running the job if the
      pool is shutting down. *)

  val queue_depth : t -> int
  (** Jobs and batch tickets currently queued (0 for [Seq]). *)

  val shutdown : t -> unit
  (** Stop accepting work, drain the queue, join the workers.
      Idempotent. *)
end

module Portfolio : sig
  type 'a ranked = { label : string; index : int; value : 'a; score : float }

  val collect : Pool.t -> 'a Task.t list -> 'a list
  (** Run every task and return the results {e in task order}. *)

  val run : Pool.t -> 'a Task.t list -> 'a ranked list
  (** Run every task and rank results by score descending, ties broken
      by task index ascending (stable), so the winner is identical to a
      sequential first-strict-improvement scan. *)

  val best : Pool.t -> 'a Task.t list -> 'a ranked option
  (** [run] then head; [None] on an empty task list. *)
end

(** {2 Default pool}

    Library entry points ({!Bcc_qk.Qk.solve}, {!Bcc_dks.Hks.solve},
    {!Bcc_core.Solver.solve}) draw their pool from here so callers keep
    their existing signatures.  Sized by the [BCC_JOBS] environment
    variable at first use (absent/invalid/[<=1] means [Seq]); [--jobs]
    flags call {!set_default_jobs}. *)

val default_pool : unit -> Pool.t

val set_default_jobs : int -> unit
(** Replace the default pool with [Pool.create ~jobs] (shutting down the
    previous default if it owned domains). *)

val install_default : Pool.t -> unit
(** Make an externally owned pool (the daemon's worker pool) the
    default, so solver-internal portfolios share its domains. *)

(** {2 Introspection for /metrics} *)

val task_counts : unit -> ((backend * [ `Ok | `Error | `Cancelled ]) * int) list
(** Process-wide completed-task counters, by backend and outcome.
    [`Cancelled] counts tasks that ended with [Deadline.Expired] —
    whether skipped before execution or unwound mid-body. *)
