(** Monotonic stopwatch — used by the bench harness's log lines and the
    server's latency histograms ({!Bcc_server.Metrics}).

    The clock is wall time relative to process start, clamped to be
    non-decreasing (system clock steps can move [Unix.gettimeofday]
    backwards; elapsed times here never go negative or shrink).  Safe to
    call from multiple threads. *)

val now_s : unit -> float
(** Monotone non-decreasing seconds since process start. *)

val cpu_s : unit -> float
(** Processor time ([Sys.time]) — the complementary clock for
    cpu-vs-wall comparisons. *)

val set_source : (unit -> float) option -> unit
(** Test hook: substitute the time source behind {!now_s} (a fake timer
    the test advances by hand).  Within one regime the monotone clamp
    still applies — a fake clock may only move forward.  Switching the
    source (either way) re-seats the clamp, so timestamps taken across a
    switch are not comparable; [None] restores the real clock.  Not for
    production use. *)

(** {1 Stopwatch} *)

type t

val start : unit -> t
val elapsed_s : t -> float
(** Seconds since [start]; never negative. *)

val elapsed_ms : t -> float

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns its wall-clock duration in
    seconds. *)

val time_ms : (unit -> 'a) -> 'a * float

val pp_s : Format.formatter -> float -> unit
(** Human-friendly duration: ["740us"], ["12.3ms"], ["2.51s"],
    ["4m08s"]. *)
