type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (int64 t) }

let derive t i =
  (* Independent stream for sub-task [i]: hash (current state, i) without
     advancing [t], so a parent can hand out per-index streams in any
     order and every index always sees the same stream. *)
  let z = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix64 (Int64.logxor (mix64 z) (Int64.of_int i)) }

let derive_fingerprint t key =
  (* String-keyed sibling of [derive]: fold the key bytes through the
     mixer against the current state, again without advancing [t].  The
     result is a pure function of (state, key) — no process-specific
     input anywhere — so the same key yields the same stream across
     runs, machines and solve orders. *)
  let z = ref (mix64 (Int64.logxor t.state golden_gamma)) in
  String.iter
    (fun c ->
      z := mix64 (Int64.add (Int64.mul !z 0x100000001B3L) (Int64.of_int (Char.code c + 1))))
    key;
  { state = mix64 (Int64.add !z (Int64.of_int (String.length key))) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 non-negative bits; modulo bias is negligible for bounds below 2^52. *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  bits mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)
let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher-Yates over an index array; O(n) space, O(n + k) time. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: weights sum to zero";
  let target = float t total in
  let n = Array.length w in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else go (i + 1) acc
  in
  go 0 0.0
