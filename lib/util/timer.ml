(* The stdlib exposes no monotonic clock ([Unix.clock_gettime] never made
   it into the Unix module), so [now_s] derives one: wall-clock deltas
   from a process-start epoch, clamped to be non-decreasing across calls
   (an NTP step or manual clock change can move [gettimeofday] backwards;
   a stopwatch must never run backwards).  The clamp is a lock-free CAS
   loop so concurrent server threads can stamp timestamps safely. *)

let epoch = Unix.gettimeofday ()
let last = Atomic.make 0.0

(* Test hook: a substitute time source (still clamped monotone).  Lets
   suites drive deadlines and stage durations deterministically instead
   of calibrating sleeps against wall time. *)
let source : (unit -> float) option Atomic.t = Atomic.make None

let set_source f =
  Atomic.set source f;
  (* Re-seat the monotone clamp in the new regime, else a fake clock far
     ahead of (or behind) real time would pin [now_s] after a switch. *)
  Atomic.set last 0.0

let now_s () =
  let raw =
    match Atomic.get source with
    | Some f -> f ()
    | None -> Unix.gettimeofday () -. epoch
  in
  let rec clamp () =
    let prev = Atomic.get last in
    if raw <= prev then prev
    else if Atomic.compare_and_set last prev raw then raw
    else clamp ()
  in
  clamp ()

let cpu_s () = Sys.time ()

type t = float

let start () = now_s ()
let elapsed_s t = now_s () -. t
let elapsed_ms t = 1000.0 *. elapsed_s t

let time f =
  let t = start () in
  let result = f () in
  (result, elapsed_s t)

let time_ms f =
  let result, s = time f in
  (result, 1000.0 *. s)

let pp_s ppf s =
  if s < 1e-3 then Format.fprintf ppf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.1fms" (s *. 1e3)
  else if s < 60.0 then Format.fprintf ppf "%.2fs" s
  else Format.fprintf ppf "%dm%02.0fs" (int_of_float s / 60) (Float.rem s 60.0)
