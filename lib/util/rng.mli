(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every randomized component of the library takes an explicit [Rng.t] so
    that whole runs are reproducible from a single seed.  The generator is
    the standard splitmix64 mixer, which is fast, has a full 2^64 period
    per stream, and supports cheap splitting into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived
    from [seed]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)

val derive : t -> int -> t
(** [derive t i] returns an independent deterministic stream for
    sub-task index [i] {e without} advancing [t]: the result depends
    only on [t]'s current state and [i].  This is how engine tasks get
    bit-reproducible randomness regardless of execution order — the
    parent derives one stream per task index up front. *)

val derive_fingerprint : t -> string -> t
(** [derive_fingerprint t key] is the string-keyed counterpart of
    {!derive}: an independent deterministic stream for the (content)
    fingerprint [key], depending only on [t]'s current state and the
    bytes of [key] — [t] is not advanced.  Because nothing
    process-specific enters the hash, the stream for a given
    (seed, key) pair is stable across process runs; this is how
    per-component solves stay bit-identical no matter which other
    components exist or in which order they are solved. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform over [0, bound).  @raise Invalid_argument
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform over the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform over [0, bound). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform over [lo, hi). *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0, n), in uniformly random order.  @raise Invalid_argument if
    [k > n] or [k < 0]. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] draws index [i] with probability proportional
    to [w.(i)].  Weights must be non-negative with a positive sum. *)
