(* Unit and property tests for the bcc_util substrate. *)

module Rng = Bcc_util.Rng
module Heap = Bcc_util.Heap
module Union_find = Bcc_util.Union_find
module Stats = Bcc_util.Stats
module Zipf = Bcc_util.Zipf
module Texttable = Bcc_util.Texttable

let qtest = QCheck_alcotest.to_alcotest

(* --- Rng --- *)

let rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = Array.init 50 (fun _ -> Rng.int64 a) in
  let ys = Array.init 50 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let rng_derive_reproducible () =
  let mk () = Rng.create 7 in
  for i = 0 to 9 do
    let a = Rng.derive (mk ()) i and b = Rng.derive (mk ()) i in
    for _ = 1 to 20 do
      Alcotest.(check int64) "same (state, index), same stream" (Rng.int64 a) (Rng.int64 b)
    done
  done

let rng_derive_indices_diverge () =
  let parent = Rng.create 7 in
  let draws i = Array.init 20 (fun _ -> Rng.int64 (Rng.derive parent i)) in
  for i = 0 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "streams %d and %d differ" i (i + 1))
      true
      (draws i <> draws (i + 1))
  done

let rng_derive_leaves_parent_untouched () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for i = 0 to 9 do
    ignore (Rng.derive a i)
  done;
  for _ = 1 to 50 do
    Alcotest.(check int64) "derive does not advance the parent" (Rng.int64 b) (Rng.int64 a)
  done

let rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in bounds" ~count:200
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.float rng bound in
      x >= 0.0 && x < bound)

let rng_shuffle_permutes =
  QCheck.Test.make ~name:"Rng.shuffle preserves the multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let a = Array.of_list xs in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let rng_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement draws distinct indices" ~count:100
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let k = 1 + (seed mod n) in
      let s = Rng.sample_without_replacement rng k n in
      let l = Array.to_list s in
      List.length (List.sort_uniq compare l) = k
      && List.for_all (fun x -> x >= 0 && x < n) l)

let rng_weighted_skips_zero () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let i = Rng.weighted_index rng [| 0.0; 1.0; 0.0 |] in
    Alcotest.(check int) "only the positive weight can be drawn" 1 i
  done

(* --- Heap --- *)

let heap_pop_sorted =
  QCheck.Test.make ~name:"Heap pops in priority order" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_range (-100.0) 100.0))
    (fun prios ->
      let n = List.length prios in
      let h = Heap.create n in
      List.iteri (fun i p -> Heap.insert h i p) prios;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (_, p) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare prios)

let heap_update_reorders () =
  let h = Heap.create 3 in
  Heap.insert h 0 5.0;
  Heap.insert h 1 10.0;
  Heap.insert h 2 1.0;
  Heap.update h 1 0.5;
  Alcotest.(check (option (pair int (float 1e-12)))) "updated key on top" (Some (1, 0.5))
    (Heap.pop h)

let heap_add_to () =
  let h = Heap.create 2 in
  Heap.insert h 0 1.0;
  Heap.add_to h 0 2.5;
  Alcotest.(check (float 1e-12)) "accumulated priority" 3.5 (Heap.priority h 0);
  Heap.add_to h 1 4.0;
  Alcotest.(check bool) "add_to inserts absent key" true (Heap.mem h 1)

let heap_remove () =
  let h = Heap.create 4 in
  List.iteri (fun i p -> Heap.insert h i p) [ 4.0; 2.0; 3.0; 1.0 ];
  Alcotest.(check bool) "remove present" true (Heap.remove h 3);
  Alcotest.(check bool) "remove absent" false (Heap.remove h 3);
  Alcotest.(check (option (pair int (float 1e-12)))) "next min" (Some (1, 2.0)) (Heap.pop h)

let heap_max_mode () =
  let h = Heap.create ~max:true 3 in
  List.iteri (fun i p -> Heap.insert h i p) [ 1.0; 3.0; 2.0 ];
  Alcotest.(check (option (pair int (float 1e-12)))) "max first" (Some (1, 3.0)) (Heap.pop h)

let heap_insert_duplicate_rejected () =
  let h = Heap.create 2 in
  Heap.insert h 0 1.0;
  Alcotest.check_raises "duplicate insert" (Invalid_argument "Heap.insert: key already present")
    (fun () -> Heap.insert h 0 2.0)

(* --- Union_find --- *)

let union_find_basics () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial count" 6 (Union_find.count uf);
  Alcotest.(check bool) "union merges" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat union is a no-op" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  Alcotest.(check bool) "transitively connected" true (Union_find.same uf 1 2);
  Alcotest.(check int) "component size" 4 (Union_find.size_of uf 3);
  Alcotest.(check int) "count after unions" 3 (Union_find.count uf)

let union_find_components =
  QCheck.Test.make ~name:"Union_find.count equals distinct components" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let uf = Union_find.create 10 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) edges;
      (* Reference count via roots. *)
      let roots = Hashtbl.create 10 in
      for v = 0 to 9 do
        Hashtbl.replace roots (Union_find.find uf v) ()
      done;
      Hashtbl.length roots = Union_find.count uf)

(* --- Stats --- *)

let stats_known () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min xs);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "sample variance" (5.0 /. 3.0) (Stats.variance xs)

let stats_histogram () =
  let xs = [| 0.0; 0.1; 0.9; 1.0; 2.0 |] in
  let bins = Stats.histogram 2 xs in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 bins in
  Alcotest.(check int) "histogram conserves the count" 5 total

(* --- Zipf --- *)

let zipf_head_heavier () =
  let z = Zipf.create ~s:1.0 100 in
  let rng = Rng.create 11 in
  let counts = Array.make 100 0 in
  for _ = 1 to 5000 do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 sampled more than rank 50" true (counts.(0) > counts.(50));
  Alcotest.(check bool) "weights decrease" true (Zipf.weight z 0 > Zipf.weight z 10)

(* --- Texttable --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let texttable_renders () =
  let t = Texttable.create [ "algo"; "utility" ] in
  Texttable.add_row t [ "A^BCC"; "42" ];
  Texttable.add_row t [ "RAND" ];
  let s = Texttable.render t in
  Alcotest.(check bool) "contains header" true (contains s "algo");
  Alcotest.(check bool) "contains cells" true (contains s "A^BCC" && contains s "RAND");
  Alcotest.(check int) "four lines (header, rule, two rows)" 4
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick rng_seed_sensitivity;
    Alcotest.test_case "rng split independence" `Quick rng_split_independent;
    Alcotest.test_case "rng derive reproducible" `Quick rng_derive_reproducible;
    Alcotest.test_case "rng derive indices diverge" `Quick rng_derive_indices_diverge;
    Alcotest.test_case "rng derive leaves parent untouched" `Quick
      rng_derive_leaves_parent_untouched;
    qtest rng_int_bounds;
    qtest rng_float_bounds;
    qtest rng_shuffle_permutes;
    qtest rng_sample_distinct;
    Alcotest.test_case "rng weighted index" `Quick rng_weighted_skips_zero;
    qtest heap_pop_sorted;
    Alcotest.test_case "heap update reorders" `Quick heap_update_reorders;
    Alcotest.test_case "heap add_to" `Quick heap_add_to;
    Alcotest.test_case "heap remove" `Quick heap_remove;
    Alcotest.test_case "heap max mode" `Quick heap_max_mode;
    Alcotest.test_case "heap duplicate insert rejected" `Quick heap_insert_duplicate_rejected;
    Alcotest.test_case "union-find basics" `Quick union_find_basics;
    qtest union_find_components;
    Alcotest.test_case "stats on known data" `Quick stats_known;
    Alcotest.test_case "stats histogram" `Quick stats_histogram;
    Alcotest.test_case "zipf shape" `Quick zipf_head_heavier;
    Alcotest.test_case "texttable renders" `Quick texttable_renders;
  ]
