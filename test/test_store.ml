(* The workload store: delta codec and apply semantics, epoch-cached
   materialization, warm-vs-cold solve quality, snapshot + journal
   persistence (including torn tails, mid-file corruption, compaction
   and generation fencing on re-put), and qcheck properties over the
   journal record codec. *)

module Store = Bcc_store.Store
module Delta = Bcc_store.Delta
module Codec = Bcc_store.Codec
module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Io = Bcc_data.Io
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let count n =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some c when c > 0 -> c | _ -> n)
  | None -> n

let ok = function
  | Ok v -> v
  | Error (`Bad msg) -> Alcotest.failf "unexpected `Bad: %s" msg
  | Error `Not_found -> Alcotest.fail "unexpected `Not_found"

let bad = function
  | Ok _ -> Alcotest.fail "expected `Bad, got Ok"
  | Error (`Bad _) -> ()
  | Error `Not_found -> Alcotest.fail "expected `Bad, got `Not_found"

(* Figure 1 as instance text (same optima as the bccd fixture: utility 9
   at budget 4, 11 at 11). *)
let fig_text =
  "budget 4\n\
   query x;y;z 8\n\
   query x;z 1\n\
   query x;y 2\n\
   classifier x 5\n\
   classifier y 3\n\
   classifier z 3\n\
   classifier x;y;z 3\n\
   classifier x;z 4\n\
   classifier y;z 0\n"

let temp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Unix.mkdir base 0o755;
  base

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = temp_dir "bcc_store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let append_file path s =
  Out_channel.with_open_gen [ Open_append; Open_binary ] 0o644 path (fun oc ->
      Out_channel.output_string oc s)

(* --- delta codec --- *)

let delta_roundtrip () =
  let ops =
    [
      Delta.Set_budget 12.5;
      Delta.Upsert ([ "wooden"; "table" ], 8.0);
      Delta.Add ([ "round" ], 2.25);
      Delta.Remove [ "round"; "table" ];
      Delta.Set_cost ([ "wooden" ], 3.0);
      Delta.Set_cost ([ "round"; "wooden" ], infinity);
    ]
  in
  Alcotest.(check bool) "round-trips" true (Delta.parse (Delta.to_string ops) = ops);
  let expect_fail name text =
    match Delta.parse text with
    | _ -> Alcotest.failf "%s: accepted" name
    | exception Failure _ -> ()
  in
  expect_fail "malformed line" "wibble x 3";
  expect_fail "NaN utility" "upsert a nan";
  expect_fail "negative utility" "upsert a -1";
  expect_fail "infinite utility" "upsert a inf";
  expect_fail "empty property" "remove a;;b";
  expect_fail "duplicate property" "upsert a;a 3";
  expect_fail "missing field" "budget";
  (* infinity is legal for costs only: it evicts the explicit price *)
  Alcotest.(check bool) "cost inf parses" true
    (Delta.parse "cost a;b inf" = [ Delta.Set_cost ([ "a"; "b" ], infinity) ]);
  (* comments and blank lines are ignored *)
  Alcotest.(check bool) "comments skipped" true
    (Delta.parse "# drift\n\nbudget 7\n" = [ Delta.Set_budget 7.0 ])

let delta_of_log () =
  let ops, stats = Delta.of_log "wooden table\t5\nround\n" in
  Alcotest.(check int) "lines" 2 stats.Bcc_data.Log_parser.lines;
  let normalized =
    List.map
      (function Delta.Add (ps, u) -> (List.sort compare ps, u) | _ -> assert false)
      ops
    |> List.sort compare
  in
  Alcotest.(check bool) "adds with counts" true
    (normalized = [ ([ "round" ], 1.0); ([ "table"; "wooden" ], 5.0) ])

(* --- apply semantics and materialization --- *)

let apply_semantics () =
  let store = Store.create () in
  Alcotest.(check bool) "bad name rejected" true
    (match Store.put store ~name:".hidden" (Store.Text fig_text) with
    | Error (`Bad _) -> true
    | _ -> false);
  let info = ok (Store.put store ~name:"fig" (Store.Text fig_text)) in
  Alcotest.(check int) "epoch 0" 0 info.Store.epoch;
  Alcotest.(check int) "three queries" 3 info.Store.num_queries;
  let s0 = ok (Store.solve store ~name:"fig" ()) in
  Alcotest.(check (float 1e-9)) "figure1 optimum" 9.0 s0.Store.solution.Solution.utility;
  Alcotest.(check bool) "first solve is cold" false s0.Store.warm;
  (* the materialized instance is cached per epoch *)
  let s0' = ok (Store.solve store ~name:"fig" ()) in
  Alcotest.(check bool) "same-epoch instance physically shared" true
    (s0.Store.instance == s0'.Store.instance);
  Alcotest.(check bool) "second solve is warm" true s0'.Store.warm;
  (* a rejected batch leaves the workload untouched *)
  bad (Store.delta store ~name:"fig" [ Delta.Upsert ([ "x" ], -1.0) ]);
  bad (Store.delta store ~name:"fig" []);
  Alcotest.(check int) "epoch unchanged after rejected batch" 0
    (Option.get (Store.info store "fig")).Store.epoch;
  (* budget change + utility drift, applied atomically *)
  let info =
    ok
      (Store.delta store ~name:"fig"
         [ Delta.Set_budget 11.0; Delta.Add ([ "x"; "y" ], 1.0); Delta.Remove [ "x"; "z" ] ])
  in
  Alcotest.(check int) "epoch advanced" 1 info.Store.epoch;
  Alcotest.(check int) "query removed" 2 info.Store.num_queries;
  let s1 = ok (Store.solve store ~name:"fig" ()) in
  Alcotest.(check bool) "new epoch materializes a new instance" true
    (not (s1.Store.instance == s0.Store.instance));
  Alcotest.(check (float 1e-9)) "new budget" 11.0 (Instance.budget s1.Store.instance);
  (* all of figure1's per-query utility remains reachable at budget 11:
     8 + (2 + 1 drifted) = 11 *)
  Alcotest.(check (float 1e-9)) "drifted optimum" 11.0 s1.Store.solution.Solution.utility;
  Alcotest.(check bool) "warm-seeded" true s1.Store.warm;
  (* unknown workload is `Not_found, unsolved workload too *)
  Alcotest.(check bool) "unknown workload" true
    (Store.solve store ~name:"nope" () = Error `Not_found);
  ignore (ok (Store.put store ~name:"fresh" (Store.Text fig_text)));
  Alcotest.(check bool) "never-solved workload has no solution" true
    (match Store.solution store "fresh" with Error `Not_found -> true | _ -> false);
  Alcotest.(check int) "epochs committed: 2 puts + 1 delta" 3
    (Store.epochs_committed store);
  Store.close store

(* --- warm vs cold (the acceptance bar: small delta -> warm >= cold) --- *)

let drifting_log n =
  String.concat ""
    (List.init n (fun i ->
         Printf.sprintf "w%d x%d\t%d\n" (i mod 8) (i mod 5) (5 + (i * 7 mod 23))))

let warm_never_trails_cold () =
  let store = Store.create () in
  ignore (ok (Store.put store ~name:"drift" ~budget:90.0 (Store.Log (drifting_log 40))));
  let s0 = ok (Store.solve store ~name:"drift" ()) in
  Alcotest.(check bool) "baseline solve has utility" true
    (s0.Store.solution.Solution.utility > 0.0);
  (* 2 of 40 queries change (5%) *)
  ignore
    (ok
       (Store.delta store ~name:"drift"
          [ Delta.Upsert ([ "w1"; "x1" ], 60.0); Delta.Add ([ "w2"; "x2" ], 25.0) ]));
  let warm = ok (Store.solve store ~name:"drift" ()) in
  Alcotest.(check bool) "warm-seeded" true warm.Store.warm;
  Alcotest.(check bool) "seed re-validated to a positive utility" true
    (warm.Store.seed_utility > 0.0);
  let cold = ok (Store.solve store ~name:"drift" ~cold:true ()) in
  Alcotest.(check bool) "cold solve is cold" false cold.Store.warm;
  Alcotest.(check bool)
    (Printf.sprintf "warm (%.1f) >= cold (%.1f)" warm.Store.solution.Solution.utility
       cold.Store.solution.Solution.utility)
    true
    (warm.Store.solution.Solution.utility >= cold.Store.solution.Solution.utility -. 1e-9);
  (* warm ratio got exported *)
  (match (Option.get (Store.info store "drift")).Store.warm_ratio with
  | Some r -> Alcotest.(check bool) "warm ratio in (0, 1]" true (r > 0.0 && r <= 1.0 +. 1e-9)
  | None -> Alcotest.fail "warm_ratio missing after a warm solve");
  Store.close store

(* The solver-level guarantee behind it: the result never trails its own
   re-validated seed, even when the seed is junk for the new instance. *)
let solver_warm_contract () =
  let inst = Io.load_string ~name:"fig" fig_text in
  let cold = Bcc_core.Solver.solve inst in
  let shifted = Instance.with_budget inst 3.0 in
  (* warm seed from a bigger budget: picks that no longer fit are
     dropped, and the result is still feasible and >= the seed *)
  let warm = Bcc_core.Solver.solve ~warm:cold shifted in
  Alcotest.(check bool) "feasible under the tighter budget" true
    (Solution.verify shifted warm);
  let reseeded = Bcc_core.Solver.solve ~warm:cold inst in
  Alcotest.(check (float 1e-9)) "same instance + own seed keeps the optimum"
    cold.Solution.utility reseeded.Solution.utility

(* --- persistence --- *)

let persistence_roundtrip () =
  with_dir @@ fun dir ->
  let epoch1_solution =
    let store = Store.create ~dir () in
    ignore (ok (Store.put store ~name:"fig" (Store.Text fig_text)));
    ignore
      (ok (Store.delta store ~name:"fig" [ Delta.Set_budget 11.0; Delta.Add ([ "y" ], 3.0) ]));
    let s = ok (Store.solve store ~name:"fig" ()) in
    Store.close store;
    s
  in
  (* reopen: same epoch, same committed solution, and the journal keeps
     working *)
  let store = Store.create ~dir () in
  let info = Option.get (Store.info store "fig") in
  Alcotest.(check int) "epoch recovered" 1 info.Store.epoch;
  Alcotest.(check (option int)) "solved epoch recovered" (Some 1) info.Store.solved_epoch;
  let s = ok (Store.solution store "fig") in
  Alcotest.(check (float 1e-9)) "utility recovered"
    epoch1_solution.Store.solution.Solution.utility s.Store.solution.Solution.utility;
  Alcotest.(check (float 1e-9)) "cost recovered"
    epoch1_solution.Store.solution.Solution.cost s.Store.solution.Solution.cost;
  Alcotest.(check bool) "replay time measured" true (Store.replay_seconds store >= 0.0);
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "x"; "y" ], 1.0) ]));
  Alcotest.(check int) "journal usable after replay" 2
    (Option.get (Store.info store "fig")).Store.epoch;
  Store.close store

let torn_tail_truncated () =
  with_dir @@ fun dir ->
  let store = Store.create ~dir () in
  ignore (ok (Store.put store ~name:"fig" (Store.Text fig_text)));
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "y" ], 3.0) ]));
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "z" ], 2.0) ]));
  Store.close store;
  let journal = Filename.concat dir "fig.journal" in
  let intact = read_file journal in
  (* a crash mid-append: half a record at the tail *)
  append_file journal "@rec delta gXXX 3 250 0123456789abcdef0123456789abcdef\npartial";
  let store = Store.create ~dir () in
  Alcotest.(check int) "committed epochs survive" 2
    (Option.get (Store.info store "fig")).Store.epoch;
  Alcotest.(check string) "torn tail truncated from the file" intact (read_file journal);
  (* and appends continue cleanly after the truncation *)
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "x" ], 1.0) ]));
  Store.close store;
  let store = Store.create ~dir () in
  Alcotest.(check int) "post-recovery delta survives too" 3
    (Option.get (Store.info store "fig")).Store.epoch;
  Store.close store

let mid_journal_corruption () =
  with_dir @@ fun dir ->
  let store = Store.create ~dir () in
  ignore (ok (Store.put store ~name:"fig" (Store.Text fig_text)));
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "y" ], 3.0) ]));
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "z" ], 2.0) ]));
  Store.close store;
  let journal = Filename.concat dir "fig.journal" in
  let bytes = Bytes.of_string (read_file journal) in
  (* flip a payload byte of the SECOND record: its checksum breaks, so
     replay keeps epoch 1 and distrusts everything after *)
  Bytes.set bytes (Bytes.length bytes - 3)
    (match Bytes.get bytes (Bytes.length bytes - 3) with '0' -> '1' | _ -> '0');
  Out_channel.with_open_bin journal (fun oc -> Out_channel.output_bytes oc bytes);
  let store = Store.create ~dir () in
  Alcotest.(check int) "intact prefix survives corruption" 1
    (Option.get (Store.info store "fig")).Store.epoch;
  Store.close store

let compaction_folds_journal () =
  with_dir @@ fun dir ->
  let store = Store.create ~dir ~compact_bytes:64 () in
  ignore (ok (Store.put store ~name:"fig" (Store.Text fig_text)));
  for i = 1 to 5 do
    ignore
      (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "y" ], float_of_int i) ]))
  done;
  (* every delta record exceeds 64 bytes, so each commit compacts *)
  let info = Option.get (Store.info store "fig") in
  Alcotest.(check int) "journal folded into the snapshot" 0 info.Store.journal_bytes;
  Alcotest.(check int) "epochs intact" 5 info.Store.epoch;
  Store.close store;
  let store = Store.create ~dir ~compact_bytes:64 () in
  let info = Option.get (Store.info store "fig") in
  Alcotest.(check int) "compacted state replays" 5 info.Store.epoch;
  (* the folded utility drift is really in the materialized instance:
     query y accumulated 1+2+3+4+5 on top of nothing *)
  let s = ok (Store.solve store ~name:"fig" ~cold:true ()) in
  let inst = s.Store.instance in
  let found = ref false in
  for qi = 0 to Instance.num_queries inst - 1 do
    if Instance.utility inst qi = 15.0 then found := true
  done;
  Alcotest.(check bool) "accumulated adds survive compaction" true !found;
  Store.close store

(* A re-put starts a new generation: journal records from the previous
   life must not replay onto the new base, even if the crash happened
   before the journal truncation hit the disk. *)
let put_fences_old_generation () =
  with_dir @@ fun dir ->
  let store = Store.create ~dir () in
  ignore (ok (Store.put store ~name:"fig" (Store.Text fig_text)));
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "y" ], 3.0) ]));
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "z" ], 2.0) ]));
  Store.close store;
  let journal = Filename.concat dir "fig.journal" in
  let old_records = read_file journal in
  let store = Store.create ~dir () in
  ignore (ok (Store.put store ~name:"fig" (Store.Text fig_text)));
  Store.close store;
  (* simulate the crash window: old-generation records still (or again)
     in the journal after the new-generation snapshot landed *)
  append_file journal old_records;
  let store = Store.create ~dir () in
  Alcotest.(check int) "old-generation records are fenced off" 0
    (Option.get (Store.info store "fig")).Store.epoch;
  ignore (ok (Store.delta store ~name:"fig" [ Delta.Add ([ "x" ], 1.0) ]));
  Alcotest.(check int) "new generation advances normally" 1
    (Option.get (Store.info store "fig")).Store.epoch;
  Store.close store

(* --- solution codec --- *)

let solution_codec () =
  let inst = Io.load_string ~name:"fig" fig_text in
  let sol = Bcc_core.Solver.solve inst in
  let text = Codec.solution_to_string inst sol in
  let back = Codec.solution_of_string inst text in
  Alcotest.(check (float 1e-9)) "utility round-trips" sol.Solution.utility
    back.Solution.utility;
  Alcotest.(check (float 1e-9)) "cost round-trips" sol.Solution.cost back.Solution.cost;
  (* the same file format Io.save_solution writes loads as a warm seed *)
  let file = Filename.temp_file "bcc_sol" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Io.save_solution file inst sol;
      let loaded = Codec.solution_of_string inst (read_file file) in
      Alcotest.(check (float 1e-9)) "Io.save_solution interchanges" sol.Solution.utility
        loaded.Solution.utility);
  (* lenient mode drops drifted selections; strict refuses them *)
  let drifted = text ^ "select nosuch;props 9\n" in
  Alcotest.(check (float 1e-9)) "unknown selection dropped leniently"
    sol.Solution.utility (Codec.solution_of_string inst drifted).Solution.utility;
  (match Codec.solution_of_string ~strict:true inst drifted with
  | _ -> Alcotest.fail "strict mode accepted an unknown selection"
  | exception Failure _ -> ());
  match Codec.solution_of_string inst "select\n" with
  | _ -> Alcotest.fail "malformed select line accepted"
  | exception Failure _ -> ()

(* --- qcheck: journal record codec --- *)

let gen_record rng =
  let token () =
    let n = 1 + Rng.int rng 8 in
    String.init n (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))
  in
  let payload =
    (* arbitrary bytes, newlines and NULs included: framing is by length *)
    String.init (Rng.int rng 200) (fun _ -> Char.chr (Rng.int rng 256))
  in
  { Codec.kind = token (); generation = token (); epoch = Rng.int rng 1000; payload }

let codec_roundtrip =
  QCheck.Test.make ~name:"codec: encode/decode round-trips" ~count:(count 200)
    QCheck.small_int (fun seed ->
      let rng = Rng.create (0x5374 lxor seed) in
      let records = List.init (1 + Rng.int rng 6) (fun _ -> gen_record rng) in
      let bytes = String.concat "" (List.map Codec.encode records) in
      let decoded, tail = Codec.decode bytes in
      decoded = records && tail = 0)

let codec_truncation =
  QCheck.Test.make ~name:"codec: any truncation yields a committed prefix"
    ~count:(count 200) QCheck.small_int (fun seed ->
      let rng = Rng.create (0x7472 lxor seed) in
      let records = List.init (1 + Rng.int rng 5) (fun _ -> gen_record rng) in
      let encodings = List.map Codec.encode records in
      let bytes = String.concat "" encodings in
      let cut = Rng.int rng (String.length bytes + 1) in
      let truncated = String.sub bytes 0 cut in
      let decoded, tail = Codec.decode truncated in
      (* expected: the longest whole-record prefix that fits in [cut] *)
      let rec prefix acc len = function
        | e :: rest when len + String.length e <= cut ->
            prefix (acc + 1) (len + String.length e) rest
        | _ -> (acc, len)
      in
      let n_expected, len_expected = prefix 0 0 encodings in
      List.length decoded = n_expected
      && decoded = List.filteri (fun i _ -> i < n_expected) records
      && tail = cut - len_expected)

let suite =
  [
    ("delta: codec round-trip and rejects", `Quick, delta_roundtrip);
    ("delta: of_log", `Quick, delta_of_log);
    ("store: apply semantics + epoch cache", `Quick, apply_semantics);
    ("store: warm re-solve never trails cold", `Quick, warm_never_trails_cold);
    ("solver: warm seed contract", `Quick, solver_warm_contract);
    ("persistence: snapshot + journal round-trip", `Quick, persistence_roundtrip);
    ("persistence: torn tail truncated, not fatal", `Quick, torn_tail_truncated);
    ("persistence: mid-journal corruption keeps prefix", `Quick, mid_journal_corruption);
    ("persistence: compaction folds the journal", `Quick, compaction_folds_journal);
    ("persistence: re-put fences the old generation", `Quick, put_fences_old_generation);
    ("solution codec: round-trip, lenient drift, strict", `Quick, solution_codec);
    qtest codec_roundtrip;
    qtest codec_truncation;
  ]
