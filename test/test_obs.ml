(* Tests for bcc_obs: span nesting, the bounded ring buffer, the
   disabled fast path, the stage profiler, and the Chrome trace_event
   export — parsed back with the server's JSON codec, which is the
   compatibility bar the emitter promises. *)

module Trace = Bcc_obs.Trace
module Stage = Bcc_obs.Stage
module Event = Bcc_obs.Event
module Progress = Bcc_obs.Progress
module Recorder = Bcc_obs.Recorder
module Engine = Bcc_engine.Engine
module Json = Bcc_server.Json
module Solver = Bcc_core.Solver
module Solution = Bcc_core.Solution

(* Tracing state is global; every test that turns it on restores the
   disabled default (and the default ring size) on the way out. *)
let with_obs ?(capacity = 4096) f =
  Trace.set_tracing ~capacity true;
  Trace.set_profiling true;
  Stage.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_tracing false;
      Trace.set_profiling false;
      Trace.clear ();
      Stage.clear_observer ();
      Stage.reset ())
    f

let names () = List.map (fun sp -> sp.Trace.name) (Trace.spans ())

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let span_nesting () =
  with_obs (fun () ->
      Trace.with_span ~name:"outer" (fun outer ->
          Alcotest.(check int) "outer is a root" (-1) outer.Trace.parent;
          Trace.with_span ~name:"inner" (fun inner ->
              Alcotest.(check int) "inner nested under outer" outer.Trace.id
                inner.Trace.parent;
              Trace.add_attr inner "k" (Trace.Int 7));
          Trace.with_span ~name:"inner2" (fun inner2 ->
              Alcotest.(check int) "sibling nested under outer" outer.Trace.id
                inner2.Trace.parent));
      Alcotest.(check (list string)) "completion order (children first)"
        [ "inner"; "inner2"; "outer" ] (names ());
      Trace.with_span ~name:"after" (fun sp ->
          Alcotest.(check int) "stack unwound: next span is a root" (-1)
            sp.Trace.parent);
      (match Trace.spans () with
      | inner :: _ ->
          Alcotest.(check bool) "attr recorded" true
            (List.mem_assoc "k" inner.Trace.attrs)
      | [] -> Alcotest.fail "no spans recorded");
      Alcotest.(check bool) "profiler fed from the same spans" true
        (List.exists (fun s -> s.Stage.stage = "outer") (Stage.stats ())))

let span_survives_exception () =
  with_obs (fun () ->
      (try Trace.with_span ~name:"boom" (fun _ -> failwith "x")
       with Failure _ -> ());
      Alcotest.(check (list string)) "span recorded despite the raise"
        [ "boom" ] (names ());
      Trace.with_span ~name:"next" (fun sp ->
          Alcotest.(check int) "stack recovered" (-1) sp.Trace.parent))

let per_thread_roots () =
  with_obs (fun () ->
      (* No sleeps: the per-thread-root property holds whether or not the
         spans overlap in time, and sleeping just made the test sensitive
         to scheduler load. *)
      let spin name =
        Thread.create (fun () -> Trace.with_span ~name (fun _ -> ())) ()
      in
      let t1 = spin "t1" and t2 = spin "t2" in
      Thread.join t1;
      Thread.join t2;
      let spans = Trace.spans () in
      Alcotest.(check int) "both spans kept" 2 (List.length spans);
      List.iter
        (fun sp ->
          Alcotest.(check int) (sp.Trace.name ^ " is a root") (-1) sp.Trace.parent)
        spans;
      match spans with
      | [ a; b ] ->
          Alcotest.(check bool) "distinct thread ids" true (a.Trace.tid <> b.Trace.tid)
      | _ -> ())

(* Two domains hammering the tracer concurrently: every span must land
   with its parent linkage intact inside its own domain (the recording
   context is keyed by domain id as well as thread id), and nothing may
   be lost or cross-linked. *)
let multi_domain_stress () =
  with_obs ~capacity:8192 (fun () ->
      let iters = 400 in
      let work d () =
        for _ = 1 to iters do
          Trace.with_span ~name:(Printf.sprintf "outer%d" d) (fun outer ->
              Trace.with_span ~name:(Printf.sprintf "inner%d" d) (fun inner ->
                  if inner.Trace.parent <> outer.Trace.id then
                    failwith "inner span linked to a foreign parent"))
        done
      in
      let d1 = Domain.spawn (work 1) and d2 = Domain.spawn (work 2) in
      Domain.join d1;
      Domain.join d2;
      let spans = Trace.spans () in
      Alcotest.(check int) "every span recorded" (4 * iters) (List.length spans);
      Alcotest.(check int) "none dropped" 0 (Trace.dropped ());
      let by_id = Hashtbl.create 1024 in
      List.iter (fun sp -> Hashtbl.replace by_id sp.Trace.id sp) spans;
      let tid_of_domain = Hashtbl.create 2 in
      List.iter
        (fun sp ->
          let d = sp.Trace.name.[String.length sp.Trace.name - 1] in
          (match Hashtbl.find_opt tid_of_domain d with
          | Some tid ->
              Alcotest.(check int)
                (Printf.sprintf "domain %c keeps one recording context" d)
                tid sp.Trace.tid
          | None -> Hashtbl.add tid_of_domain d sp.Trace.tid);
          if String.length sp.Trace.name >= 5 && String.sub sp.Trace.name 0 5 = "inner"
          then
            match Hashtbl.find_opt by_id sp.Trace.parent with
            | Some p ->
                Alcotest.(check string) "parent is this domain's outer"
                  ("outer" ^ String.make 1 d)
                  p.Trace.name
            | None -> Alcotest.fail "inner span's parent not recorded"
          else
            Alcotest.(check int) (sp.Trace.name ^ " is a root") (-1) sp.Trace.parent)
        spans;
      (match (Hashtbl.find_opt tid_of_domain '1', Hashtbl.find_opt tid_of_domain '2') with
      | Some t1, Some t2 ->
          Alcotest.(check bool) "domains record under distinct contexts" true (t1 <> t2)
      | _ -> Alcotest.fail "missing a domain's spans");
      (* The stage profiler saw every span exactly once. *)
      List.iter
        (fun name ->
          match List.find_opt (fun s -> s.Stage.stage = name) (Stage.stats ()) with
          | Some s -> Alcotest.(check int) (name ^ " stage count") iters s.Stage.count
          | None -> Alcotest.failf "stage %s missing" name)
        [ "outer1"; "inner1"; "outer2"; "inner2" ])

let ring_wraparound () =
  with_obs ~capacity:4 (fun () ->
      for i = 1 to 10 do
        Trace.with_span ~name:(Printf.sprintf "s%d" i) (fun _ -> ())
      done;
      Alcotest.(check (list string)) "last 4 kept, oldest first"
        [ "s7"; "s8"; "s9"; "s10" ] (names ());
      Alcotest.(check int) "dropped counter" 6 (Trace.dropped ());
      Alcotest.(check (list string)) "spans ~last:2" [ "s9"; "s10" ]
        (List.map (fun sp -> sp.Trace.name) (Trace.spans ~last:2 ())))

let disabled_noop () =
  Trace.set_tracing false;
  Trace.set_profiling false;
  Trace.clear ();
  Stage.reset ();
  let r =
    Trace.with_span ~name:"off" (fun sp ->
        Alcotest.(check bool) "null span" false (Trace.recording sp);
        Trace.add_attr sp "k" (Trace.Int 1);
        42)
  in
  Alcotest.(check int) "value passed through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()));
  Alcotest.(check int) "no stages recorded" 0 (List.length (Stage.stats ()));
  Alcotest.(check bool) "null span not mutated" true
    (Trace.null_span.Trace.attrs = [])

let chrome_json_roundtrips () =
  with_obs (fun () ->
      Trace.with_span ~name:"outer" (fun sp ->
          Trace.add_attr sp "count" (Trace.Int 3);
          Trace.add_attr sp "ratio" (Trace.Float 0.5);
          Trace.add_attr sp "unbounded" (Trace.Float infinity);
          Trace.add_attr sp "label" (Trace.Str "qk \"half\"");
          Trace.add_attr sp "ok" (Trace.Bool true);
          Trace.with_span ~name:"inner" (fun _ -> ()));
      let j = Json.of_string_exn (Trace.chrome_json (Trace.spans ())) in
      Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
        (Option.bind (Json.member "displayTimeUnit" j) Json.get_string);
      let events =
        match Option.bind (Json.member "traceEvents" j) Json.get_list with
        | Some l -> l
        | None -> Alcotest.fail "traceEvents missing or not a list"
      in
      Alcotest.(check int) "two events" 2 (List.length events);
      let field name e =
        match Json.member name e with
        | Some v -> v
        | None -> Alcotest.failf "event missing %S" name
      in
      List.iter
        (fun e ->
          List.iter
            (fun f -> ignore (field f e))
            [ "name"; "cat"; "ph"; "pid"; "tid"; "ts"; "dur"; "args" ];
          Alcotest.(check (option string)) "complete event" (Some "X")
            (Json.get_string (field "ph" e));
          Alcotest.(check bool) "non-negative duration" true
            (match Json.get_num (field "dur" e) with
            | Some d -> d >= 0.0
            | None -> false))
        events;
      let by_name n =
        List.find (fun e -> Json.get_string (field "name" e) = Some n) events
      in
      let args = field "args" (by_name "outer") in
      let num k = Option.bind (Json.member k args) Json.get_num in
      Alcotest.(check (option (float 0.0))) "int attr" (Some 3.0) (num "count");
      Alcotest.(check (option (float 0.0))) "float attr" (Some 0.5) (num "ratio");
      Alcotest.(check (option (float 0.0))) "infinity round-trips" (Some infinity)
        (num "unbounded");
      Alcotest.(check (option string)) "escaped string attr" (Some "qk \"half\"")
        (Option.bind (Json.member "label" args) Json.get_string);
      Alcotest.(check (option bool)) "bool attr" (Some true)
        (Option.bind (Json.member "ok" args) Json.get_bool);
      let inner_args = field "args" (by_name "inner") in
      Alcotest.(check bool) "parent_id links inner to outer" true
        (let outer_id = num "span_id" in
         outer_id <> None
         && Option.bind (Json.member "parent_id" inner_args) Json.get_num = outer_id))

let stage_stats_and_observer () =
  Stage.reset ();
  Fun.protect
    ~finally:(fun () ->
      Stage.clear_observer ();
      Stage.reset ())
    (fun () ->
      let seen = ref [] in
      Stage.set_observer (fun name dt -> seen := (name, dt) :: !seen);
      Stage.record "alpha" 0.25;
      Stage.record "alpha" 0.75;
      Stage.record "beta" 0.1;
      (match Stage.stats () with
      | [ a; b ] ->
          Alcotest.(check string) "sorted by total time desc" "alpha" a.Stage.stage;
          Alcotest.(check int) "count" 2 a.Stage.count;
          Alcotest.(check (float 1e-9)) "total" 1.0 a.Stage.total_s;
          Alcotest.(check (float 1e-9)) "min" 0.25 a.Stage.min_s;
          Alcotest.(check (float 1e-9)) "max" 0.75 a.Stage.max_s;
          Alcotest.(check (float 1e-9)) "single-sample min = max" b.Stage.max_s
            b.Stage.min_s;
          Alcotest.(check string) "beta second" "beta" b.Stage.stage
      | l -> Alcotest.failf "expected 2 stats, got %d" (List.length l));
      Alcotest.(check int) "observer saw every record" 3 (List.length !seen);
      let summary = Stage.summary () in
      List.iter
        (fun needle ->
          if not (contains ~needle summary) then
            Alcotest.failf "summary lacks %S:\n%s" needle summary)
        [ "alpha"; "beta"; "stage"; "min" ];
      Stage.reset ();
      Alcotest.(check int) "reset clears" 0 (List.length (Stage.stats ())))

(* A real solve must light up the whole pipeline vocabulary. *)
let solve_stage_coverage () =
  with_obs (fun () ->
      let inst = Fixtures.figure1 ~budget:4.0 in
      let sol = Solver.solve inst in
      Alcotest.(check (float 1e-6)) "figure1 optimum" 9.0 sol.Solution.utility;
      let have = List.sort_uniq compare (names ()) in
      List.iter
        (fun required ->
          if not (List.mem required have) then
            Alcotest.failf "stage %S missing from trace (got: %s)" required
              (String.concat ", " have))
        [ "solve"; "prune"; "round"; "decompose"; "knapsack"; "qk"; "mc3"; "sweep" ];
      let round = List.find (fun sp -> sp.Trace.name = "round") (Trace.spans ()) in
      List.iter
        (fun attr ->
          Alcotest.(check bool) (Printf.sprintf "round records %s" attr) true
            (List.mem_assoc attr round.Trace.attrs))
        [ "arm"; "gain"; "cost" ];
      (* and the whole trace exports to parseable Chrome JSON *)
      let j = Json.of_string_exn (Trace.chrome_json (Trace.spans ())) in
      match Option.bind (Json.member "traceEvents" j) Json.get_list with
      | Some events ->
          Alcotest.(check bool) "one event per span" true
            (List.length events = List.length (Trace.spans ()))
      | None -> Alcotest.fail "traceEvents missing")

(* Span and stage durations under an injected fake clock: exact,
   deterministic deltas instead of sleep-and-hope timing assertions, so
   the test passes identically under load and any BCC_JOBS. *)
let fake_clock_durations () =
  let module Timer = Bcc_util.Timer in
  let now = Atomic.make 1000.0 in
  Timer.set_source (Some (fun () -> Atomic.get now));
  Fun.protect
    ~finally:(fun () -> Timer.set_source None)
    (fun () ->
      with_obs (fun () ->
          Trace.with_span ~name:"timed-outer" (fun _ ->
              Atomic.set now 1000.5;
              Trace.with_span ~name:"timed-inner" (fun _ -> Atomic.set now 1000.75));
          (match Trace.spans () with
          | [ inner; outer ] ->
              Alcotest.(check string) "inner first" "timed-inner" inner.Trace.name;
              Alcotest.(check (float 1e-9)) "inner duration exact" 0.25
                (inner.Trace.end_s -. inner.Trace.start_s);
              Alcotest.(check (float 1e-9)) "outer duration exact" 0.75
                (outer.Trace.end_s -. outer.Trace.start_s)
          | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
          match List.find_opt (fun s -> s.Stage.stage = "timed-outer") (Stage.stats ()) with
          | Some s -> Alcotest.(check (float 1e-9)) "profiler saw the fake delta" 0.75 s.Stage.total_s
          | None -> Alcotest.fail "timed-outer stage missing"));
  (* Restoring the real clock re-seats the monotone clamp: time must not
     stay pinned at the fake epoch. *)
  let t0 = Timer.now_s () in
  Alcotest.(check bool) "real clock runs after restore" true
    (Timer.now_s () >= t0 && t0 < 999.0)

(* --- wide events, progress stream, flight recorder --- *)

(* Event state is process-global like tracing; every test restores the
   disabled default and removes whatever sinks it installed. *)
let with_events ?(capacity = 4096) f =
  Event.set_enabled ~capacity true;
  Fun.protect
    ~finally:(fun () ->
      Recorder.disable ();
      (* [slow] is sticky — restore the default alongside the dir. *)
      Recorder.set_debug_dir ~slow:1.0 None;
      Recorder.clear ();
      Event.clear_sampling ();
      Event.close_log ();
      Event.set_enabled false;
      Event.clear ())
    f

let event_names () = List.map (fun e -> e.Event.name) (Event.events ())

let event_ring_and_sampling () =
  with_events ~capacity:4 (fun () ->
      for i = 1 to 6 do
        Event.emit (Printf.sprintf "e%d" i)
      done;
      Alcotest.(check (list string)) "bounded ring, oldest first"
        [ "e3"; "e4"; "e5"; "e6" ] (event_names ());
      Alcotest.(check int) "dropped counter" 2 (Event.dropped ());
      Alcotest.(check (list string)) "events ~last" [ "e6" ]
        (List.map (fun e -> e.Event.name) (Event.events ~last:1 ()));
      (* 1-in-3 sampling keeps the first of every 3, deterministically.
         Resize the ring so nothing wraps out of the count. *)
      Event.set_enabled ~capacity:64 true;
      Event.set_sampling "noisy" 3;
      for _ = 1 to 7 do
        Event.emit "noisy";
        Event.emit "kept"
      done;
      let count name = List.length (List.filter (( = ) name) (event_names ())) in
      Alcotest.(check int) "sampled type thinned" 3 (count "noisy");
      Alcotest.(check int) "other types untouched" 7 (count "kept");
      Event.set_sampling "noisy" 1;
      Event.clear ();
      Event.emit "noisy";
      Alcotest.(check int) "n <= 1 removes the rule" 1 (count "noisy"))

let event_sinks () =
  with_events (fun () ->
      let seen = ref [] in
      Event.add_sink ~name:"boom" (fun _ -> failwith "sink bug");
      Event.add_sink ~name:"seen" (fun e -> seen := e.Event.name :: !seen);
      Fun.protect
        ~finally:(fun () ->
          Event.remove_sink "boom";
          Event.remove_sink "seen")
        (fun () ->
          Event.emit "first" ~attrs:[ ("k", Event.Int 1) ];
          Event.emit "second";
          Alcotest.(check (list string)) "raising sink loses only its delivery"
            [ "second"; "first" ] !seen;
          Alcotest.(check (list string)) "ring unaffected by the raise"
            [ "first"; "second" ] (event_names ());
          Event.remove_sink "seen";
          Event.emit "third";
          Alcotest.(check (list string)) "removed sink sees nothing"
            [ "second"; "first" ] !seen))

let event_disabled_noop () =
  Event.set_enabled false;
  Event.clear ();
  Event.emit "ghost" ~attrs:[ ("k", Event.Int 1) ];
  Alcotest.(check int) "nothing recorded when off" 0
    (List.length (Event.events ()));
  Alcotest.(check bool) "enabled reports off" false (Event.enabled ())

let corr_ambient_and_engine () =
  with_events (fun () ->
      Alcotest.(check string) "no ambient corr by default" "" (Event.current_corr ());
      let c1 = Event.new_corr () and c2 = Event.new_corr () in
      Alcotest.(check bool) "fresh ids distinct" true (c1 <> c2);
      Alcotest.(check int) "12 hex chars" 12 (String.length c1);
      Event.with_corr c1 (fun () ->
          Event.emit "outer";
          Event.with_corr c2 (fun () -> Event.emit "nested");
          Alcotest.(check string) "scope restored after nesting" c1
            (Event.current_corr ()));
      Alcotest.(check string) "scope restored at top" "" (Event.current_corr ());
      (match Event.events () with
      | [ outer; nested ] ->
          Alcotest.(check string) "outer stamped" c1 outer.Event.corr;
          Alcotest.(check string) "nested stamped" c2 nested.Event.corr
      | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
      (* Engine tasks capture the ambient corr at [make] and re-install
         it on whichever worker domain runs them. *)
      let pool = Engine.Pool.domains ~jobs:2 in
      Fun.protect
        ~finally:(fun () -> Engine.Pool.shutdown pool)
        (fun () ->
          let tasks =
            Event.with_corr c1 (fun () ->
                List.init 8 (fun i ->
                    Engine.Task.make ~label:"corr-probe" (fun _ ->
                        Event.emit "task_tick";
                        (i, Event.current_corr ()))))
          in
          let results = Engine.Portfolio.collect pool tasks in
          List.iter
            (fun (i, corr) ->
              Alcotest.(check string)
                (Printf.sprintf "task %d ran under the submitter's corr" i)
                c1 corr)
            results;
          List.iter
            (fun e ->
              if e.Event.name = "task_tick" then
                Alcotest.(check string) "worker-domain event stamped" c1 e.Event.corr)
            (Event.events ())))

let jsonl_codec_roundtrip () =
  let ev =
    {
      Event.ts_s = 12.125;
      corr = "00ab34cd56ef";
      name = "incumbent_update";
      attrs =
        [
          ("round", Event.Int 3);
          ("arm", Event.Str "qk:half \"quoted\"\n");
          ("utility", Event.Float 42.0);
          ("ratio", Event.Float 0.375);
          ("slack", Event.Float infinity);
          ("nanv", Event.Float nan);
          ("neg", Event.Float neg_infinity);
          ("ok", Event.Bool true);
          ("ctl", Event.Str "tab\there\x01");
        ];
    }
  in
  let line = Event.to_json_line ev in
  (* The line is plain JSON: the server codec must parse it. *)
  (match Json.of_string line with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "server codec rejects event JSON: %s" msg);
  (match Event.of_json_line line with
  | None -> Alcotest.failf "decoder rejected its own encoding: %s" line
  | Some d ->
      Alcotest.(check (float 1e-9)) "ts" ev.Event.ts_s d.Event.ts_s;
      Alcotest.(check string) "corr" ev.Event.corr d.Event.corr;
      Alcotest.(check string) "name" ev.Event.name d.Event.name;
      Alcotest.(check int) "attr count" (List.length ev.Event.attrs)
        (List.length d.Event.attrs);
      List.iter2
        (fun (k, v) (k', v') ->
          Alcotest.(check string) "attr order preserved" k k';
          match (v, v') with
          | Event.Float a, Event.Float b when Float.is_nan a ->
              Alcotest.(check bool) (k ^ " nan") true (Float.is_nan b)
          | v, v' -> Alcotest.(check bool) (k ^ " value") true (v = v'))
        ev.Event.attrs d.Event.attrs);
  (* Integer-valued floats survive as floats (not as Int). *)
  (match Event.of_json_line (Event.to_json_line ev) with
  | Some d -> (
      match List.assoc "utility" d.Event.attrs with
      | Event.Float 42.0 -> ()
      | _ -> Alcotest.fail "integer-valued float decoded to the wrong shape")
  | None -> Alcotest.fail "decode failed");
  (* Total decoder: truncations never raise. *)
  for i = 0 to String.length line - 1 do
    ignore (Event.of_json_line (String.sub line 0 i))
  done;
  List.iter
    (fun junk ->
      Alcotest.(check bool) ("rejects " ^ junk) true (Event.of_json_line junk = None))
    [ ""; "{"; "null"; "[1]"; "{\"ts\":}"; "{\"ts\":1,\"corr\":3}" ]

let progress_stream_roundtrip () =
  with_events (fun () ->
      let inc =
        {
          Progress.round = 2;
          arm = "knap-all";
          utility = 120.0;
          cost = 35.5;
          budget_slack = 4.5;
          deadline_margin_s = infinity;
          knap_items = 17;
          qk_nodes = 240;
        }
      in
      Progress.emit_incumbent inc;
      Progress.emit_report
        {
          Progress.rounds = 3;
          improvements = 4;
          utility = 120.0;
          cost = 35.5;
          utility_ratio = 0.75;
          degraded = false;
          wall_s = 0.25;
        };
      match Event.events () with
      | [ e1; e2 ] ->
          (match Progress.incumbent_of_event e1 with
          | Some i ->
              Alcotest.(check string) "arm" "knap-all" i.Progress.arm;
              Alcotest.(check int) "round" 2 i.Progress.round;
              Alcotest.(check (float 1e-9)) "slack" 4.5 i.Progress.budget_slack;
              Alcotest.(check bool) "deadline margin inf" true
                (i.Progress.deadline_margin_s = infinity);
              Alcotest.(check int) "qk nodes" 240 i.Progress.qk_nodes
          | None -> Alcotest.fail "incumbent event not decodable");
          (match Progress.report_of_event e2 with
          | Some r ->
              Alcotest.(check int) "rounds" 3 r.Progress.rounds;
              Alcotest.(check (float 1e-9)) "ratio" 0.75 r.Progress.utility_ratio
          | None -> Alcotest.fail "report event not decodable");
          Alcotest.(check bool) "report is not an incumbent" true
            (Progress.incumbent_of_event e2 = None);
          (* And the same decodes through the JSONL codec. *)
          (match Event.of_json_line (Event.to_json_line e1) with
          | Some e1' ->
              Alcotest.(check bool) "JSONL round-trip preserves the incumbent" true
                (Progress.incumbent_of_event e1' = Some inc)
          | None -> Alcotest.fail "incumbent line not decodable");
          Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "curve"
            [ (e1.Event.ts_s, 120.0) ]
            (Progress.curve (Event.events ()))
      | l -> Alcotest.failf "expected 2 events, got %d" (List.length l))

(* The acceptance bar of the telemetry layer: a real solve streams a
   well-formed anytime curve whose last point is the returned solution,
   and enabling events does not change the answer. *)
let solve_progress_stream () =
  let inst = Fixtures.figure1 ~budget:4.0 in
  let off = Solver.solve inst in
  with_events (fun () ->
      let corr = Event.new_corr () in
      let on = Event.with_corr corr (fun () -> Solver.solve inst) in
      Alcotest.(check (float 0.0)) "utility identical events on/off"
        off.Solution.utility on.Solution.utility;
      Alcotest.(check (float 0.0)) "cost identical events on/off" off.Solution.cost
        on.Solution.cost;
      Alcotest.(check bool) "classifiers identical events on/off" true
        (off.Solution.classifiers = on.Solution.classifiers);
      let events = Event.events () in
      List.iter
        (fun e ->
          Alcotest.(check string) (e.Event.name ^ " carries the corr") corr
            e.Event.corr)
        events;
      let names = List.map (fun e -> e.Event.name) events in
      List.iter
        (fun required ->
          if not (List.mem required names) then
            Alcotest.failf "event %S missing from stream (got: %s)" required
              (String.concat ", " names))
        [ "solve_start"; "prune"; "incumbent_update"; "solve_report" ];
      let curve = Progress.curve events in
      Alcotest.(check bool) "non-empty anytime curve" true (curve <> []);
      (match List.rev curve with
      | (_, last_u) :: _ ->
          Alcotest.(check (float 1e-9)) "curve ends at the returned utility"
            on.Solution.utility last_u
      | [] -> ());
      (* Utility along the curve never regresses. *)
      ignore
        (List.fold_left
           (fun prev (_, u) ->
             Alcotest.(check bool) "monotone curve" true (u >= prev -. 1e-9);
             u)
           neg_infinity curve);
      match List.find_map Progress.report_of_event events with
      | Some r ->
          Alcotest.(check (float 1e-9)) "report utility" on.Solution.utility
            r.Progress.utility;
          Alcotest.(check bool) "not degraded" false r.Progress.degraded;
          Alcotest.(check bool) "positive ratio" true (r.Progress.utility_ratio > 0.0)
      | None -> Alcotest.fail "no solve_report in the stream")

(* Regression for the BENCH_9 anytime corruption: extracting one curve
   from a recorded stream that interleaves several solves produced
   sawtooth drops to 0.0.  [Progress.solve_curves] must key strictly by
   correlation id, collapse adjacent identical samples, and
   monotone-check the closing [arm = "final"] point. *)
let solve_curves_split_stream () =
  let inc ~corr ~ts ~arm ~u =
    {
      Event.ts_s = ts;
      corr;
      name = Progress.incumbent_event;
      attrs = [ ("arm", Event.Str arm); ("utility", Event.Float u) ];
    }
  in
  let a = "aaaa11112222" and b = "bbbb33334444" in
  (* Two interleaved solves, a byte-for-byte duplicate sample in [a],
     and a corrupted final in [a] reporting below its best incumbent. *)
  let stream =
    [
      inc ~corr:a ~ts:0.0 ~arm:"knap" ~u:10.0;
      inc ~corr:b ~ts:0.1 ~arm:"knap" ~u:2.0;
      inc ~corr:a ~ts:0.2 ~arm:"qk" ~u:25.0;
      inc ~corr:a ~ts:0.3 ~arm:"qk" ~u:25.0;
      inc ~corr:a ~ts:0.3 ~arm:"qk" ~u:25.0;
      inc ~corr:b ~ts:0.4 ~arm:"cover" ~u:15.0;
      inc ~corr:a ~ts:0.5 ~arm:"final" ~u:20.0;
      inc ~corr:b ~ts:0.6 ~arm:"final" ~u:30.0;
    ]
  in
  (* The pre-fix extraction (one merged curve) really is corrupted:
     utility regresses mid-stream. *)
  let merged = Progress.curve stream in
  let regresses =
    let rec go prev = function
      | [] -> false
      | (_, u) :: rest -> u < prev || go u rest
    in
    go neg_infinity merged
  in
  Alcotest.(check bool) "merged stream sawtooths (the bug)" true regresses;
  match Progress.solve_curves stream with
  | [ (ca, curve_a); (cb, curve_b) ] ->
      Alcotest.(check string) "first solve keyed by its corr" a ca;
      Alcotest.(check string) "second solve keyed by its corr" b cb;
      Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
        "solve a: deduped, final lifted to the running max"
        [ (0.0, 10.0); (0.2, 25.0); (0.3, 25.0); (0.5, 25.0) ]
        curve_a;
      Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
        "solve b: clean stream passes through"
        [ (0.1, 2.0); (0.4, 15.0); (0.6, 30.0) ]
        curve_b;
      List.iter
        (fun curve ->
          ignore
            (List.fold_left
               (fun prev (_, u) ->
                 Alcotest.(check bool) "per-solve curve is monotone" true
                   (u >= prev);
                 u)
               neg_infinity curve))
        [ curve_a; curve_b ]
  | l -> Alcotest.failf "expected 2 solve curves, got %d" (List.length l)

(* Unscoped solves mint their own correlation ids (Solve_ctx.with_corr),
   so successive solves in a plain loop — the bench harness — stay
   separable by corr instead of merging into one "" stream. *)
let unscoped_solves_fresh_corrs () =
  let inst = Fixtures.figure1 ~budget:4.0 in
  with_events (fun () ->
      let s1 = Solver.solve inst in
      let s2 = Solver.solve inst in
      Alcotest.(check (float 0.0)) "deterministic across the pair"
        s1.Solution.utility s2.Solution.utility;
      let events = Event.events () in
      List.iter
        (fun e ->
          Alcotest.(check bool) (e.Event.name ^ " carries a minted corr") true
            (e.Event.corr <> ""))
        events;
      match Progress.solve_curves events with
      | [ (c1, curve1); (c2, curve2) ] ->
          Alcotest.(check bool) "distinct corrs" true (c1 <> c2);
          List.iter
            (fun curve ->
              match List.rev curve with
              | (_, last_u) :: _ ->
                  Alcotest.(check (float 1e-9)) "curve ends at the solution"
                    s1.Solution.utility last_u
              | [] -> Alcotest.fail "empty per-solve curve")
            [ curve1; curve2 ]
      | l -> Alcotest.failf "expected 2 per-solve curves, got %d" (List.length l))

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let recorder_grouping_and_dump () =
  with_events (fun () ->
      Recorder.enable ~capacity:2 ();
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "bcc_recorder_test_%d" (Unix.getpid ()))
      in
      rm_rf dir;
      Recorder.set_debug_dir ~slow:3600.0 (Some dir);
      let report ~degraded =
        {
          Progress.rounds = 1;
          improvements = 1;
          utility = 10.0;
          cost = 1.0;
          utility_ratio = 0.5;
          degraded;
          wall_s = 0.01;
        }
      in
      let run corr ~degraded =
        Event.with_corr corr (fun () ->
            Event.emit "solve_start";
            Progress.emit_incumbent
              {
                Progress.round = 0;
                arm = "knap";
                utility = 10.0;
                cost = 1.0;
                budget_slack = 0.0;
                deadline_margin_s = infinity;
                knap_items = 1;
                qk_nodes = 0;
              };
            Progress.emit_report (report ~degraded))
      in
      Event.emit "uncorrelated";
      (* ignored: no corr *)
      let a = Event.new_corr ()
      and b = Event.new_corr ()
      and c = Event.new_corr () in
      run a ~degraded:false;
      run b ~degraded:false;
      run c ~degraded:true;
      (* capacity 2: [a] was evicted. *)
      Alcotest.(check (list string)) "last 2 solves kept, oldest first" [ b; c ]
        (List.map (fun s -> s.Recorder.corr) (Recorder.solves ()));
      Alcotest.(check bool) "evicted id not findable" true (Recorder.find a = None);
      (match Recorder.find c with
      | Some s ->
          Alcotest.(check bool) "complete on report" true s.Recorder.complete;
          Alcotest.(check bool) "degraded decoded" true s.Recorder.degraded;
          Alcotest.(check int) "all three events kept" 3 s.Recorder.n_events;
          Alcotest.(check (list string)) "events oldest first"
            [ "solve_start"; "incumbent_update"; "solve_report" ]
            (List.map (fun e -> e.Event.name) (Recorder.events s));
          (* Every dump line decodes with the JSONL codec. *)
          String.split_on_char '\n' (Recorder.dump_string s)
          |> List.filter (fun l -> l <> "")
          |> List.iter (fun l ->
                 match Event.of_json_line l with
                 | Some _ -> ()
                 | None -> Alcotest.failf "undecodable dump line: %s" l)
      | None -> Alcotest.fail "completed solve not findable");
      (* The degraded solve (and only it: the others are fast and clean)
         was dumped automatically. *)
      Alcotest.(check int) "one dump written" 1 (Recorder.dump_count ());
      Alcotest.(check bool) "dump file exists" true
        (Sys.file_exists (Filename.concat dir (c ^ ".jsonl")));
      rm_rf dir)

let suite =
  [
    ("span nesting and completion order", `Quick, span_nesting);
    ("fake clock gives exact durations", `Quick, fake_clock_durations);
    ("span survives exceptions", `Quick, span_survives_exception);
    ("spans are per-thread roots", `Quick, per_thread_roots);
    ("two-domain stress keeps linkage", `Quick, multi_domain_stress);
    ("ring buffer wraparound", `Quick, ring_wraparound);
    ("disabled path is a no-op", `Quick, disabled_noop);
    ("chrome json parses via server codec", `Quick, chrome_json_roundtrips);
    ("stage stats and observer", `Quick, stage_stats_and_observer);
    ("real solve covers the stage vocabulary", `Quick, solve_stage_coverage);
    ("event ring and sampling", `Quick, event_ring_and_sampling);
    ("event sinks fan out and isolate failures", `Quick, event_sinks);
    ("disabled events are a no-op", `Quick, event_disabled_noop);
    ("correlation ids nest and cross the engine pool", `Quick, corr_ambient_and_engine);
    ("jsonl event codec round-trips and is total", `Quick, jsonl_codec_roundtrip);
    ("progress stream encodes and decodes", `Quick, progress_stream_roundtrip);
    ("real solve streams a well-formed anytime curve", `Quick, solve_progress_stream);
    ("recorded stream splits into per-solve curves", `Quick, solve_curves_split_stream);
    ("unscoped solves mint fresh correlation ids", `Quick, unscoped_solves_fresh_corrs);
    ("flight recorder groups, evicts and dumps", `Quick, recorder_grouping_and_dump);
  ]
