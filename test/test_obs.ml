(* Tests for bcc_obs: span nesting, the bounded ring buffer, the
   disabled fast path, the stage profiler, and the Chrome trace_event
   export — parsed back with the server's JSON codec, which is the
   compatibility bar the emitter promises. *)

module Trace = Bcc_obs.Trace
module Stage = Bcc_obs.Stage
module Json = Bcc_server.Json
module Solver = Bcc_core.Solver
module Solution = Bcc_core.Solution

(* Tracing state is global; every test that turns it on restores the
   disabled default (and the default ring size) on the way out. *)
let with_obs ?(capacity = 4096) f =
  Trace.set_tracing ~capacity true;
  Trace.set_profiling true;
  Stage.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_tracing false;
      Trace.set_profiling false;
      Trace.clear ();
      Stage.clear_observer ();
      Stage.reset ())
    f

let names () = List.map (fun sp -> sp.Trace.name) (Trace.spans ())

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let span_nesting () =
  with_obs (fun () ->
      Trace.with_span ~name:"outer" (fun outer ->
          Alcotest.(check int) "outer is a root" (-1) outer.Trace.parent;
          Trace.with_span ~name:"inner" (fun inner ->
              Alcotest.(check int) "inner nested under outer" outer.Trace.id
                inner.Trace.parent;
              Trace.add_attr inner "k" (Trace.Int 7));
          Trace.with_span ~name:"inner2" (fun inner2 ->
              Alcotest.(check int) "sibling nested under outer" outer.Trace.id
                inner2.Trace.parent));
      Alcotest.(check (list string)) "completion order (children first)"
        [ "inner"; "inner2"; "outer" ] (names ());
      Trace.with_span ~name:"after" (fun sp ->
          Alcotest.(check int) "stack unwound: next span is a root" (-1)
            sp.Trace.parent);
      (match Trace.spans () with
      | inner :: _ ->
          Alcotest.(check bool) "attr recorded" true
            (List.mem_assoc "k" inner.Trace.attrs)
      | [] -> Alcotest.fail "no spans recorded");
      Alcotest.(check bool) "profiler fed from the same spans" true
        (List.exists (fun s -> s.Stage.stage = "outer") (Stage.stats ())))

let span_survives_exception () =
  with_obs (fun () ->
      (try Trace.with_span ~name:"boom" (fun _ -> failwith "x")
       with Failure _ -> ());
      Alcotest.(check (list string)) "span recorded despite the raise"
        [ "boom" ] (names ());
      Trace.with_span ~name:"next" (fun sp ->
          Alcotest.(check int) "stack recovered" (-1) sp.Trace.parent))

let per_thread_roots () =
  with_obs (fun () ->
      (* No sleeps: the per-thread-root property holds whether or not the
         spans overlap in time, and sleeping just made the test sensitive
         to scheduler load. *)
      let spin name =
        Thread.create (fun () -> Trace.with_span ~name (fun _ -> ())) ()
      in
      let t1 = spin "t1" and t2 = spin "t2" in
      Thread.join t1;
      Thread.join t2;
      let spans = Trace.spans () in
      Alcotest.(check int) "both spans kept" 2 (List.length spans);
      List.iter
        (fun sp ->
          Alcotest.(check int) (sp.Trace.name ^ " is a root") (-1) sp.Trace.parent)
        spans;
      match spans with
      | [ a; b ] ->
          Alcotest.(check bool) "distinct thread ids" true (a.Trace.tid <> b.Trace.tid)
      | _ -> ())

(* Two domains hammering the tracer concurrently: every span must land
   with its parent linkage intact inside its own domain (the recording
   context is keyed by domain id as well as thread id), and nothing may
   be lost or cross-linked. *)
let multi_domain_stress () =
  with_obs ~capacity:8192 (fun () ->
      let iters = 400 in
      let work d () =
        for _ = 1 to iters do
          Trace.with_span ~name:(Printf.sprintf "outer%d" d) (fun outer ->
              Trace.with_span ~name:(Printf.sprintf "inner%d" d) (fun inner ->
                  if inner.Trace.parent <> outer.Trace.id then
                    failwith "inner span linked to a foreign parent"))
        done
      in
      let d1 = Domain.spawn (work 1) and d2 = Domain.spawn (work 2) in
      Domain.join d1;
      Domain.join d2;
      let spans = Trace.spans () in
      Alcotest.(check int) "every span recorded" (4 * iters) (List.length spans);
      Alcotest.(check int) "none dropped" 0 (Trace.dropped ());
      let by_id = Hashtbl.create 1024 in
      List.iter (fun sp -> Hashtbl.replace by_id sp.Trace.id sp) spans;
      let tid_of_domain = Hashtbl.create 2 in
      List.iter
        (fun sp ->
          let d = sp.Trace.name.[String.length sp.Trace.name - 1] in
          (match Hashtbl.find_opt tid_of_domain d with
          | Some tid ->
              Alcotest.(check int)
                (Printf.sprintf "domain %c keeps one recording context" d)
                tid sp.Trace.tid
          | None -> Hashtbl.add tid_of_domain d sp.Trace.tid);
          if String.length sp.Trace.name >= 5 && String.sub sp.Trace.name 0 5 = "inner"
          then
            match Hashtbl.find_opt by_id sp.Trace.parent with
            | Some p ->
                Alcotest.(check string) "parent is this domain's outer"
                  ("outer" ^ String.make 1 d)
                  p.Trace.name
            | None -> Alcotest.fail "inner span's parent not recorded"
          else
            Alcotest.(check int) (sp.Trace.name ^ " is a root") (-1) sp.Trace.parent)
        spans;
      (match (Hashtbl.find_opt tid_of_domain '1', Hashtbl.find_opt tid_of_domain '2') with
      | Some t1, Some t2 ->
          Alcotest.(check bool) "domains record under distinct contexts" true (t1 <> t2)
      | _ -> Alcotest.fail "missing a domain's spans");
      (* The stage profiler saw every span exactly once. *)
      List.iter
        (fun name ->
          match List.find_opt (fun s -> s.Stage.stage = name) (Stage.stats ()) with
          | Some s -> Alcotest.(check int) (name ^ " stage count") iters s.Stage.count
          | None -> Alcotest.failf "stage %s missing" name)
        [ "outer1"; "inner1"; "outer2"; "inner2" ])

let ring_wraparound () =
  with_obs ~capacity:4 (fun () ->
      for i = 1 to 10 do
        Trace.with_span ~name:(Printf.sprintf "s%d" i) (fun _ -> ())
      done;
      Alcotest.(check (list string)) "last 4 kept, oldest first"
        [ "s7"; "s8"; "s9"; "s10" ] (names ());
      Alcotest.(check int) "dropped counter" 6 (Trace.dropped ());
      Alcotest.(check (list string)) "spans ~last:2" [ "s9"; "s10" ]
        (List.map (fun sp -> sp.Trace.name) (Trace.spans ~last:2 ())))

let disabled_noop () =
  Trace.set_tracing false;
  Trace.set_profiling false;
  Trace.clear ();
  Stage.reset ();
  let r =
    Trace.with_span ~name:"off" (fun sp ->
        Alcotest.(check bool) "null span" false (Trace.recording sp);
        Trace.add_attr sp "k" (Trace.Int 1);
        42)
  in
  Alcotest.(check int) "value passed through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()));
  Alcotest.(check int) "no stages recorded" 0 (List.length (Stage.stats ()));
  Alcotest.(check bool) "null span not mutated" true
    (Trace.null_span.Trace.attrs = [])

let chrome_json_roundtrips () =
  with_obs (fun () ->
      Trace.with_span ~name:"outer" (fun sp ->
          Trace.add_attr sp "count" (Trace.Int 3);
          Trace.add_attr sp "ratio" (Trace.Float 0.5);
          Trace.add_attr sp "unbounded" (Trace.Float infinity);
          Trace.add_attr sp "label" (Trace.Str "qk \"half\"");
          Trace.add_attr sp "ok" (Trace.Bool true);
          Trace.with_span ~name:"inner" (fun _ -> ()));
      let j = Json.of_string_exn (Trace.chrome_json (Trace.spans ())) in
      Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
        (Option.bind (Json.member "displayTimeUnit" j) Json.get_string);
      let events =
        match Option.bind (Json.member "traceEvents" j) Json.get_list with
        | Some l -> l
        | None -> Alcotest.fail "traceEvents missing or not a list"
      in
      Alcotest.(check int) "two events" 2 (List.length events);
      let field name e =
        match Json.member name e with
        | Some v -> v
        | None -> Alcotest.failf "event missing %S" name
      in
      List.iter
        (fun e ->
          List.iter
            (fun f -> ignore (field f e))
            [ "name"; "cat"; "ph"; "pid"; "tid"; "ts"; "dur"; "args" ];
          Alcotest.(check (option string)) "complete event" (Some "X")
            (Json.get_string (field "ph" e));
          Alcotest.(check bool) "non-negative duration" true
            (match Json.get_num (field "dur" e) with
            | Some d -> d >= 0.0
            | None -> false))
        events;
      let by_name n =
        List.find (fun e -> Json.get_string (field "name" e) = Some n) events
      in
      let args = field "args" (by_name "outer") in
      let num k = Option.bind (Json.member k args) Json.get_num in
      Alcotest.(check (option (float 0.0))) "int attr" (Some 3.0) (num "count");
      Alcotest.(check (option (float 0.0))) "float attr" (Some 0.5) (num "ratio");
      Alcotest.(check (option (float 0.0))) "infinity round-trips" (Some infinity)
        (num "unbounded");
      Alcotest.(check (option string)) "escaped string attr" (Some "qk \"half\"")
        (Option.bind (Json.member "label" args) Json.get_string);
      Alcotest.(check (option bool)) "bool attr" (Some true)
        (Option.bind (Json.member "ok" args) Json.get_bool);
      let inner_args = field "args" (by_name "inner") in
      Alcotest.(check bool) "parent_id links inner to outer" true
        (let outer_id = num "span_id" in
         outer_id <> None
         && Option.bind (Json.member "parent_id" inner_args) Json.get_num = outer_id))

let stage_stats_and_observer () =
  Stage.reset ();
  Fun.protect
    ~finally:(fun () ->
      Stage.clear_observer ();
      Stage.reset ())
    (fun () ->
      let seen = ref [] in
      Stage.set_observer (fun name dt -> seen := (name, dt) :: !seen);
      Stage.record "alpha" 0.25;
      Stage.record "alpha" 0.75;
      Stage.record "beta" 0.1;
      (match Stage.stats () with
      | [ a; b ] ->
          Alcotest.(check string) "sorted by total time desc" "alpha" a.Stage.stage;
          Alcotest.(check int) "count" 2 a.Stage.count;
          Alcotest.(check (float 1e-9)) "total" 1.0 a.Stage.total_s;
          Alcotest.(check (float 1e-9)) "max" 0.75 a.Stage.max_s;
          Alcotest.(check string) "beta second" "beta" b.Stage.stage
      | l -> Alcotest.failf "expected 2 stats, got %d" (List.length l));
      Alcotest.(check int) "observer saw every record" 3 (List.length !seen);
      let summary = Stage.summary () in
      List.iter
        (fun needle ->
          if not (contains ~needle summary) then
            Alcotest.failf "summary lacks %S:\n%s" needle summary)
        [ "alpha"; "beta"; "stage" ];
      Stage.reset ();
      Alcotest.(check int) "reset clears" 0 (List.length (Stage.stats ())))

(* A real solve must light up the whole pipeline vocabulary. *)
let solve_stage_coverage () =
  with_obs (fun () ->
      let inst = Fixtures.figure1 ~budget:4.0 in
      let sol = Solver.solve inst in
      Alcotest.(check (float 1e-6)) "figure1 optimum" 9.0 sol.Solution.utility;
      let have = List.sort_uniq compare (names ()) in
      List.iter
        (fun required ->
          if not (List.mem required have) then
            Alcotest.failf "stage %S missing from trace (got: %s)" required
              (String.concat ", " have))
        [ "solve"; "prune"; "round"; "decompose"; "knapsack"; "qk"; "mc3"; "sweep" ];
      let round = List.find (fun sp -> sp.Trace.name = "round") (Trace.spans ()) in
      List.iter
        (fun attr ->
          Alcotest.(check bool) (Printf.sprintf "round records %s" attr) true
            (List.mem_assoc attr round.Trace.attrs))
        [ "arm"; "gain"; "cost" ];
      (* and the whole trace exports to parseable Chrome JSON *)
      let j = Json.of_string_exn (Trace.chrome_json (Trace.spans ())) in
      match Option.bind (Json.member "traceEvents" j) Json.get_list with
      | Some events ->
          Alcotest.(check bool) "one event per span" true
            (List.length events = List.length (Trace.spans ()))
      | None -> Alcotest.fail "traceEvents missing")

(* Span and stage durations under an injected fake clock: exact,
   deterministic deltas instead of sleep-and-hope timing assertions, so
   the test passes identically under load and any BCC_JOBS. *)
let fake_clock_durations () =
  let module Timer = Bcc_util.Timer in
  let now = Atomic.make 1000.0 in
  Timer.set_source (Some (fun () -> Atomic.get now));
  Fun.protect
    ~finally:(fun () -> Timer.set_source None)
    (fun () ->
      with_obs (fun () ->
          Trace.with_span ~name:"timed-outer" (fun _ ->
              Atomic.set now 1000.5;
              Trace.with_span ~name:"timed-inner" (fun _ -> Atomic.set now 1000.75));
          (match Trace.spans () with
          | [ inner; outer ] ->
              Alcotest.(check string) "inner first" "timed-inner" inner.Trace.name;
              Alcotest.(check (float 1e-9)) "inner duration exact" 0.25
                (inner.Trace.end_s -. inner.Trace.start_s);
              Alcotest.(check (float 1e-9)) "outer duration exact" 0.75
                (outer.Trace.end_s -. outer.Trace.start_s)
          | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
          match List.find_opt (fun s -> s.Stage.stage = "timed-outer") (Stage.stats ()) with
          | Some s -> Alcotest.(check (float 1e-9)) "profiler saw the fake delta" 0.75 s.Stage.total_s
          | None -> Alcotest.fail "timed-outer stage missing"));
  (* Restoring the real clock re-seats the monotone clamp: time must not
     stay pinned at the fake epoch. *)
  let t0 = Timer.now_s () in
  Alcotest.(check bool) "real clock runs after restore" true
    (Timer.now_s () >= t0 && t0 < 999.0)

let suite =
  [
    ("span nesting and completion order", `Quick, span_nesting);
    ("fake clock gives exact durations", `Quick, fake_clock_durations);
    ("span survives exceptions", `Quick, span_survives_exception);
    ("spans are per-thread roots", `Quick, per_thread_roots);
    ("two-domain stress keeps linkage", `Quick, multi_domain_stress);
    ("ring buffer wraparound", `Quick, ring_wraparound);
    ("disabled path is a no-op", `Quick, disabled_noop);
    ("chrome json parses via server codec", `Quick, chrome_json_roundtrips);
    ("stage stats and observer", `Quick, stage_stats_and_observer);
    ("real solve covers the stage vocabulary", `Quick, solve_stage_coverage);
  ]
