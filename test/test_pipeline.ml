(* The incremental solve pipeline: deterministic component ordering,
   fingerprint-derived randomness, artifact (de)serialization, the
   incremental == cold bit-identity contract (as a qcheck property over
   random delta sequences, at 1 and 3 jobs), footprint-driven reuse
   accounting, torn-artifact recovery and the pipeline.artifact fault
   point. *)

module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Solve_ctx = Bcc_core.Solve_ctx
module Pipeline = Bcc_core.Pipeline
module Decompose = Bcc_core.Decompose
module Baselines = Bcc_core.Baselines
module Engine = Bcc_engine.Engine
module Fault = Bcc_robust.Fault
module Store = Bcc_store.Store
module Delta = Bcc_store.Delta
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let count n =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some c when c > 0 -> c | _ -> n)
  | None -> n

let ok = function
  | Ok v -> v
  | Error (`Bad msg) -> Alcotest.failf "unexpected `Bad: %s" msg
  | Error `Not_found -> Alcotest.fail "unexpected `Not_found"

let same_solution (a : Solution.t) (b : Solution.t) =
  a.Solution.utility = b.Solution.utility
  && a.Solution.cost = b.Solution.cost
  && List.length a.Solution.classifiers = List.length b.Solution.classifiers
  && List.for_all2 Propset.equal a.Solution.classifiers b.Solution.classifiers

(* --- fixtures --- *)

(* Three overlap-graph components over disjoint property ranges:
   {0,1,2}, {10,11,12}, {20,21}. *)
let clustered_queries =
  [|
    (Propset.of_list [ 0; 1 ], 10.0);
    (Propset.of_list [ 1; 2 ], 6.0);
    (Propset.of_list [ 10; 11 ], 8.0);
    (Propset.of_list [ 11; 12 ], 4.0);
    (Propset.of_list [ 20; 21 ], 7.0);
  |]

let clustered_cost c =
  (* Deterministic, prop-derived; singletons cheap, pairs pricier. *)
  Propset.fold (fun acc p -> acc +. float_of_int ((p mod 7) + 2)) 0.0 c
  +. if Propset.length c > 1 then 1.5 else 0.0

let clustered_instance ?(budget = 25.0) ?(perm = Fun.id) () =
  let qs = Array.map perm clustered_queries in
  Instance.create ~budget ~queries:qs ~cost:clustered_cost ()

(* --- satellite 1: deterministic components --- *)

let component_content inst (c : Decompose.component) =
  ( List.sort Propset.compare (List.map (Instance.query inst) c.Decompose.queries),
    c.Decompose.utility )

let components_permutation_invariant () =
  let a = clustered_instance () in
  (* Reverse the query array: ids change, content does not. *)
  let qs = Array.copy clustered_queries in
  let n = Array.length qs in
  let rev = Array.init n (fun i -> qs.(n - 1 - i)) in
  let b = Instance.create ~budget:25.0 ~queries:rev ~cost:clustered_cost () in
  let ca = List.map (component_content a) (Decompose.components a) in
  let cb = List.map (component_content b) (Decompose.components b) in
  Alcotest.(check int) "three components" 3 (List.length ca);
  Alcotest.(check bool) "identical component lists" true (ca = cb);
  List.iter2
    (fun x y ->
      let px, _ = x and py, _ = y in
      Alcotest.(check bool) "query sets match" true
        (List.for_all2 Propset.equal px py))
    ca cb

let components_ordered_and_disjoint () =
  let inst = clustered_instance () in
  let comps = Decompose.components inst in
  let minp = List.map (fun c -> c.Decompose.min_prop) comps in
  Alcotest.(check (list int)) "sorted by min prop" [ 0; 10; 20 ] minp;
  List.iteri
    (fun i ci ->
      List.iteri
        (fun j cj ->
          if i < j then
            Alcotest.(check bool) "props disjoint" true
              (Propset.is_empty (Propset.inter ci.Decompose.props cj.Decompose.props)))
        comps)
    comps

let components_keep_query () =
  let inst = clustered_instance () in
  (* Drop the two queries of the middle cluster. *)
  let keep qi = not (Propset.mem 11 (Instance.query inst qi)) in
  let comps = Decompose.components ~keep_query:keep inst in
  Alcotest.(check (list int)) "middle cluster gone" [ 0; 20 ]
    (List.map (fun c -> c.Decompose.min_prop) comps)

(* --- satellite 2: fingerprint-derived randomness --- *)

let derive_fingerprint_stable () =
  (* Hard-coded draws: these must never change across process runs,
     architectures or library versions — persisted artifacts depend on
     per-component streams being reproducible forever (a deliberate
     change requires bumping the pipeline format version). *)
  let base = Rng.create 0xBCC in
  let a = Rng.derive_fingerprint base "d41d8cd98f00b204e9800998ecf8427e" in
  let b = Rng.derive_fingerprint base "component-fp-test" in
  Alcotest.(check int) "stream a, point 0" 727543 (Rng.int (Rng.derive a 0) 1_000_000);
  Alcotest.(check int) "stream a, point 1" 783156 (Rng.int (Rng.derive a 1) 1_000_000);
  Alcotest.(check int) "stream b, point 0" 720011 (Rng.int (Rng.derive b 0) 1_000_000)

let derive_fingerprint_independent () =
  let base = Rng.create 42 in
  let a = Rng.derive_fingerprint base "alpha" in
  let a' = Rng.derive_fingerprint base "alpha" in
  let b = Rng.derive_fingerprint base "beta" in
  Alcotest.(check bool) "same key, same stream" true
    (Rng.int a 1_000_000 = Rng.int a' 1_000_000);
  Alcotest.(check bool) "different keys, different streams" true
    (Rng.int (Rng.derive a 0) 1_000_000 <> Rng.int (Rng.derive b 0) 1_000_000);
  (* Non-advancing: deriving must not perturb the base stream. *)
  let base2 = Rng.create 42 in
  ignore (Rng.derive_fingerprint base2 "gamma");
  Alcotest.(check bool) "base unperturbed" true
    (Rng.int base 1_000_000 = Rng.int base2 1_000_000)

(* --- artifact serialization --- *)

let sample_curve () =
  {
    Pipeline.curve_fingerprint = "0123456789abcdef0123456789abcdef";
    points =
      [|
        { Pipeline.point_budget = 0.0; point_utility = 0.0; point_cost = 0.0; sets = [] };
        {
          Pipeline.point_budget = 12.5;
          point_utility = 10.0;
          point_cost = 11.25;
          sets = [ Propset.of_list [ 0; 1 ]; Propset.of_list [ 2 ] ];
        };
      |];
  }

let curve_roundtrip () =
  let c = sample_curve () in
  let s = Pipeline.curve_to_string c in
  match Pipeline.curve_of_string ~fingerprint:c.Pipeline.curve_fingerprint s with
  | None -> Alcotest.fail "roundtrip failed"
  | Some c' ->
      Alcotest.(check int) "points" 2 (Array.length c'.Pipeline.points);
      let p = c'.Pipeline.points.(1) in
      Alcotest.(check (float 0.0)) "budget" 12.5 p.Pipeline.point_budget;
      Alcotest.(check (float 0.0)) "utility" 10.0 p.Pipeline.point_utility;
      Alcotest.(check bool) "sets" true
        (List.for_all2 Propset.equal p.Pipeline.sets
           [ Propset.of_list [ 0; 1 ]; Propset.of_list [ 2 ] ])

let curve_rejects_corruption () =
  let c = sample_curve () in
  let fp = c.Pipeline.curve_fingerprint in
  let s = Pipeline.curve_to_string c in
  (* Flip one byte anywhere in the body: the checksum must catch it. *)
  let flipped i =
    String.mapi (fun j ch -> if i = j then Char.chr (Char.code ch lxor 1) else ch) s
  in
  let header_len = String.index s '\n' in
  for i = header_len + 1 to String.length s - 2 do
    Alcotest.(check bool)
      (Printf.sprintf "flip at %d rejected" i)
      true
      (Pipeline.curve_of_string ~fingerprint:fp (flipped i) = None)
  done;
  (* Truncations (torn writes) are rejected too. *)
  for keep = 0 to String.length s - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "truncate to %d rejected" keep)
      true
      (Pipeline.curve_of_string ~fingerprint:fp (String.sub s 0 keep) = None)
  done;
  (* And a fingerprint mismatch. *)
  Alcotest.(check bool) "wrong fingerprint rejected" true
    (Pipeline.curve_of_string ~fingerprint:(String.map (fun _ -> 'f') fp) s = None)

(* --- cold pipeline semantics --- *)

let at_jobs jobs f =
  Engine.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Engine.set_default_jobs 1) f

let pipeline_bit_stable_across_jobs () =
  let inst = clustered_instance () in
  let solve jobs =
    at_jobs jobs (fun () -> Pipeline.solve (Solve_ctx.make ()) inst)
  in
  let a = solve 1 and b = solve 3 in
  Alcotest.(check int) "components" 3 a.Pipeline.components_total;
  Alcotest.(check int) "nothing cached" 0 a.Pipeline.components_reused;
  Alcotest.(check bool) "solutions identical" true
    (same_solution a.Pipeline.outcome.Solver.solution b.Pipeline.outcome.Solver.solution)

let pipeline_never_trails_ig2 () =
  let inst = clustered_instance () in
  let r = Pipeline.solve (Solve_ctx.make ()) inst in
  let ig2 = Baselines.ig2 inst Baselines.Budget in
  Alcotest.(check bool) "feasible" true
    (Solution.feasible inst r.Pipeline.outcome.Solver.solution);
  Alcotest.(check bool) "pipeline >= IG2" true
    (r.Pipeline.outcome.Solver.solution.Solution.utility >= ig2.Solution.utility -. 1e-9)

let pipeline_fingerprints_are_content_keyed () =
  let inst = clustered_instance () in
  let options = Solver.default_options in
  let stage inst =
    Pipeline.component_stage ~options ~grid:Pipeline.default_grid inst
      (Pipeline.prune_stage ~options ~deadline:Bcc_robust.Deadline.none
         ~pool:(Bcc_engine.Engine.default_pool ())
         ~note_degraded:(fun _ -> ())
         inst)
  in
  let fps inst =
    List.map (fun (s : Pipeline.staged_component) -> s.Pipeline.fingerprint) (stage inst)
  in
  (* Same content, permuted query order: identical fingerprints. *)
  let qs = Array.copy clustered_queries in
  let n = Array.length qs in
  let rev = Array.init n (fun i -> qs.(n - 1 - i)) in
  let permuted = Instance.create ~budget:25.0 ~queries:rev ~cost:clustered_cost () in
  Alcotest.(check (list string)) "permutation invariant" (fps inst) (fps permuted);
  (* Touch one cluster: exactly one fingerprint changes. *)
  let touched =
    let qs = Array.copy clustered_queries in
    qs.(0) <- (fst qs.(0), 11.0);
    Instance.create ~budget:25.0 ~queries:qs ~cost:clustered_cost ()
  in
  let changed =
    List.map2 (fun a b -> a <> b) (fps inst) (fps touched)
    |> List.filter Fun.id |> List.length
  in
  Alcotest.(check int) "one component re-fingerprinted" 1 changed

(* --- store integration: reuse, bit-identity, recovery --- *)

(* A three-cluster workload in the store's text format. *)
let cluster_text =
  "budget 25\n\
   query a0;a1 10\n\
   query a1;a2 6\n\
   query b0;b1 8\n\
   query b1;b2 4\n\
   query c0;c1 7\n\
   classifier a0 2\n\
   classifier a1 3\n\
   classifier a2 4\n\
   classifier a0;a1 4\n\
   classifier b0 2\n\
   classifier b1 3\n\
   classifier b2 4\n\
   classifier b0;b1 4\n\
   classifier c0 2\n\
   classifier c1 3\n\
   classifier c0;c1 4\n"

let incremental_reuses_clean_components () =
  let s = Store.create () in
  ignore (ok (Store.put s ~name:"w" (Store.Text cluster_text)));
  let first = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Alcotest.(check int) "three components" 3 first.Store.components_total;
  Alcotest.(check int) "cold first solve" 0 first.Store.components_reused;
  (* No delta: everything reuses, same answer. *)
  let again = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Alcotest.(check int) "full reuse" 3 again.Store.components_reused;
  Alcotest.(check bool) "bit-identical" true
    (same_solution first.Store.solution again.Store.solution);
  (* Touch only the "a" cluster: the other two curves survive. *)
  ignore (ok (Store.delta s ~name:"w" [ Delta.Upsert ([ "a0"; "a1" ], 12.0) ]));
  let after = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Alcotest.(check int) "still three components" 3 after.Store.components_total;
  Alcotest.(check int) "two reused" 2 after.Store.components_reused;
  (* And the incremental answer equals a cold pipeline solve of the same
     epoch on a pristine store. *)
  let fresh = Store.create () in
  ignore (ok (Store.put fresh ~name:"w" (Store.Text cluster_text)));
  ignore (ok (Store.delta fresh ~name:"w" [ Delta.Upsert ([ "a0"; "a1" ], 12.0) ]));
  let cold = ok (Store.solve fresh ~name:"w" ~incremental:true ()) in
  Alcotest.(check int) "cold baseline" 0 cold.Store.components_reused;
  Alcotest.(check bool) "incremental == cold" true
    (same_solution after.Store.solution cold.Store.solution)

(* The store skips rehashing components no delta touched by serving
   fingerprints from a hint table keyed by (fingerprint header,
   property footprint).  The header embeds the solver options, so a
   solve under different options must never alias a hint recorded under
   the defaults — its fingerprints differ, so nothing can be reused. *)
let hints_respect_options_change () =
  let s = Store.create () in
  ignore (ok (Store.put s ~name:"w" (Store.Text cluster_text)));
  ignore (ok (Store.solve s ~name:"w" ~incremental:true ()));
  let again = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Alcotest.(check int) "defaults reuse everything" 3 again.Store.components_reused;
  let options = { Solver.default_options with knapsack_grid = 7 } in
  let other = ok (Store.solve s ~name:"w" ~options ~incremental:true ()) in
  Alcotest.(check int) "changed options miss every artifact" 0
    other.Store.components_reused;
  (* And flipping back still hits the original artifacts. *)
  let back = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Alcotest.(check int) "original options hit again" 3 back.Store.components_reused

let budget_change_clears_artifacts () =
  let s = Store.create () in
  ignore (ok (Store.put s ~name:"w" (Store.Text cluster_text)));
  ignore (ok (Store.solve s ~name:"w" ~incremental:true ()));
  ignore (ok (Store.delta s ~name:"w" [ Delta.Set_budget 18.0 ]));
  let after = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Alcotest.(check int) "budget change invalidates everything" 0
    after.Store.components_reused

(* Random delta batches confined to the three clusters (so reuse
   actually happens), with occasional budget changes. *)
let random_ops rng =
  let clusters = [| [| "a0"; "a1"; "a2" |]; [| "b0"; "b1"; "b2" |]; [| "c0"; "c1" |] |] in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  let props cl =
    let p1 = pick cl in
    let p2 = pick cl in
    if p1 = p2 then [ p1 ] else [ p1; p2 ]
  in
  List.init
    (1 + Rng.int rng 2)
    (fun _ ->
      let cl = clusters.(Rng.int rng 3) in
      match Rng.int rng 10 with
      | 0 -> Delta.Set_budget (float_of_int (15 + Rng.int rng 20))
      | 1 | 2 -> Delta.Add (props cl, float_of_int (1 + Rng.int rng 8))
      | 3 -> Delta.Set_cost (props cl, float_of_int (1 + Rng.int rng 6))
      | 4 -> Delta.Remove (props cl)
      | _ -> Delta.Upsert (props cl, float_of_int (1 + Rng.int rng 15)))

(* The tentpole property: after ANY random delta sequence, an
   incremental re-solve (with whatever artifacts accumulated along the
   way, at 3 jobs) is bit-identical to a cold pipeline solve of the
   same epoch on a pristine store (at 1 job). *)
let incremental_matches_cold =
  QCheck.Test.make ~name:"incremental re-solve bit-matches cold at same epoch"
    ~count:(count 12) QCheck.small_int (fun seed ->
      let rng = Rng.create (0x1AC + seed) in
      let live = Store.create () in
      let mirror = Store.create () in
      ignore (ok (Store.put live ~name:"w" (Store.Text cluster_text)));
      ignore (ok (Store.put mirror ~name:"w" (Store.Text cluster_text)));
      let steps = 1 + Rng.int rng 3 in
      let all_ok = ref true in
      for _ = 1 to steps do
        let ops = random_ops rng in
        ignore (ok (Store.delta live ~name:"w" ops));
        ignore (ok (Store.delta mirror ~name:"w" ops));
        (* Solve the live store every epoch so artifacts accumulate and
           get partially invalidated by later deltas. *)
        ignore (ok (Store.solve live ~name:"w" ~incremental:true ()))
      done;
      let incr = at_jobs 3 (fun () -> ok (Store.solve live ~name:"w" ~incremental:true ())) in
      let cold = at_jobs 1 (fun () -> ok (Store.solve mirror ~name:"w" ~incremental:true ())) in
      all_ok := !all_ok && cold.Store.components_reused = 0;
      all_ok := !all_ok && same_solution incr.Store.solution cold.Store.solution;
      !all_ok)

(* The scheduler-facing corollary: requests coalesced into one batch by
   Bcc_sched get the same bits as serial per-request solves.  Six
   threads push the same (workload, epoch) key through one scheduler
   over a shared store while a pristine mirror store is solved serially;
   every fanned-out result must bit-match the serial answer.  Run at 1
   and 3 jobs (seed parity picks). *)
let coalesced_matches_serial =
  QCheck.Test.make ~name:"coalesced batch solves bit-match serial solves"
    ~count:(count 8) QCheck.small_int (fun seed ->
      let jobs = if seed mod 2 = 0 then 1 else 3 in
      let rng = Rng.create (0x5C4ED + seed) in
      let live = Store.create () in
      let mirror = Store.create () in
      ignore (ok (Store.put live ~name:"w" (Store.Text cluster_text)));
      ignore (ok (Store.put mirror ~name:"w" (Store.Text cluster_text)));
      for _ = 1 to 1 + Rng.int rng 2 do
        let ops = random_ops rng in
        ignore (ok (Store.delta live ~name:"w" ops));
        ignore (ok (Store.delta mirror ~name:"w" ops))
      done;
      let reference =
        at_jobs 1 (fun () -> ok (Store.solve mirror ~name:"w" ~incremental:true ()))
      in
      let sched = Bcc_sched.Sched.create ~concurrency:1 () in
      let results = Array.make 6 None in
      at_jobs jobs (fun () ->
          let ths =
            List.init 6 (fun i ->
                Thread.create
                  (fun () ->
                    match
                      Bcc_sched.Sched.submit sched
                        ~tenant:(Printf.sprintf "t%d" (i mod 3))
                        ~key:"w@e" ~subkey:"w@e/0"
                        (fun () -> ok (Store.solve live ~name:"w" ~incremental:true ()))
                    with
                    | Ok r -> results.(i) <- Some r
                    | Error _ -> ())
                  ())
          in
          List.iter Thread.join ths);
      Array.for_all
        (function
          | None -> false
          | Some (r : Store.solved) ->
              same_solution r.Store.solution reference.Store.solution)
        results)

(* --- persistence: artifacts survive a reopen; torn files degrade --- *)

let temp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Unix.mkdir base 0o755;
  base

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = temp_dir "bcc_pipeline" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let artifacts_survive_reopen () =
  with_dir @@ fun dir ->
  let baseline =
    let s = Store.create ~dir () in
    ignore (ok (Store.put s ~name:"w" (Store.Text cluster_text)));
    let r = ok (Store.solve s ~name:"w" ~incremental:true ()) in
    Store.close s;
    r
  in
  Alcotest.(check bool) "artifact file written" true
    (Sys.file_exists (Filename.concat dir "w.artifacts"));
  let s = Store.create ~dir () in
  let r = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Store.close s;
  (* Replay re-interns property ids in snapshot order; name-keyed
     fingerprints must still hit. *)
  Alcotest.(check int) "all components reused after reopen" 3 r.Store.components_reused;
  Alcotest.(check bool) "same answer as before the restart" true
    (same_solution baseline.Store.solution r.Store.solution)

let torn_artifacts_degrade_to_cold () =
  with_dir @@ fun dir ->
  let baseline =
    let s = Store.create ~dir () in
    ignore (ok (Store.put s ~name:"w" (Store.Text cluster_text)));
    let r = ok (Store.solve s ~name:"w" ~incremental:true ()) in
    Store.close s;
    r
  in
  (* Corrupt the middle of the artifact file — a torn/garbled cache must
     silently fall back to recomputation, never a wrong answer. *)
  let path = Filename.concat dir "w.artifacts" in
  let bytes = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  let mid = Bytes.length bytes / 2 in
  for i = mid to min (Bytes.length bytes - 1) (mid + 40) do
    Bytes.set bytes i '\xff'
  done;
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
  let s = Store.create ~dir () in
  let r = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Store.close s;
  Alcotest.(check bool) "not more reuse than components" true
    (r.Store.components_reused <= r.Store.components_total);
  Alcotest.(check bool) "same answer despite corruption" true
    (same_solution baseline.Store.solution r.Store.solution)

(* --- the pipeline.artifact fault point --- *)

let with_fault point action f =
  Fault.arm point action;
  Fun.protect ~finally:(fun () -> Fault.reset ()) f

let fault_throw_degrades_to_recompute () =
  let s = Store.create () in
  ignore (ok (Store.put s ~name:"w" (Store.Text cluster_text)));
  let clean = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  let faulted, fired =
    with_fault "pipeline.artifact" Fault.Throw (fun () ->
        let r = ok (Store.solve s ~name:"w" ~incremental:true ()) in
        (r, Fault.fired "pipeline.artifact"))
  in
  Alcotest.(check bool) "fault fired" true (fired > 0);
  Alcotest.(check int) "no reuse under injected faults" 0 faulted.Store.components_reused;
  Alcotest.(check bool) "answer unchanged" true
    (same_solution clean.Store.solution faulted.Store.solution);
  let recovered = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  Alcotest.(check int) "reuse recovers after disarm" 3 recovered.Store.components_reused

let fault_corrupt_degrades_to_recompute () =
  let s = Store.create () in
  ignore (ok (Store.put s ~name:"w" (Store.Text cluster_text)));
  let clean = ok (Store.solve s ~name:"w" ~incremental:true ()) in
  let faulted =
    with_fault "pipeline.artifact" Fault.Corrupt (fun () ->
        ok (Store.solve s ~name:"w" ~incremental:true ()))
  in
  Alcotest.(check int) "corrupted payloads all miss" 0 faulted.Store.components_reused;
  Alcotest.(check bool) "answer unchanged" true
    (same_solution clean.Store.solution faulted.Store.solution)

let suite =
  [
    Alcotest.test_case "components invariant under query permutation" `Quick
      components_permutation_invariant;
    Alcotest.test_case "components ordered by min prop, disjoint" `Quick
      components_ordered_and_disjoint;
    Alcotest.test_case "components honor keep_query" `Quick components_keep_query;
    Alcotest.test_case "derive_fingerprint stable across runs" `Quick
      derive_fingerprint_stable;
    Alcotest.test_case "derive_fingerprint independent and non-advancing" `Quick
      derive_fingerprint_independent;
    Alcotest.test_case "curve payload roundtrips" `Quick curve_roundtrip;
    Alcotest.test_case "curve payload rejects corruption and truncation" `Quick
      curve_rejects_corruption;
    Alcotest.test_case "cold pipeline bit-stable across jobs" `Quick
      pipeline_bit_stable_across_jobs;
    Alcotest.test_case "pipeline never trails IG2" `Quick pipeline_never_trails_ig2;
    Alcotest.test_case "fingerprints are content-keyed" `Quick
      pipeline_fingerprints_are_content_keyed;
    Alcotest.test_case "incremental solve reuses clean components" `Quick
      incremental_reuses_clean_components;
    Alcotest.test_case "fingerprint hints respect an options change" `Quick
      hints_respect_options_change;
    Alcotest.test_case "budget change clears artifacts" `Quick
      budget_change_clears_artifacts;
    qtest incremental_matches_cold;
    qtest coalesced_matches_serial;
    Alcotest.test_case "artifacts survive a store reopen" `Quick artifacts_survive_reopen;
    Alcotest.test_case "torn artifact file degrades to cold" `Quick
      torn_artifacts_degrade_to_cold;
    Alcotest.test_case "pipeline.artifact throw degrades to recompute" `Quick
      fault_throw_degrades_to_recompute;
    Alcotest.test_case "pipeline.artifact corrupt degrades to recompute" `Quick
      fault_corrupt_degrades_to_recompute;
  ]
