(* Tests for the dataset generators (shape-matched to Section 6.1's
   published statistics) and instance serialization. *)

module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Solution = Bcc_core.Solution
module Synthetic = Bcc_data.Synthetic
module Bestbuy = Bcc_data.Bestbuy
module Private_like = Bcc_data.Private_like
module Workload_stats = Bcc_data.Workload_stats
module Io = Bcc_data.Io

let within name lo hi x =
  Alcotest.(check bool) (Printf.sprintf "%s: %.3f in [%.3f, %.3f]" name x lo hi) true
    (x >= lo && x <= hi)

let synthetic_shape () =
  (* Lengths are drawn as 1/2^i pre-merge; duplicate singleton queries
     merge (4000 draws over 10K properties keep ~3300 distinct), exactly
     as duplicate query strings merge in a real log. *)
  let params = { Synthetic.default_params with num_queries = 8000 } in
  let inst = Synthetic.generate ~params ~seed:1 ~budget:1000.0 () in
  let stats = Workload_stats.compute inst in
  Alcotest.(check bool) "most queries survive merging" true
    (stats.Workload_stats.num_queries > 7000);
  within "length-1 fraction (1/2 pre-merge)" 0.38 0.55 stats.Workload_stats.length_fractions.(0);
  within "length-2 fraction (1/4 pre-merge)" 0.20 0.33 stats.Workload_stats.length_fractions.(1);
  Alcotest.(check int) "capped at 6" 6 stats.Workload_stats.max_length;
  within "avg cost ~25" 20.0 30.0 stats.Workload_stats.avg_cost;
  (* Utilities at least 1 (merged duplicates sum, so no upper bound). *)
  for qi = 0 to Instance.num_queries inst - 1 do
    if Instance.utility inst qi < 1.0 then Alcotest.fail "utility below range"
  done

let synthetic_deterministic () =
  let params = { Synthetic.default_params with num_queries = 500; num_properties = 200 } in
  let a = Synthetic.generate ~params ~seed:7 ~budget:100.0 () in
  let b = Synthetic.generate ~params ~seed:7 ~budget:100.0 () in
  Alcotest.(check int) "same query count" (Instance.num_queries a) (Instance.num_queries b);
  Alcotest.(check (float 1e-9)) "same total utility" (Instance.total_utility a)
    (Instance.total_utility b);
  let c = Synthetic.generate ~params ~seed:8 ~budget:100.0 () in
  Alcotest.(check bool) "different seed differs" true
    (Instance.total_utility a <> Instance.total_utility c)

let synthetic_cost_oracle_stable () =
  let params = { Synthetic.default_params with num_queries = 300; num_properties = 100 } in
  let inst = Synthetic.generate ~params ~seed:3 ~budget:100.0 () in
  (* The same classifier set must get the same cost when asked twice. *)
  for id = 0 to min 50 (Instance.num_classifiers inst - 1) do
    let c = Instance.classifier inst id in
    Alcotest.(check (float 1e-12)) "stable cost" (Instance.cost inst id)
      (Instance.cost_of inst c)
  done

let bestbuy_shape () =
  let inst = Bestbuy.generate ~seed:2 ~budget:100.0 () in
  let stats = Workload_stats.compute inst in
  within "length-1 fraction (65% pre-merge)" 0.45 0.72 stats.Workload_stats.length_fractions.(0);
  within "avg length ~1.4" 1.20 1.65 stats.Workload_stats.avg_length;
  Alcotest.(check bool) ">= 95% length <= 2" true
    (stats.Workload_stats.length_fractions.(0) +. stats.Workload_stats.length_fractions.(1)
    >= 0.92);
  Alcotest.(check (float 1e-9)) "uniform costs" 1.0 stats.Workload_stats.avg_cost;
  Alcotest.(check bool) "~725 properties" true
    (stats.Workload_stats.num_properties <= 725)

let private_shape () =
  let inst = Private_like.generate ~seed:5 ~budget:2000.0 () in
  let stats = Workload_stats.compute inst in
  Alcotest.(check bool) "thousands of distinct queries" true
    (stats.Workload_stats.num_queries > 2500);
  within "length-1 fraction (55% pre-merge; merging collapses popular singletons)" 0.25
    0.68 stats.Workload_stats.length_fractions.(0);
  Alcotest.(check bool) ">= 78% length <= 2" true
    (stats.Workload_stats.length_fractions.(0) +. stats.Workload_stats.length_fractions.(1)
    >= 0.78);
  Alcotest.(check bool) "max length 5" true (stats.Workload_stats.max_length <= 5);
  within "avg classifier cost ~8" 4.0 14.0 stats.Workload_stats.avg_cost;
  Alcotest.(check bool) "some free classifiers" true
    (stats.Workload_stats.zero_cost_classifiers > 0);
  (* Popular-subquery property: singleton subqueries of anchors exist. *)
  let has_singleton_of_anchor = ref false in
  for qi = 0 to Instance.num_queries inst - 1 do
    let q = Instance.query inst qi in
    if Propset.length q >= 2 then
      Propset.iter
        (fun p ->
          for qj = 0 to Instance.num_queries inst - 1 do
            if Propset.equal (Instance.query inst qj) (Propset.singleton p) then
              has_singleton_of_anchor := true
          done)
        q
  done;
  Alcotest.(check bool) "anchors come with singleton subqueries" true !has_singleton_of_anchor

let io_roundtrip () =
  let inst = Fixtures.figure1 ~budget:4.0 in
  let path = Filename.temp_file "bcc" ".inst" in
  Io.save path inst;
  let loaded = Io.load path in
  Sys.remove path;
  Alcotest.(check int) "queries preserved" (Instance.num_queries inst)
    (Instance.num_queries loaded);
  Alcotest.(check (float 1e-6)) "budget preserved" (Instance.budget inst)
    (Instance.budget loaded);
  Alcotest.(check (float 1e-6)) "total utility preserved" (Instance.total_utility inst)
    (Instance.total_utility loaded);
  Alcotest.(check int) "classifier universe preserved" (Instance.num_classifiers inst)
    (Instance.num_classifiers loaded);
  (* Solving the loaded instance gives the same optimum. *)
  let a = Bcc_core.Exact.solve inst and b = Bcc_core.Exact.solve loaded in
  Alcotest.(check (float 1e-6)) "same optimum" a.Solution.utility b.Solution.utility

let io_rejects_malformed () =
  let path = Filename.temp_file "bcc" ".inst" in
  let oc = open_out path in
  output_string oc "garbage line here\n";
  close_out oc;
  Alcotest.(check bool) "malformed file raises" true
    (try
       ignore (Io.load path);
       Sys.remove path;
       false
     with Failure _ ->
       Sys.remove path;
       true)

let costs_oracles () =
  let module Costs = Bcc_data.Costs in
  let module Rng = Bcc_util.Rng in
  let ps = Fixtures.ps in
  (* hashed_uniform: in range, deterministic. *)
  for i = 0 to 50 do
    let c = Costs.hashed_uniform ~seed:3 ~lo:0.0 ~hi:50.0 (ps [ i; i + 1 ]) in
    if c < 0.0 || c > 50.0 then Alcotest.fail "hashed_uniform out of range";
    Alcotest.(check (float 1e-12)) "deterministic" c
      (Costs.hashed_uniform ~seed:3 ~lo:0.0 ~hi:50.0 (ps [ i; i + 1 ]))
  done;
  (* hashed_skewed: capped, mean in the right ballpark. *)
  let xs =
    Array.init 3000 (fun i -> Costs.hashed_skewed ~seed:5 ~mean:8.0 ~cap:50.0 (ps [ i ]))
  in
  Array.iter (fun x -> if x < 0.0 || x > 50.0 then Alcotest.fail "skewed out of range") xs;
  let mean = Bcc_util.Stats.mean xs in
  Alcotest.(check bool) (Printf.sprintf "skewed mean %.1f near 8" mean) true
    (mean > 5.0 && mean < 11.0);
  (* subadditive: longer classifiers never cost more than the discounted
     envelope of their parts. *)
  let singleton = Costs.hashed_uniform ~seed:7 ~lo:1.0 ~hi:20.0 in
  let sub = Costs.subadditive ~seed:9 ~singleton ~discount:0.6 in
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let a = Rng.int rng 50 and b = 50 + Rng.int rng 50 in
    let pair = ps [ a; b ] in
    let parts = singleton (ps [ a ]) +. singleton (ps [ b ]) in
    let c = sub pair in
    (* envelope: discount 0.6 x jitter <= 1.2 = 0.72, plus rounding *)
    if c > (0.72 *. parts) +. 0.5 +. 1e-9 then
      Alcotest.failf "subadditive pair %f above the jittered envelope %f" c (0.72 *. parts)
  done

let solution_roundtrip () =
  let inst = Fixtures.figure1 ~budget:11.0 in
  let sol = Bcc_core.Solver.solve inst in
  let path = Filename.temp_file "bccsol" ".sol" in
  Io.save_solution path inst sol;
  let loaded = Io.load_solution inst path in
  Sys.remove path;
  Alcotest.(check (float 1e-9)) "utility preserved" sol.Solution.utility
    loaded.Solution.utility;
  Alcotest.(check (float 1e-9)) "cost preserved" sol.Solution.cost loaded.Solution.cost;
  Alcotest.(check int) "classifiers preserved"
    (List.length sol.Solution.classifiers)
    (List.length loaded.Solution.classifiers)

let solution_load_rejects_foreign () =
  let inst = Fixtures.figure1 ~budget:11.0 in
  let path = Filename.temp_file "bccsol" ".sol" in
  let oc = open_out path in
  output_string oc "select 0;1 5\n";
  (* XY has infinite cost: not in the universe *)
  close_out oc;
  Alcotest.(check bool) "foreign classifier rejected" true
    (try
       ignore (Io.load_solution inst path);
       Sys.remove path;
       false
     with Failure _ ->
       Sys.remove path;
       true)

(* qcheck: Io.load_string (Io.to_string inst) reconstructs inst — names,
   budget, utilities and costs preserved within float tolerance. *)
let io_string_roundtrip_prop =
  let gen_instance =
    QCheck.Gen.(
      let prop_id = 0 -- 7 in
      let propset = map Propset.of_list (list_size (1 -- 4) prop_id) in
      let utility = map (fun u -> float_of_int u /. 4.0) (1 -- 200) in
      triple
        (list_size (1 -- 12) (pair propset utility))
        (map (fun b -> float_of_int b /. 2.0) (0 -- 100))
        (0 -- 1000))
  in
  let make (queries, budget, cost_seed) =
    let names = Bcc_core.Symtab.create () in
    for p = 0 to 7 do
      ignore (Bcc_core.Symtab.intern names (Printf.sprintf "p%d" p))
    done;
    (* Deterministic pseudo-random cost oracle; ~1/7 classifiers priced
       infinity exercises universe-membership round-tripping. *)
    let cost c =
      let h = Propset.hash c + cost_seed in
      if h mod 7 = 0 then infinity else 0.5 +. float_of_int (abs h mod 400) /. 8.0
    in
    Instance.create ~name:"prop" ~names ~budget
      ~queries:(Array.of_list queries) ~cost ()
  in
  QCheck.Test.make ~name:"Io.load_string (Io.to_string inst) = inst" ~count:200
    (QCheck.make gen_instance ~print:(fun args ->
         Bcc_data.Io.to_string (make args)))
    (fun args ->
      let inst = make args in
      let loaded = Bcc_data.Io.load_string (Bcc_data.Io.to_string inst) in
      let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a) in
      let tbl_of i = Option.get (Instance.names i) in
      (* queries matched by property-name sets, utilities compared *)
      let key i qi =
        Instance.query i qi |> Propset.to_list
        |> List.map (Bcc_core.Symtab.name (tbl_of i))
        |> List.sort String.compare |> String.concat ";"
      in
      let utilities i =
        List.init (Instance.num_queries i) (fun qi -> (key i qi, Instance.utility i qi))
        |> List.sort compare
      in
      let costs i =
        List.init (Instance.num_classifiers i) (fun id ->
            ( Instance.classifier i id |> Propset.to_list
              |> List.map (Bcc_core.Symtab.name (tbl_of i))
              |> List.sort String.compare |> String.concat ";",
              Instance.cost i id ))
        |> List.sort compare
      in
      close (Instance.budget inst) (Instance.budget loaded)
      && Instance.num_queries inst = Instance.num_queries loaded
      && Instance.num_classifiers inst = Instance.num_classifiers loaded
      && List.for_all2
           (fun (k1, u1) (k2, u2) -> k1 = k2 && close u1 u2)
           (utilities inst) (utilities loaded)
      && List.for_all2
           (fun (k1, c1) (k2, c2) -> k1 = k2 && close c1 c2)
           (costs inst) (costs loaded))

let io_tolerant_whitespace () =
  (* Runs of spaces, tabs and CRLF line endings all parse (instance
     bodies arrive over HTTP where CRLF is the norm). *)
  let text =
    "# comment\r\nbudget   4\r\nquery a;b\t\t8\r\nquery  a  1\r\n"
    ^ "classifier a  5\r\nclassifier b\t3\r\nclassifier a;b 3\r\n"
  in
  let inst = Io.load_string text in
  Alcotest.(check (float 1e-9)) "budget" 4.0 (Instance.budget inst);
  Alcotest.(check int) "queries" 2 (Instance.num_queries inst);
  Alcotest.(check int) "classifiers" 3 (Instance.num_classifiers inst);
  let path = Filename.temp_file "bcc_crlf" ".inst" in
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc;
  let from_file = Io.load path in
  Sys.remove path;
  Alcotest.(check int) "file load agrees" (Instance.num_classifiers inst)
    (Instance.num_classifiers from_file)

let suite =
  [
    Alcotest.test_case "synthetic shape" `Slow synthetic_shape;
    Alcotest.test_case "synthetic determinism" `Quick synthetic_deterministic;
    Alcotest.test_case "synthetic cost oracle stability" `Quick synthetic_cost_oracle_stable;
    Alcotest.test_case "bestbuy shape" `Quick bestbuy_shape;
    Alcotest.test_case "private-like shape" `Slow private_shape;
    Alcotest.test_case "io roundtrip" `Quick io_roundtrip;
    QCheck_alcotest.to_alcotest io_string_roundtrip_prop;
    Alcotest.test_case "io tolerates runs of blanks and CRLF" `Quick io_tolerant_whitespace;
    Alcotest.test_case "io rejects malformed input" `Quick io_rejects_malformed;
    Alcotest.test_case "cost oracles" `Quick costs_oracles;
    Alcotest.test_case "solution roundtrip" `Quick solution_roundtrip;
    Alcotest.test_case "solution load rejects foreign classifier" `Quick
      solution_load_rejects_foreign;
  ]
