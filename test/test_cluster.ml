(* Unit and in-process integration tests for bcc_cluster: rendezvous
   ring determinism and minimal disruption, the keep-alive client pool,
   and the router's forwarding policy (ownership, single-homed store
   semantics, fault-injected failover, admission, scatter).  The
   end-to-end cluster test against real bccd processes — including a
   SIGKILL mid-run — lives in test_bccd.ml. *)

module Ring = Bcc_cluster.Ring
module Client = Bcc_cluster.Client
module Router = Bcc_cluster.Router
module Server = Bcc_server.Server
module Http = Bcc_server.Http
module Json = Bcc_server.Json
module Metrics = Bcc_server.Metrics
module Fault = Bcc_robust.Fault

(* --- ring --- *)

let n host port = { Ring.host; port }

let keys count = List.init count (Printf.sprintf "wl%d")

let ring_determinism () =
  let a = n "10.0.0.1" 8080 and b = n "10.0.0.2" 8080 and c = n "10.0.0.3" 8080 in
  let r1 = Ring.make [ a; b; c ] and r2 = Ring.make [ c; a; b; a ] in
  List.iter
    (fun k ->
      Alcotest.(check string)
        ("owner of " ^ k ^ " independent of input order")
        (Ring.node_id (Ring.owner r1 k))
        (Ring.node_id (Ring.owner r2 k));
      let ord = Ring.order r1 k in
      Alcotest.(check int) "order lists every node once" 3
        (List.length (List.sort_uniq compare (List.map Ring.node_id ord))))
    (keys 50)

let ring_minimal_disruption () =
  let a = n "10.0.0.1" 8080 and b = n "10.0.0.2" 8080 and c = n "10.0.0.3" 8080 in
  let full = Ring.make [ a; b; c ] and without_b = Ring.make [ a; c ] in
  List.iter
    (fun k ->
      let owner = Ring.owner full k in
      if Ring.node_id owner <> Ring.node_id b then
        Alcotest.(check string)
          ("removing b must not move " ^ k)
          (Ring.node_id owner)
          (Ring.node_id (Ring.owner without_b k)))
    (keys 200)

let ring_spreads_keys () =
  let nodes = [ n "10.0.0.1" 8080; n "10.0.0.2" 8080; n "10.0.0.3" 8080 ] in
  let r = Ring.make nodes in
  let counts = Hashtbl.create 3 in
  List.iter
    (fun k ->
      let id = Ring.node_id (Ring.owner r k) in
      Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
    (keys 300);
  List.iter
    (fun node ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts (Ring.node_id node)) in
      if c < 30 then
        Alcotest.failf "degenerate spread: %s owns only %d/300 keys"
          (Ring.node_id node) c)
    nodes

let ring_parse () =
  (match Ring.parse_node "example.org:8080" with
  | Some { Ring.host = "example.org"; port = 8080 } -> ()
  | _ -> Alcotest.fail "parse_node rejected a valid host:port");
  List.iter
    (fun s ->
      if Ring.parse_node s <> None then Alcotest.failf "parse_node accepted %S" s)
    [ ""; "host"; ":80"; "host:"; "host:x"; "host:0"; "host:70000" ];
  (match Ring.parse_nodes "a:1, b:2 ,c:3" with
  | Some r -> Alcotest.(check int) "three shards" 3 (Ring.size r)
  | None -> Alcotest.fail "parse_nodes rejected a valid list");
  List.iter
    (fun s ->
      if Ring.parse_nodes s <> None then
        Alcotest.failf "parse_nodes accepted %S" s)
    [ ""; ","; "a:1,nope"; "a:1 b:2" ]

(* --- in-process servers --- *)

let start_server () =
  let cfg =
    {
      Server.default_config with
      Server.port = 0;
      workers = 2;
      trace_spans = 0;
      timeout_s = 5.0;
    }
  in
  let srv = Server.create cfg in
  let th = Thread.create Server.run srv in
  (srv, th, n "127.0.0.1" (Server.port srv))

let stop_server (srv, th, _) =
  Server.request_stop srv;
  Thread.join th

(* A bound-then-closed port: connecting to it fails fast. *)
let dead_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let req ?(meth = "GET") ?(body = "") path =
  { Http.meth; path; query = []; headers = []; body }

let workload_text =
  "budget 25\n\
   query a0;a1 10\n\
   query a1;a2 6\n\
   classifier a0 2\n\
   classifier a1 3\n\
   classifier a2 4\n\
   classifier a0;a1 4\n"

let solve_body =
  {|{"text": "budget 10\nquery q1;q2 5\nclassifier q1 2\nclassifier q2 3\nclassifier q1;q2 4"}|}

(* --- client --- *)

let client_keepalive_pool () =
  let s = start_server () in
  Fun.protect ~finally:(fun () -> stop_server s) @@ fun () ->
  let _, _, node = s in
  let c = Client.create () in
  Alcotest.(check int) "pool starts empty" 0 (Client.idle_count c node);
  (match Client.request c node (req "/healthz") with
  | Ok resp -> Alcotest.(check int) "healthz" 200 resp.Http.status
  | Error e -> Alcotest.failf "healthz failed: %s" e.Http.message);
  Alcotest.(check int) "socket pooled after keep-alive response" 1
    (Client.idle_count c node);
  (match Client.request c node (req "/healthz") with
  | Ok resp -> Alcotest.(check int) "healthz again" 200 resp.Http.status
  | Error e -> Alcotest.failf "reused request failed: %s" e.Http.message);
  Alcotest.(check int) "reused socket returned to pool" 1
    (Client.idle_count c node);
  Client.close_idle c;
  Alcotest.(check int) "close_idle empties the pool" 0 (Client.idle_count c node);
  match Client.request c node (req "/healthz") with
  | Ok resp -> Alcotest.(check int) "fresh dial after close" 200 resp.Http.status
  | Error e -> Alcotest.failf "post-close request failed: %s" e.Http.message

let client_unreachable_is_502 () =
  let c = Client.create ~retries:1 ~backoff_s:0.001 () in
  let node = n "127.0.0.1" (dead_port ()) in
  match Client.request c node (req "/healthz") with
  | Ok resp -> Alcotest.failf "dead backend answered %d" resp.Http.status
  | Error e -> Alcotest.(check int) "gateway hint" 502 e.Http.status_hint

(* --- router --- *)

let mk_router ?(tenant_depth = 64) ring =
  Router.create ~tenant_depth ~metrics:(Metrics.create ()) ring

let forward_exn router r =
  match Router.forward router r with
  | Some resp -> resp
  | None -> Alcotest.failf "expected %s %s to be routed" r.Http.meth r.Http.path

(* A workload name owned by [want] on [ring]. *)
let name_owned_by ring want =
  let rec go i =
    if i > 10_000 then Alcotest.fail "no key found for shard"
    else
      let name = Printf.sprintf "wl%d" i in
      if Ring.node_id (Ring.owner ring name) = Ring.node_id want then name
      else go (i + 1)
  in
  go 0

let header_exn resp k =
  match List.assoc_opt k resp.Http.headers with
  | Some v -> v
  | None -> Alcotest.failf "missing %s header" k

let router_pins_and_scatters () =
  let s1 = start_server () and s2 = start_server () in
  Fun.protect ~finally:(fun () -> stop_server s1; stop_server s2) @@ fun () ->
  let _, _, n1 = s1 and _, _, n2 = s2 in
  let ring = Ring.make [ n1; n2 ] in
  let router = mk_router ring in
  Fun.protect ~finally:(fun () -> Router.stop router) @@ fun () ->
  (* Local endpoints are not routed. *)
  List.iter
    (fun r ->
      if Router.forward router r <> None then
        Alcotest.failf "%s %s must stay local" r.Http.meth r.Http.path)
    [ req "/healthz"; req "/metrics"; req "/debug/solves"; req "/nonsense" ];
  let w1 = name_owned_by ring n1 and w2 = name_owned_by ring n2 in
  (* Mutations land on the owner. *)
  let put name =
    forward_exn router (req ~meth:"PUT" ~body:workload_text ("/workloads/" ^ name))
  in
  let p1 = put w1 and p2 = put w2 in
  Alcotest.(check int) "PUT w1 ok" 200 p1.Http.status;
  Alcotest.(check string) "w1 on its owner" (Ring.node_id n1)
    (header_exn p1 "x-bcc-shard");
  Alcotest.(check string) "w2 on its owner" (Ring.node_id n2)
    (header_exn p2 "x-bcc-shard");
  (* Store state is single-homed: the non-owner has no copy. *)
  let c = Router.client router in
  (match Client.request c n2 (req ("/workloads/" ^ w1)) with
  | Ok resp -> Alcotest.(check int) "non-owner has no w1" 404 resp.Http.status
  | Error e -> Alcotest.failf "direct read failed: %s" e.Http.message);
  (* Sticky reads route to the owner and agree with a direct read. *)
  let via = forward_exn router (req ("/workloads/" ^ w1)) in
  Alcotest.(check int) "routed read ok" 200 via.Http.status;
  Alcotest.(check string) "read from owner" (Ring.node_id n1)
    (header_exn via "x-bcc-shard");
  (match Client.request c n1 (req ("/workloads/" ^ w1)) with
  | Ok direct ->
      Alcotest.(check string) "routed read byte-identical to direct"
        direct.Http.body via.Http.body
  | Error e -> Alcotest.failf "direct read failed: %s" e.Http.message);
  (* GET /workloads is the union over shards. *)
  let listing = forward_exn router (req "/workloads") in
  Alcotest.(check int) "scatter ok" 200 listing.Http.status;
  let names =
    match Json.member "workloads" (Json.of_string_exn listing.Http.body) with
    | Some j ->
        List.filter_map
          (fun row -> Option.bind (Json.member "name" row) Json.get_string)
          (Option.value ~default:[] (Json.get_list j))
    | None -> []
  in
  List.iter
    (fun w ->
      if not (List.mem w names) then
        Alcotest.failf "scatter listing misses %s (got %s)" w
          (String.concat "," names))
    [ w1; w2 ];
  (* Stateless solve through the router is byte-identical to a direct
     solve on either shard (modulo the per-shard solution-cache flag:
     a repeat of the same instance is legitimately "cached" there). *)
  let remove_all sub acc =
    let b = Buffer.create (String.length acc) in
    let n = String.length sub in
    let i = ref 0 in
    while !i <= String.length acc - n do
      if String.sub acc !i n = sub then i := !i + n
      else begin
        Buffer.add_char b acc.[!i];
        incr i
      end
    done;
    Buffer.add_string b (String.sub acc !i (String.length acc - !i));
    Buffer.contents b
  in
  let strip_cached body =
    remove_all {|"cached":true|} (remove_all {|"cached":false|} body)
  in
  let routed = forward_exn router (req ~meth:"POST" ~body:solve_body "/solve") in
  Alcotest.(check int) "routed solve ok" 200 routed.Http.status;
  List.iter
    (fun node ->
      match Client.request c node (req ~meth:"POST" ~body:solve_body "/solve") with
      | Ok direct ->
          Alcotest.(check string)
            ("routed solve matches " ^ Ring.node_id node)
            (strip_cached direct.Http.body)
            (strip_cached routed.Http.body)
      | Error e -> Alcotest.failf "direct solve failed: %s" e.Http.message)
    [ n1; n2 ]

let router_fault_failover () =
  let s1 = start_server () and s2 = start_server () in
  Fun.protect ~finally:(fun () -> stop_server s1; stop_server s2) @@ fun () ->
  let _, _, n1 = s1 and _, _, n2 = s2 in
  let router = mk_router (Ring.make [ n1; n2 ]) in
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Router.stop router)
  @@ fun () ->
  (* A stateless solve survives one injected forward failure: the
     second ring node serves it. *)
  Fault.arm ~count:1 Router.fault_point Fault.Throw;
  let resp = forward_exn router (req ~meth:"POST" ~body:solve_body "/solve") in
  Alcotest.(check int) "failover answered" 200 resp.Http.status;
  Alcotest.(check int) "fault consumed" 1 (Fault.fired Router.fault_point);
  Fault.reset ();
  (* A mutation is never failed over: the injected failure surfaces as
     503 + retry-after. *)
  Fault.arm ~count:1 Router.fault_point Fault.Throw;
  let resp =
    forward_exn router (req ~meth:"PUT" ~body:workload_text "/workloads/wfault")
  in
  Alcotest.(check int) "mutation not retried elsewhere" 503 resp.Http.status;
  ignore (header_exn resp "retry-after")

let router_down_owner_503 () =
  let s1 = start_server () in
  Fun.protect ~finally:(fun () -> stop_server s1) @@ fun () ->
  let _, _, live = s1 in
  let dead = n "127.0.0.1" (dead_port ()) in
  let ring = Ring.make [ live; dead ] in
  let router = mk_router ring in
  Fun.protect ~finally:(fun () -> Router.stop router) @@ fun () ->
  (* Two failed probes flip the dead shard down. *)
  Alcotest.(check bool) "assumed up initially" true (Router.is_up router dead);
  Router.probe router dead;
  Router.probe router dead;
  Alcotest.(check bool) "down after consecutive probe failures" false
    (Router.is_up router dead);
  Alcotest.(check bool) "live shard stays up" true (Router.is_up router live);
  let orphan = name_owned_by ring dead in
  (* Store traffic for the dead owner: 503 + retry-after, both reads
     and writes — never a misleading 404 from the other shard. *)
  List.iter
    (fun r ->
      let resp = forward_exn router r in
      Alcotest.(check int)
        (Printf.sprintf "%s %s while owner down" r.Http.meth r.Http.path)
        503 resp.Http.status;
      ignore (header_exn resp "retry-after"))
    [
      req ("/workloads/" ^ orphan);
      req ("/workloads/" ^ orphan ^ "/solution");
      req ~meth:"PUT" ~body:workload_text ("/workloads/" ^ orphan);
      req ~meth:"POST" ~body:"budget 9\n" ("/workloads/" ^ orphan ^ "/delta");
    ];
  (* Stateless compute skips the dead shard entirely. *)
  let resp = forward_exn router (req ~meth:"POST" ~body:solve_body "/solve") in
  Alcotest.(check int) "stateless solve avoids the dead shard" 200
    resp.Http.status;
  Alcotest.(check string) "served by the live shard" (Ring.node_id live)
    (header_exn resp "x-bcc-shard");
  (* Hedgeable GET: still answered with one candidate up. *)
  let resp = forward_exn router (req "/instances") in
  Alcotest.(check int) "GET /instances answered" 200 resp.Http.status

let router_admission_429 () =
  let s1 = start_server () in
  Fun.protect ~finally:(fun () -> stop_server s1) @@ fun () ->
  let _, _, node = s1 in
  let router = mk_router ~tenant_depth:1 (Ring.make [ node ]) in
  Fun.protect ~finally:(fun () -> Router.stop router) @@ fun () ->
  let adm = Router.admission router in
  (* Hold the default tenant's only slot: the forward must be refused
     with 429 + retry-after, and succeed again once the slot frees. *)
  Alcotest.(check bool) "slot acquired" true
    (Bcc_sched.Admission.try_acquire adm ~tenant:"default");
  let resp = forward_exn router (req "/workloads") in
  Alcotest.(check int) "over-budget tenant is refused" 429 resp.Http.status;
  ignore (header_exn resp "retry-after");
  Bcc_sched.Admission.release adm ~tenant:"default";
  let resp = forward_exn router (req "/workloads") in
  Alcotest.(check int) "admitted after release" 200 resp.Http.status

let suite =
  [
    Alcotest.test_case "ring determinism" `Quick ring_determinism;
    Alcotest.test_case "ring minimal disruption" `Quick ring_minimal_disruption;
    Alcotest.test_case "ring spreads keys" `Quick ring_spreads_keys;
    Alcotest.test_case "ring parse" `Quick ring_parse;
    Alcotest.test_case "client keep-alive pool" `Quick client_keepalive_pool;
    Alcotest.test_case "client unreachable is 502" `Quick client_unreachable_is_502;
    Alcotest.test_case "router pins and scatters" `Quick router_pins_and_scatters;
    Alcotest.test_case "router fault failover" `Quick router_fault_failover;
    Alcotest.test_case "router down owner 503" `Quick router_down_owner_503;
    Alcotest.test_case "router admission 429" `Quick router_admission_429;
  ]
