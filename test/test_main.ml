let () =
  Alcotest.run "bcc"
    [
      ("util", Test_util.suite);
      ("engine", Test_engine.suite);
      ("graph", Test_graph.suite);
      ("knapsack", Test_knapsack.suite);
      ("setcover", Test_setcover.suite);
      ("dks", Test_dks.suite);
      ("qk", Test_qk.suite);
      ("core-model", Test_core_model.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("solver", Test_solver.suite);
      ("gmc3-ecc", Test_gmc3_ecc.suite);
      ("data", Test_data.suite);
      ("catalog", Test_catalog.suite);
      ("extensions", Test_extensions.suite);
      ("more", Test_more.suite);
      ("theory", Test_theory.suite);
      ("misc", Test_misc.suite);
      ("ingest", Test_ingest.suite);
      ("robust", Test_robust.suite);
      ("oracle", Test_oracle.suite);
      ("fuzz", Test_fuzz.suite);
      ("store", Test_store.suite);
      ("pipeline", Test_pipeline.suite);
      ("sched", Test_sched.suite);
      ("server", Test_server.suite);
      ("obs", Test_obs.suite);
      ("cluster", Test_cluster.suite);
      ("bccd", Test_bccd.suite);
    ]
