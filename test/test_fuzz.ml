(* Fuzzing the two ingest surfaces that parse bytes from the outside
   world: [Http.read_request] (daemon socket reads) and [Io.load_string]
   (instance bodies).  The contract under test: malformed input comes
   back as a typed error — [Error {status_hint; _}] with a 4xx/5xx hint
   for HTTP, [Failure _] for instance text — never as an unhandled
   exception, a silent mis-parse, or a hang.  Mutations derive from the
   qcheck seed through [Bcc_util.Rng], so a failing case replays from
   the printed seed. *)

module Http = Bcc_server.Http
module Io = Bcc_data.Io
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* Deep runs (CI's fuzz job) crank the iteration count via env. *)
let count n =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some c when c > 0 -> c | _ -> n)
  | None -> n

(* --- HTTP --- *)

(* Feed [bytes] to [read_request] through a pipe; the write end is
   closed before reading so truncated input is EOF, never a hang.
   Payloads stay well under the 64 KiB pipe buffer. *)
let feed_request bytes =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () -> Unix.close r)
    (fun () ->
      (try
         let n = String.length bytes in
         let pos = ref 0 in
         while !pos < n do
           pos := !pos + Unix.write_substring w bytes !pos (n - !pos)
         done
       with e ->
         Unix.close w;
         raise e);
      Unix.close w;
      Http.read_request ~max_header:4096 ~max_body:32768 r)

let valid_request = "POST /solve HTTP/1.1\r\ncontent-length: 5\r\nx-a: b\r\n\r\nhello"

(* One structurally-targeted mutation of a well-formed request. *)
let mutate_request rng =
  match Rng.int rng 10 with
  | 0 -> "" (* instant EOF *)
  | 1 ->
      (* truncated anywhere, including mid-header and mid-body *)
      String.sub valid_request 0 (Rng.int rng (String.length valid_request))
  | 2 ->
      (* content-length that isn't a length *)
      let bad = List.nth [ "abc"; "-1"; "99999999999999999999"; ""; "5x" ] (Rng.int rng 5) in
      Printf.sprintf "POST /solve HTTP/1.1\r\ncontent-length: %s\r\n\r\nhello" bad
  | 3 ->
      (* body bigger than max_body *)
      let n = 32769 + Rng.int rng 4096 in
      Printf.sprintf "POST /x HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s" n
        (String.make n 'b')
  | 4 ->
      (* header block bigger than max_header *)
      Printf.sprintf "GET / HTTP/1.1\r\nx-pad: %s\r\n\r\n" (String.make 8192 'p')
  | 5 -> "GET\r\n\r\n" (* malformed request line *)
  | 6 -> "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"
  | 7 ->
      (* declared length longer than what arrives: EOF mid-body *)
      "POST / HTTP/1.1\r\ncontent-length: 500\r\n\r\nshort"
  | 8 ->
      (* bare LF line endings and stray NULs *)
      "GET /\x00 HTTP/1.1\nhost: x\n\n"
  | _ ->
      (* pure binary garbage *)
      String.init (Rng.int rng 512) (fun _ -> Char.chr (Rng.int rng 256))

let http_fuzz =
  QCheck.Test.make ~name:"read_request: typed errors only" ~count:(count 200)
    QCheck.small_int (fun seed ->
      let rng = Rng.create (0x48747470 lxor seed) in
      let bytes = mutate_request rng in
      match feed_request bytes with
      | Ok _ -> true (* some truncations still form a valid request *)
      | Error { Http.status_hint; _ } -> status_hint >= 400 && status_hint < 600)

let http_sanity () =
  (match feed_request valid_request with
  | Ok req ->
      Alcotest.(check string) "method" "POST" req.Http.meth;
      Alcotest.(check string) "path" "/solve" req.Http.path;
      Alcotest.(check string) "body" "hello" req.Http.body
  | Error e -> Alcotest.failf "valid request rejected: %s" e.Http.message);
  let expect_error name bytes =
    match feed_request bytes with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error { Http.status_hint; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: hint %d in 4xx/5xx" name status_hint)
          true
          (status_hint >= 400 && status_hint < 600)
  in
  expect_error "empty input" "";
  expect_error "non-numeric content-length"
    "POST / HTTP/1.1\r\ncontent-length: abc\r\n\r\n";
  expect_error "oversized body"
    (Printf.sprintf "POST / HTTP/1.1\r\ncontent-length: 40000\r\n\r\n%s"
       (String.make 40000 'b'));
  expect_error "truncated body" "POST / HTTP/1.1\r\ncontent-length: 99\r\n\r\nhi"

(* --- instance text --- *)

let base_instance = Io.to_string (Fixtures.figure1 ~budget:4.0)

let lines s = String.split_on_char '\n' s

let unlines = String.concat "\n"

(* One mutation of a valid instance body. *)
let mutate_instance rng =
  let ls = lines base_instance in
  let nl = List.length ls in
  match Rng.int rng 10 with
  | 0 -> String.sub base_instance 0 (Rng.int rng (String.length base_instance))
  | 1 -> unlines (List.mapi (fun i l -> if i = Rng.int rng nl then "garbage here" else l) ls)
  | 2 -> base_instance ^ "\nbudget nan\n"
  | 3 -> base_instance ^ "\nquery a;a 3\n" (* duplicate property *)
  | 4 -> base_instance ^ "\nquery ;a 3\n" (* empty property *)
  | 5 -> base_instance ^ "\nclassifier a -3\n" (* negative cost *)
  | 6 -> base_instance ^ "\nquery a\n" (* missing utility field *)
  | 7 ->
      (* random character substitution *)
      String.mapi
        (fun i c -> if i = Rng.int rng (String.length base_instance) then '%' else c)
        base_instance
  | 8 -> String.init (Rng.int rng 256) (fun _ -> Char.chr (Rng.int rng 256))
  | _ -> base_instance (* unmutated: must stay loadable *)

let io_fuzz =
  QCheck.Test.make ~name:"load_string: Failure or a valid instance, nothing else"
    ~count:(count 300) QCheck.small_int (fun seed ->
      let rng = Rng.create (0x496f lxor seed) in
      let s = mutate_instance rng in
      match Io.load_string s with
      | inst ->
          (* Whatever loads must be internally consistent enough to ask
             basic questions of. *)
          Bcc_core.Instance.num_queries inst >= 0
      | exception Failure _ -> true)

let io_sanity () =
  let expect_failure name s =
    match Io.load_string s with
    | _ -> Alcotest.failf "%s: accepted" name
    | exception Failure _ -> ()
  in
  expect_failure "NaN budget" "budget nan";
  expect_failure "duplicate property" "budget 2\nquery a;a 3";
  expect_failure "empty property" "budget 2\nquery ;a 3";
  expect_failure "negative cost" "budget 2\nquery a 1\nclassifier a -3";
  expect_failure "negative utility" "budget 2\nquery a -1";
  expect_failure "malformed line" "budget 2\nwibble";
  expect_failure "missing field" "budget 2\nquery a";
  (* and the unmutated round trip still works *)
  let inst = Io.load_string base_instance in
  Alcotest.(check int) "round-trip query count" 3
    (Bcc_core.Instance.num_queries inst)

(* --- workload store persistence --- *)

module Codec = Bcc_store.Codec
module Store = Bcc_store.Store
module Delta = Bcc_store.Delta

(* A valid journal: three committed delta records. *)
let base_journal =
  String.concat ""
    (List.map Codec.encode
       [
         { Codec.kind = "delta"; generation = "g1.2.3"; epoch = 1; payload = "add a;b 3\n" };
         { Codec.kind = "delta"; generation = "g1.2.3"; epoch = 2; payload = "budget 9\n" };
         { Codec.kind = "delta"; generation = "g1.2.3"; epoch = 3; payload = "remove a;b\n" };
       ])

(* One mutation of the journal bytes. *)
let mutate_journal rng =
  let n = String.length base_journal in
  match Rng.int rng 6 with
  | 0 -> String.sub base_journal 0 (Rng.int rng n) (* torn anywhere *)
  | 1 ->
      (* single flipped byte: checksum or framing breaks *)
      let i = Rng.int rng n in
      String.mapi
        (fun j c -> if j = i then Char.chr (Char.code c lxor (1 + Rng.int rng 255)) else c)
        base_journal
  | 2 -> base_journal ^ "@rec delta g1.2.3 4 99 not-a-checksum\nxx" (* torn tail *)
  | 3 -> String.init (Rng.int rng 512) (fun _ -> Char.chr (Rng.int rng 256))
  | 4 ->
      (* valid framing, lying length field *)
      base_journal ^ "@rec delta g1.2.3 4 999999999 0123456789abcdef0123456789abcdef\nhi\n"
  | _ -> base_journal

let codec_fuzz =
  QCheck.Test.make ~name:"store codec: decode never raises, tail stays in bounds"
    ~count:(count 300) QCheck.small_int (fun seed ->
      let rng = Rng.create (0x436f lxor seed) in
      let bytes = mutate_journal rng in
      let records, tail = Codec.decode bytes in
      (* decoded records re-encode into the committed prefix exactly *)
      let prefix_len =
        List.fold_left (fun acc r -> acc + String.length (Codec.encode r)) 0 records
      in
      tail >= 0 && prefix_len + tail = String.length bytes)

(* Store.create over a state dir with mutated files: snapshot corruption
   is a typed [Failure] (refuse to serve a workload we can't trust);
   journal corruption is survivable (committed prefix + truncation). *)
let store_replay_fuzz =
  QCheck.Test.make ~name:"store replay: Failure on bad snapshots, never anything else"
    ~count:(count 60) QCheck.small_int (fun seed ->
      let rng = Rng.create (0x5265 lxor seed) in
      let dir = Filename.temp_file "bcc_fuzz" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      Fun.protect
        ~finally:(fun () ->
          Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
          Unix.rmdir dir)
        (fun () ->
          (* build a real workload on disk, then corrupt it *)
          let store = Store.create ~dir () in
          (match Store.put store ~name:"w" (Store.Text "budget 4\nquery a 3\nclassifier a 2\n") with
          | Ok _ -> ()
          | Error _ -> failwith "seed put failed");
          (match Store.delta store ~name:"w" [ Delta.Add ([ "a" ], 1.0) ] with
          | Ok _ -> ()
          | Error _ -> failwith "seed delta failed");
          Store.close store;
          let target, path =
            if Rng.bool rng then ("snap", Filename.concat dir "w.snap")
            else ("journal", Filename.concat dir "w.journal")
          in
          let bytes = In_channel.with_open_bin path In_channel.input_all in
          let mutated =
            match Rng.int rng 3 with
            | 0 -> String.sub bytes 0 (Rng.int rng (String.length bytes))
            | 1 ->
                let i = Rng.int rng (max 1 (String.length bytes)) in
                String.mapi (fun j c -> if j = i then '\xff' else c) bytes
            | _ -> String.init (Rng.int rng 256) (fun _ -> Char.chr (Rng.int rng 256))
          in
          Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc mutated);
          match Store.create ~dir () with
          | store ->
              (* survived: the workload is either absent or coherent *)
              let ok =
                match Store.info store "w" with
                | None -> true
                | Some i -> i.Store.epoch >= 0 && i.Store.num_queries >= 0
              in
              Store.close store;
              ok
          | exception Failure _ ->
              (* only a snapshot may refuse replay; journals must always
                 degrade to their committed prefix *)
              String.equal target "snap"))

let store_fuzz_sanity () =
  let records, tail = Codec.decode "" in
  Alcotest.(check int) "empty journal: no records" 0 (List.length records);
  Alcotest.(check int) "empty journal: no tail" 0 tail;
  let records, tail = Codec.decode "complete garbage, no @rec anywhere" in
  Alcotest.(check int) "garbage: no records" 0 (List.length records);
  Alcotest.(check bool) "garbage: all tail" true (tail > 0);
  let records, tail = Codec.decode base_journal in
  Alcotest.(check int) "valid journal: all three records" 3 (List.length records);
  Alcotest.(check int) "valid journal: clean" 0 tail

(* --- telemetry event JSONL codec --- *)

module Event = Bcc_obs.Event

(* A generated event whose encoding must round-trip exactly.  [Str]
   values avoid the "nan"/"inf"/"-inf" sentinels (documented lossy:
   they decode as the corresponding [Float]) and floats stay finite —
   non-finite round-trips are covered by the obs suite. *)
let gen_event rng =
  let gen_string maxlen =
    String.init (Rng.int rng (maxlen + 1)) (fun _ ->
        match Rng.int rng 6 with
        | 0 -> '"'
        | 1 -> '\\'
        | 2 -> Char.chr (Rng.int rng 32) (* control chars, incl NUL and \n *)
        | _ -> Char.chr (32 + Rng.int rng 95))
  in
  let rec safe_str () =
    let s = gen_string 12 in
    if s = "nan" || s = "inf" || s = "-inf" then safe_str () else s
  in
  let gen_value () =
    match Rng.int rng 4 with
    | 0 -> Event.Bool (Rng.bool rng)
    | 1 -> Event.Int (Rng.int rng 1000000 - 500000)
    | 2 ->
        (* mix of integer-valued and fractional, positive and negative *)
        let f = float_of_int (Rng.int rng 2000 - 1000) /. float_of_int (1 + Rng.int rng 8) in
        Event.Float f
    | _ -> Event.Str (safe_str ())
  in
  {
    Event.ts_s = float_of_int (Rng.int rng 1000000) /. 64.0;
    corr = (if Rng.bool rng then "" else Printf.sprintf "%012x" (Rng.int rng 0x3fffffff));
    name = gen_string 16;
    attrs = List.init (Rng.int rng 6) (fun i -> (Printf.sprintf "k%d_%s" i (gen_string 6), gen_value ()));
  }

let event_roundtrip_fuzz =
  QCheck.Test.make ~name:"event codec: decode (encode e) = Some e" ~count:(count 300)
    QCheck.small_int (fun seed ->
      let rng = Rng.create (0x4576 lxor seed) in
      let ev = gen_event rng in
      match Event.of_json_line (Event.to_json_line ev) with
      | None -> false
      | Some d ->
          abs_float (d.Event.ts_s -. ev.Event.ts_s) < 1e-9
          && d.Event.corr = ev.Event.corr
          && d.Event.name = ev.Event.name
          && d.Event.attrs = ev.Event.attrs)

let gen_string_tail rng =
  String.init (Rng.int rng 32) (fun _ -> Char.chr (Rng.int rng 256))

(* The decoder is total: truncated, bit-flipped or garbage lines come
   back as [None] (or, by luck, some other valid event) — never an
   exception.  Same mutation idioms as the journal fuzzer above. *)
let event_decode_fuzz =
  QCheck.Test.make ~name:"event codec: of_json_line never raises" ~count:(count 300)
    QCheck.small_int (fun seed ->
      let rng = Rng.create (0x45764d lxor seed) in
      let line = Event.to_json_line (gen_event rng) in
      let n = String.length line in
      let mutated =
        match Rng.int rng 4 with
        | 0 -> String.sub line 0 (Rng.int rng (n + 1)) (* truncated anywhere *)
        | 1 ->
            let i = Rng.int rng (max 1 n) in
            String.mapi
              (fun j c -> if j = i then Char.chr (Char.code c lxor (1 + Rng.int rng 255)) else c)
              line
        | 2 -> String.init (Rng.int rng 256) (fun _ -> Char.chr (Rng.int rng 256))
        | _ -> line ^ gen_string_tail rng
      in
      match Event.of_json_line mutated with Some _ | None -> true)

let event_codec_sanity () =
  let expect_none name s =
    Alcotest.(check bool) name true (Event.of_json_line s = None)
  in
  expect_none "empty line" "";
  expect_none "bare null" "null";
  expect_none "array" "[1,2]";
  expect_none "missing name" "{\"ts\": 1.0, \"corr\": \"\", \"attrs\": {}}";
  expect_none "name wrong type" "{\"ts\": 1.0, \"corr\": \"\", \"name\": 3, \"attrs\": {}}";
  expect_none "half an object" "{\"ts\": 1.0, \"corr";
  let ev = { Event.ts_s = 2.5; corr = "abc123def456"; name = "x"; attrs = [] } in
  Alcotest.(check bool) "minimal event round-trips" true
    (Event.of_json_line (Event.to_json_line ev) = Some ev)

let suite =
  [
    ("http: hand-picked malformed inputs", `Quick, http_sanity);
    ("io: hand-picked malformed inputs", `Quick, io_sanity);
    ("store: hand-picked journal corruptions", `Quick, store_fuzz_sanity);
    ("events: hand-picked malformed lines", `Quick, event_codec_sanity);
    qtest http_fuzz;
    qtest io_fuzz;
    qtest codec_fuzz;
    qtest store_replay_fuzz;
    qtest event_roundtrip_fuzz;
    qtest event_decode_fuzz;
  ]
