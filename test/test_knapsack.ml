(* Tests for the knapsack solvers (BCC(1) engine, Theorem 3.1 /
   Observation 4.3). *)

module Knapsack = Bcc_knapsack.Knapsack
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let known_instance () =
  let values = [| 60.0; 100.0; 120.0 |] and weights = [| 10.0; 20.0; 30.0 |] in
  let sol = Knapsack.branch_and_bound ~values ~weights ~budget:50.0 in
  Alcotest.(check (float 1e-9)) "classic optimum" 220.0 sol.Knapsack.value;
  Alcotest.(check (list int)) "items 1 and 2" [ 1; 2 ] sol.Knapsack.items

let exact_int_known () =
  let sol =
    Knapsack.exact_int ~values:[| 60.0; 100.0; 120.0 |] ~weights:[| 10; 20; 30 |] ~budget:50 ()
  in
  Alcotest.(check (float 1e-9)) "DP optimum" 220.0 sol.Knapsack.value

let zero_weight_items () =
  let sol = Knapsack.solve ~values:[| 5.0; 3.0 |] ~weights:[| 0.0; 1.0 |] 0.5 in
  Alcotest.(check (float 1e-9)) "free item always taken" 5.0 sol.Knapsack.value

let empty_instance () =
  let sol = Knapsack.solve ~values:[||] ~weights:[||] 10.0 in
  Alcotest.(check (float 1e-9)) "empty" 0.0 sol.Knapsack.value;
  Alcotest.(check (list int)) "no items" [] sol.Knapsack.items

let random_inputs seed =
  let rng = Rng.create seed in
  let n = 1 + Rng.int rng 12 in
  let values = Array.init n (fun _ -> float_of_int (Rng.int_in rng 0 30)) in
  let weights = Array.init n (fun _ -> Rng.int_in rng 0 15) in
  let budget = Rng.int_in rng 0 40 in
  (values, weights, budget)

let feasible weights budget items =
  List.fold_left (fun acc i -> acc +. weights.(i)) 0.0 items <= budget +. 1e-9

let exact_matches_bnb =
  QCheck.Test.make ~name:"exact_int matches branch_and_bound" ~count:150 QCheck.small_int
    (fun seed ->
      let values, weights, budget = random_inputs seed in
      let a = Knapsack.exact_int ~values ~weights ~budget () in
      let b =
        Knapsack.branch_and_bound ~values
          ~weights:(Array.map float_of_int weights)
          ~budget:(float_of_int budget)
      in
      abs_float (a.Knapsack.value -. b.Knapsack.value) < 1e-9)

let greedy_half_approx =
  QCheck.Test.make ~name:"greedy achieves at least half the optimum" ~count:150
    QCheck.small_int (fun seed ->
      let values, weights, budget = random_inputs seed in
      let weights_f = Array.map float_of_int weights in
      let budget_f = float_of_int budget in
      let g = Knapsack.greedy ~values ~weights:weights_f ~budget:budget_f in
      let opt = Knapsack.exact_int ~values ~weights ~budget () in
      g.Knapsack.value +. 1e-9 >= opt.Knapsack.value /. 2.0
      && feasible weights_f budget_f g.Knapsack.items)

let solve_near_optimal =
  QCheck.Test.make ~name:"solve is feasible and near-optimal" ~count:150 QCheck.small_int
    (fun seed ->
      let values, weights, budget = random_inputs seed in
      let weights_f = Array.map float_of_int weights in
      let budget_f = float_of_int budget in
      let s = Knapsack.solve ~values ~weights:weights_f budget_f in
      let opt = Knapsack.exact_int ~values ~weights ~budget () in
      feasible weights_f budget_f s.Knapsack.items
      && s.Knapsack.value +. 1e-9 >= 0.95 *. opt.Knapsack.value)

let reconstruction_consistent =
  QCheck.Test.make ~name:"reported value equals the sum over returned items" ~count:150
    QCheck.small_int (fun seed ->
      let values, weights, budget = random_inputs seed in
      let sol = Knapsack.exact_int ~values ~weights ~budget () in
      let v = List.fold_left (fun acc i -> acc +. values.(i)) 0.0 sol.Knapsack.items in
      let w =
        List.fold_left (fun acc i -> acc + weights.(i)) 0 sol.Knapsack.items
      in
      abs_float (v -. sol.Knapsack.value) < 1e-9 && w <= budget)

let suite =
  [
    Alcotest.test_case "known optimum (branch and bound)" `Quick known_instance;
    Alcotest.test_case "known optimum (DP)" `Quick exact_int_known;
    Alcotest.test_case "zero-weight items" `Quick zero_weight_items;
    Alcotest.test_case "empty instance" `Quick empty_instance;
    qtest exact_matches_bnb;
    qtest greedy_half_approx;
    qtest solve_near_optimal;
    qtest reconstruction_consistent;
  ]
