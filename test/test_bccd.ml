(* End-to-end test of the bccd daemon: spawns the real binary on an
   ephemeral port, fires concurrent /solve requests at two budgets,
   verifies every returned solution client-side, asserts the repeated
   (instance, budget) pairs hit the solution cache (via /metrics), and
   checks the daemon drains and exits cleanly on SIGTERM. *)

module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab
module Solution = Bcc_core.Solution
module Io = Bcc_data.Io
module Json = Bcc_server.Json

let bccd_exe = Filename.concat ".." "bin/bccd.exe"

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- a tiny HTTP client (one request per connection, read to EOF) --- *)

(* [request_raw] keeps the status line and headers (the fault-matrix
   tests assert [retry-after]); [request] strips to the body. *)
let request_raw ~port ~meth ~path ?(body = "") () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      let req =
        Printf.sprintf "%s %s HTTP/1.1\r\nhost: localhost\r\ncontent-length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      let b = Bytes.of_string req in
      let rec write_all off =
        if off < Bytes.length b then
          write_all (off + Unix.write sock b off (Bytes.length b - off))
      in
      write_all 0;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n -> Buffer.add_subbytes buf chunk 0 n; drain ()
        (* a reset after (part of) the response is end-of-stream, not a
           client crash — keep whatever arrived *)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        try Scanf.sscanf raw "HTTP/1.1 %d" (fun s -> s)
        with Scanf.Scan_failure _ | End_of_file -> -1
      in
      (status, raw))

let request ~port ~meth ~path ?body () =
  let status, raw = request_raw ~port ~meth ~path ?body () in
  let body =
    let rec find i =
      if i + 3 >= String.length raw then String.length raw
      else if String.sub raw i 4 = "\r\n\r\n" then i + 4
      else find (i + 1)
    in
    let start = find 0 in
    String.sub raw start (String.length raw - start)
  in
  (status, body)

(* --- daemon process management --- *)

type daemon = { pid : int; out : in_channel; port : int }

let start_daemon ?faults ?(port = 0) args =
  if not (Sys.file_exists bccd_exe) then
    Alcotest.failf "daemon binary %s not built" bccd_exe;
  let out_r, out_w = Unix.pipe () in
  let argv =
    Array.of_list (bccd_exe :: "--port" :: string_of_int port :: args)
  in
  let pid =
    match faults with
    | None -> Unix.create_process bccd_exe argv Unix.stdin out_w Unix.stderr
    | Some spec ->
        (* Arm the daemon's fault registry through the environment, the
           way an operator would. *)
        let env =
          Array.append (Unix.environment ()) [| "BCC_FAULTS=" ^ spec |]
        in
        Unix.create_process_env bccd_exe argv env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let out = Unix.in_channel_of_descr out_r in
  let rec find_port tries =
    if tries = 0 then Alcotest.fail "daemon never reported its port";
    match input_line out with
    | line -> (
        match
          Scanf.sscanf line "bccd: listening on %s@:%d" (fun _ p -> p)
        with
        | port -> port
        | exception (Scanf.Scan_failure _ | End_of_file | Failure _) ->
            find_port (tries - 1))
    | exception End_of_file -> Alcotest.fail "daemon exited before listening"
  in
  let port = find_port 50 in
  { pid; out; port }

let wait_exit d =
  (* Bounded wait so a wedged daemon fails the test instead of hanging
     it.  Monotonic-clock delta, not wall-clock timestamps: an NTP step
     mid-test must not spuriously expire (or extend) the bound. *)
  let started = Bcc_util.Timer.now_s () in
  let deadline = started +. 10.0 in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] d.pid with
    | 0, _ ->
        if Bcc_util.Timer.now_s () > deadline then begin
          Unix.kill d.pid Sys.sigkill;
          ignore (Unix.waitpid [] d.pid);
          Alcotest.fail "daemon did not exit within 10s of SIGTERM"
        end
        else (Thread.delay 0.05; poll ())
    | _, status -> status
  in
  poll ()

let drain_output d =
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_string buf (input_line d.out);
       Buffer.add_char buf '\n'
     done
   with End_of_file -> ());
  close_in d.out;
  Buffer.contents buf

(* --- fixtures --- *)

let fixture_file () =
  let inst = Fixtures.figure1 ~budget:4.0 in
  let file = Filename.temp_file "bccd_fixture" ".inst" in
  (* figure1 has no symtab; rebuild it with named properties so the wire
     format and the client-side verification exercise name interning. *)
  let names = Symtab.create () in
  List.iter (fun n -> ignore (Symtab.intern names n)) [ "x"; "y"; "z" ];
  let named =
    Instance.create ~name:"figure1" ~names ~budget:(Instance.budget inst)
      ~queries:
        (Array.init (Instance.num_queries inst) (fun qi ->
             (Instance.query inst qi, Instance.utility inst qi)))
      ~cost:(fun c -> Instance.cost_of inst c)
      ()
  in
  Io.save file named;
  (file, named)

let get_field name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response field %S missing in %s" name (Json.to_string json)

let num_field name json =
  match Json.get_num (get_field name json) with
  | Some x -> x
  | None -> Alcotest.failf "field %S is not a number" name

(* Rebuild the solution client-side from the returned classifier names
   and verify it against the locally loaded instance. *)
let verify_response inst ~budget json =
  let inst = Instance.with_budget inst budget in
  let tbl = Option.get (Instance.names inst) in
  let classifiers =
    match Json.get_list (get_field "classifiers" json) with
    | None -> Alcotest.fail "classifiers is not a list"
    | Some sets ->
        List.map
          (fun set ->
            match Json.get_list set with
            | None -> Alcotest.fail "classifier is not a list"
            | Some names ->
                Propset.of_list
                  (List.map
                     (fun n ->
                       match Json.get_string n with
                       | Some s -> Option.get (Symtab.find tbl s)
                       | None -> Alcotest.fail "classifier member is not a string")
                     names))
          sets
  in
  let sol = Solution.of_sets inst classifiers in
  Alcotest.(check bool) "client-side Solution.verify" true (Solution.verify inst sol);
  Alcotest.(check (float 1e-6)) "server utility matches recomputation"
    sol.Solution.utility (num_field "utility" json);
  Alcotest.(check (float 1e-6)) "server cost matches recomputation"
    sol.Solution.cost (num_field "cost" json);
  Alcotest.(check bool) "server-side verified flag" true
    (Json.get_bool (get_field "verified" json) = Some true)

let metric_value body name =
  (* Find "name value" or "name{labels} value" in Prometheus text. *)
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
         if
           String.length line > String.length name
           && String.sub line 0 (String.length name) = name
         then
           match String.rindex_opt line ' ' with
           | Some i ->
               float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
           | None -> None
         else None)

(* --- the end-to-end scenario --- *)

let e2e_concurrent_solves_and_shutdown () =
  let file, inst = fixture_file () in
  let d =
    start_daemon [ "--workers"; "4"; "--load"; "fig=" ^ file; "--timeout"; "30" ]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] d.pid) with Unix.Unix_error _ -> ());
      Sys.remove file)
    (fun () ->
      (* health + preloaded listing *)
      let status, body = request ~port:d.port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz status" 200 status;
      Alcotest.(check string) "healthz body" "ok\n" body;
      let status, body = request ~port:d.port ~meth:"GET" ~path:"/instances" () in
      Alcotest.(check int) "instances status" 200 status;
      let listing = Json.of_string_exn (String.trim body) in
      (match Json.get_list (get_field "instances" listing) with
      | Some [ entry ] ->
          Alcotest.(check (option string)) "preloaded name" (Some "fig")
            (Json.get_string (get_field "name" entry))
      | _ -> Alcotest.fail "expected exactly one preloaded instance");

      (* >= 8 concurrent /solve requests for the same instance at two
         budgets (the paper's budget-sweep-over-fixed-workload pattern) *)
      let budgets = [| 4.0; 11.0; 4.0; 11.0; 4.0; 11.0; 4.0; 11.0 |] in
      let results = Array.make (Array.length budgets) (-1, "") in
      let fire i =
        let body = Printf.sprintf {|{"instance":"fig","budget":%g}|} budgets.(i) in
        results.(i) <- request ~port:d.port ~meth:"POST" ~path:"/solve" ~body ()
      in
      let threads =
        Array.to_list (Array.mapi (fun i _ -> Thread.create fire i) budgets)
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i (status, body) ->
          Alcotest.(check int) (Printf.sprintf "solve[%d] status" i) 200 status;
          let json = Json.of_string_exn (String.trim body) in
          verify_response inst ~budget:budgets.(i) json;
          (* Figure 1 optima: utility 9 at budget 4, utility 11 at 11. *)
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "solve[%d] optimal utility" i)
            (if budgets.(i) = 4.0 then 9.0 else 11.0)
            (num_field "utility" json))
        results;

      (* Sequential re-solves of both (instance, budget) pairs must be
         cache hits regardless of how the concurrent batch raced. *)
      List.iter
        (fun b ->
          let body = Printf.sprintf {|{"instance":"fig","budget":%g}|} b in
          let status, body = request ~port:d.port ~meth:"POST" ~path:"/solve" ~body () in
          Alcotest.(check int) "re-solve status" 200 status;
          let json = Json.of_string_exn (String.trim body) in
          Alcotest.(check (option bool)) "re-solve served from cache" (Some true)
            (Json.get_bool (get_field "cached" json)))
        [ 4.0; 11.0 ];

      (* /metrics reports the cache hits *)
      let status, body = request ~port:d.port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "metrics status" 200 status;
      let hits =
        match metric_value body {|bccd_cache_hits_total{cache="solution"}|} with
        | Some x -> x
        | None -> Alcotest.fail "bccd_cache_hits_total{cache=\"solution\"} missing"
      in
      Alcotest.(check bool) "solution cache hit recorded" true (hits >= 2.0);
      (match metric_value body "bccd_requests_total{endpoint=\"/solve\",status=\"200\"}" with
      | Some n -> Alcotest.(check bool) "request counter >= 10" true (n >= 10.0)
      | None -> Alcotest.fail "bccd_requests_total missing");

      (* Execution-engine counters: every connection is a domain-pool job
         and every solve runs portfolio tasks on the same pool, so the
         domains/ok counter must be well past the request count. *)
      (match metric_value body {|bcc_engine_tasks_total{backend="domains",outcome="ok"}|} with
      | Some n -> Alcotest.(check bool) "engine task counter populated" true (n >= 10.0)
      | None ->
          Alcotest.fail {|bcc_engine_tasks_total{backend="domains",outcome="ok"} missing|});
      (match metric_value body "bcc_engine_queue_depth" with
      | Some n -> Alcotest.(check bool) "engine queue gauge non-negative" true (n >= 0.0)
      | None -> Alcotest.fail "bcc_engine_queue_depth missing");

      (* per-stage latency histograms, fed by the span profiler *)
      (match metric_value body {|bcc_stage_duration_seconds_count{stage="solve"}|} with
      | Some n ->
          (* cache hits bypass the solver, so only the two distinct
             (instance, budget) pairs are guaranteed to have run it *)
          Alcotest.(check bool) "solve stage histogram populated" true (n >= 2.0)
      | None -> Alcotest.fail {|bcc_stage_duration_seconds_count{stage="solve"} missing|});
      (match metric_value body {|bcc_stage_duration_seconds_count{stage="prune"}|} with
      | Some n -> Alcotest.(check bool) "prune stage observed" true (n >= 1.0)
      | None -> Alcotest.fail {|bcc_stage_duration_seconds_count{stage="prune"} missing|});

      (* /debug/trace returns the recorded span forest *)
      (* engine portfolios add a few hundred [engine.task] spans per
         solve, so ask for a window big enough to hold a whole solve's
         subtree. *)
      let status, body =
        request ~port:d.port ~meth:"GET" ~path:"/debug/trace?last=4096" ()
      in
      Alcotest.(check int) "debug/trace status" 200 status;
      let trace = Json.of_string_exn (String.trim body) in
      Alcotest.(check (option bool)) "tracing enabled" (Some true)
        (Json.get_bool (get_field "enabled" trace));
      (match Json.get_list (get_field "spans" trace) with
      | Some (_ :: _ as roots) ->
          let name_of r = Json.get_string (get_field "name" r) in
          let solve_roots = List.filter (fun r -> name_of r = Some "solve") roots in
          if solve_roots = [] then Alcotest.fail "no solve root span in /debug/trace";
          (* The ring may have evicted the oldest solve's early children,
             but at least one retained solve must link its prune child. *)
          Alcotest.(check bool) "a solve span has a prune child" true
            (List.exists
               (fun r ->
                 match Json.get_list (get_field "children" r) with
                 | Some kids -> List.exists (fun k -> name_of k = Some "prune") kids
                 | _ -> false)
               solve_roots)
      | _ -> Alcotest.fail "debug/trace returned no spans");

      (* graceful shutdown on SIGTERM: clean exit, workers drained *)
      Unix.kill d.pid Sys.sigterm;
      (match wait_exit d with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> Alcotest.failf "daemon exited with code %d" c
      | Unix.WSIGNALED s -> Alcotest.failf "daemon killed by signal %d" s
      | Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped unexpectedly");
      let tail = drain_output d in
      Alcotest.(check bool) "drained workers before exiting" true
        (let needle = "shutdown complete" in
         let n = String.length needle and m = String.length tail in
         let rec go i = i + n <= m && (String.sub tail i n = needle || go (i + 1)) in
         go 0))

let error_paths () =
  let file, _inst = fixture_file () in
  let d = start_daemon [ "--workers"; "2"; "--load"; "fig=" ^ file ] in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] d.pid) with Unix.Unix_error _ -> ());
      close_in d.out;
      Sys.remove file)
    (fun () ->
      let post path body = request ~port:d.port ~meth:"POST" ~path ~body () in
      Alcotest.(check int) "unknown instance -> 404" 404
        (fst (post "/solve" {|{"instance":"nope"}|}));
      Alcotest.(check int) "bad json -> 400" 400 (fst (post "/solve" {|{"instance|}));
      Alcotest.(check int) "empty body -> 400" 400 (fst (post "/solve" ""));
      Alcotest.(check int) "malformed instance text -> 400" 400
        (fst (post "/solve" "budget nope\n"));
      Alcotest.(check int) "gmc3 without target -> 400" 400
        (fst (post "/gmc3" {|{"instance":"fig"}|}));
      Alcotest.(check int) "GET on solve -> 405" 405
        (fst (request ~port:d.port ~meth:"GET" ~path:"/solve" ()));
      Alcotest.(check int) "unknown path -> 404" 404
        (fst (request ~port:d.port ~meth:"GET" ~path:"/nope" ()));
      (* gmc3 + ecc happy paths over the wire *)
      let status, body = post "/gmc3" {|{"instance":"fig","target":9}|} in
      Alcotest.(check int) "gmc3 status" 200 status;
      let json = Json.of_string_exn (String.trim body) in
      Alcotest.(check (option bool)) "gmc3 reached" (Some true)
        (Json.get_bool (get_field "reached" json));
      let status, body = post "/ecc" {|{"instance":"fig"}|} in
      Alcotest.(check int) "ecc status" 200 status;
      let json = Json.of_string_exn (String.trim body) in
      Alcotest.(check bool) "ecc ratio positive" true (num_field "ratio" json > 0.0);
      (* CRLF + repeated-blank instance text over HTTP parses (the Io fix) *)
      let crlf_body =
        "budget  4\r\nquery x;y;z\t8\r\nquery x;z  1\r\nquery x;y 2\r\n"
        ^ "classifier x 5\r\nclassifier y  3\r\nclassifier z 3\r\n"
        ^ "classifier x;y;z 3\r\nclassifier x;z 4\r\nclassifier y;z 0\r\n"
      in
      let status, body = post "/solve" crlf_body in
      Alcotest.(check int) "crlf instance solves" 200 status;
      let json = Json.of_string_exn (String.trim body) in
      Alcotest.(check (float 1e-6)) "crlf instance optimal" 9.0
        (num_field "utility" json);
      Unix.kill d.pid Sys.sigterm;
      match wait_exit d with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit cleanly")

(* --- fault matrix: env-armed injections against the live daemon --- *)

let with_daemon ?faults args f =
  let file, inst = fixture_file () in
  let d = start_daemon ?faults (args @ [ "--load"; "fig=" ^ file ]) in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] d.pid) with Unix.Unix_error _ -> ());
      Sys.remove file)
    (fun () ->
      f d inst;
      (* every scenario must leave a serviceable daemon behind *)
      Alcotest.(check int) "healthz after the faults" 200
        (fst (request ~port:d.port ~meth:"GET" ~path:"/healthz" ()));
      Unix.kill d.pid Sys.sigterm;
      match wait_exit d with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit cleanly after the fault run")

let solve_body = {|{"instance":"fig","budget":4}|}

let metrics d =
  let status, body = request ~port:d.port ~meth:"GET" ~path:"/metrics" () in
  Alcotest.(check int) "metrics status" 200 status;
  body

(* A worker that dies mid-task costs exactly one request; the cache
   fault is swallowed (error counter + treated as a miss). *)
let fault_worker_death_and_cache () =
  with_daemon ~faults:"engine.task:throw:1,cache.get:throw:1"
    [ "--workers"; "2" ]
    (fun d inst ->
      let status, _ =
        request ~port:d.port ~meth:"POST" ~path:"/solve" ~body:solve_body ()
      in
      Alcotest.(check int) "injected worker fault surfaces as 500" 500 status;
      let status, body =
        request ~port:d.port ~meth:"POST" ~path:"/solve" ~body:solve_body ()
      in
      Alcotest.(check int) "next request recovers" 200 status;
      let json = Json.of_string_exn (String.trim body) in
      verify_response inst ~budget:4.0 json;
      let m = metrics d in
      (match metric_value m "bccd_cache_errors_total" with
      | Some n ->
          Alcotest.(check bool) "cache fault counted, not fatal" true (n >= 1.0)
      | None -> Alcotest.fail "bccd_cache_errors_total missing");
      match
        metric_value m {|bcc_engine_tasks_total{backend="domains",outcome="error"}|}
      with
      | Some n -> Alcotest.(check bool) "task failure counted" true (n >= 1.0)
      | None -> Alcotest.fail "engine error counter missing")

(* A deadline hit mid-solve degrades: HTTP 200, [degraded: true], a
   feasible solution, and the two robustness counters move — and the
   degraded answer is never memoized. *)
let fault_deadline_degrades () =
  with_daemon ~faults:"engine.task:delay:0.3" [ "--workers"; "2" ]
    (fun d inst ->
      let body = {|{"instance":"fig","budget":4,"timeout_ms":100}|} in
      let shoot label =
        let status, resp =
          request ~port:d.port ~meth:"POST" ~path:"/solve" ~body ()
        in
        Alcotest.(check int) (label ^ ": still 200") 200 status;
        let json = Json.of_string_exn (String.trim resp) in
        Alcotest.(check (option bool)) (label ^ ": flagged degraded") (Some true)
          (Json.get_bool (get_field "degraded" json));
        Alcotest.(check (option bool))
          (label ^ ": degraded result not served from cache") (Some false)
          (Json.get_bool (get_field "cached" json));
        (* feasibility of the incumbent, verified client-side *)
        verify_response inst ~budget:4.0 json
      in
      shoot "first timed-out solve";
      shoot "second timed-out solve";
      let m = metrics d in
      let exactly name expected =
        match metric_value m name with
        | Some n -> Alcotest.(check (float 1e-9)) name expected n
        | None -> Alcotest.failf "%s missing" name
      in
      exactly {|bcc_requests_degraded_total{endpoint="solve"}|} 2.0;
      exactly {|bcc_deadline_exceeded_total{endpoint="solve"}|} 2.0)

(* Backpressure: with one worker wedged (delay fault) and a queue depth
   of one, the third concurrent request bounces with 429 + retry-after,
   and the rejection counter moves. *)
let fault_backpressure_429 () =
  with_daemon ~faults:"engine.task:delay:2:1"
    [ "--workers"; "1"; "--queue-depth"; "1" ]
    (fun d _inst ->
      let slot () = ref (-1, "") in
      let r1 = slot () and r2 = slot () and r3 = slot () in
      let fire r =
        Thread.create
          (fun () ->
            r := request_raw ~port:d.port ~meth:"POST" ~path:"/solve" ~body:solve_body ())
          ()
      in
      let t1 = fire r1 in
      Thread.delay 0.5;
      (* worker now wedged in the delayed task *)
      let t2 = fire r2 in
      Thread.delay 0.3;
      let t3 = fire r3 in
      List.iter Thread.join [ t1; t2; t3 ];
      Alcotest.(check int) "wedged request still completes" 200 (fst !r1);
      let late = [ !r2; !r3 ] in
      let rejected = List.filter (fun (s, _) -> s = 429) late in
      Alcotest.(check bool) "a concurrent request bounced with 429" true
        (rejected <> []);
      List.iter
        (fun (_, raw) ->
          Alcotest.(check bool) "429 carries retry-after" true
            (contains (String.lowercase_ascii raw) "retry-after: 1"))
        rejected;
      let m = metrics d in
      match metric_value m {|bcc_requests_rejected_total{reason="queue_full"}|} with
      | Some n -> Alcotest.(check bool) "rejection counted" true (n >= 1.0)
      | None -> Alcotest.fail "bcc_requests_rejected_total missing")

(* --- workload store over HTTP --- *)

let fig_text =
  "budget 4\n\
   query x;y;z 8\n\
   query x;z 1\n\
   query x;y 2\n\
   classifier x 5\n\
   classifier y 3\n\
   classifier z 3\n\
   classifier x;y;z 3\n\
   classifier x;z 4\n\
   classifier y;z 0\n"

let temp_state_dir () =
  let base = Filename.temp_file "bccd_state" "" in
  Sys.remove base;
  Unix.mkdir base 0o755;
  base

let rm_state_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let kill_hard d =
  (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] d.pid) with Unix.Unix_error _ -> ());
  try close_in d.out with Sys_error _ -> ()

(* --- telemetry: correlation header -> flight recorder -> metrics --- *)

let header_value raw name =
  let lname = String.lowercase_ascii name in
  String.split_on_char '\n' raw
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | Some i when String.lowercase_ascii (String.trim (String.sub line 0 i)) = lname
           ->
             Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> None)

let telemetry_correlation () =
  let file, _inst = fixture_file () in
  let event_log = Filename.temp_file "bccd_events" ".jsonl" in
  let d =
    start_daemon
      [ "--workers"; "2"; "--load"; "fig=" ^ file; "--event-log"; event_log ]
  in
  Fun.protect
    ~finally:(fun () ->
      kill_hard d;
      Sys.remove file;
      if Sys.file_exists event_log then Sys.remove event_log)
    (fun () ->
      (* one cold solve; keep the full response for header inspection *)
      let status, raw =
        request_raw ~port:d.port ~meth:"POST" ~path:"/solve" ~body:solve_body ()
      in
      Alcotest.(check int) "solve status" 200 status;
      let corr =
        match header_value raw "X-Bcc-Trace-Id" with
        | Some c -> c
        | None -> Alcotest.fail "X-Bcc-Trace-Id header missing from /solve response"
      in
      Alcotest.(check int) "trace id is 12 hex chars" 12 (String.length corr);
      String.iter
        (fun c ->
          if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
            Alcotest.failf "non-hex char %C in trace id %s" c corr)
        corr;
      let body =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        let start = find 0 in
        String.sub raw start (String.length raw - start)
      in
      let solve_resp = Json.of_string_exn (String.trim body) in
      let solve_utility = num_field "utility" solve_resp in

      (* the header keys the flight-recorder record *)
      let status, body =
        request ~port:d.port ~meth:"GET" ~path:("/debug/solves?id=" ^ corr) ()
      in
      Alcotest.(check int) "debug/solves?id status" 200 status;
      let detail = Json.of_string_exn (String.trim body) in
      Alcotest.(check (option string)) "record id is the header value" (Some corr)
        (Json.get_string (get_field "id" detail));
      Alcotest.(check (option bool)) "record complete" (Some true)
        (Json.get_bool (get_field "complete" detail));
      Alcotest.(check (float 1e-6)) "recorded final utility = returned utility"
        solve_utility (num_field "final_utility" detail);
      (match Json.get_list (get_field "curve" detail) with
      | Some (_ :: _ as pts) ->
          (* the curve's last point is the returned solution *)
          let last = List.nth pts (List.length pts - 1) in
          Alcotest.(check (float 1e-6)) "curve ends at the returned utility"
            solve_utility (num_field "u" last);
          (* monotone non-decreasing utility, non-negative times *)
          ignore
            (List.fold_left
               (fun prev p ->
                 Alcotest.(check bool) "curve times non-negative" true
                   (num_field "t" p >= -1e-9);
                 let u = num_field "u" p in
                 Alcotest.(check bool) "anytime curve is monotone" true
                   (u >= prev -. 1e-9);
                 u)
               neg_infinity pts)
      | _ -> Alcotest.fail "anytime curve empty in /debug/solves?id");
      (match Json.get_list (get_field "event_log" detail) with
      | Some (_ :: _ as evs) ->
          let names =
            List.filter_map (fun e -> Json.get_string (get_field "name" e)) evs
          in
          List.iter
            (fun needed ->
              if not (List.mem needed names) then
                Alcotest.failf "event %S missing from the recorded solve" needed)
            [ "solve_start"; "incumbent_update"; "solve_report" ]
      | _ -> Alcotest.fail "no events in /debug/solves?id");

      (* the listing shows the record too *)
      let status, body = request ~port:d.port ~meth:"GET" ~path:"/debug/solves" () in
      Alcotest.(check int) "debug/solves status" 200 status;
      let listing = Json.of_string_exn (String.trim body) in
      Alcotest.(check (option bool)) "telemetry enabled" (Some true)
        (Json.get_bool (get_field "enabled" listing));
      (match Json.get_list (get_field "solves" listing) with
      | Some solves ->
          Alcotest.(check bool) "listing contains the solve" true
            (List.exists
               (fun s -> Json.get_string (get_field "id" s) = Some corr)
               solves)
      | None -> Alcotest.fail "solves is not a list");
      Alcotest.(check int) "unknown id -> 404" 404
        (fst (request ~port:d.port ~meth:"GET" ~path:"/debug/solves?id=ffffffffffff" ()));

      (* progress stream feeds the metrics registry *)
      let status, m = request ~port:d.port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "metrics status" 200 status;
      (match metric_value m "bcc_solve_rounds_total" with
      | Some n -> Alcotest.(check bool) "rounds counter positive" true (n >= 1.0)
      | None -> Alcotest.fail "bcc_solve_rounds_total missing");
      (match metric_value m "bcc_incumbent_improvements_total" with
      | Some n -> Alcotest.(check bool) "improvements counter positive" true (n >= 1.0)
      | None -> Alcotest.fail "bcc_incumbent_improvements_total missing");
      (match metric_value m "bcc_solve_utility_ratio" with
      | Some r ->
          Alcotest.(check bool) "utility ratio in (0,1]" true
            (r > 0.0 && r <= 1.0 +. 1e-9)
      | None -> Alcotest.fail "bcc_solve_utility_ratio missing");

      (* clean shutdown flushes the JSONL event log *)
      Unix.kill d.pid Sys.sigterm;
      (match wait_exit d with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit cleanly");
      let lines =
        In_channel.with_open_bin event_log In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check bool) "event log non-empty" true (lines <> []);
      let decoded =
        List.map
          (fun l ->
            match Bcc_obs.Event.of_json_line l with
            | Some e -> e
            | None -> Alcotest.failf "undecodable event-log line: %s" l)
          lines
      in
      Alcotest.(check bool) "event log carries the solve's correlation id" true
        (List.exists
           (fun e ->
             e.Bcc_obs.Event.corr = corr
             && e.Bcc_obs.Event.name = "solve_report")
           decoded))

let store_lifecycle () =
  let dir = temp_state_dir () in
  let d = start_daemon [ "--workers"; "2"; "--state-dir"; dir ] in
  Fun.protect
    ~finally:(fun () ->
      kill_hard d;
      rm_state_dir dir)
    (fun () ->
      let put path body = request ~port:d.port ~meth:"PUT" ~path ~body () in
      let post path body = request ~port:d.port ~meth:"POST" ~path ~body () in
      let get path = request ~port:d.port ~meth:"GET" ~path () in
      (* create *)
      let status, body = put "/workloads/fig" fig_text in
      Alcotest.(check int) "PUT status" 200 status;
      let json = Json.of_string_exn (String.trim body) in
      Alcotest.(check (float 1e-9)) "epoch 0 after PUT" 0.0 (num_field "epoch" json);
      Alcotest.(check (float 1e-9)) "three queries" 3.0 (num_field "queries" json);
      (* bad inputs come back typed *)
      Alcotest.(check int) "unsafe name -> 400" 400 (fst (put "/workloads/.dot" fig_text));
      Alcotest.(check int) "bad instance text -> 400" 400
        (fst (put "/workloads/junk" "budget nope\n"));
      Alcotest.(check int) "bad delta -> 400" 400
        (fst (post "/workloads/fig/delta" "wibble x 1\n"));
      Alcotest.(check int) "delta on unknown workload -> 404" 404
        (fst (post "/workloads/ghost/delta" "budget 9\n"));
      Alcotest.(check int) "solution before any solve -> 404" 404
        (fst (get "/workloads/fig/solution"));
      Alcotest.(check int) "DELETE -> 405" 405
        (fst (request ~port:d.port ~meth:"DELETE" ~path:"/workloads/fig" ()));
      (* listing *)
      let status, body = get "/workloads" in
      Alcotest.(check int) "list status" 200 status;
      (match
         Json.get_list (get_field "workloads" (Json.of_string_exn (String.trim body)))
       with
      | Some [ entry ] ->
          Alcotest.(check (option string)) "listed name" (Some "fig")
            (Json.get_string (get_field "name" entry))
      | _ -> Alcotest.fail "expected exactly one workload");
      (* first solve is cold and optimal (figure1 @ 4 -> 9) *)
      let status, body = post "/workloads/fig/solve" "" in
      Alcotest.(check int) "solve status" 200 status;
      let json = Json.of_string_exn (String.trim body) in
      Alcotest.(check (float 1e-6)) "figure1 optimum over the store" 9.0
        (num_field "utility" json);
      Alcotest.(check (option bool)) "first solve cold" (Some false)
        (Json.get_bool (get_field "warm" json));
      let base_utility = num_field "utility" json in
      (* drift: budget up, one query's utility up -> warm re-solve *)
      let status, body = post "/workloads/fig/delta" "budget 11\nadd x;y 1\n" in
      Alcotest.(check int) "delta status" 200 status;
      Alcotest.(check (float 1e-9)) "epoch 1 after delta" 1.0
        (num_field "epoch" (Json.of_string_exn (String.trim body)));
      let status, body = post "/workloads/fig/solve" "" in
      Alcotest.(check int) "re-solve status" 200 status;
      let json = Json.of_string_exn (String.trim body) in
      Alcotest.(check (option bool)) "re-solve warm-seeded" (Some true)
        (Json.get_bool (get_field "warm" json));
      Alcotest.(check bool) "monotone drift -> utility does not drop" true
        (num_field "utility" json >= base_utility -. 1e-9);
      Alcotest.(check bool) "re-validated seed banked" true
        (num_field "seed_utility" json > 0.0);
      (* a raw log tail is the other delta arrival path *)
      Alcotest.(check int) "log-format delta accepted" 200
        (fst (post "/workloads/fig/delta?format=log" "x y\t3\n"));
      (* store metrics exported *)
      let status, m = get "/metrics" in
      Alcotest.(check int) "metrics status" 200 status;
      (match metric_value m "bcc_store_epochs_total" with
      | Some n -> Alcotest.(check bool) "epochs counter >= 3" true (n >= 3.0)
      | None -> Alcotest.fail "bcc_store_epochs_total missing");
      (match metric_value m {|bcc_store_journal_bytes{workload="fig"}|} with
      | Some n -> Alcotest.(check bool) "journal bytes gauge positive" true (n > 0.0)
      | None -> Alcotest.fail "bcc_store_journal_bytes missing");
      (match metric_value m {|bcc_warm_start_utility_ratio{workload="fig"}|} with
      | Some r -> Alcotest.(check bool) "warm ratio gauge in (0,1]" true (r > 0.0 && r <= 1.0 +. 1e-9)
      | None -> Alcotest.fail "bcc_warm_start_utility_ratio missing");
      Alcotest.(check bool) "replay gauge present" true
        (metric_value m "bcc_store_replay_seconds" <> None);
      Unix.kill d.pid Sys.sigterm;
      match wait_exit d with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit cleanly")

(* SIGKILL the daemon after committed epochs + a committed solution,
   append a torn record to the journal (the crash-mid-append tail),
   restart on the same state dir, and require the exact committed
   state back. *)
let store_crash_recovery () =
  let dir = temp_state_dir () in
  Fun.protect
    ~finally:(fun () -> rm_state_dir dir)
    (fun () ->
      let d = start_daemon [ "--workers"; "2"; "--state-dir"; dir ] in
      let committed_utility, committed_cost =
        Fun.protect
          ~finally:(fun () -> kill_hard d)
          (fun () ->
            let status, _ =
              request ~port:d.port ~meth:"PUT" ~path:"/workloads/fig?budget=11"
                ~body:fig_text ()
            in
            Alcotest.(check int) "PUT status" 200 status;
            Alcotest.(check int) "delta status" 200
              (fst
                 (request ~port:d.port ~meth:"POST" ~path:"/workloads/fig/delta"
                    ~body:"add x;y 1\n" ()));
            let status, body =
              request ~port:d.port ~meth:"POST" ~path:"/workloads/fig/solve" ~body:"" ()
            in
            Alcotest.(check int) "solve status" 200 status;
            let json = Json.of_string_exn (String.trim body) in
            Alcotest.(check (float 1e-9)) "solved at epoch 1" 1.0 (num_field "epoch" json);
            (num_field "utility" json, num_field "cost" json))
        (* kill_hard ran: SIGKILL, no drain, no fsync beyond the commits *)
      in
      (* the crash left half an append behind *)
      let journal = Filename.concat dir "fig.journal" in
      Alcotest.(check bool) "journal exists on disk" true (Sys.file_exists journal);
      Out_channel.with_open_gen [ Open_append; Open_binary ] 0o644 journal (fun oc ->
          Out_channel.output_string oc
            "@rec delta gXXX 2 300 0123456789abcdef0123456789abcdef\ntorn");
      let torn_len = (Unix.stat journal).Unix.st_size in
      (* restart on the same state dir *)
      let d = start_daemon [ "--workers"; "2"; "--state-dir"; dir ] in
      Fun.protect
        ~finally:(fun () -> kill_hard d)
        (fun () ->
          let status, body =
            request ~port:d.port ~meth:"GET" ~path:"/workloads/fig" ()
          in
          Alcotest.(check int) "workload recovered" 200 status;
          let json = Json.of_string_exn (String.trim body) in
          Alcotest.(check (float 1e-9)) "epoch recovered" 1.0 (num_field "epoch" json);
          Alcotest.(check (float 1e-9)) "solved epoch recovered" 1.0
            (num_field "solved_epoch" json);
          let status, body =
            request ~port:d.port ~meth:"GET" ~path:"/workloads/fig/solution" ()
          in
          Alcotest.(check int) "solution recovered" 200 status;
          let json = Json.of_string_exn (String.trim body) in
          Alcotest.(check (float 1e-9)) "same committed utility" committed_utility
            (num_field "utility" json);
          Alcotest.(check (float 1e-9)) "same committed cost" committed_cost
            (num_field "cost" json);
          Alcotest.(check (float 1e-9)) "solution is the epoch-1 one" 1.0
            (num_field "epoch" json);
          (* the torn tail was truncated off the file *)
          Alcotest.(check bool) "torn tail truncated" true
            ((Unix.stat journal).Unix.st_size < torn_len);
          (* and the journal keeps accepting commits *)
          let status, body =
            request ~port:d.port ~meth:"POST" ~path:"/workloads/fig/delta"
              ~body:"add x;z 2\n" ()
          in
          Alcotest.(check int) "post-recovery delta" 200 status;
          Alcotest.(check (float 1e-9)) "epoch advances past recovery" 2.0
            (num_field "epoch" (Json.of_string_exn (String.trim body)));
          let status, body =
            request ~port:d.port ~meth:"POST" ~path:"/workloads/fig/solve" ~body:"" ()
          in
          Alcotest.(check int) "post-recovery solve" 200 status;
          Alcotest.(check (option bool)) "post-recovery solve warm-seeded from the recovered solution"
            (Some true)
            (Json.get_bool
               (get_field "warm" (Json.of_string_exn (String.trim body))));
          Unix.kill d.pid Sys.sigterm;
          match wait_exit d with
          | Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "daemon did not exit cleanly after recovery"))

(* With every artifact lookup throwing, an incremental workload solve
   still answers 200 with the answer a cold pipeline solve produces —
   the fault only costs reuse (components_reused stays 0 where the
   second solve would otherwise reuse everything), never correctness. *)
let fault_pipeline_artifact () =
  let dir = temp_state_dir () in
  let d =
    start_daemon ~faults:"pipeline.artifact:throw"
      [ "--workers"; "2"; "--state-dir"; dir ]
  in
  Fun.protect
    ~finally:(fun () ->
      kill_hard d;
      rm_state_dir dir)
    (fun () ->
      let status, _ =
        request ~port:d.port ~meth:"PUT" ~path:"/workloads/fig" ~body:fig_text ()
      in
      Alcotest.(check int) "PUT status" 200 status;
      let solve label =
        let status, body =
          request ~port:d.port ~meth:"POST"
            ~path:"/workloads/fig/solve?incremental=true" ~body:"" ()
        in
        Alcotest.(check int) (label ^ ": still 200 under the fault") 200 status;
        Json.of_string_exn (String.trim body)
      in
      let first = solve "first incremental solve" in
      Alcotest.(check bool) "pipeline ran (components reported)" true
        (num_field "components_total" first >= 1.0);
      let second = solve "second incremental solve" in
      Alcotest.(check (float 1e-9)) "fault blocks every reuse" 0.0
        (num_field "components_reused" second);
      Alcotest.(check (float 1e-9)) "recompute answers exactly the cold answer"
        (num_field "utility" first) (num_field "utility" second);
      let status, m = request ~port:d.port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "metrics status" 200 status;
      (match metric_value m "bcc_resolve_components_total" with
      | Some n ->
          Alcotest.(check bool) "resolve components counter moved" true (n >= 2.0)
      | None -> Alcotest.fail "bcc_resolve_components_total missing");
      (match metric_value m "bcc_resolve_components_reused_total" with
      | Some n -> Alcotest.(check (float 1e-9)) "no reuse counted" 0.0 n
      | None -> Alcotest.fail "bcc_resolve_components_reused_total missing");
      Unix.kill d.pid Sys.sigterm;
      match wait_exit d with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit cleanly after the fault run")

(* --- batch scheduler: coalescing, tenants, curve cache over HTTP --- *)

let sched_debug d =
  let status, body = request ~port:d.port ~meth:"GET" ~path:"/debug/sched" () in
  Alcotest.(check int) "debug/sched status" 200 status;
  Json.of_string_exn (String.trim body)

(* Wedge the single scheduler slot with a one-shot delayed cache lookup:
   the first /solve dispatches immediately and stalls inside its batch,
   so everything arriving meanwhile provably joins one pending batch
   that runs exactly once when the slot frees up. *)
let sched_coalescing_e2e () =
  with_daemon ~faults:"cache.get:delay:1.5:1"
    [ "--workers"; "8"; "--sched-concurrency"; "1" ]
    (fun d inst ->
      let results = Array.make 7 (-1, "") in
      let fire i body =
        Thread.create
          (fun () ->
            results.(i) <- request ~port:d.port ~meth:"POST" ~path:"/solve" ~body ())
          ()
      in
      let t0 = fire 0 solve_body in
      Thread.delay 0.4;
      (* slot is wedged: these six share one pending batch across tenants *)
      let followers =
        List.mapi
          (fun j tenant ->
            fire (j + 1)
              (Printf.sprintf {|{"instance":"fig","budget":4,"tenant":%S}|} tenant))
          [ "alpha"; "alpha"; "beta"; "beta"; "default"; "default" ]
      in
      List.iter Thread.join (t0 :: followers);
      Array.iteri
        (fun i (status, body) ->
          Alcotest.(check int) (Printf.sprintf "solve[%d] status" i) 200 status;
          let json = Json.of_string_exn (String.trim body) in
          verify_response inst ~budget:4.0 json;
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "solve[%d] optimal utility" i)
            9.0 (num_field "utility" json))
        results;
      let at_least m name lo =
        match metric_value m name with
        | Some n -> Alcotest.(check bool) (name ^ " populated") true (n >= lo)
        | None -> Alcotest.failf "%s missing" name
      in
      let m = metrics d in
      (* the wedged request is its own batch; the followers coalesced *)
      at_least m "bcc_sched_batches_total" 2.0;
      at_least m "bcc_sched_coalesced_total" 1.0;
      at_least m {|bcc_sched_dispatched_total{tenant="default"}|} 1.0;
      Alcotest.(check bool) "curve cache gauges exported" true
        (metric_value m "bcc_curve_cache_entries" <> None
        && metric_value m "bcc_curve_cache_bytes" <> None);
      let js = sched_debug d in
      Alcotest.(check bool) "debug batches >= 2" true
        (num_field "batches_total" js >= 2.0);
      Alcotest.(check bool) "debug coalesced >= 1" true
        (num_field "coalesced_total" js >= 1.0);
      Alcotest.(check (float 1e-9)) "queue drained" 0.0 (num_field "queued_waiters" js);
      Alcotest.(check (float 1e-9)) "nothing running" 0.0 (num_field "running" js);
      (match Json.get_list (get_field "tenants" js) with
      | Some tl ->
          let names =
            List.filter_map (fun e -> Json.get_string (get_field "tenant" e)) tl
          in
          List.iter
            (fun n ->
              if not (List.mem n names) then
                Alcotest.failf "tenant %S missing from /debug/sched" n)
            [ "alpha"; "beta"; "default" ]
      | None -> Alcotest.fail "tenants is not a list");
      Alcotest.(check bool) "curve cache byte bound positive" true
        (num_field "max_bytes" (get_field "curve_cache" js) > 0.0);
      (* a workload pipeline solve populates the shared curve cache *)
      Alcotest.(check int) "PUT workload" 200
        (fst (request ~port:d.port ~meth:"PUT" ~path:"/workloads/wfig" ~body:fig_text ()));
      Alcotest.(check int) "workload solve via the scheduler" 200
        (fst
           (request ~port:d.port ~meth:"POST"
              ~path:"/workloads/wfig/solve?incremental=true" ~body:"" ()));
      let m = metrics d in
      at_least m "bcc_curve_cache_insertions_total" 1.0;
      Alcotest.(check bool) "curve cache holds entries" true
        (num_field "entries" (get_field "curve_cache" (sched_debug d)) >= 1.0))

(* An armed sched.enqueue fault costs exactly the armed number of
   requests — one 500 each — and never wedges the queue. *)
let fault_sched_enqueue () =
  with_daemon ~faults:"sched.enqueue:throw:2" [ "--workers"; "2" ]
    (fun d inst ->
      let shoot () =
        request ~port:d.port ~meth:"POST" ~path:"/solve" ~body:solve_body ()
      in
      let s1, b1 = shoot () in
      Alcotest.(check int) "first enqueue faults with 500" 500 s1;
      Alcotest.(check bool) "fault surfaced, not masked" true
        (contains b1 "injected fault");
      Alcotest.(check int) "second armed fault also 500" 500 (fst (shoot ()));
      let s3, b3 = shoot () in
      Alcotest.(check int) "third request recovers" 200 s3;
      verify_response inst ~budget:4.0 (Json.of_string_exn (String.trim b3));
      (* the faulted submissions left nothing behind *)
      let js = sched_debug d in
      Alcotest.(check (float 1e-9)) "no waiters left" 0.0
        (num_field "queued_waiters" js);
      Alcotest.(check (float 1e-9)) "nothing running" 0.0 (num_field "running" js))

(* Per-tenant admission: with the slot wedged and --tenant-depth 1, a
   tenant's second queued waiter bounces with 429 + retry-after while
   another tenant is still admitted into the same pending batch. *)
let fault_tenant_depth_429 () =
  with_daemon ~faults:"cache.get:delay:1.5:1"
    [ "--workers"; "8"; "--sched-concurrency"; "1"; "--tenant-depth"; "1" ]
    (fun d _inst ->
      let body_of tenant budget =
        Printf.sprintf {|{"instance":"fig","budget":%g,"tenant":%S}|} budget tenant
      in
      let r1 = ref (-1, "") and r2 = ref (-1, "") and r4 = ref (-1, "") in
      let fire r body =
        Thread.create
          (fun () -> r := request ~port:d.port ~meth:"POST" ~path:"/solve" ~body ())
          ()
      in
      let t1 = fire r1 (body_of "cap" 4.0) in
      Thread.delay 0.4;
      (* slot wedged by r1's batch; this queues cap's one allowed waiter *)
      let t2 = fire r2 (body_of "cap" 11.0) in
      Thread.delay 0.3;
      (* cap's second queued waiter: bounced at admission *)
      let status, raw =
        request_raw ~port:d.port ~meth:"POST" ~path:"/solve"
          ~body:(body_of "cap" 4.0) ()
      in
      Alcotest.(check int) "tenant over depth -> 429" 429 status;
      (match header_value raw "retry-after" with
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some s -> Alcotest.(check bool) "retry-after >= 1" true (s >= 1)
          | None -> Alcotest.failf "retry-after %S is not an integer" v)
      | None -> Alcotest.fail "429 carries no retry-after");
      Alcotest.(check bool) "429 body names the tenant queue" true
        (contains raw "queue full");
      (* an unrelated tenant is admitted despite cap's rejection *)
      let t4 = fire r4 (body_of "other" 11.0) in
      List.iter Thread.join [ t1; t2; t4 ];
      Alcotest.(check int) "wedged solve completes" 200 (fst !r1);
      Alcotest.(check int) "queued solve completes" 200 (fst !r2);
      Alcotest.(check int) "other tenant admitted" 200 (fst !r4);
      let m = metrics d in
      (match
         metric_value m {|bcc_requests_rejected_total{reason="tenant_queue_full"}|}
       with
      | Some n -> Alcotest.(check bool) "tenant rejection counted" true (n >= 1.0)
      | None -> Alcotest.fail "tenant_queue_full rejection counter missing");
      match metric_value m "bcc_sched_rejected_total" with
      | Some n -> Alcotest.(check bool) "sched rejection exported" true (n >= 1.0)
      | None -> Alcotest.fail "bcc_sched_rejected_total missing")

(* --- cluster: sharded routing, SIGKILL failover, recovery --- *)

(* The per-shard solution cache legitimately differs between a first
   and a repeated solve of the same instance; everything else in the
   response must be byte-identical across shards. *)
let strip_cached body =
  let remove_all sub acc =
    let b = Buffer.create (String.length acc) in
    let n = String.length sub in
    let i = ref 0 in
    while !i <= String.length acc - n do
      if String.sub acc !i n = sub then i := !i + n
      else begin
        Buffer.add_char b acc.[!i];
        incr i
      end
    done;
    Buffer.add_string b (String.sub acc !i (String.length acc - !i));
    Buffer.contents b
  in
  remove_all {|"cached":true|} (remove_all {|"cached":false|} body)

(* Three real shards plus a router daemon whose very first forward is
   fault-injected (cluster.forward:throw:1): the routed solve must
   still answer from the next ring node.  Then the owning shard is
   SIGKILLed mid-run: every stateless solve keeps answering
   byte-identically (zero failed idempotent reads, during the
   detection window and after), the dead owner's store traffic gets
   503 + retry-after, and a restart on the same port and state dir
   brings the shard back up with its journal intact. *)
let cluster_sigkill_failover () =
  let dirs = List.init 3 (fun _ -> temp_state_dir ()) in
  Fun.protect ~finally:(fun () -> List.iter rm_state_dir dirs) @@ fun () ->
  let shards =
    List.map (fun dir -> start_daemon [ "--workers"; "2"; "--state-dir"; dir ]) dirs
  in
  let shard_id (d : daemon) = Printf.sprintf "127.0.0.1:%d" d.port in
  let router =
    start_daemon ~faults:"cluster.forward:throw:1"
      [
        "--workers"; "2"; "--route-to";
        String.concat "," (List.map shard_id shards);
      ]
  in
  let live = ref (router :: shards) in
  Fun.protect ~finally:(fun () -> List.iter kill_hard !live) @@ fun () ->
  let rp = router.port in
  let solve_body = {|{"text": "|} ^ String.concat {|\n|} (String.split_on_char '\n' (String.trim fig_text)) ^ {|"}|} in
  let routed_solve () =
    request ~port:rp ~meth:"POST" ~path:"/solve" ~body:solve_body ()
  in
  (* First forward eats the injected throw and fails over. *)
  let status, baseline = routed_solve () in
  Alcotest.(check int) "solve through armed fault -> failover 200" 200 status;
  let baseline = strip_cached baseline in
  (* Workload pinned to its owner. *)
  let status, raw =
    request_raw ~port:rp ~meth:"PUT" ~path:"/workloads/fig" ~body:fig_text ()
  in
  Alcotest.(check int) "PUT via router" 200 status;
  let owner =
    match header_value raw "x-bcc-shard" with
    | Some id -> id
    | None -> Alcotest.fail "routed PUT carries no x-bcc-shard header"
  in
  let status, raw = request_raw ~port:rp ~meth:"GET" ~path:"/workloads/fig" () in
  Alcotest.(check int) "GET via router" 200 status;
  Alcotest.(check (option string)) "read served by the owner" (Some owner)
    (header_value raw "x-bcc-shard");
  (* SIGKILL the owner mid-run. *)
  let owner_daemon = List.find (fun d -> shard_id d = owner) shards in
  let owner_dir =
    List.nth dirs
      (Option.get
         (List.find_index (fun d -> shard_id d = owner) shards))
  in
  kill_hard owner_daemon;
  live := List.filter (fun d -> d != owner_daemon) !live;
  (* Idempotent reads must not fail even inside the detection window. *)
  for i = 1 to 5 do
    let status, body = routed_solve () in
    Alcotest.(check int) (Printf.sprintf "solve %d after SIGKILL" i) 200 status;
    Alcotest.(check string)
      (Printf.sprintf "solve %d byte-identical after SIGKILL" i)
      baseline (strip_cached body)
  done;
  let up_gauge = Printf.sprintf "bcc_cluster_shard_up{shard=\"%s\"}" owner in
  let poll_gauge want msg =
    let deadline = Bcc_util.Timer.now_s () +. 15.0 in
    let rec go () =
      let _, m = request ~port:rp ~meth:"GET" ~path:"/metrics" () in
      match metric_value m up_gauge with
      | Some v when v = want -> ()
      | _ ->
          if Bcc_util.Timer.now_s () > deadline then Alcotest.fail msg
          else (Thread.delay 0.1; go ())
    in
    go ()
  in
  poll_gauge 0.0 "router never marked the killed shard down";
  (* Store traffic for the dead owner: refused with retry-after, not
     silently failed over. *)
  let status, raw = request_raw ~port:rp ~meth:"GET" ~path:"/workloads/fig" () in
  Alcotest.(check int) "sticky read while owner down" 503 status;
  Alcotest.(check bool) "503 carries retry-after" true
    (header_value raw "retry-after" <> None);
  let status, raw =
    request_raw ~port:rp ~meth:"POST" ~path:"/workloads/fig/delta"
      ~body:"add x;y 1\n" ()
  in
  Alcotest.(check int) "mutation while owner down" 503 status;
  Alcotest.(check bool) "mutation 503 carries retry-after" true
    (header_value raw "retry-after" <> None);
  (* Stateless solves still identical with the shard gone. *)
  let status, body = routed_solve () in
  Alcotest.(check int) "solve while shard down" 200 status;
  Alcotest.(check string) "solve byte-identical while shard down" baseline
    (strip_cached body);
  (* Restart on the same port and state dir: the ring owner recovers
     with its journal. *)
  let revived =
    start_daemon ~port:owner_daemon.port
      [ "--workers"; "2"; "--state-dir"; owner_dir ]
  in
  live := revived :: !live;
  poll_gauge 1.0 "router never marked the restarted shard up";
  let status, raw = request_raw ~port:rp ~meth:"GET" ~path:"/workloads/fig" () in
  Alcotest.(check int) "sticky read after recovery" 200 status;
  Alcotest.(check (option string)) "served again by the owner" (Some owner)
    (header_value raw "x-bcc-shard")

let suite =
  [
    ("e2e: concurrent solves, cache, metrics, SIGTERM", `Quick, e2e_concurrent_solves_and_shutdown);
    ("e2e: error paths, gmc3/ecc, CRLF bodies", `Quick, error_paths);
    ("fault matrix: worker death + cache fault", `Quick, fault_worker_death_and_cache);
    ("fault matrix: deadline hit degrades gracefully", `Quick, fault_deadline_degrades);
    ("fault matrix: queue overload -> 429 + retry-after", `Quick, fault_backpressure_429);
    ("fault matrix: pipeline.artifact throw -> zero reuse, same answer", `Quick,
      fault_pipeline_artifact);
    ("sched: coalescing, tenants, curve cache over HTTP", `Quick, sched_coalescing_e2e);
    ("fault matrix: sched.enqueue throw -> bounded 500s, queue intact", `Quick,
      fault_sched_enqueue);
    ("fault matrix: tenant depth -> 429 + retry-after, tenant isolation", `Quick,
      fault_tenant_depth_429);
    ("telemetry: trace-id header keys the flight recorder", `Quick, telemetry_correlation);
    ("store: workload lifecycle over HTTP", `Quick, store_lifecycle);
    ("store: SIGKILL + restart serves the committed state", `Quick, store_crash_recovery);
    ("cluster: routing, SIGKILL failover, recovery", `Quick, cluster_sigkill_failover);
  ]
