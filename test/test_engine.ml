(* Tests for the execution engine: task-order results, deterministic
   ranking, bit-identical RNG streams at any job count, nesting, error
   propagation, the fire-and-forget submit path, and the process-wide
   task counters the daemon exports. *)

module Engine = Bcc_engine.Engine
module Rng = Bcc_util.Rng
module Solver = Bcc_core.Solver
module Solution = Bcc_core.Solution
module Synthetic = Bcc_data.Synthetic

let with_pool jobs f =
  let pool = Engine.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) (fun () -> f pool)

let backend_accessors () =
  with_pool 1 (fun pool ->
      Alcotest.(check bool) "jobs<=1 is Seq" true (Engine.Pool.backend pool = Engine.Seq);
      Alcotest.(check int) "seq reports one job" 1 (Engine.Pool.jobs pool);
      Alcotest.(check int) "seq queue is empty" 0 (Engine.Pool.queue_depth pool));
  with_pool 3 (fun pool ->
      Alcotest.(check bool) "jobs>1 is Domains" true
        (Engine.Pool.backend pool = Engine.Domains);
      Alcotest.(check int) "domain count" 3 (Engine.Pool.jobs pool))

let collect_preserves_order () =
  let tasks = List.init 20 (fun i -> Engine.Task.make (fun _ -> i * i)) in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "results in task order at jobs=%d" jobs)
            (List.init 20 (fun i -> i * i))
            (Engine.Portfolio.collect pool tasks)))
    [ 1; 2; 4 ]

let run_ranks_deterministically () =
  let scores = [ 1.0; 3.0; 3.0; 0.5 ] in
  let tasks =
    List.map (fun s -> Engine.Task.make ~score:(fun v -> v) (fun _ -> s)) scores
  in
  with_pool 2 (fun pool ->
      let ranked = Engine.Portfolio.run pool tasks in
      Alcotest.(check (list (pair int (float 0.0)))) "score desc, index asc on ties"
        [ (1, 3.0); (2, 3.0); (0, 1.0); (3, 0.5) ]
        (List.map (fun r -> (r.Engine.Portfolio.index, r.Engine.Portfolio.score)) ranked);
      match Engine.Portfolio.best pool tasks with
      | Some r ->
          Alcotest.(check int) "best = lowest index among top ties" 1
            r.Engine.Portfolio.index
      | None -> Alcotest.fail "best returned None");
  with_pool 1 (fun pool ->
      Alcotest.(check bool) "best of empty list is None" true
        (Engine.Portfolio.best pool ([] : int Engine.Task.t list) = None))

let rng_streams_identical_across_jobs () =
  let root = Rng.create 99 in
  let results jobs =
    with_pool jobs (fun pool ->
        Engine.Portfolio.collect pool
          (List.init 16 (fun i ->
               Engine.Task.make ~rng:(Rng.derive root i) (fun rng ->
                   Array.init 8 (fun _ -> Rng.int64 rng)))))
  in
  let base = results 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "identical draws at jobs=1 vs jobs=%d" jobs)
        true
        (results jobs = base))
    [ 2; 4 ]

let nested_portfolios () =
  with_pool 2 (fun pool ->
      (* Every outer task opens a sub-portfolio on the same pool: the
         caller-participation rule must keep this deadlock-free even with
         more batches than workers. *)
      let inner j =
        Engine.Portfolio.collect pool
          (List.init 4 (fun i -> Engine.Task.make (fun _ -> (10 * j) + i)))
      in
      let outer =
        Engine.Portfolio.collect pool
          (List.init 4 (fun j -> Engine.Task.make (fun _ -> inner j)))
      in
      Alcotest.(check (list (list int))) "nested results in order"
        (List.init 4 (fun j -> List.init 4 (fun i -> (10 * j) + i)))
        outer)

exception Boom of int

let lowest_indexed_failure_wins () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let tasks =
            List.init 8 (fun i ->
                Engine.Task.make (fun _ -> if i mod 2 = 1 then raise (Boom i) else i))
          in
          match Engine.Portfolio.collect pool tasks with
          | _ -> Alcotest.fail "expected the batch to raise"
          | exception Boom i ->
              Alcotest.(check int)
                (Printf.sprintf "lowest-indexed failure at jobs=%d" jobs)
                1 i))
    [ 1; 3 ]

let submit_and_shutdown () =
  let pool = Engine.Pool.domains ~jobs:2 in
  let hit = Atomic.make 0 in
  Alcotest.(check bool) "submit accepted" true
    (Engine.Pool.submit pool (fun () -> Atomic.incr hit));
  let rec wait n = if Atomic.get hit = 0 && n > 0 then (Unix.sleepf 0.002; wait (n - 1)) in
  wait 500;
  Alcotest.(check int) "submitted job ran" 1 (Atomic.get hit);
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool (* idempotent *);
  Alcotest.(check bool) "submit refused after shutdown" false
    (Engine.Pool.submit pool (fun () -> ()));
  (* Portfolios on a stopped pool fall back to caller-inline execution
     (bccd's graceful drain relies on this). *)
  Alcotest.(check (list int)) "collect still completes inline" [ 0; 1; 2 ]
    (Engine.Portfolio.collect pool (List.init 3 (fun i -> Engine.Task.make (fun _ -> i))))

let task_counters_advance () =
  let count backend =
    List.assoc (backend, `Ok) (Engine.task_counts ())
  in
  let before = count Engine.Domains in
  with_pool 2 (fun pool ->
      ignore
        (Engine.Portfolio.collect pool
           (List.init 5 (fun i -> Engine.Task.make (fun _ -> i)))));
  Alcotest.(check bool) "domains ok-counter advanced by the batch" true
    (count Engine.Domains - before >= 5);
  let before = count Engine.Seq in
  with_pool 1 (fun pool ->
      ignore
        (Engine.Portfolio.collect pool
           (List.init 3 (fun i -> Engine.Task.make (fun _ -> i)))));
  Alcotest.(check bool) "seq ok-counter advanced by the batch" true
    (count Engine.Seq - before >= 3)

(* The end-to-end determinism contract: a full solve — QK bipartition
   portfolios nested in solver arm races nested in the final sweep race
   — is bit-identical at any job count. *)
let solver_identical_across_jobs () =
  let params = { Synthetic.default_params with num_queries = 600 } in
  let inst = Synthetic.generate ~params ~seed:17 ~budget:400.0 () in
  let solve_at jobs =
    Engine.set_default_jobs jobs;
    Fun.protect ~finally:(fun () -> Engine.set_default_jobs 1) (fun () ->
        Solver.solve inst)
  in
  let a = solve_at 1 in
  let b = solve_at 3 in
  Alcotest.(check (float 0.0)) "utility identical" a.Solution.utility b.Solution.utility;
  Alcotest.(check (float 0.0)) "cost identical" a.Solution.cost b.Solution.cost;
  Alcotest.(check bool) "selected classifiers identical" true
    (a.Solution.classifiers = b.Solution.classifiers)

let suite =
  [
    ("backend accessors", `Quick, backend_accessors);
    ("collect preserves task order", `Quick, collect_preserves_order);
    ("run ranks deterministically", `Quick, run_ranks_deterministically);
    ("rng streams identical across jobs", `Quick, rng_streams_identical_across_jobs);
    ("nested portfolios are deadlock-free", `Quick, nested_portfolios);
    ("lowest-indexed failure wins", `Quick, lowest_indexed_failure_wins);
    ("submit and shutdown", `Quick, submit_and_shutdown);
    ("task counters advance", `Quick, task_counters_advance);
    ("solver identical across jobs", `Quick, solver_identical_across_jobs);
  ]
