(* Tests for the theoretical machinery added on top of the heuristics:
   exact densest subgraph (Dinkelbach + min-cut), the knapsack FPTAS,
   the full A^QK_T (Lemma 4.6) and ECC's exactness at l <= 2. *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Ecc = Bcc_core.Ecc
module Graph = Bcc_graph.Graph
module Hypergraph = Bcc_graph.Hypergraph
module Densest = Bcc_dks.Densest
module DksExact = Bcc_dks.Exact
module Knapsack = Bcc_knapsack.Knapsack
module Qk = Bcc_qk.Qk
module Taylor = Bcc_qk.Taylor
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* --- exact densest subgraph --- *)

let hypergraph_of_graph g =
  let edges = Array.map (fun (u, v, w) -> ([| u; v |], w)) (Graph.edges g) in
  Hypergraph.create ~node_costs:(Graph.node_costs g) ~edges

let densest_exact_matches_brute =
  QCheck.Test.make ~name:"exact DS (Dinkelbach) matches brute force" ~count:80
    QCheck.small_int (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:8 ~density:0.4 ~max_cost:4 ~max_weight:9 in
      if Graph.m g = 0 then true
      else begin
        let _, got = Densest.exact_graph g in
        let _, opt = DksExact.densest_ratio (hypergraph_of_graph g) in
        (got = infinity && opt = infinity) || abs_float (got -. opt) < 1e-6
      end)

let densest_exact_known () =
  (* Heavy pair vs light triangle: density 10/2 = 5 wins. *)
  let g =
    Graph.of_edges
      ~node_costs:[| 1.0; 1.0; 1.0; 1.0; 1.0 |]
      5
      [ (0, 1, 10.0); (2, 3, 1.0); (3, 4, 1.0); (2, 4, 1.0) ]
  in
  let sel, ratio = Densest.exact_graph g in
  Alcotest.(check (float 1e-9)) "density 5" 5.0 ratio;
  Alcotest.(check bool) "the heavy pair selected" true (sel.(0) && sel.(1))

let densest_exact_zero_cost () =
  let g = Graph.of_edges ~node_costs:[| 0.0; 0.0 |] 2 [ (0, 1, 3.0) ] in
  let _, ratio = Densest.exact_graph g in
  Alcotest.(check bool) "free positive weight = infinity" true (ratio = infinity)

let densest_exact_no_edges () =
  let g = Graph.of_edges ~node_costs:[| 1.0 |] 1 [] in
  let _, ratio = Densest.exact_graph g in
  Alcotest.(check (float 1e-9)) "no edges, ratio 0" 0.0 ratio

let densest_exact_beats_peel =
  QCheck.Test.make ~name:"exact DS >= greedy peel" ~count:60 QCheck.small_int (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:10 ~density:0.35 ~max_cost:5 ~max_weight:9 in
      if Graph.m g = 0 then true
      else begin
        let _, exact = Densest.exact_graph g in
        let _, peel = Densest.peel (hypergraph_of_graph g) in
        exact = infinity || exact +. 1e-6 >= peel
      end)

(* --- FPTAS --- *)

let fptas_bound =
  QCheck.Test.make ~name:"FPTAS achieves (1 - eps) of the optimum, feasibly" ~count:120
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 10 in
      let values = Array.init n (fun _ -> float_of_int (Rng.int_in rng 0 40)) in
      let weights = Array.init n (fun _ -> Rng.int_in rng 0 12) in
      let budget = Rng.int_in rng 0 30 in
      let opt = Knapsack.exact_int ~values ~weights ~budget () in
      let eps = 0.1 in
      let sol =
        Knapsack.fptas ~epsilon:eps ~values
          ~weights:(Array.map float_of_int weights)
          ~budget:(float_of_int budget)
      in
      sol.Knapsack.weight <= float_of_int budget +. 1e-9
      && sol.Knapsack.value +. 1e-9 >= (1.0 -. eps) *. opt.Knapsack.value)

let fptas_rejects_bad_epsilon () =
  Alcotest.check_raises "epsilon 0" (Invalid_argument "Knapsack.fptas: epsilon must be positive")
    (fun () -> ignore (Knapsack.fptas ~epsilon:0.0 ~values:[| 1.0 |] ~weights:[| 1.0 |] ~budget:1.0))

(* --- full A^QK_T --- *)

let taylor_full_feasible =
  QCheck.Test.make ~name:"A^QK_T (full) is budget-feasible" ~count:50 QCheck.small_int
    (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:12 ~density:0.35 ~max_cost:6 ~max_weight:9 in
      let rng = Rng.create (seed + 7) in
      let total = Array.fold_left ( +. ) 0.0 (Graph.node_costs g) in
      let inst = { Qk.graph = g; budget = 1.0 +. Rng.float rng total } in
      Qk.verify inst (Taylor.full inst))

let taylor_full_finds_structure () =
  (* A clear hub star with uniform costs: the (i=j) DkS class must find
     it. *)
  let g =
    Graph.of_edges
      ~node_costs:[| 1.0; 1.0; 1.0; 1.0; 1.0 |]
      5
      [ (0, 1, 4.0); (0, 2, 4.0); (0, 3, 4.0); (0, 4, 4.0) ]
  in
  let sol = Taylor.full { Qk.graph = g; budget = 5.0 } in
  Alcotest.(check (float 1e-9)) "the whole star" 16.0 sol.Qk.value

let heuristic_dominates_taylor_on_average () =
  (* The paper's point: A^QK_H outperforms the worst-case-oriented
     A^QK_T on realistic inputs.  Checked in aggregate over seeds. *)
  let margin = ref 0.0 in
  List.iter
    (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:14 ~density:0.35 ~max_cost:5 ~max_weight:9 in
      let rng = Rng.create (seed + 3) in
      let total = Array.fold_left ( +. ) 0.0 (Graph.node_costs g) in
      let inst = { Qk.graph = g; budget = 1.0 +. Rng.float rng (total /. 2.0) } in
      margin := !margin +. ((Qk.solve inst).Qk.value -. (Taylor.full inst).Qk.value))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Alcotest.(check bool) "A^QK_H at least matches A^QK_T in aggregate" true (!margin >= -1e-9)

(* --- ECC exactness at l <= 2 --- *)

let ecc_brute_force inst =
  (* Best utility/cost ratio over every classifier subset. *)
  let n = Instance.num_classifiers inst in
  let best = ref 0.0 in
  for mask = 1 to (1 lsl n) - 1 do
    let ids = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n (fun i -> i)) in
    let sol = Solution.of_ids inst ids in
    let r = Ecc.ratio_of sol in
    if r > !best then best := r
  done;
  !best

let ecc_exact_at_l2 =
  QCheck.Test.make ~name:"A^ECC matches brute force at l <= 2" ~count:40 QCheck.small_int
    (fun seed ->
      let inst =
        Fixtures.random_instance ~seed ~max_len:2 ~num_props:4 ~num_queries:4
          ~budget:0.0 ()
      in
      if Instance.num_classifiers inst > 14 then true
      else begin
        let ours = Ecc.ratio_of (Ecc.solve inst) in
        let opt = ecc_brute_force inst in
        (ours = infinity && opt = infinity) || abs_float (ours -. opt) < 1e-6
      end)

let suite =
  [
    qtest densest_exact_matches_brute;
    Alcotest.test_case "exact DS known" `Quick densest_exact_known;
    Alcotest.test_case "exact DS zero cost" `Quick densest_exact_zero_cost;
    Alcotest.test_case "exact DS no edges" `Quick densest_exact_no_edges;
    qtest densest_exact_beats_peel;
    qtest fptas_bound;
    Alcotest.test_case "fptas rejects bad epsilon" `Quick fptas_rejects_bad_epsilon;
    qtest taylor_full_feasible;
    Alcotest.test_case "taylor full finds the star" `Quick taylor_full_finds_structure;
    Alcotest.test_case "A^QK_H vs A^QK_T aggregate" `Slow heuristic_dominates_taylor_on_average;
    qtest ecc_exact_at_l2;
  ]
