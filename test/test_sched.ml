(* The multi-tenant batch scheduler: retry-after clamping (the 429 fix),
   the byte-bounded multi-owner curve cache, deterministic Core units
   (coalescing, admission depth, deadline ordering, cancellation), a
   fake-clock model-based test driving random traces against a fate and
   fairness reference model, an exact weighted-DRR drain, the threaded
   wrapper under contention, and the sched.enqueue fault point. *)

module Sched = Bcc_sched.Sched
module Core = Bcc_sched.Sched.Core
module Curve_cache = Bcc_sched.Curve_cache
module Fault = Bcc_robust.Fault
module Timer = Bcc_util.Timer
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let count n =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some c when c > 0 -> c | _ -> n)
  | None -> n

(* --- satellite fix: retry-after never rounds to 0 --- *)

let retry_after_clamps () =
  Alcotest.(check int) "0.0 -> 1" 1 (Sched.retry_after_s 0.0);
  Alcotest.(check int) "sub-second -> 1" 1 (Sched.retry_after_s 0.2);
  Alcotest.(check int) "exactly 1 -> 1" 1 (Sched.retry_after_s 1.0);
  Alcotest.(check int) "1.2 rounds up" 2 (Sched.retry_after_s 1.2);
  Alcotest.(check int) "capped at an hour" 3600 (Sched.retry_after_s 1e9);
  Alcotest.(check int) "nan -> 1" 1 (Sched.retry_after_s Float.nan);
  Alcotest.(check int) "inf capped" 3600 (Sched.retry_after_s infinity);
  Alcotest.(check int) "negative -> 1" 1 (Sched.retry_after_s (-5.0))

(* --- curve cache --- *)

(* entry cost = |fp| + |payload| + 96; fp "fN" (2) + 100-byte payload
   = 198 per entry, so 600 bytes hold three entries. *)
let payload c = String.make 100 c

let cache_roundtrip_and_stats () =
  let c = Curve_cache.create ~max_bytes:10_000 () in
  Alcotest.(check (option string)) "cold miss" None (Curve_cache.find c "f1");
  Curve_cache.store c ~owner:"w@g0" ~footprint:[ "p" ] "f1" (payload 'a');
  Alcotest.(check (option string)) "hit" (Some (payload 'a')) (Curve_cache.find c "f1");
  let s = Curve_cache.stats c in
  Alcotest.(check int) "entries" 1 s.Curve_cache.entries;
  Alcotest.(check int) "bytes" 198 s.Curve_cache.bytes;
  Alcotest.(check int) "hits" 1 s.Curve_cache.hits;
  Alcotest.(check int) "misses" 1 s.Curve_cache.misses;
  Alcotest.(check int) "insertions" 1 s.Curve_cache.insertions;
  Alcotest.(check int) "evictions" 0 s.Curve_cache.evictions

let cache_byte_bound_lru () =
  let c = Curve_cache.create ~max_bytes:600 () in
  Curve_cache.store c ~owner:"o" "f1" (payload '1');
  Curve_cache.store c ~owner:"o" "f2" (payload '2');
  Curve_cache.store c ~owner:"o" "f3" (payload '3');
  Alcotest.(check int) "three fit" 3 (Curve_cache.stats c).Curve_cache.entries;
  (* touch f1 so f2 is the LRU victim of the next insertion *)
  ignore (Curve_cache.find c "f1");
  Curve_cache.store c ~owner:"o" "f4" (payload '4');
  Alcotest.(check (option string)) "LRU f2 evicted" None (Curve_cache.find c "f2");
  Alcotest.(check (option string)) "f1 kept (recently used)" (Some (payload '1'))
    (Curve_cache.find c "f1");
  Alcotest.(check (option string)) "f4 resident" (Some (payload '4'))
    (Curve_cache.find c "f4");
  let s = Curve_cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Curve_cache.evictions;
  Alcotest.(check bool) "within budget" true (s.Curve_cache.bytes <= 600)

let cache_oversized_entry_bounces () =
  let c = Curve_cache.create ~max_bytes:150 () in
  Curve_cache.store c ~owner:"o" "big" (String.make 500 'x');
  let s = Curve_cache.stats c in
  Alcotest.(check int) "nothing resident" 0 s.Curve_cache.entries;
  Alcotest.(check int) "bytes back to zero" 0 s.Curve_cache.bytes

let cache_multi_owner_claims () =
  let c = Curve_cache.create ~max_bytes:10_000 () in
  Curve_cache.store c ~owner:"wa@g0" ~footprint:[ "p" ] "f1" (payload 'a');
  (* a cross-workload hit gets claimed by stamping a footprint *)
  Curve_cache.set_footprint c ~owner:"wb@g0" "f1" [ "q" ];
  Curve_cache.drop_owner c ~owner:"wa@g0";
  Alcotest.(check (option string)) "survives while wb claims it" (Some (payload 'a'))
    (Curve_cache.find c "f1");
  Curve_cache.drop_owner c ~owner:"wb@g0";
  Alcotest.(check (option string)) "gone with the last claim" None
    (Curve_cache.find c "f1");
  (* set_footprint on an absent fp is a no-op, not an insertion *)
  Curve_cache.set_footprint c ~owner:"wa@g0" "ghost" [ "p" ];
  Alcotest.(check int) "no ghost entry" 0 (Curve_cache.stats c).Curve_cache.entries

let cache_evict_owner_by_footprint () =
  let c = Curve_cache.create ~max_bytes:10_000 () in
  Curve_cache.store c ~owner:"w@g0" ~footprint:[ "p"; "q" ] "f1" (payload 'a');
  Curve_cache.store c ~owner:"w@g0" ~footprint:[ "r" ] "f2" (payload 'b');
  (* shared entry: another owner's claim has an untouched footprint *)
  Curve_cache.set_footprint c ~owner:"v@g0" "f1" [ "z" ];
  Curve_cache.evict_owner c ~owner:"w@g0" ~touched:(fun p -> p = "q");
  Alcotest.(check (option string)) "f1 survives via v's untouched claim"
    (Some (payload 'a')) (Curve_cache.find c "f1");
  Alcotest.(check (option string)) "f2 untouched" (Some (payload 'b'))
    (Curve_cache.find c "f2");
  Alcotest.(check int) "w keeps only f2" 1
    (List.length (Curve_cache.owned c ~owner:"w@g0"));
  (* now the only remaining claim on f1 is v's; touch it *)
  Curve_cache.evict_owner c ~owner:"v@g0" ~touched:(fun p -> p = "z");
  Alcotest.(check (option string)) "f1 gone once every claim is touched" None
    (Curve_cache.find c "f1")

let cache_owned_listing () =
  let c = Curve_cache.create ~max_bytes:10_000 () in
  Curve_cache.store c ~owner:"w" ~footprint:[ "b" ] "f2" "two";
  Curve_cache.store c ~owner:"w" ~footprint:[ "a" ] "f1" "one";
  Curve_cache.store c ~owner:"x" ~footprint:[ "c" ] "f3" "three";
  Alcotest.(check (list (pair string (pair (list string) string))))
    "sorted, owner-scoped"
    [ ("f1", ([ "a" ], "one")); ("f2", ([ "b" ], "two")) ]
    (Curve_cache.owned c ~owner:"w")

(* --- Core units (fake clock throughout) --- *)

let core cfg = Core.create cfg

let enq ?(tenant = "a") ?(key = "k") ?(subkey = "k/0") ?(deadline = infinity)
    ?(now = 0.0) c =
  Core.enqueue c ~now ~tenant ~key ~subkey ~deadline ~est_batch_s:0.05

let wid_of = function
  | Core.Queued w | Core.Coalesced w -> w
  | Core.Rejected _ -> Alcotest.fail "unexpected rejection"

let core_coalesces_same_subkey () =
  let c = core Core.default_config in
  let w1 = enq c and w2 = enq c and w3 = enq c in
  (match (w1, w2, w3) with
  | Core.Queued _, Core.Coalesced _, Core.Coalesced _ -> ()
  | _ -> Alcotest.fail "expected Queued then two Coalesced");
  (* distinct budget, same instance: a sibling group of the same batch *)
  let w4 = enq ~subkey:"k/1" c in
  (match w4 with
  | Core.Queued _ -> ()
  | _ -> Alcotest.fail "new subkey opens a group, not a coalesce");
  Alcotest.(check int) "one pending batch" 1 (Core.queued_batches c);
  let expired, d = Core.next c ~now:0.0 in
  Alcotest.(check (list int)) "nothing expired" [] expired;
  let d = Option.get d in
  Alcotest.(check int) "two groups" 2 (List.length d.Core.d_groups);
  Alcotest.(check (list int)) "group 1 fans out to all three"
    [ wid_of w1; wid_of w2; wid_of w3 ]
    (List.assoc "k/0" d.Core.d_groups);
  Alcotest.(check (list int)) "group 2 runs separately" [ wid_of w4 ]
    (List.assoc "k/1" d.Core.d_groups);
  (* the batch is no longer joinable once dispatched *)
  (match enq c with
  | Core.Queued _ -> ()
  | _ -> Alcotest.fail "post-dispatch arrival must start a fresh batch");
  let _, d2 = Core.next c ~now:0.0 in
  Alcotest.(check bool) "concurrency 1: no second dispatch" true (d2 = None);
  Core.complete c d.Core.d_bid;
  let _, d3 = Core.next c ~now:0.0 in
  Alcotest.(check bool) "slot freed: fresh batch dispatches" true (d3 <> None);
  let ctr = Core.counters c in
  Alcotest.(check int) "coalesced counter" 2 ctr.Core.coalesced_total;
  Alcotest.(check int) "batches counter" 2 ctr.Core.batches_total

let core_coalesce_off () =
  let c = core { Core.default_config with coalesce = false } in
  (match (enq c, enq c) with
  | Core.Queued _, Core.Queued _ -> ()
  | _ -> Alcotest.fail "coalesce off: identical requests stay separate");
  Alcotest.(check int) "two batches" 2 (Core.queued_batches c)

let core_depth_rejects () =
  let c = core { Core.default_config with tenant_depth = 2 } in
  ignore (wid_of (enq ~key:"k1" ~subkey:"k1/0" c));
  ignore (wid_of (enq ~key:"k2" ~subkey:"k2/0" c));
  (match enq ~key:"k3" ~subkey:"k3/0" c with
  | Core.Rejected { retry_after_s } ->
      Alcotest.(check bool) "retry-after at least 1s" true (retry_after_s >= 1)
  | _ -> Alcotest.fail "expected rejection at depth 2");
  (* another tenant is unaffected *)
  (match enq ~tenant:"b" ~key:"k4" ~subkey:"k4/0" c with
  | Core.Queued _ -> ()
  | _ -> Alcotest.fail "depth is per tenant");
  Alcotest.(check int) "rejection counted" 1 (Core.counters c).Core.rejected_total

let core_deadline_order_and_expiry () =
  let c = core Core.default_config in
  ignore (wid_of (enq ~key:"slow" ~subkey:"slow/0" c));
  ignore (wid_of (enq ~key:"urgent" ~subkey:"urgent/0" ~deadline:5.0 c));
  let _, d = Core.next c ~now:0.0 in
  Alcotest.(check string) "earliest deadline first" "urgent"
    (Option.get d).Core.d_key;
  Core.complete c (Option.get d).Core.d_bid;
  (* a waiter found past its deadline is pruned, never dispatched *)
  let w = wid_of (enq ~key:"late" ~subkey:"late/0" ~deadline:10.0 c) in
  let expired, d = Core.next c ~now:20.0 in
  Alcotest.(check (list int)) "expired waiter reported" [ w ] expired;
  Alcotest.(check string) "the no-deadline batch dispatches instead" "slow"
    (Option.get d).Core.d_key;
  Alcotest.(check int) "expiry counted" 1 (Core.counters c).Core.expired_total

let core_cancel () =
  let c = core Core.default_config in
  let w1 = wid_of (enq c) in
  let w2 = wid_of (enq c) in
  Alcotest.(check bool) "cancel queued" true (Core.cancel c w1);
  Alcotest.(check bool) "cancel twice" false (Core.cancel c w1);
  let _, d = Core.next c ~now:0.0 in
  Alcotest.(check (list int)) "only the survivor dispatches" [ w2 ]
    (List.assoc "k/0" (Option.get d).Core.d_groups);
  Alcotest.(check bool) "cancel after dispatch" false (Core.cancel c w2);
  (* cancelling a batch's last waiter removes the batch *)
  let w3 = wid_of (enq ~key:"solo" ~subkey:"solo/0" c) in
  Alcotest.(check bool) "cancel solo" true (Core.cancel c w3);
  Core.complete c (Option.get d).Core.d_bid;
  let _, d2 = Core.next c ~now:0.0 in
  Alcotest.(check bool) "nothing left to dispatch" true (d2 = None)

(* Exact DRR arithmetic: weights 1 vs 3 with quantum 1 drain in the
   repeating pattern a,b,b,b — 6 vs 18 over 24 dispatches. *)
let core_weighted_drain_exact () =
  let c =
    core { Core.default_config with weights = [ ("b", 3) ]; tenant_depth = 64 }
  in
  for i = 0 to 39 do
    ignore
      (wid_of (enq ~tenant:"a" ~key:(Printf.sprintf "a%d" i)
                 ~subkey:(Printf.sprintf "a%d/0" i) c));
    ignore
      (wid_of (enq ~tenant:"b" ~key:(Printf.sprintf "b%d" i)
                 ~subkey:(Printf.sprintf "b%d/0" i) c))
  done;
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 24 do
    let _, d = Core.next c ~now:0.0 in
    let d = Option.get d in
    (match d.Core.d_tenant with
    | "a" -> incr a
    | "b" -> incr b
    | t -> Alcotest.failf "unexpected tenant %s" t);
    Core.complete c d.Core.d_bid
  done;
  Alcotest.(check int) "a gets its 1/4 share" 6 !a;
  Alcotest.(check int) "b gets its 3/4 share" 18 !b;
  List.iter
    (fun ti ->
      Alcotest.(check bool) "deficit within the DRR bound" true
        (ti.Core.ti_deficit >= 0 && ti.Core.ti_deficit <= ti.Core.ti_weight))
    (Core.tenants c)

(* --- model-based random traces against a fate reference model --- *)

type fate = F_queued | F_delivered | F_expired | F_cancelled

let model_random_traces =
  QCheck.Test.make
    ~name:"core: random traces keep fates exact and deficits bounded"
    ~count:(count 80) QCheck.small_int (fun seed ->
      let rng = Rng.create (0xD12 + seed) in
      let quantum = 1 + Rng.int rng 2 in
      let concurrency = 1 + Rng.int rng 2 in
      let weights = [ ("a", 1); ("b", 2); ("c", 3) ] in
      let cfg =
        {
          Core.quantum;
          default_weight = 1;
          weights;
          tenant_depth = 3 + Rng.int rng 5;
          concurrency;
          coalesce = Rng.int rng 4 > 0;
        }
      in
      let c = Core.create cfg in
      let now = ref 0.0 in
      let fate : (int, fate) Hashtbl.t = Hashtbl.create 64 in
      let queued = ref [] in
      let running = ref [] in
      let ok = ref true in
      let check b = if not b then ok := false in
      let bound () =
        List.iter
          (fun ti ->
            check (ti.Core.ti_deficit >= 0);
            check (ti.Core.ti_deficit <= quantum * ti.Core.ti_weight))
          (Core.tenants c)
      in
      let settle wid f =
        check (Hashtbl.find_opt fate wid = Some F_queued);
        Hashtbl.replace fate wid f;
        queued := List.filter (fun w -> w <> wid) !queued
      in
      let deliver (d : Core.dispatch) =
        running := d.Core.d_bid :: !running;
        List.iter
          (fun (_, wids) -> List.iter (fun w -> settle w F_delivered) wids)
          d.Core.d_groups
      in
      let tenants_arr = [| "a"; "b"; "c" |] in
      for step = 1 to 60 do
        now := !now +. float_of_int (Rng.int rng 3);
        (match Rng.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 -> (
            let tenant = tenants_arr.(Rng.int rng 3) in
            let key = Printf.sprintf "k%d" (Rng.int rng 4) in
            let subkey = Printf.sprintf "%s/%d" key (Rng.int rng 2) in
            let deadline =
              if Rng.int rng 4 = 0 then !now +. float_of_int (1 + Rng.int rng 6)
              else infinity
            in
            match
              Core.enqueue c ~now:!now ~tenant ~key ~subkey ~deadline
                ~est_batch_s:0.05
            with
            | Core.Queued wid | Core.Coalesced wid ->
                check (not (Hashtbl.mem fate wid));
                Hashtbl.replace fate wid F_queued;
                queued := wid :: !queued
            | Core.Rejected { retry_after_s } -> check (retry_after_s >= 1))
        | 5 -> (
            match !queued with
            | [] -> ()
            | l ->
                let wid = List.nth l (Rng.int rng (List.length l)) in
                check (Core.cancel c wid);
                settle wid F_cancelled)
        | 6 | 7 | 8 ->
            let expired, d = Core.next c ~now:!now in
            List.iter (fun w -> settle w F_expired) expired;
            Option.iter deliver d
        | _ -> (
            match !running with
            | [] -> ()
            | bid :: rest ->
                Core.complete c bid;
                running := rest));
        bound ();
        check (Core.running c <= concurrency);
        ignore step
      done;
      (* drain: no waiter may be lost — every enqueue ends in exactly one
         of delivered / expired / cancelled *)
      List.iter (Core.complete c) !running;
      running := [];
      let guard = ref 1000 in
      let continue = ref true in
      while !continue && !guard > 0 do
        decr guard;
        let expired, d = Core.next c ~now:!now in
        List.iter (fun w -> settle w F_expired) expired;
        match d with
        | Some d ->
            deliver d;
            Core.complete c d.Core.d_bid;
            running := []
        | None -> if Core.queued_batches c = 0 then continue := false
      done;
      check (!guard > 0);
      check (!queued = []);
      Hashtbl.iter (fun _ f -> check (f <> F_queued)) fate;
      let n f = Hashtbl.fold (fun _ x a -> if x = f then a + 1 else a) fate 0 in
      let ctr = Core.counters c in
      check (ctr.Core.expired_total = n F_expired);
      check (Core.queued_batches c = 0);
      !ok)

(* --- threaded wrapper --- *)

let wrapper_contended_fanout () =
  let sched = Sched.create ~concurrency:2 ~tenant_depth:64 () in
  let n = 16 in
  let results = Array.make n "" in
  let ths =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let tenant = Printf.sprintf "t%d" (i mod 4) in
            let subkey = Printf.sprintf "K/g%d" (i mod 2) in
            match
              Sched.submit sched ~tenant ~key:"K" ~subkey (fun () ->
                  Thread.yield ();
                  "r:" ^ subkey)
            with
            | Ok r -> results.(i) <- r
            | Error _ -> results.(i) <- "ERR")
          ())
  in
  List.iter Thread.join ths;
  Array.iteri
    (fun i r ->
      Alcotest.(check string) "every waiter got its group's result"
        (Printf.sprintf "r:K/g%d" (i mod 2)) r)
    results;
  let s = Sched.stats sched in
  Alcotest.(check int) "drained" 0 s.Sched.queued_waiters;
  Alcotest.(check int) "idle" 0 s.Sched.running;
  Alcotest.(check bool) "dispatched something" true (s.Sched.batches_total >= 1);
  Alcotest.(check int) "no rejections" 0 s.Sched.rejected_total;
  Alcotest.(check int) "no expiries" 0 s.Sched.expired_total

let wrapper_group_failure_contained () =
  let sched = Sched.create ~concurrency:1 () in
  (match
     Sched.submit sched ~tenant:"a" ~key:"K" ~subkey:"K/0" (fun () ->
         failwith "boom")
   with
  | Error (Sched.Faulted (Failure msg)) ->
      Alcotest.(check string) "the group's own exception" "boom" msg
  | _ -> Alcotest.fail "expected the group's own exception back");
  match Sched.submit sched ~tenant:"a" ~key:"K" ~subkey:"K/0" (fun () -> "fine") with
  | Ok r -> Alcotest.(check string) "queue not wedged" "fine" r
  | _ -> Alcotest.fail "expected the next submit to succeed"

let wrapper_expired_upfront () =
  let sched = Sched.create () in
  match
    Sched.submit sched ~tenant:"a" ~deadline_s:(Timer.now_s () -. 1.0) ~key:"K"
      ~subkey:"K/0" (fun () -> "never")
  with
  | Error Sched.Expired -> ()
  | _ -> Alcotest.fail "a dead-on-arrival deadline must not run"

let sched_enqueue_fault_point () =
  Alcotest.(check bool) "registered" true
    (List.mem Sched.fault_point Fault.known_points);
  let sched = Sched.create () in
  Fault.arm Sched.fault_point Fault.Throw;
  Fun.protect ~finally:Fault.reset (fun () ->
      match Sched.submit sched ~tenant:"a" ~key:"K" ~subkey:"K/0" (fun () -> "x") with
      | Error (Sched.Faulted (Fault.Injected p)) ->
          Alcotest.(check string) "the sched.enqueue point" Sched.fault_point p
      | _ -> Alcotest.fail "expected an injected fault");
  (match Sched.submit sched ~tenant:"a" ~key:"K" ~subkey:"K/0" (fun () -> "ok") with
  | Ok r -> Alcotest.(check string) "recovers after disarm" "ok" r
  | _ -> Alcotest.fail "expected recovery");
  let s = Sched.stats sched in
  Alcotest.(check int) "the faulted submit never reached the queue" 0
    s.Sched.queued_waiters

let suite =
  [
    Alcotest.test_case "retry-after clamps to [1, 3600]" `Quick retry_after_clamps;
    Alcotest.test_case "curve cache round-trips and counts" `Quick
      cache_roundtrip_and_stats;
    Alcotest.test_case "curve cache enforces byte bound in LRU order" `Quick
      cache_byte_bound_lru;
    Alcotest.test_case "curve cache bounces oversized entries" `Quick
      cache_oversized_entry_bounces;
    Alcotest.test_case "curve cache entries are multi-owner" `Quick
      cache_multi_owner_claims;
    Alcotest.test_case "curve cache evicts by owner footprint" `Quick
      cache_evict_owner_by_footprint;
    Alcotest.test_case "curve cache lists owned artifacts sorted" `Quick
      cache_owned_listing;
    Alcotest.test_case "core coalesces same-subkey requests" `Quick
      core_coalesces_same_subkey;
    Alcotest.test_case "core honors coalesce = false" `Quick core_coalesce_off;
    Alcotest.test_case "core rejects past tenant depth" `Quick core_depth_rejects;
    Alcotest.test_case "core orders by deadline and prunes expired" `Quick
      core_deadline_order_and_expiry;
    Alcotest.test_case "core cancellation" `Quick core_cancel;
    Alcotest.test_case "weighted DRR drain is exact" `Quick
      core_weighted_drain_exact;
    qtest model_random_traces;
    Alcotest.test_case "wrapper: 16 threads, 4 tenants, shared results" `Quick
      wrapper_contended_fanout;
    Alcotest.test_case "wrapper: group failure is contained" `Quick
      wrapper_group_failure_contained;
    Alcotest.test_case "wrapper: dead-on-arrival deadline" `Quick
      wrapper_expired_upfront;
    Alcotest.test_case "sched.enqueue fault fails only that submit" `Quick
      sched_enqueue_fault_point;
  ]
