(* Property-based oracle suite for the solver pipeline.

   Three layers of assurance, all driven from the qcheck seed so a
   failure replays deterministically:

   - every solution the solver returns — including degraded ones — is
     budget-feasible and passes [Solution.verify]'s independent
     recomputation of cost and covered-query utility;
   - on instances small enough for {!Bcc_core.Exact} (branch and bound
     over all classifier subsets), the heuristic never *beats* the
     optimum (that would mean an infeasible or mis-scored solution) —
     and we track how close it lands;
   - [solve] and [solve_within ~deadline:none] agree exactly, so the
     robustness layer is invisible when unused. *)

module Instance = Bcc_core.Instance
module Solver = Bcc_core.Solver
module Solution = Bcc_core.Solution
module Exact = Bcc_core.Exact
module Deadline = Bcc_robust.Deadline

let qtest = QCheck_alcotest.to_alcotest

let count n =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some c when c > 0 -> c | _ -> n)
  | None -> n

let budget_of_seed seed = float_of_int (1 + (seed mod 23))

let feasible inst (sol : Solution.t) =
  Solution.verify inst sol && sol.Solution.cost <= Instance.budget inst +. 1e-9

let solve_feasible_q =
  QCheck.Test.make ~name:"solve is always budget-feasible and verified"
    ~count:(count 120) QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:(budget_of_seed seed) () in
      feasible inst (Solver.solve inst))

(* Instances kept small enough for the exact oracle: few short queries
   over few properties bounds the classifier universe well under
   [Exact]'s cap. *)
let oracle_instance seed =
  Fixtures.random_instance ~max_len:2 ~num_props:4 ~num_queries:4 ~seed
    ~budget:(budget_of_seed seed) ()

let matches_exact_q =
  QCheck.Test.make ~name:"solver never beats the exact optimum"
    ~count:(count 80) QCheck.small_int (fun seed ->
      let inst = oracle_instance seed in
      if Instance.num_classifiers inst > 20 then true (* out of oracle range *)
      else
        let opt = Exact.solve inst in
        let got = Solver.solve inst in
        feasible inst got
        && feasible inst opt
        && got.Solution.utility <= opt.Solution.utility +. 1e-9)

let degraded_never_beats_exact_q =
  QCheck.Test.make ~name:"degraded solutions stay within the optimum too"
    ~count:(count 60) QCheck.small_int (fun seed ->
      let inst = oracle_instance seed in
      if Instance.num_classifiers inst > 20 then true
      else
        let opt = Exact.solve inst in
        let o = Solver.solve_within ~deadline:(Deadline.after 0.0) inst in
        feasible inst o.Solver.solution
        && o.Solver.solution.Solution.utility <= opt.Solution.utility +. 1e-9)

let none_deadline_agrees_q =
  QCheck.Test.make ~name:"solve_within none = solve, exactly" ~count:(count 40)
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:(budget_of_seed seed) () in
      let a = Solver.solve inst in
      let b = (Solver.solve_within ~deadline:Deadline.none inst).Solver.solution in
      a.Solution.utility = b.Solution.utility
      && a.Solution.cost = b.Solution.cost
      && List.length a.Solution.classifiers = List.length b.Solution.classifiers)

(* The paper's worked examples have known optima — pin them. *)
let worked_examples () =
  let check name inst expected_utility =
    let sol = Solver.solve inst in
    Alcotest.(check bool) (name ^ " feasible") true (feasible inst sol);
    Alcotest.(check (float 1e-9)) (name ^ " utility") expected_utility
      sol.Solution.utility;
    let opt = Exact.solve inst in
    Alcotest.(check (float 1e-9)) (name ^ " matches exact") opt.Solution.utility
      sol.Solution.utility
  in
  check "figure1 b=4" (Fixtures.figure1 ~budget:4.0) 9.0;
  check "figure2 b=2" (Fixtures.figure2 ~budget:2.0) 2.0

let suite =
  [
    ("worked examples hit the known optima", `Quick, worked_examples);
    qtest solve_feasible_q;
    qtest matches_exact_q;
    qtest degraded_never_beats_exact_q;
    qtest none_deadline_agrees_q;
  ]
