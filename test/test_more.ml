(* Second coverage pass: determinism, boundary conditions, structural
   invariants across libraries. *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Cover = Bcc_core.Cover
module Covers = Bcc_core.Covers
module Gmc3 = Bcc_core.Gmc3
module Graph = Bcc_graph.Graph
module Hypergraph = Bcc_graph.Hypergraph
module Maxflow = Bcc_graph.Maxflow
module Hks = Bcc_dks.Hks
module Dksh = Bcc_dks.Dksh
module Qk = Bcc_qk.Qk
module Knapsack = Bcc_knapsack.Knapsack
module Rng = Bcc_util.Rng
module Heap = Bcc_util.Heap

let qtest = QCheck_alcotest.to_alcotest
let ps = Fixtures.ps

(* --- determinism --- *)

let solver_deterministic =
  QCheck.Test.make ~name:"A^BCC is deterministic" ~count:20 QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:9.0 () in
      let a = Solver.solve inst and b = Solver.solve inst in
      a.Solution.utility = b.Solution.utility && a.Solution.cost = b.Solution.cost)

let qk_deterministic =
  QCheck.Test.make ~name:"A^QK_H is deterministic" ~count:20 QCheck.small_int (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:10 ~density:0.4 ~max_cost:5 ~max_weight:9 in
      let inst = { Qk.graph = g; budget = 8.0 } in
      (Qk.solve inst).Qk.value = (Qk.solve inst).Qk.value)

let generators_deterministic () =
  let a = Bcc_data.Bestbuy.generate ~seed:9 ~budget:10.0 () in
  let b = Bcc_data.Bestbuy.generate ~seed:9 ~budget:10.0 () in
  Alcotest.(check (float 1e-12)) "bestbuy determinism" (Instance.total_utility a)
    (Instance.total_utility b);
  let c = Bcc_data.Private_like.generate ~seed:9 ~budget:10.0 () in
  let d = Bcc_data.Private_like.generate ~seed:9 ~budget:10.0 () in
  Alcotest.(check int) "private determinism" (Instance.num_classifiers c)
    (Instance.num_classifiers d)

(* --- solver boundaries --- *)

let solver_paper_prune_feasible =
  QCheck.Test.make ~name:"A^BCC with the paper's prune rule stays feasible" ~count:25
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:9.0 () in
      let options = { Solver.default_options with prune_mode = `Paper } in
      Solution.verify inst (Solver.solve ~options inst))

let solver_l1_matches_knapsack_quality =
  QCheck.Test.make ~name:"on singleton-only workloads A^BCC is knapsack-optimal" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 10 in
      let values = Array.init n (fun _ -> float_of_int (1 + Rng.int rng 9)) in
      let weights = Array.init n (fun _ -> 1 + Rng.int rng 5) in
      let budget = 1 + Rng.int rng 20 in
      let queries = Array.init n (fun i -> (Propset.singleton i, values.(i))) in
      let cost c =
        match Propset.to_list c with [ p ] -> float_of_int weights.(p) | _ -> infinity
      in
      let inst = Instance.create ~budget:(float_of_int budget) ~queries ~cost () in
      let opt = Knapsack.exact_int ~values ~weights ~budget () in
      abs_float ((Solver.solve inst).Solution.utility -. opt.Knapsack.value) < 1e-9)

let gmc3_budget_monotone_in_target () =
  let inst = Fixtures.figure1 ~budget:0.0 in
  let cost_for target = (Gmc3.solve inst ~target).Gmc3.solution.Solution.cost in
  let c8 = cost_for 8.0 and c9 = cost_for 9.0 and c11 = cost_for 11.0 in
  Alcotest.(check bool)
    (Printf.sprintf "costs grow with targets: %.0f <= %.0f <= %.0f" c8 c9 c11)
    true
    (c8 <= c9 +. 1e-9 && c9 <= c11 +. 1e-9)

let empty_instance_everything () =
  let inst = Instance.create ~budget:5.0 ~queries:[||] ~cost:(fun _ -> 1.0) () in
  Alcotest.(check int) "no queries" 0 (Instance.num_queries inst);
  Alcotest.(check int) "no classifiers" 0 (Instance.num_classifiers inst);
  let sol = Solver.solve inst in
  Alcotest.(check (float 1e-12)) "empty solution" 0.0 sol.Solution.utility;
  Alcotest.(check bool) "verified" true (Solution.verify inst sol)

(* --- covers invariants --- *)

let two_covers_sound =
  QCheck.Test.make ~name:"two_covers: pairs cover jointly, never alone" ~count:60
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~max_len:3 ~budget:100.0 () in
      let state = Cover.create inst in
      let ok = ref true in
      for qi = 0 to Instance.num_queries inst - 1 do
        let cands, target = Covers.candidates state qi in
        List.iter
          (fun ((a : Covers.candidate), (b : Covers.candidate)) ->
            if
              (a.bits lor b.bits) land target <> target
              || a.bits land target = target
              || b.bits land target = target
            then ok := false)
          (Covers.two_covers cands ~target);
        List.iter
          (fun (c : Covers.candidate) -> if c.bits land target <> target then ok := false)
          (Covers.one_covers cands ~target)
      done;
      !ok)

let candidates_exclude_selected =
  QCheck.Test.make ~name:"candidates never include selected classifiers" ~count:40
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:100.0 () in
      if Instance.num_classifiers inst = 0 then true
      else begin
        let state = Cover.create inst in
        let rng = Rng.create (seed * 3 + 1) in
        for _ = 1 to 3 do
          Cover.select state (Rng.int rng (Instance.num_classifiers inst))
        done;
        let ok = ref true in
        for qi = 0 to Instance.num_queries inst - 1 do
          let cands, _ = Covers.candidates state qi in
          List.iter
            (fun (c : Covers.candidate) ->
              if Cover.is_selected state c.id then ok := false)
            cands
        done;
        !ok
      end)

(* --- graph boundaries --- *)

let empty_graph () =
  let g = Graph.of_edges 0 [] in
  Alcotest.(check int) "no nodes" 0 (Graph.n g);
  Alcotest.(check int) "no edges" 0 (Graph.m g);
  let comp, k = Graph.connected_components g in
  Alcotest.(check int) "no components" 0 k;
  Alcotest.(check int) "empty labels" 0 (Array.length comp)

let maxflow_bipartite_matching () =
  (* 3x3 bipartite graph with a perfect matching of size 3. *)
  let n = 8 in
  let s = 6 and t = 7 in
  let net = Maxflow.create n in
  List.iter (fun v -> Maxflow.add_edge net s v 1.0) [ 0; 1; 2 ];
  List.iter (fun v -> Maxflow.add_edge net v t 1.0) [ 3; 4; 5 ];
  List.iter
    (fun (u, v) -> Maxflow.add_edge net u v 1.0)
    [ (0, 3); (0, 4); (1, 4); (1, 5); (2, 5) ];
  Alcotest.(check (float 1e-9)) "perfect matching" 3.0 (Maxflow.max_flow net s t)

let maxflow_parallel_arcs () =
  let net = Maxflow.create 2 in
  Maxflow.add_edge net 0 1 2.0;
  Maxflow.add_edge net 0 1 3.0;
  Alcotest.(check (float 1e-9)) "parallel arcs add" 5.0 (Maxflow.max_flow net 0 1)

(* --- HkS / DkSH extras --- *)

let hks_peel_value_monotone_in_k () =
  let g = Fixtures.random_graph ~seed:5 ~n:14 ~density:0.4 ~max_cost:1 ~max_weight:9 in
  let prev = ref 0.0 in
  for k = 1 to 14 do
    let inst = Hks.make g ~k in
    let v = Hks.value inst (Hks.solve inst) in
    Alcotest.(check bool)
      (Printf.sprintf "value at k=%d (%.1f) >= value at k-1 (%.1f)" k v !prev)
      true
      (v +. 1e-9 >= !prev);
    prev := v
  done

let dksh_matches_small_brute () =
  let h =
    Hypergraph.create ~node_costs:(Array.make 6 1.0)
      ~edges:
        [|
          ([| 0; 1; 2 |], 2.0); ([| 0; 1; 3 |], 1.0); ([| 3; 4; 5 |], 3.0);
          ([| 1; 2; 3 |], 1.0);
        |]
  in
  let k = 3 in
  (* Brute force over 3-subsets. *)
  let best = ref 0.0 in
  for mask = 0 to 63 do
    let sel = Array.init 6 (fun v -> mask land (1 lsl v) <> 0) in
    if Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 sel = k then begin
      let v = Hypergraph.induced_weight h sel in
      if v > !best then best := v
    end
  done;
  let got = Dksh.value h (Dksh.peel h ~k) in
  Alcotest.(check (float 1e-9)) "peel finds the best triple here" !best got

(* --- QK extras --- *)

let qk_all_nodes_expensive () =
  (* Every node costs more than B/2; the expensive branches must still
     find the best affordable pair. *)
  let g =
    Graph.of_edges ~node_costs:[| 4.0; 4.0; 4.0 |] 3 [ (0, 1, 5.0); (1, 2, 9.0) ]
  in
  let sol = Qk.solve { Qk.graph = g; budget = 8.0 } in
  Alcotest.(check (float 1e-9)) "best expensive pair" 9.0 sol.Qk.value

let qk_disconnected_components () =
  let g =
    Graph.of_edges ~node_costs:[| 1.0; 1.0; 1.0; 1.0 |] 4 [ (0, 1, 3.0); (2, 3, 4.0) ]
  in
  let sol = Qk.solve { Qk.graph = g; budget = 4.0 } in
  Alcotest.(check (float 1e-9)) "takes both components" 7.0 sol.Qk.value

(* --- util extras --- *)

let heap_to_sorted_list () =
  let h = Heap.create 5 in
  List.iteri (fun i p -> Heap.insert h i p) [ 3.0; 1.0; 2.0 ];
  let sorted = Heap.to_sorted_list h in
  Alcotest.(check (list (pair int (float 1e-12)))) "sorted pop order"
    [ (1, 1.0); (2, 2.0); (0, 3.0) ]
    sorted;
  Alcotest.(check int) "non-destructive" 3 (Heap.size h)

let stats_empty_raises () =
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.min: empty") (fun () ->
      ignore (Bcc_util.Stats.min [||]))

(* --- io on a generated dataset --- *)

let io_roundtrip_generated () =
  let inst =
    Bcc_data.Private_like.generate
      ~params:{ Bcc_data.Private_like.default_params with num_queries = 120; num_anchors = 25 }
      ~seed:3 ~budget:50.0 ()
  in
  let path = Filename.temp_file "bccgen" ".inst" in
  Bcc_data.Io.save path inst;
  let loaded = Bcc_data.Io.load path in
  Sys.remove path;
  Alcotest.(check int) "queries preserved" (Instance.num_queries inst)
    (Instance.num_queries loaded);
  Alcotest.(check (float 1e-3)) "total utility preserved" (Instance.total_utility inst)
    (Instance.total_utility loaded);
  (* Property ids are relabelled on load, which legitimately changes
     heuristic tie-breaking; both solutions must verify and land in the
     same quality band. *)
  let a = Solver.solve inst and b = Solver.solve loaded in
  Alcotest.(check bool) "original verifies" true (Solution.verify inst a);
  Alcotest.(check bool) "loaded verifies" true (Solution.verify loaded b);
  let lo = 0.9 *. max a.Solution.utility b.Solution.utility in
  Alcotest.(check bool)
    (Printf.sprintf "same quality band (%.0f vs %.0f)" a.Solution.utility b.Solution.utility)
    true
    (a.Solution.utility >= lo && b.Solution.utility >= lo)

(* --- catalog extras --- *)

let trained_predictions_stable () =
  let params =
    {
      Bcc_catalog.Catalog.num_items = 300;
      num_properties = 30;
      props_per_item_lo = 2;
      props_per_item_hi = 5;
      visibility = 0.5;
    }
  in
  let c = Bcc_catalog.Catalog.generate ~params ~seed:4 () in
  let cl = Bcc_catalog.Trained.construct ~seed:5 ~props:(ps [ 0; 1 ]) ~cost:10.0 ~accuracy_floor:0.9 in
  for item = 0 to 50 do
    Alcotest.(check bool) "same prediction twice"
      (Bcc_catalog.Trained.predict cl c item)
      (Bcc_catalog.Trained.predict cl c item)
  done

let pipeline_with_baseline_solver () =
  let params =
    {
      Bcc_catalog.Catalog.num_items = 1500;
      num_properties = 50;
      props_per_item_lo = 3;
      props_per_item_hi = 6;
      visibility = 0.4;
    }
  in
  let c = Bcc_catalog.Catalog.generate ~params ~seed:6 () in
  let wl = { Bcc_catalog.Pipeline.default_workload with num_queries = 80; budget = 80.0 } in
  let with_solver solve = Bcc_catalog.Pipeline.run ~params:wl ~solve c ~seed:7 in
  let ours = with_solver (fun i -> Solver.solve i) in
  let rand = with_solver (fun i -> Bcc_core.Baselines.rand ~seed:1 i Bcc_core.Baselines.Budget) in
  Alcotest.(check bool) "A^BCC covers at least as many queries as RAND" true
    (ours.Bcc_catalog.Pipeline.queries_covered >= rand.Bcc_catalog.Pipeline.queries_covered)

let suite =
  [
    qtest solver_deterministic;
    qtest qk_deterministic;
    Alcotest.test_case "generator determinism" `Quick generators_deterministic;
    qtest solver_paper_prune_feasible;
    qtest solver_l1_matches_knapsack_quality;
    Alcotest.test_case "gmc3 cost monotone in target" `Quick gmc3_budget_monotone_in_target;
    Alcotest.test_case "empty instance" `Quick empty_instance_everything;
    qtest two_covers_sound;
    qtest candidates_exclude_selected;
    Alcotest.test_case "empty graph" `Quick empty_graph;
    Alcotest.test_case "maxflow bipartite matching" `Quick maxflow_bipartite_matching;
    Alcotest.test_case "maxflow parallel arcs" `Quick maxflow_parallel_arcs;
    Alcotest.test_case "hks value monotone in k" `Quick hks_peel_value_monotone_in_k;
    Alcotest.test_case "dksh vs small brute force" `Quick dksh_matches_small_brute;
    Alcotest.test_case "qk all nodes expensive" `Quick qk_all_nodes_expensive;
    Alcotest.test_case "qk disconnected components" `Quick qk_disconnected_components;
    Alcotest.test_case "heap to_sorted_list" `Quick heap_to_sorted_list;
    Alcotest.test_case "stats empty raises" `Quick stats_empty_raises;
    Alcotest.test_case "io roundtrip on generated data" `Quick io_roundtrip_generated;
    Alcotest.test_case "trained predictions stable" `Quick trained_predictions_stable;
    Alcotest.test_case "pipeline with baseline solver" `Slow pipeline_with_baseline_solver;
  ]
