(* Unit tests for the bcc_server building blocks: the JSON codec, the
   LRU cache, the metrics registry and HTTP request parsing.  The
   end-to-end daemon test lives in test_bccd.ml. *)

module Json = Bcc_server.Json
module Cache = Bcc_server.Cache
module Metrics = Bcc_server.Metrics
module Http = Bcc_server.Http

let qtest = QCheck_alcotest.to_alcotest

(* --- json --- *)

let json_eq = Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Json.to_string j)) ( = )

let roundtrip j = Json.of_string_exn (Json.to_string j)

let json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Num 0.0;
      Json.Num 42.0;
      Json.Num (-17.25);
      Json.Num 1.5e300;
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \" \\ \n \r \t \b \012 quotes";
      Json.Str "unicode: caf\xc3\xa9";
      Json.List [];
      Json.List [ Json.Num 1.0; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Num 1.0);
          ("nested", Json.Obj [ ("list", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter (fun j -> Alcotest.check json_eq "roundtrip" j (roundtrip j)) cases

let json_nonfinite () =
  Alcotest.(check string) "inf" {|"inf"|} (Json.to_string (Json.Num infinity));
  Alcotest.(check string) "-inf" {|"-inf"|} (Json.to_string (Json.Num neg_infinity));
  Alcotest.(check string) "nan" {|"nan"|} (Json.to_string (Json.Num nan));
  Alcotest.(check (option (float 0.0))) "inf back" (Some infinity)
    (Json.get_num (Json.Str "inf"))

let json_escapes () =
  (* \u escapes decode to UTF-8, including surrogate pairs. *)
  Alcotest.check json_eq "u-escape" (Json.Str "A")
    (Json.of_string_exn {|"A"|});
  Alcotest.check json_eq "2-byte" (Json.Str "\xc2\xa2")
    (Json.of_string_exn {|"¢"|});
  Alcotest.check json_eq "3-byte" (Json.Str "\xe2\x82\xac")
    (Json.of_string_exn {|"€"|});
  Alcotest.check json_eq "surrogate pair" (Json.Str "\xf0\x9d\x84\x9e")
    (Json.of_string_exn {|"𝄞"|});
  Alcotest.check json_eq "slash escape" (Json.Str "a/b")
    (Json.of_string_exn {|"a\/b"|})

let json_whitespace_and_nesting () =
  Alcotest.check json_eq "whitespace everywhere"
    (Json.Obj [ ("a", Json.List [ Json.Num 1.0; Json.Num 2.0 ]); ("b", Json.Null) ])
    (Json.of_string_exn " {\r\n \"a\" : [ 1 , 2 ] ,\t\"b\" : null } \n")

let expect_error s =
  match Json.of_string s with
  | Ok j -> Alcotest.failf "expected parse error for %S, got %s" s (Json.to_string j)
  | Error _ -> ()

let json_rejects () =
  List.iter expect_error
    [
      "";
      "{";
      "[1,";
      "[1 2]";
      "{\"a\":}";
      "{\"a\" 1}";
      "tru";
      "nul";
      "01a";
      "\"unterminated";
      "\"bad \\q escape\"";
      "\"lone \\ud834 surrogate\"";
      (* the trailing-garbage cases the codec must reject *)
      "{} {}";
      "null null";
      "42 x";
      "[1] ,";
    ]

let json_fuzz_roundtrip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let scalar =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun f -> Json.Num f) (float_bound_inclusive 1e6);
                map (fun i -> Json.Num (float_of_int i)) small_signed_int;
                map (fun s -> Json.Str s) (string_size ~gen:printable (0 -- 10));
              ]
          in
          if n <= 0 then scalar
          else
            frequency
              [
                (2, scalar);
                (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
                ( 1,
                  map
                    (fun l -> Json.Obj l)
                    (list_size (0 -- 4)
                       (pair (string_size ~gen:printable (0 -- 6)) (self (n / 2)))) );
              ]))
  in
  QCheck.Test.make ~name:"json to_string/of_string roundtrip" ~count:200
    (QCheck.make ~print:Json.to_string gen)
    (fun j -> roundtrip j = j)

(* --- cache --- *)

let cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  (* touch "a" so "b" is the LRU victim *)
  Alcotest.(check (option int)) "a hit" (Some 1) (Cache.find c "a");
  Cache.put c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "evictions" 1 (Cache.evictions c);
  Alcotest.(check (list string)) "mru order" [ "c"; "a" ] (Cache.keys_mru c)

let cache_counters () =
  let c = Cache.create ~capacity:4 in
  ignore (Cache.find c "missing");
  Cache.put c "k" 7;
  ignore (Cache.find c "k");
  ignore (Cache.find c "k");
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c);
  let v, hit = Cache.find_or_add c "k" (fun () -> Alcotest.fail "must not recompute") in
  Alcotest.(check bool) "find_or_add hit" true hit;
  Alcotest.(check int) "value" 7 v;
  let v, hit = Cache.find_or_add c "fresh" (fun () -> 9) in
  Alcotest.(check bool) "find_or_add miss" false hit;
  Alcotest.(check int) "computed" 9 v;
  Alcotest.(check int) "length" 2 (Cache.length c)

let cache_update_refreshes () =
  let c = Cache.create ~capacity:2 in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  Cache.put c "a" 10;
  (* refreshed, so "b" gets evicted next *)
  Cache.put c "c" 3;
  Alcotest.(check (option int)) "updated value" (Some 10) (Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b")

let cache_concurrent () =
  (* Hammer one shared cache from several threads; the structure must
     stay consistent (no torn lists, length bounded by capacity). *)
  let c = Cache.create ~capacity:16 in
  let worker seed () =
    let st = Random.State.make [| seed |] in
    for _ = 1 to 2000 do
      let k = "k" ^ string_of_int (Random.State.int st 64) in
      if Random.State.bool st then Cache.put c k seed
      else ignore (Cache.find c k)
    done
  in
  let threads = List.init 4 (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  Alcotest.(check bool) "length within capacity" true (Cache.length c <= 16);
  Alcotest.(check int) "mru list matches table" (Cache.length c)
    (List.length (Cache.keys_mru c))

(* --- metrics --- *)

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let assert_contains rendered needle =
  if not (contains ~needle rendered) then
    Alcotest.failf "expected %S in rendered metrics:\n%s" needle rendered

let metrics_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.inc m "req_total" ~labels:[ ("code", "200") ];
  Metrics.inc m "req_total" ~labels:[ ("code", "200") ];
  Metrics.inc m "req_total" ~labels:[ ("code", "503") ];
  Metrics.set m "depth" 3.0;
  Alcotest.(check (float 0.0)) "counter" 2.0
    (Metrics.counter_value m "req_total" ~labels:[ ("code", "200") ]);
  let r = Metrics.render m in
  assert_contains r "# TYPE req_total counter";
  assert_contains r "req_total{code=\"200\"} 2";
  assert_contains r "req_total{code=\"503\"} 1";
  assert_contains r "# TYPE depth gauge";
  assert_contains r "depth 3"

let metrics_histogram () =
  let m = Metrics.create () in
  Metrics.observe m "lat" ~buckets:[| 0.1; 1.0 |] 0.05;
  Metrics.observe m "lat" ~buckets:[| 0.1; 1.0 |] 0.5;
  Metrics.observe m "lat" ~buckets:[| 0.1; 1.0 |] 30.0;
  let r = Metrics.render m in
  assert_contains r "lat_bucket{le=\"0.1\"} 1";
  assert_contains r "lat_bucket{le=\"1\"} 2";
  (* cumulative: +Inf counts everything *)
  assert_contains r "lat_bucket{le=\"+Inf\"} 3";
  assert_contains r "lat_count 3";
  assert_contains r "lat_sum 30.55"

let metrics_label_escaping () =
  let m = Metrics.create () in
  Metrics.inc m "c" ~labels:[ ("path", "a\"b\\c\nd") ];
  assert_contains (Metrics.render m) {|c{path="a\"b\\c\nd"} 1|}

let metrics_kind_clash () =
  let m = Metrics.create () in
  Metrics.inc m "x";
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: x registered as counter, used as gauge")
    (fun () -> Metrics.set m "x" 1.0)

let metrics_label_order () =
  (* The same label set in two textual orders must hit one series. *)
  let m = Metrics.create () in
  Metrics.inc m "lo" ~labels:[ ("a", "1"); ("b", "2") ];
  Metrics.inc m "lo" ~labels:[ ("b", "2"); ("a", "1") ];
  Alcotest.(check (float 0.0)) "one series" 2.0
    (Metrics.counter_value m "lo" ~labels:[ ("b", "2"); ("a", "1") ]);
  let r = Metrics.render m in
  assert_contains r {|lo{a="1",b="2"} 2|};
  if contains ~needle:{|lo{b="2",a="1"}|} r then
    Alcotest.failf "unsorted label order leaked into render:\n%s" r

let metrics_scalar_kinds () =
  let m = Metrics.create () in
  Metrics.inc m "c" ~by:3.0;
  Metrics.set m "g" 7.0;
  Alcotest.(check (float 0.0)) "counter read" 3.0 (Metrics.counter_value m "c");
  Alcotest.(check (float 0.0)) "gauge read" 7.0 (Metrics.gauge_value m "g");
  Alcotest.(check (float 0.0)) "absent family" 0.0 (Metrics.counter_value m "nope");
  Alcotest.(check (float 0.0)) "absent series" 0.0
    (Metrics.gauge_value m "g" ~labels:[ ("x", "y") ]);
  Alcotest.check_raises "gauge read as counter"
    (Invalid_argument "Metrics: g registered as gauge, used as counter")
    (fun () -> ignore (Metrics.counter_value m "g"));
  Alcotest.check_raises "counter read as gauge"
    (Invalid_argument "Metrics: c registered as counter, used as gauge")
    (fun () -> ignore (Metrics.gauge_value m "c"))

(* Rendered histogram bucket lines must carry non-decreasing cumulative
   counts, ending at the observation count on the +Inf bucket. *)
let metrics_histogram_monotone =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (0 -- 30) (float_bound_inclusive 50.0))
        (list_size (0 -- 6) (float_bound_inclusive 50.0)))
  in
  let print (obs, bounds) =
    Printf.sprintf "obs=[%s] bounds=[%s]"
      (String.concat ";" (List.map string_of_float obs))
      (String.concat ";" (List.map string_of_float bounds))
  in
  QCheck.Test.make ~name:"histogram buckets cumulative non-decreasing" ~count:200
    (QCheck.make ~print gen)
    (fun (obs, bounds) ->
      let buckets =
        match List.sort_uniq compare (List.filter (fun b -> b > 0.0) bounds) with
        | [] -> [| 1.0 |]
        | l -> Array.of_list l
      in
      let m = Metrics.create () in
      List.iter (fun x -> Metrics.observe m "h" ~buckets x) obs;
      if obs = [] then true
      else
        let lines = String.split_on_char '\n' (Metrics.render m) in
        let counts =
          List.filter_map
            (fun line ->
              if String.length line > 9 && String.sub line 0 9 = "h_bucket{" then
                match String.rindex_opt line ' ' with
                | Some i ->
                    Some
                      (int_of_float
                         (float_of_string
                            (String.sub line (i + 1) (String.length line - i - 1))))
                | None -> None
              else None)
            lines
        in
        List.length counts = Array.length buckets + 1
        && List.for_all2 ( <= )
             (List.filteri (fun i _ -> i < List.length counts - 1) counts)
             (List.tl counts)
        && List.nth counts (List.length counts - 1) = List.length obs)

(* --- http --- *)

(* Feed raw bytes through a pipe and parse them as a request. *)
let parse_raw raw =
  let r, w = Unix.pipe () in
  let writer =
    Thread.create
      (fun () ->
        let b = Bytes.of_string raw in
        let n = Bytes.length b in
        let rec go off =
          if off < n then go (off + Unix.write w b off (n - off))
        in
        go 0;
        Unix.close w)
      ()
  in
  let result = Http.read_request r in
  Thread.join writer;
  Unix.close r;
  result

let http_parse_basic () =
  match
    parse_raw
      "POST /solve?budget=4.5&x=a%20b HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\nContent-Type: text/plain\r\n\r\nhello"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e.Http.message
  | Ok req ->
      Alcotest.(check string) "method" "POST" req.Http.meth;
      Alcotest.(check string) "path" "/solve" req.Http.path;
      Alcotest.(check (option string)) "budget" (Some "4.5")
        (Http.query_param req "budget");
      Alcotest.(check (option string)) "decoded" (Some "a b")
        (Http.query_param req "x");
      Alcotest.(check (option string)) "header case-insensitive" (Some "text/plain")
        (Http.header req "content-TYPE");
      Alcotest.(check string) "body" "hello" req.Http.body

let http_parse_no_body () =
  match parse_raw "GET /metrics HTTP/1.1\r\n\r\n" with
  | Error e -> Alcotest.failf "parse failed: %s" e.Http.message
  | Ok req ->
      Alcotest.(check string) "method" "GET" req.Http.meth;
      Alcotest.(check string) "body" "" req.Http.body

let http_parse_errors () =
  (match parse_raw "" with
  | Error e -> Alcotest.(check int) "empty" 400 e.Http.status_hint
  | Ok _ -> Alcotest.fail "empty request must not parse");
  (match parse_raw "BROKEN\r\n\r\n" with
  | Error e -> Alcotest.(check int) "bad request line" 400 e.Http.status_hint
  | Ok _ -> Alcotest.fail "bad request line must not parse");
  match parse_raw "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort" with
  | Error e -> Alcotest.(check int) "truncated body" 400 e.Http.status_hint
  | Ok _ -> Alcotest.fail "truncated body must not parse"

let http_response_bytes () =
  let r, w = Unix.pipe () in
  Http.write_response w (Http.response 200 "hi");
  Unix.close w;
  let buf = Buffer.create 64 in
  let chunk = Bytes.create 256 in
  let rec drain () =
    match Unix.read r chunk 0 256 with
    | 0 -> ()
    | n -> Buffer.add_subbytes buf chunk 0 n; drain ()
  in
  drain ();
  Unix.close r;
  let s = Buffer.contents buf in
  assert_contains s "HTTP/1.1 200 OK\r\n";
  assert_contains s "content-length: 2\r\n";
  assert_contains s "connection: close\r\n";
  Alcotest.(check bool) "ends with body" true
    (String.length s > 2 && String.sub s (String.length s - 2) 2 = "hi")

let suite =
  [
    ("json roundtrip", `Quick, json_roundtrip);
    ("json non-finite numbers", `Quick, json_nonfinite);
    ("json unicode escapes", `Quick, json_escapes);
    ("json whitespace/nesting", `Quick, json_whitespace_and_nesting);
    ("json rejects malformed + trailing garbage", `Quick, json_rejects);
    qtest json_fuzz_roundtrip;
    ("cache lru eviction order", `Quick, cache_lru_eviction);
    ("cache hit/miss counters", `Quick, cache_counters);
    ("cache update refreshes recency", `Quick, cache_update_refreshes);
    ("cache concurrent hammering", `Quick, cache_concurrent);
    ("metrics counters and gauges", `Quick, metrics_counters_and_gauges);
    ("metrics histogram buckets", `Quick, metrics_histogram);
    ("metrics label escaping", `Quick, metrics_label_escaping);
    ("metrics kind clash rejected", `Quick, metrics_kind_clash);
    ("metrics label order canonical", `Quick, metrics_label_order);
    ("metrics scalar kind checks", `Quick, metrics_scalar_kinds);
    qtest metrics_histogram_monotone;
    ("http parse basic", `Quick, http_parse_basic);
    ("http parse no body", `Quick, http_parse_no_body);
    ("http parse errors", `Quick, http_parse_errors);
    ("http response bytes", `Quick, http_response_bytes);
  ]
