(* Tests for A^BCC, the baselines and the hardness-equivalence special
   cases (Theorems 3.1 and 3.3). *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Exact = Bcc_core.Exact
module Baselines = Bcc_core.Baselines
module Knapsack = Bcc_knapsack.Knapsack
module Graph = Bcc_graph.Graph
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest
let ps = Fixtures.ps

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]

let small_instance seed =
  let rng = Rng.create (seed * 131) in
  let budget = float_of_int (3 + Rng.int rng 15) in
  Fixtures.random_instance ~seed ~max_len:3 ~num_props:6 ~num_queries:5 ~budget ()

(* --- feasibility / verification --- *)

let solver_always_feasible =
  QCheck.Test.make ~name:"A^BCC output verifies on random instances" ~count:60
    QCheck.small_int (fun seed ->
      let inst = small_instance seed in
      Solution.verify inst (Solver.solve inst))

let baselines_always_feasible =
  QCheck.Test.make ~name:"baseline outputs verify on random instances" ~count:40
    QCheck.small_int (fun seed ->
      let inst = small_instance seed in
      Solution.verify inst (Baselines.rand inst Baselines.Budget)
      && Solution.verify inst (Baselines.ig1 inst Baselines.Budget)
      && Solution.verify inst (Baselines.ig2 inst Baselines.Budget))

(* --- quality vs brute force (the Figure 3d claim: loss < 20%) --- *)

let solver_near_optimal () =
  let ratios =
    List.map
      (fun seed ->
        let inst = small_instance seed in
        let opt = (Exact.solve inst).Solution.utility in
        if opt <= 0.0 then 1.0 else (Solver.solve inst).Solution.utility /. opt)
      seeds
  in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d within 20%% of optimal (got %.0f%%)" i (100. *. r))
        true (r >= 0.8))
    ratios;
  let avg = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
  Alcotest.(check bool) "average above 95%" true (avg >= 0.95)

let solver_beats_baselines_on_average () =
  let margin = ref 0.0 in
  List.iter
    (fun seed ->
      let inst = small_instance seed in
      let ours = (Solver.solve inst).Solution.utility in
      (* RAND is averaged over 5 runs, exactly as in the paper's
         evaluation protocol (Section 6.1). *)
      let rand_avg =
        let runs = List.map (fun s -> (Baselines.rand ~seed:s inst Baselines.Budget).Solution.utility) [ 1; 2; 3; 4; 5 ] in
        List.fold_left ( +. ) 0.0 runs /. 5.0
      in
      let best_baseline =
        List.fold_left max 0.0
          [
            rand_avg;
            (Baselines.ig1 inst Baselines.Budget).Solution.utility;
            (Baselines.ig2 inst Baselines.Budget).Solution.utility;
          ]
      in
      margin := !margin +. (ours -. best_baseline))
    seeds;
  Alcotest.(check bool) "A^BCC at least matches the best baseline in aggregate" true
    (!margin >= -1e-9)

let solver_monotone_in_budget () =
  List.iter
    (fun seed ->
      let inst = small_instance seed in
      let u_small =
        (Solver.solve (Instance.with_budget inst (Instance.budget inst /. 2.0)))
          .Solution.utility
      in
      let u_big =
        (Solver.solve (Instance.with_budget inst (Instance.budget inst *. 2.0)))
          .Solution.utility
      in
      Alcotest.(check bool) "more budget never hurts (A^BCC)" true (u_big +. 1e-9 >= u_small))
    [ 2; 5; 9 ]

let solver_zero_budget () =
  let inst = Instance.with_budget (Fixtures.figure1 ~budget:0.0) 0.0 in
  let sol = Solver.solve inst in
  Alcotest.(check bool) "feasible at zero budget" true (Solution.verify inst sol);
  Alcotest.(check (float 1e-9)) "only free classifiers selected" 0.0 sol.Solution.cost

let solver_huge_budget_covers_all () =
  let inst = Fixtures.figure1 ~budget:1000.0 in
  let sol = Solver.solve inst in
  Alcotest.(check (float 1e-9)) "everything covered" 11.0 sol.Solution.utility

(* --- solver option ablations --- *)

let ablation_options () =
  let base = Solver.default_options in
  List.iter
    (fun seed ->
      let inst = small_instance seed in
      let full = (Solver.solve ~options:base inst).Solution.utility in
      List.iter
        (fun options ->
          let sol = Solver.solve ~options inst in
          Alcotest.(check bool) "ablated variants stay feasible" true
            (Solution.verify inst sol);
          (* The ablated variants cannot be better than 'full' by more
             than the exact optimum allows; sanity: both within optimum. *)
          let opt = (Exact.solve inst).Solution.utility in
          Alcotest.(check bool) "never exceeds the optimum" true
            (sol.Solution.utility <= opt +. 1e-9 && full <= opt +. 1e-9))
        [
          { base with mc3_improve = false };
          { base with prune = false };
          { base with residual_rounds = false };
        ])
    [ 3; 7; 11 ]

(* --- Theorem 3.1: BCC(l=1) = Knapsack --- *)

let theorem_31_knapsack_equivalence =
  QCheck.Test.make ~name:"BCC(l=1) optimum equals the knapsack optimum" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 8 in
      let values = Array.init n (fun _ -> float_of_int (1 + Rng.int rng 9)) in
      let weights = Array.init n (fun _ -> 1 + Rng.int rng 6) in
      let budget = 1 + Rng.int rng 15 in
      let queries = Array.init n (fun i -> (Propset.singleton i, values.(i))) in
      let cost c =
        match Propset.to_list c with [ p ] -> float_of_int weights.(p) | _ -> infinity
      in
      let inst = Instance.create ~budget:(float_of_int budget) ~queries ~cost () in
      let bcc = Exact.solve inst in
      let ks = Knapsack.exact_int ~values ~weights ~budget () in
      abs_float (bcc.Solution.utility -. ks.Knapsack.value) < 1e-9)

(* --- Theorem 3.3: I_2 = DkS --- *)

let theorem_33_dks_equivalence =
  QCheck.Test.make ~name:"I_2 optimum equals the DkS optimum" ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 4 in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Rng.float rng 1.0 < 0.45 then edges := (u, v) :: !edges
        done
      done;
      if !edges = [] then true
      else begin
        let k = 2 + Rng.int rng (n - 2) in
        (* I_2: queries = edges, uniform utility 1; singleton classifiers
           cost 1, everything else infinity; budget = k. *)
        let queries =
          Array.of_list (List.map (fun (u, v) -> (Propset.of_list [ u; v ], 1.0)) !edges)
        in
        let cost c = if Propset.length c = 1 then 1.0 else infinity in
        let inst = Instance.create ~budget:(float_of_int k) ~queries ~cost () in
        let bcc = Exact.solve inst in
        let g = Graph.of_edges n (List.map (fun (u, v) -> (u, v, 1.0)) !edges) in
        let _, dks = Bcc_dks.Exact.dks g ~k in
        abs_float (bcc.Solution.utility -. dks) < 1e-9
      end)

(* --- baselines behaviour --- *)

let rand_deterministic_by_seed () =
  let inst = small_instance 4 in
  let a = Baselines.rand ~seed:5 inst Baselines.Budget in
  let b = Baselines.rand ~seed:5 inst Baselines.Budget in
  Alcotest.(check (float 1e-12)) "same seed, same utility" a.Solution.utility
    b.Solution.utility

let ig_baselines_reasonable () =
  (* On Figure 1 with a generous budget the greedy baselines should cover
     a decent share; RAND at least stays feasible. *)
  let inst = Fixtures.figure1 ~budget:11.0 in
  let ig1 = Baselines.ig1 inst Baselines.Budget in
  let ig2 = Baselines.ig2 inst Baselines.Budget in
  Alcotest.(check bool) "IG1 achieves something" true (ig1.Solution.utility >= 8.0);
  Alcotest.(check bool) "IG2 achieves something" true (ig2.Solution.utility >= 8.0)

let baselines_exhaust_mode_terminates () =
  let inst = small_instance 6 in
  List.iter
    (fun f ->
      let sol = f inst Baselines.Best_ratio in
      Alcotest.(check bool) "best-ratio prefix is a valid solution" true
        (Solution.verify (Instance.with_budget inst infinity) sol))
    [ Baselines.ig1; Baselines.ig2; Baselines.rand ~seed:1 ]

let long_query_chain () =
  (* One length-6 query plus its prefix subqueries: residual rounds must
     assemble the chain (Example 4.8 at depth). *)
  let module P = Propset in
  let queries =
    Array.init 6 (fun i -> (P.of_list (List.init (i + 1) Fun.id), float_of_int (i + 1)))
  in
  let cost c = if P.length c = 1 then 1.0 else infinity in
  let inst = Instance.create ~budget:6.0 ~queries ~cost () in
  let sol = Solver.solve inst in
  Alcotest.(check (float 1e-9)) "all six prefixes covered by the six singletons" 21.0
    sol.Solution.utility;
  Alcotest.(check bool) "verifies" true (Solution.verify inst sol);
  (* Half the budget covers the three cheapest-to-complete prefixes. *)
  let sol3 = Solver.solve (Instance.with_budget inst 3.0) in
  Alcotest.(check (float 1e-9)) "budget 3 covers prefixes 1..3" 6.0 sol3.Solution.utility

let suite =
  [
    qtest solver_always_feasible;
    Alcotest.test_case "long-query chain" `Quick long_query_chain;
    qtest baselines_always_feasible;
    Alcotest.test_case "A^BCC within 20% of brute force" `Slow solver_near_optimal;
    Alcotest.test_case "A^BCC vs baselines (aggregate)" `Slow solver_beats_baselines_on_average;
    Alcotest.test_case "budget monotonicity" `Slow solver_monotone_in_budget;
    Alcotest.test_case "zero budget" `Quick solver_zero_budget;
    Alcotest.test_case "huge budget covers all" `Quick solver_huge_budget_covers_all;
    Alcotest.test_case "option ablations stay sound" `Slow ablation_options;
    qtest theorem_31_knapsack_equivalence;
    qtest theorem_33_dks_equivalence;
    Alcotest.test_case "RAND deterministic by seed" `Quick rand_deterministic_by_seed;
    Alcotest.test_case "greedy baselines on figure1" `Quick ig_baselines_reasonable;
    Alcotest.test_case "best-ratio mode terminates" `Quick baselines_exhaust_mode_terminates;
  ]
