(* The robustness layer: deadline contexts (with an injected fake clock,
   so nothing here sleeps), the fault-injection registry, cooperative
   cancellation through the execution engine, and the solver's graceful
   degradation contract. *)

module Timer = Bcc_util.Timer
module Deadline = Bcc_robust.Deadline
module Fault = Bcc_robust.Fault
module Engine = Bcc_engine.Engine
module Instance = Bcc_core.Instance
module Solver = Bcc_core.Solver
module Solution = Bcc_core.Solution

let qtest = QCheck_alcotest.to_alcotest

(* Run [f] under a settable fake clock starting at [t0]. *)
let with_fake_clock ?(t0 = 1000.0) f =
  let now = Atomic.make t0 in
  Timer.set_source (Some (fun () -> Atomic.get now));
  Fun.protect
    ~finally:(fun () -> Timer.set_source None)
    (fun () -> f (fun t -> Atomic.set now t))

let with_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

(* --- deadlines --- *)

let deadline_basics () =
  Alcotest.(check bool) "none never expires" false (Deadline.expired Deadline.none);
  Alcotest.(check bool) "none remaining infinite" true
    (Deadline.remaining_s Deadline.none = infinity);
  Deadline.check Deadline.none;
  Deadline.cancel Deadline.none;
  Alcotest.(check bool) "none survives cancel" false (Deadline.expired Deadline.none);
  with_fake_clock (fun set ->
      let d = Deadline.after ~label:"unit" 5.0 in
      Alcotest.(check bool) "fresh deadline alive" false (Deadline.expired d);
      Alcotest.(check (float 1e-9)) "remaining" 5.0 (Deadline.remaining_s d);
      set 1004.0;
      Alcotest.(check bool) "still alive at t+4" false (Deadline.expired d);
      set 1005.0;
      Alcotest.(check bool) "expired exactly at kill time" true (Deadline.expired d);
      Alcotest.(check (float 1e-9)) "remaining clamps to zero" 0.0
        (Deadline.remaining_s d);
      (match Deadline.check d with
      | () -> Alcotest.fail "check did not raise"
      | exception Deadline.Expired l -> Alcotest.(check string) "label" "unit" l);
      let c = Deadline.after ~label:"cancelled" 60.0 in
      Deadline.cancel c;
      Alcotest.(check bool) "cancel expires regardless of clock" true
        (Deadline.expired c))

let ambient_binding () =
  with_fake_clock (fun set ->
      Alcotest.(check bool) "default ambient is none" true
        (Deadline.is_none (Deadline.current ()));
      Alcotest.(check bool) "inactive without installs" false (Deadline.active ());
      Deadline.poll ();
      let outer = Deadline.after ~label:"outer" 10.0 in
      Deadline.with_current outer (fun () ->
          Alcotest.(check bool) "outer installed" true (Deadline.current () == outer);
          Alcotest.(check bool) "active with an install" true (Deadline.active ());
          (* A looser inner deadline must NOT extend the outer one. *)
          let loose = Deadline.after ~label:"loose" 100.0 in
          Deadline.with_current loose (fun () ->
              Alcotest.(check string) "tighter (outer) wins" "outer"
                (Deadline.label (Deadline.current ())));
          (* A tighter inner deadline shadows it. *)
          let tight = Deadline.after ~label:"tight" 1.0 in
          Deadline.with_current tight (fun () ->
              Alcotest.(check string) "tight wins" "tight"
                (Deadline.label (Deadline.current ()));
              set 1002.0;
              match Deadline.poll () with
              | () -> Alcotest.fail "poll ignored the expired ambient deadline"
              | exception Deadline.Expired l ->
                  Alcotest.(check string) "poll raises the tight label" "tight" l);
          set 1000.0;
          Alcotest.(check string) "inner scope restored" "outer"
            (Deadline.label (Deadline.current ())));
      Alcotest.(check bool) "ambient restored to none" true
        (Deadline.is_none (Deadline.current ()));
      Alcotest.(check bool) "inactive again" false (Deadline.active ()))

(* --- fault registry --- *)

let fault_registry () =
  with_faults (fun () ->
      Alcotest.check_raises "unknown point rejected"
        (Invalid_argument "Fault.arm: unknown injection point nope") (fun () ->
          Fault.arm "nope" Fault.Throw);
      Alcotest.(check bool) "disabled by default" false (Fault.enabled ());
      Fault.hit "engine.task";
      (* throw, bounded count *)
      Fault.arm ~count:2 "engine.task" Fault.Throw;
      Alcotest.(check bool) "enabled once armed" true (Fault.enabled ());
      let throws = ref 0 in
      for _ = 1 to 5 do
        match Fault.hit "engine.task" with
        | () -> ()
        | exception Fault.Injected p ->
            Alcotest.(check string) "payload is the point" "engine.task" p;
            incr throws
      done;
      Alcotest.(check int) "count bounds the fires" 2 !throws;
      Alcotest.(check int) "fired counter" 2 (Fault.fired "engine.task");
      (* corrupt pairs with [corrupting] and never throws from [hit] *)
      Fault.arm ~count:1 "cache.get" Fault.Corrupt;
      Fault.hit "cache.get";
      Alcotest.(check bool) "corrupt consumed by hit" false (Fault.corrupting "cache.get");
      Fault.arm ~count:1 "cache.get" Fault.Corrupt;
      Alcotest.(check bool) "corrupting fires" true (Fault.corrupting "cache.get");
      Fault.disarm "engine.task";
      Fault.disarm "cache.get";
      Alcotest.(check bool) "disarm-all disables the fast path" false (Fault.enabled ()))

let fault_probability_reproducible () =
  with_faults (fun () ->
      let pattern () =
        Fault.reset ();
        Fault.arm ~prob:0.5 ~seed:42 "qk.restart" Fault.Throw;
        List.init 64 (fun _ ->
            match Fault.hit "qk.restart" with
            | () -> false
            | exception Fault.Injected _ -> true)
      in
      let a = pattern () and b = pattern () in
      Alcotest.(check (list bool)) "seeded firing pattern reproduces" a b;
      let fired = List.length (List.filter Fun.id a) in
      Alcotest.(check bool) "probabilistic: some fire, some don't" true
        (fired > 0 && fired < 64))

let fault_env_parsing () =
  with_faults (fun () ->
      let var = "BCC_FAULTS_TEST" in
      Unix.putenv var "engine.task:throw:1, cache.get:corrupt, qk.restart:delay:0:2:p=0.5:seed=7";
      Fault.load_env ~var ();
      Alcotest.(check bool) "entries armed" true (Fault.enabled ());
      (match Fault.hit "engine.task" with
      | () -> Alcotest.fail "engine.task should throw once"
      | exception Fault.Injected _ -> ());
      Fault.hit "engine.task" (* count exhausted *);
      let s = Fault.summary () in
      Alcotest.(check bool) "summary mentions every armed point" true
        (List.for_all
           (fun needle ->
             let n = String.length needle and m = String.length s in
             let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
             go 0)
           [ "engine.task"; "cache.get"; "qk.restart" ]);
      Fault.reset ();
      Unix.putenv var "engine.task:sploit";
      Alcotest.(check bool) "unknown action is a Failure" true
        (match Fault.load_env ~var () with
        | () -> false
        | exception Failure _ -> true);
      Unix.putenv var "not.a.point:throw";
      Alcotest.(check bool) "unknown point is a Failure" true
        (match Fault.load_env ~var () with
        | () -> false
        | exception Failure _ -> true);
      Unix.putenv var "";
      Fault.load_env ~var ();
      Alcotest.(check bool) "empty var is a no-op" false (Fault.enabled ()))

(* --- engine cancellation --- *)

let with_pool jobs f =
  let pool = if jobs <= 1 then Engine.Pool.seq () else Engine.Pool.domains ~jobs in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) (fun () -> f pool)

(* A batch submitted under an already-cancelled deadline must drain
   without running any task body. *)
let cancelled_batch_runs_nothing jobs () =
  with_pool jobs (fun pool ->
      let ran = Atomic.make 0 in
      let d = Deadline.after ~label:"batch" 60.0 in
      Deadline.cancel d;
      let tasks =
        Deadline.with_current d (fun () ->
            List.init 16 (fun i ->
                Engine.Task.make ~label:(Printf.sprintf "t%d" i) (fun _ ->
                    Atomic.incr ran)))
      in
      (match Engine.Portfolio.collect pool tasks with
      | _ -> Alcotest.fail "cancelled batch returned results"
      | exception Deadline.Expired l -> Alcotest.(check string) "label" "batch" l);
      Alcotest.(check int) "no task body ran" 0 (Atomic.get ran);
      (* The pool is still healthy for the next batch. *)
      let ok = Engine.Portfolio.collect pool [ Engine.Task.make (fun _ -> 41 + 1) ] in
      Alcotest.(check (list int)) "pool serviceable after cancellation" [ 42 ] ok)

(* Cancelling mid-batch: tasks claimed after the cancel are skipped.
   Task 2 cancels the deadline; tasks 3+ block on [gate] until the
   cancel is visible, so a worker can be *in* a late task when the axe
   falls (it finishes) but can never claim more than one afterwards —
   the executed count is bounded by the in-flight window, not luck. *)
let midbatch_cancellation jobs () =
  with_pool jobs (fun pool ->
      let ran = Atomic.make 0 in
      let gate = Atomic.make false in
      let d = Deadline.after ~label:"mid" 60.0 in
      let n = 64 in
      let tasks =
        Deadline.with_current d (fun () ->
            List.init n (fun i ->
                Engine.Task.make ~label:(Printf.sprintf "m%d" i) (fun _ ->
                    Atomic.incr ran;
                    if i = 2 then begin
                      Deadline.cancel d;
                      Atomic.set gate true
                    end
                    else if i > 2 then
                      while not (Atomic.get gate) do
                        Domain.cpu_relax ()
                      done)))
      in
      (match Engine.Portfolio.collect pool tasks with
      | _ -> Alcotest.fail "batch ignored the mid-flight cancel"
      | exception Deadline.Expired _ -> ());
      (* 3 tasks before the cancel plus at most one in-flight task per
         runner (jobs workers + the participating caller). *)
      Alcotest.(check bool)
        (Printf.sprintf "ran %d of %d, remainder drained" (Atomic.get ran) n)
        true
        (Atomic.get ran >= 3 && Atomic.get ran <= 3 + jobs + 1))

let per_task_timeout () =
  with_pool 1 (fun pool ->
      (* timeout_s measured from task start: an already-elapsed budget of
         0 expires at the first poll inside the body. *)
      let t =
        Engine.Task.make ~label:"timed" ~timeout_s:0.0 (fun _ ->
            Deadline.poll ();
            Alcotest.fail "poll ignored the per-task timeout")
      in
      match Engine.Portfolio.collect pool [ t ] with
      | _ -> Alcotest.fail "timeout did not surface"
      | exception Deadline.Expired l ->
          Alcotest.(check string) "timeout label" "timed.timeout" l)

let engine_cancelled_counter () =
  let before =
    List.assoc (Engine.Seq, `Cancelled) (Engine.task_counts ())
  in
  with_pool 1 (fun pool ->
      let d = Deadline.after ~label:"ctr" 60.0 in
      Deadline.cancel d;
      let t = Deadline.with_current d (fun () -> Engine.Task.make (fun _ -> ())) in
      (try ignore (Engine.Portfolio.collect pool [ t ]) with Deadline.Expired _ -> ()));
  let after = List.assoc (Engine.Seq, `Cancelled) (Engine.task_counts ()) in
  Alcotest.(check int) "cancelled outcome counted" (before + 1) after

(* --- solver degradation --- *)

let same_solution msg (a : Solution.t) (b : Solution.t) =
  Alcotest.(check (float 1e-9)) (msg ^ ": utility") a.Solution.utility b.Solution.utility;
  Alcotest.(check (float 1e-9)) (msg ^ ": cost") a.Solution.cost b.Solution.cost;
  Alcotest.(check int) (msg ^ ": classifier count")
    (List.length a.Solution.classifiers)
    (List.length b.Solution.classifiers)

let solve_within_none_is_solve () =
  let check inst =
    let plain = Solver.solve inst in
    let o = Solver.solve_within ~deadline:Deadline.none inst in
    Alcotest.(check bool) "not degraded" false o.Solver.degraded;
    same_solution "none deadline is bit-identical" plain o.Solver.solution
  in
  check (Fixtures.figure1 ~budget:4.0);
  check (Fixtures.random_instance ~seed:7 ~budget:20.0 ())

let expired_deadline_degrades () =
  let inst = Fixtures.figure1 ~budget:4.0 in
  List.iter
    (fun deadline ->
      let o = Solver.solve_within ~deadline inst in
      Alcotest.(check bool) "flagged degraded" true o.Solver.degraded;
      Alcotest.(check bool) "still budget-feasible and verified" true
        (Solution.verify inst o.Solver.solution);
      Alcotest.(check bool) "cost within budget" true
        (o.Solver.solution.Solution.cost <= Instance.budget inst +. 1e-9))
    [
      Deadline.after ~label:"elapsed" 0.0;
      (let d = Deadline.after ~label:"cancelled" 60.0 in
       Deadline.cancel d;
       d);
    ]

let degraded_solves_feasible_q =
  QCheck.Test.make ~name:"degraded solve is always budget-feasible" ~count:60
    QCheck.small_int (fun seed ->
      let budget = float_of_int (3 + (seed mod 17)) in
      let inst = Fixtures.random_instance ~seed ~budget () in
      let o = Solver.solve_within ~deadline:(Deadline.after 0.0) inst in
      o.Solver.degraded
      && Solution.verify inst o.Solver.solution
      && o.Solver.solution.Solution.cost <= budget +. 1e-9)

let suite =
  [
    ("deadline basics (fake clock)", `Quick, deadline_basics);
    ("ambient deadline: tighter wins, restores", `Quick, ambient_binding);
    ("fault registry: arm/count/corrupt/disarm", `Quick, fault_registry);
    ("fault probability is seed-reproducible", `Quick, fault_probability_reproducible);
    ("BCC_FAULTS parsing and errors", `Quick, fault_env_parsing);
    ("cancelled batch runs nothing (seq)", `Quick, cancelled_batch_runs_nothing 1);
    ("cancelled batch runs nothing (domains)", `Quick, cancelled_batch_runs_nothing 3);
    ("mid-batch cancel drains the remainder (seq)", `Quick, midbatch_cancellation 1);
    ("mid-batch cancel drains the remainder (domains)", `Quick, midbatch_cancellation 3);
    ("per-task timeout", `Quick, per_task_timeout);
    ("cancelled tasks counted as cancelled", `Quick, engine_cancelled_counter);
    ("solve_within none = solve", `Quick, solve_within_none_is_solve);
    ("expired deadline degrades gracefully", `Quick, expired_deadline_degrades);
    qtest degraded_solves_feasible_q;
  ]
