(* bcc — command-line front end for the Budgeted Classifier Construction
   library.

   Subcommands:
     generate   produce a dataset file (bestbuy | private | synthetic)
     stats      print workload statistics for an instance file
     solve      run A^BCC (or a baseline) on an instance file
     compare    run A^BCC and all baselines across budgets
     gmc3       minimum-cost classifier set reaching a utility target
     ecc        best utility-to-cost ratio classifier set
     remote     POST an instance file to a running bccd (with --tenant) *)

open Cmdliner
module Instance = Bcc_core.Instance
module Partial = Bcc_core.Partial
module Overlap = Bcc_core.Overlap
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Baselines = Bcc_core.Baselines
module Gmc3 = Bcc_core.Gmc3
module Ecc = Bcc_core.Ecc
module Io = Bcc_data.Io
module Workload_stats = Bcc_data.Workload_stats
module Texttable = Bcc_util.Texttable

(* --- shared args --- *)

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Instance file.")

let budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "b"; "budget" ] ~docv:"BUDGET" ~doc:"Override the instance budget.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log solver progress (same as --log-level debug).")

let log_level_arg =
  let levels =
    [
      ("debug", Logs.Debug);
      ("info", Logs.Info);
      ("warning", Logs.Warning);
      ("error", Logs.Error);
    ]
  in
  Arg.(
    value
    & opt (some (enum levels)) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Stderr log verbosity: $(b,debug), $(b,info), $(b,warning) or $(b,error).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON of the run to FILE (load in \
              chrome://tracing or Perfetto).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ] ~doc:"Print a per-stage wall-time summary when done.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for solver portfolios (QK restarts, heuristic \
              arms, round races).  Results are bit-identical at any value; \
              defaults to $(b,BCC_JOBS) or sequential execution.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Print the solver's anytime progress to stderr: one line per \
              incumbent update (round, winning arm, utility, cost, budget \
              slack).  Results are bit-identical with or without it.")

let event_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "event-log" ] ~docv:"FILE"
        ~doc:"Write every wide telemetry event of the run (solve lifecycle, \
              anytime incumbent updates, the closing solve report) as one \
              JSONL line to FILE.")

(* Shared observability setup.  Evaluating the term configures logging,
   tracing and the execution-engine pool, and yields a [finish] closure
   the subcommand calls after its work to flush the trace file and the
   profile summary. *)
let obs_term =
  let setup verbose level trace profile progress event_log jobs =
    let level =
      match level with
      | Some l -> l
      | None -> if verbose then Logs.Debug else Logs.Warning
    in
    Bcc_obs.Log_reporter.install ~level ();
    (* Entry-point opt-in for fault injection (libraries never read the
       environment); malformed BCC_FAULTS is a usage error. *)
    (match Bcc_robust.Fault.load_env () with
    | () -> ()
    | exception Failure msg ->
        prerr_endline ("bcc: " ^ msg);
        exit 2);
    (match jobs with
    | Some n -> Bcc_engine.Engine.set_default_jobs n
    | None -> ());
    if trace <> None then Bcc_obs.Trace.set_tracing ~capacity:65_536 true;
    if profile then Bcc_obs.Trace.set_profiling true;
    if progress || event_log <> None then begin
      Bcc_obs.Event.set_enabled true;
      (match event_log with
      | Some file -> Bcc_obs.Event.log_to_file file
      | None -> ());
      (* Live anytime ticker: decode each incumbent update back out of
         the event stream (events are the single source of truth; the
         solver has no CLI-specific hook). *)
      if progress then
        Bcc_obs.Event.add_sink ~name:"progress" (fun e ->
            match Bcc_obs.Progress.incumbent_of_event e with
            | Some i ->
                Printf.eprintf
                  "progress: round %d  arm %-9s utility %10.1f  cost %10.1f  slack %10.1f\n%!"
                  i.Bcc_obs.Progress.round i.Bcc_obs.Progress.arm
                  i.Bcc_obs.Progress.utility i.Bcc_obs.Progress.cost
                  i.Bcc_obs.Progress.budget_slack
            | None -> ())
    end;
    fun () ->
      (match trace with
      | Some file ->
          let oc = open_out file in
          output_string oc (Bcc_obs.Trace.chrome_json (Bcc_obs.Trace.spans ()));
          close_out oc;
          Format.printf "wrote trace to %s@." file
      | None -> ());
      (match event_log with
      | Some file ->
          Bcc_obs.Event.close_log ();
          Format.printf "wrote event log to %s@." file
      | None -> ());
      if profile then print_string (Bcc_obs.Stage.summary ())
  in
  Term.(
    const setup $ verbose_arg $ log_level_arg $ trace_arg $ profile_arg $ progress_arg
    $ event_log_arg $ jobs_arg)

let load_instance file budget =
  let inst = Io.load file in
  match budget with Some b -> Instance.with_budget inst b | None -> inst

let pp_solution inst sol =
  Format.printf "%a@." (Solution.pp ?names:(Instance.names inst)) sol;
  Format.printf "verified: %b@." (Solution.verify inst sol)

(* --- generate --- *)

let generate_cmd =
  let dataset =
    Arg.(
      required
      & pos 0 (some (enum [ ("bestbuy", `Bestbuy); ("private", `Private); ("synthetic", `Synthetic) ])) None
      & info [] ~docv:"DATASET" ~doc:"One of bestbuy, private, synthetic.")
  in
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output file.")
  in
  let queries =
    Arg.(
      value & opt (some int) None
      & info [ "n"; "queries" ] ~docv:"N" ~doc:"Number of queries (synthetic/private).")
  in
  let budget =
    Arg.(value & opt float 1000.0 & info [ "b"; "budget" ] ~docv:"BUDGET" ~doc:"Budget.")
  in
  let run dataset out queries budget seed =
    let inst =
      match dataset with
      | `Bestbuy -> Bcc_data.Bestbuy.generate ~seed ~budget ()
      | `Private ->
          let params =
            match queries with
            | Some n -> { Bcc_data.Private_like.default_params with num_queries = n }
            | None -> Bcc_data.Private_like.default_params
          in
          Bcc_data.Private_like.generate ~params ~seed ~budget ()
      | `Synthetic ->
          let params =
            match queries with
            | Some n -> { Bcc_data.Synthetic.default_params with num_queries = n }
            | None -> { Bcc_data.Synthetic.default_params with num_queries = 10_000 }
          in
          Bcc_data.Synthetic.generate ~params ~seed ~budget ()
    in
    Io.save out inst;
    Format.printf "%a@.wrote %s@." Instance.pp_summary inst out
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a dataset file.")
    Term.(const run $ dataset $ out $ queries $ budget $ seed_arg)

(* --- stats --- *)

let stats_cmd =
  let run file =
    let inst = Io.load file in
    Format.printf "%a@.%a@." Instance.pp_summary inst Workload_stats.pp
      (Workload_stats.compute inst)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print workload statistics.") Term.(const run $ file_arg)

(* --- solve --- *)

let algo_arg =
  Arg.(
    value
    & opt
        (enum [ ("abcc", `Abcc); ("rand", `Rand); ("ig1", `Ig1); ("ig2", `Ig2) ])
        `Abcc
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc:"abcc (default), rand, ig1 or ig2.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Deadline for the solve.  On expiry the best feasible solution \
              found so far is printed and marked degraded; without this flag \
              results are bit-identical to older builds.")

let solve_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Save the solution to a file.")
  in
  let warm =
    Arg.(
      value
      & opt (some string) None
      & info [ "warm" ] ~docv:"FILE"
          ~doc:"Warm-start A^BCC from a previously saved solution (see \
                --save-solution).  The file is re-validated against this \
                instance — selections that no longer exist or no longer fit \
                the budget are dropped — and the result never trails the \
                re-validated seed.  Ignored by the baseline algorithms.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-solution" ] ~docv:"FILE"
          ~doc:"Save the solution in the workload-store codec (interchangeable \
                with --output's format) for a later --warm.")
  in
  let explain_reuse =
    Arg.(
      value & flag
      & info [ "explain-reuse" ]
          ~doc:"Solve through the staged incremental pipeline and print a \
                per-component table: content fingerprint, queries, spend cap, \
                whether the budget curve came from the --artifacts cache, and \
                compute time.  abcc only.")
  in
  let artifacts =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"FILE"
          ~doc:"File-backed pipeline artifact cache: component curves are \
                loaded from FILE before the solve and the updated set is \
                written back after.  Curves are keyed by content fingerprint, \
                so a stale or torn file can only cause recomputation, never a \
                wrong answer.  Implies the pipeline path (as --explain-reuse).")
  in
  let run finish file budget algo seed out timeout warm save explain_reuse artifacts =
    let inst = load_instance file budget in
    let deadline =
      match timeout with
      | Some s -> Bcc_robust.Deadline.after ~label:"cli" s
      | None -> Bcc_robust.Deadline.none
    in
    let warm_sol =
      match warm with
      | None -> None
      | Some path -> (
          let text = In_channel.with_open_bin path In_channel.input_all in
          match Bcc_store.Codec.solution_of_string inst text with
          | seed ->
              Format.printf "warm seed: %d classifiers, utility %.2f after re-validation@."
                (List.length seed.Solution.classifiers)
                seed.Solution.utility;
              Some seed
          | exception Failure msg ->
              prerr_endline ("bcc: bad --warm file: " ^ msg);
              exit 2)
    in
    (* Stamp the run with a correlation id when telemetry is on, so an
       --event-log file groups the same way the daemon's flight recorder
       does.  Observation only: the solve itself is unchanged. *)
    let with_corr f =
      if Bcc_obs.Event.enabled () then
        Bcc_obs.Event.with_corr (Bcc_obs.Event.new_corr ()) f
      else f ()
    in
    let pipeline = explain_reuse || artifacts <> None in
    if pipeline && algo <> `Abcc then begin
      prerr_endline "bcc: --explain-reuse/--artifacts apply to --algorithm abcc only";
      exit 2
    end;
    let solve_pipeline () =
      let module Pipeline = Bcc_core.Pipeline in
      let module Solve_ctx = Bcc_core.Solve_ctx in
      let module Codec = Bcc_store.Codec in
      (* The file-backed cache is a flat fingerprint -> payload table in
         the store codec's checksummed framing; fingerprints self-
         validate, so any stale or torn record just misses. *)
      let table : (string, string) Hashtbl.t = Hashtbl.create 16 in
      (match artifacts with
      | Some path when Sys.file_exists path ->
          let text = In_channel.with_open_bin path In_channel.input_all in
          let records, _ = Codec.decode text in
          List.iter
            (fun (r : Codec.record) ->
              if r.Codec.kind = "artifact" then
                match String.index_opt r.Codec.payload '\n' with
                | Some i ->
                    Hashtbl.replace table
                      (String.sub r.Codec.payload 0 i)
                      (String.sub r.Codec.payload (i + 1)
                         (String.length r.Codec.payload - i - 1))
                | None -> ())
            records
      | _ -> ());
      let cache =
        Solve_ctx.cache
          ~find:(fun fp -> Hashtbl.find_opt table fp)
          ~store:(fun fp payload -> Hashtbl.replace table fp payload)
          ()
      in
      let ctx = Solve_ctx.make ~deadline ?warm:warm_sol ~cache () in
      let r = Pipeline.solve ctx inst in
      (match artifacts with
      | Some path ->
          let entries =
            Hashtbl.fold (fun fp payload acc -> (fp, payload) :: acc) table []
            |> List.sort compare
          in
          Out_channel.with_open_bin path (fun oc ->
              List.iter
                (fun (fp, payload) ->
                  Out_channel.output_string oc
                    (Codec.encode
                       {
                         Codec.kind = "artifact";
                         generation = "cli";
                         epoch = 0;
                         payload = fp ^ "\n" ^ payload;
                       }))
                entries);
          Format.printf "wrote %d artifacts to %s@." (List.length entries) path
      | None -> ());
      if explain_reuse then begin
        let table =
          Texttable.create
            [ "component"; "queries"; "cap"; "curve"; "best utility"; "wall (ms)" ]
        in
        List.iter
          (fun (c : Pipeline.component_report) ->
            Texttable.add_row table
              [
                String.sub c.Pipeline.fingerprint 0 12;
                string_of_int c.Pipeline.num_queries;
                Printf.sprintf "%.1f" c.Pipeline.cap;
                (if c.Pipeline.reused then "reused" else "computed");
                Printf.sprintf "%.1f" c.Pipeline.best_utility;
                Printf.sprintf "%.1f" (1000.0 *. c.Pipeline.comp_wall_s);
              ])
          r.Pipeline.components;
        Texttable.print table;
        Format.printf "components: %d  reused: %d  wall: %.3fs@."
          r.Pipeline.components_total r.Pipeline.components_reused r.Pipeline.wall_s
      end;
      r.Pipeline.outcome
    in
    let sol =
      with_corr @@ fun () ->
      match algo with
      | `Abcc ->
          let r =
            if pipeline then solve_pipeline ()
            else Solver.solve_within ?warm:warm_sol ~deadline inst
          in
          if r.Solver.degraded then
            Format.printf "degraded: deadline hit, best incumbent shown@.";
          r.Solver.solution
      | `Rand -> Baselines.rand ~seed inst Baselines.Budget
      | `Ig1 -> Baselines.ig1 inst Baselines.Budget
      | `Ig2 -> Baselines.ig2 inst Baselines.Budget
    in
    pp_solution inst sol;
    (match out with
    | Some path ->
        Io.save_solution path inst sol;
        Format.printf "wrote %s@." path
    | None -> ());
    (match save with
    | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (Bcc_store.Codec.solution_to_string inst sol));
        Format.printf "saved solution to %s@." path
    | None -> ());
    finish ()
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve the BCC problem on an instance file.")
    Term.(
      const run $ obs_term $ file_arg $ budget_arg $ algo_arg $ seed_arg $ out
      $ timeout_arg $ warm $ save $ explain_reuse $ artifacts)

(* --- compare --- *)

let compare_cmd =
  let budgets =
    Arg.(
      value
      & opt (list float) []
      & info [ "budgets" ] ~docv:"B1,B2,..." ~doc:"Budgets to sweep (default: instance budget).")
  in
  let run finish file budgets =
    let inst = Io.load file in
    let budgets = if budgets = [] then [ Instance.budget inst ] else budgets in
    let table = Texttable.create [ "budget"; "RAND"; "IG1"; "IG2"; "A^BCC" ] in
    List.iter
      (fun b ->
        let inst = Instance.with_budget inst b in
        let u sol = Printf.sprintf "%.0f" sol.Solution.utility in
        Texttable.add_row table
          [
            Printf.sprintf "%.0f" b;
            u (Baselines.rand inst Baselines.Budget);
            u (Baselines.ig1 inst Baselines.Budget);
            u (Baselines.ig2 inst Baselines.Budget);
            u (Solver.solve inst);
          ])
      budgets;
    Texttable.print table;
    finish ()
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare A^BCC against the baselines across budgets.")
    Term.(const run $ obs_term $ file_arg $ budgets)

(* --- gmc3 --- *)

let gmc3_cmd =
  let target =
    Arg.(
      required & opt (some float) None
      & info [ "t"; "target" ] ~docv:"UTILITY" ~doc:"Utility target to reach.")
  in
  let run finish file target =
    let inst = Io.load file in
    let r = Gmc3.solve inst ~target in
    Format.printf "reached: %b (budget used: %.1f)@." r.Gmc3.reached r.Gmc3.budget_used;
    pp_solution (Instance.with_budget inst infinity) r.Gmc3.solution;
    finish ()
  in
  Cmd.v
    (Cmd.info "gmc3" ~doc:"Minimum-cost classifier set reaching a utility target.")
    Term.(const run $ obs_term $ file_arg $ target)

(* --- ecc --- *)

let ecc_cmd =
  let run finish file =
    let inst = Io.load file in
    let sol = Ecc.solve inst in
    Format.printf "best utility/cost ratio: %.3f@." (Ecc.ratio_of sol);
    pp_solution (Instance.with_budget inst infinity) sol;
    finish ()
  in
  Cmd.v
    (Cmd.info "ecc" ~doc:"Classifier set maximizing the utility-to-cost ratio.")
    Term.(const run $ obs_term $ file_arg)

(* --- partial / overlap extensions --- *)

let partial_cmd =
  let credit =
    Arg.(
      value
      & opt (some float) None
      & info [ "linear" ] ~docv:"ALPHA" ~doc:"Linear partial credit factor (default 0.5).")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"THETA" ~doc:"Threshold credit instead of linear.")
  in
  let run finish file budget linear threshold =
    let inst = load_instance file budget in
    let credit =
      match (linear, threshold) with
      | _, Some theta -> Partial.Threshold theta
      | Some alpha, None -> Partial.Linear alpha
      | None, None -> Partial.Linear 0.5
    in
    let r = Partial.solve ~credit inst in
    Format.printf "credited utility: %.2f@." r.Partial.credited;
    pp_solution inst r.Partial.solution;
    finish ()
  in
  Cmd.v
    (Cmd.info "partial" ~doc:"Solve under partial-cover utilities (Section 8 extension).")
    Term.(const run $ obs_term $ file_arg $ budget_arg $ credit $ threshold)

let overlap_cmd =
  let beta =
    Arg.(
      value & opt float 0.3
      & info [ "beta" ] ~docv:"BETA" ~doc:"Shared-training-data discount factor.")
  in
  let run finish file budget beta =
    let inst = load_instance file budget in
    let r = Overlap.solve ~beta inst in
    Format.printf "overlap-discounted cost: %.2f (budget %.2f)@." r.Overlap.overlap_cost
      (Instance.budget inst);
    pp_solution (Instance.with_budget inst infinity) r.Overlap.solution;
    finish ()
  in
  Cmd.v
    (Cmd.info "overlap" ~doc:"Solve under overlapping construction costs (Section 8 extension).")
    Term.(const run $ obs_term $ file_arg $ budget_arg $ beta)

let ingest_cmd =
  let log_file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG" ~doc:"Query log (TSV).")
  in
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output instance file.")
  in
  let budget =
    Arg.(value & opt float 1000.0 & info [ "b"; "budget" ] ~docv:"BUDGET" ~doc:"Budget.")
  in
  let run log_file out budget =
    let inst, stats = Bcc_data.Log_parser.load ~budget log_file in
    Format.printf "parsed %d lines -> %d distinct queries (%d dropped as too long)@."
      stats.Bcc_data.Log_parser.lines stats.Bcc_data.Log_parser.queries
      stats.Bcc_data.Log_parser.dropped_too_long;
    Io.save out inst;
    Format.printf "%a@.wrote %s@." Instance.pp_summary inst out
  in
  Cmd.v
    (Cmd.info "ingest" ~doc:"Build an instance from a raw search-query log.")
    Term.(const run $ log_file $ out $ budget)

(* --- remote: drive a running bccd over its HTTP/1.1 wire format --- *)

(* One-shot POST; the daemon closes the connection after the response,
   so reading to EOF yields the full reply. *)
let http_post ~host ~port ~path ~headers body =
  let addr =
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
    with
    | ai :: _ -> ai.Unix.ai_addr
    | [] -> failwith (Printf.sprintf "cannot resolve %s:%d" host port)
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      let buf = Buffer.create (String.length body + 256) in
      Buffer.add_string buf (Printf.sprintf "POST %s HTTP/1.1\r\n" path);
      Buffer.add_string buf (Printf.sprintf "Host: %s:%d\r\n" host port);
      Buffer.add_string buf
        (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        headers;
      Buffer.add_string buf "Connection: close\r\n\r\n";
      Buffer.add_string buf body;
      let out = Buffer.contents buf in
      let n = String.length out in
      let rec send off =
        if off < n then send (off + Unix.write_substring fd out off (n - off))
      in
      send 0;
      let rbuf = Bytes.create 65536 in
      let resp = Buffer.create 4096 in
      let rec recv () =
        let k = Unix.read fd rbuf 0 (Bytes.length rbuf) in
        if k > 0 then begin
          Buffer.add_subbytes resp rbuf 0 k;
          recv ()
        end
      in
      recv ();
      let raw = Buffer.contents resp in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> Option.value ~default:0 (int_of_string_opt (String.trim code))
        | _ -> 0
      in
      let len = String.length raw in
      let rec body_at i =
        if i + 3 >= len then len
        else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
                && raw.[i + 3] = '\n'
        then i + 4
        else body_at (i + 1)
      in
      let split = body_at 0 in
      let head = String.lowercase_ascii (String.sub raw 0 split) in
      let retry_after =
        List.find_map
          (fun line ->
            match String.index_opt line ':' with
            | Some i when String.sub line 0 i = "retry-after" ->
                int_of_string_opt
                  (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
            | _ -> None)
          (String.split_on_char '\n'
             (String.map (function '\r' -> '\n' | c -> c) head))
      in
      (status, retry_after, String.sub raw split (len - split)))

let remote_cmd =
  let host_a =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon address.")
  in
  let port_a =
    Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Daemon port.")
  in
  let endpoint_a =
    Arg.(
      value
      & opt (enum [ ("solve", "/solve"); ("gmc3", "/gmc3"); ("ecc", "/ecc") ]) "/solve"
      & info [ "endpoint" ] ~docv:"EP"
          ~doc:"Daemon endpoint: $(b,solve), $(b,gmc3) or $(b,ecc).")
  in
  let tenant_a =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Tenant this request is billed to for fair-share admission \
                (sent as the x-bcc-tenant header); unnamed requests share \
                the \"default\" tenant.")
  in
  let target_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "target" ] ~docv:"U" ~doc:"Utility target (gmc3 endpoint).")
  in
  let timeout_ms_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline; the daemon prunes the request from its \
                queue once expired and degrades an in-flight solve.")
  in
  let run file host port path tenant budget target timeout_ms =
    let body = In_channel.with_open_bin file In_channel.input_all in
    let query =
      List.filter_map
        (fun (k, v) -> Option.map (fun v -> Printf.sprintf "%s=%.17g" k v) v)
        [ ("budget", budget); ("target", target); ("timeout_ms", timeout_ms) ]
    in
    let path = match query with [] -> path | q -> path ^ "?" ^ String.concat "&" q in
    let headers =
      match tenant with Some t -> [ ("x-bcc-tenant", t) ] | None -> []
    in
    match http_post ~host ~port ~path ~headers body with
    | exception Unix.Unix_error (e, _, _) ->
        `Error (false, Printf.sprintf "cannot reach %s:%d: %s" host port
                  (Unix.error_message e))
    | exception Failure msg -> `Error (false, msg)
    | 200, _, resp_body ->
        print_string resp_body;
        if resp_body = "" || resp_body.[String.length resp_body - 1] <> '\n' then
          print_newline ();
        `Ok ()
    | 429, retry_after, resp_body ->
        Printf.eprintf "busy (429%s): %s\n"
          (match retry_after with
          | Some s -> Printf.sprintf ", retry in %ds" s
          | None -> "")
          (String.trim resp_body);
        `Error (false, "server busy")
    | status, _, resp_body ->
        `Error (false, Printf.sprintf "HTTP %d: %s" status (String.trim resp_body))
  in
  Cmd.v
    (Cmd.info "remote"
       ~doc:"POST an instance file to a running bccd and print the JSON solution.")
    Term.(
      ret
        (const run $ file_arg $ host_a $ port_a $ endpoint_a $ tenant_a
       $ budget_arg $ target_a $ timeout_ms_a))

let e2e_cmd =
  let items =
    Arg.(value & opt int 20_000 & info [ "items" ] ~docv:"N" ~doc:"Catalog size.")
  in
  let budget =
    Arg.(value & opt float 120.0 & info [ "b"; "budget" ] ~docv:"BUDGET" ~doc:"Budget.")
  in
  let run finish items budget seed =
    let params = { Bcc_catalog.Catalog.default_params with num_items = items } in
    let catalog = Bcc_catalog.Catalog.generate ~params ~seed () in
    let wparams = { Bcc_catalog.Pipeline.default_workload with budget } in
    let report = Bcc_catalog.Pipeline.run ~params:wparams catalog ~seed:(seed + 1) in
    Format.printf "%a@." Bcc_catalog.Pipeline.pp_report report;
    finish ()
  in
  Cmd.v
    (Cmd.info "e2e" ~doc:"End-to-end simulation: solve, construct, measure result sets.")
    Term.(const run $ obs_term $ items $ budget $ seed_arg)

let () =
  let doc = "Budgeted Classifier Construction (SIGMOD 2022) toolkit" in
  let info = Cmd.info "bcc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; stats_cmd; solve_cmd; compare_cmd; gmc3_cmd; ecc_cmd;
            partial_cmd; overlap_cmd; e2e_cmd; ingest_cmd; remote_cmd;
          ]))
