(* bccd — resident BCC solver daemon.

   Serves POST /solve, /gmc3, /ecc, the /workloads store family, plus
   GET /instances, /healthz, /metrics, /debug/trace, /debug/solves and
   /debug/sched over plain HTTP/1.1 (see lib/server/server.mli for the
   wire format).  Solve traffic is admitted through a multi-tenant
   batch scheduler: identical concurrent requests coalesce into one
   computation and tenants (--tenant-weight) share the workers by
   weighted deficit round-robin.
   Every request is answered with an X-Bcc-Trace-Id correlation header
   that keys its record in the /debug/solves flight recorder; --event-log
   streams the wide events to a JSONL file and --debug-dir dumps slow or
   degraded solves automatically.  With --state-dir, workloads are
   journaled to disk and recovered on restart.  SIGINT/SIGTERM trigger a
   graceful shutdown that drains in-flight solves before exiting. *)

open Cmdliner
module Server = Bcc_server.Server

let port_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.port
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen port; 0 picks an ephemeral port.")

let host_arg =
  Arg.(
    value
    & opt string Server.default_config.Server.host
    & info [ "host" ] ~docv:"ADDR" ~doc:"Listen address.")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:"Worker threads; 0 sizes the pool to the machine (recommended domain count).")

let queue_depth_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.queue_depth
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:"Bounded request queue; further connections get 429 with retry-after.")

let cache_entries_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.cache_entries
    & info [ "cache-entries" ] ~docv:"N"
        ~doc:"Capacity of the instance and solution LRU caches.")

let timeout_arg =
  Arg.(
    value
    & opt float Server.default_config.Server.timeout_s
    & info [ "t"; "timeout" ] ~docv:"SECONDS"
        ~doc:"Socket read/write timeout and maximum queue wait per request.")

let load_arg =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string string) []
    & info [ "load" ] ~docv:"NAME=FILE"
        ~doc:"Preload an instance file under NAME (repeatable); clients may then \
              POST {\"instance\": \"NAME\"} instead of a full instance body.")

let trace_buffer_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.trace_spans
    & info [ "trace-buffer" ] ~docv:"N"
        ~doc:"Span ring-buffer capacity backing GET /debug/trace and the per-stage \
              latency histograms; 0 disables tracing and profiling entirely.")

let event_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "event-log" ] ~docv:"FILE"
        ~doc:"Append every wide telemetry event (request lifecycle, solver anytime \
              progress, store commits) as one JSONL line to FILE (truncated at \
              startup).")

let debug_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "debug-dir" ] ~docv:"DIR"
        ~doc:"Flight-recorder dump directory: a solve that finishes degraded or \
              slower than 1s is written to DIR/<trace-id>.jsonl (events then spans) \
              for post-mortem inspection.")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:"Durable workload-store directory (snapshots + journals); created if \
              missing, replayed at startup.  Without it the /workloads store is \
              in-memory only.")

let sched_concurrency_arg =
  Arg.(
    value & opt int 0
    & info [ "sched-concurrency" ] ~docv:"N"
        ~doc:"Concurrently executing solve batches; 0 auto-sizes to workers - 1 \
              so one worker stays free to coalesce arrivals into the next batch.")

let tenant_depth_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.tenant_depth
    & info [ "tenant-depth" ] ~docv:"N"
        ~doc:"Max queued solve requests per tenant; beyond it the tenant gets 429 \
              with a retry-after hint.")

let tenant_weight_arg =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string int) []
    & info [ "tenant-weight" ] ~docv:"NAME=W"
        ~doc:"Fair-share weight of tenant NAME (repeatable); unlisted tenants \
              weigh 1.  A weight-2 tenant is dispatched twice as often under \
              contention.")

let curve_cache_mb_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.curve_cache_mb
    & info [ "curve-cache-mb" ] ~docv:"MIB"
        ~doc:"Byte budget of the process-wide curve cache the incremental \
              pipeline shares across workloads; least-recently-used artifacts \
              are evicted beyond it.")

let route_to_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "route-to"; "router" ] ~docv:"HOST:PORT,..."
        ~doc:"Run this node as a cluster router in front of the listed bccd \
              shards: workloads are rendezvous-hashed onto shards, stateless \
              solves fail over (and hedge) across them, store traffic is \
              owner-only with 503+retry-after while the owner is down.")

let hedge_delay_ms_arg =
  Arg.(
    value & opt float 50.0
    & info [ "hedge-delay-ms" ] ~docv:"MS"
        ~doc:"Router only: hedge an idempotent read onto the backup shard when \
              the primary has not answered within MS milliseconds.")

let log_level_arg =
  let levels =
    [
      ("debug", Logs.Debug);
      ("info", Logs.Info);
      ("warning", Logs.Warning);
      ("error", Logs.Error);
    ]
  in
  Arg.(
    value
    & opt (enum levels) Logs.Warning
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Stderr log verbosity: $(b,debug), $(b,info), $(b,warning) or $(b,error).")

let run host port workers queue_depth cache_entries timeout preload trace_spans state_dir
    event_log debug_dir sched_concurrency tenant_depth tenant_weights curve_cache_mb
    route_to hedge_delay_ms level =
  Bcc_obs.Log_reporter.install ~level ();
  (* Fault injection is opt-in per entry point: only binaries load
     BCC_FAULTS, never the libraries. *)
  (match Bcc_robust.Fault.load_env () with
  | () ->
      if Bcc_robust.Fault.enabled () then
        Printf.printf "bccd: armed faults: %s\n%!" (Bcc_robust.Fault.summary ())
  | exception Failure msg -> prerr_endline ("bccd: " ^ msg); exit 2);
  let ring =
    match route_to with
    | None -> Ok None
    | Some spec -> (
        match Bcc_cluster.Ring.parse_nodes spec with
        | Some ring -> Ok (Some ring)
        | None ->
            Error
              (Printf.sprintf
                 "--route-to %S: expected a comma-separated host:port list" spec))
  in
  match ring with
  | Error msg -> `Error (true, msg)
  | Ok ring ->
  (* The router needs the server's metrics registry, which exists only
     after Server.create; the config needs the forward hook before.  A
     ref cell closes the cycle. *)
  let router : Bcc_cluster.Router.t option ref = ref None in
  let cfg =
    {
      Server.host;
      port;
      workers;
      queue_depth;
      cache_entries;
      timeout_s = timeout;
      preload;
      trace_spans;
      state_dir;
      event_log;
      debug_dir;
      sched_concurrency;
      tenant_depth;
      tenant_weights;
      curve_cache_mb;
      forward =
        (fun req ->
          match !router with
          | Some r -> Bcc_cluster.Router.forward r req
          | None -> None);
    }
  in
  match Server.create cfg with
  | exception Failure msg -> `Error (false, msg)
  | exception Unix.Unix_error (e, _, _) ->
      `Error (false, Printf.sprintf "cannot bind %s:%d: %s" host port (Unix.error_message e))
  | srv ->
      (match ring with
      | Some ring ->
          let r =
            Bcc_cluster.Router.create
              ~hedge_delay_s:(Float.max 0.0 hedge_delay_ms /. 1000.0)
              ~tenant_depth ~tenant_weights ~metrics:(Server.metrics srv) ring
          in
          Bcc_cluster.Router.start_probes r;
          router := Some r;
          Printf.printf "bccd: routing to %d shards: %s\n%!"
            (Bcc_cluster.Ring.size ring)
            (String.concat ", "
               (List.map Bcc_cluster.Ring.node_id (Bcc_cluster.Ring.nodes ring)))
      | None -> ());
      let stop _ = Server.request_stop srv in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      List.iter
        (fun (name, _) -> Printf.printf "bccd: loaded instance %s\n%!" name)
        preload;
      (match state_dir with
      | Some dir ->
          let infos = Bcc_server.Server.store srv |> Bcc_store.Store.list in
          Printf.printf "bccd: recovered %d workloads from %s in %.3fs\n%!"
            (List.length infos) dir
            (Bcc_store.Store.replay_seconds (Server.store srv));
          List.iter
            (fun (i : Bcc_store.Store.info) ->
              Printf.printf "bccd: workload %s at epoch %d (%d queries)\n%!"
                i.Bcc_store.Store.name i.Bcc_store.Store.epoch
                i.Bcc_store.Store.num_queries)
            infos
      | None -> ());
      Printf.printf "bccd: listening on %s:%d (%d workers, queue %d, cache %d, timeout %gs)\n%!"
        host (Server.port srv) (Server.num_workers srv) queue_depth cache_entries timeout;
      Server.run srv;
      (match !router with Some r -> Bcc_cluster.Router.stop r | None -> ());
      Printf.printf "bccd: shutdown complete\n%!";
      `Ok ()

let cmd =
  let term =
    Term.(
      ret
        (const run $ host_arg $ port_arg $ workers_arg $ queue_depth_arg
       $ cache_entries_arg $ timeout_arg $ load_arg $ trace_buffer_arg
       $ state_dir_arg $ event_log_arg $ debug_dir_arg $ sched_concurrency_arg
       $ tenant_depth_arg $ tenant_weight_arg $ curve_cache_mb_arg
       $ route_to_arg $ hedge_delay_ms_arg $ log_level_arg))
  in
  let doc = "resident BCC solver service with request batching and a solution cache" in
  Cmd.v (Cmd.info "bccd" ~doc) term

let () = exit (Cmd.eval cmd)
