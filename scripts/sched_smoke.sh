#!/usr/bin/env bash
# Multi-tenant scheduler smoke test against the real bccd binary:
# three weighted tenants fire 50 concurrent cold solves at one shared
# workload through a single scheduler slot.  Every request must succeed
# with the identical answer, the scheduler must have coalesced part of
# the pile-up (ratio > 0), and /debug/sched must show all three tenants
# admitted and drained.
#
# Usage: scripts/sched_smoke.sh [path-to-bccd.exe]
set -euo pipefail

BCCD=${1:-_build/default/bin/bccd.exe}
[ -x "$BCCD" ] || { echo "bccd binary not found at $BCCD (dune build bin first)"; exit 1; }

TMP=$(mktemp -d)
PID=
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

"$BCCD" --port 0 --workers 4 --sched-concurrency 1 \
  --tenant-weight t0=1 --tenant-weight t1=2 --tenant-weight t2=3 \
  --curve-cache-mb 8 >"$TMP/out" 2>&1 &
PID=$!
for _ in $(seq 100); do
  PORT=$(sed -n 's/.*listening on [^ ]*:\([0-9][0-9]*\) .*/\1/p' "$TMP/out" | head -n1)
  [ -n "$PORT" ] && break
  kill -0 "$PID" 2>/dev/null || { echo "daemon died on startup:"; cat "$TMP/out"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "daemon never reported its port:"; cat "$TMP/out"; exit 1; }
echo "daemon up on port $PORT"

# A clustered workload big enough that one solve outlives the arrival of
# the concurrent wave behind it (that overlap is what coalesces).
{
  echo "budget 600"
  for c in $(seq 0 59); do
    echo "query p${c}a;p${c}b $((5 + c % 13))"
    echo "query p${c}b;p${c}c $((3 + c % 7))"
    echo "classifier p${c}a 2"
    echo "classifier p${c}b 3"
    echo "classifier p${c}c 2"
    echo "classifier p${c}a;p${c}b 4"
    echo "classifier p${c}b;p${c}c 4"
  done
} > "$TMP/workload"

curl -fsS -X PUT "http://127.0.0.1:$PORT/workloads/smoke" \
  --data-binary @"$TMP/workload" >/dev/null

N=50
CURLS=()
for i in $(seq 1 $N); do
  t="t$((i % 3))"
  (
    code=$(curl -s -o "$TMP/resp.$i" -w '%{http_code}' -X POST \
      "http://127.0.0.1:$PORT/workloads/smoke/solve?tenant=$t&cold=true" \
      --data-binary '')
    echo "$code $t" > "$TMP/code.$i"
  ) &
  CURLS+=($!)
done
# wait for the request wave only (a bare wait would also wait on the daemon)
for pid in "${CURLS[@]}"; do wait "$pid"; done

fails=0
for i in $(seq 1 $N); do
  read -r code t < "$TMP/code.$i"
  if [ "$code" != 200 ]; then echo "request $i ($t) -> HTTP $code"; fails=1; fi
done
[ "$fails" = 0 ] || { echo "some requests failed"; cat "$TMP/out"; exit 1; }

# per-tenant completion spread: every tenant's whole share came back
for t in t0 t1 t2; do
  n=$(cat "$TMP"/code.* | grep -c "^200 $t\$")
  echo "tenant $t: $n/200s"
  [ "$n" -ge 16 ] || { echo "tenant $t starved ($n completions)"; exit 1; }
done

# identical answers for every waiter, coalesced or not
for i in $(seq 1 $N); do
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); print(d["utility"], d["cost"])' "$TMP/resp.$i"
done | sort -u > "$TMP/answers"
[ "$(wc -l < "$TMP/answers")" = 1 ] || { echo "answers diverged:"; cat "$TMP/answers"; exit 1; }

curl -fsS "http://127.0.0.1:$PORT/metrics" > "$TMP/metrics"
curl -fsS "http://127.0.0.1:$PORT/debug/sched" > "$TMP/sched"

python3 - "$TMP/metrics" "$TMP/sched" <<'EOF'
import json, sys
metrics = open(sys.argv[1]).read()
def metric(name):
    for line in metrics.splitlines():
        if line.startswith(name):
            return float(line.split()[-1])
    raise SystemExit(name + " missing from /metrics")
batches = metric("bcc_sched_batches_total")
coalesced = metric("bcc_sched_coalesced_total")
assert batches >= 1, batches
assert coalesced > 0, "coalesce ratio is zero: no request shared a batch"
sched = json.load(open(sys.argv[2]))
assert sched["queued_waiters"] == 0 and sched["running"] == 0, sched
tenants = {t["tenant"]: t for t in sched["tenants"]}
for name, weight in [("t0", 1), ("t1", 2), ("t2", 3)]:
    assert name in tenants, "tenant %s missing: %s" % (name, sorted(tenants))
    assert tenants[name]["weight"] == weight, tenants[name]
assert sum(t["dispatched"] for t in tenants.values()) >= 1, sched
print("sched smoke: %d batches, %d coalesced waiters (ratio %.0f%%), tenants %s: OK"
      % (batches, coalesced, 100 * coalesced / (batches + coalesced),
         ",".join(sorted(tenants))))
EOF

kill -TERM "$PID"; wait "$PID" || { echo "daemon did not exit cleanly"; exit 1; }
PID=

echo "scheduler smoke: OK"
