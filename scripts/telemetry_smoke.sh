#!/usr/bin/env bash
# Telemetry smoke test against the real bccd binary: solve once, follow
# the X-Bcc-Trace-Id response header into the /debug/solves flight
# recorder, require a non-empty anytime curve whose final utility equals
# the returned solution's, check the progress-stream metrics exist, and
# leave the event log + flight-recorder dump behind as CI artifacts.
#
# Usage: scripts/telemetry_smoke.sh [path-to-bccd.exe]
# Artifacts land in ${TELEMETRY_DIR:-/tmp/telemetry-smoke}.
set -euo pipefail

BCCD=${1:-_build/default/bin/bccd.exe}
[ -x "$BCCD" ] || { echo "bccd binary not found at $BCCD (dune build bin first)"; exit 1; }

ART=${TELEMETRY_DIR:-/tmp/telemetry-smoke}
rm -rf "$ART"; mkdir -p "$ART/flight"
OUT=$(mktemp)
INST=$(mktemp)
PID=
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -f "$OUT" "$INST"
}
trap cleanup EXIT

cat >"$INST" <<'EOF'
budget 4
query x;y;z 8
query x;z 1
query x;y 2
classifier x 5
classifier y 3
classifier z 3
classifier x;y;z 3
classifier x;z 4
classifier y;z 0
EOF

"$BCCD" --port 0 --workers 2 --load "fig=$INST" \
  --event-log "$ART/events.jsonl" --debug-dir "$ART/flight" >"$OUT" 2>&1 &
PID=$!
PORT=
for _ in $(seq 100); do
  PORT=$(sed -n 's/.*listening on [^ ]*:\([0-9][0-9]*\) .*/\1/p' "$OUT" | head -n1)
  [ -n "$PORT" ] && break
  kill -0 "$PID" 2>/dev/null || { echo "daemon died on startup:"; cat "$OUT"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "daemon never reported its port:"; cat "$OUT"; exit 1; }
echo "daemon up on port $PORT, artifacts in $ART"

# one cold solve; keep the headers to harvest the correlation id
curl -fsS -D "$ART/solve.headers" -o "$ART/solve.json" \
  -X POST "http://127.0.0.1:$PORT/solve" --data-binary '{"instance":"fig","budget":4}'
CORR=$(tr -d '\r' <"$ART/solve.headers" | awk -F': ' 'tolower($1)=="x-bcc-trace-id"{print $2}')
[ -n "$CORR" ] || { echo "no X-Bcc-Trace-Id header:"; cat "$ART/solve.headers"; exit 1; }
echo "solve trace id: $CORR"

# the header keys the flight recorder; the curve must end at the answer
curl -fsS "http://127.0.0.1:$PORT/debug/solves?id=$CORR" >"$ART/solve.detail.json"
curl -fsS "http://127.0.0.1:$PORT/debug/solves" >"$ART/solves.json"
python3 - "$ART/solve.json" "$ART/solve.detail.json" <<'EOF'
import json, sys
solve = json.load(open(sys.argv[1]))
detail = json.load(open(sys.argv[2]))
curve = detail["curve"]
assert curve, "anytime curve is empty"
assert detail["complete"], detail
assert abs(curve[-1]["u"] - solve["utility"]) < 1e-6, (curve[-1], solve["utility"])
names = {e["name"] for e in detail["event_log"]}
for needed in ("solve_start", "incumbent_update", "solve_report"):
    assert needed in names, f"event {needed} missing ({sorted(names)})"
print("anytime curve: %d points, final utility %g: OK" % (len(curve), curve[-1]["u"]))
EOF

# progress stream feeds the metrics registry
curl -fsS "http://127.0.0.1:$PORT/metrics" >"$ART/metrics.txt"
for series in bcc_solve_utility_ratio bcc_solve_rounds_total bcc_incumbent_improvements_total; do
  grep -q "^$series" "$ART/metrics.txt" || { echo "metric $series missing"; exit 1; }
done
echo "progress metrics exported: OK"

kill -TERM "$PID"
wait "$PID" || { echo "daemon did not exit cleanly"; exit 1; }
PID=

# the JSONL event log was flushed on shutdown and carries the solve
[ -s "$ART/events.jsonl" ] || { echo "event log empty"; exit 1; }
grep -q "$CORR" "$ART/events.jsonl" || { echo "event log misses trace id $CORR"; exit 1; }
python3 - "$ART/events.jsonl" <<'EOF'
import json, sys
n = 0
for line in open(sys.argv[1]):
    line = line.strip()
    if line:
        json.loads(line)
        n += 1
assert n > 0
print("event log: %d well-formed JSONL lines: OK" % n)
EOF
echo "telemetry smoke: OK"
