#!/usr/bin/env bash
# Store crash-recovery smoke test against the real bccd binary:
# commit a workload + delta + solve, SIGKILL the daemon, corrupt the
# journal tail the way a crash mid-append would, restart on the same
# --state-dir, and require the exact committed epoch and solution back.
#
# Usage: scripts/store_crash_smoke.sh [path-to-bccd.exe]
set -euo pipefail

BCCD=${1:-_build/default/bin/bccd.exe}
[ -x "$BCCD" ] || { echo "bccd binary not found at $BCCD (dune build bin first)"; exit 1; }

STATE=$(mktemp -d)
OUT=$(mktemp)
PID=
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$STATE" "$OUT"
}
trap cleanup EXIT

start_daemon() {
  "$BCCD" --port 0 --workers 2 --state-dir "$STATE" >"$OUT" 2>&1 &
  PID=$!
  for _ in $(seq 100); do
    PORT=$(sed -n 's/.*listening on [^ ]*:\([0-9][0-9]*\) .*/\1/p' "$OUT" | head -n1)
    [ -n "$PORT" ] && return 0
    kill -0 "$PID" 2>/dev/null || { echo "daemon died on startup:"; cat "$OUT"; exit 1; }
    sleep 0.1
  done
  echo "daemon never reported its port:"; cat "$OUT"; exit 1
}

start_daemon
echo "daemon up on port $PORT, state in $STATE"

curl -fsS -X PUT "http://127.0.0.1:$PORT/workloads/smoke?budget=11" --data-binary @- <<'EOF' >/dev/null
budget 4
query x;y;z 8
query x;z 1
query x;y 2
classifier x 5
classifier y 3
classifier z 3
classifier x;y;z 3
classifier x;z 4
classifier y;z 0
EOF
curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/delta" --data-binary 'add x;y 1' >/dev/null
BEFORE=$(curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/solve" --data-binary '')
echo "committed: $BEFORE"

kill -9 "$PID"; wait "$PID" 2>/dev/null || true; PID=
# a crash mid-append leaves half a record at the journal tail
printf '@rec delta gXXX 2 300 0123456789abcdef0123456789abcdef\ntorn' >>"$STATE/smoke.journal"

: >"$OUT"
start_daemon
echo "restarted on port $PORT"
grep -q "recovered" "$OUT" && grep "recovered" "$OUT"

AFTER=$(curl -fsS "http://127.0.0.1:$PORT/workloads/smoke/solution")
echo "recovered: $AFTER"

python3 - "$BEFORE" "$AFTER" <<'EOF'
import json, sys
before, after = json.loads(sys.argv[1]), json.loads(sys.argv[2])
for key in ("epoch", "utility", "cost"):
    assert before[key] == after[key], f"{key}: committed {before[key]} != recovered {after[key]}"
print("recovered epoch %d at utility %g: OK" % (after["epoch"], after["utility"]))
EOF

# the journal keeps accepting commits after the truncation
curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/delta" --data-binary 'add x;z 2' >/dev/null
curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/solve" --data-binary '' | grep -q '"warm": *true' \
  || { echo "post-recovery solve was not warm-seeded"; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "daemon did not exit cleanly"; exit 1; }
PID=
echo "store crash-recovery smoke: OK"
