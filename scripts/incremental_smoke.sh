#!/usr/bin/env bash
# Incremental-pipeline smoke test against the real bccd binary:
# ingest a clustered workload, solve it incrementally twice (the second
# solve must reuse every component curve), apply a delta confined to
# one cluster, re-solve incrementally (the untouched components must be
# reused) and require the incremental answer to be exactly the answer
# a cold pipeline solve of the same epoch produces on a fresh daemon.
#
# Usage: scripts/incremental_smoke.sh [path-to-bccd.exe]
set -euo pipefail

BCCD=${1:-_build/default/bin/bccd.exe}
[ -x "$BCCD" ] || { echo "bccd binary not found at $BCCD (dune build bin first)"; exit 1; }

STATE=$(mktemp -d)
STATE2=$(mktemp -d)
OUT=$(mktemp)
PID=
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$STATE" "$STATE2" "$OUT"
}
trap cleanup EXIT

start_daemon() {
  "$BCCD" --port 0 --workers 2 --state-dir "$1" >"$OUT" 2>&1 &
  PID=$!
  for _ in $(seq 100); do
    PORT=$(sed -n 's/.*listening on [^ ]*:\([0-9][0-9]*\) .*/\1/p' "$OUT" | head -n1)
    [ -n "$PORT" ] && return 0
    kill -0 "$PID" 2>/dev/null || { echo "daemon died on startup:"; cat "$OUT"; exit 1; }
    sleep 0.1
  done
  echo "daemon never reported its port:"; cat "$OUT"; exit 1
}

WORKLOAD='budget 25
query a0;a1 10
query a1;a2 6
query b0;b1 8
query b1;b2 4
query c0;c1 7
classifier a0 2
classifier a1 3
classifier a2 4
classifier a0;a1 4
classifier b0 2
classifier b1 3
classifier b2 4
classifier b0;b1 4
classifier c0 2
classifier c1 3
classifier c0;c1 4'

DELTA='upsert a0;a1 12'

start_daemon "$STATE"
echo "daemon up on port $PORT, state in $STATE"

curl -fsS -X PUT "http://127.0.0.1:$PORT/workloads/smoke" --data-binary "$WORKLOAD" >/dev/null

FIRST=$(curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/solve?incremental=true" --data-binary '')
echo "first (cold) incremental solve: $FIRST"
SECOND=$(curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/solve?incremental=true" --data-binary '')
echo "second (all-clean) incremental solve: $SECOND"

curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/delta" --data-binary "$DELTA" >/dev/null
AFTER=$(curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/solve?incremental=true" --data-binary '')
echo "post-delta incremental solve: $AFTER"

kill -TERM "$PID"; wait "$PID" || { echo "daemon did not exit cleanly"; exit 1; }
PID=

# cold reference: fresh daemon, same workload + delta, first incremental
# solve has nothing to reuse, so it IS the cold pipeline answer
: >"$OUT"
start_daemon "$STATE2"
curl -fsS -X PUT "http://127.0.0.1:$PORT/workloads/smoke" --data-binary "$WORKLOAD" >/dev/null
curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/delta" --data-binary "$DELTA" >/dev/null
COLD=$(curl -fsS -X POST "http://127.0.0.1:$PORT/workloads/smoke/solve?incremental=true" --data-binary '')
echo "cold reference solve: $COLD"

kill -TERM "$PID"; wait "$PID" || { echo "daemon did not exit cleanly"; exit 1; }
PID=

python3 - "$FIRST" "$SECOND" "$AFTER" "$COLD" <<'EOF'
import json, sys
first, second, after, cold = (json.loads(a) for a in sys.argv[1:5])
assert first["components_total"] >= 2, f"expected a decomposable workload: {first}"
assert first["components_reused"] == 0, f"first solve must be cold: {first}"
assert second["components_reused"] == second["components_total"], \
    f"all-clean re-solve must reuse every component: {second}"
assert second["utility"] == first["utility"], \
    f"reused answer differs from cold: {second['utility']} != {first['utility']}"
assert after["components_reused"] > 0, \
    f"delta confined to one cluster must leave reusable components: {after}"
assert after["components_reused"] < after["components_total"], \
    f"the touched component must recompute: {after}"
assert after["utility"] == cold["utility"] and after["cost"] == cold["cost"], \
    f"incremental != cold at the same epoch: {after} vs {cold}"
print("reused %d/%d after the delta, utility %g == cold: OK"
      % (after["components_reused"], after["components_total"], after["utility"]))
EOF

echo "incremental pipeline smoke: OK"
