#!/usr/bin/env bash
# Cluster smoke test against real bccd binaries: three shards behind a
# routing node.  A workload is ingested through the router and must be
# pinned to one shard; 30 concurrent stateless solves through the
# router must all succeed byte-identically to a single-node solve of
# the same instance; then the owning shard is SIGKILLed mid-run —
# idempotent solves must keep succeeding identically (reads fail over
# along the ring), store traffic must answer 503 + retry-after rather
# than fail over, and a restart on the same port must bring the shard
# back (router gauge up, workload served with its journal intact).
#
# Usage: scripts/cluster_smoke.sh [path-to-bccd.exe]
set -euo pipefail

BCCD=${1:-_build/default/bin/bccd.exe}
[ -x "$BCCD" ] || { echo "bccd binary not found at $BCCD (dune build bin first)"; exit 1; }

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

start_node() { # name, extra args...; sets NODE_PORT and NODE_PID
  local name=$1; shift
  "$BCCD" --port 0 --workers 2 "$@" >"$TMP/$name.out" 2>&1 &
  NODE_PID=$!
  disown "$NODE_PID"
  PIDS+=("$NODE_PID")
  for _ in $(seq 100); do
    NODE_PORT=$(sed -n 's/.*listening on [^ ]*:\([0-9][0-9]*\) .*/\1/p' "$TMP/$name.out" | head -n1)
    [ -n "$NODE_PORT" ] && return 0
    kill -0 "$NODE_PID" 2>/dev/null || { echo "$name died on startup:"; cat "$TMP/$name.out"; exit 1; }
    sleep 0.1
  done
  echo "$name never reported its port:"; cat "$TMP/$name.out"; exit 1
}

# restart a shard on a FIXED port (recovery path)
restart_node() { # name, port, extra args...
  local name=$1 port=$2; shift 2
  "$BCCD" --port "$port" --workers 2 "$@" >"$TMP/$name.out" 2>&1 &
  NODE_PID=$!
  disown "$NODE_PID"
  PIDS+=("$NODE_PID")
}

for i in 1 2 3; do
  mkdir -p "$TMP/state$i"
  start_node "shard$i" --state-dir "$TMP/state$i"
  eval "SPORT$i=$NODE_PORT"; eval "SPID$i=$NODE_PID"
done
start_node router --route-to "127.0.0.1:$SPORT1,127.0.0.1:$SPORT2,127.0.0.1:$SPORT3"
RPORT=$NODE_PORT
echo "shards on $SPORT1 $SPORT2 $SPORT3, router on $RPORT"

WORKLOAD='budget 25
query a0;a1 10
query a1;a2 6
query b0;b1 8
classifier a0 2
classifier a1 3
classifier a2 4
classifier a0;a1 4
classifier b0 2
classifier b1 3'

SOLVE_BODY='{"text": "budget 10\nquery q1;q2 5\nclassifier q1 2\nclassifier q2 3\nclassifier q1;q2 4"}'

# strip the per-shard solution-cache flag before comparing responses
normalize() { sed -e 's/"cached":true/"cached":_/' -e 's/"cached":false/"cached":_/'; }

# single-node reference answer (shard 1, direct — no router involved)
curl -fsS -X POST "http://127.0.0.1:$SPORT1/solve" --data-binary "$SOLVE_BODY" | normalize > "$TMP/reference"

# ingest through the router; note the owning shard
curl -fsS -D "$TMP/put.hdr" -X PUT "http://127.0.0.1:$RPORT/workloads/smoke" --data-binary "$WORKLOAD" >/dev/null
OWNER=$(tr -d '\r' < "$TMP/put.hdr" | sed -n 's/^x-bcc-shard: //p')
[ -n "$OWNER" ] || { echo "routed PUT carried no x-bcc-shard header"; exit 1; }
OWNER_PORT=${OWNER##*:}
echo "workload smoke owned by $OWNER"

wave() { # n -> fires n concurrent routed solves, checks all 200 + identical
  local n=$1 label=$2 pids=() i
  for i in $(seq 1 "$n"); do
    (
      code=$(curl -s -o "$TMP/resp.$i" -w '%{http_code}' -X POST \
        "http://127.0.0.1:$RPORT/solve" --data-binary "$SOLVE_BODY")
      echo "$code" > "$TMP/code.$i"
    ) &
    pids+=($!)
  done
  for pid in "${pids[@]}"; do wait "$pid"; done
  for i in $(seq 1 "$n"); do
    [ "$(cat "$TMP/code.$i")" = 200 ] || { echo "$label: solve $i failed ($(cat "$TMP/code.$i"))"; cat "$TMP/router.out"; exit 1; }
    normalize < "$TMP/resp.$i" | diff -q "$TMP/reference" - >/dev/null \
      || { echo "$label: solve $i differs from single-node reference"; normalize < "$TMP/resp.$i"; cat "$TMP/reference"; exit 1; }
  done
  echo "$label: $n/$n routed solves identical to single-node"
}

wave 30 "all shards up"

# SIGKILL the owning shard mid-run
for i in 1 2 3; do
  port_var="SPORT$i"; pid_var="SPID$i"
  if [ "${!port_var}" = "$OWNER_PORT" ]; then kill -9 "${!pid_var}"; OWNER_STATE="$TMP/state$i"; fi
done
echo "killed owner shard $OWNER"

# zero failed idempotent reads through the detection window and after
wave 30 "owner killed"

# wait for the router to mark the shard down, then store traffic must
# be refused with retry-after, not silently failed over
for _ in $(seq 100); do
  up=$(curl -fsS "http://127.0.0.1:$RPORT/metrics" | sed -n "s/^bcc_cluster_shard_up{shard=\"$OWNER\"} //p")
  [ "$up" = 0 ] && break
  sleep 0.1
done
[ "$up" = 0 ] || { echo "router never marked $OWNER down"; exit 1; }

code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$RPORT/workloads/smoke")
[ "$code" = 503 ] || { echo "sticky read with owner down -> HTTP $code (want 503)"; exit 1; }
curl -s -D - -o /dev/null "http://127.0.0.1:$RPORT/workloads/smoke" | grep -qi '^retry-after:' \
  || { echo "owner-down 503 missing retry-after"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://127.0.0.1:$RPORT/workloads/smoke/delta" --data-binary 'upsert a0;a1 12')
[ "$code" = 503 ] || { echo "mutation with owner down -> HTTP $code (want 503)"; exit 1; }
echo "owner-down store traffic: 503 + retry-after"

# restart the shard on the same port and state dir: it must come back
# up and serve the workload it journaled
restart_node owner-revived "$OWNER_PORT" --state-dir "$OWNER_STATE"
for _ in $(seq 150); do
  up=$(curl -fsS "http://127.0.0.1:$RPORT/metrics" | sed -n "s/^bcc_cluster_shard_up{shard=\"$OWNER\"} //p")
  [ "$up" = 1 ] && break
  sleep 0.1
done
[ "$up" = 1 ] || { echo "router never marked $OWNER back up"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$RPORT/workloads/smoke")
[ "$code" = 200 ] || { echo "workload not served after owner restart -> HTTP $code"; exit 1; }
echo "owner recovered: workload served again by $OWNER"

# the wave still agrees with single-node after recovery
wave 10 "owner recovered"

echo "cluster smoke: OK"
