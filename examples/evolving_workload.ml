(* Evolving workload: delta ingestion and warm-started re-solves.

   A search platform's query log drifts continuously — utilities are
   search counts (Section 6.1), so yesterday's solution is almost right
   for today's workload.  This example ingests a log into the workload
   store, solves it, applies a drift delta (a trending query, a fading
   one, a new arrival), then re-solves twice — warm-started from the
   committed solution and cold from scratch — and compares utility and
   wall time.  The warm utility never trails the cold one.

   Run with: dune exec examples/evolving_workload.exe *)

module Store = Bcc_store.Store
module Delta = Bcc_store.Delta
module Solution = Bcc_core.Solution

let log =
  "wooden table\t40\n\
   round table\t22\n\
   round wooden table\t18\n\
   garden chair\t30\n\
   wooden chair\t26\n\
   garden table\t14\n\
   leather sofa\t33\n\
   corner sofa\t21\n\
   leather corner sofa\t9\n\
   glass cabinet\t17\n\
   oak cabinet\t12\n\
   oak table\t25\n\
   steel lamp\t8\n\
   desk lamp\t19\n\
   oak desk\t16\n"

let ok = function
  | Ok v -> v
  | Error (`Bad msg) -> failwith msg
  | Error `Not_found -> failwith "workload not found"

let report label (s : Store.solved) =
  Printf.printf "%-14s epoch %d: utility %.1f, cost %.1f, %.3fs%s\n" label
    s.Store.solved_at s.Store.solution.Solution.utility s.Store.solution.Solution.cost
    s.Store.wall_s
    (if s.Store.warm then Printf.sprintf " (seed covered %.1f)" s.Store.seed_utility
     else "")

let () =
  (* No [dir]: in-memory store, same API as the durable one. *)
  let store = Store.create () in
  let info = ok (Store.put store ~name:"shop" ~budget:60.0 (Store.Log log)) in
  Printf.printf "ingested %d distinct queries at epoch %d\n" info.Store.num_queries
    info.Store.epoch;
  report "first solve" (ok (Store.solve store ~name:"shop" ()));

  (* The workload drifts: sofas trend, lamps fade, a new query shows up,
     and the budget grows a little. *)
  let drift =
    [
      Delta.Add ([ "leather"; "sofa" ], 15.0);
      Delta.Upsert ([ "steel"; "lamp" ], 2.0);
      Delta.Add ([ "velvet"; "sofa" ], 11.0);
      Delta.Remove [ "desk"; "lamp" ];
      Delta.Set_budget 66.0;
    ]
  in
  let info = ok (Store.delta store ~name:"shop" drift) in
  Printf.printf "applied %d-op drift delta -> epoch %d (%d queries)\n"
    (List.length drift) info.Store.epoch info.Store.num_queries;

  let warm = ok (Store.solve store ~name:"shop" ()) in
  report "warm re-solve" warm;
  let cold = ok (Store.solve store ~name:"shop" ~cold:true ()) in
  report "cold re-solve" cold;

  let wu = warm.Store.solution.Solution.utility
  and cu = cold.Store.solution.Solution.utility in
  Printf.printf "warm %.1f vs cold %.1f: %s (warm took %.0f%% of the cold wall time)\n" wu
    cu
    (if wu >= cu then "warm start never trails" else "WARM TRAILED COLD (bug)")
    (if cold.Store.wall_s > 0.0 then 100.0 *. warm.Store.wall_s /. cold.Store.wall_s
     else 100.0)
