(* Tests for greedy set cover and the MC3 solver (Definition 2.4 /
   Theorem 2.5), including the exact min-cut solver for l <= 2 against a
   brute-force oracle. *)

module Set_cover = Bcc_setcover.Set_cover
module Mc3 = Bcc_setcover.Mc3
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* --- Set cover --- *)

let set_cover_known () =
  let sets = [| ([| 0; 1 |], 2.0); ([| 1; 2 |], 2.0); ([| 0; 1; 2 |], 3.0) |] in
  match Set_cover.solve ~universe:3 ~sets with
  | None -> Alcotest.fail "expected a cover"
  | Some { Set_cover.cost; sets = chosen } ->
      Alcotest.(check bool) "covers" true (Set_cover.is_cover ~universe:3 ~sets chosen);
      Alcotest.(check bool) "greedy picks the ratio-best set" true (cost <= 4.0)

let set_cover_infeasible () =
  Alcotest.(check bool) "uncoverable element" true
    (Set_cover.solve ~universe:2 ~sets:[| ([| 0 |], 1.0) |] = None)

let set_cover_free_sets () =
  let sets = [| ([| 0 |], 0.0); ([| 1 |], 5.0) |] in
  match Set_cover.solve ~universe:2 ~sets with
  | None -> Alcotest.fail "expected a cover"
  | Some { Set_cover.cost; _ } -> Alcotest.(check (float 1e-9)) "free set costs nothing" 5.0 cost

let set_cover_empty_universe () =
  match Set_cover.solve ~universe:0 ~sets:[||] with
  | Some { Set_cover.cost; sets } ->
      Alcotest.(check (float 1e-9)) "zero cost" 0.0 cost;
      Alcotest.(check (list int)) "no sets" [] sets
  | None -> Alcotest.fail "empty universe is trivially covered"

let set_cover_always_covers =
  QCheck.Test.make ~name:"greedy result is always a cover (when one exists)" ~count:150
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let universe = 1 + Rng.int rng 12 in
      let nsets = 1 + Rng.int rng 10 in
      let sets =
        Array.init nsets (fun _ ->
            let k = 1 + Rng.int rng universe in
            ( Rng.sample_without_replacement rng k universe,
              float_of_int (Rng.int_in rng 0 9) ))
      in
      match Set_cover.solve ~universe ~sets with
      | Some { Set_cover.sets = chosen; _ } -> Set_cover.is_cover ~universe ~sets chosen
      | None ->
          (* Verify genuinely infeasible: some element in no set. *)
          let covered = Array.make universe false in
          Array.iter (fun (m, _) -> Array.iter (fun e -> covered.(e) <- true) m) sets;
          not (Array.for_all (fun c -> c) covered))

(* --- MC3 --- *)

(* Random l<=2 MC3 instance over a small property universe. *)
let random_mc3_l2 seed =
  let rng = Rng.create seed in
  let nprops = 2 + Rng.int rng 4 in
  let nqueries = 1 + Rng.int rng 5 in
  let queries =
    Array.init nqueries (fun _ ->
        if Rng.bool rng then [| Rng.int rng nprops |]
        else begin
          let pair = Rng.sample_without_replacement rng 2 nprops in
          Array.sort compare pair;
          pair
        end)
  in
  (* Candidate classifiers: all singletons and all pairs that appear, with
     occasional infinite cost. *)
  let classifiers = ref [] in
  for p = 0 to nprops - 1 do
    let c = if Rng.int rng 8 = 0 then infinity else float_of_int (Rng.int_in rng 0 9) in
    classifiers := ([| p |], c) :: !classifiers
  done;
  Array.iter
    (fun q ->
      if Array.length q = 2 then begin
        let c = if Rng.int rng 4 = 0 then infinity else float_of_int (Rng.int_in rng 0 9) in
        classifiers := (q, c) :: !classifiers
      end)
    queries;
  { Mc3.queries; classifiers = Array.of_list !classifiers }

let mc3_exact_matches_brute =
  QCheck.Test.make ~name:"exact l<=2 solver matches brute force" ~count:200 QCheck.small_int
    (fun seed ->
      let inst = random_mc3_l2 seed in
      match (Mc3.solve_exact_l2 inst, Mc3.brute_force inst) with
      | None, None -> true
      | Some a, Some b ->
          Mc3.covers inst a.Mc3.chosen && abs_float (a.Mc3.cost -. b.Mc3.cost) < 1e-6
      | Some _, None | None, Some _ -> false)

let mc3_greedy_covers =
  QCheck.Test.make ~name:"greedy MC3 output covers all queries" ~count:200 QCheck.small_int
    (fun seed ->
      let inst = random_mc3_l2 seed in
      match Mc3.solve_greedy inst with
      | Some sol -> Mc3.covers inst sol.Mc3.chosen
      | None -> Mc3.brute_force inst = None)

let mc3_l3_greedy () =
  (* Example 4.8 flavour: cover {xyz} with {XZ, Y} cheaper than {YZ, XZ}. *)
  let queries = [| [| 0; 1; 2 |] |] in
  let classifiers =
    [| ([| 1; 2 |], 5.0); ([| 0; 2 |], 2.0); ([| 1 |], 1.0); ([| 0 |], 4.0) |]
  in
  let inst = { Mc3.queries; classifiers } in
  match Mc3.solve inst with
  | None -> Alcotest.fail "coverable instance"
  | Some sol ->
      Alcotest.(check bool) "covers" true (Mc3.covers inst sol.Mc3.chosen);
      Alcotest.(check (float 1e-9)) "picks {XZ, Y} at cost 3" 3.0 sol.Mc3.cost

let mc3_pair_vs_singletons () =
  (* Covering xy: pair classifier at 3 vs singletons at 2+2; exact solver
     must take the pair... no wait, 3 < 4, so the pair. *)
  let inst =
    {
      Mc3.queries = [| [| 0; 1 |] |];
      classifiers = [| ([| 0 |], 2.0); ([| 1 |], 2.0); ([| 0; 1 |], 3.0) |];
    }
  in
  match Mc3.solve_exact_l2 inst with
  | Some sol -> Alcotest.(check (float 1e-9)) "pair wins" 3.0 sol.Mc3.cost
  | None -> Alcotest.fail "coverable"

let mc3_shared_singletons () =
  (* Triangle xy, yz, xz with expensive pairs: sharing singletons beats
     three pair classifiers. *)
  let inst =
    {
      Mc3.queries = [| [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |] |];
      classifiers =
        [|
          ([| 0 |], 2.0); ([| 1 |], 2.0); ([| 2 |], 2.0);
          ([| 0; 1 |], 5.0); ([| 1; 2 |], 5.0); ([| 0; 2 |], 5.0);
        |];
    }
  in
  match Mc3.solve_exact_l2 inst with
  | Some sol ->
      Alcotest.(check (float 1e-9)) "three singletons" 6.0 sol.Mc3.cost;
      Alcotest.(check bool) "covers" true (Mc3.covers inst sol.Mc3.chosen)
  | None -> Alcotest.fail "coverable"

let mc3_infeasible () =
  let inst =
    { Mc3.queries = [| [| 0; 1 |] |]; classifiers = [| ([| 0 |], 1.0) |] }
  in
  Alcotest.(check bool) "no cover exists" true (Mc3.solve inst = None)

let mc3_forced_by_infinite_pair () =
  (* XY unavailable: must buy both singletons. *)
  let inst =
    {
      Mc3.queries = [| [| 0; 1 |] |];
      classifiers = [| ([| 0 |], 1.0); ([| 1 |], 2.0); ([| 0; 1 |], infinity) |];
    }
  in
  match Mc3.solve_exact_l2 inst with
  | Some sol -> Alcotest.(check (float 1e-9)) "both singletons" 3.0 sol.Mc3.cost
  | None -> Alcotest.fail "coverable"

let suite =
  [
    Alcotest.test_case "set cover known" `Quick set_cover_known;
    Alcotest.test_case "set cover infeasible" `Quick set_cover_infeasible;
    Alcotest.test_case "set cover free sets" `Quick set_cover_free_sets;
    Alcotest.test_case "set cover empty universe" `Quick set_cover_empty_universe;
    qtest set_cover_always_covers;
    qtest mc3_exact_matches_brute;
    qtest mc3_greedy_covers;
    Alcotest.test_case "mc3 greedy on l=3" `Quick mc3_l3_greedy;
    Alcotest.test_case "mc3 pair vs singletons" `Quick mc3_pair_vs_singletons;
    Alcotest.test_case "mc3 shared singletons" `Quick mc3_shared_singletons;
    Alcotest.test_case "mc3 infeasible" `Quick mc3_infeasible;
    Alcotest.test_case "mc3 forced by infinite pair" `Quick mc3_forced_by_infinite_pair;
  ]
