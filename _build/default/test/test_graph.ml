(* Tests for the bcc_graph substrate: CSR graphs, hypergraphs, Dinic
   max-flow and maximum-weight closure. *)

module Graph = Bcc_graph.Graph
module Hypergraph = Bcc_graph.Hypergraph
module Maxflow = Bcc_graph.Maxflow
module Closure = Bcc_graph.Closure
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* --- Graph --- *)

let graph_basics () =
  let g =
    Graph.of_edges ~node_costs:[| 1.0; 2.0; 3.0; 4.0 |] 4
      [ (0, 1, 1.0); (1, 2, 2.0); (1, 0, 0.5) ]
  in
  Alcotest.(check int) "nodes" 4 (Graph.n g);
  Alcotest.(check int) "parallel edges merged" 2 (Graph.m g);
  Alcotest.(check (float 1e-9)) "merged weight" 1.5
    (match Graph.edge_weight g 0 1 with Some w -> w | None -> nan);
  Alcotest.(check (float 1e-9)) "weighted degree of 1" 3.5 (Graph.weighted_degree g 1);
  Alcotest.(check int) "degree of 3" 0 (Graph.degree g 3);
  Alcotest.(check (float 1e-9)) "total edge weight" 3.5 (Graph.total_edge_weight g)

let graph_self_loop_rejected () =
  let b = Graph.builder 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self loop") (fun () ->
      Graph.add_edge b 0 0 1.0)

let graph_induced () =
  let g = Graph.of_edges ~node_costs:[| 1.0; 2.0; 4.0 |] 3 [ (0, 1, 3.0); (1, 2, 5.0) ] in
  let sel = [| true; true; false |] in
  Alcotest.(check (float 1e-9)) "induced weight" 3.0 (Graph.induced_weight g sel);
  Alcotest.(check (float 1e-9)) "induced cost" 3.0 (Graph.induced_cost g sel)

let graph_subgraph () =
  let g = Graph.of_edges ~node_costs:[| 1.0; 2.0; 4.0 |] 3 [ (0, 1, 3.0); (1, 2, 5.0) ] in
  let sub, back = Graph.subgraph g [| true; false; true |] in
  Alcotest.(check int) "two nodes" 2 (Graph.n sub);
  Alcotest.(check int) "edge through dropped node vanishes" 0 (Graph.m sub);
  Alcotest.(check (array int)) "back mapping" [| 0; 2 |] back;
  Alcotest.(check (float 1e-9)) "costs carried" 4.0 (Graph.node_cost sub 1)

let graph_components () =
  let g = Graph.of_edges 6 [ (0, 1, 1.0); (1, 2, 1.0); (3, 4, 1.0) ] in
  let comp, k = Graph.connected_components g in
  Alcotest.(check int) "three components" 3 k;
  Alcotest.(check bool) "0 and 2 together" true (comp.(0) = comp.(2));
  Alcotest.(check bool) "0 and 3 apart" true (comp.(0) <> comp.(3))

let graph_neighbor_sum =
  QCheck.Test.make ~name:"sum of weighted degrees = 2 * total weight" ~count:100
    QCheck.small_int (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:12 ~density:0.3 ~max_cost:5 ~max_weight:9 in
      let sum = ref 0.0 in
      for v = 0 to Graph.n g - 1 do
        sum := !sum +. Graph.weighted_degree g v
      done;
      abs_float (!sum -. (2.0 *. Graph.total_edge_weight g)) < 1e-6)

(* --- Hypergraph --- *)

let hypergraph_basics () =
  let h =
    Hypergraph.create ~node_costs:[| 1.0; 1.0; 2.0 |]
      ~edges:[| ([| 0; 1 |], 3.0); ([| 0; 1; 2 |], 5.0) |]
  in
  Alcotest.(check int) "nodes" 3 (Hypergraph.n h);
  Alcotest.(check int) "edges" 2 (Hypergraph.m h);
  Alcotest.(check int) "incidence of 0" 2 (Array.length (Hypergraph.incident_edges h 0));
  Alcotest.(check (float 1e-9)) "partial selection keeps only the pair edge" 3.0
    (Hypergraph.induced_weight h [| true; true; false |]);
  Alcotest.(check int) "max edge cardinality" 3 (Hypergraph.max_edge_cardinality h)

let hypergraph_dedups_edge_nodes () =
  let h = Hypergraph.create ~node_costs:[| 1.0; 1.0 |] ~edges:[| ([| 0; 0; 1 |], 1.0) |] in
  Alcotest.(check (array int)) "deduplicated" [| 0; 1 |] (Hypergraph.edge_nodes h 0)

(* --- Maxflow --- *)

let maxflow_known () =
  (* Classic 4-node example: s=0, t=3; max flow = 5. *)
  let net = Maxflow.create 4 in
  Maxflow.add_edge net 0 1 3.0;
  Maxflow.add_edge net 0 2 2.0;
  Maxflow.add_edge net 1 2 5.0;
  Maxflow.add_edge net 1 3 2.0;
  Maxflow.add_edge net 2 3 3.0;
  Alcotest.(check (float 1e-9)) "max flow" 5.0 (Maxflow.max_flow net 0 3);
  let side = Maxflow.min_cut_side net 0 in
  Alcotest.(check bool) "source on its side" true side.(0);
  Alcotest.(check bool) "sink on the other side" false side.(3)

let maxflow_disconnected () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net 0 1 7.0;
  Alcotest.(check (float 1e-9)) "no path, no flow" 0.0 (Maxflow.max_flow net 0 2)

(* Brute-force min cut over all source-side subsets for tiny networks. *)
let brute_min_cut n edges s t =
  let best = ref infinity in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl s) <> 0 && mask land (1 lsl t) = 0 then begin
      let cut =
        List.fold_left
          (fun acc (u, v, c) ->
            if mask land (1 lsl u) <> 0 && mask land (1 lsl v) = 0 then acc +. c else acc)
          0.0 edges
      in
      if cut < !best then best := cut
    end
  done;
  !best

let maxflow_matches_brute =
  QCheck.Test.make ~name:"max flow = brute-force min cut" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 5 in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Rng.float rng 1.0 < 0.4 then
            edges := (u, v, float_of_int (1 + Rng.int rng 9)) :: !edges
        done
      done;
      let net = Maxflow.create n in
      List.iter (fun (u, v, c) -> Maxflow.add_edge net u v c) !edges;
      let flow = Maxflow.max_flow net 0 (n - 1) in
      abs_float (flow -. brute_min_cut n !edges 0 (n - 1)) < 1e-6)

(* --- Closure --- *)

let closure_known () =
  (* Projects 0 (+5) and 1 (+2) require machine 2 (-4): optimal closure
     = {0, 1, 2} with value 3. *)
  let value, sel =
    Closure.solve ~weights:[| 5.0; 2.0; -4.0 |] ~edges:[ (0, 2); (1, 2) ]
  in
  Alcotest.(check (float 1e-9)) "closure value" 3.0 value;
  Alcotest.(check (array bool)) "all selected" [| true; true; true |] sel

let closure_rejects_bad_project () =
  let value, sel = Closure.solve ~weights:[| 2.0; -5.0 |] ~edges:[ (0, 1) ] in
  Alcotest.(check (float 1e-9)) "empty closure" 0.0 value;
  Alcotest.(check (array bool)) "nothing selected" [| false; false |] sel

let closure_matches_brute =
  QCheck.Test.make ~name:"closure = brute force over closed sets" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 7 in
      let weights =
        Array.init n (fun _ -> float_of_int (Rng.int_in rng (-6) 6))
      in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Rng.float rng 1.0 < 0.2 then edges := (u, v) :: !edges
        done
      done;
      let value, sel = Closure.solve ~weights ~edges:!edges in
      (* Returned set must be closed. *)
      let closed =
        List.for_all (fun (u, v) -> (not sel.(u)) || sel.(v)) !edges
      in
      (* And optimal. *)
      let best = ref 0.0 in
      for mask = 0 to (1 lsl n) - 1 do
        let ok = List.for_all (fun (u, v) ->
            mask land (1 lsl u) = 0 || mask land (1 lsl v) <> 0) !edges
        in
        if ok then begin
          let w = ref 0.0 in
          for i = 0 to n - 1 do
            if mask land (1 lsl i) <> 0 then w := !w +. weights.(i)
          done;
          if !w > !best then best := !w
        end
      done;
      closed && abs_float (value -. !best) < 1e-6)

let subgraph_preserves_structure =
  QCheck.Test.make ~name:"subgraph keeps exactly the internal edges and costs" ~count:80
    QCheck.small_int (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:10 ~density:0.35 ~max_cost:5 ~max_weight:9 in
      let rng = Rng.create (seed + 13) in
      let sel = Array.init 10 (fun _ -> Rng.bool rng) in
      let sub, back = Graph.subgraph g sel in
      (* Total weight of the subgraph = induced weight of the selection. *)
      abs_float (Graph.total_edge_weight sub -. Graph.induced_weight g sel) < 1e-9
      && Array.for_all
           (fun v -> sel.(v))
           back
      && Array.length back = Graph.n sub
      && Array.for_all Fun.id
           (Array.init (Graph.n sub) (fun v ->
                Graph.node_cost sub v = Graph.node_cost g back.(v))))

let suite =
  [
    Alcotest.test_case "graph basics" `Quick graph_basics;
    Alcotest.test_case "graph rejects self loops" `Quick graph_self_loop_rejected;
    Alcotest.test_case "graph induced weight/cost" `Quick graph_induced;
    Alcotest.test_case "graph subgraph" `Quick graph_subgraph;
    Alcotest.test_case "graph components" `Quick graph_components;
    qtest graph_neighbor_sum;
    qtest subgraph_preserves_structure;
    Alcotest.test_case "hypergraph basics" `Quick hypergraph_basics;
    Alcotest.test_case "hypergraph dedups edge nodes" `Quick hypergraph_dedups_edge_nodes;
    Alcotest.test_case "maxflow on a known network" `Quick maxflow_known;
    Alcotest.test_case "maxflow disconnected" `Quick maxflow_disconnected;
    qtest maxflow_matches_brute;
    Alcotest.test_case "closure on a known instance" `Quick closure_known;
    Alcotest.test_case "closure rejects a losing project" `Quick closure_rejects_bad_project;
    qtest closure_matches_brute;
  ]
