(* Tests for the Section-8 future-work extensions: partial-cover
   utilities (Partial) and overlapping construction costs (Overlap). *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Cover = Bcc_core.Cover
module Partial = Bcc_core.Partial
module Overlap = Bcc_core.Overlap
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest
let ps = Fixtures.ps

(* --- Partial --- *)

let credit_values () =
  let u = 10.0 in
  Alcotest.(check (float 1e-9)) "strict, partial" 0.0
    (Partial.credit_value Partial.Strict ~utility:u ~covered:2 ~length:3);
  Alcotest.(check (float 1e-9)) "strict, full" u
    (Partial.credit_value Partial.Strict ~utility:u ~covered:3 ~length:3);
  Alcotest.(check (float 1e-9)) "linear half" (0.5 *. (2.0 /. 3.0) *. u)
    (Partial.credit_value (Partial.Linear 0.5) ~utility:u ~covered:2 ~length:3);
  Alcotest.(check (float 1e-9)) "linear full pays in full" u
    (Partial.credit_value (Partial.Linear 0.5) ~utility:u ~covered:3 ~length:3);
  Alcotest.(check (float 1e-9)) "threshold below" 0.0
    (Partial.credit_value (Partial.Threshold 0.7) ~utility:u ~covered:2 ~length:3);
  Alcotest.(check (float 1e-9)) "threshold above" u
    (Partial.credit_value (Partial.Threshold 0.6) ~utility:u ~covered:2 ~length:3)

let credit_rejects_bad_params () =
  Alcotest.check_raises "linear factor above 1"
    (Invalid_argument "Partial: Linear factor out of range") (fun () ->
      ignore (Partial.credit_value (Partial.Linear 1.5) ~utility:1.0 ~covered:1 ~length:2))

let strict_credit_equals_cover () =
  let inst = Fixtures.figure1 ~budget:11.0 in
  let state = Cover.create inst in
  ignore (Cover.select_set state (ps [ 1; 2 ]));
  ignore (Cover.select_set state (ps [ 0; 2 ]));
  Alcotest.(check (float 1e-9)) "strict credit = covered utility"
    (Cover.covered_utility state)
    (Partial.credited_utility Partial.Strict state)

let credited_monotone_in_credit =
  QCheck.Test.make ~name:"linear credit dominates strict, is dominated by utility sum"
    ~count:60 QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:10.0 () in
      let rng = Rng.create (seed + 5) in
      let sets =
        List.filter_map
          (fun id ->
            if Rng.bool rng then Some (Instance.classifier inst id) else None)
          (List.init (Instance.num_classifiers inst) (fun i -> i))
      in
      let strict = Partial.credited_of Partial.Strict inst sets in
      let linear = Partial.credited_of (Partial.Linear 0.7) inst sets in
      strict <= linear +. 1e-9 && linear <= Instance.total_utility inst +. 1e-9)

let partial_solve_feasible =
  QCheck.Test.make ~name:"partial solver output is budget-feasible" ~count:40
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:8.0 () in
      let r = Partial.solve ~credit:(Partial.Linear 0.5) inst in
      Solution.feasible inst r.Partial.solution
      && abs_float
           (r.Partial.credited
           -. Partial.credited_of (Partial.Linear 0.5) inst
                r.Partial.solution.Solution.classifiers)
         < 1e-6)

let partial_beats_strict_on_credited =
  QCheck.Test.make ~name:"partial-aware solver >= strict A^BCC on the credited objective"
    ~count:25 QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:6.0 () in
      let credit = Partial.Linear 0.8 in
      let r = Partial.solve ~credit inst in
      let strict = Solver.solve inst in
      r.Partial.credited +. 1e-9
      >= Partial.credited_of credit inst strict.Solution.classifiers)

let partial_example () =
  (* One length-3 query, budget for one singleton only: strict semantics
     gain nothing, linear credit earns a third of alpha*U. *)
  let inst =
    Instance.create ~budget:1.0
      ~queries:[| (ps [ 0; 1; 2 ], 9.0) |]
      ~cost:(fun c -> if Propset.length c = 1 then 1.0 else infinity)
      ()
  in
  let strict = Solver.solve inst in
  Alcotest.(check (float 1e-9)) "strict earns nothing" 0.0 strict.Solution.utility;
  let r = Partial.solve ~credit:(Partial.Linear 0.6) inst in
  Alcotest.(check (float 1e-9)) "one property covered, credited 0.6 * 1/3 * 9" 1.8
    r.Partial.credited

(* --- Overlap --- *)

let overlap_beta_zero_is_sum =
  QCheck.Test.make ~name:"beta = 0 reproduces the independent-sum cost" ~count:60
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:10.0 () in
      let rng = Rng.create (seed + 17) in
      let ids =
        List.filter (fun _ -> Rng.bool rng)
          (List.init (Instance.num_classifiers inst) (fun i -> i))
      in
      let independent =
        List.fold_left (fun acc id -> acc +. Instance.cost inst id) 0.0 ids
      in
      abs_float (Overlap.set_cost ~beta:0.0 inst ids -. independent) < 1e-6)

let overlap_discount_bounds =
  QCheck.Test.make ~name:"overlap cost within [(1-beta) * sum, sum]" ~count:60
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:10.0 () in
      let rng = Rng.create (seed + 29) in
      let ids =
        List.filter (fun _ -> Rng.bool rng)
          (List.init (Instance.num_classifiers inst) (fun i -> i))
      in
      let beta = 0.4 in
      let independent =
        List.fold_left (fun acc id -> acc +. Instance.cost inst id) 0.0 ids
      in
      let c = Overlap.set_cost ~beta inst ids in
      c <= independent +. 1e-6 && c +. 1e-6 >= (1.0 -. beta) *. independent)

let overlap_marginal_telescopes =
  QCheck.Test.make ~name:"sum of marginal costs telescopes to the set cost" ~count:60
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:10.0 () in
      let rng = Rng.create (seed + 31) in
      let ids =
        List.filter (fun _ -> Rng.bool rng)
          (List.init (Instance.num_classifiers inst) (fun i -> i))
      in
      let beta = 0.25 in
      let _, total =
        List.fold_left
          (fun (sel, acc) id ->
            (id :: sel, acc +. Overlap.marginal_cost ~beta inst ~selected:sel id))
          ([], 0.0) ids
      in
      abs_float (total -. Overlap.set_cost ~beta inst ids) < 1e-6)

let overlap_shared_property_discounted () =
  (* Two singleton-sharing pair classifiers: {0,1} and {0,2}, base 4
     each (share 2 per slot).  Together: property 0 pays 2 + 0.7*2. *)
  let inst =
    Instance.create ~budget:100.0
      ~queries:[| (ps [ 0; 1 ], 1.0); (ps [ 0; 2 ], 1.0) |]
      ~cost:(fun c -> if Propset.length c = 2 then 4.0 else infinity)
      ()
  in
  let ids =
    List.filter_map
      (fun c -> Instance.classifier_id inst c)
      [ ps [ 0; 1 ]; ps [ 0; 2 ] ]
  in
  Alcotest.(check (float 1e-9)) "shared slot discounted" (2.0 +. 2.0 +. 2.0 +. (0.7 *. 2.0))
    (Overlap.set_cost ~beta:0.3 inst ids)

let overlap_solver_feasible_and_dominant =
  QCheck.Test.make ~name:"overlap solver feasible under the discounted budget" ~count:30
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:8.0 () in
      let r = Overlap.solve ~beta:0.3 inst in
      r.Overlap.overlap_cost <= Instance.budget inst +. 1e-6
      && r.Overlap.solution.Solution.utility
         +. 1e-9
         >= (Solver.solve inst).Solution.utility *. 0.0 (* sanity: non-negative *))

let overlap_exploits_sharing () =
  (* Budget 7: independently, {0,1} (4) + {0,2} (4) = 8 do not fit; with
     the 30% shared-slot discount they cost 7.4... make it beta 0.5 ->
     cost 7.0, so the overlap-aware solver covers both queries. *)
  let inst =
    Instance.create ~budget:7.0
      ~queries:[| (ps [ 0; 1 ], 5.0); (ps [ 0; 2 ], 5.0) |]
      ~cost:(fun c -> if Propset.length c = 2 then 4.0 else infinity)
      ()
  in
  let strict = Solver.solve inst in
  Alcotest.(check (float 1e-9)) "independent model affords one query" 5.0
    strict.Solution.utility;
  let r = Overlap.solve ~beta:0.5 inst in
  Alcotest.(check (float 1e-9)) "overlap model affords both" 10.0
    r.Overlap.solution.Solution.utility;
  Alcotest.(check bool) "within the discounted budget" true
    (r.Overlap.overlap_cost <= 7.0 +. 1e-9)

let suite =
  [
    Alcotest.test_case "credit values" `Quick credit_values;
    Alcotest.test_case "credit rejects bad params" `Quick credit_rejects_bad_params;
    Alcotest.test_case "strict credit = covered utility" `Quick strict_credit_equals_cover;
    qtest credited_monotone_in_credit;
    qtest partial_solve_feasible;
    qtest partial_beats_strict_on_credited;
    Alcotest.test_case "partial example" `Quick partial_example;
    qtest overlap_beta_zero_is_sum;
    qtest overlap_discount_bounds;
    qtest overlap_marginal_telescopes;
    Alcotest.test_case "overlap shared-property discount" `Quick
      overlap_shared_property_discounted;
    qtest overlap_solver_feasible_and_dominant;
    Alcotest.test_case "overlap exploits sharing" `Quick overlap_exploits_sharing;
  ]
