(* Tests for the core model: property sets, instances, coverage
   semantics, cover DP, decomposition and pruning. *)

module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab
module Instance = Bcc_core.Instance
module Cover = Bcc_core.Cover
module Covers = Bcc_core.Covers
module Solution = Bcc_core.Solution
module Decompose = Bcc_core.Decompose
module Prune = Bcc_core.Prune
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest
let ps = Fixtures.ps

(* --- Propset --- *)

let propset_gen =
  QCheck.map (fun l -> Propset.of_list (List.map abs l)) QCheck.(list_of_size Gen.(0 -- 8) small_int)

let propset_union_commutes =
  QCheck.Test.make ~name:"union commutes and contains both" ~count:200
    (QCheck.pair propset_gen propset_gen) (fun (a, b) ->
      let u = Propset.union a b in
      Propset.equal u (Propset.union b a) && Propset.subset a u && Propset.subset b u)

let propset_inter_diff =
  QCheck.Test.make ~name:"inter + diff partition the set" ~count:200
    (QCheck.pair propset_gen propset_gen) (fun (a, b) ->
      let i = Propset.inter a b and d = Propset.diff a b in
      Propset.equal a (Propset.union i d) && Propset.length i + Propset.length d = Propset.length a)

let propset_subset_reflexive =
  QCheck.Test.make ~name:"subset is reflexive and respects union" ~count:200 propset_gen
    (fun a -> Propset.subset a a && Propset.subset Propset.empty a)

let propset_sorted_dedup () =
  let s = Propset.of_list [ 3; 1; 3; 2; 1 ] in
  Alcotest.(check (list int)) "sorted, unique" [ 1; 2; 3 ] (Propset.to_list s);
  Alcotest.(check int) "length" 3 (Propset.length s)

let propset_subsets_count =
  QCheck.Test.make ~name:"a set of n properties has 2^n - 1 subsets" ~count:50
    (QCheck.map (fun l -> Propset.of_list (List.map (fun x -> abs x mod 20) l))
       QCheck.(list_of_size Gen.(0 -- 6) small_int))
    (fun s ->
      let n = Propset.length s in
      List.length (Propset.subsets s) = (1 lsl n) - 1
      && List.for_all (fun sub -> Propset.subset sub s) (Propset.subsets s))

let propset_positions () =
  let q = ps [ 10; 20; 30 ] in
  Alcotest.(check int) "positions of {10,30}" 0b101 (Propset.positions_in (ps [ 10; 30 ]) q);
  Alcotest.(check int) "foreign members ignored" 0b010 (Propset.positions_in (ps [ 20; 99 ]) q)

let propset_pp_names () =
  let tbl = Symtab.create () in
  let w = Symtab.intern tbl "wooden" in
  let t = Symtab.intern tbl "table" in
  (* ids follow interning order, so "wooden" (id 0) prints first *)
  Alcotest.(check string) "named rendering" "{wooden, table}"
    (Propset.to_string ~names:tbl (ps [ t; w ]))

(* --- Instance --- *)

let instance_merges_duplicates () =
  let queries = [| (ps [ 0; 1 ], 2.0); (ps [ 1; 0 ], 3.0); (ps [ 2 ], 1.0) |] in
  let inst = Instance.create ~budget:10.0 ~queries ~cost:(fun _ -> 1.0) () in
  Alcotest.(check int) "two distinct queries" 2 (Instance.num_queries inst);
  Alcotest.(check (float 1e-9)) "utilities merged" 6.0 (Instance.total_utility inst)

let instance_classifier_universe () =
  (* Section 2.1's example: P = {x,y,z}, Q = {xy, xz} => CL excludes YZ. *)
  let inst =
    Instance.create ~budget:10.0
      ~queries:[| (ps [ 0; 1 ], 1.0); (ps [ 0; 2 ], 1.0) |]
      ~cost:(fun _ -> 1.0) ()
  in
  Alcotest.(check int) "CL = {X, Y, Z, XY, XZ}" 5 (Instance.num_classifiers inst);
  Alcotest.(check (option int)) "YZ is not relevant" None
    (Instance.classifier_id inst (ps [ 1; 2 ]));
  Alcotest.(check int) "n = 3 properties" 3 (Instance.num_properties inst)

let instance_restrict () =
  let inst = Fixtures.figure1 ~budget:11.0 in
  let sub = Instance.restrict inst [ 0 ] in
  Alcotest.(check int) "one query kept" 1 (Instance.num_queries sub);
  Alcotest.(check (float 1e-9)) "same budget" 11.0 (Instance.budget sub);
  (* Costs inherited from the parent's oracle. *)
  let q = Instance.query sub 0 in
  Alcotest.(check (float 1e-9)) "cost inherited" (Instance.cost_of inst q)
    (Instance.cost_of sub q)

let instance_rejects_negative () =
  Alcotest.check_raises "negative utility"
    (Invalid_argument "Instance.create: negative utility") (fun () ->
      ignore
        (Instance.create ~budget:1.0 ~queries:[| (ps [ 0 ], -1.0) |] ~cost:(fun _ -> 1.0) ()))

let containment_index_sound =
  QCheck.Test.make ~name:"containment index lists exactly the superset queries" ~count:100
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:10.0 () in
      let ok = ref true in
      for id = 0 to Instance.num_classifiers inst - 1 do
        let c = Instance.classifier inst id in
        let listed = Array.to_list (Instance.queries_containing inst id) in
        for qi = 0 to Instance.num_queries inst - 1 do
          let contains = Propset.subset c (Instance.query inst qi) in
          if contains <> List.mem qi listed then ok := false
        done
      done;
      !ok)

(* --- Cover --- *)

let cover_incremental_matches_oracle =
  QCheck.Test.make ~name:"incremental cover tracker = from-scratch oracle" ~count:100
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~budget:100.0 () in
      let rng = Rng.create (seed + 999) in
      let n = Instance.num_classifiers inst in
      if n = 0 then true
      else begin
        let state = Cover.create inst in
        let chosen = ref [] in
        for _ = 1 to 1 + Rng.int rng n do
          let id = Rng.int rng n in
          Cover.select state id;
          chosen := Instance.classifier inst id :: !chosen
        done;
        abs_float
          (Cover.covered_utility state -. Cover.utility_of_selection inst !chosen)
        < 1e-9
      end)

let cover_exact_union_semantics () =
  (* Coverage requires the union to be exactly the query: a superset
     classifier never covers. *)
  let inst =
    Instance.create ~budget:10.0
      ~queries:[| (ps [ 0 ], 1.0); (ps [ 0; 1 ], 1.0) |]
      ~cost:(fun _ -> 1.0) ()
  in
  let state = Cover.create inst in
  ignore (Cover.select_set state (ps [ 0; 1 ]));
  (* XY covers xy but NOT the singleton query x. *)
  Alcotest.(check (float 1e-9)) "only xy covered" 1.0 (Cover.covered_utility state);
  Alcotest.(check int) "one query covered" 1 (Cover.covered_count state)

let cover_residual_shrinks () =
  let inst =
    Instance.create ~budget:10.0 ~queries:[| (ps [ 0; 1; 2 ], 1.0) |] ~cost:(fun _ -> 1.0) ()
  in
  let state = Cover.create inst in
  Alcotest.(check bool) "initial residual is the query" true
    (Propset.equal (Cover.residual state 0) (ps [ 0; 1; 2 ]));
  ignore (Cover.select_set state (ps [ 1 ]));
  Alcotest.(check bool) "after Y the residual is xz" true
    (Propset.equal (Cover.residual state 0) (ps [ 0; 2 ]));
  ignore (Cover.select_set state (ps [ 0; 2 ]));
  Alcotest.(check bool) "covered" true (Cover.is_covered state 0);
  Alcotest.(check bool) "empty residual" true (Propset.is_empty (Cover.residual state 0))

let cover_select_traced () =
  let inst = Fixtures.figure1 ~budget:11.0 in
  let state = Cover.create inst in
  ignore (Cover.select_set state (ps [ 1; 2 ]));
  let id = match Instance.classifier_id inst (ps [ 0; 2 ]) with Some i -> i | None -> -1 in
  let newly = Cover.select_traced state id in
  Alcotest.(check int) "XZ completes two queries (xz and xyz)" 2 (List.length newly);
  Alcotest.(check (list int)) "re-selection reports nothing" [] (Cover.select_traced state id)

let cover_clone_independent () =
  let inst = Fixtures.figure1 ~budget:11.0 in
  let a = Cover.create inst in
  let b = Cover.clone a in
  ignore (Cover.select_set b (ps [ 0; 1; 2 ]));
  Alcotest.(check (float 1e-9)) "original untouched" 0.0 (Cover.covered_utility a);
  Alcotest.(check (float 1e-9)) "clone advanced" 8.0 (Cover.covered_utility b)

(* --- Covers DP --- *)

let cheapest_cover_matches_brute =
  QCheck.Test.make ~name:"cheapest-cover DP is optimal (vs subset brute force)" ~count:100
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~max_len:3 ~budget:100.0 () in
      let state = Cover.create inst in
      let ok = ref true in
      for qi = 0 to Instance.num_queries inst - 1 do
        let q = Instance.query inst qi in
        (* Brute force over classifier subsets contained in q. *)
        let cands =
          List.filter_map (fun c -> Instance.classifier_id inst c) (Propset.subsets q)
        in
        let best = ref infinity in
        let rec go rest acc_cost acc_union =
          if Propset.equal acc_union q then best := min !best acc_cost
          else
            match rest with
            | [] -> ()
            | id :: tl ->
                go tl (acc_cost +. Instance.cost inst id)
                  (Propset.union acc_union (Instance.classifier inst id));
                go tl acc_cost acc_union
        in
        go cands 0.0 Propset.empty;
        (match Covers.cheapest_cover state qi with
        | Some (cost, ids) ->
            let union =
              List.fold_left
                (fun acc id -> Propset.union acc (Instance.classifier inst id))
                Propset.empty ids
            in
            if not (Propset.equal union q) then ok := false;
            if abs_float (cost -. !best) > 1e-9 then ok := false
        | None -> if !best < infinity then ok := false)
      done;
      !ok)

(* --- Decompose / Prune --- *)

let decompose_l1_is_knapsack () =
  (* Observation 4.3: with only singleton queries the decomposition is a
     pure knapsack; the QK side is empty. *)
  let queries = Array.init 5 (fun i -> (ps [ i ], float_of_int (i + 1))) in
  let inst = Instance.create ~budget:3.0 ~queries ~cost:(fun _ -> 1.0) () in
  let state = Cover.create inst in
  let knap, qkp = Decompose.build state ~budget:3.0 in
  Alcotest.(check int) "five items" 5 (Array.length knap.Decompose.values);
  (* The QK side holds only the items (as bonus-edge endpoints) plus the
     zero-cost virtual node: no genuine 2-cover edges exist. *)
  let g = qkp.Decompose.qk.Bcc_qk.Qk.graph in
  Alcotest.(check int) "QK = items + virtual node" 6 (Bcc_graph.Graph.n g);
  Alcotest.(check int) "only bonus edges" 5 (Bcc_graph.Graph.m g);
  Alcotest.(check bool) "virtual node marked -1" true
    (Array.exists (fun id -> id = -1) qkp.Decompose.node_classifier)

let decompose_respects_allowed () =
  let inst = Fixtures.figure2 ~budget:2.0 in
  let state = Cover.create inst in
  let knap, qkp = Decompose.build ~allowed:(fun _ -> false) state ~budget:2.0 in
  Alcotest.(check int) "no items when everything is filtered" 0
    (Array.length knap.Decompose.values);
  Alcotest.(check int) "no QK nodes either" 0
    (Bcc_graph.Graph.n qkp.Decompose.qk.Bcc_qk.Qk.graph)

let prune_uniform_keeps_singletons () =
  (* With uniform costs rule 1 reduces the universe to singletons
     (Section 4.2). *)
  let queries = [| (ps [ 0; 1 ], 1.0); (ps [ 1; 2; 3 ], 2.0) |] in
  let inst = Instance.create ~budget:100.0 ~queries ~cost:(fun _ -> 1.0) () in
  let keep = Prune.rule1 ~mode:`Paper inst in
  for id = 0 to Instance.num_classifiers inst - 1 do
    let len = Propset.length (Instance.classifier inst id) in
    Alcotest.(check bool)
      (Format.asprintf "classifier %a" (Propset.pp ?names:None) (Instance.classifier inst id))
      (len = 1) keep.(id)
  done

let prune_budget_guard () =
  (* Tight budget: the singletons cost 3 each (sum 6 > budget 2) but the
     pair classifier costs 2 — the guard must keep it. *)
  let queries = [| (ps [ 0; 1 ], 1.0) |] in
  let cost c = if Propset.length c = 2 then 2.0 else 3.0 in
  let inst = Instance.create ~budget:2.0 ~queries ~cost () in
  let keep = Prune.rule1 inst in
  let id = match Instance.classifier_id inst (ps [ 0; 1 ]) with Some i -> i | None -> -1 in
  Alcotest.(check bool) "XY survives the guard" true keep.(id)

let prune_keeps_cheap_conjunctions () =
  (* A conjunction much cheaper than its parts is kept: C(XY)=1,
     singletons cost 10 each (replacement 20 > 2*1). *)
  let queries = [| (ps [ 0; 1 ], 1.0) |] in
  let cost c = if Propset.length c = 2 then 1.0 else 10.0 in
  let inst = Instance.create ~budget:100.0 ~queries ~cost () in
  let keep = Prune.rule1 inst in
  let id = match Instance.classifier_id inst (ps [ 0; 1 ]) with Some i -> i | None -> -1 in
  Alcotest.(check bool) "cheap XY kept" true keep.(id)

let suite =
  [
    qtest propset_union_commutes;
    qtest propset_inter_diff;
    qtest propset_subset_reflexive;
    Alcotest.test_case "propset sorts and dedups" `Quick propset_sorted_dedup;
    qtest propset_subsets_count;
    Alcotest.test_case "propset position masks" `Quick propset_positions;
    Alcotest.test_case "propset named printing" `Quick propset_pp_names;
    Alcotest.test_case "instance merges duplicate queries" `Quick instance_merges_duplicates;
    Alcotest.test_case "instance derives CL correctly" `Quick instance_classifier_universe;
    Alcotest.test_case "instance restrict" `Quick instance_restrict;
    Alcotest.test_case "instance rejects negative utility" `Quick instance_rejects_negative;
    qtest containment_index_sound;
    qtest cover_incremental_matches_oracle;
    Alcotest.test_case "coverage is exact-union" `Quick cover_exact_union_semantics;
    Alcotest.test_case "residuals shrink" `Quick cover_residual_shrinks;
    Alcotest.test_case "select_traced reports new covers" `Quick cover_select_traced;
    Alcotest.test_case "clone independence" `Quick cover_clone_independent;
    qtest cheapest_cover_matches_brute;
    Alcotest.test_case "decompose l=1 is knapsack" `Quick decompose_l1_is_knapsack;
    Alcotest.test_case "decompose respects allowed filter" `Quick decompose_respects_allowed;
    Alcotest.test_case "paper-mode prune keeps singletons under uniform costs" `Quick
      prune_uniform_keeps_singletons;
    Alcotest.test_case "prune budget guard" `Quick prune_budget_guard;
    Alcotest.test_case "prune keeps cheap conjunctions" `Quick prune_keeps_cheap_conjunctions;
  ]
