test/test_dks.ml: Alcotest Array Bcc_dks Bcc_graph Bcc_util Fixtures List Printf QCheck QCheck_alcotest
