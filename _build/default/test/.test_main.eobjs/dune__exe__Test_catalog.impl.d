test/test_catalog.ml: Alcotest Bcc_catalog Bcc_core Fixtures List Printf
