test/test_util.ml: Alcotest Array Bcc_util Gen Hashtbl List QCheck QCheck_alcotest String
