test/test_setcover.ml: Alcotest Array Bcc_setcover Bcc_util QCheck QCheck_alcotest
