test/test_solver.ml: Alcotest Array Bcc_core Bcc_dks Bcc_graph Bcc_knapsack Bcc_util Fixtures Fun List Printf QCheck QCheck_alcotest
