test/test_qk.ml: Alcotest Array Bcc_dks Bcc_graph Bcc_qk Bcc_util Fixtures List QCheck QCheck_alcotest
