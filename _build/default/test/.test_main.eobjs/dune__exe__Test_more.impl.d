test/test_more.ml: Alcotest Array Bcc_catalog Bcc_core Bcc_data Bcc_dks Bcc_graph Bcc_knapsack Bcc_qk Bcc_util Filename Fixtures List Printf QCheck QCheck_alcotest Sys
