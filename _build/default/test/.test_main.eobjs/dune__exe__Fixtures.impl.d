test/fixtures.ml: Array Bcc_core Bcc_graph Bcc_util
