test/test_theory.ml: Alcotest Array Bcc_core Bcc_dks Bcc_graph Bcc_knapsack Bcc_qk Bcc_util Fixtures List QCheck QCheck_alcotest
