test/test_core_model.ml: Alcotest Array Bcc_core Bcc_graph Bcc_qk Bcc_util Fixtures Format Gen List QCheck QCheck_alcotest
