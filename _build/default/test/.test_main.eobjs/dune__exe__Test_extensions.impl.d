test/test_extensions.ml: Alcotest Bcc_core Bcc_util Fixtures List QCheck QCheck_alcotest
