test/test_data.ml: Alcotest Array Bcc_core Bcc_data Bcc_util Filename Fixtures List Printf Sys
