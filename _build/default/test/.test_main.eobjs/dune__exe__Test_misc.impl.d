test/test_misc.ml: Alcotest Array Bcc_core Bcc_data Bcc_graph Bcc_util Fixtures Format String Sys
