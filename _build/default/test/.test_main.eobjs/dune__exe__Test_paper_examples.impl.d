test/test_paper_examples.ml: Alcotest Array Bcc_core Bcc_graph Bcc_qk Fixtures List
