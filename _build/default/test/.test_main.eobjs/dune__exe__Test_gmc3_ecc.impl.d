test/test_gmc3_ecc.ml: Alcotest Bcc_core Bcc_util Fixtures List Printf QCheck QCheck_alcotest
