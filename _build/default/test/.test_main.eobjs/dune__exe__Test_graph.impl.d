test/test_graph.ml: Alcotest Array Bcc_graph Bcc_util Fixtures Fun List QCheck QCheck_alcotest
