test/test_knapsack.ml: Alcotest Array Bcc_knapsack Bcc_util List QCheck QCheck_alcotest
