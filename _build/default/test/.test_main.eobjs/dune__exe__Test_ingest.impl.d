test/test_ingest.ml: Alcotest Array Bcc_core Bcc_data Bcc_dks Bcc_graph Bcc_util Filename Fixtures Printf QCheck QCheck_alcotest Sys
