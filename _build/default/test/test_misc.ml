(* Remaining small-module coverage: timers, stats printing, leverage
   scores, workload stats, solution utilities. *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Cover = Bcc_core.Cover
module Decompose = Bcc_core.Decompose
module Prune = Bcc_core.Prune
module Graph = Bcc_graph.Graph
module Workload_stats = Bcc_data.Workload_stats
module Timer = Bcc_util.Timer

let ps = Fixtures.ps

let timer_measures () =
  let (), t = Timer.time (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0))) in
  Alcotest.(check bool) "non-negative duration" true (t >= 0.0);
  let t0 = Timer.start () in
  Alcotest.(check bool) "elapsed grows" true (Timer.elapsed_s t0 >= 0.0)

let solution_better_prefers_utility_then_cost () =
  let a = { Solution.classifiers = []; cost = 5.0; utility = 10.0 } in
  let b = { Solution.classifiers = []; cost = 1.0; utility = 8.0 } in
  Alcotest.(check (float 1e-12)) "higher utility wins" 10.0
    (Solution.better a b).Solution.utility;
  let c = { Solution.classifiers = []; cost = 3.0; utility = 10.0 } in
  Alcotest.(check (float 1e-12)) "ties go to lower cost" 3.0
    (Solution.better a c).Solution.cost

let solution_pp_renders () =
  let inst = Fixtures.figure1 ~budget:3.0 in
  let sol = Bcc_core.Solver.solve inst in
  let s = Format.asprintf "%a" (Solution.pp ?names:None) sol in
  Alcotest.(check bool) "mentions cost" true (String.length s > 10)

let leverage_scores_rank_hubs () =
  (* A star: the hub must get the top leverage score. *)
  let g = Graph.of_edges 5 [ (0, 1, 1.0); (0, 2, 1.0); (0, 3, 1.0); (0, 4, 1.0) ] in
  let scores = Decompose.leverage_scores g in
  Array.iteri
    (fun v s ->
      if v <> 0 then
        Alcotest.(check bool) "hub dominates" true (scores.(0) >= s -. 1e-12))
    scores;
  Array.iter (fun s -> Alcotest.(check bool) "non-negative" true (s >= 0.0)) scores

let prune_kept_count () =
  Alcotest.(check int) "count" 2 (Prune.kept_count [| true; false; true |]);
  Alcotest.(check int) "empty" 0 (Prune.kept_count [||])

let workload_stats_on_figure1 () =
  let inst = Fixtures.figure1 ~budget:3.0 in
  let stats = Workload_stats.compute inst in
  Alcotest.(check int) "queries" 3 stats.Workload_stats.num_queries;
  Alcotest.(check int) "properties" 3 stats.Workload_stats.num_properties;
  Alcotest.(check int) "max length" 3 stats.Workload_stats.max_length;
  Alcotest.(check (float 1e-9)) "total utility" 11.0 stats.Workload_stats.total_utility;
  Alcotest.(check (float 1e-6)) "avg length 7/3" (7.0 /. 3.0) stats.Workload_stats.avg_length;
  (* YZ is the only free classifier. *)
  Alcotest.(check int) "one free classifier" 1 stats.Workload_stats.zero_cost_classifiers;
  let rendered = Format.asprintf "%a" Workload_stats.pp stats in
  Alcotest.(check bool) "pp renders" true (String.length rendered > 20)

let instance_pp_summary () =
  let inst = Fixtures.figure1 ~budget:3.0 in
  let s = Format.asprintf "%a" Instance.pp_summary inst in
  Alcotest.(check bool) "mentions the name" true (String.length s > 10)

let cover_full_mask_consistency () =
  let inst = Fixtures.figure1 ~budget:11.0 in
  let state = Cover.create inst in
  for qi = 0 to Instance.num_queries inst - 1 do
    let len = Propset.length (Instance.query inst qi) in
    Alcotest.(check int) "full mask is 2^len - 1" ((1 lsl len) - 1)
      (Cover.full_mask state qi);
    Alcotest.(check int) "initially nothing covered" 0 (Cover.mask state qi)
  done

let suite =
  [
    Alcotest.test_case "timer measures" `Quick timer_measures;
    Alcotest.test_case "solution better ordering" `Quick solution_better_prefers_utility_then_cost;
    Alcotest.test_case "solution pp renders" `Quick solution_pp_renders;
    Alcotest.test_case "leverage scores rank hubs" `Quick leverage_scores_rank_hubs;
    Alcotest.test_case "prune kept_count" `Quick prune_kept_count;
    Alcotest.test_case "workload stats on figure1" `Quick workload_stats_on_figure1;
    Alcotest.test_case "instance pp summary" `Quick instance_pp_summary;
    Alcotest.test_case "cover mask consistency" `Quick cover_full_mask_consistency;
  ]
