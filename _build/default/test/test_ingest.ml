(* Tests for the query-log ingestion front end and the branch-and-bound
   exact HkS. *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Symtab = Bcc_core.Symtab
module Log_parser = Bcc_data.Log_parser
module Graph = Bcc_graph.Graph
module Exact = Bcc_dks.Exact
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* --- log parser --- *)

let sample_log =
  "# top queries, Q1\n\
   wooden table\t35\n\
   running shoes\t20\n\
   Wooden  Table\t5\n\
   table\n\
   \n\
   a b c d e f g\t3\n"

let parse_sample () =
  let names, queries, stats = Log_parser.parse_string sample_log in
  Alcotest.(check int) "five payload lines" 5 stats.Log_parser.lines;
  Alcotest.(check int) "one dropped (7 words)" 1 stats.Log_parser.dropped_too_long;
  Alcotest.(check int) "three distinct queries" 3 stats.Log_parser.queries;
  (* "wooden table" + "Wooden  Table" merge (case/whitespace). *)
  let wooden = Symtab.intern names "wooden" and table = Symtab.intern names "table" in
  let wt = Propset.of_list [ wooden; table ] in
  let count =
    Array.fold_left
      (fun acc (q, c) -> if Propset.equal q wt then acc +. c else acc)
      0.0 queries
  in
  Alcotest.(check (float 1e-9)) "counts accumulate across casings" 40.0 count;
  (* "table" without a count defaults to frequency 1. *)
  let t = Propset.singleton table in
  let count_t =
    Array.fold_left
      (fun acc (q, c) -> if Propset.equal q t then acc +. c else acc)
      0.0 queries
  in
  Alcotest.(check (float 1e-9)) "count defaults to 1" 1.0 count_t

let parse_rejects_bad_count () =
  Alcotest.(check bool) "malformed count raises" true
    (try
       ignore (Log_parser.parse_string "shoes\tnotanumber\n");
       false
     with Failure _ -> true)

let load_roundtrip () =
  let path = Filename.temp_file "bcclog" ".tsv" in
  let oc = open_out path in
  output_string oc sample_log;
  close_out oc;
  let inst, stats = Log_parser.load ~budget:50.0 path in
  Sys.remove path;
  Alcotest.(check int) "instance carries the distinct queries" stats.Log_parser.queries
    (Instance.num_queries inst);
  Alcotest.(check (float 1e-9)) "budget set" 50.0 (Instance.budget inst);
  (* Solvable end to end. *)
  let sol = Bcc_core.Solver.solve inst in
  Alcotest.(check bool) "solution verifies" true (Bcc_core.Solution.verify inst sol)

(* --- branch-and-bound exact HkS --- *)

let bnb_matches_enumeration =
  QCheck.Test.make ~name:"dks_bnb matches subset enumeration" ~count:80 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 8 in
      let g =
        Fixtures.random_graph ~seed:(seed * 7 + 1) ~n ~density:0.4 ~max_cost:1 ~max_weight:9
      in
      let k = 1 + Rng.int rng n in
      let _, enum = Exact.dks g ~k in
      let sel, bnb = Exact.dks_bnb g ~k in
      abs_float (enum -. bnb) < 1e-9
      && abs_float (Graph.induced_weight g sel -. bnb) < 1e-9
      && Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 sel <= k)

let bnb_scales_past_enumeration () =
  (* 40 nodes would need 2^40 subsets; the bound makes it quick. *)
  let g = Fixtures.random_graph ~seed:3 ~n:40 ~density:0.2 ~max_cost:1 ~max_weight:9 in
  let (sel, v), t = Bcc_util.Timer.time (fun () -> Exact.dks_bnb g ~k:6) in
  Alcotest.(check bool) (Printf.sprintf "finished in %.2fs" t) true (t < 30.0);
  Alcotest.(check (float 1e-9)) "selection value consistent" v (Graph.induced_weight g sel);
  (* The heuristic portfolio must not beat the exact optimum. *)
  let inst = Bcc_dks.Hks.make g ~k:6 in
  let heur = Bcc_dks.Hks.value inst (Bcc_dks.Hks.solve inst) in
  Alcotest.(check bool) "exact >= heuristic" true (v +. 1e-9 >= heur)

let bnb_k_extremes () =
  let g = Graph.of_edges 3 [ (0, 1, 2.0) ] in
  let _, v0 = Exact.dks_bnb g ~k:0 in
  Alcotest.(check (float 1e-9)) "k=0" 0.0 v0;
  let _, vall = Exact.dks_bnb g ~k:10 in
  Alcotest.(check (float 1e-9)) "k >= n takes everything" 2.0 vall

let suite =
  [
    Alcotest.test_case "parse sample log" `Quick parse_sample;
    Alcotest.test_case "parse rejects bad count" `Quick parse_rejects_bad_count;
    Alcotest.test_case "load + solve roundtrip" `Quick load_roundtrip;
    qtest bnb_matches_enumeration;
    Alcotest.test_case "bnb scales past enumeration" `Slow bnb_scales_past_enumeration;
    Alcotest.test_case "bnb k extremes" `Quick bnb_k_extremes;
  ]
