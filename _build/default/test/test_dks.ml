(* Tests for the DkS/HkS solver portfolio, DkSH peeling and the densest
   (ratio) peeling — the engines behind A^QK_H and A^ECC. *)

module Graph = Bcc_graph.Graph
module Hypergraph = Bcc_graph.Hypergraph
module Hks = Bcc_dks.Hks
module Exact = Bcc_dks.Exact
module Dksh = Bcc_dks.Dksh
module Densest = Bcc_dks.Densest
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let value_of_bool_sel g sel = Graph.induced_weight g sel

(* --- HkS --- *)

let hks_value_known () =
  let g = Graph.of_edges 3 [ (0, 1, 2.0); (1, 2, 4.0) ] in
  let inst = Hks.make g ~k:2 in
  Alcotest.(check (float 1e-9)) "value of {1,2}" 4.0 (Hks.value inst [| 0; 1; 1 |]);
  Alcotest.(check (float 1e-9)) "value of all" 6.0 (Hks.value inst [| 1; 1; 1 |])

let hks_blowup_fractional_value () =
  (* One edge of weight 6 between nodes of multiplicity 2 and 3: selecting
     1 copy of each yields 6 * (1/2) * (1/3) = 1. *)
  let g = Graph.of_edges ~node_costs:[| 2.0; 3.0 |] 2 [ (0, 1, 6.0) ] in
  let inst = Hks.make ~mult:[| 2; 3 |] g ~k:2 in
  Alcotest.(check (float 1e-9)) "per-copy scaling" 1.0 (Hks.value inst [| 1; 1 |]);
  Alcotest.(check (float 1e-9)) "full selection recovers the weight" 6.0
    (Hks.value inst [| 2; 3 |])

let hks_feasibility =
  QCheck.Test.make ~name:"all HkS solvers return feasible selections" ~count:80
    QCheck.small_int (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:14 ~density:0.3 ~max_cost:4 ~max_weight:9 in
      let mult = Array.init 14 (fun v -> int_of_float (Graph.node_cost g v)) in
      let total = Array.fold_left ( + ) 0 mult in
      let k = 1 + (seed mod total) in
      let inst = Hks.make ~mult g ~k in
      List.for_all
        (fun sel -> Hks.feasible inst sel)
        [ Hks.peel inst; Hks.greedy_add inst; Hks.spectral inst; Hks.solve inst ])

let hks_local_search_improves =
  QCheck.Test.make ~name:"local search never decreases the value" ~count:80 QCheck.small_int
    (fun seed ->
      let g = Fixtures.random_graph ~seed ~n:12 ~density:0.35 ~max_cost:3 ~max_weight:9 in
      let inst = Hks.make g ~k:5 in
      let sel = Hks.greedy_add inst in
      let polished = Hks.local_search inst sel in
      Hks.value inst polished +. 1e-9 >= Hks.value inst sel && Hks.feasible inst polished)

(* On small unit-cost graphs the portfolio should be close to the exact
   optimum; [41] reports 65-80%, we require 60% as a safety margin and
   check the average is much higher. *)
let hks_quality () =
  let ratios =
    List.map
      (fun seed ->
        let g = Fixtures.random_graph ~seed ~n:12 ~density:0.4 ~max_cost:1 ~max_weight:9 in
        let k = 5 in
        let _, opt = Exact.dks g ~k in
        if opt <= 0.0 then 1.0
        else begin
          let sel = Hks.solve (Hks.make g ~k) in
          let got =
            value_of_bool_sel g (Array.map (fun t -> t > 0) sel)
          in
          got /. opt
        end)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
  in
  let avg = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
  List.iter
    (fun r -> Alcotest.(check bool) "every instance above 60% of optimal" true (r >= 0.6))
    ratios;
  Alcotest.(check bool) "average above 90% of optimal" true (avg >= 0.9)

let hks_k_extremes () =
  let g = Graph.of_edges 4 [ (0, 1, 1.0); (2, 3, 5.0) ] in
  let inst0 = Hks.make g ~k:0 in
  Alcotest.(check int) "k=0 selects nothing" 0 (Hks.copies (Hks.solve inst0));
  let inst_all = Hks.make g ~k:10 in
  Alcotest.(check int) "k >= n selects everything" 4 (Hks.copies (Hks.solve inst_all))

(* --- Exact --- *)

let exact_dks_known () =
  (* Triangle 0-1-2 plus pendant 3: densest 3-subgraph is the triangle. *)
  let g = Graph.of_edges 4 [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0); (2, 3, 1.0) ] in
  let sel, v = Exact.dks g ~k:3 in
  Alcotest.(check (float 1e-9)) "triangle weight" 3.0 v;
  Alcotest.(check (array bool)) "triangle nodes" [| true; true; true; false |] sel

let exact_qk_known () =
  let g =
    Graph.of_edges ~node_costs:[| 1.0; 1.0; 5.0 |] 3 [ (0, 1, 3.0); (1, 2, 10.0) ]
  in
  let _, v = Exact.qk g ~budget:2.0 in
  Alcotest.(check (float 1e-9)) "budget 2 affords only {0,1}" 3.0 v;
  let _, v6 = Exact.qk g ~budget:7.0 in
  Alcotest.(check (float 1e-9)) "budget 7 affords everything" 13.0 v6

(* --- DkSH --- *)

let dksh_peel_known () =
  let h =
    Hypergraph.create ~node_costs:[| 1.0; 1.0; 1.0; 1.0 |]
      ~edges:[| ([| 0; 1; 2 |], 1.0); ([| 0; 1; 3 |], 1.0); ([| 1; 2; 3 |], 1.0) |]
  in
  let sel = Dksh.peel h ~k:3 in
  Alcotest.(check int) "keeps k nodes" 3
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 sel);
  Alcotest.(check bool) "keeps at least one full edge" true (Dksh.value h sel >= 1.0)

let dksh_k_ge_n () =
  let h = Hypergraph.create ~node_costs:[| 1.0; 1.0 |] ~edges:[| ([| 0; 1 |], 2.0) |] in
  Alcotest.(check (float 1e-9)) "everything kept" 2.0 (Dksh.value h (Dksh.peel h ~k:5))

(* --- Densest (ratio) --- *)

let densest_known () =
  (* Heavy pair {0,1} (weight 10, cost 2) vs light triangle (weight 3,
     cost 3): best ratio is the pair at 5. *)
  let h =
    Hypergraph.create ~node_costs:[| 1.0; 1.0; 1.0; 1.0; 1.0 |]
      ~edges:
        [|
          ([| 0; 1 |], 10.0); ([| 2; 3 |], 1.0); ([| 3; 4 |], 1.0); ([| 2; 4 |], 1.0);
        |]
    in
  let _, ratio = Densest.peel h in
  Alcotest.(check bool) "finds the heavy pair's ratio" true (ratio >= 5.0 -. 1e-9)

let densest_zero_cost_infinite_ratio () =
  let h = Hypergraph.create ~node_costs:[| 0.0; 0.0 |] ~edges:[| ([| 0; 1 |], 3.0) |] in
  let _, ratio = Densest.peel h in
  Alcotest.(check bool) "free positive weight = infinite ratio" true (ratio = infinity)

let densest_vs_exact =
  QCheck.Test.make ~name:"ratio peeling close to the exact densest ratio" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 7 in
      let node_costs = Array.init n (fun _ -> float_of_int (1 + Rng.int rng 4)) in
      let nedges = 1 + Rng.int rng 8 in
      let edges =
        Array.init nedges (fun _ ->
            let k = 2 + Rng.int rng 2 in
            (Rng.sample_without_replacement rng k n, float_of_int (1 + Rng.int rng 9)))
      in
      let h = Hypergraph.create ~node_costs ~edges in
      let _, got = Densest.peel h in
      let _, opt = Exact.densest_ratio h in
      (* Greedy peeling is an r-approximation (r = max edge size <= 3). *)
      got +. 1e-9 >= opt /. 3.0)

let spectral_finds_planted_clique () =
  (* A heavy 4-clique planted in a sparse background: the spectral
     rounding must rank the clique nodes on top. *)
  let b = Graph.builder 20 in
  List.iter
    (fun (u, v) -> Graph.add_edge b u v 10.0)
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ];
  let rng = Rng.create 7 in
  for _ = 1 to 15 do
    let u = 4 + Rng.int rng 16 and v = 4 + Rng.int rng 16 in
    if u <> v then Graph.add_edge b u v 1.0
  done;
  let g = Graph.build b in
  let inst = Hks.make g ~k:4 in
  let sel = Hks.spectral inst in
  let clique_copies = sel.(0) + sel.(1) + sel.(2) + sel.(3) in
  Alcotest.(check bool)
    (Printf.sprintf "at least 3 of 4 clique nodes selected (%d)" clique_copies)
    true (clique_copies >= 3)

let suite =
  [
    Alcotest.test_case "hks value on known graph" `Quick hks_value_known;
    Alcotest.test_case "hks blow-up value scaling" `Quick hks_blowup_fractional_value;
    qtest hks_feasibility;
    qtest hks_local_search_improves;
    Alcotest.test_case "hks portfolio quality vs exact" `Slow hks_quality;
    Alcotest.test_case "hks k extremes" `Quick hks_k_extremes;
    Alcotest.test_case "spectral finds a planted clique" `Quick spectral_finds_planted_clique;
    Alcotest.test_case "exact dks known" `Quick exact_dks_known;
    Alcotest.test_case "exact qk known" `Quick exact_qk_known;
    Alcotest.test_case "dksh peel known" `Quick dksh_peel_known;
    Alcotest.test_case "dksh k >= n" `Quick dksh_k_ge_n;
    Alcotest.test_case "densest ratio known" `Quick densest_known;
    Alcotest.test_case "densest zero-cost ratio" `Quick densest_zero_cost_infinite_ratio;
    qtest densest_vs_exact;
  ]
