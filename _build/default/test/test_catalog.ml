(* Tests for the e-commerce catalog substrate and the end-to-end
   pipeline (Section 6.2's preliminary end-to-end experiment). *)

module Propset = Bcc_core.Propset
module Catalog = Bcc_catalog.Catalog
module Trained = Bcc_catalog.Trained
module Search = Bcc_catalog.Search
module Pipeline = Bcc_catalog.Pipeline

let small_params =
  {
    Catalog.num_items = 2000;
    num_properties = 60;
    props_per_item_lo = 3;
    props_per_item_hi = 6;
    visibility = 0.4;
  }

let catalog_visibility () =
  let c = Catalog.generate ~params:small_params ~seed:1 () in
  Alcotest.(check int) "item count" 2000 (Catalog.num_items c);
  let explicit_total = ref 0 and true_total = ref 0 in
  for i = 0 to Catalog.num_items c - 1 do
    explicit_total := !explicit_total + Propset.length (Catalog.explicit_props c i);
    true_total := !true_total + Propset.length (Catalog.true_props c i);
    (* Explicit properties are a subset of the true ones. *)
    if not (Propset.subset (Catalog.explicit_props c i) (Catalog.true_props c i)) then
      Alcotest.fail "explicit props leak"
  done;
  let ratio = float_of_int !explicit_total /. float_of_int !true_total in
  Alcotest.(check bool) "visibility near 0.4" true (ratio > 0.3 && ratio < 0.5)

let ground_truth_superset_of_explicit () =
  let c = Catalog.generate ~params:small_params ~seed:2 () in
  for p = 0 to 19 do
    let q = Propset.singleton p in
    let explicit = List.length (Catalog.explicit_matches c q) in
    let truth = List.length (Catalog.ground_truth c q) in
    Alcotest.(check bool) "explicit misses items" true (explicit <= truth)
  done

let classifier_accuracy_grows_with_cost () =
  let props = Fixtures.ps [ 1; 2 ] in
  let cheap = Trained.construct ~seed:1 ~props ~cost:1.0 ~accuracy_floor:0.8 in
  let pricey = Trained.construct ~seed:1 ~props ~cost:40.0 ~accuracy_floor:0.8 in
  Alcotest.(check bool) "cost buys accuracy" true
    (Trained.accuracy pricey > Trained.accuracy cheap);
  Alcotest.(check bool) "accuracy capped" true (Trained.accuracy pricey <= 0.995)

let classifier_prediction_quality () =
  let c = Catalog.generate ~params:small_params ~seed:3 () in
  let props = Catalog.true_props c 0 in
  let target = Propset.of_list [ List.hd (Propset.to_list props) ] in
  let cl = Trained.construct ~seed:4 ~props:target ~cost:50.0 ~accuracy_floor:0.85 in
  let correct = ref 0 in
  let n = Catalog.num_items c in
  for i = 0 to n - 1 do
    let truth = Propset.subset target (Catalog.true_props c i) in
    if Trained.predict cl c i = truth then incr correct
  done;
  let acc = float_of_int !correct /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "empirical accuracy %.3f near the nominal level" acc)
    true
    (acc >= Trained.accuracy cl -. 0.03)

let search_grows_result_sets () =
  let c = Catalog.generate ~params:small_params ~seed:5 () in
  let engine = Search.create c in
  (* Pick a query with a non-trivial ground truth. *)
  let q = Propset.of_list [ 0; 1 ] in
  let before = List.length (Search.results engine q) in
  let cl = Trained.construct ~seed:6 ~props:q ~cost:60.0 ~accuracy_floor:0.9 in
  Search.deploy engine cl;
  let after = List.length (Search.results engine q) in
  Alcotest.(check bool) "deploying the exact classifier grows the result set" true
    (after >= before)

let search_quality_fields () =
  let c = Catalog.generate ~params:small_params ~seed:7 () in
  let engine = Search.create c in
  let q = Propset.singleton 0 in
  let quality = Search.evaluate engine q in
  Alcotest.(check bool) "recall in [0,1]" true
    (quality.Search.recall >= 0.0 && quality.Search.recall <= 1.0);
  Alcotest.(check bool) "precision in [0,1]" true
    (quality.Search.precision >= 0.0 && quality.Search.precision <= 1.0);
  Alcotest.(check int) "tp <= returned" quality.Search.true_positives
    (min quality.Search.true_positives quality.Search.returned)

let pipeline_end_to_end () =
  let c = Catalog.generate ~params:small_params ~seed:8 () in
  let params = { Pipeline.default_workload with num_queries = 120; budget = 150.0 } in
  let report = Pipeline.run ~params c ~seed:9 in
  Alcotest.(check bool) "selects within budget" true
    (report.Pipeline.selected.Bcc_core.Solution.cost <= 150.0 +. 1e-6);
  Alcotest.(check bool) "covers some queries" true (report.Pipeline.queries_covered > 0);
  Alcotest.(check bool) "recall improves on covered queries" true
    (report.Pipeline.avg_recall_after >= report.Pipeline.avg_recall_before -. 1e-9);
  Alcotest.(check bool) "result sets grow" true (report.Pipeline.avg_growth >= 1.0)

let pipeline_instance_shape () =
  let c = Catalog.generate ~params:small_params ~seed:10 () in
  let inst = Pipeline.instance_of_catalog c ~seed:11 in
  Alcotest.(check bool) "non-empty workload" true (Bcc_core.Instance.num_queries inst > 0);
  Alcotest.(check bool) "bounded length" true (Bcc_core.Instance.max_length inst <= 3)

let suite =
  [
    Alcotest.test_case "catalog visibility" `Quick catalog_visibility;
    Alcotest.test_case "ground truth vs explicit" `Quick ground_truth_superset_of_explicit;
    Alcotest.test_case "accuracy grows with cost" `Quick classifier_accuracy_grows_with_cost;
    Alcotest.test_case "prediction quality" `Quick classifier_prediction_quality;
    Alcotest.test_case "search result growth" `Quick search_grows_result_sets;
    Alcotest.test_case "search quality fields" `Quick search_quality_fields;
    Alcotest.test_case "pipeline end to end" `Slow pipeline_end_to_end;
    Alcotest.test_case "pipeline instance shape" `Quick pipeline_instance_shape;
  ]
