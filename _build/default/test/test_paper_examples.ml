(* The worked examples of the paper, checked end to end: Example 2.1 /
   Figure 1 (three budgets), Example 4.1 (i-covers), Example 4.5 /
   Figure 2 (Knapsack/QK decomposition), Example 4.8 (residual
   covering). *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Cover = Bcc_core.Cover
module Covers = Bcc_core.Covers
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Exact = Bcc_core.Exact
module Decompose = Bcc_core.Decompose

let ps = Fixtures.ps

let check_float = Alcotest.(check (float 1e-9))

let optimal_utility ~budget expected () =
  let inst = Fixtures.figure1 ~budget in
  let exact = Exact.solve inst in
  check_float "exact optimum" expected exact.Solution.utility;
  Alcotest.(check bool) "exact verifies" true (Solution.verify inst exact);
  let sol = Solver.solve inst in
  Alcotest.(check bool) "solver verifies" true (Solution.verify inst sol);
  check_float "A^BCC matches the optimum on Figure 1" expected sol.Solution.utility

let figure1_infinite_classifier () =
  let inst = Fixtures.figure1 ~budget:11.0 in
  Alcotest.(check (option int)) "XY is not constructible" None
    (Instance.classifier_id inst (ps [ 0; 1 ]));
  check_float "free classifier YZ" 0.0 (Instance.cost_of inst (ps [ 1; 2 ]))

let figure1_b4_solution_shape () =
  (* At budget 4 the optimum is {YZ, XZ}: xz covered exactly, xyz by the
     conjunction (Example 2.1). *)
  let inst = Fixtures.figure1 ~budget:4.0 in
  let state = Cover.create inst in
  ignore (Cover.select_set state (ps [ 1; 2 ]));
  ignore (Cover.select_set state (ps [ 0; 2 ]));
  check_float "covers xyz and xz" 9.0 (Cover.covered_utility state);
  Alcotest.(check bool) "xy uncovered" false
    (List.for_all (fun qi -> Cover.is_covered state qi)
       (List.init (Instance.num_queries inst) (fun i -> i)))

let example_41_icovers () =
  (* Q = {xyz, xy, x}; S = {X, XY, Z} covers all three; the 1-covers of S
     are {x by X, xy by XY}; the only 2-cover is xyz by {XY, Z}. *)
  let x = 0 and y = 1 and z = 2 in
  let queries = [| (ps [ x; y; z ], 1.0); (ps [ x; y ], 1.0); (ps [ x ], 1.0) |] in
  let inst = Instance.create ~budget:100.0 ~queries ~cost:(fun _ -> 1.0) () in
  let state = Cover.create inst in
  (* Before any selection: i-cover structure via the decomposition. *)
  let find_query q =
    let rec go i =
      if Propset.equal (Instance.query inst i) q then i else go (i + 1)
    in
    go 0
  in
  let qi_xyz = find_query (ps [ x; y; z ]) in
  let cands, target = Covers.candidates state qi_xyz in
  let ones = Covers.one_covers cands ~target in
  Alcotest.(check int) "xyz has exactly one 1-cover (XYZ)" 1 (List.length ones);
  let twos = Covers.two_covers cands ~target in
  (* 2-covers of xyz: {XY,Z} {XZ,Y} {YZ,X} {XY,YZ} {XY,XZ} {XZ,YZ} and
     pairs involving a singleton with a pair that overlaps, e.g. {X,YZ};
     minimality only requires that neither side alone covers. *)
  Alcotest.(check bool) "xyz has multiple 2-covers" true (List.length twos >= 6);
  (* After selecting X, XY, Z all queries are covered. *)
  List.iter
    (fun c -> Alcotest.(check bool) "selectable" true (Cover.select_set state c))
    [ ps [ x ]; ps [ x; y ]; ps [ z ] ];
  Alcotest.(check int) "all queries covered" 3 (Cover.covered_count state)

let example_45_decomposition () =
  (* Figure 2: the BCC(1) Knapsack instance has items X..Z, XY, YZ, XZ
     with values = utilities of identical queries; the BCC(2) QK
     instance is the triangle over X, Y, Z. *)
  let inst = Fixtures.figure2 ~budget:2.0 in
  let state = Cover.create inst in
  let knap, qkp = Decompose.build state ~budget:2.0 in
  (* Items: only classifiers that 1-cover a query, i.e. XY, YZ, XZ. *)
  Alcotest.(check int) "three knapsack items" 3 (Array.length knap.Decompose.values);
  Array.iteri
    (fun i id ->
      let c = Instance.classifier inst id in
      Alcotest.(check int) "items are the pair classifiers" 2 (Propset.length c);
      ignore i)
    knap.Decompose.item_classifier;
  let g = qkp.Decompose.qk.Bcc_qk.Qk.graph in
  (* At budget 2 only the 2-cover {X, Y} is affordable (Y+Z and X+Z cost
     3), so the QK graph holds X and Y, the three pair-classifier items
     and the zero-cost virtual bonus node. *)
  Alcotest.(check int) "QK nodes: X, Y, items, virtual" 6 (Bcc_graph.Graph.n g);
  Alcotest.(check int) "QK edges: one affordable 2-cover + three bonus edges" 4
    (Bcc_graph.Graph.m g);
  (* Optimal QK solution at budget 2: {X, Y} with weight 2 (Example 4.5). *)
  let qsol = Bcc_qk.Qk.solve qkp.Decompose.qk in
  Alcotest.(check (float 1e-9)) "QK optimum weight 2" 2.0 qsol.Bcc_qk.Qk.value

let example_48_residual () =
  (* Q = {xyz, xyw}.  After selecting {XZ, Y}, the residual of xyw is xw:
     XW and XYW are both residual 1-covers. *)
  let x = 0 and y = 1 and z = 2 and w = 3 in
  let queries = [| (ps [ x; y; z ], 1.0); (ps [ x; y; w ], 1.0) |] in
  let inst = Instance.create ~budget:100.0 ~queries ~cost:(fun _ -> 1.0) () in
  let state = Cover.create inst in
  ignore (Cover.select_set state (ps [ x; z ]));
  ignore (Cover.select_set state (ps [ y ]));
  let qi_xyw =
    let rec go i =
      if Propset.equal (Instance.query inst i) (ps [ x; y; w ]) then i else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "xyz covered by {XZ, Y}" true
    (Cover.is_covered state (1 - qi_xyw));
  Alcotest.(check bool) "residual of xyw is xw" true
    (Propset.equal (Cover.residual state qi_xyw) (ps [ x; w ]));
  let cands, target = Covers.candidates state qi_xyw in
  let one_ids =
    List.map
      (fun (c : Covers.candidate) -> Instance.classifier inst c.id)
      (Covers.one_covers cands ~target)
  in
  let has set = List.exists (fun c -> Propset.equal c set) one_ids in
  Alcotest.(check bool) "XW is a residual 1-cover" true (has (ps [ x; w ]));
  Alcotest.(check bool) "XYW is a residual 1-cover" true (has (ps [ x; y; w ]));
  (* And per the example, 2-covers now include {X, W}: *)
  let twos = Covers.two_covers cands ~target in
  let has_pair a b =
    List.exists
      (fun ((p : Covers.candidate), (q : Covers.candidate)) ->
        let cp = Instance.classifier inst p.id and cq = Instance.classifier inst q.id in
        (Propset.equal cp a && Propset.equal cq b)
        || (Propset.equal cp b && Propset.equal cq a))
      twos
  in
  Alcotest.(check bool) "{X, W} is a residual 2-cover" true
    (has_pair (ps [ x ]) (ps [ w ]))

let suite =
  [
    Alcotest.test_case "figure1 budget 3 -> utility 8" `Quick (optimal_utility ~budget:3.0 8.0);
    Alcotest.test_case "figure1 budget 4 -> utility 9" `Quick (optimal_utility ~budget:4.0 9.0);
    Alcotest.test_case "figure1 budget 11 -> utility 11" `Quick
      (optimal_utility ~budget:11.0 11.0);
    Alcotest.test_case "figure1 infinite/free classifiers" `Quick figure1_infinite_classifier;
    Alcotest.test_case "figure1 budget-4 cover structure" `Quick figure1_b4_solution_shape;
    Alcotest.test_case "example 4.1 i-covers" `Quick example_41_icovers;
    Alcotest.test_case "example 4.5 decomposition" `Quick example_45_decomposition;
    Alcotest.test_case "example 4.8 residual covering" `Quick example_48_residual;
  ]
