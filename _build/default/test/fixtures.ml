(* Shared test fixtures: the paper's worked examples and random-instance
   generators used across suites. *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Rng = Bcc_util.Rng

let ps = Propset.of_list

(* Figure 1: Q = {xyz, xz, xy}; U = 8/1/2; C(X)=5, C(Y)=C(Z)=C(XYZ)=3,
   C(XZ)=4, C(YZ)=0, C(XY)=inf.  Properties x=0, y=1, z=2. *)
let figure1 ~budget =
  let x = 0 and y = 1 and z = 2 in
  let queries =
    [| (ps [ x; y; z ], 8.0); (ps [ x; z ], 1.0); (ps [ x; y ], 2.0) |]
  in
  let cost c =
    if Propset.equal c (ps [ x ]) then 5.0
    else if Propset.equal c (ps [ y ]) then 3.0
    else if Propset.equal c (ps [ z ]) then 3.0
    else if Propset.equal c (ps [ x; y; z ]) then 3.0
    else if Propset.equal c (ps [ x; z ]) then 4.0
    else if Propset.equal c (ps [ y; z ]) then 0.0
    else if Propset.equal c (ps [ x; y ]) then infinity
    else infinity
  in
  Instance.create ~name:"figure1" ~budget ~queries ~cost ()

(* Figure 2: Q = {xy, yz, xz}; U(xy)=2, U(yz)=1, U(xz)=1;
   C(X)=C(Y)=1, C(Z)=2, C(XY)=2, C(YZ)=1, C(XZ)=1; budget 2. *)
let figure2 ~budget =
  let x = 0 and y = 1 and z = 2 in
  let queries = [| (ps [ x; y ], 2.0); (ps [ y; z ], 1.0); (ps [ x; z ], 1.0) |] in
  let cost c =
    if Propset.equal c (ps [ x ]) then 1.0
    else if Propset.equal c (ps [ y ]) then 1.0
    else if Propset.equal c (ps [ z ]) then 2.0
    else if Propset.equal c (ps [ x; y ]) then 2.0
    else if Propset.equal c (ps [ y; z ]) then 1.0
    else if Propset.equal c (ps [ x; z ]) then 1.0
    else infinity
  in
  Instance.create ~name:"figure2" ~budget ~queries ~cost ()

(* Small random instances for oracle comparisons. *)
let random_instance ?(max_len = 3) ?(num_props = 6) ?(num_queries = 6) ~seed ~budget () =
  let rng = Rng.create seed in
  let queries =
    Array.init num_queries (fun _ ->
        let len = 1 + Rng.int rng max_len in
        let props = Rng.sample_without_replacement rng (min len num_props) num_props in
        (Propset.of_array props, float_of_int (1 + Rng.int rng 9)))
  in
  let cost c =
    let h = Rng.create ((Propset.hash c * 131) lxor seed) in
    match Rng.int h 12 with
    | 0 -> 0.0
    | 11 -> infinity
    | k -> float_of_int k
  in
  Instance.create ~name:"random" ~budget ~queries ~cost ()

let random_graph ~seed ~n ~density ~max_cost ~max_weight =
  let rng = Rng.create seed in
  let b = Bcc_graph.Graph.builder n in
  for v = 0 to n - 1 do
    Bcc_graph.Graph.set_node_cost b v (float_of_int (1 + Rng.int rng max_cost))
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng 1.0 < density then
        Bcc_graph.Graph.add_edge b u v (float_of_int (1 + Rng.int rng max_weight))
    done
  done;
  Bcc_graph.Graph.build b
