(* Tests for the complementary problems: GMC3 (Theorem 5.3) and ECC
   (Theorem 5.4). *)

module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Gmc3 = Bcc_core.Gmc3
module Ecc = Bcc_core.Ecc
module Baselines = Bcc_core.Baselines
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest
let ps = Fixtures.ps

(* --- GMC3 --- *)

let full_cover_cost_figure1 () =
  (* Covering all of Figure 1 optimally costs 11 (X+Y for xy, Z for xz,
     xyz follows).  Figure 1 has l = 3, so the MC3 dispatcher uses the
     greedy set-cover heuristic, which lands within its approximation
     factor (it picks XZ first and pays 12). *)
  let inst = Fixtures.figure1 ~budget:0.0 in
  match Gmc3.full_cover_cost inst with
  | Some c ->
      Alcotest.(check bool)
        (Printf.sprintf "full-cover cost %.0f within [11, 22]" c)
        true
        (c >= 11.0 -. 1e-9 && c <= 22.0 +. 1e-9)
  | None -> Alcotest.fail "figure1 is fully coverable"

let gmc3_reaches_targets () =
  let inst = Fixtures.figure1 ~budget:0.0 in
  List.iter
    (fun (target, max_cost) ->
      let r = Gmc3.solve inst ~target in
      Alcotest.(check bool)
        (Printf.sprintf "target %.0f reached" target)
        true r.Gmc3.reached;
      Alcotest.(check bool)
        (Printf.sprintf "utility %.1f >= target %.1f" r.Gmc3.solution.Solution.utility target)
        true
        (r.Gmc3.solution.Solution.utility +. 1e-9 >= target);
      Alcotest.(check bool)
        (Printf.sprintf "cost %.1f within %.1f" r.Gmc3.solution.Solution.cost max_cost)
        true
        (r.Gmc3.solution.Solution.cost <= max_cost +. 1e-9))
    [ (8.0, 4.0); (9.0, 5.0); (11.0, 11.0) ]

let gmc3_impossible_target () =
  let inst = Fixtures.figure1 ~budget:0.0 in
  let r = Gmc3.solve inst ~target:1000.0 in
  Alcotest.(check bool) "unreachable target reported" false r.Gmc3.reached

let gmc3_random_targets =
  QCheck.Test.make ~name:"GMC3 meets reachable targets on random instances" ~count:25
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~max_len:2 ~budget:0.0 () in
      match Gmc3.full_cover_cost inst with
      | None -> true (* some query uncoverable; nothing to assert *)
      | Some _ ->
          let target = 0.5 *. Instance.total_utility inst in
          let r = Gmc3.solve inst ~target in
          (not r.Gmc3.reached) = false
          && r.Gmc3.solution.Solution.utility +. 1e-9 >= target)

let gmc3_baseline_variants () =
  let inst = Fixtures.figure1 ~budget:0.0 in
  let target = 9.0 in
  List.iter
    (fun f ->
      let sol = f inst (Baselines.Target target) in
      Alcotest.(check bool) "baseline reaches the target" true
        (sol.Solution.utility +. 1e-9 >= target))
    [ Baselines.ig1; Baselines.ig2; Baselines.rand ~seed:3 ]

(* --- ECC --- *)

let ecc_figure1 () =
  (* Best utility/cost ratio on Figure 1 is XYZ: 8/3. *)
  let inst = Fixtures.figure1 ~budget:0.0 in
  let sol = Ecc.solve inst in
  Alcotest.(check (float 1e-6)) "ratio 8/3" (8.0 /. 3.0) (Ecc.ratio_of sol)

let ecc_free_cover_infinite () =
  (* A query coverable by a free classifier gives an infinite ratio. *)
  let queries = [| (ps [ 0; 1 ], 5.0) |] in
  let cost c = if Propset.length c = 2 then 0.0 else 10.0 in
  let inst = Instance.create ~budget:0.0 ~queries ~cost () in
  let sol = Ecc.solve inst in
  Alcotest.(check bool) "infinite ratio" true (Ecc.ratio_of sol = infinity)

let ecc_prefers_shared_singletons () =
  (* Triangle with cheap singletons: {X,Y,Z} covers 3 queries of utility
     10 each at cost 3 (ratio 10) vs any pair classifier at ratio
     10/2=5. *)
  let queries = [| (ps [ 0; 1 ], 10.0); (ps [ 1; 2 ], 10.0); (ps [ 0; 2 ], 10.0) |] in
  let cost c = if Propset.length c = 1 then 1.0 else 2.0 in
  let inst = Instance.create ~budget:0.0 ~queries ~cost () in
  let sol = Ecc.solve inst in
  Alcotest.(check bool) "ratio at least 10" true (Ecc.ratio_of sol >= 10.0 -. 1e-9)

let ecc_never_beaten_by_baselines =
  QCheck.Test.make ~name:"A^ECC at least matches the best-ratio baselines" ~count:20
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~max_len:2 ~budget:0.0 () in
      let ours = Ecc.ratio_of (Ecc.solve inst) in
      let baseline f = Ecc.ratio_of (f inst Baselines.Best_ratio) in
      (* A^ECC solves the relaxation near-optimally; allow a small slack
         against the sharpest baseline to keep the test robust. *)
      let best = List.fold_left max 0.0 [ baseline Baselines.ig1; baseline Baselines.ig2 ] in
      ours = infinity || ours +. 1e-9 >= 0.8 *. best)

let ecc_solution_verifies =
  QCheck.Test.make ~name:"A^ECC output verifies (unbounded budget)" ~count:30
    QCheck.small_int (fun seed ->
      let inst = Fixtures.random_instance ~seed ~max_len:3 ~budget:0.0 () in
      let sol = Ecc.solve inst in
      Solution.verify (Instance.with_budget inst infinity) sol)

let suite =
  [
    Alcotest.test_case "full-cover cost on figure1" `Quick full_cover_cost_figure1;
    Alcotest.test_case "GMC3 reaches figure1 targets" `Quick gmc3_reaches_targets;
    Alcotest.test_case "GMC3 impossible target" `Quick gmc3_impossible_target;
    qtest gmc3_random_targets;
    Alcotest.test_case "GMC3 baseline variants" `Quick gmc3_baseline_variants;
    Alcotest.test_case "ECC on figure1" `Quick ecc_figure1;
    Alcotest.test_case "ECC free cover" `Quick ecc_free_cover_infinite;
    Alcotest.test_case "ECC shared singletons" `Quick ecc_prefers_shared_singletons;
    qtest ecc_never_beaten_by_baselines;
    qtest ecc_solution_verifies;
  ]
