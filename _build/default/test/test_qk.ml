(* Tests for the Quadratic Knapsack solver A^QK_H (Section 4.1) and the
   Taylor-style baselines. *)

module Graph = Bcc_graph.Graph
module Qk = Bcc_qk.Qk
module Taylor = Bcc_qk.Taylor
module Exact = Bcc_dks.Exact
module Rng = Bcc_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let tiny_instance seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 6 in
  let g =
    Fixtures.random_graph ~seed:(seed * 31 + 1) ~n ~density:0.4 ~max_cost:6 ~max_weight:9
  in
  let total_cost = Array.fold_left ( +. ) 0.0 (Graph.node_costs g) in
  let budget = 1.0 +. Rng.float rng total_cost in
  { Qk.graph = g; budget }

let evaluate_roundtrip () =
  let g = Graph.of_edges ~node_costs:[| 1.0; 2.0; 3.0 |] 3 [ (0, 1, 5.0); (1, 2, 1.0) ] in
  let inst = { Qk.graph = g; budget = 3.0 } in
  let sol = Qk.evaluate inst [ 0; 1; 1 ] in
  Alcotest.(check (float 1e-9)) "dedup cost" 3.0 sol.Qk.cost;
  Alcotest.(check (float 1e-9)) "value" 5.0 sol.Qk.value;
  Alcotest.(check bool) "verify" true (Qk.verify inst sol)

let verify_rejects_overbudget () =
  let g = Graph.of_edges ~node_costs:[| 5.0 |] 1 [] in
  let inst = { Qk.graph = g; budget = 1.0 } in
  Alcotest.(check bool) "over budget rejected" false
    (Qk.verify inst { Qk.nodes = [ 0 ]; cost = 5.0; value = 0.0 })

let solve_known_pair () =
  (* Budget affords exactly the heavy edge's endpoints. *)
  let g =
    Graph.of_edges ~node_costs:[| 2.0; 2.0; 1.0; 1.0 |] 4
      [ (0, 1, 10.0); (2, 3, 1.0) ]
  in
  let sol = Qk.solve { Qk.graph = g; budget = 4.0 } in
  Alcotest.(check (float 1e-9)) "takes the heavy pair" 10.0 sol.Qk.value

let solve_prefers_many_light () =
  (* Four unit-cost nodes in a clique of weight 1 edges beat one heavy
     pair of cost 4 each at budget 4: clique weight 6 > 10?  No - make
     the clique weigh more. *)
  let edges = [ (0, 1, 3.0); (0, 2, 3.0); (0, 3, 3.0); (1, 2, 3.0); (1, 3, 3.0); (2, 3, 3.0) ] in
  let g =
    Graph.of_edges ~node_costs:[| 1.0; 1.0; 1.0; 1.0; 4.0; 4.0 |] 6
      ((4, 5, 10.0) :: edges)
  in
  let sol = Qk.solve { Qk.graph = g; budget = 4.0 } in
  Alcotest.(check (float 1e-9)) "clique wins" 18.0 sol.Qk.value

let expensive_node_branch () =
  (* A single expensive hub with cheap satellites: the expensive branch
     must find hub + satellites. *)
  let g =
    Graph.of_edges ~node_costs:[| 6.0; 1.0; 1.0; 1.0 |] 4
      [ (0, 1, 5.0); (0, 2, 5.0); (0, 3, 5.0); (1, 2, 0.5) ]
  in
  let sol = Qk.solve { Qk.graph = g; budget = 9.0 } in
  Alcotest.(check bool) "hub selected" true (List.mem 0 sol.Qk.nodes);
  Alcotest.(check bool) "value includes satellites" true (sol.Qk.value >= 15.0)

let expensive_pair_branch () =
  (* Two expensive nodes joined by a huge edge; nothing else matters. *)
  let g =
    Graph.of_edges ~node_costs:[| 5.0; 5.0; 1.0; 1.0 |] 4
      [ (0, 1, 100.0); (2, 3, 1.0) ]
  in
  let sol = Qk.solve { Qk.graph = g; budget = 10.0 } in
  Alcotest.(check (float 1e-9)) "the pair is found" 100.0 sol.Qk.value

let zero_budget () =
  let g = Graph.of_edges ~node_costs:[| 1.0; 1.0 |] 2 [ (0, 1, 5.0) ] in
  let sol = Qk.solve { Qk.graph = g; budget = 0.0 } in
  Alcotest.(check (float 1e-9)) "no budget, no value" 0.0 sol.Qk.value;
  Alcotest.(check bool) "feasible" true (Qk.verify { Qk.graph = g; budget = 0.0 } sol)

let solve_always_feasible =
  QCheck.Test.make ~name:"A^QK_H output is always budget-feasible" ~count:60 QCheck.small_int
    (fun seed ->
      let inst = tiny_instance seed in
      let sol = Qk.solve inst in
      Qk.verify inst sol)

let solve_quality_vs_exact () =
  (* Deterministic seeds; require >= 60% of optimal everywhere and a high
     average (the paper's HkS black box reports 65-80%; A^QK_H adds
     repair and greedy fill on top). *)
  let ratios =
    List.map
      (fun seed ->
        let inst = tiny_instance seed in
        let sol = Qk.solve inst in
        let _, opt = Exact.qk inst.Qk.graph ~budget:inst.Qk.budget in
        if opt <= 0.0 then 1.0 else sol.Qk.value /. opt)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20 ]
  in
  let avg = List.fold_left ( +. ) 0.0 ratios /. 20.0 in
  List.iter
    (fun r -> Alcotest.(check bool) "at least 60% of optimal" true (r >= 0.6))
    ratios;
  Alcotest.(check bool) "average at least 90%" true (avg >= 0.9)

let taylor_feasible =
  QCheck.Test.make ~name:"Taylor baselines are budget-feasible" ~count:60 QCheck.small_int
    (fun seed ->
      let inst = tiny_instance seed in
      Qk.verify inst (Taylor.degree_greedy inst)
      && Qk.verify inst (Taylor.best_star inst)
      && Qk.verify inst (Taylor.combined inst))

let taylor_star_finds_hub () =
  let g =
    Graph.of_edges ~node_costs:[| 1.0; 1.0; 1.0; 1.0 |] 4
      [ (0, 1, 5.0); (0, 2, 5.0); (0, 3, 5.0) ]
  in
  let sol = Taylor.best_star { Qk.graph = g; budget = 4.0 } in
  Alcotest.(check (float 1e-9)) "whole star" 15.0 sol.Qk.value

let suite =
  [
    Alcotest.test_case "evaluate roundtrip" `Quick evaluate_roundtrip;
    Alcotest.test_case "verify rejects over budget" `Quick verify_rejects_overbudget;
    Alcotest.test_case "solve known pair" `Quick solve_known_pair;
    Alcotest.test_case "solve prefers the light clique" `Quick solve_prefers_many_light;
    Alcotest.test_case "expensive single-node branch" `Quick expensive_node_branch;
    Alcotest.test_case "expensive pair branch" `Quick expensive_pair_branch;
    Alcotest.test_case "zero budget" `Quick zero_budget;
    qtest solve_always_feasible;
    Alcotest.test_case "quality vs exact" `Slow solve_quality_vs_exact;
    qtest taylor_feasible;
    Alcotest.test_case "taylor star heuristic" `Quick taylor_star_finds_hub;
  ]
