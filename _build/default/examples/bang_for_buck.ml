(* "Bang for the buck" — the ECC problem (Section 5, Definition 5.2).

   When the budget is flexible, a natural objective is the classifier
   set with the best ratio of covered utility to construction cost.
   This example runs A^ECC on a BestBuy-like workload, compares it with
   the greedy baselines' best-ratio prefixes, and prints the selected
   classifiers.

   Run with: dune exec examples/bang_for_buck.exe *)

module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Ecc = Bcc_core.Ecc
module Baselines = Bcc_core.Baselines
module Texttable = Bcc_util.Texttable

let () =
  let inst = Bcc_data.Bestbuy.generate ~seed:5 ~budget:0.0 () in
  Format.printf "%a@.@." Instance.pp_summary inst;
  let table = Texttable.create [ "algorithm"; "ratio"; "utility"; "cost"; "classifiers" ] in
  let row name (sol : Solution.t) =
    Texttable.add_row table
      [
        name;
        Printf.sprintf "%.2f" (Ecc.ratio_of sol);
        Printf.sprintf "%.0f" sol.Solution.utility;
        Printf.sprintf "%.0f" sol.Solution.cost;
        string_of_int (List.length sol.Solution.classifiers);
      ]
  in
  row "RAND(E)" (Baselines.rand ~seed:1 inst Baselines.Best_ratio);
  row "IG1(E)" (Baselines.ig1 inst Baselines.Best_ratio);
  row "IG2(E)" (Baselines.ig2 inst Baselines.Best_ratio);
  let best = Ecc.solve inst in
  row "A^ECC" best;
  Texttable.print table;
  Format.printf
    "@.A^ECC proposes %d classifiers returning %.2f units of utility per unit of cost.@."
    (List.length best.Solution.classifiers)
    (Ecc.ratio_of best)
